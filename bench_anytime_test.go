package prete

// Anytime-solve benchmarks: how fast the budgeted optimizer reaches its
// first feasible incumbent — the latency that decides which degradation
// rung a deadline-bounded TE round lands on. Each op runs the solve with
// the budget pinned at exactly the first-incumbent work-unit count (learned
// from one unlimited reference solve), so ns/op IS the time-to-first-
// incumbent; the value is also reported under the explicit tti-ns/op unit
// for prete-benchdiff's extra-metric tracking against BENCH_baseline.json.

import (
	"fmt"
	"testing"

	"prete/internal/core"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

// anytimeInput mirrors the deadline experiment's instance construction.
func anytimeInput(b testing.TB, topo string) *te.Input {
	b.Helper()
	net, err := topology.ByName(topo)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(2025)
	probs := make([]float64, len(net.Fibers))
	for i := range probs {
		probs[i] = 0.001 + 0.02*rng.Float64()
	}
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 200})
	if err != nil {
		b.Fatal(err)
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 20 + 10*rng.Float64()
	}
	return &te.Input{Net: net, Tunnels: ts, Demands: demands, Scenarios: set, Beta: 0.99}
}

func benchSolveAnytime(b *testing.B, topo string) {
	in := anytimeInput(b, topo)
	ref, err := core.DefaultOptimizer().Solve(in)
	if err != nil {
		b.Fatal(err)
	}
	if ref.FirstIncumbentUnits <= 0 {
		b.Fatalf("reference solve found no incumbent (work=%d)", ref.WorkUnits)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := core.DefaultOptimizer()
		o.BudgetUnits = ref.FirstIncumbentUnits
		res, err := o.Solve(in)
		if err != nil {
			b.Fatal(err)
		}
		if res.Fallback {
			b.Fatal("fallback at the first-incumbent budget")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "tti-ns/op")
	b.ReportMetric(float64(ref.FirstIncumbentUnits), "tti-units")
}

func BenchmarkSolveAnytimeB4(b *testing.B)  { benchSolveAnytime(b, "B4") }
func BenchmarkSolveAnytimeIBM(b *testing.B) { benchSolveAnytime(b, "IBM") }

// BenchmarkSolveBudgetOverhead pins the cost of budget accounting itself:
// an unlimited budgeted solve vs the historical unbudgeted path is the same
// code with a never-failing atomic spend per pivot, so the pair should tie.
func BenchmarkSolveBudgetOverhead(b *testing.B) {
	in := anytimeInput(b, "B4")
	for _, units := range []int64{0, 1 << 40} {
		b.Run(fmt.Sprintf("budget%d", units), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := core.DefaultOptimizer()
				o.BudgetUnits = units
				if _, err := o.Solve(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
