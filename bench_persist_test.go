package prete

// Persistence benchmarks: the journal fsync that sits on every TE epoch's
// critical path (BenchmarkJournalAppend — one ns/op IS the per-epoch
// durability tax) and warm-restart recovery over a realistic directory of
// snapshots plus a journal suffix (BenchmarkRecover — the time a restarted
// controller spends before it can re-assert the last-good plan).

import (
	"encoding/json"
	"fmt"
	"testing"

	"prete/internal/persist"
	"prete/internal/routing"
	"prete/internal/topology"
	"prete/internal/wan"
)

// persistEpochBody builds a B4-scale EpochState payload (Table 3 tunnel
// counts), the record size a production-shaped controller journals.
func persistEpochBody(b *testing.B, epoch uint64) []byte {
	b.Helper()
	net, err := topology.B4()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	state := wan.EpochState{
		Epoch:   epoch,
		Rates:   make(map[string]float64, len(ts.Tunnels)),
		PeerSeq: make(map[string]uint64, len(net.Nodes)),
		Probs:   make([]float64, len(net.Fibers)),
	}
	for _, tn := range ts.Tunnels {
		state.Rates[fmt.Sprintf("t%d", tn.ID)] = 50
		path := make([]int, len(tn.Links))
		for i, l := range tn.Links {
			path[i] = int(l)
		}
		state.Tunnels = append(state.Tunnels, wan.TunnelInstall{
			Switch: net.Nodes[int(ts.Flows[tn.Flow].Src)].Name, TunnelID: int(tn.ID), Path: path,
		})
	}
	for _, n := range net.Nodes {
		state.PeerSeq[n.Name] = 1000
	}
	for i := range state.Probs {
		state.Probs[i] = 0.005
	}
	body, err := json.Marshal(&state)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func BenchmarkJournalAppend(b *testing.B) {
	body := persistEpochBody(b, 1)
	st, err := persist.Open(b.TempDir(), persist.Options{CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(uint64(i+1), body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecover(b *testing.B) {
	body := persistEpochBody(b, 1)
	dir := b.TempDir()
	st, err := persist.Open(dir, persist.Options{CompactEvery: 8})
	if err != nil {
		b.Fatal(err)
	}
	// 32 epochs with cadence 8: snapshots at 8..32, pruned to the newest
	// two, plus the post-snapshot journal — the steady-state directory
	// shape a restart recovers from.
	for e := uint64(1); e <= 32; e++ {
		if err := st.Append(e, body); err != nil {
			b.Fatal(err)
		}
		if st.NeedCompact() {
			if err := st.Compact(e, body); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := persist.Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Seq != 32 {
			b.Fatalf("recovered seq %d, want 32", rec.Seq)
		}
	}
}
