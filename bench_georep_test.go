package prete

// Cross-site replication benchmark: BenchmarkReplicationShip measures the
// per-epoch replication tax — journal append at the leader, CRC framing,
// ship to a standby site, and the site's durable apply — for a B4-scale
// EpochState record. One ns/op is what geo-replication adds to an epoch on
// top of the local fsync BenchmarkJournalAppend already prices.

import (
	"errors"
	"testing"

	"prete/internal/persist"
)

// benchApplyPipe ships frames straight into a standby's applier, answering
// gap/corruption with a re-sync request exactly like the network ingress.
type benchApplyPipe struct{ ap *persist.Applier }

func (p benchApplyPipe) Ship(frame []byte, snapshot bool) (uint64, bool, error) {
	ack, err := p.ap.Apply(frame, snapshot)
	if errors.Is(err, persist.ErrGap) || errors.Is(err, persist.ErrBadFrame) {
		return ack, true, nil
	}
	return ack, false, err
}

func BenchmarkReplicationShip(b *testing.B) {
	body := persistEpochBody(b, 1)
	leaderDir := b.TempDir()
	leader, err := persist.Open(leaderDir, persist.Options{CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer leader.Close()
	siteStore, err := persist.Open(b.TempDir(), persist.Options{CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer siteStore.Close()
	repl, err := persist.NewReplicator(leaderDir, persist.ReplicatorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer repl.Close()
	repl.AddTarget("site-1", benchApplyPipe{ap: persist.NewApplier(siteStore, persist.ApplierOptions{})})

	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		if err := leader.Append(seq, body); err != nil {
			b.Fatal(err)
		}
		if err := repl.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rs := repl.Stats()
	if rs.Acked != int64(b.N) || rs.Shipped != rs.Acked+rs.Resent {
		b.Fatalf("accounting off after %d epochs: %+v", b.N, rs)
	}
}
