// Package prete is a from-scratch reproduction of "PreTE: Traffic
// Engineering with Predictive Failures" (SIGCOMM 2025): a WAN traffic
// engineering system that watches per-second optical telemetry for fiber
// degradation signals, predicts imminent fiber cuts with a small neural
// network, reactively pre-establishes detour tunnels (Algorithm 1), and
// re-optimizes traffic allocation against failure scenarios whose
// probabilities are calibrated by the prediction (Eqn. 1), solved with
// Benders decomposition.
//
// The root package is the stable facade: the System type wires the
// telemetry -> prediction -> tunnel update -> optimization pipeline of the
// paper's Fig 8, and the re-exported constructors expose the substrates
// (topologies, tunnel routing, the synthetic production trace, the model
// zoo, and the large-scale evaluation harness) that the examples,
// experiments, and benchmarks are built on.
//
// Quick start:
//
//	net, _ := prete.LoadTopology("B4")
//	sys, _ := prete.NewSystem(net, prete.DefaultConfig())
//	// feed telemetry samples; PlanEpoch when the TE period ticks
//	plan, _ := sys.PlanEpoch(demands)
//
// See examples/quickstart for the full walkthrough, ARCHITECTURE.md for the
// package map and the parallel execution engine (internal/par and the
// Parallelism knobs), and DESIGN.md for the system inventory.
package prete
