package prete

import (
	"prete/internal/core"
	"prete/internal/ingest"
	"prete/internal/ml"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/persist"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/sim"
	"prete/internal/te"
	"prete/internal/telemetry"
	"prete/internal/topology"
	"prete/internal/trace"
	"prete/internal/wan"
)

// Domain types re-exported from the implementation packages so downstream
// code can hold them without importing internal paths.
type (
	// Network is the two-layer WAN graph (fibers + IP links).
	Network = topology.Network
	// Node is a WAN site.
	Node = topology.Node
	// Fiber is a physical fiber span.
	Fiber = topology.Fiber
	// Link is a directed IP link.
	Link = topology.Link
	// FiberID identifies a fiber.
	FiberID = topology.FiberID
	// LinkID identifies an IP link.
	LinkID = topology.LinkID
	// NodeID identifies a site.
	NodeID = topology.NodeID

	// Flow is a source-destination demand pair.
	Flow = routing.Flow
	// FlowID identifies a flow.
	FlowID = routing.FlowID
	// Tunnel is an end-to-end path for a flow.
	Tunnel = routing.Tunnel
	// TunnelID identifies a tunnel.
	TunnelID = routing.TunnelID
	// TunnelSet is the per-flow tunnel table.
	TunnelSet = routing.TunnelSet

	// Demands is the per-flow demand matrix (Gbps).
	Demands = te.Demands
	// Allocation maps tunnels to allocated bandwidth (the a_{f,t} output).
	Allocation = te.Allocation
	// Plan is one epoch's TE decision.
	Plan = te.Plan

	// ClassSpec is an ordered set of SLO tiers (latency-critical first)
	// splitting the demand matrix for the strict-priority classed solve.
	// Parse one from "name:share:weight[:policy],..." with ParseClassSpec.
	ClassSpec = te.ClassSpec
	// ClassTier is one SLO tier: name, demand share, objective weight, and
	// degradation policy.
	ClassTier = te.Tier
	// TierPolicy says how the admission ladder treats a tier under
	// degradation: protect, defer, or shed.
	TierPolicy = te.TierPolicy
	// ClassedResult is the per-tier output of a strict-priority classed
	// solve, including each tier's predicted uncarriable fraction.
	ClassedResult = core.ClassedResult
	// AdmissionDecision is one predictive admission-ladder tick: the exact
	// per-tier admitted/shed/deferred split of offered traffic.
	AdmissionDecision = wan.AdmissionDecision

	// Sample is a per-second optical telemetry observation.
	Sample = optical.Sample
	// Features are the degradation features fed to the predictor.
	Features = optical.Features
	// FiberState is healthy/degraded/cut.
	FiberState = optical.State

	// DegradationSignal is a detected degradation with its predicted
	// failure probability.
	DegradationSignal = core.DegradationSignal
	// EpochPlan is the full PreTE output for a TE period.
	EpochPlan = core.EpochPlan

	// Predictor estimates the failure probability of a degradation event.
	Predictor = ml.Predictor

	// ScenarioOptions bounds failure-scenario enumeration.
	ScenarioOptions = scenario.Options

	// Trace is a synthetic year-scale optical event history.
	Trace = trace.Trace
	// LabeledExample is one (features, failed) training sample.
	LabeledExample = trace.LabeledExample

	// IngestConfig tunes the streaming telemetry pipeline behind
	// System.OpenStream: shard count, ring capacity, watermark, drain
	// budget, and flush window (see internal/ingest).
	IngestConfig = ingest.Config
	// IngestArrival is one (fiber, sample) pair arriving on a stream.
	IngestArrival = ingest.Arrival
	// IngestStats is the pipeline's exact drop/merge accounting snapshot.
	IngestStats = ingest.Stats
	// IngestFiberEvents is one fiber's events from a stream flush.
	IngestFiberEvents = ingest.FiberEvents

	// JournalReplicator ships a state directory's journal records and
	// snapshots to remote appliers with exact shipped/acked/resent
	// accounting (internal/persist).
	JournalReplicator = persist.Replicator
	// JournalApplier applies a replicated record stream into a local state
	// directory exactly once per sequence number.
	JournalApplier = persist.Applier
	// ReplicationStats is a replicator's shipping accounting snapshot
	// (shipped = acked + inflight + resent).
	ReplicationStats = persist.ReplStats
	// JournalTailStats is a journal tailer's poll/record/dead-file
	// accounting, including files abandoned after corruption.
	JournalTailStats = persist.TailStats

	// SiteSet manages cross-site standby controllers: journal replication
	// over the network, time-bounded leases, and fenced failover.
	SiteSet = wan.SiteSet
	// SiteOptions tunes a SiteSet.
	SiteOptions = wan.SiteOptions
	// SiteStatus is a point-in-time snapshot of one standby site.
	SiteStatus = wan.SiteStatus
	// SitePromotion is the outcome of a cross-site takeover.
	SitePromotion = wan.SitePromotion
	// LeaderLease is a time-bounded leadership lease on a logical clock.
	LeaderLease = wan.Lease
	// LogicalClock is the deterministic tick source leases run on.
	LogicalClock = wan.LogicalClock

	// MetricsRegistry is the observability registry (internal/obs): a
	// concurrency-safe set of counters, gauges, histograms, and stage timers
	// with deterministic snapshots. A nil registry disables all
	// instrumentation at zero cost.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time export of a registry.
	MetricsSnapshot = obs.Snapshot
)

// Fiber state values.
const (
	Healthy  = optical.Healthy
	Degraded = optical.Degraded
	Cut      = optical.Cut
)

// LoadTopology returns a built-in topology: "B4", "IBM", or "TWAN".
func LoadTopology(name string) (*Network, error) { return topology.ByName(name) }

// NewNetwork assembles a custom two-layer topology, validating fiber and
// link references.
func NewNetwork(name string, nodes []Node, fibers []Fiber, links []Link) (*Network, error) {
	return topology.New(name, nodes, fibers, links)
}

// DefaultFlows derives the evaluation flow set (one per directed IP
// adjacency, reproducing Table 3's tunnel counts).
func DefaultFlows(net *Network) []Flow { return routing.Flows(net) }

// BuildTunnels constructs perFlow tunnels per flow using k-shortest and
// fiber-disjoint routing (§4.2).
func BuildTunnels(net *Network, flows []Flow, perFlow int) (*TunnelSet, error) {
	return routing.BuildTunnels(net, flows, perFlow)
}

// GenerateTrace synthesizes a production-shaped optical event history over
// the topology's fibers (see internal/trace for the calibrated shapes).
func GenerateTrace(net *Network, seed uint64, days int) (*Trace, error) {
	cfg := trace.DefaultConfig(seed)
	if days > 0 {
		cfg.Days = days
	}
	return trace.Generate(cfg, net)
}

// TrainPredictor fits the paper's MLP (Appendix A.2) on labeled
// degradation episodes.
func TrainPredictor(train []LabeledExample, seed uint64) (Predictor, error) {
	return ml.TrainNN(train, ml.DefaultNNConfig(seed))
}

// EvaluatePredictor reports precision/recall/F1/accuracy on a test set.
func EvaluatePredictor(p Predictor, test []LabeledExample) (precision, recall, f1, accuracy float64) {
	c := ml.Evaluate(p, test)
	return c.Precision(), c.Recall(), c.F1(), c.Accuracy()
}

// NewEvaluationEnv builds the §6 large-scale evaluation environment for a
// named topology.
func NewEvaluationEnv(name string, seed uint64) (*sim.Env, sim.Config, error) {
	cfg := sim.DefaultConfig()
	env, err := sim.BuildEnv(name, seed, cfg)
	return env, cfg, err
}

// EvaluateScheme measures a TE scheme's availability at a demand scale in
// an evaluation environment. Scheme names: ECMP, FFC-1, FFC-2, TeaVar,
// ARROW, Flexile, Oracle, PreTE, PreTE-naive.
func EvaluateScheme(env *sim.Env, cfg sim.Config, scheme string, scale float64) (sim.Availability, error) {
	return sim.NewEvaluator(env, cfg).Evaluate(scheme, scale)
}

// Delivered returns the bandwidth a flow receives under a failure scenario
// given a plan.
func Delivered(p *Plan, f FlowID, demand float64, cut map[FiberID]bool) float64 {
	return te.Delivered(p, f, demand, cut)
}

// NewDetector returns a per-fiber degradation/cut detector requiring
// confirm consecutive samples per transition.
func NewDetector(confirm int) *telemetry.Detector { return telemetry.NewDetector(confirm) }

// NewMetricsRegistry returns an empty observability registry. Hand it to
// Config.Metrics (or sim.Config.Metrics, wan.Controller.Metrics, ...) to
// collect counters and stage timings; results are unaffected.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultIngestConfig returns the streaming-ingest defaults (4 shards,
// 1024-sample rings, 0.75 watermark, flush every tick).
func DefaultIngestConfig() IngestConfig { return ingest.DefaultConfig() }

// DefaultClassSpec returns the built-in three-tier SLO spec:
// lc:0.2:100:protect, std:0.5:10:defer, bulk:0.3:1:shed.
func DefaultClassSpec() *ClassSpec { return te.DefaultClassSpec() }

// ParseClassSpec parses an SLO tier spec of the form
// "name:share:weight[:policy],..." ("default" selects DefaultClassSpec,
// "" selects nil — classless operation).
func ParseClassSpec(s string) (*ClassSpec, error) { return te.ParseClassSpec(s) }

// NewSiteSet builds cross-site standby controllers for the leader whose
// state directory is leaderDir: each site applies the leader's replicated
// journal into its own directory under sitesRoot and promotes behind a
// time-bounded lease on leader silence (see internal/wan).
func NewSiteSet(leaderDir, sitesRoot, leaseAddr string, agents map[string]string, opt SiteOptions) (*SiteSet, error) {
	return wan.NewSiteSet(leaderDir, sitesRoot, leaseAddr, agents, opt)
}

// EncodeReplFrame frames one journal record for replication shipping; the
// wire framing is byte-identical to the on-disk record framing, so a CRC
// check at the receiver covers both.
func EncodeReplFrame(seq uint64, body []byte) []byte { return persist.EncodeReplFrame(seq, body) }

// DecodeReplFrame validates and splits a replication frame.
func DecodeReplFrame(frame []byte) (seq uint64, body []byte, err error) {
	return persist.DecodeReplFrame(frame)
}
