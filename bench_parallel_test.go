package prete

// Serial-vs-parallel benchmark pairs for the three hot paths the internal/par
// engine drives: failure-equivalence class construction, the Fig 13-scale
// evaluation sweep, and the batch telemetry pipeline. Every benchmark runs
// the same work at Parallelism=1 (the serial path: a plain loop on the
// calling goroutine) and Parallelism=GOMAXPROCS, so
//
//	go test -bench=BenchmarkParallel -benchmem
//
// prints the speedup directly. On a single-core machine the pair is expected
// to tie (the parallel path adds only goroutine bookkeeping); see
// EXPERIMENTS.md for measured numbers.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"prete/internal/core"
	"prete/internal/experiments"
	"prete/internal/optical"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/sim"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/telemetry"
	"prete/internal/topology"
)

// parLevels returns the serial/parallel pair every BenchmarkParallel* runs.
func parLevels() []int { return []int{1, runtime.GOMAXPROCS(0)} }

// BenchmarkParallelBuildClasses measures per-flow class construction on IBM
// with a 600-scenario set.
func BenchmarkParallelBuildClasses(b *testing.B) {
	net, err := topology.IBM()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(5)
	probs := make([]float64, len(net.Fibers))
	for i := range probs {
		probs[i] = 0.001 + 0.02*rng.Float64()
	}
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 600})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range parLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if classes := core.BuildClassesP(ts, set, p); len(classes) == 0 {
					b.Fatal("no classes")
				}
			}
		})
	}
}

// BenchmarkParallelBendersIBM measures the full Benders solve on IBM with
// the optimizer's internal fan-out (class construction, structural cuts,
// subproblem coverage rows) at each level.
func BenchmarkParallelBendersIBM(b *testing.B) {
	net, err := topology.IBM()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(7)
	w := stats.Weibull{Shape: 0.8, Scale: 0.002}
	pi := make([]float64, len(net.Fibers))
	for i := range pi {
		pi[i] = 1.6 * w.Sample(rng)
		if pi[i] > 0.05 {
			pi[i] = 0.05
		}
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 60
	}
	for _, p := range parLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			eng := core.New()
			eng.ScenarioOpts.MaxScenarios = 300
			eng.Opt.Parallelism = p
			for i := 0; i < b.N; i++ {
				if _, err := eng.PlanEpoch(core.EpochInput{
					Net: net, Tunnels: ts, Demands: demands, Beta: 0.99, PI: pi,
					Signals: []core.DegradationSignal{{Fiber: 3, PNN: 0.5}},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelEvaluate measures one PreTE availability evaluation on
// B4 — the per-degradation-scenario fan-out inside the evaluator.
func BenchmarkParallelEvaluate(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.ScenarioOpts.MaxScenarios = 120
	cfg.MaxDegScenarios = 6
	env, err := sim.BuildEnv("B4", 2025, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range parLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			pcfg := cfg
			pcfg.Parallelism = p
			for i := 0; i < b.N; i++ {
				// Fresh evaluator per iteration: plan caches would otherwise
				// collapse later iterations to pure accumulation.
				ev := sim.NewEvaluator(env, pcfg)
				if _, err := ev.Evaluate("PreTE", 1.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelExpFig13 measures the full Fig 13 sweep (the per-(scheme,
// scale, topology) evaluation matrix) in Quick mode — the PR's headline
// end-to-end speedup target.
func BenchmarkParallelExpFig13(b *testing.B) {
	for _, p := range parLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			opts := experiments.Options{Seed: 2025, Quick: true, Parallelism: p}
			for i := 0; i < b.N; i++ {
				if err := experiments.Run("fig13", io.Discard, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelTelemetryBatch measures the per-fiber batch pipeline
// (interpolate, detect, extract features) over a 64-fiber TWAN slice with
// 10-minute series.
func BenchmarkParallelTelemetryBatch(b *testing.B) {
	net, err := topology.TWAN(1)
	if err != nil {
		b.Fatal(err)
	}
	nFibers := len(net.Fibers)
	if nFibers > 64 {
		nFibers = 64
	}
	series := make([]telemetry.FiberSeries, nFibers)
	for i := 0; i < nFibers; i++ {
		rng := stats.SubRNG(9, uint64(i))
		fsim := optical.NewFiberSim(net.Fibers[i].LengthKm, rng)
		samples, err := fsim.EpisodeSeries(optical.DegradationProfile{
			DegreeDB: 4 + 4*rng.Float64(), GradientDB: 0.05,
			FluctAmpDB: 0.3, FluctPeriodS: 20,
			DurationS: 480, LeadsToCut: i%3 == 0, CutDelayS: 400, RepairS: 60,
			OnsetUnixS: 1700000000 + int64(i)*11, MissingSample: 0.05,
		}, 60)
		if err != nil {
			b.Fatal(err)
		}
		series[i] = telemetry.FiberSeries{Fiber: i, Samples: samples}
	}
	for _, p := range parLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := telemetry.ProcessBatch(net, series, 2, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
