package prete

// The benchmark harness regenerates every table and figure of the paper
// (one BenchmarkExp* per artifact, running the experiment in Quick mode)
// and additionally benchmarks the performance-critical components: the
// simplex solver, Benders decomposition at IBM scale, k-shortest routing,
// NN inference, the telemetry detector, scenario enumeration, and
// Algorithm 1's tunnel update.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Individual artifacts: go test -bench=BenchmarkExpFig13

import (
	"io"
	"testing"

	"prete/internal/core"
	"prete/internal/experiments"
	"prete/internal/lp"
	"prete/internal/ml"
	"prete/internal/optical"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/telemetry"
	"prete/internal/topology"
	"prete/internal/trace"
)

func benchExp(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Seed: 2025, Quick: true}
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// One bench per paper artifact (Table/Figure), per DESIGN.md's experiment
// index.
func BenchmarkExpFig1a(b *testing.B)  { benchExp(b, "fig1a") }
func BenchmarkExpFig1b(b *testing.B)  { benchExp(b, "fig1b") }
func BenchmarkExpFig1c(b *testing.B)  { benchExp(b, "fig1c") }
func BenchmarkExpFig237(b *testing.B) { benchExp(b, "fig237") }
func BenchmarkExpFig4a(b *testing.B)  { benchExp(b, "fig4a") }
func BenchmarkExpFig4b(b *testing.B)  { benchExp(b, "fig4b") }
func BenchmarkExpFig5a(b *testing.B)  { benchExp(b, "fig5a") }
func BenchmarkExpFig5b(b *testing.B)  { benchExp(b, "fig5b") }
func BenchmarkExpFig6(b *testing.B)   { benchExp(b, "fig6") }
func BenchmarkExpTab1(b *testing.B)   { benchExp(b, "tab1") }
func BenchmarkExpTab67(b *testing.B)  { benchExp(b, "tab6-7") }
func BenchmarkExpFig11(b *testing.B)  { benchExp(b, "fig11") }
func BenchmarkExpTab3(b *testing.B)   { benchExp(b, "tab3") }
func BenchmarkExpFig12(b *testing.B)  { benchExp(b, "fig12") }
func BenchmarkExpFig13(b *testing.B)  { benchExp(b, "fig13") }
func BenchmarkExpTab4(b *testing.B)   { benchExp(b, "tab4") }
func BenchmarkExpTab5(b *testing.B)   { benchExp(b, "tab5") }
func BenchmarkExpFig14(b *testing.B)  { benchExp(b, "fig14") }
func BenchmarkExpFig15(b *testing.B)  { benchExp(b, "fig15") }
func BenchmarkExpFig16(b *testing.B)  { benchExp(b, "fig16") }
func BenchmarkExpFig17(b *testing.B)  { benchExp(b, "fig17") }
func BenchmarkExpFig18(b *testing.B)  { benchExp(b, "fig18") }
func BenchmarkExpFig19(b *testing.B)  { benchExp(b, "fig19") }
func BenchmarkExpFig20a(b *testing.B) { benchExp(b, "fig20a") }
func BenchmarkExpFig20b(b *testing.B) { benchExp(b, "fig20b") }
func BenchmarkExpTab8(b *testing.B)   { benchExp(b, "tab8") }

// ---- component microbenchmarks ----

// BenchmarkSimplexTE solves a TE-shaped LP (IBM capacity + coverage rows).
func BenchmarkSimplexTE(b *testing.B) {
	net, err := topology.IBM()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 100
	}
	in := &te.Input{
		Net: net, Tunnels: ts, Demands: demands, Beta: 0.99,
		Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := te.MinMaxLossPlan(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBendersIBM runs the full PreTE optimization at IBM scale with a
// degradation signal.
func BenchmarkBendersIBM(b *testing.B) {
	net, err := topology.IBM()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(7)
	w := stats.Weibull{Shape: 0.8, Scale: 0.002}
	pi := make([]float64, len(net.Fibers))
	for i := range pi {
		pi[i] = 1.6 * w.Sample(rng)
		if pi[i] > 0.05 {
			pi[i] = 0.05
		}
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 60
	}
	p := core.New()
	p.ScenarioOpts.MaxScenarios = 300
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlanEpoch(core.EpochInput{
			Net: net, Tunnels: ts, Demands: demands, Beta: 0.99, PI: pi,
			Signals: []core.DegradationSignal{{Fiber: 3, PNN: 0.5}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMIPKnapsack measures the branch-and-bound on a 12-item binary
// program.
func BenchmarkMIPKnapsack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := lp.NewMIP()
		var terms []lp.Term
		for j := 0; j < 12; j++ {
			v := m.AddBinaryVar(float64(-(j%5 + 1)), "b")
			terms = append(terms, lp.Term{Var: v, Coeff: float64(j%3 + 1)})
		}
		if _, err := m.AddConstraint(terms, lp.LE, 9, "cap"); err != nil {
			b.Fatal(err)
		}
		if sol := m.SolveMIP(lp.MIPOptions{}); sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkKShortestB4 measures Yen's algorithm across B4.
func BenchmarkKShortestB4(b *testing.B) {
	net, err := topology.B4()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := routing.KShortest(net, 0, 11, 4, nil); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkTunnelUpdate measures Algorithm 1 on B4.
func BenchmarkTunnelUpdate(b *testing.B) {
	net, err := topology.B4()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.UpdateTunnels(ts, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioEnumerate measures failure-scenario generation for 50
// fibers with doubles.
func BenchmarkScenarioEnumerate(b *testing.B) {
	probs := make([]float64, 50)
	rng := stats.NewRNG(3)
	w := stats.Weibull{Shape: 0.8, Scale: 0.002}
	for i := range probs {
		probs[i] = w.Sample(rng)
	}
	opts := scenario.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Enumerate(probs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNInference measures a single forward pass of the trained MLP.
func BenchmarkNNInference(b *testing.B) {
	net, err := topology.TWAN(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := trace.DefaultConfig(1)
	cfg.Days = 60
	tr, err := trace.Generate(cfg, net)
	if err != nil {
		b.Fatal(err)
	}
	train, test, err := tr.Split(0.8)
	if err != nil {
		b.Fatal(err)
	}
	nnCfg := ml.DefaultNNConfig(1)
	nnCfg.Epochs = 3
	nn, err := ml.TrainNN(train, nnCfg)
	if err != nil {
		b.Fatal(err)
	}
	if len(test) == 0 {
		b.Skip("no test examples")
	}
	f := test[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.PredictProb(f)
	}
}

// BenchmarkDetector measures per-sample telemetry processing.
func BenchmarkDetector(b *testing.B) {
	f := optical.NewFiberSim(100, stats.NewRNG(1))
	samples := f.HealthySeries(0, 1024)
	det := telemetry.NewDetector(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe(samples[i%len(samples)])
	}
}

// BenchmarkTraceYear measures generating a full year-scale trace.
func BenchmarkTraceYear(b *testing.B) {
	net, err := topology.TWAN(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := trace.DefaultConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(cfg, net); err != nil {
			b.Fatal(err)
		}
	}
}
