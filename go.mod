module prete

go 1.22
