package prete

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/telemetry"
)

func b4System(t *testing.T) *System {
	t.Helper()
	net, err := LoadTopology("B4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scenario.MaxScenarios = 150
	sys, err := NewSystem(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, DefaultConfig()); err == nil {
		t.Error("nil network accepted")
	}
	net, _ := LoadTopology("B4")
	bad := DefaultConfig()
	bad.Beta = 1
	if _, err := NewSystem(net, bad); err == nil {
		t.Error("beta = 1 accepted")
	}
	bad = DefaultConfig()
	bad.StaticPI = []float64{0.1}
	if _, err := NewSystem(net, bad); err == nil {
		t.Error("mismatched StaticPI accepted")
	}
}

func TestSystemTopologyAndTunnels(t *testing.T) {
	sys := b4System(t)
	if got := sys.Tunnels().NumTunnels(); got != 208 {
		t.Fatalf("tunnels = %d, want 208 (Table 3)", got)
	}
	if got := len(sys.Flows()); got != 52 {
		t.Fatalf("flows = %d, want 52", got)
	}
}

// degradedSample fabricates a telemetry sample with the given excess loss.
func degradedSample(at int64, excess float64) Sample {
	return Sample{
		UnixS: at, TxDBm: optical.TxPowerDBm,
		RxDBm:  optical.TxPowerDBm - 22 - excess,
		LossDB: 22 + excess, ExcessDB: excess,
		State: optical.Classify(excess),
	}
}

func TestObserveLifecycle(t *testing.T) {
	sys := b4System(t)
	// Fiber 2 shares no conduit on B4, so exactly one signal results from
	// two confirmed degraded samples.
	if _, err := sys.Observe(2, degradedSample(1, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Observe(2, degradedSample(2, 5)); err != nil {
		t.Fatal(err)
	}
	sigs := sys.ActiveSignals()
	if len(sigs) != 1 || sigs[0].Fiber != 2 {
		t.Fatalf("signals = %+v", sigs)
	}
	// default predictor fallback is the measured 0.40
	if sigs[0].PNN != 0.40 {
		t.Fatalf("fallback PNN = %v, want 0.40", sigs[0].PNN)
	}
	// recovery clears it
	sys.Observe(2, degradedSample(3, 0))
	sys.Observe(2, degradedSample(4, 0))
	if got := sys.ActiveSignals(); len(got) != 0 {
		t.Fatalf("signals after recovery = %+v", got)
	}
	if _, err := sys.Observe(99, degradedSample(1, 0)); err == nil {
		t.Fatal("out-of-range fiber accepted")
	}
}

func TestObserveConduitPropagation(t *testing.T) {
	// B4's builder pairs fibers 0 and 1 into one conduit (§3.1: fibers in
	// one conduit are a single degradation entity).
	sys := b4System(t)
	sys.Observe(0, degradedSample(1, 5))
	sys.Observe(0, degradedSample(2, 5))
	sigs := sys.ActiveSignals()
	if len(sigs) != 2 {
		t.Fatalf("conduit-mates should both be signaled, got %+v", sigs)
	}
	// recovery clears the whole group
	sys.Observe(0, degradedSample(3, 0))
	sys.Observe(0, degradedSample(4, 0))
	if got := sys.ActiveSignals(); len(got) != 0 {
		t.Fatalf("signals after recovery = %+v", got)
	}
}

type constPredictor float64

func (c constPredictor) PredictProb(Features) float64 { return float64(c) }
func (c constPredictor) Name() string                 { return "const" }

func TestObserveUsesPredictor(t *testing.T) {
	sys := b4System(t)
	sys.SetPredictor(constPredictor(0.77))
	sys.Observe(2, degradedSample(1, 6))
	sys.Observe(2, degradedSample(2, 6))
	sigs := sys.ActiveSignals()
	if len(sigs) != 1 || sigs[0].PNN != 0.77 {
		t.Fatalf("signals = %+v", sigs)
	}
	sys.ClearSignals()
	if len(sys.ActiveSignals()) != 0 {
		t.Fatal("ClearSignals did not clear")
	}
}

func TestPlanEpochQuietAndDegraded(t *testing.T) {
	sys := b4System(t)
	demands := make(Demands, len(sys.Flows()))
	for i := range demands {
		demands[i] = 30
	}
	quiet, err := sys.PlanEpoch(demands)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Update != nil {
		t.Fatal("quiet epoch established tunnels")
	}
	if quiet.Plan.MaxLoss > 1e-6 {
		t.Fatalf("quiet-epoch loss = %v at light load", quiet.Plan.MaxLoss)
	}
	// now with an active degradation
	sys.SetPredictor(constPredictor(0.9))
	sys.Observe(2, degradedSample(1, 6))
	sys.Observe(2, degradedSample(2, 6))
	deg, err := sys.PlanEpoch(demands)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Update == nil || deg.Update.NewTunnels == 0 {
		t.Fatal("degraded epoch did not establish tunnels")
	}
	if deg.Calibrated[2] != 0.9 {
		t.Fatalf("calibrated p = %v, want the predictor output", deg.Calibrated[2])
	}
}

func TestConcurrentObserve(t *testing.T) {
	sys := b4System(t)
	rng := stats.NewRNG(1)
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	var wg sync.WaitGroup
	for f := 0; f < 8; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			local := stats.NewRNG(seeds[f])
			for i := 0; i < 200; i++ {
				excess := 0.0
				if local.Bernoulli(0.1) {
					excess = 6
				}
				if _, err := sys.Observe(FiberID(f), degradedSample(int64(i), excess)); err != nil {
					t.Error(err)
					return
				}
			}
		}(f)
	}
	wg.Wait()
}

func TestObserveBatchMatchesObserve(t *testing.T) {
	// Per-fiber series: fibers 0 and 2 degrade (0 shares a conduit with 1),
	// fiber 3 stays healthy, fiber 4 degrades then recovers.
	mk := func(excesses ...float64) []Sample {
		out := make([]Sample, len(excesses))
		for i, e := range excesses {
			out[i] = degradedSample(int64(i+1), e)
		}
		return out
	}
	series := []telemetry.FiberSeries{
		{Fiber: 0, Samples: mk(0, 5, 5, 5)},
		{Fiber: 2, Samples: mk(6, 6)},
		{Fiber: 3, Samples: mk(0, 0, 0)},
		{Fiber: 4, Samples: mk(5, 5, 0, 0)},
	}
	// Reference: the per-sample Observe path on an identical system.
	ref := b4System(t)
	ref.SetPredictor(constPredictor(0.66))
	want := make([][]telemetry.Event, len(series))
	for i, fs := range series {
		for _, s := range fs.Samples {
			evs, err := ref.Observe(FiberID(fs.Fiber), s)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = append(want[i], evs...)
		}
	}
	wantSigs := ref.ActiveSignals()
	for _, p := range []int{1, 2, 8, 0} {
		sys := b4System(t)
		sys.cfg.Parallelism = p
		sys.SetPredictor(constPredictor(0.66))
		got, err := sys.ObserveBatch(series)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: batch events diverge from Observe:\ngot  %+v\nwant %+v", p, got, want)
		}
		gotSigs := sys.ActiveSignals()
		sort.Slice(gotSigs, func(a, b int) bool { return gotSigs[a].Fiber < gotSigs[b].Fiber })
		ws := append([]DegradationSignal(nil), wantSigs...)
		sort.Slice(ws, func(a, b int) bool { return ws[a].Fiber < ws[b].Fiber })
		if !reflect.DeepEqual(gotSigs, ws) {
			t.Fatalf("parallelism %d: signals = %+v, want %+v", p, gotSigs, ws)
		}
	}
	// Validation: out-of-range and duplicate fibers are rejected.
	sys := b4System(t)
	if _, err := sys.ObserveBatch([]telemetry.FiberSeries{{Fiber: 99}}); err == nil {
		t.Fatal("out-of-range fiber accepted")
	}
	dup := []telemetry.FiberSeries{{Fiber: 1}, {Fiber: 1}}
	if _, err := sys.ObserveBatch(dup); err == nil {
		t.Fatal("duplicate fiber accepted")
	}
}

func TestStreamMatchesObserveBatch(t *testing.T) {
	// The streaming path (OpenStream → Tick/Flush) must produce the same
	// events and leave the same signal state as ObserveBatch over the same
	// per-fiber series, at every shard count, as long as backpressure never
	// triggers.
	mk := func(excesses ...float64) []Sample {
		out := make([]Sample, len(excesses))
		for i, e := range excesses {
			out[i] = degradedSample(int64(i+1), e)
		}
		return out
	}
	series := []telemetry.FiberSeries{
		{Fiber: 0, Samples: mk(0, 5, 5, 5)},
		{Fiber: 2, Samples: mk(6, 6)},
		{Fiber: 3, Samples: mk(0, 0, 0)},
		{Fiber: 4, Samples: mk(5, 5, 0, 0)},
	}
	ref := b4System(t)
	ref.SetPredictor(constPredictor(0.66))
	want, err := ref.ObserveBatch(series)
	if err != nil {
		t.Fatal(err)
	}
	wantSigs := ref.ActiveSignals()
	sort.Slice(wantSigs, func(a, b int) bool { return wantSigs[a].Fiber < wantSigs[b].Fiber })

	for _, shards := range []int{1, 3, 8} {
		sys := b4System(t)
		sys.SetPredictor(constPredictor(0.66))
		cfg := DefaultIngestConfig()
		cfg.Shards = shards
		st, err := sys.OpenStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// One sample per fiber per tick, like a live collection interval.
		// ObserveBatch leaves eventless rows nil, so rows here start nil too.
		got := make([][]telemetry.Event, len(series))
		byFiber := make(map[int]int, len(series))
		for i, fs := range series {
			byFiber[fs.Fiber] = i
		}
		collect := func(batches []IngestFiberEvents) {
			for _, b := range batches {
				for _, fe := range b.Events {
					got[byFiber[b.Fiber]] = append(got[byFiber[b.Fiber]], fe.Event)
				}
			}
		}
		for tick := 0; ; tick++ {
			var arrivals []IngestArrival
			for _, fs := range series {
				if tick < len(fs.Samples) {
					arrivals = append(arrivals, IngestArrival{Fiber: fs.Fiber, Sample: fs.Samples[tick]})
				}
			}
			if len(arrivals) == 0 {
				break
			}
			batches, err := st.Tick(arrivals)
			if err != nil {
				t.Fatal(err)
			}
			collect(batches)
		}
		batches, err := st.Flush()
		if err != nil {
			t.Fatal(err)
		}
		collect(batches)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards %d: stream events diverge from ObserveBatch:\ngot  %+v\nwant %+v", shards, got, want)
		}
		ss := st.Stats()
		if ss.Dropped != 0 || ss.Merged != 0 {
			t.Fatalf("shards %d: unexpected backpressure: %+v", shards, ss)
		}
		gotSigs := sys.ActiveSignals()
		sort.Slice(gotSigs, func(a, b int) bool { return gotSigs[a].Fiber < gotSigs[b].Fiber })
		if !reflect.DeepEqual(gotSigs, wantSigs) {
			t.Fatalf("shards %d: signals = %+v, want %+v", shards, gotSigs, wantSigs)
		}
	}
}

func TestBatchEntryPointValidationParity(t *testing.T) {
	// ProcessBatch and System.ObserveBatch must accept and reject the same
	// inputs: both validate fiber range and duplicate fibers.
	sys := b4System(t)
	cases := []struct {
		name   string
		series []telemetry.FiberSeries
	}{
		{"valid", []telemetry.FiberSeries{{Fiber: 0}, {Fiber: 3}}},
		{"out-of-range", []telemetry.FiberSeries{{Fiber: 99}}},
		{"negative", []telemetry.FiberSeries{{Fiber: -1}}},
		{"duplicate", []telemetry.FiberSeries{{Fiber: 1}, {Fiber: 2}, {Fiber: 1}}},
	}
	for _, tc := range cases {
		_, errBatch := telemetry.ProcessBatch(sys.net, tc.series, 2, 1)
		_, errSys := sys.ObserveBatch(tc.series)
		if (errBatch == nil) != (errSys == nil) {
			t.Errorf("%s: ProcessBatch err=%v but ObserveBatch err=%v", tc.name, errBatch, errSys)
		}
	}
}

func TestPublicHelpers(t *testing.T) {
	net, err := LoadTopology("IBM")
	if err != nil {
		t.Fatal(err)
	}
	flows := DefaultFlows(net)
	ts, err := BuildTunnels(net, flows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumTunnels() != 340 {
		t.Fatalf("IBM tunnels = %d", ts.NumTunnels())
	}
	tr, err := GenerateTrace(net, 7, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Episodes) == 0 {
		t.Fatal("empty trace")
	}
	det := NewDetector(1)
	if det == nil {
		t.Fatal("nil detector")
	}
	if NewMetricsRegistry() == nil {
		t.Fatal("nil registry")
	}
	// NewNetwork is the custom-topology entry: it must validate references.
	if _, err := NewNetwork("x", []Node{{ID: 0, Name: "a"}}, []Fiber{{ID: 0, A: 0, B: 9}}, nil); err == nil {
		t.Fatal("dangling fiber endpoint accepted")
	}
}
