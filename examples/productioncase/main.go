// The production case reproduces §7 / Fig 18: a four-site backbone slice
// with 1000 Gbps links carrying 700/600/300 Gbps flows. When the fiber
// under IP link s1-s3 degrades, the traditional system's local backup
// (s1->s2->s3) would overload s1-s2 and keep dropping 300 Gbps until the
// next TE period; PreTE pre-computes the optimal backup s1->s4->s3 and
// switches without sustained loss.
package main

import (
	"fmt"
	"os"

	"prete"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "productioncase: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := []prete.Node{
		{ID: 0, Name: "s1"}, {ID: 1, Name: "s2"}, {ID: 2, Name: "s3"}, {ID: 3, Name: "s4"},
	}
	fibers := []prete.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 500}, // s1-s2
		{ID: 1, A: 1, B: 2, LengthKm: 500}, // s2-s3
		{ID: 2, A: 2, B: 3, LengthKm: 500}, // s3-s4
		{ID: 3, A: 3, B: 0, LengthKm: 500}, // s4-s1
		{ID: 4, A: 0, B: 2, LengthKm: 650}, // s1-s3 diagonal (will fail)
	}
	var links []prete.Link
	add := func(src, dst prete.NodeID, f prete.FiberID) {
		links = append(links, prete.Link{
			ID: prete.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 1000, Fibers: []prete.FiberID{f},
		})
	}
	for _, f := range fibers {
		add(f.A, f.B, f.ID)
		add(f.B, f.A, f.ID)
	}
	net, err := prete.NewNetwork("production-case", nodes, fibers, links)
	if err != nil {
		return err
	}

	cfg := prete.DefaultConfig()
	cfg.Flows = []prete.Flow{
		{ID: 0, Src: 0, Dst: 1}, // s1->s2: 700 Gbps
		{ID: 1, Src: 0, Dst: 2}, // s1->s3: 600 Gbps
		{ID: 2, Src: 3, Dst: 2}, // s4->s3: 300 Gbps
	}
	cfg.TunnelsPerFlow = 1
	// Both ring detours around the diagonal tie on distance; let
	// Algorithm 1 establish both candidates so the optimizer picks the one
	// with spare capacity (§7: "the optimal available backup tunnel").
	cfg.TunnelRatio = 2
	cfg.StaticPI = []float64{0.002, 0.002, 0.002, 0.002, 0.002}
	sys, err := prete.NewSystem(net, cfg)
	if err != nil {
		return err
	}
	demands := prete.Demands{700, 600, 300}

	// The s1-s3 fiber evolves to a degraded state for tens of seconds.
	for i := int64(1); i <= 2; i++ {
		if _, err := sys.Observe(4, sample(i, 6)); err != nil {
			return err
		}
	}
	plan, err := sys.PlanEpoch(demands)
	if err != nil {
		return err
	}
	fmt.Printf("degradation on the s1-s3 fiber: %d backup tunnels pre-established\n",
		plan.Update.NewTunnels)

	// The fiber finally cuts: compare the traditional local backup against
	// PreTE's pre-computed plan.
	cut := map[prete.FiberID]bool{4: true}
	spare := 1000.0 - demands[0] // headroom on s1-s2 for the traditional backup
	tradLoss := demands[1] - spare
	if tradLoss < 0 {
		tradLoss = 0
	}
	var preLoss float64
	for _, f := range sys.Flows() {
		preLoss += demands[f.ID] - prete.Delivered(plan.Plan, f.ID, demands[f.ID], cut)
	}
	fmt.Printf("traditional backup via s1->s2->s3: sustained loss %.0f Gbps until the next TE period\n", tradLoss)
	fmt.Printf("PreTE via the pre-established detour: sustained loss %.0f Gbps\n", preLoss)
	return nil
}

func sample(at int64, excessDB float64) prete.Sample {
	const baseline = 102 // dB-ish for a 500 km amplified span
	state := prete.Healthy
	switch {
	case excessDB >= 10:
		state = prete.Cut
	case excessDB >= 3:
		state = prete.Degraded
	}
	return prete.Sample{
		UnixS: at, TxDBm: 3, RxDBm: 3 - baseline - excessDB,
		LossDB: baseline + excessDB, ExcessDB: excessDB, State: state,
	}
}
