// The replay example drives the whole system over a synthetic multi-month
// optical event timeline: degradation episodes raise signals, a trained
// predictor scores them, PreTE plans each event epoch, and the trace's
// actual fiber cuts determine delivered traffic. The same timeline is then
// replayed under a static-probability (TeaVaR-style) planner for
// comparison.
package main

import (
	"fmt"
	"os"

	"prete"
	"prete/internal/ml"
	"prete/internal/sim"
	"prete/internal/topology"
	"prete/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "replay: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	net, err := topology.B4()
	if err != nil {
		return err
	}
	cfg := trace.DefaultConfig(17)
	cfg.Days = 180
	tr, err := trace.Generate(cfg, net)
	if err != nil {
		return err
	}
	c := tr.Counts()
	fmt.Printf("timeline: %d degradations, %d cuts over %d days\n",
		c.Degradations, c.Cuts, cfg.Days)

	train, _, err := tr.Split(0.8)
	if err != nil {
		return err
	}
	nnCfg := ml.DefaultNNConfig(17)
	nnCfg.Epochs = 10
	model, err := ml.TrainNN(train, nnCfg)
	if err != nil {
		return err
	}
	var _ prete.Predictor = model // the trained model is a drop-in Predictor

	for _, scheme := range []string{"PreTE", "TeaVar"} {
		rc := sim.DefaultReplayConfig(scheme)
		rc.Predictor = model
		rc.DemandGbps = 220
		rc.MaxEventEpochs = 30
		res, err := sim.Replay(tr, rc)
		if err != nil {
			return err
		}
		fmt.Printf("%-7s: %d event epochs, %d cut epochs, %d tunnels established, %d/%d flow-epochs lost (%.0f Gbps)\n",
			res.Scheme, res.EventEpochs, res.CutEpochs, res.EstablishedTuns,
			res.LostFlowEpochs, res.FlowEpochs, res.LostGbps)
	}
	return nil
}
