// The predictor example exercises the failure-prediction half of PreTE
// (§3, §4.1): it generates a year of synthetic production telemetry events
// on a TWAN-scale topology, trains the paper's MLP on the first 80% of each
// fiber's degradation episodes, evaluates on the rest, and then wires the
// trained model into a live System so a degradation signal carries a real
// prediction.
package main

import (
	"fmt"
	"os"

	"prete"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "predictor: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	net, err := prete.LoadTopology("TWAN")
	if err != nil {
		return err
	}
	tr, err := prete.GenerateTrace(net, 2025, 365)
	if err != nil {
		return err
	}
	train, test, err := tr.Split(0.8)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d labeled degradation episodes (%d train / %d test)\n",
		len(train)+len(test), len(train), len(test))

	model, err := prete.TrainPredictor(train, 2025)
	if err != nil {
		return err
	}
	p, r, f1, acc := prete.EvaluatePredictor(model, test)
	fmt.Printf("trained NN: P=%.2f R=%.2f F1=%.2f Acc=%.2f (paper Table 5: 0.81/0.81)\n", p, r, f1, acc)

	// Wire the model into a live system: the next degradation signal will
	// carry the model's probability instead of the 0.40 fallback.
	cfg := prete.DefaultConfig()
	cfg.Scenario.MaxScenarios = 200
	sys, err := prete.NewSystem(net, cfg)
	if err != nil {
		return err
	}
	sys.SetPredictor(model)

	// Replay one of the test episodes' feature shapes as telemetry.
	ex := test[0]
	excess := ex.Features.DegreeDB
	for i := int64(1); i <= 2; i++ {
		if _, err := sys.Observe(prete.FiberID(ex.Features.FiberID), liveSample(i, excess)); err != nil {
			return err
		}
	}
	for _, sig := range sys.ActiveSignals() {
		fmt.Printf("live degradation on fiber %d: model predicts failure probability %.2f\n",
			sig.Fiber, sig.PNN)
	}
	return nil
}

func liveSample(at int64, excessDB float64) prete.Sample {
	const baseline = 50
	state := prete.Healthy
	switch {
	case excessDB >= 10:
		state = prete.Cut
	case excessDB >= 3:
		state = prete.Degraded
	}
	return prete.Sample{
		UnixS: at, TxDBm: 3, RxDBm: 3 - baseline - excessDB,
		LossDB: baseline + excessDB, ExcessDB: excessDB, State: state,
	}
}
