// The quickstart walks through the paper's illustrative example (§2.2 and
// §3.3, Figs 2/3/7) on a three-site triangle with 10-unit links: a fiber
// degradation on s1-s2 raises its failure probability, PreTE reactively
// establishes the s1->s3->s2 detour, and when the cut lands the traffic
// keeps flowing — where a static-probability scheme loses the flow.
package main

import (
	"fmt"
	"os"

	"prete"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// The Fig 2(a) network: three sites, three fibers, 10 units each way.
	nodes := []prete.Node{
		{ID: 0, Name: "s1"}, {ID: 1, Name: "s2"}, {ID: 2, Name: "s3"},
	}
	fibers := []prete.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 100}, // s1-s2 (will degrade, then cut)
		{ID: 1, A: 0, B: 2, LengthKm: 100}, // s1-s3
		{ID: 2, A: 1, B: 2, LengthKm: 100}, // s2-s3
	}
	var links []prete.Link
	add := func(src, dst prete.NodeID, f prete.FiberID) {
		links = append(links, prete.Link{
			ID: prete.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 10, Fibers: []prete.FiberID{f},
		})
	}
	add(0, 1, 0)
	add(1, 0, 0)
	add(0, 2, 1)
	add(2, 0, 1)
	add(1, 2, 2)
	add(2, 1, 2)
	net, err := prete.NewNetwork("triangle", nodes, fibers, links)
	if err != nil {
		return err
	}

	// Two flows, as in the paper: s1->s2 and s1->s3, one tunnel each
	// initially (the degradation will trigger Algorithm 1).
	cfg := prete.DefaultConfig()
	cfg.Flows = []prete.Flow{{ID: 0, Src: 0, Dst: 1}, {ID: 1, Src: 0, Dst: 2}}
	cfg.TunnelsPerFlow = 1
	cfg.StaticPI = []float64{0.005, 0.009, 0.001} // the Fig 2 probabilities
	sys, err := prete.NewSystem(net, cfg)
	if err != nil {
		return err
	}

	demands := prete.Demands{5, 5}

	// A quiet epoch: no degradation anywhere.
	quiet, err := sys.PlanEpoch(demands)
	if err != nil {
		return err
	}
	fmt.Printf("quiet epoch: max loss %.3f, %d tunnels\n",
		quiet.Plan.MaxLoss, quiet.Plan.Tunnels.NumTunnels())

	// The optical layer reports the s1-s2 fiber degrading: feed two
	// confirmed telemetry samples (excess loss 6 dB, inside the 3-10 dB
	// degradation band).
	for i := int64(1); i <= 2; i++ {
		if _, err := sys.Observe(0, degradedSample(i, 6)); err != nil {
			return err
		}
	}
	sigs := sys.ActiveSignals()
	fmt.Printf("degradation detected on fiber %d, predicted failure probability %.2f\n",
		sigs[0].Fiber, sigs[0].PNN)

	// PreTE reacts: Algorithm 1 establishes the s1->s3->s2 detour and the
	// optimizer re-plans with the calibrated probabilities.
	reactive, err := sys.PlanEpoch(demands)
	if err != nil {
		return err
	}
	fmt.Printf("reactive epoch: %d new tunnels established, max loss %.3f\n",
		reactive.Update.NewTunnels, reactive.Plan.MaxLoss)

	// The predicted cut lands. With the pre-established detour, both flows
	// keep their full 5 units (Fig 7b); the quiet plan would have lost
	// flow s1->s2 entirely (Fig 2c).
	cut := map[prete.FiberID]bool{0: true}
	for _, f := range sys.Flows() {
		before := prete.Delivered(quiet.Plan, f.ID, demands[f.ID], cut)
		after := prete.Delivered(reactive.Plan, f.ID, demands[f.ID], cut)
		fmt.Printf("flow %s->%s after the cut: static plan delivers %.0f, PreTE delivers %.0f of %.0f units\n",
			nodes[f.Src].Name, nodes[f.Dst].Name, before, after, demands[f.ID])
	}
	return nil
}

// degradedSample fabricates one telemetry observation with the given
// excess loss over the healthy baseline.
func degradedSample(at int64, excessDB float64) prete.Sample {
	const baseline = 22 // dB for a 100 km span
	return prete.Sample{
		UnixS: at, TxDBm: 3, RxDBm: 3 - baseline - excessDB,
		LossDB: baseline + excessDB, ExcessDB: excessDB,
		State: classify(excessDB),
	}
}

func classify(excess float64) prete.FiberState {
	switch {
	case excess >= 10:
		return prete.Cut
	case excess >= 3:
		return prete.Degraded
	default:
		return prete.Healthy
	}
}
