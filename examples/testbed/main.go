// The testbed example reproduces §5 end to end with a *trained* failure
// predictor in the loop: switch agents on loopback TCP, the VOA script
// driving a healthy -> degraded -> cut fiber event, and the PreTE
// controller pipeline reacting to the degradation signal. It prints the
// Fig 11a latency breakdown.
package main

import (
	"fmt"
	"os"
	"time"

	"prete"
	"prete/internal/wan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "testbed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Train the predictor on a (short) synthetic trace first.
	net, err := prete.LoadTopology("TWAN")
	if err != nil {
		return err
	}
	tr, err := prete.GenerateTrace(net, 7, 120)
	if err != nil {
		return err
	}
	train, _, err := tr.Split(0.8)
	if err != nil {
		return err
	}
	model, err := prete.TrainPredictor(train, 7)
	if err != nil {
		return err
	}
	fmt.Println("predictor trained; starting the loopback testbed")

	cfg := wan.DefaultSwitchConfig()
	cfg.InstallLatency = 50 * time.Millisecond // scaled-down production gear
	tb, err := wan.NewTestbed(cfg, model.PredictProb)
	if err != nil {
		return err
	}
	defer tb.Close()

	timing, err := tb.RunScenario(7)
	if err != nil {
		return err
	}
	fmt.Println("reaction pipeline after the degradation signal (Fig 11a):")
	fmt.Printf("  detection        %8.2f ms\n", ms(timing.Detection))
	fmt.Printf("  model inference  %8.2f ms\n", ms(timing.Inference))
	fmt.Printf("  tunnel update    %8.2f ms\n", ms(timing.TunnelUpdate))
	fmt.Printf("  scenario regen   %8.2f ms\n", ms(timing.ScenarioRegen))
	fmt.Printf("  TE compute       %8.2f ms\n", ms(timing.TECompute))
	fmt.Printf("  rate install     %8.2f ms\n", ms(timing.RateInstall))
	fmt.Printf("  total            %8.2f ms\n", ms(timing.Total()))
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
