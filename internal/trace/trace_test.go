package trace

import (
	"math"
	"testing"

	"prete/internal/stats"
	"prete/internal/topology"
)

func genTrace(t *testing.T, seed uint64, days int) *Trace {
	t.Helper()
	net, err := topology.TWAN(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(seed)
	cfg.Days = days
	tr, err := Generate(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateValidation(t *testing.T) {
	net, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Days: 0, EpochS: 900, DegWeibull: stats.Weibull{Shape: 1, Scale: 1}, PCutGivenDeg: 0.4, PredictableFrac: 0.25},
		{Days: 10, EpochS: 0, DegWeibull: stats.Weibull{Shape: 1, Scale: 1}, PCutGivenDeg: 0.4, PredictableFrac: 0.25},
		{Days: 10, EpochS: 900, DegWeibull: stats.Weibull{}, PCutGivenDeg: 0.4, PredictableFrac: 0.25},
		{Days: 10, EpochS: 900, DegWeibull: stats.Weibull{Shape: 1, Scale: 1}, PCutGivenDeg: 1.5, PredictableFrac: 0.25},
		{Days: 10, EpochS: 900, DegWeibull: stats.Weibull{Shape: 1, Scale: 1}, PCutGivenDeg: 0.4, PredictableFrac: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, net); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTraceMatchesPaperShapes(t *testing.T) {
	tr := genTrace(t, 11, 365)
	c := tr.Counts()
	if c.Degradations < 200 {
		t.Fatalf("only %d degradations in a year; too sparse to validate", c.Degradations)
	}
	// §3.2: ~40% of degradations lead to cuts.
	if got := c.PCutGivenDeg(); math.Abs(got-0.40) > 0.08 {
		t.Errorf("P(cut|deg) = %v, want ~0.40", got)
	}
	// §3.1: ~25% of cuts are predictable.
	if got := c.Alpha(); math.Abs(got-0.25) > 0.08 {
		t.Errorf("alpha = %v, want ~0.25", got)
	}
}

func TestDurationsEphemeral(t *testing.T) {
	tr := genTrace(t, 13, 365)
	ecdf := stats.NewECDF(tr.DurationsS())
	// Fig 4a: 50% of degradations last under ~10 s.
	if got := ecdf.At(10); got < 0.3 || got > 0.7 {
		t.Errorf("P(duration <= 10s) = %v, want around 0.5", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := genTrace(t, 21, 60)
	b := genTrace(t, 21, 60)
	if len(a.Episodes) != len(b.Episodes) || len(a.Cuts) != len(b.Cuts) {
		t.Fatal("same-seed traces differ in event counts")
	}
	for i := range a.Episodes {
		if a.Episodes[i].OnsetUnixS != b.Episodes[i].OnsetUnixS ||
			a.Episodes[i].LedToCut != b.Episodes[i].LedToCut {
			t.Fatalf("episode %d differs", i)
		}
	}
}

func TestPredictableCutsHaveBoundedDelay(t *testing.T) {
	tr := genTrace(t, 31, 180)
	for _, e := range tr.Episodes {
		if !e.LedToCut {
			continue
		}
		if e.CutDelayS <= 0 || e.CutDelayS > 300 {
			t.Fatalf("predictable cut delay %d outside the 5-minute TE period", e.CutDelayS)
		}
	}
}

func TestPerFiberCountsLinear(t *testing.T) {
	tr := genTrace(t, 41, 365)
	degs, cuts := tr.PerFiberCounts()
	slope, intercept, err := stats.LinearFit(degs, cuts)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 12a: approximately linear with slope pCut/alpha = 1.6.
	if slope < 1.1 || slope > 2.1 {
		t.Errorf("slope = %v, want ~1.6", slope)
	}
	if math.Abs(intercept) > 8 {
		t.Errorf("intercept = %v, want near 0", intercept)
	}
}

func TestDegProbSpansOrders(t *testing.T) {
	tr := genTrace(t, 51, 30)
	lo, hi := math.Inf(1), 0.0
	for _, p := range tr.DegProb {
		if p <= 0 {
			t.Fatalf("non-positive degradation probability %v", p)
		}
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	// Fig 12b: probabilities differ by orders of magnitude.
	if hi/lo < 10 {
		t.Errorf("degradation probabilities span only %vx", hi/lo)
	}
}

func TestContingencyRejectsIndependence(t *testing.T) {
	tr := genTrace(t, 61, 365)
	tab := tr.ContingencyTable15Min()
	res, err := stats.ChiSquareIndependence(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected(0.01) {
		t.Fatalf("degradation/cut independence not rejected: p = %v", res.PValue)
	}
	if res.PValue > 1e-20 {
		t.Errorf("p-value %v much larger than the paper's < 1e-50 scale", res.PValue)
	}
}

func TestFeatureChiSquares(t *testing.T) {
	// Table 1: all four critical features significantly relate to failure.
	tr := genTrace(t, 71, 365)
	ds := tr.Dataset()
	if len(ds) < 300 {
		t.Skipf("dataset too small: %d", len(ds))
	}
	failed := make([]bool, len(ds))
	features := map[string][]float64{
		"time": make([]float64, len(ds)), "degree": make([]float64, len(ds)),
		"gradient": make([]float64, len(ds)), "fluctuation": make([]float64, len(ds)),
	}
	for i, ex := range ds {
		failed[i] = ex.Failed
		features["time"][i] = float64(ex.Features.HourOfDay)
		features["degree"][i] = ex.Features.DegreeDB
		features["gradient"][i] = ex.Features.GradientDB
		features["fluctuation"][i] = ex.Features.Fluctuation
	}
	for name, vals := range features {
		res, err := stats.FeatureChiSquare(vals, failed, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Rejected(0.01) {
			t.Errorf("feature %s not significant: p = %v", name, res.PValue)
		}
	}
}

func TestSplitPerFiberOrdering(t *testing.T) {
	tr := genTrace(t, 81, 180)
	train, test, err := tr.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	total := len(train) + len(test)
	if total != len(tr.Episodes) {
		t.Fatalf("split lost examples: %d + %d != %d", len(train), len(test), len(tr.Episodes))
	}
	frac := float64(len(train)) / float64(total)
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("train fraction = %v", frac)
	}
	if _, _, err := tr.Split(0); err == nil {
		t.Fatal("zero fraction accepted")
	}
}

func TestGranularitySweepMonotone(t *testing.T) {
	tr := genTrace(t, 91, 365)
	pts := tr.GranularitySweep([]int{1, 10, 60, 300})
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Appendix A.8: coverage decays with coarser granularity.
	for i := 1; i < len(pts); i++ {
		if pts[i].Coverage > pts[i-1].Coverage+1e-9 {
			t.Fatalf("coverage increased with coarser sampling: %+v", pts)
		}
	}
	if pts[0].Coverage < 0.15 {
		t.Errorf("1s coverage = %v, want ~alpha (0.25)", pts[0].Coverage)
	}
	if pts[3].Coverage > pts[0].Coverage/2 {
		t.Errorf("5-minute coverage %v should be far below 1s coverage %v", pts[3].Coverage, pts[0].Coverage)
	}
}

func TestLossSeriesRendersEvents(t *testing.T) {
	tr := genTrace(t, 101, 60)
	if len(tr.Cuts) == 0 {
		t.Skip("no cuts in short trace")
	}
	c := tr.Cuts[0]
	s, err := tr.LossSeries(c.Fiber, c.AtUnixS-60, c.AtUnixS+60, 1)
	if err != nil {
		t.Fatal(err)
	}
	sawCut := false
	for _, smp := range s {
		if smp.ExcessDB > 20 {
			sawCut = true
		}
	}
	if !sawCut {
		t.Fatal("loss series does not show the scheduled cut")
	}
	if _, err := tr.LossSeries(-1, 0, 10, 1); err == nil {
		t.Fatal("bad fiber accepted")
	}
	if _, err := tr.LossSeries(0, 10, 5, 1); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestDegradationToCutDelays(t *testing.T) {
	tr := genTrace(t, 111, 365)
	delays := tr.DegradationToCutDelays()
	if len(delays) == 0 {
		t.Fatal("no delays computed")
	}
	ecdf := stats.NewECDF(delays)
	// Fig 5a: a solid fraction of cuts follow a degradation within 1000s;
	// predictable ones by construction, plus chance co-occurrences.
	if got := ecdf.At(1000); got < 0.2 {
		t.Errorf("P(delay <= 1000s) = %v, want a substantial fraction", got)
	}
	for _, d := range delays {
		if d < 0 {
			t.Fatal("negative delay")
		}
	}
}

func TestLostCapacityByRegion(t *testing.T) {
	tr := genTrace(t, 121, 365)
	byRegion := tr.LostCapacityByRegion()
	if len(byRegion) == 0 {
		t.Fatal("no regions")
	}
	for region, losses := range byRegion {
		for _, l := range losses {
			if l <= 0 {
				t.Fatalf("region %s has non-positive loss %v", region, l)
			}
		}
	}
}

func TestFiberFragilityDrivesOutcomes(t *testing.T) {
	// Appendix A.6: fiber ID is the most informative feature. Verify the
	// generative model honors that: fragile fibers fail more.
	tr := genTrace(t, 131, 365)
	perFiberFail := make(map[int][2]int) // fiber -> {failures, episodes}
	for _, e := range tr.Episodes {
		v := perFiberFail[e.Fiber]
		if e.LedToCut {
			v[0]++
		}
		v[1]++
		perFiberFail[e.Fiber] = v
	}
	var fragileRate, robustRate []float64
	for fi, v := range perFiberFail {
		if v[1] < 10 {
			continue
		}
		rate := float64(v[0]) / float64(v[1])
		if tr.Fragility[fi] > 0.5 {
			fragileRate = append(fragileRate, rate)
		} else if tr.Fragility[fi] < -0.5 {
			robustRate = append(robustRate, rate)
		}
	}
	if len(fragileRate) == 0 || len(robustRate) == 0 {
		t.Skip("insufficient fibers in the fragility tails")
	}
	if stats.Mean(fragileRate) <= stats.Mean(robustRate) {
		t.Errorf("fragile fibers fail at %v <= robust %v", stats.Mean(fragileRate), stats.Mean(robustRate))
	}
}
