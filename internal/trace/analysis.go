package trace

import (
	"fmt"
	"sort"

	"prete/internal/optical"
	"prete/internal/stats"
)

// DurationsS returns all degradation durations (Fig 4a's sample).
func (t *Trace) DurationsS() []float64 {
	out := make([]float64, len(t.Episodes))
	for i, e := range t.Episodes {
		out[i] = float64(e.DurationS)
	}
	return out
}

// DegradationToCutDelays returns, for every cut that has any preceding
// degradation on the same fiber, the delay from that degradation's onset to
// the cut (Fig 5a's sample). Abrupt cuts with no prior degradation at all
// are skipped.
func (t *Trace) DegradationToCutDelays() []float64 {
	// per-fiber onset lists are already time sorted (Episodes is sorted).
	onsets := make(map[int][]int64)
	for _, e := range t.Episodes {
		onsets[e.Fiber] = append(onsets[e.Fiber], e.OnsetUnixS)
	}
	var out []float64
	for _, c := range t.Cuts {
		lst := onsets[c.Fiber]
		i := sort.Search(len(lst), func(i int) bool { return lst[i] > c.AtUnixS })
		if i == 0 {
			continue
		}
		out = append(out, float64(c.AtUnixS-lst[i-1]))
	}
	return out
}

// EventCounts are Fig 5b's normalized quantities.
type EventCounts struct {
	Degradations    int
	Cuts            int
	PredictableCuts int
}

// Alpha returns the measured fraction of predictable cuts.
func (c EventCounts) Alpha() float64 {
	if c.Cuts == 0 {
		return 0
	}
	return float64(c.PredictableCuts) / float64(c.Cuts)
}

// PCutGivenDeg returns the measured conditional failure probability.
func (c EventCounts) PCutGivenDeg() float64 {
	if c.Degradations == 0 {
		return 0
	}
	return float64(c.PredictableCuts) / float64(c.Degradations)
}

// Counts tallies the trace's events.
func (t *Trace) Counts() EventCounts {
	c := EventCounts{Degradations: len(t.Episodes), Cuts: len(t.Cuts)}
	for _, cut := range t.Cuts {
		if cut.Predictable {
			c.PredictableCuts++
		}
	}
	return c
}

// PerFiberCounts returns degradation and cut counts per fiber — Fig 12a's
// scatter, whose linear fit §6.1 uses to tie p_i to p_d.
func (t *Trace) PerFiberCounts() (degs, cuts []float64) {
	nf := len(t.Net.Fibers)
	degs = make([]float64, nf)
	cuts = make([]float64, nf)
	for _, e := range t.Episodes {
		degs[e.Fiber]++
	}
	for _, c := range t.Cuts {
		cuts[c.Fiber]++
	}
	return degs, cuts
}

// ContingencyTable15Min builds Appendix A.1's table: 15-minute epochs
// cross-tabulated by (degradation present) x (failure present).
func (t *Trace) ContingencyTable15Min() *stats.ContingencyTable {
	const epochS = 900
	horizon := int64(t.Cfg.Days) * 24 * 3600
	epochs := int(horizon / epochS)
	type key struct{ fiber, epoch int }
	deg := make(map[key]bool)
	cut := make(map[key]bool)
	for _, e := range t.Episodes {
		deg[key{e.Fiber, int(e.OnsetUnixS / epochS)}] = true
	}
	for _, c := range t.Cuts {
		cut[key{c.Fiber, int(c.AtUnixS / epochS)}] = true
	}
	tab := stats.NewContingencyTable(2, 2)
	for fi := range t.Net.Fibers {
		for e := 0; e < epochs; e++ {
			k := key{fi, e}
			r, c := 0, 0
			if cut[k] {
				r = 1
			}
			if deg[k] {
				c = 1
			}
			tab.Add(r, c, 1)
		}
	}
	return tab
}

// LabeledExample is one NN training/testing sample.
type LabeledExample struct {
	Features optical.Features
	Failed   bool
	TrueP    float64
}

// Dataset returns all labeled degradation episodes.
func (t *Trace) Dataset() []LabeledExample {
	out := make([]LabeledExample, len(t.Episodes))
	for i, e := range t.Episodes {
		out[i] = LabeledExample{Features: e.Features, Failed: e.LedToCut, TrueP: e.TrueP}
	}
	return out
}

// Split performs the Appendix A.2 train/test split: "the first 80% of each
// fiber's degradation signals as training data and the remaining 20% ... as
// testing data".
func (t *Trace) Split(trainFrac float64) (train, test []LabeledExample, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("trace: train fraction %v out of (0,1)", trainFrac)
	}
	perFiber := make(map[int][]LabeledExample)
	for _, e := range t.Episodes {
		perFiber[e.Fiber] = append(perFiber[e.Fiber], LabeledExample{Features: e.Features, Failed: e.LedToCut, TrueP: e.TrueP})
	}
	fibers := make([]int, 0, len(perFiber))
	for f := range perFiber {
		fibers = append(fibers, f)
	}
	sort.Ints(fibers)
	for _, f := range fibers {
		lst := perFiber[f] // already time ordered (Episodes sorted by onset)
		cutAt := int(float64(len(lst)) * trainFrac)
		train = append(train, lst[:cutAt]...)
		test = append(test, lst[cutAt:]...)
	}
	return train, test, nil
}

// GranularityPoint is one row of Appendix A.8's sweep.
type GranularityPoint struct {
	GranularityS int
	Coverage     float64 // predictable cuts detectable / total cuts
	Occurrence   float64 // predictable cuts detectable / degradations detectable
}

// GranularitySweep evaluates how collection granularity erodes
// predictability: a degradation is detectable at granularity g iff some
// sampling instant k*g falls inside [onset, onset+duration).
func (t *Trace) GranularitySweep(granularitiesS []int) []GranularityPoint {
	out := make([]GranularityPoint, 0, len(granularitiesS))
	totalCuts := len(t.Cuts)
	for _, g := range granularitiesS {
		if g < 1 {
			continue
		}
		degDetected := 0
		predictableDetected := 0
		for _, e := range t.Episodes {
			if sampleLandsIn(e.OnsetUnixS, e.DurationS, g) {
				degDetected++
				if e.LedToCut {
					predictableDetected++
				}
			}
		}
		p := GranularityPoint{GranularityS: g}
		if totalCuts > 0 {
			p.Coverage = float64(predictableDetected) / float64(totalCuts)
		}
		if degDetected > 0 {
			p.Occurrence = float64(predictableDetected) / float64(degDetected)
		}
		out = append(out, p)
	}
	return out
}

func sampleLandsIn(onset int64, duration, g int) bool {
	// first sampling instant >= onset is ceil(onset/g)*g
	gg := int64(g)
	first := ((onset + gg - 1) / gg) * gg
	return first < onset+int64(duration)
}

// LossSeries renders the fiber's transmission loss at the requested
// sampling instants (Fig 1a / Fig 4b). It evaluates the event schedule
// rather than synthesizing every second, so week-long windows are cheap.
func (t *Trace) LossSeries(fiber int, fromS, toS int64, stepS int) ([]optical.Sample, error) {
	if fiber < 0 || fiber >= len(t.Net.Fibers) {
		return nil, fmt.Errorf("trace: fiber %d out of range", fiber)
	}
	if stepS < 1 || toS <= fromS {
		return nil, fmt.Errorf("trace: bad window [%d, %d) step %d", fromS, toS, stepS)
	}
	baseline := t.Net.Fibers[fiber].LengthKm*optical.BaselinePerKmDB + 2.0
	rng := stats.NewRNG(t.Cfg.Seed ^ uint64(fiber)<<32 ^ 0x10551)
	var out []optical.Sample
	for at := fromS; at < toS; at += int64(stepS) {
		excess := t.excessAt(fiber, at)
		noise := rng.NormFloat64() * optical.NoiseSigmaDB
		loss := baseline + excess + noise
		out = append(out, optical.Sample{
			UnixS: at, TxDBm: optical.TxPowerDBm, RxDBm: optical.TxPowerDBm - loss,
			LossDB: loss, ExcessDB: loss - baseline,
			State: optical.Classify(excess),
		})
	}
	return out, nil
}

// excessAt evaluates the scheduled excess loss of a fiber at an instant.
func (t *Trace) excessAt(fiber int, at int64) float64 {
	for _, c := range t.Cuts {
		if c.Fiber == fiber && at >= c.AtUnixS && at < c.AtUnixS+int64(c.RepairS) {
			return optical.CutThresholdDB + 25
		}
	}
	for _, e := range t.Episodes {
		if e.Fiber == fiber && at >= e.OnsetUnixS && at < e.OnsetUnixS+int64(e.DurationS) {
			return e.Features.DegreeDB
		}
	}
	return 0
}

// LostCapacityByRegion returns, per region, the IP capacity (Gbps) lost in
// each cut event — Fig 1b's per-region CDF sample.
func (t *Trace) LostCapacityByRegion() map[string][]float64 {
	out := make(map[string][]float64)
	for _, c := range t.Cuts {
		f := t.Net.Fibers[c.Fiber]
		out[f.Region] = append(out[f.Region], t.Net.LostCapacity(f.ID))
	}
	return out
}
