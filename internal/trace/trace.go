// Package trace synthesizes the year-scale optical event history that the
// paper measures on Tencent's production WAN. The generator reproduces the
// published marginal shapes so that every downstream consumer — the
// telemetry pipeline, the chi-square analyses of §3, the NN training set of
// §4.1, and the scenario probabilities of §6.1 — exercises the same code
// paths the production data would:
//
//   - per-fiber degradation probabilities follow Weibull(0.8, 0.002) per
//     epoch, spanning orders of magnitude (Fig 12b);
//   - fiber cuts scale linearly with degradations (Fig 12a);
//   - about 40% of degradations lead to cuts, and about 25% of cuts are
//     preceded by a degradation within a TE period (Fig 5b);
//   - degradation durations are ephemeral, with half under ~10 s (Fig 4a);
//   - the conditional failure probability depends on the onset hour, the
//     degradation degree, its gradient, and its fluctuation (Fig 6), with a
//     strong per-fiber fragility component (Appendix A.6: fiber ID is the
//     most informative feature).
package trace

import (
	"fmt"
	"math"
	"sort"

	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/topology"
)

// Config parameterizes trace generation.
type Config struct {
	Seed   uint64
	Days   int // trace horizon; the paper collects "about one year"
	EpochS int // epoch length in seconds; 900 (15 min) per §2.1 / Appendix A.1

	// DegWeibull is the per-epoch degradation probability distribution
	// across fibers (§6.1: shape 0.8, scale 0.002).
	DegWeibull stats.Weibull
	// PCutGivenDeg is the mean conditional failure probability after a
	// degradation (§3.2: "only 40% of fiber degradation will lead to fiber
	// cuts").
	PCutGivenDeg float64
	// PredictableFrac is alpha, the fraction of all cuts preceded by a
	// degradation within a TE period (§3.1: about 25%).
	PredictableFrac float64
	// ExtendedIndicators enables the §8 future-work telemetry: per-episode
	// polarization mode dispersion and chromatic dispersion readings that
	// carry additional failure signal, improving predictability beyond the
	// four critical features.
	ExtendedIndicators bool
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Days:            365,
		EpochS:          900,
		DegWeibull:      stats.Weibull{Shape: 0.8, Scale: 0.002},
		PCutGivenDeg:    0.40,
		PredictableFrac: 0.25,
	}
}

// Episode is one degradation event with its ground-truth outcome.
type Episode struct {
	Fiber      int
	OnsetUnixS int64
	DurationS  int
	Features   optical.Features
	Profile    optical.DegradationProfile
	LedToCut   bool
	CutDelayS  int // onset -> cut, only when LedToCut
	// TrueP is the generative failure probability; the oracle knows it,
	// models must estimate it.
	TrueP float64
}

// Cut is one fiber-cut event.
type Cut struct {
	Fiber       int
	AtUnixS     int64
	Predictable bool // preceded by a degradation within a TE period
	RepairS     int
}

// Trace is a generated event history bound to a topology.
type Trace struct {
	Cfg      Config
	Net      *topology.Network
	Episodes []Episode
	Cuts     []Cut
	// DegProb and CutProb are the per-fiber per-epoch probabilities p_d
	// and p_i the generator drew (ground truth for §6.1's scenario
	// construction).
	DegProb []float64
	CutProb []float64
	// Fragility is the latent per-fiber failure propensity (what the NN's
	// fiber-ID embedding must learn).
	Fragility []float64
}

// failure-model coefficients (§3.2 shapes).
const (
	hourAmp     = 1.2  // midnight-peaked, 6am-trough cosine
	degreeCoef  = 0.55 // per dB over the 6.5 dB midpoint
	gradCoef    = 3.2  // reward for steep gradients
	fluctCoef   = 2.6  // reward for frequent fluctuations
	fragSigma   = 1.8  // fiber fragility spread (fiber ID dominates, A.6)
	pmdCoef     = 1.4  // extended-indicator weight (only when collected)
	cdCoef      = 1.0  // extended-indicator weight (only when collected)
	maxDegProb  = 0.05 // cap on the Weibull draw to keep epochs meaningful
	maxCutDelay = 290  // predictable cuts land within a 5-minute TE period
)

// trueFailureProbability is the generative ground truth: a logistic model
// over the §3.2 critical features plus the fiber's latent fragility.
func trueFailureProbability(f optical.Features, fragility, bias float64) float64 {
	hour := float64(f.HourOfDay)
	z := bias +
		fragility +
		hourAmp*math.Cos(2*math.Pi*hour/12) + // peaks at 0h and 12h, troughs at 6h/18h
		degreeCoef*(f.DegreeDB-6.5) +
		gradCoef*math.Min(f.GradientDB, 0.8) +
		fluctCoef*math.Min(f.Fluctuation, 1.0) +
		pmdCoef*math.Min(f.PMDps/10, 1.5) +
		cdCoef*math.Min(f.CDpsNm/20, 1.5)
	return 1 / (1 + math.Exp(-z))
}

// Generate produces a Trace over the given topology's fibers.
func Generate(cfg Config, net *topology.Network) (*Trace, error) {
	if cfg.Days <= 0 || cfg.EpochS <= 0 {
		return nil, fmt.Errorf("trace: non-positive horizon (days=%d epochS=%d)", cfg.Days, cfg.EpochS)
	}
	if err := cfg.DegWeibull.Validate(); err != nil {
		return nil, err
	}
	if cfg.PCutGivenDeg <= 0 || cfg.PCutGivenDeg >= 1 || cfg.PredictableFrac <= 0 || cfg.PredictableFrac >= 1 {
		return nil, fmt.Errorf("trace: probabilities out of (0,1): pCut=%v alpha=%v", cfg.PCutGivenDeg, cfg.PredictableFrac)
	}
	rng := stats.NewRNG(cfg.Seed)
	nf := len(net.Fibers)
	tr := &Trace{
		Cfg:       cfg,
		Net:       net,
		DegProb:   make([]float64, nf),
		CutProb:   make([]float64, nf),
		Fragility: make([]float64, nf),
	}
	// cuts scale linearly with degradations: p_i = slope * p_d where the
	// slope follows from pCut|deg and alpha (predictable = pCut*deg,
	// total cuts = predictable/alpha).
	slope := cfg.PCutGivenDeg / cfg.PredictableFrac
	for i := range tr.DegProb {
		p := cfg.DegWeibull.Sample(rng)
		if p > maxDegProb {
			p = maxDegProb
		}
		tr.DegProb[i] = p
		tr.CutProb[i] = slope * p
		tr.Fragility[i] = rng.NormFloat64() * fragSigma
	}
	// Calibrate the logistic bias so the mean conditional failure
	// probability over a feature sample matches PCutGivenDeg.
	bias := calibrateBias(cfg, rng.Split(), tr.Fragility, net)

	epochs := cfg.Days * 24 * 3600 / cfg.EpochS
	durDist := stats.LogNormal{Mu: math.Log(10), Sigma: 1.1}   // Fig 4a: median ~10 s
	delayDist := stats.LogNormal{Mu: math.Log(60), Sigma: 0.9} // within the TE period
	repairDist := stats.LogNormal{Mu: math.Log(4 * 3600), Sigma: 0.8}

	for fi := 0; fi < nf; fi++ {
		frng := rng.Split()
		pd := tr.DegProb[fi]
		// Unpredictable (abrupt) cut probability per epoch.
		pAbrupt := tr.CutProb[fi] * (1 - cfg.PredictableFrac)
		for e := 0; e < epochs; e++ {
			epochStart := int64(e * cfg.EpochS)
			if frng.Bernoulli(pd) {
				ep := sampleEpisode(cfg, frng, net, fi, epochStart, durDist, delayDist, repairDist, tr.Fragility[fi], bias, tr)
				tr.Episodes = append(tr.Episodes, ep)
			}
			if frng.Bernoulli(pAbrupt) {
				tr.Cuts = append(tr.Cuts, Cut{
					Fiber:   fi,
					AtUnixS: epochStart + int64(frng.Intn(cfg.EpochS)),
					RepairS: int(repairDist.Sample(frng)),
				})
			}
		}
	}
	sort.Slice(tr.Cuts, func(i, j int) bool { return tr.Cuts[i].AtUnixS < tr.Cuts[j].AtUnixS })
	sort.Slice(tr.Episodes, func(i, j int) bool { return tr.Episodes[i].OnsetUnixS < tr.Episodes[j].OnsetUnixS })
	return tr, nil
}

// sampleEpisode draws one degradation episode and resolves its outcome.
func sampleEpisode(cfg Config, rng *stats.RNG, net *topology.Network, fi int,
	epochStart int64, durDist, delayDist, repairDist stats.LogNormal,
	fragility, bias float64, tr *Trace) Episode {

	fiber := net.Fibers[fi]
	onset := epochStart + int64(rng.Intn(cfg.EpochS))
	duration := int(durDist.Sample(rng))
	if duration < 2 {
		duration = 2
	}
	if duration > 3600 {
		duration = 3600
	}
	degree := 3 + 7*math.Pow(rng.Float64(), 1.3) // skewed toward mild degradations
	if degree >= optical.CutThresholdDB {
		degree = optical.CutThresholdDB - 0.1
	}
	gradient := math.Abs(rng.NormFloat64())*0.3 + 0.01
	fluctAmp := 0.0
	fluctPeriod := 0.0
	fluct := 0.0
	if rng.Bernoulli(0.6) {
		fluctAmp = 0.2 + rng.Float64()*0.8
		fluctPeriod = 3 + rng.Float64()*12
		fluct = math.Min(1, 2/fluctPeriod*2) // rough expected crossing rate
	}
	hour := int((onset / 3600) % 24)
	feats := optical.Features{
		HourOfDay:   hour,
		DegreeDB:    degree,
		GradientDB:  gradient,
		Fluctuation: fluct,
		FiberID:     fi,
		Region:      fiber.Region,
		Vendor:      fiber.Vendor,
		LengthKm:    fiber.LengthKm,
	}
	if cfg.ExtendedIndicators {
		// Mechanical stress that precedes a cut shows up as elevated PMD
		// and CD excursions (Feuerstein [11]); model them as heavy-tailed
		// positives so the extended model has real signal to harvest.
		feats.PMDps = math.Abs(rng.NormFloat64()) * 6
		feats.CDpsNm = math.Abs(rng.NormFloat64()) * 12
	}
	p := trueFailureProbability(feats, fragility, bias)
	led := rng.Bernoulli(p)
	ep := Episode{
		Fiber:      fi,
		OnsetUnixS: onset,
		DurationS:  duration,
		Features:   feats,
		LedToCut:   led,
		TrueP:      p,
	}
	ep.Profile = optical.DegradationProfile{
		DegreeDB:     degree,
		GradientDB:   gradient,
		FluctAmpDB:   fluctAmp,
		FluctPeriodS: fluctPeriod,
		DurationS:    duration,
		OnsetUnixS:   onset,
	}
	if led {
		delay := int(delayDist.Sample(rng))
		if delay < 2 {
			delay = 2
		}
		if delay > maxCutDelay {
			delay = maxCutDelay
		}
		ep.CutDelayS = delay
		ep.Profile.LeadsToCut = true
		ep.Profile.CutDelayS = delay
		ep.Profile.RepairS = int(repairDist.Sample(rng))
		tr.Cuts = append(tr.Cuts, Cut{
			Fiber:       fi,
			AtUnixS:     onset + int64(delay),
			Predictable: true,
			RepairS:     ep.Profile.RepairS,
		})
	}
	return ep
}

// calibrateBias finds the logistic intercept that makes the expected
// conditional failure probability equal cfg.PCutGivenDeg, by bisection over
// a feature sample.
func calibrateBias(cfg Config, rng *stats.RNG, fragility []float64, net *topology.Network) float64 {
	const samples = 4000
	type probe struct {
		f    optical.Features
		frag float64
	}
	probes := make([]probe, samples)
	for i := range probes {
		fi := rng.Intn(len(fragility))
		degree := 3 + 7*math.Pow(rng.Float64(), 1.3)
		fluct := 0.0
		if rng.Bernoulli(0.6) {
			period := 3 + rng.Float64()*12
			fluct = math.Min(1, 4/period)
		}
		f := optical.Features{
			HourOfDay:   rng.Intn(24),
			DegreeDB:    degree,
			GradientDB:  math.Abs(rng.NormFloat64())*0.3 + 0.01,
			Fluctuation: fluct,
			FiberID:     fi,
		}
		if cfg.ExtendedIndicators {
			f.PMDps = math.Abs(rng.NormFloat64()) * 6
			f.CDpsNm = math.Abs(rng.NormFloat64()) * 12
		}
		probes[i] = probe{f: f, frag: fragility[fi]}
	}
	mean := func(bias float64) float64 {
		var s float64
		for _, p := range probes {
			s += trueFailureProbability(p.f, p.frag, bias)
		}
		return s / samples
	}
	lo, hi := -10.0, 10.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if mean(mid) < cfg.PCutGivenDeg {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
