package lp

import (
	"math"
	"testing"
)

// fuzzReader decodes a fuzz byte stream into small LP building blocks. Every
// decoder is total — an exhausted stream yields zeros — so any input maps to
// a well-formed problem.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// coeff maps one byte to a coefficient in [-8, 8) in steps of 1/16, keeping
// the arithmetic well inside float64's exact range.
func (r *fuzzReader) coeff() float64 { return (float64(r.byte()) - 128) / 16 }

// pos01 maps one byte to a nonnegative value in [0, 4).
func (r *fuzzReader) pos01() float64 { return float64(r.byte()) / 64 }

// FuzzSimplex drives the two-phase simplex with random LPs built around a
// known feasible point x0: every constraint's RHS is derived from a.x0 so
// the problem is feasible by construction. The solver must never panic,
// never report Infeasible, and when it claims Optimal the returned point
// must satisfy every constraint and beat (or match) x0's objective —
// Unbounded and IterationLimit are legitimate outcomes for minimization
// with free negative directions or degenerate cycling.
func FuzzSimplex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 7, 1, 200, 50, 130, 0, 100, 9, 255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{1, 1, 255, 0, 255, 255, 255})
	f.Add([]byte{5, 200, 100, 50, 25, 12, 6, 3, 1, 0, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		nVars := 1 + int(r.byte())%6
		nCons := int(r.byte()) % 9

		p := NewProblem()
		x0 := make([]float64, nVars)
		for i := 0; i < nVars; i++ {
			p.AddVar(r.coeff(), "x")
			x0[i] = r.pos01()
		}
		type row struct {
			terms []Term
			op    Op
			rhs   float64
		}
		rows := make([]row, 0, nCons)
		for c := 0; c < nCons; c++ {
			nTerms := 1 + int(r.byte())%nVars
			terms := make([]Term, 0, nTerms)
			dot := 0.0
			for k := 0; k < nTerms; k++ {
				v := int(r.byte()) % nVars // duplicates allowed: exercises mergeTerms
				co := r.coeff()
				terms = append(terms, Term{Var: v, Coeff: co})
				dot += co * x0[v]
			}
			op := Op(int(r.byte()) % 3)
			rhs := dot
			switch op {
			case LE:
				rhs = dot + r.pos01() // x0 satisfies a.x0 <= rhs
			case GE:
				rhs = dot - r.pos01() // x0 satisfies a.x0 >= rhs
			}
			if _, err := p.AddConstraint(terms, op, rhs, "c"); err != nil {
				t.Fatalf("constraint rejected: %v", err)
			}
			rows = append(rows, row{terms, op, rhs})
		}

		sol := p.Solve()
		switch sol.Status {
		case Infeasible:
			t.Fatalf("solver claims infeasible but x0=%v is feasible by construction", x0)
		case Unbounded, IterationLimit:
			return
		}

		// Optimal: the returned point must be primal-feasible and at least as
		// good as the known feasible point.
		const tol = 1e-6
		if len(sol.X) != nVars {
			t.Fatalf("solution has %d vars, want %d", len(sol.X), nVars)
		}
		objX0 := 0.0
		for i := 0; i < nVars; i++ {
			if sol.X[i] < -tol || math.IsNaN(sol.X[i]) || math.IsInf(sol.X[i], 0) {
				t.Fatalf("x[%d] = %v violates x >= 0", i, sol.X[i])
			}
			objX0 += p.objective[i] * x0[i]
		}
		if sol.Objective > objX0+tol {
			t.Fatalf("optimal objective %v worse than feasible point's %v", sol.Objective, objX0)
		}
		for ci, c := range rows {
			lhs := 0.0
			for _, term := range c.terms {
				lhs += term.Coeff * sol.X[term.Var]
			}
			switch c.op {
			case LE:
				if lhs > c.rhs+tol {
					t.Fatalf("constraint %d violated: %v <= %v", ci, lhs, c.rhs)
				}
			case GE:
				if lhs < c.rhs-tol {
					t.Fatalf("constraint %d violated: %v >= %v", ci, lhs, c.rhs)
				}
			case EQ:
				if math.Abs(lhs-c.rhs) > tol {
					t.Fatalf("constraint %d violated: %v == %v", ci, lhs, c.rhs)
				}
			}
		}
	})
}
