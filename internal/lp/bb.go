package lp

import (
	"fmt"
	"math"
	"sort"
)

// MIP wraps a Problem with binary restrictions on a subset of variables.
// PreTE's Benders master problems (choose the scenario-selection variables
// delta) are exactly this shape: few binaries, few cut rows.
type MIP struct {
	*Problem
	binary map[int]bool
}

// NewMIP returns an empty mixed binary program.
func NewMIP() *MIP {
	return &MIP{Problem: NewProblem(), binary: make(map[int]bool)}
}

// AddBinaryVar introduces a variable constrained to {0, 1}.
func (m *MIP) AddBinaryVar(objCoeff float64, name string) int {
	v := m.Problem.AddVar(objCoeff, name)
	m.binary[v] = true
	// Relaxation bound x <= 1 (x >= 0 is implicit).
	if _, err := m.Problem.AddUpperBound(v, 1, name+"<=1"); err != nil {
		panic(err) // unreachable: v was just created
	}
	return v
}

// MIPOptions tunes the branch-and-bound search.
type MIPOptions struct {
	// MaxNodes caps the search tree; 0 means a generous default. When the
	// cap is hit the best incumbent found so far is returned with
	// Status == StatusIterLimit.
	MaxNodes int
	// Gap is the relative optimality gap at which search stops early.
	Gap float64
	// Budget, when non-nil, is spent cooperatively: one unit per
	// branch-and-bound node plus one per pivot of every node LP. On
	// exhaustion the best incumbent so far is returned with
	// Status == Truncated (or the root relaxation when none exists).
	Budget *Budget
}

// SolveMIP runs best-first branch-and-bound with LP relaxations.
func (m *MIP) SolveMIP(opts MIPOptions) *Solution {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 20000
	}
	type node struct {
		fixed map[int]float64
		bound float64
	}
	root := node{fixed: map[int]float64{}}
	relax := m.solveWithFixings(root.fixed, opts.Budget)
	pivots := relax.Pivots
	if relax.Status != Optimal {
		return relax
	}
	root.bound = relax.Objective

	var incumbent *Solution
	stack := []node{root}
	nodes := 0
	truncated := false
	// lpLimited records a node LP that hit its hard pivot cap. Such a node
	// cannot simply be pruned — its subtree may hold the true optimum — so
	// the search result is downgraded to StatusIterLimit instead of being
	// silently reported as optimal.
	lpLimited := false
	for len(stack) > 0 && nodes < opts.MaxNodes {
		if !opts.Budget.Spend(1) {
			truncated = true
			break
		}
		nodes++
		// Best-first: pop the node with the smallest bound.
		bi := 0
		for i := range stack {
			if stack[i].bound < stack[bi].bound {
				bi = i
			}
		}
		nd := stack[bi]
		stack = append(stack[:bi], stack[bi+1:]...)
		if incumbent != nil && nd.bound >= incumbent.Objective-math.Abs(incumbent.Objective)*opts.Gap-1e-12 {
			continue
		}
		sol := m.solveWithFixings(nd.fixed, opts.Budget)
		pivots += sol.Pivots
		if sol.Status == Truncated {
			truncated = true
			break
		}
		if sol.Status == IterationLimit {
			lpLimited = true
			continue
		}
		if sol.Status != Optimal {
			continue
		}
		if incumbent != nil && sol.Objective >= incumbent.Objective-1e-12 {
			continue
		}
		branchVar := m.mostFractional(sol)
		if branchVar < 0 {
			// Integral: new incumbent.
			cp := *sol
			incumbent = &cp
			continue
		}
		for _, val := range [2]float64{math.Round(sol.X[branchVar]), 1 - math.Round(sol.X[branchVar])} {
			child := node{fixed: make(map[int]float64, len(nd.fixed)+1), bound: sol.Objective}
			for k, v := range nd.fixed {
				child.fixed[k] = v
			}
			child.fixed[branchVar] = val
			stack = append(stack, child)
		}
	}
	if incumbent == nil {
		if truncated || nodes >= opts.MaxNodes {
			// Search cut short before any integral solution: report the
			// (possibly fractional) root relaxation rather than claiming
			// infeasibility.
			relax.Status = StatusIterLimit
			if truncated {
				relax.Status = Truncated
			}
			relax.Pivots, relax.Nodes = pivots, nodes
			return relax
		}
		return &Solution{Status: Infeasible, Pivots: pivots, Nodes: nodes}
	}
	switch {
	case truncated:
		incumbent.Status = Truncated
	case len(stack) > 0 && nodes >= opts.MaxNodes:
		incumbent.Status = StatusIterLimit
	case lpLimited:
		// Every open node was closed, but at least one pruning decision
		// rested on an uncertified (pivot-capped) LP: the incumbent is
		// feasible yet not provably optimal.
		incumbent.Status = StatusIterLimit
	}
	incumbent.Pivots, incumbent.Nodes = pivots, nodes
	return incumbent
}

// solveWithFixings solves the LP relaxation with some binaries fixed via
// temporary equality rows.
func (m *MIP) solveWithFixings(fixed map[int]float64, budget *Budget) *Solution {
	sub := &Problem{
		numVars:     m.numVars,
		objective:   m.objective,
		names:       m.names,
		constraints: append([]Constraint(nil), m.constraints...),
	}
	vars := make([]int, 0, len(fixed))
	for v := range fixed {
		vars = append(vars, v)
	}
	sort.Ints(vars) // deterministic row order regardless of map iteration
	for _, v := range vars {
		if _, err := sub.AddConstraint([]Term{{Var: v, Coeff: 1}}, EQ, fixed[v], fmt.Sprintf("fix x%d=%g", v, fixed[v])); err != nil {
			return &Solution{Status: Infeasible}
		}
	}
	return sub.SolveBudget(budget)
}

// mostFractional returns the binary variable farthest from integrality in
// the solution, or -1 when all binaries are integral.
func (m *MIP) mostFractional(sol *Solution) int {
	best, bestDist := -1, 1e-6
	for v := 0; v < len(sol.X); v++ {
		if !m.binary[v] {
			continue
		}
		frac := math.Abs(sol.X[v] - math.Round(sol.X[v]))
		if frac > bestDist {
			best, bestDist = v, frac
		}
	}
	return best
}

// IsBinary reports whether variable v is binary-restricted.
func (m *MIP) IsBinary(v int) bool { return m.binary[v] }
