package lp

import (
	"math"
	"testing"

	"prete/internal/stats"
)

func TestMIPKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a + b + c <= 2 (binary) -> a,b -> 16.
	m := NewMIP()
	a := m.AddBinaryVar(-10, "a")
	b := m.AddBinaryVar(-6, "b")
	c := m.AddBinaryVar(-4, "c")
	if _, err := m.AddConstraint([]Term{{a, 1}, {b, 1}, {c, 1}}, LE, 2, "cap"); err != nil {
		t.Fatal(err)
	}
	sol := m.SolveMIP(MIPOptions{})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective+16) > 1e-6 {
		t.Fatalf("objective = %v, want -16", sol.Objective)
	}
	if sol.X[a] < 0.5 || sol.X[b] < 0.5 || sol.X[c] > 0.5 {
		t.Fatalf("selection = %v", sol.X)
	}
}

func TestMIPFractionalRelaxation(t *testing.T) {
	// max 5a + 4b s.t. 6a + 5b <= 8: LP relaxation fractional, integer
	// optimum is a single item: a (5) beats b (4).
	m := NewMIP()
	a := m.AddBinaryVar(-5, "a")
	b := m.AddBinaryVar(-4, "b")
	if _, err := m.AddConstraint([]Term{{a, 6}, {b, 5}}, LE, 8, "w"); err != nil {
		t.Fatal(err)
	}
	sol := m.SolveMIP(MIPOptions{})
	if sol.Status != Optimal || math.Abs(sol.Objective+5) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
	for v := range m.binary {
		x := sol.X[v]
		if math.Abs(x-math.Round(x)) > 1e-6 {
			t.Fatalf("binary %d fractional: %v", v, x)
		}
	}
}

func TestMIPInfeasible(t *testing.T) {
	m := NewMIP()
	a := m.AddBinaryVar(1, "a")
	if _, err := m.AddConstraint([]Term{{a, 1}}, GE, 2, "impossible"); err != nil {
		t.Fatal(err)
	}
	if sol := m.SolveMIP(MIPOptions{}); sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestMIPMixed(t *testing.T) {
	// Mixed: binary gate g enables continuous x <= 10g; max x - 3g.
	// With g=1: x=10, obj = 7 (we minimize -x + 3g = -7).
	m := NewMIP()
	x := m.AddVar(-1, "x")
	g := m.AddBinaryVar(3, "g")
	if _, err := m.AddConstraint([]Term{{x, 1}, {g, -10}}, LE, 0, "gate"); err != nil {
		t.Fatal(err)
	}
	sol := m.SolveMIP(MIPOptions{})
	if sol.Status != Optimal || math.Abs(sol.Objective+7) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

// TestMIPAgainstBruteForce cross-checks branch-and-bound against exhaustive
// enumeration on random small binary programs.
func TestMIPAgainstBruteForce(t *testing.T) {
	rng := stats.NewRNG(4242)
	for trial := 0; trial < 20; trial++ {
		const nb = 6
		m := NewMIP()
		costs := make([]float64, nb)
		vars := make([]int, nb)
		for i := 0; i < nb; i++ {
			costs[i] = math.Floor(rng.Float64()*21) - 10
			vars[i] = m.AddBinaryVar(costs[i], "b")
		}
		weights := make([]float64, nb)
		terms := make([]Term, nb)
		for i := 0; i < nb; i++ {
			weights[i] = 1 + math.Floor(rng.Float64()*5)
			terms[i] = Term{vars[i], weights[i]}
		}
		cap := 3 + math.Floor(rng.Float64()*10)
		if _, err := m.AddConstraint(terms, LE, cap, "cap"); err != nil {
			t.Fatal(err)
		}
		sol := m.SolveMIP(MIPOptions{})
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		best := math.Inf(1)
		for mask := 0; mask < 1<<nb; mask++ {
			var w, c float64
			for i := 0; i < nb; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					c += costs[i]
				}
			}
			if w <= cap && c < best {
				best = c
			}
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: got %v, brute force %v", trial, sol.Objective, best)
		}
	}
}

func TestMIPNodeLimitReturnsIncumbent(t *testing.T) {
	m := NewMIP()
	var terms []Term
	for i := 0; i < 12; i++ {
		v := m.AddBinaryVar(-1, "b")
		terms = append(terms, Term{v, 1.5})
	}
	if _, err := m.AddConstraint(terms, LE, 7, "cap"); err != nil {
		t.Fatal(err)
	}
	sol := m.SolveMIP(MIPOptions{MaxNodes: 3})
	// With a tiny node budget the solver may or may not prove optimality,
	// but it must return something sane, never panic.
	if sol.Status != Optimal && sol.Status != IterationLimit && sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestIsBinary(t *testing.T) {
	m := NewMIP()
	x := m.AddVar(1, "x")
	b := m.AddBinaryVar(1, "b")
	if m.IsBinary(x) || !m.IsBinary(b) {
		t.Fatal("IsBinary misreports")
	}
}
