package lp

import (
	"math"
)

const (
	eps = 1e-9
	// blandTrigger: after this many consecutive degenerate pivots the
	// solver switches to Bland's rule, which cannot cycle.
	blandTrigger = 64
)

// Solve runs a two-phase dense-tableau primal simplex and returns the
// optimal solution with primal values and duals. Duals[i] is the shadow
// price dObjective/dRHS of constraint i (so <=0 for binding LE rows and
// >=0 for binding GE rows of a minimization).
func (p *Problem) Solve() *Solution { return p.SolveBudget(nil) }

// SolveBudget is Solve under a cooperative compute budget: the pivot loop
// spends one work unit per pivot and returns Status == Truncated (with the
// pivots performed so far recorded) the moment the budget expires. A nil
// budget is unlimited, making SolveBudget(nil) identical to Solve.
func (p *Problem) SolveBudget(budget *Budget) *Solution {
	t := newTableau(p)
	t.budget = budget
	// Phase 1: minimize the sum of artificials.
	if t.numArt > 0 {
		t.priceOut(t.phase1Costs())
		status := t.iterate(true)
		if status != Optimal {
			return &Solution{Status: status, Pivots: t.pivots}
		}
		if t.rhsValue() > 1e-6 {
			return &Solution{Status: Infeasible, Pivots: t.pivots}
		}
		t.evictArtificials()
	}
	// Phase 2: original objective, artificials barred from entering.
	t.priceOut(t.phase2Costs())
	status := t.iterate(false)
	if status != Optimal {
		return &Solution{Status: status, Pivots: t.pivots}
	}
	return t.extract()
}

// tableau is the dense simplex tableau. Columns are laid out as
// [structural | slack+surplus | artificial | RHS]; the last row is the
// reduced-cost (objective) row.
type tableau struct {
	p       *Problem
	m       int // constraint rows
	nStruct int
	nSlack  int
	numArt  int
	cols    int // total variable columns (excl. RHS)

	a     [][]float64 // (m+1) x (cols+1)
	basis []int       // basic column per row

	slackCol   []int     // per row: its slack/surplus column, or -1
	artCol     []int     // per row: its artificial column, or -1
	rowSign    []float64 // +1, or -1 when the row was flipped to make RHS >= 0
	degenerate int       // consecutive degenerate pivot counter
	iterLimit  int
	pivots     int     // total pivots across both phases (Solution.Pivots)
	budget     *Budget // cooperative cancellation; nil = unlimited
}

func newTableau(p *Problem) *tableau {
	m := len(p.constraints)
	t := &tableau{
		p:        p,
		m:        m,
		nStruct:  p.numVars,
		slackCol: make([]int, m),
		artCol:   make([]int, m),
		rowSign:  make([]float64, m),
		basis:    make([]int, m),
	}
	// Count slack and artificial columns. After flipping rows to RHS >= 0:
	//   LE  -> slack (basic)
	//   GE  -> surplus (-1) + artificial (basic)
	//   EQ  -> artificial (basic)
	type rowKind struct {
		op   Op
		sign float64
	}
	kinds := make([]rowKind, m)
	for i, c := range p.constraints {
		sign := 1.0
		op := c.Op
		if c.RHS < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		kinds[i] = rowKind{op: op, sign: sign}
		t.rowSign[i] = sign
		if op == LE || op == GE {
			t.nSlack++
		}
		if op == GE || op == EQ {
			t.numArt++
		}
	}
	t.cols = t.nStruct + t.nSlack + t.numArt
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, t.cols+1)
	}
	slackNext := t.nStruct
	artNext := t.nStruct + t.nSlack
	for i, c := range p.constraints {
		row := t.a[i]
		sign := t.rowSign[i]
		for _, term := range c.Terms {
			row[term.Var] += sign * term.Coeff
		}
		row[t.cols] = sign * c.RHS
		t.slackCol[i] = -1
		t.artCol[i] = -1
		switch kinds[i].op {
		case LE:
			row[slackNext] = 1
			t.slackCol[i] = slackNext
			t.basis[i] = slackNext
			slackNext++
		case GE:
			row[slackNext] = -1
			t.slackCol[i] = slackNext
			slackNext++
			row[artNext] = 1
			t.artCol[i] = artNext
			t.basis[i] = artNext
			artNext++
		case EQ:
			row[artNext] = 1
			t.artCol[i] = artNext
			t.basis[i] = artNext
			artNext++
		}
	}
	t.iterLimit = 200 * (m + t.cols + 10)
	return t
}

// phase1Costs is 1 on artificial columns, 0 elsewhere.
func (t *tableau) phase1Costs() []float64 {
	c := make([]float64, t.cols)
	for i := t.nStruct + t.nSlack; i < t.cols; i++ {
		c[i] = 1
	}
	return c
}

// phase2Costs is the user objective on structural columns.
func (t *tableau) phase2Costs() []float64 {
	c := make([]float64, t.cols)
	copy(c, t.p.objective)
	return c
}

// priceOut rebuilds the reduced-cost row for cost vector c given the
// current basis.
func (t *tableau) priceOut(c []float64) {
	obj := t.a[t.m]
	for j := 0; j <= t.cols; j++ {
		obj[j] = 0
	}
	copy(obj, c)
	for i := 0; i < t.m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j <= t.cols; j++ {
			obj[j] -= cb * row[j]
		}
	}
}

// rhsValue returns the current objective value (phase cost of the basis).
func (t *tableau) rhsValue() float64 { return -t.a[t.m][t.cols] }

// iterate pivots until optimality. In phase 2 (phase1 == false) artificial
// columns may not enter the basis.
func (t *tableau) iterate(phase1 bool) Status {
	barFrom := t.cols
	if !phase1 {
		barFrom = t.nStruct + t.nSlack
	}
	for iter := 0; iter < t.iterLimit; iter++ {
		col := t.chooseColumn(barFrom)
		if col < 0 {
			return Optimal
		}
		row := t.chooseRow(col)
		if row < 0 {
			return Unbounded
		}
		// One pivot = one deterministic work unit; stop before performing a
		// pivot the budget cannot pay for, so equal budgets truncate at the
		// same tableau.
		if !t.budget.Spend(1) {
			return Truncated
		}
		t.pivot(row, col)
	}
	return IterationLimit
}

// chooseColumn picks the entering column: Dantzig's rule normally, Bland's
// rule while escaping degeneracy. Columns >= barFrom may not enter.
func (t *tableau) chooseColumn(barFrom int) int {
	obj := t.a[t.m]
	if t.degenerate >= blandTrigger {
		for j := 0; j < barFrom; j++ {
			if obj[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	for j := 0; j < barFrom; j++ {
		if obj[j] < bestVal {
			best, bestVal = j, obj[j]
		}
	}
	return best
}

// chooseRow runs the minimum-ratio test for the entering column, breaking
// ties by smallest basis column (Bland-compatible).
func (t *tableau) chooseRow(col int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		aij := t.a[i][col]
		if aij <= eps {
			continue
		}
		ratio := t.a[i][t.cols] / aij
		if ratio < bestRatio-eps || (ratio < bestRatio+eps && (best < 0 || t.basis[i] < t.basis[best])) {
			best, bestRatio = i, ratio
		}
	}
	return best
}

// pivot makes (row, col) the new basic position.
func (t *tableau) pivot(row, col int) {
	t.pivots++
	if t.a[row][t.cols] <= eps {
		t.degenerate++
	} else {
		t.degenerate = 0
	}
	pr := t.a[row]
	inv := 1 / pr[col]
	for j := 0; j <= t.cols; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.cols; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
}

// evictArtificials pivots basic artificials (at value 0 after phase 1) out
// of the basis where possible; rows where it is impossible are linearly
// dependent and harmless to leave as-is.
func (t *tableau) evictArtificials() {
	artFrom := t.nStruct + t.nSlack
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artFrom {
			continue
		}
		for j := 0; j < artFrom; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}

// extract reads the primal solution and duals off the final tableau.
func (t *tableau) extract() *Solution {
	x := make([]float64, t.nStruct)
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b < t.nStruct {
			x[b] = t.a[i][t.cols]
		}
	}
	var obj float64
	for j, c := range t.p.objective {
		obj += c * x[j]
	}
	// Duals: y_i = -reducedCost(slack_i) for rows with a +1 slack,
	// y_i = +reducedCost(surplus_i) for rows with a -1 surplus, and
	// y_i = -reducedCost(artificial_i) for EQ rows (the artificial column
	// is e_i with zero phase-2 cost). Flipped rows flip the sign back.
	duals := make([]float64, t.m)
	objRow := t.a[t.m]
	for i := 0; i < t.m; i++ {
		var y float64
		switch {
		case t.slackCol[i] >= 0 && t.p.constraints[i].Op == LE != (t.rowSign[i] < 0):
			// internally a LE row: slack coefficient +1
			y = -objRow[t.slackCol[i]]
		case t.slackCol[i] >= 0:
			// internally a GE row: surplus coefficient -1
			y = objRow[t.slackCol[i]]
		default:
			y = -objRow[t.artCol[i]]
		}
		duals[i] = t.rowSign[i] * y
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Duals: duals, Pivots: t.pivots}
}
