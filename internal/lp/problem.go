// Package lp implements the optimization machinery PreTE's TE formulation
// (Eqns. 2-8) needs without any external solver: a two-phase primal simplex
// for linear programs (with dual values, which Benders decomposition
// consumes for its optimality cuts) and a branch-and-bound solver for the
// small binary programs that appear as Benders master problems.
//
// The solver is deliberately a dense-tableau simplex: the TE instances this
// repository produces (hundreds of rows after failure-equivalence-class
// merging, see internal/core) are comfortably within its reach, and the
// implementation is simple enough to audit.
package lp

import "fmt"

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

// String renders the comparison operator as its source form.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is a sparse linear constraint: sum(terms) Op RHS.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
	Name  string
}

// Problem is a linear program: minimize Objective . x subject to the
// constraints, with x >= 0 elementwise. Upper bounds are expressed as
// explicit constraints (AddUpperBound).
type Problem struct {
	numVars     int
	objective   []float64
	constraints []Constraint
	names       []string
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar introduces a variable with the given objective coefficient and
// returns its index. All variables are implicitly >= 0.
func (p *Problem) AddVar(objCoeff float64, name string) int {
	p.objective = append(p.objective, objCoeff)
	p.names = append(p.names, name)
	p.numVars++
	return p.numVars - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective overwrites the objective coefficient of a variable.
func (p *Problem) SetObjective(v int, coeff float64) {
	p.objective[v] = coeff
}

// AddConstraint appends a constraint and returns its row index. Terms with
// repeated variable indices are summed.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64, name string) (int, error) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			return 0, fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
	}
	merged := mergeTerms(terms)
	p.constraints = append(p.constraints, Constraint{Terms: merged, Op: op, RHS: rhs, Name: name})
	return len(p.constraints) - 1, nil
}

// AddUpperBound adds x_v <= ub as an explicit row and returns its index.
func (p *Problem) AddUpperBound(v int, ub float64, name string) (int, error) {
	return p.AddConstraint([]Term{{Var: v, Coeff: 1}}, LE, ub, name)
}

func mergeTerms(terms []Term) []Term {
	m := make(map[int]float64, len(terms))
	order := make([]int, 0, len(terms))
	for _, t := range terms {
		if _, ok := m[t.Var]; !ok {
			order = append(order, t.Var)
		}
		m[t.Var] += t.Coeff
	}
	out := make([]Term, 0, len(order))
	for _, v := range order {
		if m[v] != 0 {
			out = append(out, Term{Var: v, Coeff: m[v]})
		}
	}
	return out
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	// IterationLimit reports the solver's hard pivot/node cap fired before
	// optimality was proven. The solution may still carry a usable incumbent
	// (branch-and-bound) or the last vertex reached (simplex); callers must
	// not treat it as certified optimal.
	IterationLimit
	// Truncated reports a cooperative Budget expired mid-solve (work units
	// or wall-clock deadline — see Budget). Like IterationLimit the solution
	// carries the best point found so far, but truncation is an expected
	// anytime outcome, not a pathology: the caller asked for at most this
	// much work.
	Truncated
)

// StatusIterLimit is the explicit name for the hard iteration-cap outcome:
// a solve that burns through its pivot or node cap surfaces it here in
// Solution.Status rather than silently returning its last iterate as if it
// were optimal.
const StatusIterLimit = IterationLimit

// String names the solve status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	case Truncated:
		return "truncated"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // primal values, len NumVars
	Duals     []float64 // one per constraint row, len NumConstraints
	// Pivots counts simplex pivots across both phases — the solver-iteration
	// figure the observability layer records (internal/obs); identical runs
	// pivot identically, so it is deterministic diagnostic output.
	Pivots int
	// Nodes counts branch-and-bound nodes explored (MIP solves only).
	Nodes int
}

// Value returns the primal value of variable v.
func (s *Solution) Value(v int) float64 { return s.X[v] }
