package lp

import (
	"sync/atomic"
	"time"
)

// Budget is a cooperative compute budget shared by every layer of the solve
// stack. The TE period is a hard deadline: a solve that overruns it is as bad
// as no solve at all, so every solver loop in this repository checks its
// budget at pivot / branch-and-bound-node / Benders-iteration granularity and
// returns its best incumbent (Status == Truncated) instead of running on.
//
// A budget has two independent limits:
//
//   - Deterministic work units. One unit is one simplex pivot, one
//     branch-and-bound node, or one Benders iteration — quantities that are a
//     pure function of the input, so two runs with equal budgets consume them
//     identically and truncate at exactly the same point. This is what keeps
//     seeded replays bit-identical (internal/core's anytime tests pin it).
//
//   - An optional wall-clock deadline. Production controllers set it from the
//     TE period as a safety net against pathologies the unit model does not
//     capture (cache effects, contention). Crossing it is inherently
//     nondeterministic, so deterministic experiments use units only.
//
// A nil *Budget is the "unlimited" state: every method no-ops and Spend
// always reports true, mirroring the nil-*obs.Registry idiom, so solver code
// threads a possibly-nil budget without branching.
//
// Budgets are concurrency-safe (atomics), so one budget can back a solve
// whose sub-stages fan out; in the current optimizer all unit spending
// happens in serial sections, which is what makes equal budgets reproduce
// bit-identical plans at every parallelism setting.
type Budget struct {
	limited   bool
	remaining atomic.Int64
	spent     atomic.Int64
	deadline  time.Time
	expired   atomic.Bool
}

// NewBudget returns a budget of the given deterministic work units.
// units <= 0 means no unit limit (useful for deadline-only budgets).
func NewBudget(units int64) *Budget {
	b := &Budget{}
	if units > 0 {
		b.limited = true
		b.remaining.Store(units)
	}
	return b
}

// WithDeadline attaches a wall-clock deadline and returns the budget.
// The zero time means no deadline.
func (b *Budget) WithDeadline(t time.Time) *Budget {
	b.deadline = t
	return b
}

// WithTimeout attaches a deadline of now+d (no deadline when d <= 0) and
// returns the budget.
func (b *Budget) WithTimeout(d time.Duration) *Budget {
	if d > 0 {
		b.deadline = time.Now().Add(d)
	}
	return b
}

// Spend consumes n work units and reports whether work may continue. Once it
// returns false — the unit allowance is gone or the deadline has passed — it
// keeps returning false, so callers can treat it as a cancellation check.
func (b *Budget) Spend(n int64) bool {
	if b == nil {
		return true
	}
	b.spent.Add(n)
	if b.limited && b.remaining.Add(-n) < 0 {
		b.expired.Store(true)
		return false
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.expired.Store(true)
		return false
	}
	return !b.expired.Load()
}

// Exhausted reports whether a Spend has failed (without consuming anything).
func (b *Budget) Exhausted() bool {
	if b == nil {
		return false
	}
	if b.expired.Load() {
		return true
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.expired.Store(true)
		return true
	}
	return false
}

// Spent returns the total work units consumed so far.
func (b *Budget) Spent() int64 {
	if b == nil {
		return 0
	}
	return b.spent.Load()
}

// Remaining returns the unit allowance left, or -1 when the budget has no
// unit limit.
func (b *Budget) Remaining() int64 {
	if b == nil || !b.limited {
		return -1
	}
	r := b.remaining.Load()
	if r < 0 {
		r = 0
	}
	return r
}
