package lp

import (
	"testing"
	"time"
)

// budgetLP builds a small LP that needs several pivots: minimize -x1-x2
// under a few capacity rows.
func budgetLP(t *testing.T) *Problem {
	t.Helper()
	p := NewProblem()
	x1 := p.AddVar(-1, "x1")
	x2 := p.AddVar(-1, "x2")
	x3 := p.AddVar(-0.5, "x3")
	for _, row := range []struct {
		terms []Term
		rhs   float64
	}{
		{[]Term{{x1, 1}, {x2, 2}}, 14},
		{[]Term{{x1, 3}, {x2, -1}, {x3, 1}}, 9},
		{[]Term{{x1, 1}, {x2, -1}, {x3, 2}}, 3},
	} {
		if _, err := p.AddConstraint(row.terms, LE, row.rhs, "c"); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestNilBudgetUnlimited(t *testing.T) {
	var b *Budget
	if !b.Spend(1 << 40) {
		t.Fatal("nil budget must allow any spend")
	}
	if b.Exhausted() {
		t.Fatal("nil budget must never be exhausted")
	}
	if b.Spent() != 0 || b.Remaining() != -1 {
		t.Fatalf("nil budget Spent/Remaining = %d/%d", b.Spent(), b.Remaining())
	}
	p := budgetLP(t)
	if got, want := p.SolveBudget(nil), p.Solve(); got.Status != want.Status || got.Objective != want.Objective {
		t.Fatalf("SolveBudget(nil) = %v/%v, Solve() = %v/%v", got.Status, got.Objective, want.Status, want.Objective)
	}
}

func TestBudgetSpendSemantics(t *testing.T) {
	b := NewBudget(3)
	for i := 0; i < 3; i++ {
		if !b.Spend(1) {
			t.Fatalf("spend %d of 3 refused", i+1)
		}
	}
	if b.Exhausted() {
		t.Fatal("exactly-spent budget reported exhausted before the failing Spend")
	}
	if b.Spend(1) {
		t.Fatal("fourth unit granted from a 3-unit budget")
	}
	if !b.Exhausted() {
		t.Fatal("budget not exhausted after a failed Spend")
	}
	if b.Spend(1) {
		t.Fatal("exhaustion must be sticky")
	}
	if b.Spent() != 5 {
		t.Fatalf("Spent = %d, want 5 (attempts are counted)", b.Spent())
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b.Remaining())
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := NewBudget(0).WithDeadline(time.Now().Add(-time.Second))
	if b.Spend(1) {
		t.Fatal("expired deadline must refuse work")
	}
	if !b.Exhausted() {
		t.Fatal("expired deadline must report exhausted")
	}
	ok := NewBudget(0).WithTimeout(time.Hour)
	if !ok.Spend(1000) {
		t.Fatal("future deadline with no unit limit must allow work")
	}
}

func TestSimplexTruncates(t *testing.T) {
	full := budgetLP(t).Solve()
	if full.Status != Optimal {
		t.Fatalf("reference solve: %v", full.Status)
	}
	if full.Pivots < 2 {
		t.Fatalf("test LP too easy: %d pivots", full.Pivots)
	}
	for units := int64(1); units < int64(full.Pivots); units++ {
		sol := budgetLP(t).SolveBudget(NewBudget(units))
		if sol.Status != Truncated {
			t.Fatalf("budget %d (< %d pivots): status %v, want truncated", units, full.Pivots, sol.Status)
		}
		if int64(sol.Pivots) != units {
			t.Fatalf("budget %d: %d pivots performed", units, sol.Pivots)
		}
	}
	sol := budgetLP(t).SolveBudget(NewBudget(int64(full.Pivots)))
	if sol.Status != Optimal || sol.Objective != full.Objective {
		t.Fatalf("exact budget: %v/%v, want %v/%v", sol.Status, sol.Objective, Optimal, full.Objective)
	}
}

func TestSimplexBudgetDeterministic(t *testing.T) {
	a := budgetLP(t).SolveBudget(NewBudget(2))
	b := budgetLP(t).SolveBudget(NewBudget(2))
	if a.Status != b.Status || a.Pivots != b.Pivots {
		t.Fatalf("equal budgets diverge: %v/%d vs %v/%d", a.Status, a.Pivots, b.Status, b.Pivots)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("equal budgets produce different iterates at x[%d]", i)
		}
	}
}

// budgetMIP is a small knapsack-style binary program with a nontrivial tree.
func budgetMIP(t *testing.T) *MIP {
	t.Helper()
	m := NewMIP()
	vals := []float64{-5, -4, -3, -6, -2}
	wts := []float64{4, 3, 2, 5, 1}
	terms := make([]Term, len(vals))
	for i, v := range vals {
		terms[i] = Term{Var: m.AddBinaryVar(v, "b"), Coeff: wts[i]}
	}
	if _, err := m.AddConstraint(terms, LE, 7, "knap"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMIPTruncates(t *testing.T) {
	full := budgetMIP(t).SolveMIP(MIPOptions{})
	if full.Status != Optimal {
		t.Fatalf("reference MIP: %v", full.Status)
	}
	sol := budgetMIP(t).SolveMIP(MIPOptions{Budget: NewBudget(1)})
	if sol.Status != Truncated {
		t.Fatalf("1-unit budget: status %v, want truncated", sol.Status)
	}
	// A generous-but-finite budget must return either the optimum or a
	// truncated feasible/relaxation point — never Infeasible.
	for units := int64(1); units <= 200; units *= 2 {
		sol := budgetMIP(t).SolveMIP(MIPOptions{Budget: NewBudget(units)})
		if sol.Status == Infeasible || sol.Status == Unbounded {
			t.Fatalf("budget %d: status %v on a feasible MIP", units, sol.Status)
		}
		if sol.Status == Optimal && sol.Objective != full.Objective {
			t.Fatalf("budget %d claims optimal %v, true optimum %v", units, sol.Objective, full.Objective)
		}
	}
}

// TestMIPNodeLimitSurfaced pins the StatusIterLimit satellite: exhausting
// MaxNodes with open nodes must surface the cap in Solution.Status, not
// silently return the incumbent as optimal.
func TestMIPNodeLimitSurfaced(t *testing.T) {
	sol := budgetMIP(t).SolveMIP(MIPOptions{MaxNodes: 2})
	if sol.Status != StatusIterLimit && sol.Status != Optimal {
		t.Fatalf("node-capped MIP: status %v", sol.Status)
	}
	full := budgetMIP(t).SolveMIP(MIPOptions{})
	if sol.Status == Optimal && sol.Objective != full.Objective {
		t.Fatalf("node-capped MIP claims optimal %v but optimum is %v", sol.Objective, full.Objective)
	}
}
