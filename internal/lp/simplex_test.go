package lp

import (
	"math"
	"testing"
	"testing/quick"

	"prete/internal/stats"
)

func mustConstraint(t *testing.T, p *Problem, terms []Term, op Op, rhs float64, name string) int {
	t.Helper()
	i, err := p.AddConstraint(terms, op, rhs, name)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestSimplexBasicMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig
	// example, optimum x=2, y=6, obj=36). Minimize the negation.
	p := NewProblem()
	x := p.AddVar(-3, "x")
	y := p.AddVar(-5, "y")
	mustConstraint(t, p, []Term{{x, 1}}, LE, 4, "c1")
	mustConstraint(t, p, []Term{{y, 2}}, LE, 12, "c2")
	mustConstraint(t, p, []Term{{x, 3}, {y, 2}}, LE, 18, "c3")
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective+36) > 1e-6 {
		t.Fatalf("objective = %v, want -36", sol.Objective)
	}
	if math.Abs(sol.X[x]-2) > 1e-6 || math.Abs(sol.X[y]-6) > 1e-6 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestSimplexEquality(t *testing.T) {
	// min x + 2y s.t. x + y == 10, x <= 6 -> x=6, y=4, obj=14.
	p := NewProblem()
	x := p.AddVar(1, "x")
	y := p.AddVar(2, "y")
	mustConstraint(t, p, []Term{{x, 1}, {y, 1}}, EQ, 10, "sum")
	mustConstraint(t, p, []Term{{x, 1}}, LE, 6, "cap")
	sol := p.Solve()
	if sol.Status != Optimal || math.Abs(sol.Objective-14) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSimplexGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x - y >= -2  -> y can help: optimum at
	// intersection? Gradient prefers x (cheaper): x=4, y=0: check x-y=4 >=
	// -2 ok. obj=8.
	p := NewProblem()
	x := p.AddVar(2, "x")
	y := p.AddVar(3, "y")
	mustConstraint(t, p, []Term{{x, 1}, {y, 1}}, GE, 4, "cover")
	mustConstraint(t, p, []Term{{x, 1}, {y, -1}}, GE, -2, "skew")
	sol := p.Solve()
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5).
	p := NewProblem()
	x := p.AddVar(1, "x")
	mustConstraint(t, p, []Term{{x, -1}}, LE, -5, "flip")
	sol := p.Solve()
	if sol.Status != Optimal || math.Abs(sol.X[x]-5) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, "x")
	mustConstraint(t, p, []Term{{x, 1}}, LE, 1, "le")
	mustConstraint(t, p, []Term{{x, 1}}, GE, 2, "ge")
	if sol := p.Solve(); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1, "x") // maximize x with no cap
	mustConstraint(t, p, []Term{{x, -1}}, LE, 0, "noop")
	if sol := p.Solve(); sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Beale's cycling example; Bland fallback must terminate.
	p := NewProblem()
	x1 := p.AddVar(-0.75, "x1")
	x2 := p.AddVar(150, "x2")
	x3 := p.AddVar(-0.02, "x3")
	x4 := p.AddVar(6, "x4")
	mustConstraint(t, p, []Term{{x1, 0.25}, {x2, -60}, {x3, -1.0 / 25}, {x4, 9}}, LE, 0, "r1")
	mustConstraint(t, p, []Term{{x1, 0.5}, {x2, -90}, {x3, -1.0 / 50}, {x4, 3}}, LE, 0, "r2")
	mustConstraint(t, p, []Term{{x3, 1}}, LE, 1, "r3")
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestSimplexDualsLE(t *testing.T) {
	// min -x - y s.t. x + y <= 10, x <= 6. At optimum obj = -10; the first
	// row's shadow price is -1, the second's 0.
	p := NewProblem()
	x := p.AddVar(-1, "x")
	y := p.AddVar(-1, "y")
	r1 := mustConstraint(t, p, []Term{{x, 1}, {y, 1}}, LE, 10, "sum")
	r2 := mustConstraint(t, p, []Term{{x, 1}}, LE, 6, "xcap")
	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Duals[r1]+1) > 1e-6 {
		t.Errorf("dual r1 = %v, want -1", sol.Duals[r1])
	}
	if math.Abs(sol.Duals[r2]) > 1e-6 {
		t.Errorf("dual r2 = %v, want 0", sol.Duals[r2])
	}
}

func TestSimplexDualsGE(t *testing.T) {
	// min 3x s.t. x >= 4: dual = 3 (shadow price of tightening).
	p := NewProblem()
	x := p.AddVar(3, "x")
	r := mustConstraint(t, p, []Term{{x, 1}}, GE, 4, "floor")
	sol := p.Solve()
	if sol.Status != Optimal || math.Abs(sol.Duals[r]-3) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSimplexDualsEQ(t *testing.T) {
	// min 2x + y s.t. x + y == 7, y <= 3 -> x=4, y=3, obj=11.
	// d obj / d rhs of the EQ row: increasing 7 forces more x: +2.
	p := NewProblem()
	x := p.AddVar(2, "x")
	y := p.AddVar(1, "y")
	r1 := mustConstraint(t, p, []Term{{x, 1}, {y, 1}}, EQ, 7, "sum")
	mustConstraint(t, p, []Term{{y, 1}}, LE, 3, "ycap")
	sol := p.Solve()
	if sol.Status != Optimal || math.Abs(sol.Objective-11) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
	if math.Abs(sol.Duals[r1]-2) > 1e-6 {
		t.Errorf("dual = %v, want 2", sol.Duals[r1])
	}
}

func TestMergeTerms(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, "x")
	y := p.AddVar(1, "y")
	i := mustConstraint(t, p, []Term{{x, 1}, {x, 2}, {y, 1}, {y, -1}}, LE, 5, "merged")
	c := p.constraints[i]
	if len(c.Terms) != 1 || c.Terms[0].Var != x || c.Terms[0].Coeff != 3 {
		t.Fatalf("merged terms = %+v", c.Terms)
	}
}

func TestAddConstraintUnknownVar(t *testing.T) {
	p := NewProblem()
	p.AddVar(1, "x")
	if _, err := p.AddConstraint([]Term{{Var: 5, Coeff: 1}}, LE, 1, "bad"); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

// transportation builds a random feasible transportation problem whose
// optimum can be cross-checked against a brute-force grid search.
func TestSimplexRandomTransportation(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 25; trial++ {
		// min sum c_ij x_ij; supply rows sum x_ij <= s_i; demand cols
		// sum x_ij >= d_j with sum d <= sum s.
		const m, n = 3, 3
		p := NewProblem()
		var vars [m][n]int
		var costs [m][n]float64
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				costs[i][j] = 1 + math.Floor(rng.Float64()*9)
				vars[i][j] = p.AddVar(costs[i][j], "x")
			}
		}
		supply := [m]float64{10, 10, 10}
		demand := [n]float64{
			math.Floor(rng.Float64() * 10), math.Floor(rng.Float64() * 10), math.Floor(rng.Float64() * 10),
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{vars[i][j], 1}
			}
			mustConstraint(t, p, terms, LE, supply[i], "supply")
		}
		for j := 0; j < n; j++ {
			terms := make([]Term, m)
			for i := 0; i < m; i++ {
				terms[i] = Term{vars[i][j], 1}
			}
			mustConstraint(t, p, terms, GE, demand[j], "demand")
		}
		sol := p.Solve()
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Optimal transportation cost: each unit of demand j is served by
		// the cheapest source (supplies are ample at 10 >= any single
		// demand, but total demand may exceed one supplier; still, with 3
		// suppliers of 10 and demands < 10 each, the greedy bound holds
		// only if each demand can use its own cheapest row; verify
		// feasibility and a lower bound instead).
		var lower float64
		for j := 0; j < n; j++ {
			minC := math.Inf(1)
			for i := 0; i < m; i++ {
				minC = math.Min(minC, costs[i][j])
			}
			lower += minC * demand[j]
		}
		if sol.Objective < lower-1e-6 {
			t.Fatalf("trial %d: objective %v below lower bound %v", trial, sol.Objective, lower)
		}
		// Verify primal feasibility.
		for i := 0; i < m; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += sol.X[vars[i][j]]
			}
			if s > supply[i]+1e-6 {
				t.Fatalf("supply %d violated", i)
			}
		}
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += sol.X[vars[i][j]]
			}
			if s < demand[j]-1e-6 {
				t.Fatalf("demand %d violated", j)
			}
		}
	}
}

// Property: strong duality — primal objective equals b . y at optimum for
// random small feasible LPs.
func TestQuickStrongDuality(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := NewProblem()
		n := 2 + rng.Intn(3)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVar(math.Floor(rng.Float64()*10)-3, "x")
		}
		m := 2 + rng.Intn(3)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				terms = append(terms, Term{vars[j], math.Floor(rng.Float64() * 4)})
			}
			rhs[i] = 1 + math.Floor(rng.Float64()*10)
			if _, err := p.AddConstraint(terms, LE, rhs[i], "r"); err != nil {
				return false
			}
		}
		sol := p.Solve()
		if sol.Status == Unbounded || sol.Status == Infeasible {
			return true // nothing to check (all-zero columns with negative cost)
		}
		if sol.Status != Optimal {
			return false
		}
		var dualObj float64
		for i := 0; i < m; i++ {
			dualObj += rhs[i] * sol.Duals[i]
		}
		return math.Abs(dualObj-sol.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
