package fault

import (
	"fmt"
	"sync"
	"time"

	"prete/internal/obs"
	"prete/internal/stats"
	"prete/internal/wan"
)

// Halt is the error a CtlCrash transport returns once the controller
// process is "dead". It wraps wan.ErrControllerHalted, so the controller's
// retry loop and the testbed's reaction pipeline recognize it as a process
// death (abort the round, no retries, no fallback) rather than a flaky
// link.
type Halt struct {
	Peer    string
	Attempt int64 // 1-based global RPC attempt number that hit the halt
}

// Error implements error.
func (e *Halt) Error() string {
	return fmt.Sprintf("fault: controller halted at %s (attempt %d)", e.Peer, e.Attempt)
}

// Unwrap makes every Halt match wan.ErrControllerHalted with errors.Is.
func (e *Halt) Unwrap() error { return wan.ErrControllerHalted }

// CtlCrash wraps a wan.Transport and kills the controller process at a
// deterministic point: the first Budget RPC attempts (counted globally
// across peers — the controller is one process) proceed, and every later
// attempt fails with a Halt until the transport is re-armed. Unlike the
// Injector's per-peer agent crashes, a controller crash is total: after the
// trigger no peer is reachable, modeling kill -9 mid-epoch.
//
// The crash point is an explicit attempt count, so it composes with the
// Injector's seeded drop/delay streams without perturbing them: wrap the
// fault.Transport with CtlCrash (crash decision outermost) and the inner
// per-peer decision sequence up to the crash replays bit-identically.
// CrashPoint derives the count from a seed for randomized-but-reproducible
// sweeps.
type CtlCrash struct {
	inner   wan.Transport
	metrics *obs.Registry

	mu        sync.Mutex
	remaining int64 // attempts left before the halt; -1 = disarmed
	halted    bool
	attempts  int64
}

// NewCtlCrash wraps inner, armed to halt on RPC attempt budget+1 (Arm
// semantics). metrics may be nil.
func NewCtlCrash(inner wan.Transport, budget int64, metrics *obs.Registry) *CtlCrash {
	t := &CtlCrash{inner: inner, metrics: metrics}
	t.Arm(budget)
	return t
}

// Arm resets the transport to a live controller that will crash after
// budget more successful attempt starts (budget 0 = the very next attempt
// halts). Call before RestartController to model the restarted process, or
// Disarm for a restart that stays up.
func (t *CtlCrash) Arm(budget int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.remaining = budget
	t.halted = false
}

// Disarm resets the transport to a live controller that never crashes.
func (t *CtlCrash) Disarm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.remaining = -1
	t.halted = false
}

// Halted reports whether the crash has triggered and not been re-armed.
func (t *CtlCrash) Halted() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.halted
}

// Attempts returns the global RPC attempt count (including halted ones).
func (t *CtlCrash) Attempts() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// tick consumes one RPC attempt and returns non-nil once the process is
// dead.
func (t *CtlCrash) tick(peer string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attempts++
	if t.halted {
		t.metrics.Counter("fault.ctlcrash.refused").Inc()
		return &Halt{Peer: peer, Attempt: t.attempts}
	}
	if t.remaining < 0 {
		return nil
	}
	if t.remaining == 0 {
		t.halted = true
		t.metrics.Counter("fault.ctlcrash.halts").Inc()
		return &Halt{Peer: peer, Attempt: t.attempts}
	}
	t.remaining--
	return nil
}

// Dial dials through the inner transport. Dialing itself never halts: a
// restarted controller re-dials through the same (re-armed) transport.
func (t *CtlCrash) Dial(name, addr string) (wan.Conn, error) {
	cn, err := t.inner.Dial(name, addr)
	if err != nil {
		return nil, err
	}
	return &ctlCrashConn{peer: name, inner: cn, t: t}, nil
}

type ctlCrashConn struct {
	peer  string
	inner wan.Conn
	t     *CtlCrash
}

func (c *ctlCrashConn) RoundTrip(req *wan.Request, timeout time.Duration) (*wan.Response, error) {
	if err := c.t.tick(c.peer); err != nil {
		return nil, err
	}
	return c.inner.RoundTrip(req, timeout)
}

func (c *ctlCrashConn) Close() error { return c.inner.Close() }

// CrashPoint draws a crash budget uniformly from [lo, hi] out of the same
// decorrelated seeded stream family the Injector uses, so a chaos
// experiment's crash timing replays from (seed, index) like every other
// fault decision.
func CrashPoint(seed, index uint64, lo, hi int64) int64 {
	if hi < lo {
		hi = lo
	}
	rng := stats.SubRNG(seed, peerIndex("ctlcrash")+index)
	return lo + int64(rng.Float64()*float64(hi-lo+1))
}
