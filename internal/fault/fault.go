// Package fault is the control plane's deterministic chaos layer: a seeded,
// policy-driven injector that wraps the wan Transport/Conn interfaces and
// perturbs controller<->agent RPCs with drops, delays, duplicated and
// corrupted deliveries, network partitions, and agent crash/restart
// outages.
//
// Determinism is the whole point. Every decision is drawn from a per-peer
// stream derived stats.SubRNG-style from (Spec.Seed, peer name) — never
// from call order across peers — so an identical fault seed plus an
// identical workload replays the exact same fault sequence bit for bit,
// and a chaos failure found in CI reproduces locally from two integers.
// The injector keeps an ordered decision history (History) that the
// determinism tests diff across runs.
//
// The injector models faults at RPC granularity, the level the §5 control
// plane reasons at:
//
//   - Drop: the request vanishes; the controller sees a transport error.
//   - Delay: the delivery waits a bounded, seeded duration, then proceeds.
//   - Duplicate: the request is delivered twice (the agent must be
//     idempotent — tunnel installs and rate updates are).
//   - Corrupt: the request is delivered but the response is lost to bit
//     errors, so state changed agent-side while the controller sees a
//     failure and re-sends — the classic at-least-once hazard.
//   - Partition: the peer becomes unreachable for the next PartitionRPCs
//     attempts (the underlying connection stays up).
//   - Crash: the agent process "dies" — the connection is severed and the
//     peer stays down for CrashRPCs attempts, after which the transport's
//     re-dial path is exercised.
package fault

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"prete/internal/obs"
	"prete/internal/stats"
	"prete/internal/wan"
)

// Kind enumerates injected fault kinds.
type Kind int

// Fault kinds.
const (
	None Kind = iota
	Drop
	Delay
	Duplicate
	Corrupt
	Partition
	Crash
)

// String names the fault kind for logs and metrics.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Corrupt:
		return "corrupt"
	case Partition:
		return "partition"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec is a fault policy. All probabilities are per RPC attempt and drawn
// independently in a fixed order (crash, partition, drop, corrupt,
// duplicate, delay — first hit wins); the draw order is part of the
// deterministic replay contract.
type Spec struct {
	// Seed roots every per-peer decision stream.
	Seed uint64
	// Drop is the probability an attempt's request vanishes in flight.
	Drop float64
	// DelayProb delays an attempt by a uniform duration in
	// [DelayMin, DelayMax].
	DelayProb          float64
	DelayMin, DelayMax time.Duration
	// Duplicate delivers the request twice.
	Duplicate float64
	// Corrupt delivers the request but destroys the response.
	Corrupt float64
	// Partition makes the peer unreachable for the next PartitionRPCs
	// attempts (including the triggering one).
	Partition     float64
	PartitionRPCs int
	// Crash severs the peer's connection and keeps it down for CrashRPCs
	// attempts; recovery goes through the transport's re-dial path.
	Crash     float64
	CrashRPCs int
}

// Active reports whether the spec can inject anything.
func (s Spec) Active() bool {
	return s.Drop > 0 || s.DelayProb > 0 || s.Duplicate > 0 || s.Corrupt > 0 ||
		s.Partition > 0 || s.Crash > 0
}

// Validate checks probabilities, durations, and outage lengths.
func (s Spec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"drop", s.Drop}, {"delay", s.DelayProb}, {"dup", s.Duplicate},
		{"corrupt", s.Corrupt}, {"partition", s.Partition}, {"crash", s.Crash},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s probability %v out of [0, 1]", p.name, p.v)
		}
	}
	if s.DelayMin < 0 || s.DelayMax < s.DelayMin {
		return fmt.Errorf("fault: delay range [%v, %v] invalid", s.DelayMin, s.DelayMax)
	}
	if s.PartitionRPCs < 0 || s.CrashRPCs < 0 {
		return fmt.Errorf("fault: negative outage length")
	}
	return nil
}

// Injected is the error surfaced for an RPC attempt consumed by a fault.
type Injected struct {
	Kind Kind
	Peer string
}

// Error implements error.
func (e *Injected) Error() string {
	return fmt.Sprintf("fault: injected %s at %s", e.Kind, e.Peer)
}

// Injector draws fault decisions from decorrelated per-peer streams and
// counts what it injects into an obs registry (fault.injected.<kind>,
// fault.rpcs). Safe for concurrent use.
type Injector struct {
	spec    Spec
	metrics *obs.Registry

	mu      sync.Mutex
	peers   map[string]*peerState
	history []string
}

type peerState struct {
	rng      *stats.RNG
	down     int  // remaining attempts swallowed by the current outage
	downKind Kind // Partition or Crash while down > 0
}

// NewInjector returns an injector for the given (validated) spec. metrics
// may be nil.
func NewInjector(spec Spec, metrics *obs.Registry) (*Injector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Partition > 0 && spec.PartitionRPCs == 0 {
		spec.PartitionRPCs = 10
	}
	if spec.Crash > 0 && spec.CrashRPCs == 0 {
		spec.CrashRPCs = 25
	}
	return &Injector{spec: spec, metrics: metrics, peers: make(map[string]*peerState)}, nil
}

// decision is one drawn fault for one RPC attempt.
type decision struct {
	kind  Kind
	delay time.Duration
}

// peerIndex maps a peer name to its SubRNG stream index (FNV-1a, so the
// stream depends only on the name, never on dial or call order).
func peerIndex(peer string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	return h.Sum64()
}

// decide draws the fault for the next RPC attempt to peer.
func (in *Injector) decide(peer string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	ps := in.peers[peer]
	if ps == nil {
		ps = &peerState{rng: stats.SubRNG(in.spec.Seed, peerIndex(peer))}
		in.peers[peer] = ps
	}
	d := in.draw(ps)
	in.record(peer, d)
	return d
}

func (in *Injector) draw(ps *peerState) decision {
	if ps.down > 0 {
		ps.down--
		return decision{kind: ps.downKind}
	}
	r := ps.rng
	s := in.spec
	switch {
	case r.Bernoulli(s.Crash):
		ps.down = s.CrashRPCs - 1
		ps.downKind = Crash
		return decision{kind: Crash}
	case r.Bernoulli(s.Partition):
		ps.down = s.PartitionRPCs - 1
		ps.downKind = Partition
		return decision{kind: Partition}
	case r.Bernoulli(s.Drop):
		return decision{kind: Drop}
	case r.Bernoulli(s.Corrupt):
		return decision{kind: Corrupt}
	case r.Bernoulli(s.Duplicate):
		return decision{kind: Duplicate}
	case r.Bernoulli(s.DelayProb):
		span := float64(s.DelayMax - s.DelayMin)
		return decision{kind: Delay, delay: s.DelayMin + time.Duration(r.Float64()*span)}
	default:
		return decision{kind: None}
	}
}

func (in *Injector) record(peer string, d decision) {
	in.metrics.Counter("fault.rpcs").Inc()
	if d.kind != None {
		in.metrics.Counter("fault.injected." + d.kind.String()).Inc()
	}
	if d.kind == Delay {
		in.history = append(in.history, fmt.Sprintf("%s:delay:%dus", peer, d.delay.Microseconds()))
		return
	}
	in.history = append(in.history, peer+":"+d.kind.String())
}

// History returns the ordered decision record (peer:kind entries, delays
// with their seeded duration). Two runs with the same seed and workload
// produce identical histories — the chaos determinism tests rely on it.
func (in *Injector) History() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.history...)
}

// Transport wraps an inner wan.Transport with the injector. The inner
// transport's Conns must tolerate Close followed by further RoundTrips
// (wan.TCPTransport re-dials), because crash faults sever the connection.
type Transport struct {
	inner wan.Transport
	inj   *Injector
}

// NewTransport wraps inner with inj.
func NewTransport(inner wan.Transport, inj *Injector) *Transport {
	return &Transport{inner: inner, inj: inj}
}

// Dial dials through the inner transport and wraps the connection.
func (t *Transport) Dial(name, addr string) (wan.Conn, error) {
	cn, err := t.inner.Dial(name, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{peer: name, inner: cn, inj: t.inj}, nil
}

// faultConn applies one fault decision per RoundTrip attempt.
type faultConn struct {
	peer  string
	inner wan.Conn
	inj   *Injector
}

func (c *faultConn) RoundTrip(req *wan.Request, timeout time.Duration) (*wan.Response, error) {
	d := c.inj.decide(c.peer)
	switch d.kind {
	case Drop, Partition:
		return nil, &Injected{Kind: d.kind, Peer: c.peer}
	case Crash:
		// Sever the stream like a dying agent process would; the peer stays
		// down for the configured outage, then the inner conn re-dials.
		c.inner.Close()
		return nil, &Injected{Kind: Crash, Peer: c.peer}
	case Corrupt:
		if len(req.Frame) > 0 {
			// Replication streams see in-flight bit errors, not lost
			// responses: deliver a flipped copy and let the receiver's CRC —
			// not this injector — be what catches it. The site nacks with a
			// re-sync request and the shipper falls back to a snapshot.
			mangled := *req
			mangled.Frame = append([]byte(nil), req.Frame...)
			mangled.Frame[len(mangled.Frame)/2] ^= 0xFF
			return c.inner.RoundTrip(&mangled, timeout)
		}
		// The request lands (agent state changes) but the response is lost
		// to bit errors: the controller sees a transport failure and will
		// re-send, exercising idempotent re-delivery.
		if resp, err := c.inner.RoundTrip(req, timeout); err != nil {
			return resp, err
		}
		return nil, &Injected{Kind: Corrupt, Peer: c.peer}
	case Duplicate:
		if resp, err := c.inner.RoundTrip(req, timeout); err != nil {
			return resp, err
		}
		return c.inner.RoundTrip(req, timeout)
	case Delay:
		time.Sleep(d.delay)
	}
	return c.inner.RoundTrip(req, timeout)
}

func (c *faultConn) Close() error { return c.inner.Close() }
