package fault

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateFailoverGolden = flag.Bool("update-failover-golden", false,
	"rewrite the failover event golden file with the current trace")

// TestFailoverGoldenReplay pins the ordered event log of the fixed-seed F1
// failover trace — leader epochs, standby tailing, heartbeat misses,
// election, fenced promotion, fleet re-assert, the post-failover epoch,
// and the zombie's fenced write — to a committed golden file. Every line
// is float-free and wall-clock-free by construction (the EventLog contract),
// so the comparison is exact: any diff means the failover control flow
// itself changed and must be reviewed (regenerate with `go test
// ./internal/fault -run TestFailoverGoldenReplay -update-failover-golden`).
func TestFailoverGoldenReplay(t *testing.T) {
	run := runFailoverScenario(t, failoverMatrix[0]) // F1: clean leader crash
	got := strings.Join(run.Events, "\n") + "\n"
	golden := filepath.Join("testdata", "failover_events.golden")
	if *updateFailoverGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d events)", golden, len(run.Events))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-failover-golden): %v", err)
	}
	if got == string(want) {
		return
	}
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("event %d diverged from golden:\n got:  %q\n want: %q\n(%d events vs %d in golden)",
				i+1, gotLines[i], wantLines[i], len(gotLines), len(wantLines))
		}
	}
	t.Fatalf("event count diverged from golden: %d events, golden has %d\nfirst extra: %q",
		len(gotLines), len(wantLines),
		append(gotLines, wantLines...)[n])
}
