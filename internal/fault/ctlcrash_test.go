package fault

import (
	"errors"
	"strings"
	"testing"
	"time"

	"prete/internal/wan"
)

// TestCtlCrashSemantics pins the crash transport's contract: exactly
// `budget` attempts proceed, every later one halts with an error that
// unwraps to wan.ErrControllerHalted, and Arm/Disarm model the restart.
func TestCtlCrashSemantics(t *testing.T) {
	a := newAgent(t, "s1")
	ct := NewCtlCrash(wan.TCPTransport{}, 2, nil)
	ctl, err := wan.NewControllerTransport(ct, map[string]string{"s1": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	ctl.Retry = wan.RetryPolicy{MaxAttempts: 3}
	// Budget 2: two pings succeed, the third halts.
	for i := 0; i < 2; i++ {
		if err := ctl.Ping(); err != nil {
			t.Fatalf("ping %d under budget: %v", i, err)
		}
	}
	err = ctl.Ping()
	if !errors.Is(err, wan.ErrControllerHalted) {
		t.Fatalf("over-budget ping: err = %v, want ErrControllerHalted", err)
	}
	if !ct.Halted() {
		t.Error("transport not halted after trigger")
	}
	// At the transport layer the error is a *Halt carrying the peer and the
	// global attempt number (the controller re-wraps it as the sentinel).
	cn, err := ct.Dial("s1", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	_, terr := cn.RoundTrip(&wan.Request{Type: wan.MsgPing}, time.Second)
	var h *Halt
	if !errors.As(terr, &h) {
		t.Fatalf("transport err %v does not unwrap to *Halt", terr)
	}
	if h.Peer != "s1" || !strings.Contains(h.Error(), "s1") || !errors.Is(h, wan.ErrControllerHalted) {
		t.Errorf("Halt = %+v (%q), want peer s1 wrapping ErrControllerHalted", h, h.Error())
	}
	// Still dead until re-armed; no retries were burned (halt is final).
	if err := ctl.Ping(); !errors.Is(err, wan.ErrControllerHalted) {
		t.Fatalf("halted transport answered a ping: %v", err)
	}
	ct.Disarm()
	if ct.Halted() {
		t.Error("Disarm left the transport halted")
	}
	if err := ctl.Ping(); err != nil {
		t.Fatalf("ping after Disarm: %v", err)
	}
	if ct.Attempts() < 5 {
		t.Errorf("attempt counter = %d, want >= 5", ct.Attempts())
	}
	// CrashPoint stays inside its bounds and replays from the seed.
	for seed := uint64(0); seed < 20; seed++ {
		p := CrashPoint(seed, 1, 3, 9)
		if p < 3 || p > 9 {
			t.Fatalf("CrashPoint(seed=%d) = %d, out of [3, 9]", seed, p)
		}
		if q := CrashPoint(seed, 1, 3, 9); q != p {
			t.Fatalf("CrashPoint not deterministic: %d vs %d", p, q)
		}
	}
	if CrashPoint(7, 0, 5, 2) != 5 {
		t.Error("CrashPoint with hi < lo should clamp to lo")
	}
}
