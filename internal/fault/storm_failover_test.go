package fault

import (
	"reflect"
	"strings"
	"testing"

	"prete/internal/core"
	"prete/internal/te"
)

// admissionLines filters a failover trace down to the class-aware ladder's
// per-tier event lines.
func admissionLines(events []string) []string {
	var out []string
	for _, ev := range events {
		if strings.HasPrefix(ev, "admission tier=") {
			out = append(out, ev)
		}
	}
	return out
}

// TestStormFailoverAdmissionReplay drills into the F9 row's admission
// behaviour: a leader crash mid-storm must not perturb the class-aware
// ladder — the promoted standby's reaction emits the same per-tier
// admission lines as the pre-crash epoch, and the whole trace (lines and
// final decision) replays bit-identically.
func TestStormFailoverAdmissionReplay(t *testing.T) {
	fc := failoverCase{
		name: "storm_failover_admission", standbys: 2, epochs: 1, crashBudget: 2, maxTicks: 5,
		classes:      te.DefaultClassSpec(),
		storm:        []core.DegradationSignal{{Fiber: 1, PNN: 0.7}},
		wantPromoted: 1, wantWarm: true, wantEpoch: 1, wantMirror: true, wantReassert: true,
	}
	a := runFailoverScenario(t, fc)
	b := runFailoverScenario(t, fc)

	admA, admB := admissionLines(a.Events), admissionLines(b.Events)
	if !reflect.DeepEqual(admA, admB) {
		t.Errorf("admission event lines diverge on replay:\n run A: %v\n run B: %v", admA, admB)
	}
	// Two completed epochs (the healthy one and the post-promotion one):
	// each emits exactly one line per tier of the default three-tier spec.
	// The crashed epoch died before its rate push, so it admits nothing.
	tiers := len(fc.classes.Tiers)
	if len(admA) != 2*tiers {
		t.Fatalf("got %d admission lines, want %d (2 epochs x %d tiers):\n%v", len(admA), 2*tiers, tiers, admA)
	}
	// The promoted lineage replays the same storm reaction with a fresh
	// ladder, so its per-tier lines match the pre-crash epoch verbatim.
	if pre, post := admA[:tiers], admA[tiers:]; !reflect.DeepEqual(pre, post) {
		t.Errorf("post-promotion admission diverges from pre-crash:\n pre:  %v\n post: %v", pre, post)
	}

	if a.Admission == nil {
		t.Fatal("no admission decision captured after the storm failover")
	}
	if err := a.Admission.Check(); err != nil {
		t.Errorf("post-failover admission accounting: %v", err)
	}
	if !reflect.DeepEqual(a.Admission, b.Admission) {
		t.Errorf("final admission decision diverges on replay:\n run A: %+v\n run B: %+v", a.Admission, b.Admission)
	}
	// Every tier appears in spec order on each epoch's lines.
	for e := 0; e < 2; e++ {
		for k, tier := range fc.classes.Tiers {
			if !strings.HasPrefix(admA[e*tiers+k], "admission tier="+tier.Name+" ") {
				t.Errorf("epoch %d line %d is not tier %s: %q", e+1, k, tier.Name, admA[e*tiers+k])
			}
		}
	}
}
