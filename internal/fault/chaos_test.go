package fault

import (
	"reflect"
	"testing"
	"time"

	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/wan"
)

// chaosRun is the full observable outcome of one testbed reaction round
// under injected faults: the installed TE plan on every agent, the ordered
// control-plane event log, and the injector's decision history. Wall-clock
// timings are excluded — they are the only run-to-run variation allowed.
type chaosRun struct {
	Rates          []map[string]float64
	Tunnels        []int
	Events         []string
	Faults         []string
	Degraded       bool
	SolveTruncated bool
}

func runChaosScenario(t *testing.T, spec Spec, workloadSeed uint64) chaosRun {
	return runChaosScenarioBudget(t, spec, workloadSeed, 0)
}

// runChaosScenarioBudget is runChaosScenario with a deterministic work-unit
// cap on the round's TE solve (0 = unlimited).
func runChaosScenarioBudget(t *testing.T, spec Spec, workloadSeed uint64, solveUnits int64) chaosRun {
	t.Helper()
	reg := obs.NewRegistry()
	inj, err := NewInjector(spec, reg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := wan.NewTestbedTransport(fastSwitch(), func(f optical.Features) float64 { return 0.8 },
		NewTransport(wan.TCPTransport{}, inj))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tb.SolveUnits = solveUnits
	tb.Ctl.Metrics = reg
	tb.Ctl.Log = wan.NewEventLog()
	tb.Ctl.Retry = wan.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Jitter: 0.5}
	timing, err := tb.RunScenario(workloadSeed)
	if err != nil {
		t.Fatalf("chaos scenario wedged: %v", err)
	}
	run := chaosRun{
		Events: tb.Ctl.Log.Events(), Faults: inj.History(),
		Degraded: timing.Degraded, SolveTruncated: timing.SolveTruncated,
	}
	for _, a := range tb.Agents {
		run.Rates = append(run.Rates, a.Rates())
		run.Tunnels = append(run.Tunnels, a.NumTunnels())
	}
	return run
}

// TestChaosDeterministicReplay is the acceptance check: identical fault
// seed + workload seed must produce a bit-identical sequence of installed
// TE plans and an identical control-plane event order across two runs.
func TestChaosDeterministicReplay(t *testing.T) {
	spec := Spec{
		Seed: 1234, Drop: 0.15, DelayProb: 0.3,
		DelayMin: 500 * time.Microsecond, DelayMax: 2 * time.Millisecond,
		Duplicate: 0.05, Corrupt: 0.05,
	}
	a := runChaosScenario(t, spec, 7)
	b := runChaosScenario(t, spec, 7)
	if !reflect.DeepEqual(a.Rates, b.Rates) {
		t.Errorf("installed rate plans differ across identical runs:\n%v\n%v", a.Rates, b.Rates)
	}
	if !reflect.DeepEqual(a.Tunnels, b.Tunnels) {
		t.Errorf("installed tunnel tables differ: %v vs %v", a.Tunnels, b.Tunnels)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("control-plane event order differs:\n%v\n%v", a.Events, b.Events)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Errorf("fault decision histories differ:\n%v\n%v", a.Faults, b.Faults)
	}
	if a.Degraded != b.Degraded {
		t.Errorf("degraded flag differs: %v vs %v", a.Degraded, b.Degraded)
	}
	// Sanity: the spec actually perturbed the run.
	injected := 0
	for _, f := range a.Faults {
		if f != "s1:none" && f != "s2:none" && f != "s3:none" {
			injected++
		}
	}
	if injected == 0 {
		t.Error("chaos run injected no faults; determinism check is vacuous")
	}
}

// TestChaosConvergesUnderDropAndDelay is the second acceptance check: with
// 10% RPC drop and a 50ms delay on every RPC, the testbed still converges
// to a valid plan, and the fallback ladder never leaves agents rate-less.
func TestChaosConvergesUnderDropAndDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("50ms-per-RPC chaos run; skipped in -short mode")
	}
	spec := Spec{
		Seed: 99, Drop: 0.10,
		DelayProb: 1, DelayMin: 50 * time.Millisecond, DelayMax: 50 * time.Millisecond,
	}
	run := runChaosScenario(t, spec, 7)
	rated := 0
	for i, rates := range run.Rates {
		if len(rates) > 0 {
			rated++
			for k, v := range rates {
				if v < 0 {
					t.Errorf("agent %d has negative rate %s=%v", i, k, v)
				}
			}
		}
	}
	if rated == 0 {
		t.Fatal("no agent holds any rates: the fleet was left rate-less")
	}
	installed := 0
	for _, n := range run.Tunnels {
		installed += n
	}
	if installed == 0 {
		t.Fatal("no tunnels installed anywhere despite retries")
	}
}

// TestChaosTightSolveBudget combines control-plane faults with a starved TE
// solve budget: even when RPCs drop AND the optimizer cannot finish (or even
// find an incumbent), the round must converge to a valid installed plan —
// truncated incumbent or heuristic fallback, never rate-less agents — and
// equal (fault seed, workload seed, budget) triples must replay
// bit-identically.
func TestChaosTightSolveBudget(t *testing.T) {
	spec := Spec{
		Seed: 1234, Drop: 0.15, DelayProb: 0.3,
		DelayMin: 500 * time.Microsecond, DelayMax: 2 * time.Millisecond,
	}
	// The unfaulted testbed solve takes ~70 units with its first incumbent
	// near 55: 2 units forces the heuristic rung, 60 a truncated incumbent.
	for _, units := range []int64{2, 60} {
		a := runChaosScenarioBudget(t, spec, 7, units)
		if !a.SolveTruncated {
			t.Fatalf("units=%d: solve was not truncated; budget too generous for the test", units)
		}
		rated := 0
		for i, rates := range a.Rates {
			for k, v := range rates {
				if v < 0 {
					t.Errorf("units=%d: agent %d has negative rate %s=%v", units, i, k, v)
				}
			}
			if len(rates) > 0 {
				rated++
			}
		}
		if rated == 0 {
			t.Fatalf("units=%d: no agent holds any rates: the fleet was left rate-less", units)
		}
		found := false
		for _, e := range a.Events {
			if e == "te-solve truncated" || e == "te-solve fallback" {
				found = true
			}
		}
		if !found {
			t.Errorf("units=%d: no te-solve truncation/fallback event logged: %v", units, a.Events)
		}
		b := runChaosScenarioBudget(t, spec, 7, units)
		if !reflect.DeepEqual(a.Rates, b.Rates) {
			t.Errorf("units=%d: installed plans differ across identical budgeted runs:\n%v\n%v", units, a.Rates, b.Rates)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Errorf("units=%d: event order differs across identical budgeted runs:\n%v\n%v", units, a.Events, b.Events)
		}
	}
}

// TestFallbackKeepsLastGoodPlan drives the ladder directly: a successful
// round installs a table, then a fully partitioned round must fall back
// without wiping it.
func TestFallbackKeepsLastGoodPlan(t *testing.T) {
	a := newAgent(t, "s1")
	reg := obs.NewRegistry()
	// Partition starts only after the first good round: 0 probability
	// stream wrapped by a manually started outage below.
	inj, err := NewInjector(Spec{Partition: 0}, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := newController(t, inj, map[string]string{"s1": a.Addr()})
	ctl.Metrics = reg
	ctl.Retry = wan.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	good := map[string]float64{"t0": 10, "t1": 5}
	if _, fellBack, err := ctl.UpdateRatesWithFallback(good); err != nil || fellBack {
		t.Fatalf("healthy round: fellBack=%v err=%v", fellBack, err)
	}
	// Now partition the peer for every remaining RPC.
	inj.mu.Lock()
	inj.peers["s1"].down = 1 << 30
	inj.peers["s1"].downKind = Partition
	inj.mu.Unlock()
	_, fellBack, err := ctl.UpdateRatesWithFallback(map[string]float64{"t0": 99})
	if !fellBack {
		t.Fatalf("partitioned round did not fall back (err=%v)", err)
	}
	if reg.Counter("wan.fallback.rounds").Value() != 1 {
		t.Errorf("wan.fallback.rounds = %d, want 1", reg.Counter("wan.fallback.rounds").Value())
	}
	if got := a.Rates(); got["t0"] != 10 || got["t1"] != 5 {
		t.Errorf("agent lost its last good plan: %v", got)
	}
	if lg := ctl.LastGoodRates(); lg["t0"] != 10 {
		t.Errorf("controller forgot the last good plan: %v", lg)
	}
}
