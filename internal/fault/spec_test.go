package fault

import (
	"testing"
	"time"
)

func TestParseSpecFull(t *testing.T) {
	s, err := ParseSpec("seed=7,drop=0.1,delay=0.5:10ms-50ms,dup=0.01,corrupt=0.02,partition=0.005:20,crash=0.002:50")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 7, Drop: 0.1, DelayProb: 0.5, DelayMin: 10 * time.Millisecond,
		DelayMax: 50 * time.Millisecond, Duplicate: 0.01, Corrupt: 0.02,
		Partition: 0.005, PartitionRPCs: 20, Crash: 0.002, CrashRPCs: 50,
	}
	if s != want {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
	if !s.Active() {
		t.Fatal("full spec should be active")
	}
}

func TestParseSpecEmptyAndFixedDelay(t *testing.T) {
	s, err := ParseSpec("")
	if err != nil || s.Active() {
		t.Fatalf("empty spec: %+v, %v", s, err)
	}
	s, err = ParseSpec("delay=1:50ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.DelayMin != 50*time.Millisecond || s.DelayMax != 50*time.Millisecond {
		t.Fatalf("fixed delay parsed as [%v, %v]", s.DelayMin, s.DelayMax)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"drop=2",              // probability out of range
		"drop=-0.1",           // negative
		"drop",                // not key=value
		"nope=0.5",            // unknown clause
		"delay=0.5",           // missing duration
		"delay=0.5:50ms-10ms", // max < min
		"partition=0.5:0",     // zero outage
		"crash=0.5:-3",        // negative outage
		"seed=abc",            // non-numeric seed
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", bad)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"",
		"drop=0.1",
		"seed=9,drop=0.25,delay=1:50ms-50ms,dup=0.01,corrupt=0.02,partition=0.005:20,crash=0.002:50",
		"partition=0.1", // outage length left to the injector default
	} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q.String()=%q): %v", in, s.String(), err)
		}
		if back != s {
			t.Errorf("round trip of %q: %+v != %+v", in, back, s)
		}
	}
}
