package fault

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file holds the storage-corruption half of the failover matrix: the
// deterministic mutations a dead leader's state directory can suffer
// between its last fsync and a standby's takeover. They operate on real
// directories (the failover scenarios run controllers against the OS
// filesystem, where flock arbitration is real) and are exact — no
// randomness — so a corrupted-recovery trace replays bit-identically.
//
// The persist on-disk names are part of its documented layout (snap-<seq>,
// journal-<base>-<gen>, both zero-padded hex, so lexicographic order is
// numeric order); the helpers match on those prefixes rather than reaching
// into the persist package's internals.

// stateFiles lists dir's journal and snapshot files in name (= numeric)
// order, ignoring everything else (LOCK, gen, *.tmp debris).
func stateFiles(dir string) (journals, snaps []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("fault: scan state dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			continue
		}
		switch {
		case strings.HasPrefix(name, "journal-"):
			journals = append(journals, name)
		case strings.HasPrefix(name, "snap-"):
			snaps = append(snaps, name)
		}
	}
	sort.Strings(journals)
	sort.Strings(snaps)
	return journals, snaps, nil
}

// TornJournalTail truncates the newest journal in dir by n bytes — the
// classic torn write: the leader died after the filesystem shortened its
// final append. Records are packed back to back, so any n in (0, size of
// the last record) leaves a checksum-failing torn tail that recovery and
// standby tailing must both stop before. It fails rather than guess if dir
// holds no journal or n would amputate the whole file.
func TornJournalTail(dir string, n int) error {
	if n <= 0 {
		return fmt.Errorf("fault: torn tail of %d bytes", n)
	}
	journals, _, err := stateFiles(dir)
	if err != nil {
		return err
	}
	if len(journals) == 0 {
		return fmt.Errorf("fault: no journal to tear in %s", dir)
	}
	path := filepath.Join(dir, journals[len(journals)-1])
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if int64(n) >= fi.Size() {
		return fmt.Errorf("fault: tearing %d bytes would empty %s (%d bytes)", n, path, fi.Size())
	}
	return os.Truncate(path, fi.Size()-int64(n))
}

// WipeStateMagic overwrites the 8-byte magic header of every journal and
// snapshot in dir — total storage corruption that keeps the file names (so
// the persist generation counter, which also reads journal names, stays
// monotone and fencing survives). Recovery over a wiped directory is a
// cold start: every record is behind an invalid header and none may be
// trusted.
func WipeStateMagic(dir string) error {
	journals, snaps, err := stateFiles(dir)
	if err != nil {
		return err
	}
	if len(journals)+len(snaps) == 0 {
		return fmt.Errorf("fault: no state files to wipe in %s", dir)
	}
	for _, name := range append(journals, snaps...) {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		_, werr := f.WriteAt([]byte("DEADBEEF"), 0)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("fault: wipe %s: %w", name, werr)
		}
	}
	return nil
}
