package fault

import (
	"sync"
	"time"

	"prete/internal/wan"
)

// CtlHook wraps a wan.Transport and fires a callback once, immediately
// before a deterministic global RPC attempt number — the same
// counted-attempt timebase CtlCrash uses, so "promote a standby while the
// leader is mid-epoch" (matrix row F12) is expressed as an exact point in
// the leader's RPC sequence and replays bit-identically. The hooked attempt
// itself then proceeds: the callback races nothing, it is ordered strictly
// before the attempt.
type CtlHook struct {
	inner wan.Transport

	mu       sync.Mutex
	at       int64 // fire before this 1-based attempt; 0 = disarmed
	fn       func()
	attempts int64
	fired    bool
}

// NewCtlHook wraps inner, disarmed.
func NewCtlHook(inner wan.Transport) *CtlHook {
	return &CtlHook{inner: inner}
}

// Arm schedules fn to run exactly once, before global RPC attempt number at
// (1-based) starts. Re-arming replaces the previous hook.
func (t *CtlHook) Arm(at int64, fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.at = at
	t.fn = fn
	t.fired = false
}

// Fired reports whether the armed hook has run.
func (t *CtlHook) Fired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

// Attempts returns the global RPC attempt count seen so far.
func (t *CtlHook) Attempts() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// tick counts one attempt and returns the callback to run before it, if
// this is the armed attempt.
func (t *CtlHook) tick() func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attempts++
	if t.fired || t.at <= 0 || t.attempts < t.at {
		return nil
	}
	t.fired = true
	return t.fn
}

// Dial dials through the inner transport and wraps the connection.
func (t *CtlHook) Dial(name, addr string) (wan.Conn, error) {
	cn, err := t.inner.Dial(name, addr)
	if err != nil {
		return nil, err
	}
	return &ctlHookConn{inner: cn, t: t}, nil
}

type ctlHookConn struct {
	inner wan.Conn
	t     *CtlHook
}

func (c *ctlHookConn) RoundTrip(req *wan.Request, timeout time.Duration) (*wan.Response, error) {
	if fn := c.t.tick(); fn != nil {
		fn()
	}
	return c.inner.RoundTrip(req, timeout)
}

func (c *ctlHookConn) Close() error { return c.inner.Close() }
