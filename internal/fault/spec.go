package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the -faults flag syntax: a comma-separated list of
// key=value clauses.
//
//	seed=7                      decision-stream seed (default 0)
//	drop=0.1                    drop probability per RPC attempt
//	delay=0.5:10ms-50ms         delay probability : uniform duration range
//	delay=1:50ms                fixed 50ms delay (min == max)
//	dup=0.01                    duplicate-delivery probability
//	corrupt=0.02                corrupt-delivery probability
//	partition=0.005:20          partition probability : outage length (RPCs)
//	crash=0.002:50              crash probability : outage length (RPCs)
//
// The empty string parses to the zero Spec (no faults).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, clause := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			spec.Drop, err = parseProb(key, val)
		case "dup":
			spec.Duplicate, err = parseProb(key, val)
		case "corrupt":
			spec.Corrupt, err = parseProb(key, val)
		case "delay":
			prob, rest, hasRange := strings.Cut(val, ":")
			spec.DelayProb, err = parseProb(key, prob)
			if err == nil && hasRange {
				spec.DelayMin, spec.DelayMax, err = parseDurRange(rest)
			} else if err == nil {
				err = fmt.Errorf("fault: delay needs a duration, e.g. delay=%s:10ms-50ms", prob)
			}
		case "partition":
			spec.Partition, spec.PartitionRPCs, err = parseProbCount(key, val)
		case "crash":
			spec.Crash, spec.CrashRPCs, err = parseProbCount(key, val)
		default:
			return Spec{}, fmt.Errorf("fault: unknown clause %q (want seed, drop, delay, dup, corrupt, partition, crash)", key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("fault: %s=%s is not a probability in [0, 1]", key, val)
	}
	return p, nil
}

func parseDurRange(s string) (time.Duration, time.Duration, error) {
	lo, hi, isRange := strings.Cut(s, "-")
	min, err := time.ParseDuration(lo)
	if err != nil {
		return 0, 0, fmt.Errorf("fault: bad duration %q: %v", lo, err)
	}
	max := min
	if isRange {
		if max, err = time.ParseDuration(hi); err != nil {
			return 0, 0, fmt.Errorf("fault: bad duration %q: %v", hi, err)
		}
	}
	if min < 0 || max < min {
		return 0, 0, fmt.Errorf("fault: delay range %q must satisfy 0 <= min <= max", s)
	}
	return min, max, nil
}

func parseProbCount(key, val string) (float64, int, error) {
	probStr, countStr, hasCount := strings.Cut(val, ":")
	p, err := parseProb(key, probStr)
	if err != nil {
		return 0, 0, err
	}
	count := 0
	if hasCount {
		if count, err = strconv.Atoi(countStr); err != nil || count < 1 {
			return 0, 0, fmt.Errorf("fault: %s outage length %q is not a positive RPC count", key, countStr)
		}
	}
	return p, count, nil
}

// String renders the spec back into ParseSpec syntax (empty for the zero
// spec); ParseSpec(spec.String()) round-trips.
func (s Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if s.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", s.Drop))
	}
	if s.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g:%s-%s", s.DelayProb, s.DelayMin, s.DelayMax))
	}
	if s.Duplicate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", s.Duplicate))
	}
	if s.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", s.Corrupt))
	}
	if s.Partition > 0 {
		parts = append(parts, probCountClause("partition", s.Partition, s.PartitionRPCs))
	}
	if s.Crash > 0 {
		parts = append(parts, probCountClause("crash", s.Crash, s.CrashRPCs))
	}
	return strings.Join(parts, ",")
}

func probCountClause(key string, p float64, count int) string {
	if count < 1 {
		// The outage length defaults at NewInjector time; omit it so the
		// rendered clause re-parses.
		return fmt.Sprintf("%s=%g", key, p)
	}
	return fmt.Sprintf("%s=%g:%d", key, p, count)
}
