package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"prete/internal/core"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/te"
	"prete/internal/wan"
)

// georepCase is one row of the cross-site failover matrix F10-F14: an
// injected failure combination on the *replication* plane (ship streams,
// lease channel, promotion timing) plus its expected outcome. Unlike the
// shared-directory F1-F9 rows there is no flock arbiter here — the only
// split-brain defense is the agents' generation fence, which is exactly
// what these rows stress.
type georepCase struct {
	name        string
	sites       int
	epochs      int          // healthy epochs before the failure
	retain      int          // leader-side replication buffer cap (0 = default)
	shipSpec    map[int]Spec // per-site replication-stream chaos
	crashBudget int64        // >= 0: kill the leader mid-epoch; -1: clean death
	partition   bool         // F11: leader fully partitioned (alive but cut off)
	secondClaim bool         // F11: a second site claims after the first wins
	hookOffset  int64        // F12: promote site 1 this many leader RPCs into the next epoch
	classes     *te.ClassSpec
	storm       []core.DegradationSignal
	maxTicks    int

	wantPromoted   int
	wantWarm       bool
	wantMirror     bool
	wantReassert   bool
	wantMinResyncs int64 // lower bound on snapshot re-syncs the promoted site needed
	wantFenced     int   // exact count of promotion claims lost at the agents
}

// georepRun is the full observable outcome of one cross-site failover
// trace. Two runs of the same row must be reflect.DeepEqual — events, fault
// histories, final plans, AND the byte content of every replicated state
// directory (SiteHashes) — the bit-identical replay evidence the roadmap
// demands for this layer.
type georepRun struct {
	Events       []string
	Faults       []string
	Rates        []map[string]float64
	Promoted     int
	Warm         bool
	Epoch        uint64
	MirrorMatch  bool
	Reasserted   bool
	Degraded     bool
	Resyncs      int64
	DetectTicks  int
	FencedClaims int
	Fenced       int
	HaltAttempt  int64
	ZombieErr    string
	Shipped      int64
	Acked        int64
	Resent       int64
	SiteHashes   []string
	Status       []wan.SiteStatus
	Admission    *wan.AdmissionDecision
}

// hashDir digests a state directory: sha256 over every file's relative path
// and content in sorted order. Journal bytes, snapshot bytes, generation
// counters — if any durable byte differs between two runs, the digest does.
func hashDir(t *testing.T, dir string) string {
	t.Helper()
	h := sha256.New()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "%s:%d:", rel, len(b))
		h.Write(b)
		return nil
	})
	if err != nil {
		t.Fatalf("hash %s: %v", dir, err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runGeoScenario drives one F10-F14 row: healthy epochs with the leader's
// journal shipping cross-site, the injected failure, lease expiry and
// promotion, the post-failover epoch on the adopted lineage, and the zombie
// fence probe.
func runGeoScenario(t *testing.T, gc georepCase) georepRun {
	t.Helper()
	reg := obs.NewRegistry()
	log := wan.NewEventLog()
	dir := t.TempDir()
	sitesRoot := t.TempDir()
	retry := wan.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Jitter: 0.5}

	ct := NewCtlCrash(wan.TCPTransport{}, 0, reg)
	ct.Disarm()
	hook := NewCtlHook(ct)
	tb, err := wan.NewTestbedTransport(fastSwitch(), func(f optical.Features) float64 { return 0.8 }, hook)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tb.SolveUnits = 200000
	tb.Ctl.Metrics = reg
	tb.Ctl.Log = log
	tb.Ctl.Retry = retry
	tb.Classes = gc.classes
	tb.StormSignals = gc.storm
	if _, err := tb.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	lease, err := wan.NewLeaseServer(tb.Ctl.Generation)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lease.Close() })

	shipInjs := make(map[int]*Injector)
	shipFn := func(id int) wan.Transport {
		spec, ok := gc.shipSpec[id]
		if !ok {
			return wan.TCPTransport{}
		}
		inj, err := NewInjector(spec, reg)
		if err != nil {
			t.Fatal(err)
		}
		shipInjs[id] = inj
		return NewTransport(wan.TCPTransport{}, inj)
	}
	agents := make(map[string]string, len(tb.Agents))
	for _, a := range tb.Agents {
		agents[a.Name] = a.Addr()
	}
	const leaseTicks = 3
	ss, err := wan.NewSiteSet(dir, sitesRoot, lease.Addr(), agents, wan.SiteOptions{
		Sites:            gc.sites,
		LeaseTicks:       leaseTicks,
		HeartbeatTimeout: 100 * time.Millisecond,
		RetainRecords:    gc.retain,
		Transport:        wan.TCPTransport{},
		Ship:             shipFn,
		Retry:            retry,
		Metrics:          reg,
		Log:              log,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })

	var run georepRun
	tick := func() *wan.SitePromotion {
		p, err := ss.Tick()
		if err != nil {
			if !errors.Is(err, wan.ErrClaimFenced) {
				t.Fatalf("tick: %v", err)
			}
			run.FencedClaims++
		}
		return p
	}

	// Healthy phase: the leader journals epochs, each Tick ships them
	// cross-site and renews every site's lease.
	for e := 0; e < gc.epochs; e++ {
		if _, err := tb.RunScenario(7); err != nil {
			t.Fatalf("healthy epoch %d: %v", e+1, err)
		}
		if p := tick(); p != nil {
			t.Fatalf("promotion while the leader is alive: %+v", p)
		}
	}

	// The injected failure, then detection and hand-off.
	var prom *wan.SitePromotion
	switch {
	case gc.hookOffset > 0:
		// F12: all leases lapse (the clock jumps a full duration with no
		// renewing tick) and the promotion fires at an exact point inside
		// the leader's next epoch — the claim races a live solve.
		ss.Clock().Advance(leaseTicks + 1)
		var hookErr error
		hook.Arm(hook.Attempts()+gc.hookOffset, func() {
			prom, hookErr = ss.Promote(1)
		})
		if _, zerr := tb.RunScenario(7); zerr != nil {
			run.ZombieErr = zerr.Error()
		}
		if hookErr != nil {
			t.Fatalf("mid-epoch promotion: %v", hookErr)
		}
		if prom == nil || !hook.Fired() {
			t.Fatalf("promotion hook never fired (fired=%v)", hook.Fired())
		}
	case gc.partition:
		// F11: the leader is alive but fully partitioned from the lease
		// endpoint and every site. Sites see only silence.
		ss.SetLeaderReachable(false)
		lease.Close()
		start := time.Now()
		for i := 0; i < gc.maxTicks && prom == nil; i++ {
			run.DetectTicks++
			prom = tick()
		}
		if prom == nil {
			t.Fatalf("no promotion within %d ticks", gc.maxTicks)
		}
		if detect := time.Since(start); detect >= tePeriod {
			t.Errorf("detection + hand-off took %v, bound is one TE period (%v)", detect, tePeriod)
		}
	default:
		if gc.crashBudget >= 0 {
			ct.Arm(gc.crashBudget)
			if _, err := tb.RunScenario(7); !errors.Is(err, wan.ErrControllerHalted) {
				t.Fatalf("mid-epoch crash budget %d: err = %v, want ErrControllerHalted", gc.crashBudget, err)
			}
			run.HaltAttempt = ct.Attempts()
		}
		lease.Close()
		if err := tb.Ctl.ReleaseState(); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < gc.maxTicks && prom == nil; i++ {
			run.DetectTicks++
			prom = tick()
		}
		if prom == nil {
			t.Fatalf("no promotion within %d ticks", gc.maxTicks)
		}
		if detect := time.Since(start); detect >= tePeriod {
			t.Errorf("detection + hand-off took %v, bound is one TE period (%v)", detect, tePeriod)
		}
	}
	if prom.Elapsed >= tePeriod {
		t.Errorf("promotion alone took %v, bound is %v", prom.Elapsed, tePeriod)
	}
	run.Promoted = prom.SiteID
	run.Warm = prom.Recovery.Warm
	run.Epoch = prom.Recovery.Epoch
	run.MirrorMatch = prom.MirrorMatch
	run.Reasserted = prom.Reasserted
	run.Degraded = prom.Degraded
	run.Resyncs = prom.Resyncs

	if gc.secondClaim {
		// F11's second claimant: its lease has lapsed too, so the claim is
		// locally legal — only the agents' equal-generation tie-break can
		// stop it, and must.
		if _, cerr := ss.Promote(2); !errors.Is(cerr, wan.ErrClaimFenced) {
			t.Fatalf("second claimant: err = %v, want ErrClaimFenced", cerr)
		}
		run.FencedClaims++
	}
	if gc.partition {
		// The partitioned zombie runs a full epoch. Every state-bearing RPC
		// it sends is stale-generation; no agent may install its plan.
		pre := make([]map[string]float64, len(tb.Agents))
		for i, a := range tb.Agents {
			pre[i] = a.Rates()
		}
		if _, zerr := tb.RunScenario(7); zerr != nil {
			run.ZombieErr = zerr.Error()
		}
		for i, a := range tb.Agents {
			if got := a.Rates(); !reflect.DeepEqual(got, pre[i]) {
				t.Errorf("agent %s installed a stale-generation plan during the partitioned epoch", a.Name)
			}
		}
	}

	// Adopt the promoted lineage, verify convergence, run its next epoch.
	zombie := tb.AdoptPromoted(prom.Ctl)
	t.Cleanup(func() { zombie.Close() })
	if prom.Reasserted {
		want := prom.Ctl.LastGoodRates()
		for _, a := range tb.Agents {
			if got := a.Rates(); !reflect.DeepEqual(got, want) {
				t.Errorf("agent %s not converged to the re-asserted plan: %v want %v", a.Name, got, want)
			}
		}
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatalf("post-failover epoch: %v", err)
	}

	// Zombie fence probe: the predecessor's network returns and every write
	// must bounce off the generation fence without mutating agent state.
	ct.Disarm()
	preProbe := make([]map[string]float64, len(tb.Agents))
	for i, a := range tb.Agents {
		preProbe[i] = a.Rates()
	}
	if _, err := zombie.UpdateRates(map[string]float64{"t0": 12345}); err == nil {
		t.Error("zombie leader's post-promotion write was accepted")
	}
	for i, a := range tb.Agents {
		run.Fenced += a.FenceRejections()
		if got := a.Rates(); !reflect.DeepEqual(got, preProbe[i]) {
			t.Errorf("agent %s state mutated by a fenced zombie write", a.Name)
		}
	}
	if run.Fenced == 0 {
		t.Error("no agent recorded a fence rejection")
	}

	// Shipping accounting identity: every attempt resolved to exactly one of
	// acked or resent, nothing left inflight.
	rs := ss.ReplStats()
	if rs.Shipped != rs.Acked+rs.Resent || rs.Inflight != 0 {
		t.Errorf("accounting identity violated: shipped=%d acked=%d resent=%d inflight=%d",
			rs.Shipped, rs.Acked, rs.Resent, rs.Inflight)
	}
	run.Shipped, run.Acked, run.Resent = rs.Shipped, rs.Acked, rs.Resent

	// Row expectations.
	if run.Promoted != gc.wantPromoted {
		t.Errorf("promoted site = %d, want %d", run.Promoted, gc.wantPromoted)
	}
	if run.Warm != gc.wantWarm {
		t.Errorf("recovery warm = %v, want %v", run.Warm, gc.wantWarm)
	}
	if run.MirrorMatch != gc.wantMirror {
		t.Errorf("mirror match = %v, want %v", run.MirrorMatch, gc.wantMirror)
	}
	if run.Reasserted != gc.wantReassert {
		t.Errorf("reasserted = %v, want %v", run.Reasserted, gc.wantReassert)
	}
	if run.Resyncs < gc.wantMinResyncs {
		t.Errorf("promoted site re-syncs = %d, want >= %d", run.Resyncs, gc.wantMinResyncs)
	}
	if run.FencedClaims != gc.wantFenced {
		t.Errorf("fenced claims = %d, want %d", run.FencedClaims, gc.wantFenced)
	}

	run.Events = log.Events()
	for id := 1; id <= gc.sites; id++ {
		if inj := shipInjs[id]; inj != nil {
			for _, h := range inj.History() {
				run.Faults = append(run.Faults, fmt.Sprintf("ship%d:%s", id, h))
			}
		}
	}
	for _, a := range tb.Agents {
		run.Rates = append(run.Rates, a.Rates())
	}
	run.Status = ss.Status()
	run.Admission = tb.LastAdmission()

	// State-directory digests: replicated truth must be byte-identical
	// across runs, not just behaviorally similar.
	var siteDirs []string
	entries, err := os.ReadDir(sitesRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			siteDirs = append(siteDirs, filepath.Join(sitesRoot, e.Name()))
		}
	}
	sort.Strings(siteDirs)
	for _, d := range siteDirs {
		run.SiteHashes = append(run.SiteHashes, hashDir(t, d))
	}
	run.SiteHashes = append(run.SiteHashes, hashDir(t, dir))
	return run
}

// georepMatrix is the F10-F14 cross-site failure matrix.
var georepMatrix = []georepCase{
	{
		// F10: site 1's replication stream drops half its frames while the
		// leader-side buffer retains a single record, so every missed ship
		// puts the site behind the buffer and forces a snapshot re-sync. The
		// lagging site must be re-synced BEFORE it re-asserts: the promoted
		// plan is the replicated truth, not a stale prefix.
		name: "F10_lagging_site_resync", sites: 2, epochs: 4, retain: 1,
		shipSpec:    map[int]Spec{1: {Seed: 7, Drop: 0.5}},
		crashBudget: -1, maxTicks: 8,
		wantPromoted: 1, wantWarm: true, wantMirror: true, wantReassert: true,
		wantMinResyncs: 1,
	},
	{
		// F11: full partition, two claimants. The leader is alive but cut
		// off from the lease endpoint and every site; both sites' leases
		// lapse. Site 1 wins the claim; site 2's independent claim carries
		// the same floored generation and must lose the agents' named
		// tie-break; the partitioned zombie's full epoch must not install a
		// single stale-generation rate.
		name: "F11_partition_two_claimants", sites: 2, epochs: 2,
		crashBudget: -1, partition: true, secondClaim: true, maxTicks: 8,
		wantPromoted: 1, wantWarm: true, wantMirror: true, wantReassert: true,
		wantFenced: 1,
	},
	{
		// F12: promotion racing a live solve epoch. The leases lapse while
		// the leader is healthy mid-fan-out; site 1 claims at an exact point
		// inside the leader's RPC sequence. The zombie finishes its epoch on
		// the degradation ladder and every post-claim write it sends is
		// fenced.
		name: "F12_promotion_races_live_epoch", sites: 2, epochs: 1,
		crashBudget: -1, hookOffset: 3,
		wantPromoted: 1, wantWarm: true, wantMirror: true, wantReassert: true,
	},
	{
		// F13: replication-stream corruption during a degradation storm with
		// SLO classes active — composes the admission ladder with cross-site
		// shipping. Corrupted frames are caught by the receiver's CRC, nacked
		// into snapshot re-syncs, and the promoted site still replays the
		// storm's per-class admission decisions bit-identically.
		name: "F13_corrupt_stream_storm", sites: 2, epochs: 3,
		shipSpec:    map[int]Spec{1: {Seed: 4242, Corrupt: 0.6}},
		crashBudget: -1, maxTicks: 8,
		classes:      te.DefaultClassSpec(),
		storm:        []core.DegradationSignal{{Fiber: 1, PNN: 0.7}},
		wantPromoted: 1, wantWarm: true, wantMirror: true, wantReassert: true,
		wantMinResyncs: 1,
	},
	{
		// F14: snapshot re-sync under load. Rapid epochs against a one-record
		// buffer with both ship streams dropping and delaying, then a
		// mid-epoch leader kill: sites live mostly off snapshot re-syncs, and
		// promotion still lands inside one TE period with exact accounting.
		name: "F14_resync_under_load", sites: 2, epochs: 6, retain: 1,
		shipSpec: map[int]Spec{
			1: {Seed: 11, Drop: 0.4},
			2: {Seed: 12, Drop: 0.4, DelayProb: 0.2, DelayMin: 200 * time.Microsecond, DelayMax: time.Millisecond},
		},
		crashBudget: 2, maxTicks: 8,
		wantPromoted: 1, wantWarm: true, wantMirror: true, wantReassert: true,
		wantMinResyncs: 1,
	},
}

// TestGeoFailoverMatrix runs every F10-F14 row twice and requires the two
// traces to be bit-identical: same event order, same fault history, same
// final plans, and byte-identical replicated state directories.
func TestGeoFailoverMatrix(t *testing.T) {
	for _, gc := range georepMatrix {
		t.Run(gc.name, func(t *testing.T) {
			a := runGeoScenario(t, gc)
			b := runGeoScenario(t, gc)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("row does not replay bit-identically:\n run A: %+v\n run B: %+v", a, b)
			}
		})
	}
}
