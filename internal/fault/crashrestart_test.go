package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/wan"
)

// crashRun is the observable outcome of one crash-restart trace: epoch 1
// completes, the controller is killed partway through epoch 2, restarts
// (warm against a state directory, or cold without), and epoch 3 runs to
// completion.
type crashRun struct {
	Events           []string
	Faults           []string
	Rates            []map[string]float64
	HaltAttempt      int64
	PlanAfterRestart bool // controller knew a plan before re-running the pipeline
	Warm             bool
}

// runCrashRestartScenario drives the trace. stateDir "" = cold restart.
func runCrashRestartScenario(t *testing.T, spec Spec, workloadSeed uint64, crashBudget int64, stateDir string) crashRun {
	t.Helper()
	reg := obs.NewRegistry()
	inj, err := NewInjector(spec, reg)
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCtlCrash(NewTransport(wan.TCPTransport{}, inj), 0, reg)
	ct.Disarm()
	tb, err := wan.NewTestbedTransport(fastSwitch(), func(f optical.Features) float64 { return 0.8 }, ct)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tb.Ctl.Metrics = reg
	tb.Ctl.Log = wan.NewEventLog()
	tb.Ctl.Retry = wan.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Jitter: 0.5}
	if stateDir != "" {
		if _, err := tb.OpenState(stateDir); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1 completes (and, with a state dir, journals).
	if _, err := tb.RunScenario(workloadSeed); err != nil {
		t.Fatalf("epoch 1 wedged: %v", err)
	}
	// Kill the controller partway through epoch 2.
	ct.Arm(crashBudget)
	_, err = tb.RunScenario(workloadSeed)
	if !errors.Is(err, wan.ErrControllerHalted) {
		t.Fatalf("epoch 2 with crash budget %d: err = %v, want ErrControllerHalted", crashBudget, err)
	}
	run := crashRun{HaltAttempt: ct.Attempts(), Warm: stateDir != ""}
	// Restart: new process, same agents, same transport (re-armed to live).
	ct.Disarm()
	if err := tb.RestartController(ct); err != nil {
		t.Fatal(err)
	}
	if stateDir != "" {
		rec, err := tb.OpenState(stateDir)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Warm {
			t.Fatalf("restart against journaled state recovered cold: %+v", rec)
		}
	}
	run.PlanAfterRestart = tb.Ctl.LastGoodRates() != nil
	// Epoch 3 runs to completion on the restarted controller.
	if _, err := tb.RunScenario(workloadSeed); err != nil {
		t.Fatalf("post-restart epoch wedged: %v", err)
	}
	run.Events = tb.Ctl.Log.Events()
	run.Faults = inj.History()
	for _, a := range tb.Agents {
		run.Rates = append(run.Rates, a.Rates())
	}
	return run
}

// TestCrashRestartDeterministicReplay: a controller crash-restart trace
// under drop x delay faults replays bit-identically from its seeds — the
// fault history, the event order (including the recovery events), the halt
// point, and the final installed plans.
func TestCrashRestartDeterministicReplay(t *testing.T) {
	spec := Spec{
		Seed: 4321, Drop: 0.10, DelayProb: 0.3,
		DelayMin: 200 * time.Microsecond, DelayMax: time.Millisecond,
	}
	budget := CrashPoint(4321, 0, 1, 4)
	a := runCrashRestartScenario(t, spec, 7, budget, t.TempDir())
	b := runCrashRestartScenario(t, spec, 7, budget, t.TempDir())
	if a.HaltAttempt != b.HaltAttempt {
		t.Errorf("halt attempt differs: %d vs %d", a.HaltAttempt, b.HaltAttempt)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Errorf("event order differs across identical crash traces:\n%v\n%v", a.Events, b.Events)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Errorf("fault histories differ:\n%v\n%v", a.Faults, b.Faults)
	}
	if !reflect.DeepEqual(a.Rates, b.Rates) {
		t.Errorf("final plans differ:\n%v\n%v", a.Rates, b.Rates)
	}
	// The trace must actually contain the crash and the warm recovery.
	wantEvents := map[string]bool{"recovery cold gen=1": false}
	halted, warm := false, false
	for _, e := range a.Events {
		if e == "recovery cold gen=1" {
			wantEvents[e] = true
		}
		if len(e) > 6 && e[len(e)-6:] == "halted" {
			halted = true
		}
		if len(e) > 13 && e[:13] == "recovery warm" {
			warm = true
		}
	}
	if !wantEvents["recovery cold gen=1"] || !halted || !warm {
		t.Errorf("trace missing cold open / halt / warm recovery events: %v", a.Events)
	}
}

// TestWarmRestartAvailabilityBeatsCold: on the same crash trace, a warm
// restart resumes with a known plan (last-good rates recovered from the
// journal and re-asserted fleet-wide) while a cold restart comes back
// empty-handed until it completes a full epoch.
func TestWarmRestartAvailabilityBeatsCold(t *testing.T) {
	spec := Spec{
		Seed: 4321, Drop: 0.10, DelayProb: 0.3,
		DelayMin: 200 * time.Microsecond, DelayMax: time.Millisecond,
	}
	budget := CrashPoint(4321, 0, 1, 4)
	warm := runCrashRestartScenario(t, spec, 7, budget, t.TempDir())
	cold := runCrashRestartScenario(t, spec, 7, budget, "")
	if !warm.PlanAfterRestart {
		t.Error("warm restart had no plan after recovery")
	}
	if cold.PlanAfterRestart {
		t.Error("cold restart claims a plan before running any epoch")
	}
	// Both eventually converge: no agent is left rate-less in either mode.
	for i, rates := range warm.Rates {
		if len(rates) == 0 {
			t.Errorf("warm: agent %d rate-less after recovery epoch", i)
		}
		if len(cold.Rates[i]) == 0 {
			t.Errorf("cold: agent %d rate-less after recovery epoch", i)
		}
	}
}
