package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"prete/internal/obs"
	"prete/internal/wan"
)

func fastSwitch() wan.SwitchConfig {
	return wan.SwitchConfig{
		InstallLatency: time.Millisecond,
		RateLatency:    100 * time.Microsecond,
		MaxTunnels:     100,
	}
}

// newAgent starts a switch agent torn down via t.Cleanup.
func newAgent(t *testing.T, name string) *wan.SwitchAgent {
	t.Helper()
	a, err := wan.NewSwitchAgent(name, fastSwitch())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// newController dials agents through the injector, torn down via t.Cleanup.
func newController(t *testing.T, inj *Injector, agents map[string]string) *wan.Controller {
	t.Helper()
	ctl, err := wan.NewControllerTransport(NewTransport(wan.TCPTransport{}, inj), agents)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	return ctl
}

func mustInjector(t *testing.T, spec Spec) *Injector {
	t.Helper()
	inj, err := NewInjector(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestInjectorHistoryDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 42, Drop: 0.2, DelayProb: 0.3, DelayMin: time.Millisecond,
		DelayMax: 5 * time.Millisecond, Duplicate: 0.1, Corrupt: 0.1,
		Partition: 0.05, PartitionRPCs: 3, Crash: 0.02, CrashRPCs: 4,
	}
	run := func() []string {
		inj := mustInjector(t, spec)
		// Interleave peers in a different order per run: per-peer streams
		// must make the per-peer decision sequence order-independent.
		for i := 0; i < 200; i++ {
			inj.decide("s1")
			if i%2 == 0 {
				inj.decide("s2")
			}
		}
		for i := 0; i < 100; i++ {
			inj.decide("s2")
		}
		return inj.History()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different decision histories")
	}
	// Per-peer subsequences must be identical even when the global
	// interleaving differs.
	perPeer := func(h []string, peer string) []string {
		var out []string
		for _, e := range h {
			if len(e) > len(peer) && e[:len(peer)+1] == peer+":" {
				out = append(out, e)
			}
		}
		return out
	}
	inj := mustInjector(t, spec)
	for i := 0; i < 100; i++ {
		inj.decide("s2") // s2 first this time
	}
	for i := 0; i < 200; i++ {
		inj.decide("s1")
		if i%2 == 0 {
			inj.decide("s2")
		}
	}
	c := inj.History()
	for _, peer := range []string{"s1", "s2"} {
		pa, pc := perPeer(a, peer), perPeer(c, peer)
		if len(pc) < len(pa) {
			pa = pa[:len(pc)]
		} else {
			pc = pc[:len(pa)]
		}
		if !reflect.DeepEqual(pa, pc) {
			t.Fatalf("peer %s stream depends on interleaving", peer)
		}
	}
}

func TestInjectorSeedChangesDecisions(t *testing.T) {
	run := func(seed uint64) []string {
		inj := mustInjector(t, Spec{Seed: seed, Drop: 0.5})
		for i := 0; i < 64; i++ {
			inj.decide("s1")
		}
		return inj.History()
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Fatal("different seeds produced identical histories")
	}
}

func TestDropAndRetry(t *testing.T) {
	a := newAgent(t, "s1")
	reg := obs.NewRegistry()
	inj, err := NewInjector(Spec{Seed: 7, Drop: 0.3}, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := newController(t, inj, map[string]string{"s1": a.Addr()})
	ctl.Metrics = reg
	ctl.Retry.BaseBackoff = time.Millisecond
	for i := 0; i < 40; i++ {
		if _, err := ctl.InstallTunnels([]wan.TunnelInstall{{Switch: "s1", TunnelID: i, Path: []int{0}}}); err != nil {
			t.Fatalf("install %d failed despite retries: %v", i, err)
		}
	}
	if a.NumTunnels() != 40 {
		t.Fatalf("tunnels = %d, want 40", a.NumTunnels())
	}
	if reg.Counter("fault.injected.drop").Value() == 0 {
		t.Fatal("30% drop injected nothing over 40+ RPCs")
	}
	if reg.Counter("wan.rpc.retries").Value() == 0 {
		t.Fatal("drops produced no controller retries")
	}
}

func TestCorruptDeliversButErrs(t *testing.T) {
	a := newAgent(t, "s1")
	inj := mustInjector(t, Spec{Corrupt: 1})
	ctl := newController(t, inj, map[string]string{"s1": a.Addr()})
	ctl.Retry.MaxAttempts = 2
	ctl.Retry.BaseBackoff = time.Millisecond
	_, err := ctl.UpdateRates(map[string]float64{"t0": 5})
	var injErr *Injected
	if !errors.As(err, &injErr) || injErr.Kind != Corrupt {
		t.Fatalf("want injected corrupt error, got %v", err)
	}
	// Every delivery landed even though every response was destroyed.
	if got := a.Rates()["t0"]; got != 5 {
		t.Fatalf("corrupted delivery did not reach the agent: rates=%v", a.Rates())
	}
}

func TestDuplicateDeliverIsIdempotent(t *testing.T) {
	a := newAgent(t, "s1")
	inj := mustInjector(t, Spec{Duplicate: 1})
	ctl := newController(t, inj, map[string]string{"s1": a.Addr()})
	if _, err := ctl.InstallTunnels([]wan.TunnelInstall{{Switch: "s1", TunnelID: 9, Path: []int{1}}}); err != nil {
		t.Fatal(err)
	}
	if a.NumTunnels() != 1 {
		t.Fatalf("duplicate delivery broke idempotency: %d tunnels", a.NumTunnels())
	}
}

func TestCrashOutageAndRedial(t *testing.T) {
	a := newAgent(t, "s1")
	reg := obs.NewRegistry()
	inj, err := NewInjector(Spec{Seed: 3, Crash: 0.2, CrashRPCs: 2}, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctl := newController(t, inj, map[string]string{"s1": a.Addr()})
	ctl.Metrics = reg
	ctl.Retry = wan.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	// Crashes sever the TCP stream and swallow the next CrashRPCs-1
	// attempts; the retry loop must ride out each outage and the transport
	// must re-dial afterwards. The seed is fixed, so this run — including
	// which pings hit a crash — is fully deterministic.
	for i := 0; i < 20; i++ {
		if err := ctl.Ping(); err != nil {
			t.Fatalf("ping %d did not survive a crash/restart: %v", i, err)
		}
	}
	if reg.Counter("fault.injected.crash").Value() == 0 {
		t.Fatal("20% crash rate injected no crashes over 20+ pings")
	}
}

func TestPartitionExhaustsRetries(t *testing.T) {
	a := newAgent(t, "s1")
	inj := mustInjector(t, Spec{Partition: 1, PartitionRPCs: 100})
	ctl := newController(t, inj, map[string]string{"s1": a.Addr()})
	ctl.Retry = wan.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	err := ctl.Ping()
	var injErr *Injected
	if !errors.As(err, &injErr) || injErr.Kind != Partition {
		t.Fatalf("want partition error after exhausted retries, got %v", err)
	}
}

func TestDelayWithinBounds(t *testing.T) {
	a := newAgent(t, "s1")
	inj := mustInjector(t, Spec{DelayProb: 1, DelayMin: 5 * time.Millisecond, DelayMax: 10 * time.Millisecond})
	ctl := newController(t, inj, map[string]string{"s1": a.Addr()})
	start := time.Now()
	if err := ctl.Ping(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delayed RPC returned in %v, want >= 5ms", d)
	}
}
