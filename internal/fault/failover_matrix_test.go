package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"prete/internal/core"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/te"
	"prete/internal/wan"
)

// tePeriod is the recovery bound every failover row is held to: an
// aggressive lower bound for a production TE period (§5 runs minutes).
const tePeriod = 10 * time.Second

// failoverCase is one row of the failover matrix: an injected failure
// combination plus its expected degradation-ladder outcome.
type failoverCase struct {
	name          string
	standbys      int
	crashStandbys []int        // standbys dead before the leader dies
	epochs        int          // healthy epochs before the failure
	crashBudget   int64        // >= 0: kill the leader mid-epoch after this many RPCs; -1: clean death between epochs
	hbPartition   map[int]Spec // per-standby heartbeat chaos (partitioned failure detector)
	agentSpec     Spec         // chaos on the promoted controller's agent transport
	corrupt       func(dir string) error
	holdFlock     int                      // ticks to run while the leader still holds the flock (claims must bounce)
	maxTicks      int                      // detection ticks allowed after the flock is free
	classes       *te.ClassSpec            // SLO tiers; nil runs classless
	storm         []core.DegradationSignal // extra degraded fibers per reaction (degradation storm)

	wantPromoted int // 0 = the ladder must hold at "no promotion, plan stays installed"
	wantWarm     bool
	wantEpoch    uint64
	wantMirror   bool
	wantReassert bool
	wantBlocked  int
}

// failoverRun is the full observable outcome of one failover trace; two
// runs of the same row must be reflect.DeepEqual — the bit-identical
// replay evidence.
type failoverRun struct {
	Events      []string
	Faults      []string
	Rates       []map[string]float64
	Promoted    int
	Warm        bool
	Epoch       uint64
	MirrorMatch bool
	Reasserted  bool
	Degraded    bool
	Blocked     int
	HaltAttempt int64
	Fenced      int
	DetectTicks int
	Admission   *wan.AdmissionDecision
}

// runFailoverScenario drives one row: healthy epochs with standbys tailing,
// the injected leader failure, detection ticks, promotion (or the expected
// absence of one), the post-failover epoch, and the zombie fence probe.
func runFailoverScenario(t *testing.T, fc failoverCase) failoverRun {
	t.Helper()
	reg := obs.NewRegistry()
	log := wan.NewEventLog()
	dir := t.TempDir()
	retry := wan.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Jitter: 0.5}

	ct := NewCtlCrash(wan.TCPTransport{}, 0, reg)
	ct.Disarm()
	tb, err := wan.NewTestbedTransport(fastSwitch(), func(f optical.Features) float64 { return 0.8 }, ct)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tb.SolveUnits = 200000
	tb.Ctl.Metrics = reg
	tb.Ctl.Log = log
	tb.Ctl.Retry = retry
	tb.Classes = fc.classes
	tb.StormSignals = fc.storm
	if _, err := tb.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	lease, err := wan.NewLeaseServer(tb.Ctl.Generation)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lease.Close() })

	var agentTr wan.Transport = wan.TCPTransport{}
	var agentInj *Injector
	if fc.agentSpec.Active() {
		agentInj, err = NewInjector(fc.agentSpec, reg)
		if err != nil {
			t.Fatal(err)
		}
		agentTr = NewTransport(wan.TCPTransport{}, agentInj)
	}
	hbInjs := make(map[int]*Injector)
	hbFn := func(id int) wan.Transport {
		spec, ok := fc.hbPartition[id]
		if !ok {
			return wan.TCPTransport{}
		}
		inj, err := NewInjector(spec, reg)
		if err != nil {
			t.Fatal(err)
		}
		hbInjs[id] = inj
		return NewTransport(wan.TCPTransport{}, inj)
	}
	agents := make(map[string]string, len(tb.Agents))
	for _, a := range tb.Agents {
		agents[a.Name] = a.Addr()
	}
	rs, err := wan.NewReplicaSet(dir, lease.Addr(), agents, wan.ReplicaOptions{
		Standbys:         fc.standbys,
		MissThreshold:    2,
		HeartbeatTimeout: 100 * time.Millisecond,
		Transport:        agentTr,
		Heartbeat:        hbFn,
		Retry:            retry,
		Metrics:          reg,
		Log:              log,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	for _, id := range fc.crashStandbys {
		if err := rs.CrashStandby(id); err != nil {
			t.Fatal(err)
		}
	}

	var run failoverRun
	tick := func() *wan.Promotion {
		p, err := rs.Tick()
		if err != nil {
			if !errors.Is(err, wan.ErrPromotionBlocked) {
				t.Fatalf("tick: %v", err)
			}
			run.Blocked++
		}
		return p
	}

	// Healthy phase: the leader journals epochs, standbys tail them warm.
	for e := 0; e < fc.epochs; e++ {
		if _, err := tb.RunScenario(7); err != nil {
			t.Fatalf("healthy epoch %d: %v", e+1, err)
		}
		if p := tick(); p != nil {
			t.Fatalf("promotion while the leader is alive: %+v", p)
		}
	}
	installedRates := make([]map[string]float64, len(tb.Agents))
	for i, a := range tb.Agents {
		installedRates[i] = a.Rates()
	}

	// The injected failure.
	if fc.crashBudget >= 0 {
		ct.Arm(fc.crashBudget)
		if _, err := tb.RunScenario(7); !errors.Is(err, wan.ErrControllerHalted) {
			t.Fatalf("mid-epoch crash budget %d: err = %v, want ErrControllerHalted", fc.crashBudget, err)
		}
		run.HaltAttempt = ct.Attempts()
	}
	for i := 0; i < fc.holdFlock; i++ {
		if p := tick(); p != nil {
			t.Fatalf("claim won against a leader that still holds the flock: %+v", p)
		}
	}
	lease.Close()
	if err := tb.Ctl.ReleaseState(); err != nil {
		t.Fatal(err)
	}
	if fc.corrupt != nil {
		if err := fc.corrupt(dir); err != nil {
			t.Fatal(err)
		}
	}

	// Detection and hand-off.
	var prom *wan.Promotion
	start := time.Now()
	for i := 0; i < fc.maxTicks && prom == nil; i++ {
		run.DetectTicks++
		prom = tick()
	}
	if fc.wantPromoted == 0 {
		if prom != nil || rs.Promoted() {
			t.Fatalf("unexpected promotion: %+v", prom)
		}
		// Degradation ladder floor: with no candidate left, the agents keep
		// the last installed plan and traffic keeps routing.
		for i, a := range tb.Agents {
			if got := a.Rates(); !reflect.DeepEqual(got, installedRates[i]) {
				t.Errorf("agent %d lost its installed plan with no promotion: %v", i, got)
			}
		}
	} else {
		if prom == nil {
			t.Fatalf("no promotion within %d ticks", fc.maxTicks)
		}
		if detect := time.Since(start); detect >= tePeriod {
			t.Errorf("detection + hand-off took %v, recovery bound is one TE period (%v)", detect, tePeriod)
		}
		if prom.Elapsed >= tePeriod {
			t.Errorf("promotion alone took %v, bound is %v", prom.Elapsed, tePeriod)
		}
		run.Promoted = prom.StandbyID
		run.Warm = prom.Recovery.Warm
		run.Epoch = prom.Recovery.Epoch
		run.MirrorMatch = prom.MirrorMatch
		run.Reasserted = prom.Reasserted
		run.Degraded = prom.Degraded
		zombie := tb.AdoptPromoted(prom.Ctl)
		t.Cleanup(func() { zombie.Close() })
		if prom.Reasserted {
			want := prom.Ctl.LastGoodRates()
			for _, a := range tb.Agents {
				if got := a.Rates(); !reflect.DeepEqual(got, want) {
					t.Errorf("agent %s not converged to the re-asserted plan: %v want %v", a.Name, got, want)
				}
			}
		}
		// The adopted lineage completes its next epoch (warm or cold).
		if _, err := tb.RunScenario(7); err != nil {
			t.Fatalf("post-failover epoch: %v", err)
		}
		// Fence probe: the zombie predecessor's surviving sockets come back
		// to life (Disarm models its network returning) and every write must
		// bounce off the generation fence without mutating agent state.
		ct.Disarm()
		preProbe := make([]map[string]float64, len(tb.Agents))
		for i, a := range tb.Agents {
			preProbe[i] = a.Rates()
		}
		if _, err := zombie.UpdateRates(map[string]float64{"t0": 12345}); err == nil {
			t.Error("zombie leader's post-promotion write was accepted")
		}
		for i, a := range tb.Agents {
			run.Fenced += a.FenceRejections()
			if got := a.Rates(); !reflect.DeepEqual(got, preProbe[i]) {
				t.Errorf("agent %s state mutated by a fenced zombie write", a.Name)
			}
		}
		if run.Fenced == 0 {
			t.Error("no agent recorded a fence rejection for the zombie probe")
		}
	}

	// Row expectations.
	if run.Promoted != fc.wantPromoted {
		t.Errorf("promoted standby = %d, want %d", run.Promoted, fc.wantPromoted)
	}
	if fc.wantPromoted != 0 {
		if run.Warm != fc.wantWarm || run.Epoch != fc.wantEpoch {
			t.Errorf("recovery warm=%v epoch=%d, want warm=%v epoch=%d",
				run.Warm, run.Epoch, fc.wantWarm, fc.wantEpoch)
		}
		if run.MirrorMatch != fc.wantMirror {
			t.Errorf("mirror match = %v, want %v", run.MirrorMatch, fc.wantMirror)
		}
		if run.Reasserted != fc.wantReassert {
			t.Errorf("reasserted = %v, want %v", run.Reasserted, fc.wantReassert)
		}
	}
	if run.Blocked != fc.wantBlocked {
		t.Errorf("blocked claims = %d, want %d", run.Blocked, fc.wantBlocked)
	}

	run.Events = log.Events()
	if agentInj != nil {
		for _, h := range agentInj.History() {
			run.Faults = append(run.Faults, "agent:"+h)
		}
	}
	for id := 1; id <= fc.standbys; id++ {
		if inj := hbInjs[id]; inj != nil {
			for _, h := range inj.History() {
				run.Faults = append(run.Faults, fmt.Sprintf("hb%d:%s", id, h))
			}
		}
	}
	for _, a := range tb.Agents {
		run.Rates = append(run.Rates, a.Rates())
	}
	run.Admission = tb.LastAdmission()
	return run
}

// failoverMatrix is the F1–F8 failure-injection matrix: controller crash ×
// standby crash × partition × journal corruption × double-leader, each row
// with its expected rung on the degradation ladder.
var failoverMatrix = []failoverCase{
	{
		// F1: clean leader death between epochs; the lowest standby promotes
		// warm with an exact mirror and re-installs the plan.
		name: "F1_clean_leader_crash", standbys: 2, epochs: 1, crashBudget: -1, maxTicks: 5,
		wantPromoted: 1, wantWarm: true, wantEpoch: 1, wantMirror: true, wantReassert: true,
	},
	{
		// F2: kill -9 partway through epoch 2's RPC fan-out; the un-journaled
		// epoch is lost and the fleet converges back to epoch 1's plan.
		name: "F2_crash_mid_epoch", standbys: 2, epochs: 1, crashBudget: 2, maxTicks: 5,
		wantPromoted: 1, wantWarm: true, wantEpoch: 1, wantMirror: true, wantReassert: true,
	},
	{
		// F3: standby 1 is already dead when the leader dies; the next live
		// replica in ID order takes over.
		name: "F3_first_standby_dead", standbys: 2, crashStandbys: []int{1},
		epochs: 1, crashBudget: -1, maxTicks: 5,
		wantPromoted: 2, wantWarm: true, wantEpoch: 1, wantMirror: true, wantReassert: true,
	},
	{
		// F4: every standby is dead — the ladder's floor: no promotion, and
		// the agents keep routing on the last installed plan.
		name: "F4_all_standbys_dead", standbys: 2, crashStandbys: []int{1, 2},
		epochs: 1, crashBudget: -1, maxTicks: 4,
		wantPromoted: 0,
	},
	{
		// F5: standby 1's failure detector is partitioned from the lease while
		// the leader is alive — it elects falsely, and the flock blocks the
		// double-leader claim (twice). Once the leader's storage lease is
		// actually revoked, the same standby's retried claim wins.
		name: "F5_partition_double_leader", standbys: 2, epochs: 1, crashBudget: -1,
		hbPartition: map[int]Spec{1: {Seed: 99, Partition: 1, PartitionRPCs: 1 << 20}},
		holdFlock:   2, maxTicks: 5,
		wantPromoted: 1, wantWarm: true, wantEpoch: 1, wantMirror: true, wantReassert: true,
		wantBlocked: 2,
	},
	{
		// F6: the leader's death tore the final journal append; the standby's
		// mirror is ahead of durable truth, so promotion flags the mismatch
		// and converges the fleet onto the last DURABLE epoch.
		name: "F6_torn_journal_tail", standbys: 2, epochs: 2, crashBudget: -1,
		corrupt: func(dir string) error { return TornJournalTail(dir, 5) }, maxTicks: 5,
		wantPromoted: 1, wantWarm: true, wantEpoch: 1, wantMirror: false, wantReassert: true,
	},
	{
		// F7: total storage corruption (every state file's magic wiped). The
		// promoted standby comes up cold — but still fenced, because the
		// generation counter survives in file names — and rebuilds by epoch.
		name: "F7_wiped_state_files", standbys: 2, epochs: 1, crashBudget: -1,
		corrupt: WipeStateMagic, maxTicks: 5,
		wantPromoted: 1, wantWarm: false, wantEpoch: 0, wantMirror: false, wantReassert: false,
	},
	{
		// F8: drop + delay chaos on the promoted controller's agent links
		// during the re-assert; per-RPC retries ride it out and the hand-off
		// still completes deterministically.
		name: "F8_chaos_during_reassert", standbys: 2, epochs: 1, crashBudget: -1,
		agentSpec: Spec{Seed: 4321, Drop: 0.10, DelayProb: 0.3,
			DelayMin: 200 * time.Microsecond, DelayMax: time.Millisecond},
		maxTicks:     5,
		wantPromoted: 1, wantWarm: true, wantEpoch: 1, wantMirror: true, wantReassert: true,
	},
	{
		// F9: storm + failover. The leader dies mid-epoch while a
		// degradation storm has a second fiber calibrated high and the
		// class-aware ladder is admitting per tier; the promoted standby
		// replays the same storm reaction, and the per-class admission
		// decisions (captured in Admission and the event lines) must be
		// bit-identical on replay.
		name: "F9_storm_failover", standbys: 2, epochs: 1, crashBudget: 2, maxTicks: 5,
		classes:      te.DefaultClassSpec(),
		storm:        []core.DegradationSignal{{Fiber: 1, PNN: 0.7}},
		wantPromoted: 1, wantWarm: true, wantEpoch: 1, wantMirror: true, wantReassert: true,
	},
}

// TestFailoverMatrix runs every F1–F8 row twice and requires the two
// traces to be bit-identical: same event order, same fault history, same
// halt point, same final plans — the replay evidence that a failover found
// in CI reproduces locally from its seeds.
func TestFailoverMatrix(t *testing.T) {
	for _, fc := range failoverMatrix {
		t.Run(fc.name, func(t *testing.T) {
			a := runFailoverScenario(t, fc)
			b := runFailoverScenario(t, fc)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("row does not replay bit-identically:\n run A: %+v\n run B: %+v", a, b)
			}
		})
	}
}
