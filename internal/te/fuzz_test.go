package te

import (
	"strings"
	"testing"
)

// FuzzParseClassSpec drives the -classes parser with arbitrary strings. The
// parser must never panic; every accepted spec must validate, stay within
// the tier bound, and round-trip through String() to an equivalent spec
// (same rendering, same validation verdict).
func FuzzParseClassSpec(f *testing.F) {
	f.Add("")
	f.Add("default")
	f.Add("lc:0.2:100:protect,std:0.5:10:defer,bulk:0.3:1:shed")
	f.Add("gold:0.25:8:protect, silver:0.75:2")
	f.Add("lc:NaN:1:shed,std:1:1:shed")
	f.Add("lc:0.5:Inf:shed,std:0.5:1:shed")
	f.Add("lc:0.5:1:shed,lc:0.5:1:shed")
	f.Add("a:0:1,b:1:1")
	f.Add("a:-1:1:shed,b:2:1:shed")
	f.Add("x:1e-300:1:protect,y:1:1:shed")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseClassSpec(s)
		if err != nil {
			if spec != nil {
				t.Fatalf("error %v with non-nil spec", err)
			}
			return
		}
		if spec == nil {
			if strings.TrimSpace(s) != "" {
				t.Fatalf("nil spec without error for %q", s)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v (input %q)", err, s)
		}
		if len(spec.Tiers) > MaxTiers {
			t.Fatalf("accepted %d tiers (max %d)", len(spec.Tiers), MaxTiers)
		}
		rendered := spec.String()
		again, err := ParseClassSpec(rendered)
		if err != nil {
			t.Fatalf("String() %q does not re-parse: %v", rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("round-trip drift: %q -> %q", rendered, again.String())
		}
		// SplitDemands on an accepted spec must conserve demand.
		split := spec.SplitDemands(Demands{10, 0, 3.5})
		for f := 0; f < 3; f++ {
			var sum float64
			for k := range split {
				if split[k][f] < 0 {
					t.Fatalf("negative split tier=%d flow=%d: %v", k, f, split[k][f])
				}
				sum += split[k][f]
			}
			if d := []float64{10, 0, 3.5}[f]; sum < d-1e-6 || sum > d+1e-6 {
				t.Fatalf("flow %d split sums to %v, want %v", f, sum, d)
			}
		}
	})
}
