package te

import (
	"math"
	"strings"
	"testing"
)

func TestParseClassSpecDefault(t *testing.T) {
	spec, err := ParseClassSpec("default")
	if err != nil {
		t.Fatalf("ParseClassSpec(default): %v", err)
	}
	want := DefaultClassSpec()
	if len(spec.Tiers) != len(want.Tiers) {
		t.Fatalf("got %d tiers, want %d", len(spec.Tiers), len(want.Tiers))
	}
	for i, tier := range spec.Tiers {
		if tier != want.Tiers[i] {
			t.Errorf("tier %d = %+v, want %+v", i, tier, want.Tiers[i])
		}
	}
	if !spec.Enabled() {
		t.Error("default spec should be enabled")
	}
}

func TestParseClassSpecEmpty(t *testing.T) {
	spec, err := ParseClassSpec("  ")
	if err != nil || spec != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", spec, err)
	}
	if spec.Enabled() {
		t.Error("nil spec should not be enabled")
	}
}

func TestParseClassSpecExplicit(t *testing.T) {
	spec, err := ParseClassSpec("gold:0.25:8:protect, silver:0.75:2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := len(spec.Tiers); got != 2 {
		t.Fatalf("got %d tiers, want 2", got)
	}
	if spec.Tiers[0] != (Tier{Name: "gold", Share: 0.25, Weight: 8, Policy: PolicyProtect}) {
		t.Errorf("tier 0 = %+v", spec.Tiers[0])
	}
	// Omitted policy defaults to defer.
	if spec.Tiers[1].Policy != PolicyDefer {
		t.Errorf("tier 1 policy = %q, want defer", spec.Tiers[1].Policy)
	}
}

func TestParseClassSpecErrors(t *testing.T) {
	cases := []struct {
		name, in, frag string
	}{
		{"malformed", "lc:0.2", "name:share:weight"},
		{"too many fields", "lc:0.2:1:shed:extra", "name:share:weight"},
		{"bad share", "lc:zero:1:shed", "share"},
		{"zero share", "lc:0:1:shed,std:1:1:shed", "share"},
		{"negative share", "lc:-0.5:1:shed,std:1.5:1:shed", "share"},
		{"nan share", "lc:NaN:1:shed,std:1:1:shed", "share"},
		{"inf weight", "lc:0.5:Inf:shed,std:0.5:1:shed", "weight"},
		{"zero weight", "lc:0.5:0:shed,std:0.5:1:shed", "weight"},
		{"duplicate tier", "lc:0.5:1:shed,lc:0.5:1:shed", "duplicate"},
		{"bad policy", "lc:0.5:1:drop,std:0.5:1:shed", "policy"},
		{"shares sum low", "lc:0.2:1:shed,std:0.2:1:shed", "sum"},
		{"shares sum high", "lc:0.9:1:shed,std:0.9:1:shed", "sum"},
		{"empty name", ":0.5:1:shed,std:0.5:1:shed", "name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseClassSpec(tc.in)
			if err == nil {
				t.Fatalf("ParseClassSpec(%q) = %+v, want error", tc.in, spec)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestClassSpecTooManyTiers(t *testing.T) {
	var spec ClassSpec
	for i := 0; i < MaxTiers+1; i++ {
		spec.Tiers = append(spec.Tiers, Tier{
			Name: string(rune('a' + i)), Share: 1 / float64(MaxTiers+1), Weight: 1, Policy: PolicyShed,
		})
	}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "maximum") {
		t.Fatalf("Validate() = %v, want max-tiers error", err)
	}
}

func TestClassSpecStringRoundTrip(t *testing.T) {
	for _, spec := range []*ClassSpec{DefaultClassSpec(), UniformClassSpec()} {
		again, err := ParseClassSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if again.String() != spec.String() {
			t.Errorf("round-trip: %q != %q", again.String(), spec.String())
		}
	}
	if s := (*ClassSpec)(nil).String(); s != "" {
		t.Errorf("nil String() = %q, want empty", s)
	}
}

func TestUniformClassSpecDisabled(t *testing.T) {
	spec := UniformClassSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("uniform spec invalid: %v", err)
	}
	if spec.Enabled() {
		t.Error("single-tier spec must report classes disabled")
	}
}

func TestSplitDemands(t *testing.T) {
	spec := DefaultClassSpec()
	d := Demands{50, 0, 123.456}
	split := spec.SplitDemands(d)
	if len(split) != 3 {
		t.Fatalf("got %d tiers, want 3", len(split))
	}
	for f, v := range d {
		var sum float64
		for k := range split {
			if split[k][f] < 0 {
				t.Errorf("tier %d flow %d negative: %v", k, f, split[k][f])
			}
			sum += split[k][f]
		}
		if math.Abs(sum-v) > 1e-9 {
			t.Errorf("flow %d pieces sum to %v, want %v", f, sum, v)
		}
	}
	// The high-priority tier owns its exact share.
	if got, want := split[0][0], 50*0.2; got != want {
		t.Errorf("lc share of flow 0 = %v, want %v", got, want)
	}
	// The last tier takes the remainder, so re-summing is drift-free.
	if got := split[0][2] + split[1][2] + split[2][2]; got != d[2] {
		t.Errorf("flow 2 re-sum = %v, want exactly %v", got, d[2])
	}
}
