package te

import (
	"fmt"
	"sort"

	"prete/internal/lp"
	"prete/internal/routing"
	"prete/internal/topology"
)

// coverageRow demands that flow Flow's surviving tunnels Tunnels carry
// (1 - Phi) of its demand — one instance of constraint (4).
type coverageRow struct {
	Flow    routing.FlowID
	Tunnels []routing.TunnelID
}

// solveMinMaxLoss solves the shared core of every optimizing scheme here:
//
//	min Phi
//	s.t. per link: total allocation crossing it <= capacity   (constraint 3)
//	     per row:  sum of surviving allocations >= (1-Phi) d  (constraint 4)
//	     0 <= Phi, 0 <= a
//
// It returns the allocation and the optimal Phi. capOverride (optional)
// replaces the capacity of specific links — partially restored links in
// ARROW's model.
func solveMinMaxLoss(net *topology.Network, ts *routing.TunnelSet, demands Demands, rows []coverageRow, capOverride map[topology.LinkID]float64) (Allocation, float64, error) {
	// The objective is lexicographic in spirit: first minimize the max loss
	// Phi, then — because a bare min-Phi LP is content to leave every flow
	// at exactly (1-Phi) of its demand — maximize the total satisfied
	// fraction sum_f s_f, s_f = min(1, sum_t a_{f,t}/d_f). A single LP with
	// Phi weighted above the largest possible satisfaction gain gives the
	// same Phi and a non-degenerate allocation.
	prob := lp.NewProblem()
	phiWeight := float64(len(ts.Flows)+1) * 10
	phi := prob.AddVar(phiWeight, "phi")
	tunnelVar := make(map[routing.TunnelID]int, len(ts.Tunnels))
	for _, t := range ts.Tunnels {
		tunnelVar[t.ID] = prob.AddVar(0, fmt.Sprintf("a_f%d_t%d", t.Flow, t.ID))
	}
	// capacity rows over all tunnels, in deterministic link order so
	// degenerate optima resolve to the same vertex run-to-run
	linkTerms := make(map[topology.LinkID][]lp.Term)
	for _, t := range ts.Tunnels {
		v := tunnelVar[t.ID]
		for _, lid := range t.Links {
			linkTerms[lid] = append(linkTerms[lid], lp.Term{Var: v, Coeff: 1})
		}
	}
	linkIDs := make([]int, 0, len(linkTerms))
	for lid := range linkTerms {
		linkIDs = append(linkIDs, int(lid))
	}
	sort.Ints(linkIDs)
	for _, lid := range linkIDs {
		l := topology.LinkID(lid)
		capacity := net.Link(l).Capacity
		if c, ok := capOverride[l]; ok {
			capacity = c
		}
		if _, err := prob.AddConstraint(linkTerms[l], lp.LE, capacity, fmt.Sprintf("cap_e%d", lid)); err != nil {
			return nil, 0, err
		}
	}
	// coverage rows: sum a + d*Phi >= d
	for i, row := range rows {
		d := demands[row.Flow]
		if d <= 0 {
			continue
		}
		terms := []lp.Term{{Var: phi, Coeff: d}}
		for _, tid := range row.Tunnels {
			terms = append(terms, lp.Term{Var: tunnelVar[tid], Coeff: 1})
		}
		if _, err := prob.AddConstraint(terms, lp.GE, d, fmt.Sprintf("cov_%d_f%d", i, row.Flow)); err != nil {
			return nil, 0, err
		}
	}
	// Phi <= 1: loss is normalized (constraint 8)
	if _, err := prob.AddUpperBound(phi, 1, "phi<=1"); err != nil {
		return nil, 0, err
	}
	// Satisfaction variables: s_f <= 1, s_f <= sum_t a_{f,t} / d_f over the
	// flow's full tunnel set; objective rewards sum s_f.
	for _, fl := range ts.Flows {
		d := demands[fl.ID]
		if d <= 0 {
			continue
		}
		s := prob.AddVar(-1, fmt.Sprintf("s_f%d", fl.ID))
		if _, err := prob.AddUpperBound(s, 1, "s<=1"); err != nil {
			return nil, 0, err
		}
		terms := []lp.Term{{Var: s, Coeff: d}}
		for _, tid := range ts.TunnelsOf(fl.ID) {
			terms = append(terms, lp.Term{Var: tunnelVar[tid], Coeff: -1})
		}
		if _, err := prob.AddConstraint(terms, lp.LE, 0, "sat"); err != nil {
			return nil, 0, err
		}
	}
	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("te: min-max-loss LP %v", sol.Status)
	}
	alloc := make(Allocation, len(tunnelVar))
	for tid, v := range tunnelVar {
		if x := sol.X[v]; x > 1e-9 {
			alloc[tid] = x
		}
	}
	return alloc, sol.X[phi], nil
}

// MinMaxLossPlan computes the failure-oblivious optimal plan: every flow
// covered by all of its tunnels that survive the (possibly empty) cut set.
// It is the recomputation step of reactive schemes and the planning step of
// restoration-based ones.
func MinMaxLossPlan(in *Input, cut map[topology.FiberID]bool) (*Plan, error) {
	return MinMaxLossPlanWithCaps(in, cut, nil)
}

// MinMaxLossPlanWithCaps is MinMaxLossPlan with per-link capacity
// overrides: ARROW's restoration model re-plans on a network where links
// that rode cut fibers come back at a fraction of their capacity.
func MinMaxLossPlanWithCaps(in *Input, cut map[topology.FiberID]bool, capOverride map[topology.LinkID]float64) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	rows := make([]coverageRow, 0, len(in.Tunnels.Flows))
	for _, fl := range in.Tunnels.Flows {
		var avail []routing.TunnelID
		for _, tid := range in.Tunnels.TunnelsOf(fl.ID) {
			if in.Tunnels.Tunnel(tid).AvailableUnder(cut) {
				avail = append(avail, tid)
			}
		}
		if len(avail) == 0 {
			continue // flow entirely disconnected; it contributes full loss
		}
		rows = append(rows, coverageRow{Flow: fl.ID, Tunnels: avail})
	}
	alloc, phi, err := solveMinMaxLoss(in.Net, in.Tunnels, in.Demands, rows, capOverride)
	if err != nil {
		return nil, err
	}
	return &Plan{Alloc: alloc, MaxLoss: phi, Tunnels: in.Tunnels}, nil
}
