package te

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// TierPolicy says what the admission ladder does with a tier's residual
// (the provably-uncarriable fraction of its demand) during a degradation
// episode.
type TierPolicy string

// The three ladder actions, ordered from most to least protective.
const (
	// PolicyProtect admits the tier's full offered demand; its residual is
	// carried degraded rather than shed (latency-critical traffic).
	PolicyProtect TierPolicy = "protect"
	// PolicyDefer holds the residual back as backlog and re-offers it next
	// epoch (standard traffic).
	PolicyDefer TierPolicy = "defer"
	// PolicyShed drops the residual outright (sheddable traffic).
	PolicyShed TierPolicy = "shed"
)

func validPolicy(p TierPolicy) bool {
	return p == PolicyProtect || p == PolicyDefer || p == PolicyShed
}

// Tier is one SLO class. Every flow carries every tier: a tier owns a fixed
// Share of each flow's demand (production flows aggregate millions of users,
// so each flow mixes all classes).
type Tier struct {
	// Name identifies the tier in events, metrics, and reports.
	Name string
	// Share is the fraction of every flow's demand in this tier, in (0, 1].
	Share float64
	// Weight is the tier's objective weight; higher means more valuable.
	Weight float64
	// Policy is the ladder action for the tier's uncarriable residual.
	Policy TierPolicy
}

// ClassSpec is an ordered list of SLO tiers, highest priority first. The
// classed solve allocates capacity strictly in tier order, and the admission
// ladder walks the same order when shedding.
type ClassSpec struct {
	Tiers []Tier
}

// MaxTiers bounds the number of tiers a spec may declare.
const MaxTiers = 16

// DefaultClassSpec returns the three-tier production split used by the
// sloclass experiment and `-classes default`: 20% latency-critical
// (protected), 50% standard (deferrable), 30% sheddable.
func DefaultClassSpec() *ClassSpec {
	return &ClassSpec{Tiers: []Tier{
		{Name: "lc", Share: 0.2, Weight: 100, Policy: PolicyProtect},
		{Name: "std", Share: 0.5, Weight: 10, Policy: PolicyDefer},
		{Name: "bulk", Share: 0.3, Weight: 1, Policy: PolicyShed},
	}}
}

// UniformClassSpec returns the degenerate single-tier spec: all traffic in
// one class. It is valid but reports Enabled() == false, so every consumer
// takes the exact uniform code path — byte-identical to running with no
// spec at all.
func UniformClassSpec() *ClassSpec {
	return &ClassSpec{Tiers: []Tier{
		{Name: "all", Share: 1, Weight: 1, Policy: PolicyShed},
	}}
}

// ParseClassSpec parses the -classes flag syntax: a comma-separated list of
// name:share:weight[:policy] tiers, highest priority first.
//
//	lc:0.2:100:protect,std:0.5:10:defer,bulk:0.3:1:shed
//
// Shares must be finite, positive, and sum to 1 (within 1e-6); weights must
// be finite and positive; names must be unique. The policy defaults to
// "defer" when omitted. The shorthand "default" parses to
// DefaultClassSpec(); the empty string parses to a nil spec (classes
// disabled).
func ParseClassSpec(s string) (*ClassSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "default" {
		return DefaultClassSpec(), nil
	}
	var spec ClassSpec
	for _, clause := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("te: tier %q is not name:share:weight[:policy]", clause)
		}
		t := Tier{Name: parts[0], Policy: PolicyDefer}
		var err error
		if t.Share, err = parseTierNum("share", parts[1]); err != nil {
			return nil, err
		}
		if t.Weight, err = parseTierNum("weight", parts[2]); err != nil {
			return nil, err
		}
		if len(parts) == 4 {
			t.Policy = TierPolicy(parts[3])
		}
		spec.Tiers = append(spec.Tiers, t)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

func parseTierNum(field, val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return 0, fmt.Errorf("te: tier %s %q is not a positive finite number", field, val)
	}
	return v, nil
}

// Validate checks the spec's structural consistency: 1..MaxTiers uniquely
// named tiers, positive finite shares summing to 1 (within 1e-6), positive
// finite weights, and known policies.
func (cs *ClassSpec) Validate() error {
	if cs == nil || len(cs.Tiers) == 0 {
		return fmt.Errorf("te: class spec has no tiers")
	}
	if len(cs.Tiers) > MaxTiers {
		return fmt.Errorf("te: %d tiers exceeds the maximum of %d", len(cs.Tiers), MaxTiers)
	}
	seen := make(map[string]bool, len(cs.Tiers))
	var sum float64
	for _, t := range cs.Tiers {
		if t.Name == "" || strings.ContainsAny(t.Name, ":, \t\n") {
			return fmt.Errorf("te: tier name %q is empty or contains separators", t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("te: duplicate tier %q", t.Name)
		}
		seen[t.Name] = true
		if math.IsNaN(t.Share) || t.Share <= 0 || t.Share > 1 {
			return fmt.Errorf("te: tier %s share %v out of (0, 1]", t.Name, t.Share)
		}
		if math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) || t.Weight <= 0 {
			return fmt.Errorf("te: tier %s weight %v is not positive and finite", t.Name, t.Weight)
		}
		if !validPolicy(t.Policy) {
			return fmt.Errorf("te: tier %s policy %q (want protect, defer, or shed)", t.Name, t.Policy)
		}
		sum += t.Share
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("te: tier shares sum to %v, want 1", sum)
	}
	return nil
}

// Enabled reports whether the spec actually splits traffic: nil specs and
// single-tier specs are "classes disabled", and every consumer must take
// the exact uniform code path for them.
func (cs *ClassSpec) Enabled() bool {
	return cs != nil && len(cs.Tiers) > 1
}

// String renders the spec back into ParseClassSpec syntax (empty for nil);
// ParseClassSpec(spec.String()) round-trips for valid specs.
func (cs *ClassSpec) String() string {
	if cs == nil {
		return ""
	}
	parts := make([]string, len(cs.Tiers))
	for i, t := range cs.Tiers {
		parts[i] = fmt.Sprintf("%s:%g:%g:%s", t.Name, t.Share, t.Weight, t.Policy)
	}
	return strings.Join(parts, ",")
}

// SplitDemands partitions a demand matrix across the tiers: tier k of flow
// f offers Share_k * d[f], except the last tier, which takes the exact
// remainder so the per-flow pieces re-sum to the original demand without
// accumulating rounding drift.
func (cs *ClassSpec) SplitDemands(d Demands) []Demands {
	out := make([]Demands, len(cs.Tiers))
	for k := range cs.Tiers {
		out[k] = make(Demands, len(d))
	}
	last := len(cs.Tiers) - 1
	for f, v := range d {
		var used float64
		for k := 0; k < last; k++ {
			piece := v * cs.Tiers[k].Share
			out[k][f] = piece
			used += piece
		}
		rem := v - used
		if rem < 0 {
			rem = 0
		}
		out[last][f] = rem
	}
	return out
}
