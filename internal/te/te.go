// Package te defines the traffic-engineering abstractions shared by every
// scheme in the evaluation (§6.1's benchmark list) and implements the
// baselines: ECMP, FFC-1/FFC-2, ARROW, Flexile, and the oracle. PreTE
// itself — and TeaVaR, which is exactly PreTE with alpha = 0 and no tunnel
// updates (§4.1.2) — live in internal/core on top of the Benders machinery.
package te

import (
	"fmt"

	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/topology"
)

// Demands holds per-flow bandwidth demand in Gbps, indexed by FlowID.
type Demands []float64

// Scale returns the demands multiplied by a factor (the x-axis of Fig 13).
func (d Demands) Scale(f float64) Demands {
	out := make(Demands, len(d))
	for i, v := range d {
		out[i] = v * f
	}
	return out
}

// Allocation is the TE output a_{f,t}: Gbps allocated to each tunnel.
type Allocation map[routing.TunnelID]float64

// Clone deep-copies the allocation.
func (a Allocation) Clone() Allocation {
	out := make(Allocation, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Plan is one epoch's TE decision.
type Plan struct {
	Alloc Allocation
	// MaxLoss is the optimized loss bound Phi for schemes that compute it.
	MaxLoss float64
	// Tunnels is the tunnel table the plan was computed against (it may
	// include reactively established tunnels).
	Tunnels *routing.TunnelSet
}

// Input carries everything a scheme needs to plan one epoch.
type Input struct {
	Net     *topology.Network
	Tunnels *routing.TunnelSet
	Demands Demands
	// Scenarios are the failure scenarios the scheme should plan against,
	// with the probabilities it believes (static for TeaVaR-style schemes,
	// Eqn. 1-calibrated for PreTE).
	Scenarios *scenario.Set
	// Beta is the target availability level.
	Beta float64
}

// Validate checks the input's structural consistency.
func (in *Input) Validate() error {
	if in.Net == nil || in.Tunnels == nil {
		return fmt.Errorf("te: nil network or tunnel set")
	}
	if len(in.Demands) != len(in.Tunnels.Flows) {
		return fmt.Errorf("te: %d demands for %d flows", len(in.Demands), len(in.Tunnels.Flows))
	}
	for f, d := range in.Demands {
		if d < 0 {
			return fmt.Errorf("te: negative demand %v for flow %d", d, f)
		}
	}
	if in.Beta <= 0 || in.Beta >= 1 {
		return fmt.Errorf("te: beta %v out of (0,1)", in.Beta)
	}
	return nil
}

// Scheme is one TE algorithm.
type Scheme interface {
	Name() string
	// Plan computes the epoch's allocation.
	Plan(in *Input) (*Plan, error)
}

// Delivered returns the bandwidth flow f receives under failure scenario
// cut, given a plan: the sum of allocations on its surviving tunnels,
// capped at the demand. Constraint (4)'s left-hand side.
func Delivered(p *Plan, f routing.FlowID, demand float64, cut map[topology.FiberID]bool) float64 {
	var sum float64
	for _, tid := range p.Tunnels.TunnelsOf(f) {
		t := p.Tunnels.Tunnel(tid)
		if t.AvailableUnder(cut) {
			sum += p.Alloc[tid]
		}
	}
	if sum > demand {
		return demand
	}
	return sum
}

// Satisfied reports whether flow f's demand is (within tolerance) fully met
// under the scenario.
func Satisfied(p *Plan, f routing.FlowID, demand float64, cut map[topology.FiberID]bool) bool {
	const tol = 1e-6
	return Delivered(p, f, demand, cut) >= demand*(1-tol)-tol
}

// LinkLoads computes the per-link load of an allocation; used to verify
// constraint (3) and by the ECMP feasibility scaling.
func LinkLoads(p *Plan) map[topology.LinkID]float64 {
	loads := make(map[topology.LinkID]float64)
	for tid, amt := range p.Alloc {
		if amt <= 0 {
			continue
		}
		for _, lid := range p.Tunnels.Tunnel(tid).Links {
			loads[lid] += amt
		}
	}
	return loads
}

// CheckCapacity returns an error naming the first overloaded link, if any.
func CheckCapacity(net *topology.Network, p *Plan) error {
	const tol = 1e-6
	for lid, load := range LinkLoads(p) {
		if c := net.Link(lid).Capacity; load > c*(1+tol)+tol {
			return fmt.Errorf("te: link %d overloaded: %.3f > %.3f Gbps", lid, load, c)
		}
	}
	return nil
}

// UniformDemands builds a demand matrix where every flow asks for the given
// fraction of its shortest tunnel's bottleneck capacity — a simple
// gravity-free baseline used by tests; the simulation layer generates the
// 24 diurnal matrices.
func UniformDemands(ts *routing.TunnelSet, gbps float64) Demands {
	d := make(Demands, len(ts.Flows))
	for i := range d {
		d[i] = gbps
	}
	return d
}
