package te

import (
	"math"
	"testing"

	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/topology"
)

// triangle builds the §2.2 illustrative network: three nodes, three fibers
// of 10 units capacity each, flows s1->s2 and s1->s3.
func triangle(t *testing.T) (*topology.Network, *routing.TunnelSet) {
	t.Helper()
	nodes := []topology.Node{{ID: 0, Name: "s1"}, {ID: 1, Name: "s2"}, {ID: 2, Name: "s3"}}
	fibers := []topology.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 100}, // s1s2
		{ID: 1, A: 0, B: 2, LengthKm: 100}, // s1s3
		{ID: 2, A: 1, B: 2, LengthKm: 100}, // s2s3
	}
	var links []topology.Link
	add := func(src, dst topology.NodeID, f topology.FiberID) {
		links = append(links, topology.Link{
			ID: topology.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 10, Fibers: []topology.FiberID{f},
		})
	}
	add(0, 1, 0)
	add(1, 0, 0)
	add(0, 2, 1)
	add(2, 0, 1)
	add(1, 2, 2)
	add(2, 1, 2)
	net, err := topology.New("triangle", nodes, fibers, links)
	if err != nil {
		t.Fatal(err)
	}
	// Flows: s1->s2 (flow 0) and s1->s3 (flow 1), as in Fig 2.
	flows := []routing.Flow{{ID: 0, Src: 0, Dst: 1}, {ID: 1, Src: 0, Dst: 2}}
	ts, err := routing.BuildTunnels(net, flows, 2)
	if err != nil {
		t.Fatal(err)
	}
	return net, ts
}

func triangleInput(t *testing.T, demand float64) *Input {
	net, ts := triangle(t)
	set, err := scenario.Enumerate([]float64{0.005, 0.009, 0.001}, scenario.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &Input{
		Net: net, Tunnels: ts,
		Demands:   Demands{demand, demand},
		Scenarios: set,
		Beta:      0.99,
	}
}

func TestInputValidate(t *testing.T) {
	in := triangleInput(t, 5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *in
	bad.Demands = Demands{1}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched demands accepted")
	}
	bad = *in
	bad.Demands = Demands{-1, 1}
	if err := bad.Validate(); err == nil {
		t.Error("negative demand accepted")
	}
	bad = *in
	bad.Beta = 1
	if err := bad.Validate(); err == nil {
		t.Error("beta = 1 accepted")
	}
	bad = *in
	bad.Net = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil network accepted")
	}
}

func TestDemandsScale(t *testing.T) {
	d := Demands{1, 2}.Scale(2.5)
	if d[0] != 2.5 || d[1] != 5 {
		t.Fatalf("scaled = %v", d)
	}
}

func TestECMPRespectsCapacity(t *testing.T) {
	in := triangleInput(t, 50) // way over capacity
	plan, err := ECMP{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCapacity(in.Net, plan); err != nil {
		t.Fatal(err)
	}
	if plan.MaxLoss <= 0 {
		t.Fatal("overloaded ECMP should record loss")
	}
}

func TestECMPFullServiceWhenUnderloaded(t *testing.T) {
	in := triangleInput(t, 2)
	plan, err := ECMP{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, fl := range in.Tunnels.Flows {
		if !Satisfied(plan, fl.ID, in.Demands[fl.ID], nil) {
			t.Fatalf("flow %d unsatisfied at low load", fl.ID)
		}
	}
}

func TestMinMaxLossPlanFullCapacity(t *testing.T) {
	// With no failure constraints, the triangle supports 10 units on both
	// flows (the oracle's Fig 3b throughput of 20 total).
	in := triangleInput(t, 10)
	plan, err := MinMaxLossPlan(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxLoss > 1e-6 {
		t.Fatalf("loss = %v, want 0: demand 10+10 fits (Fig 3b)", plan.MaxLoss)
	}
	if err := CheckCapacity(in.Net, plan); err != nil {
		t.Fatal(err)
	}
	for _, fl := range in.Tunnels.Flows {
		if !Satisfied(plan, fl.ID, 10, nil) {
			t.Fatalf("flow %d not served", fl.ID)
		}
	}
}

func TestMinMaxLossPlanUnderCut(t *testing.T) {
	// Cut fiber 0 (s1s2): flow 0 must detour via s1->s3->s2; both flows
	// then squeeze into fiber 1's 10 units, so at demand 10 each the best
	// max loss is 50% (Fig 2c's situation for TeaVar).
	in := triangleInput(t, 10)
	cut := map[topology.FiberID]bool{0: true}
	plan, err := MinMaxLossPlan(in, cut)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.MaxLoss-0.5) > 1e-6 {
		t.Fatalf("loss under cut = %v, want 0.5", plan.MaxLoss)
	}
	if err := CheckCapacity(in.Net, plan); err != nil {
		t.Fatal(err)
	}
}

func TestFFC1SurvivesAnySingleCut(t *testing.T) {
	in := triangleInput(t, 4)
	plan, err := FFC{K: 1}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxLoss > 1e-6 {
		t.Fatalf("FFC-1 loss = %v at demand 4, want 0", plan.MaxLoss)
	}
	for fi := range in.Net.Fibers {
		cut := map[topology.FiberID]bool{topology.FiberID(fi): true}
		for _, fl := range in.Tunnels.Flows {
			if !Satisfied(plan, fl.ID, in.Demands[fl.ID], cut) {
				t.Fatalf("FFC-1 leaves flow %d unprotected under fiber %d cut", fl.ID, fi)
			}
		}
	}
}

func TestFFCMoreConservativeThanUnprotected(t *testing.T) {
	in := triangleInput(t, 10)
	ffc, err := FFC{K: 1}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	free, err := MinMaxLossPlan(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ffc.MaxLoss < free.MaxLoss-1e-9 {
		t.Fatalf("FFC loss %v should be >= unprotected loss %v", ffc.MaxLoss, free.MaxLoss)
	}
	if ffc.MaxLoss <= 1e-6 {
		t.Fatal("at demand 10, single-cut protection must cost throughput in the triangle")
	}
	if err := CheckCapacity(in.Net, ffc); err != nil {
		t.Fatal(err)
	}
}

func TestFFCValidation(t *testing.T) {
	in := triangleInput(t, 1)
	if _, err := (FFC{K: 0}).Plan(in); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestFFC2OnTriangle(t *testing.T) {
	// Under any double cut in the triangle, some flow is disconnected; FFC-2
	// skips unprotectable scenarios but still protects the protectable ones.
	in := triangleInput(t, 3)
	plan, err := FFC{K: 2}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCapacity(in.Net, plan); err != nil {
		t.Fatal(err)
	}
	// single cuts must still be protected
	for fi := range in.Net.Fibers {
		cut := map[topology.FiberID]bool{topology.FiberID(fi): true}
		for _, fl := range in.Tunnels.Flows {
			if !Satisfied(plan, fl.ID, in.Demands[fl.ID], cut) {
				t.Fatalf("FFC-2 lost single-cut protection for flow %d", fl.ID)
			}
		}
	}
}

func TestARROWPlansAggressively(t *testing.T) {
	in := triangleInput(t, 10)
	plan, err := ARROW{RestorationS: 8}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	// ARROW plans like the failure-oblivious optimum: full 20 units.
	if plan.MaxLoss > 1e-6 {
		t.Fatalf("ARROW loss = %v at demand 10, want 0", plan.MaxLoss)
	}
}

func TestFlexileRecompute(t *testing.T) {
	in := triangleInput(t, 6)
	fl := Flexile{ConvergenceS: 30}
	pre, err := fl.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if pre.MaxLoss > 1e-6 {
		t.Fatal("pre-failure plan should be lossless at demand 6")
	}
	cut := map[topology.FiberID]bool{0: true}
	post, err := fl.Recompute(in, cut)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCapacity(in.Net, post); err != nil {
		t.Fatal(err)
	}
	// 6+6 = 12 > 10 through the surviving fiber: loss is unavoidable.
	if post.MaxLoss < 0.1 {
		t.Fatalf("recomputed loss = %v, want > 0.1", post.MaxLoss)
	}
}

func TestOraclePlanFor(t *testing.T) {
	in := triangleInput(t, 5)
	o := Oracle{}
	cut := map[topology.FiberID]bool{0: true}
	plan, err := o.PlanFor(in, cut)
	if err != nil {
		t.Fatal(err)
	}
	// 5+5 = 10 fits the surviving fiber exactly (Fig 3c's shape: oracle
	// keeps full service by pre-moving traffic).
	if plan.MaxLoss > 1e-6 {
		t.Fatalf("oracle loss = %v under known cut, want 0", plan.MaxLoss)
	}
	for _, fl := range in.Tunnels.Flows {
		if !Satisfied(plan, fl.ID, 5, cut) {
			t.Fatalf("oracle leaves flow %d unserved", fl.ID)
		}
	}
}

func TestDeliveredAndLinkLoads(t *testing.T) {
	in := triangleInput(t, 5)
	plan, err := MinMaxLossPlan(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for lid, load := range LinkLoads(plan) {
		if load < 0 {
			t.Fatalf("negative load on link %d", lid)
		}
	}
	got := Delivered(plan, 0, 5, nil)
	if math.Abs(got-5) > 1e-6 {
		t.Fatalf("delivered = %v, want 5", got)
	}
	// cutting every fiber delivers nothing
	all := map[topology.FiberID]bool{0: true, 1: true, 2: true}
	if got := Delivered(plan, 0, 5, all); got != 0 {
		t.Fatalf("delivered under total cut = %v", got)
	}
}

func TestAllocationClone(t *testing.T) {
	a := Allocation{1: 5}
	b := a.Clone()
	b[1] = 9
	if a[1] != 5 {
		t.Fatal("clone aliases original")
	}
}
