package te

import (
	"fmt"

	"prete/internal/routing"
	"prete/internal/topology"
)

// ECMP splits each flow's demand equally across its tunnels ("ECMP [7]
// serves as a baseline"), then scales the whole matrix down uniformly if
// any link would overload. It plans for no failures at all.
type ECMP struct{}

// Name implements Scheme.
func (ECMP) Name() string { return "ECMP" }

// Plan implements Scheme.
func (ECMP) Plan(in *Input) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := make(Allocation)
	for _, fl := range in.Tunnels.Flows {
		tids := in.Tunnels.TunnelsOf(fl.ID)
		if len(tids) == 0 {
			continue
		}
		share := in.Demands[fl.ID] / float64(len(tids))
		for _, tid := range tids {
			alloc[tid] = share
		}
	}
	plan := &Plan{Alloc: alloc, Tunnels: in.Tunnels}
	// Feasibility: every tunnel's traffic is cut back by its bottleneck
	// link's oversubscription factor, the way per-link fair dropping would
	// behave — overloaded links shed proportionally, uncongested paths are
	// untouched.
	oversub := make(map[topology.LinkID]float64)
	for lid, load := range LinkLoads(plan) {
		if c := in.Net.Link(lid).Capacity; load > c {
			oversub[lid] = load / c
		}
	}
	if len(oversub) > 0 {
		worst := 1.0
		for tid := range alloc {
			factor := 1.0
			for _, lid := range in.Tunnels.Tunnel(tid).Links {
				if f := oversub[lid]; f > factor {
					factor = f
				}
			}
			if factor > 1 {
				alloc[tid] /= factor
				if factor > worst {
					worst = factor
				}
			}
		}
		plan.MaxLoss = 1 - 1/worst
	}
	return plan, nil
}

// FFC is forward fault correction [26]: the allocation must satisfy every
// flow under all failure scenarios with up to K simultaneous fiber cuts
// ("FFC-1" and "FFC-2" in §6.1).
type FFC struct {
	K int
}

// Name implements Scheme.
func (f FFC) Name() string { return fmt.Sprintf("FFC-%d", f.K) }

// Plan implements Scheme.
func (f FFC) Plan(in *Input) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if f.K < 1 {
		return nil, fmt.Errorf("te: FFC needs K >= 1, got %d", f.K)
	}
	cuts := enumerateCuts(len(in.Net.Fibers), f.K)
	var rows []coverageRow
	for _, fl := range in.Tunnels.Flows {
		tids := in.Tunnels.TunnelsOf(fl.ID)
		// Deduplicate scenarios by the surviving tunnel set: two cut sets
		// leaving the flow the same tunnels impose the identical
		// constraint, and on IBM-scale double-failure enumeration this
		// shrinks tens of thousands of rows to a few per flow.
		seen := make(map[string]bool)
		for _, cut := range cuts {
			var avail []routing.TunnelID
			for _, tid := range tids {
				if in.Tunnels.Tunnel(tid).AvailableUnder(cut) {
					avail = append(avail, tid)
				}
			}
			if len(avail) == 0 {
				continue // unprotectable scenario; skipping mirrors FFC's
				// restriction to scenarios with surviving tunnels
			}
			key := availKey(avail)
			if seen[key] {
				continue
			}
			seen[key] = true
			rows = append(rows, coverageRow{Flow: fl.ID, Tunnels: avail})
		}
	}
	alloc, phi, err := solveMinMaxLoss(in.Net, in.Tunnels, in.Demands, rows, nil)
	if err != nil {
		return nil, err
	}
	return &Plan{Alloc: alloc, MaxLoss: phi, Tunnels: in.Tunnels}, nil
}

// availKey canonicalizes a surviving tunnel set (IDs are already ordered
// by the per-flow tunnel list).
func availKey(tids []routing.TunnelID) string {
	b := make([]byte, 0, len(tids)*3)
	for _, t := range tids {
		b = append(b, byte(t), byte(t>>8), ',')
	}
	return string(b)
}

// enumerateCuts lists all fiber cut sets of size 0..k.
func enumerateCuts(numFibers, k int) []map[topology.FiberID]bool {
	out := []map[topology.FiberID]bool{{}}
	for i := 0; i < numFibers; i++ {
		out = append(out, map[topology.FiberID]bool{topology.FiberID(i): true})
	}
	if k >= 2 {
		for i := 0; i < numFibers; i++ {
			for j := i + 1; j < numFibers; j++ {
				out = append(out, map[topology.FiberID]bool{
					topology.FiberID(i): true, topology.FiberID(j): true,
				})
			}
		}
	}
	return out
}

// ARROW [41] plans aggressively for the no-failure case and relies on
// optical restoration to rebuild lost capacity within RestorationS seconds
// of a cut; the simulation charges affected flows that restoration window.
type ARROW struct {
	// RestorationS is the end-to-end restoration latency (§6.1: 8 s).
	RestorationS float64
}

// Name implements Scheme.
func (ARROW) Name() string { return "ARROW" }

// Plan implements Scheme.
func (a ARROW) Plan(in *Input) (*Plan, error) {
	return MinMaxLossPlan(in, nil)
}

// Flexile [21] is the reactive representative: optimal for the current
// topology, with a centralized recomputation after each failure that takes
// ConvergenceS seconds during which affected flows run on the stale plan.
type Flexile struct {
	// ConvergenceS is the time to detect, recompute and install the new
	// policy (reaction "Seconds" per Table 9).
	ConvergenceS float64
}

// Name implements Scheme.
func (Flexile) Name() string { return "Flexile" }

// Plan implements Scheme.
func (f Flexile) Plan(in *Input) (*Plan, error) {
	return MinMaxLossPlan(in, nil)
}

// Recompute is Flexile's reaction: a fresh optimal plan for the
// post-failure topology (reactive schemes may also establish new tunnels,
// which the caller models by passing an extended tunnel set).
func (f Flexile) Recompute(in *Input, cut map[topology.FiberID]bool) (*Plan, error) {
	return MinMaxLossPlan(in, cut)
}

// Oracle has perfect future knowledge (§2.2): for each scenario it plans
// the post-failure topology directly and switches before the failure bites.
type Oracle struct{}

// Name implements Scheme.
func (Oracle) Name() string { return "Oracle" }

// Plan implements Scheme (the no-failure plan; per-scenario plans come from
// PlanFor).
func (o Oracle) Plan(in *Input) (*Plan, error) {
	return MinMaxLossPlan(in, nil)
}

// PlanFor returns the oracle's plan given certain knowledge of the cut set.
func (o Oracle) PlanFor(in *Input, cut map[topology.FiberID]bool) (*Plan, error) {
	return MinMaxLossPlan(in, cut)
}
