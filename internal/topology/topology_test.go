package topology

import (
	"testing"
	"testing/quick"
)

func TestB4Shape(t *testing.T) {
	n, err := B4()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Nodes); got != 12 {
		t.Errorf("B4 nodes = %d, want 12", got)
	}
	if got := len(n.Fibers); got != 19 {
		t.Errorf("B4 fibers = %d, want 19 (Table 3)", got)
	}
	if got := len(n.Links); got != 52 {
		t.Errorf("B4 IP links = %d, want 52 (Table 3)", got)
	}
}

func TestIBMShape(t *testing.T) {
	n, err := IBM()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Nodes); got != 18 {
		t.Errorf("IBM nodes = %d, want 18", got)
	}
	if got := len(n.Fibers); got != 25 {
		t.Errorf("IBM fibers = %d, want 25", got)
	}
	if got := len(n.Links); got != 85 {
		t.Errorf("IBM IP links = %d, want 85 (Table 3)", got)
	}
}

func TestTWANScale(t *testing.T) {
	n, err := TWAN(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Fibers); got < 40 || got > 70 {
		t.Errorf("TWAN fibers = %d, want O(50)", got)
	}
	if got := len(n.Links); got < 90 || got > 130 {
		t.Errorf("TWAN IP links = %d, want O(100)", got)
	}
}

func TestTWANDeterminism(t *testing.T) {
	a, _ := TWAN(7)
	b, _ := TWAN(7)
	if len(a.Links) != len(b.Links) {
		t.Fatal("same-seed TWAN differs")
	}
	for i := range a.Links {
		if a.Links[i].Capacity != b.Links[i].Capacity {
			t.Fatalf("same-seed TWAN link %d capacity differs", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"B4", "IBM", "TWAN", "b4"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestValidationRejectsBadInput(t *testing.T) {
	nodes := []Node{{ID: 0}, {ID: 1}}
	fibers := []Fiber{{ID: 0, A: 0, B: 1}}
	cases := []struct {
		name  string
		links []Link
	}{
		{"self-loop", []Link{{ID: 0, Src: 0, Dst: 0, Capacity: 1, Fibers: []FiberID{0}}}},
		{"zero capacity", []Link{{ID: 0, Src: 0, Dst: 1, Capacity: 0, Fibers: []FiberID{0}}}},
		{"no fiber", []Link{{ID: 0, Src: 0, Dst: 1, Capacity: 1}}},
		{"unknown fiber", []Link{{ID: 0, Src: 0, Dst: 1, Capacity: 1, Fibers: []FiberID{9}}}},
		{"unknown node", []Link{{ID: 0, Src: 0, Dst: 5, Capacity: 1, Fibers: []FiberID{0}}}},
	}
	for _, c := range cases {
		if _, err := New("bad", nodes, fibers, c.links); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if _, err := New("dup-node", []Node{{ID: 0}, {ID: 0}}, nil, nil); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := New("dup-fiber", nodes, []Fiber{{ID: 0, A: 0, B: 1}, {ID: 0, A: 1, B: 0}}, nil); err == nil {
		t.Error("duplicate fiber accepted")
	}
	if _, err := New("bad-fiber-node", nodes, []Fiber{{ID: 0, A: 0, B: 7}}, nil); err == nil {
		t.Error("fiber with unknown node accepted")
	}
}

func TestLinksOnFiberConsistency(t *testing.T) {
	n, err := IBM()
	if err != nil {
		t.Fatal(err)
	}
	// Every link must appear on each of its fibers' reverse indices.
	for _, l := range n.Links {
		for _, f := range l.Fibers {
			found := false
			for _, lid := range n.LinksOnFiber(f) {
				if lid == l.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("link %d missing from fiber %d index", l.ID, f)
			}
		}
	}
}

func TestFailedLinks(t *testing.T) {
	n, err := B4()
	if err != nil {
		t.Fatal(err)
	}
	f := n.Fibers[0].ID
	failed := n.FailedLinks(map[FiberID]bool{f: true})
	if len(failed) < 2 {
		t.Fatalf("cutting fiber %d failed only %d links; direct links alone are 2", f, len(failed))
	}
	for lid := range failed {
		link := n.Link(lid)
		onFiber := false
		for _, ff := range link.Fibers {
			if ff == f {
				onFiber = true
			}
		}
		if !onFiber {
			t.Fatalf("link %d reported failed but does not ride fiber %d", lid, f)
		}
	}
	if got := n.FailedLinks(map[FiberID]bool{}); len(got) != 0 {
		t.Fatalf("no cuts should fail no links, got %d", len(got))
	}
}

func TestLostCapacityMatchesFailedLinks(t *testing.T) {
	n, err := IBM()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range n.Fibers {
		var sum float64
		for lid := range n.FailedLinks(map[FiberID]bool{f.ID: true}) {
			sum += n.Link(lid).Capacity
		}
		if got := n.LostCapacity(f.ID); got != sum {
			t.Fatalf("fiber %d: LostCapacity %v != summed %v", f.ID, got, sum)
		}
	}
}

func TestComputeStats(t *testing.T) {
	n, err := B4()
	if err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.NumNodes != 12 || s.NumFibers != 19 || s.NumIPLinks != 52 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalCapacity <= 0 || s.MaxLostCapacity <= 0 {
		t.Fatalf("capacities not computed: %+v", s)
	}
	if s.AvgLinksPerFib < 2 {
		t.Fatalf("each fiber carries at least its two direct links, got %v", s.AvgLinksPerFib)
	}
}

func TestRegions(t *testing.T) {
	n, err := B4()
	if err != nil {
		t.Fatal(err)
	}
	regions := n.Regions()
	if len(regions) != 3 {
		t.Fatalf("B4 regions = %v, want 3 (Fig 1b uses three regions)", regions)
	}
}

func TestLinkBetween(t *testing.T) {
	n, err := B4()
	if err != nil {
		t.Fatal(err)
	}
	// Fiber 0 joins nodes 0 and 1; both directed links must exist.
	if _, ok := n.LinkBetween(0, 1); !ok {
		t.Error("missing link 0->1")
	}
	if _, ok := n.LinkBetween(1, 0); !ok {
		t.Error("missing link 1->0")
	}
	if _, ok := n.FiberBetween(0, 1); !ok {
		t.Error("missing fiber 0-1")
	}
	if _, ok := n.FiberBetween(1, 0); !ok {
		t.Error("FiberBetween should be orientation-free")
	}
}

// Property: FailedLinks is monotone — cutting more fibers never fails fewer
// links.
func TestQuickFailedLinksMonotone(t *testing.T) {
	n, err := B4()
	if err != nil {
		t.Fatal(err)
	}
	f := func(mask uint32, extra uint8) bool {
		cut := make(map[FiberID]bool)
		for i := 0; i < len(n.Fibers); i++ {
			if mask&(1<<uint(i)) != 0 {
				cut[FiberID(i)] = true
			}
		}
		small := n.FailedLinks(cut)
		cut[FiberID(int(extra)%len(n.Fibers))] = true
		big := n.FailedLinks(cut)
		if len(big) < len(small) {
			return false
		}
		for l := range small {
			if !big[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinsValidate(t *testing.T) {
	for _, name := range []string{"B4", "IBM", "TWAN"} {
		n, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s failed validation: %v", name, err)
		}
	}
}
