// Package topology models the two-layer WAN PreTE operates on: an optical
// layer of fibers and an IP layer of links riding those fibers. A fiber cut
// removes every IP link whose optical path traverses the fiber (the paper's
// Fig 1b: one cut can erase multiple Tbps of IP capacity), which is what
// couples the optical-layer telemetry to IP-layer traffic engineering.
//
// The package ships coded B4 and IBM optical topologies plus a synthetic
// TWAN-like topology, matching the scale of Table 3.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a site (edge router) in the WAN graph.
type NodeID int

// FiberID identifies a physical fiber span in the optical layer.
type FiberID int

// LinkID identifies a directed IP-layer link.
type LinkID int

// Node is a WAN site.
type Node struct {
	ID     NodeID
	Name   string
	Region string
}

// Fiber is a physical fiber span between two sites. Fibers are undirected:
// a cut severs both directions of every IP link riding it.
type Fiber struct {
	ID       FiberID
	A, B     NodeID
	LengthKm float64
	Region   string
	Vendor   string
	// Conduit groups fibers sharing a physical conduit; the telemetry layer
	// treats fibers in one conduit as a single degradation entity (§3.1).
	// Zero (the default) means the fiber shares no conduit.
	Conduit int
}

// Link is a directed IP-layer link. Capacity is in Gbps. Fibers lists the
// optical spans the link's lightpath traverses (its shared-risk group).
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	Capacity float64
	Fibers   []FiberID
}

// Network is the immutable two-layer WAN graph.
type Network struct {
	Name   string
	Nodes  []Node
	Fibers []Fiber
	Links  []Link

	out         map[NodeID][]LinkID // adjacency: links leaving a node
	linksOnFib  map[FiberID][]LinkID
	linkByPair  map[[2]NodeID]LinkID
	fiberByPair map[[2]NodeID]FiberID
}

// New assembles a Network and builds its indices. It validates that link
// endpoints and fiber references exist.
func New(name string, nodes []Node, fibers []Fiber, links []Link) (*Network, error) {
	n := &Network{
		Name:        name,
		Nodes:       nodes,
		Fibers:      fibers,
		Links:       links,
		out:         make(map[NodeID][]LinkID),
		linksOnFib:  make(map[FiberID][]LinkID),
		linkByPair:  make(map[[2]NodeID]LinkID),
		fiberByPair: make(map[[2]NodeID]FiberID),
	}
	nodeSet := make(map[NodeID]bool, len(nodes))
	for _, nd := range nodes {
		if nodeSet[nd.ID] {
			return nil, fmt.Errorf("topology: duplicate node %d", nd.ID)
		}
		nodeSet[nd.ID] = true
	}
	fiberSet := make(map[FiberID]bool, len(fibers))
	for _, f := range fibers {
		if fiberSet[f.ID] {
			return nil, fmt.Errorf("topology: duplicate fiber %d", f.ID)
		}
		if !nodeSet[f.A] || !nodeSet[f.B] {
			return nil, fmt.Errorf("topology: fiber %d references unknown node", f.ID)
		}
		fiberSet[f.ID] = true
		n.fiberByPair[orient(f.A, f.B)] = f.ID
	}
	for _, l := range links {
		if !nodeSet[l.Src] || !nodeSet[l.Dst] {
			return nil, fmt.Errorf("topology: link %d references unknown node", l.ID)
		}
		if l.Src == l.Dst {
			return nil, fmt.Errorf("topology: link %d is a self-loop", l.ID)
		}
		if l.Capacity <= 0 {
			return nil, fmt.Errorf("topology: link %d has non-positive capacity", l.ID)
		}
		if len(l.Fibers) == 0 {
			return nil, fmt.Errorf("topology: link %d rides no fiber", l.ID)
		}
		for _, f := range l.Fibers {
			if !fiberSet[f] {
				return nil, fmt.Errorf("topology: link %d references unknown fiber %d", l.ID, f)
			}
			n.linksOnFib[f] = append(n.linksOnFib[f], l.ID)
		}
		n.out[l.Src] = append(n.out[l.Src], l.ID)
		n.linkByPair[[2]NodeID{l.Src, l.Dst}] = l.ID
	}
	return n, nil
}

func orient(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Link returns the link with the given ID.
func (n *Network) Link(id LinkID) Link { return n.Links[int(id)] }

// Fiber returns the fiber with the given ID.
func (n *Network) Fiber(id FiberID) Fiber { return n.Fibers[int(id)] }

// OutLinks returns the IDs of links leaving node v.
func (n *Network) OutLinks(v NodeID) []LinkID { return n.out[v] }

// LinksOnFiber returns the IP links whose lightpath crosses fiber f — the
// links that fail when f is cut.
func (n *Network) LinksOnFiber(f FiberID) []LinkID { return n.linksOnFib[f] }

// LinkBetween returns the directed link from a to b, if any.
func (n *Network) LinkBetween(a, b NodeID) (LinkID, bool) {
	id, ok := n.linkByPair[[2]NodeID{a, b}]
	return id, ok
}

// FiberBetween returns the fiber directly connecting a and b, if any.
func (n *Network) FiberBetween(a, b NodeID) (FiberID, bool) {
	id, ok := n.fiberByPair[orient(a, b)]
	return id, ok
}

// FailedLinks returns the set of IP links downed by cutting the given fibers.
func (n *Network) FailedLinks(cut map[FiberID]bool) map[LinkID]bool {
	failed := make(map[LinkID]bool)
	for f := range cut {
		if !cut[f] {
			continue
		}
		for _, l := range n.linksOnFib[f] {
			failed[l] = true
		}
	}
	return failed
}

// LostCapacity returns the total IP capacity (Gbps) erased by cutting fiber
// f — the quantity whose CDF Fig 1(b) reports.
func (n *Network) LostCapacity(f FiberID) float64 {
	var total float64
	for _, l := range n.linksOnFib[f] {
		total += n.Links[int(l)].Capacity
	}
	return total
}

// Stats summarizes a network in Table 3's terms. Tunnel and traffic-matrix
// counts live with the routing and simulation layers; this covers the static
// graph quantities.
type Stats struct {
	Name            string
	NumNodes        int
	NumFibers       int
	NumIPLinks      int
	TotalCapacity   float64 // Gbps, summed over directed links
	AvgFiberSpanKm  float64
	AvgLinksPerFib  float64
	MaxLostCapacity float64 // Gbps, worst single fiber cut
}

// ComputeStats derives Stats for the network.
func (n *Network) ComputeStats() Stats {
	s := Stats{
		Name:       n.Name,
		NumNodes:   len(n.Nodes),
		NumFibers:  len(n.Fibers),
		NumIPLinks: len(n.Links),
	}
	for _, l := range n.Links {
		s.TotalCapacity += l.Capacity
	}
	var spanSum float64
	for _, f := range n.Fibers {
		spanSum += f.LengthKm
		s.AvgLinksPerFib += float64(len(n.linksOnFib[f.ID]))
		if lost := n.LostCapacity(f.ID); lost > s.MaxLostCapacity {
			s.MaxLostCapacity = lost
		}
	}
	if len(n.Fibers) > 0 {
		s.AvgFiberSpanKm = spanSum / float64(len(n.Fibers))
		s.AvgLinksPerFib /= float64(len(n.Fibers))
	}
	return s
}

// Regions returns the sorted set of fiber regions present in the network.
func (n *Network) Regions() []string {
	set := make(map[string]bool)
	for _, f := range n.Fibers {
		set[f.Region] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Validate re-checks the structural invariants; useful after tests mutate
// copies of the built-in topologies.
func (n *Network) Validate() error {
	_, err := New(n.Name, n.Nodes, n.Fibers, n.Links)
	return err
}
