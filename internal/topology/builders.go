package topology

import (
	"fmt"
	"sort"

	"prete/internal/stats"
)

// The coded optical topologies follow the networks the paper evaluates
// (§6.1, Table 3): B4 (Google's WAN, 12 sites / 19 fibers) and IBM (18
// sites / 23 fibers) with IP layers expanded per the distributions in
// ARROW [41], plus a synthetic TWAN-scale network (O(50) fibers, O(100) IP
// links; the production topology is confidential).

// fiberSpec is a compact fiber description used by the builders.
type fiberSpec struct {
	a, b   int
	km     float64
	region string
}

var b4Fibers = []fiberSpec{
	{0, 1, 1200, "NA"}, {0, 2, 900, "NA"}, {1, 2, 1100, "NA"},
	{1, 3, 1700, "NA"}, {1, 4, 2400, "NA"}, {2, 4, 2100, "NA"},
	{3, 4, 800, "NA"}, {3, 5, 1500, "EU"}, {3, 6, 1900, "EU"},
	{4, 6, 1300, "EU"}, {5, 7, 700, "EU"}, {6, 7, 600, "EU"},
	{5, 8, 2800, "APAC"}, {7, 9, 2500, "APAC"}, {8, 9, 900, "APAC"},
	{8, 10, 1000, "APAC"}, {9, 11, 1200, "APAC"}, {10, 11, 800, "APAC"},
	{6, 9, 2000, "APAC"},
}

var ibmFibers = []fiberSpec{
	{0, 1, 600, "EAST"}, {0, 2, 900, "EAST"}, {1, 3, 500, "EAST"},
	{2, 3, 700, "EAST"}, {2, 4, 1100, "EAST"}, {3, 5, 1000, "EAST"},
	{4, 5, 400, "EAST"}, {4, 6, 1300, "CENTRAL"}, {5, 7, 1200, "CENTRAL"},
	{6, 7, 600, "CENTRAL"}, {6, 8, 800, "CENTRAL"}, {7, 9, 900, "CENTRAL"},
	{8, 9, 500, "CENTRAL"}, {8, 10, 1100, "CENTRAL"}, {9, 11, 1000, "CENTRAL"},
	{10, 11, 700, "WEST"}, {10, 12, 900, "WEST"}, {11, 13, 1200, "WEST"},
	{12, 13, 600, "WEST"}, {12, 14, 1500, "WEST"}, {13, 15, 1300, "WEST"},
	{14, 16, 800, "WEST"}, {15, 17, 900, "WEST"},
}

// extra connectivity so IBM's western tail is not a tree (every flow must
// keep a residual tunnel under any single cut, §4.2).
var ibmExtraFibers = []fiberSpec{
	{14, 15, 700, "WEST"}, {16, 17, 1000, "WEST"},
}

// B4 returns the B4-like two-layer topology: 12 nodes, 19 fibers, and an IP
// layer expanded to 52 directed links (Table 3).
func B4() (*Network, error) {
	return buildFromSpec("B4", 12, b4Fibers, 52, 0xb4)
}

// IBM returns the IBM-like two-layer topology: 18 nodes, 25 fibers
// (23 published spans plus 2 protection spans that keep every flow
// biconnected), and an IP layer expanded to 85 directed links (Table 3).
func IBM() (*Network, error) {
	spec := append(append([]fiberSpec(nil), ibmFibers...), ibmExtraFibers...)
	return buildFromSpec("IBM", 18, spec, 85, 0x1b3)
}

// TWAN returns a synthetic production-scale topology: a 26-site ring with
// chords yielding ~52 fibers and ~104 directed IP links, the O(50)/O(100)
// scale Table 3 reports for the (confidential) Tencent WAN.
func TWAN(seed uint64) (*Network, error) {
	const nodes = 26
	rng := stats.NewRNG(seed)
	regions := []string{"SOUTH", "NORTH", "OVERSEA"}
	var spec []fiberSpec
	// Backbone ring.
	for i := 0; i < nodes; i++ {
		spec = append(spec, fiberSpec{
			a: i, b: (i + 1) % nodes,
			km:     300 + 200*rng.Float64()*10,
			region: regions[i*len(regions)/nodes],
		})
	}
	// Chords: skip-2 links on even nodes, plus long-haul cross links.
	for i := 0; i < nodes; i += 2 {
		spec = append(spec, fiberSpec{
			a: i, b: (i + 2) % nodes,
			km:     500 + 150*rng.Float64()*10,
			region: regions[i*len(regions)/nodes],
		})
	}
	for i := 0; i < nodes; i += 5 {
		j := (i + nodes/2) % nodes
		if i == j {
			continue
		}
		spec = append(spec, fiberSpec{a: i, b: j, km: 2000 + 500*rng.Float64()*4, region: "OVERSEA"})
	}
	return buildFromSpec("TWAN", nodes, spec, 110, seed)
}

// ByName returns a built-in topology by its Table 3 name.
func ByName(name string) (*Network, error) {
	switch name {
	case "B4", "b4":
		return B4()
	case "IBM", "ibm":
		return IBM()
	case "TWAN", "twan":
		return TWAN(2025)
	default:
		return nil, fmt.Errorf("topology: unknown topology %q (want B4, IBM, or TWAN)", name)
	}
}

// buildFromSpec constructs the two-layer network: one node per site, the
// given fiber spans, direct IP links in both directions on every fiber, and
// deterministic "express" IP links over two-fiber lightpaths until the IP
// layer reaches targetLinks.
func buildFromSpec(name string, numNodes int, spec []fiberSpec, targetLinks int, seed uint64) (*Network, error) {
	rng := stats.NewRNG(seed)
	nodes := make([]Node, numNodes)
	for i := range nodes {
		nodes[i] = Node{ID: NodeID(i), Name: fmt.Sprintf("%s-s%d", name, i+1)}
	}
	vendors := []string{"vendorA", "vendorB", "vendorC"}
	fibers := make([]Fiber, len(spec))
	adj := make(map[NodeID][]NodeID)
	for i, s := range spec {
		fibers[i] = Fiber{
			ID: FiberID(i), A: NodeID(s.a), B: NodeID(s.b),
			LengthKm: s.km, Region: s.region,
			Vendor:  vendors[rng.Intn(len(vendors))],
			Conduit: i + 1, // refined below: ~10% of fibers share a conduit
		}
		nodes[s.a].Region = s.region
		if nodes[s.b].Region == "" {
			nodes[s.b].Region = s.region
		}
		adj[NodeID(s.a)] = append(adj[NodeID(s.a)], NodeID(s.b))
		adj[NodeID(s.b)] = append(adj[NodeID(s.b)], NodeID(s.a))
	}
	// Pair up some geographically adjacent fibers into shared conduits.
	for i := 1; i < len(fibers); i += 9 {
		fibers[i].Conduit = fibers[i-1].Conduit
	}

	var links []Link
	addLink := func(src, dst NodeID, capacity float64, path []FiberID) {
		links = append(links, Link{
			ID: LinkID(len(links)), Src: src, Dst: dst,
			Capacity: capacity, Fibers: path,
		})
	}
	// Direct links: both directions on each fiber. Capacities are multiples
	// of the 100 Gbps wavelength (§5), sized so that a busy fiber carries
	// multiple Tbps of IP capacity (Fig 1b).
	for _, f := range fibers {
		capGbps := 100 * float64(8+rng.Intn(13)) // 800-2000 Gbps
		addLink(f.A, f.B, capGbps, []FiberID{f.ID})
		addLink(f.B, f.A, capGbps, []FiberID{f.ID})
	}
	if len(links) > targetLinks {
		return nil, fmt.Errorf("topology: %s has %d direct links, above target %d", name, len(links), targetLinks)
	}
	// Express links: lightpaths over two fiber spans between nodes at
	// optical distance 2, in canonical order for determinism.
	type pair struct{ a, b NodeID }
	var candidates []pair
	for a := NodeID(0); int(a) < numNodes; a++ {
		for b := NodeID(0); int(b) < numNodes; b++ {
			if a == b {
				continue
			}
			if _, direct := fiberOf(spec, a, b); direct {
				continue
			}
			if mid, ok := commonNeighbor(adj, a, b); ok {
				_ = mid
				candidates = append(candidates, pair{a, b})
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].a != candidates[j].a {
			return candidates[i].a < candidates[j].a
		}
		return candidates[i].b < candidates[j].b
	})
	for _, p := range candidates {
		if len(links) >= targetLinks {
			break
		}
		mid, _ := commonNeighbor(adj, p.a, p.b)
		f1, ok1 := fiberOf(spec, p.a, mid)
		f2, ok2 := fiberOf(spec, mid, p.b)
		if !ok1 || !ok2 {
			continue
		}
		capGbps := 100 * float64(4+rng.Intn(5)) // 400-800 Gbps
		addLink(p.a, p.b, capGbps, []FiberID{FiberID(f1), FiberID(f2)})
	}
	if len(links) != targetLinks {
		return nil, fmt.Errorf("topology: %s expanded to %d IP links, want %d", name, len(links), targetLinks)
	}
	return New(name, nodes, fibers, links)
}

// fiberOf returns the spec index of the fiber joining a and b.
func fiberOf(spec []fiberSpec, a, b NodeID) (int, bool) {
	for i, s := range spec {
		if (NodeID(s.a) == a && NodeID(s.b) == b) || (NodeID(s.a) == b && NodeID(s.b) == a) {
			return i, true
		}
	}
	return 0, false
}

// commonNeighbor returns the lowest-numbered node adjacent to both a and b.
func commonNeighbor(adj map[NodeID][]NodeID, a, b NodeID) (NodeID, bool) {
	best := NodeID(-1)
	for _, x := range adj[a] {
		for _, y := range adj[b] {
			if x == y && (best == -1 || x < best) {
				best = x
			}
		}
	}
	return best, best != -1
}
