package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"prete/internal/obs"
)

func TestLimit(t *testing.T) {
	if got := Limit(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Limit(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Limit(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Limit(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, p := range []int{1, 2, 7} {
		if got := Limit(p); got != p {
			t.Fatalf("Limit(%d) = %d", p, got)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8, 0} {
		const n = 257
		counts := make([]int32, n)
		ForEach(n, p, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", p, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-1, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestMapOrderIndependentOfParallelism(t *testing.T) {
	want := Map(100, 1, func(i int) int { return i * i })
	for _, p := range []int{2, 8, 0} {
		got := Map(100, p, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		_, err := MapErr(20, p, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("parallelism %d: err = %v, want lowest-index task 7", p, err)
		}
	}
	out, err := MapErr(5, 2, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestSumVectorsOrderFixed(t *testing.T) {
	partials := [][]float64{
		{0.1, 0.2},
		nil, // skipped task
		{0.3, 0.4},
	}
	got := SumVectors(partials, 2)
	// Accumulate the same way SumVectors does (runtime float adds in task
	// order) so the comparison is exact.
	want0, want1 := 0.0, 0.0
	for _, p := range partials {
		if p == nil {
			continue
		}
		want0 += p[0]
		want1 += p[1]
	}
	if got[0] != want0 || got[1] != want1 {
		t.Fatalf("SumVectors = %v, want [%v %v]", got, want0, want1)
	}
}

// TestForEachMetrics checks the pool's package-level instrumentation: task
// and batch counts at serial and parallel limits, queue-wait samples per
// task, and that results are untouched by metric collection.
func TestForEachMetrics(t *testing.T) {
	defer SetMetrics(nil)
	for _, limit := range []int{1, 4} {
		reg := obs.NewRegistry()
		SetMetrics(reg)
		const n = 9
		var ran atomic.Int64
		ForEach(n, limit, func(i int) { ran.Add(1) })
		if ran.Load() != n {
			t.Fatalf("limit %d: ran %d tasks, want %d", limit, ran.Load(), n)
		}
		if got := reg.Counter("par.batches").Value(); got != 1 {
			t.Errorf("limit %d: batches = %d, want 1", limit, got)
		}
		if got := reg.Counter("par.tasks").Value(); got != n {
			t.Errorf("limit %d: tasks = %d, want %d", limit, got, n)
		}
		if got := reg.Timer("par.queue_wait").Count(); got != n {
			t.Errorf("limit %d: queue-wait samples = %d, want %d", limit, got, n)
		}
	}
}
