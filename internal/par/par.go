// Package par is the concurrency layer of the repository: a bounded worker
// pool with deterministic, index-ordered fan-out/merge semantics. Every hot
// path that parallelizes — failure-equivalence-class construction and
// structural-cut seeding in internal/core, the degradation-scenario and
// (scheme, scale) sweeps in internal/sim and internal/experiments, and the
// per-fiber telemetry batch pipeline in internal/telemetry — goes through
// this package, so the determinism argument lives in one place:
//
//   - Work is partitioned by index; workers pull indices from a shared
//     atomic counter, so scheduling is dynamic but the unit of work a task
//     index denotes is fixed.
//   - Results are written into index-addressed slots and merged (summed,
//     concatenated, printed, ...) by the caller in index order, never in
//     completion order.
//   - Tasks must not share mutable state; a task needing randomness derives
//     a seeded sub-RNG from its index (stats.SubRNG), never a shared stream.
//
// Under those rules the output of any helper here is bit-identical for
// every parallelism level, including 1 — which is exactly what the
// equivalence tests in core, sim, and telemetry assert.
//
// The parallelism knobs on core.Optimizer, sim.Config, prete.Config, and
// experiments.Options all funnel into Limit: values <= 0 select
// runtime.GOMAXPROCS(0) (the default everywhere), 1 forces the serial path,
// and larger values bound the worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"prete/internal/obs"
)

// metrics is the process-wide registry the pool reports into. The pool sits
// below every instrumented layer and has no per-call configuration surface,
// so — unlike the Metrics fields on core.Optimizer and sim.Config — its hook
// is a package-level pointer, installed once by the CLI (or a test) via
// SetMetrics. A nil registry (the default) keeps the fan-out entirely
// uninstrumented: not even the clock is read.
var metrics atomic.Pointer[obs.Registry]

// SetMetrics installs the registry ForEach reports into: per-batch and
// per-task counters plus a queue-wait timer (the delay between a batch's
// submission and each task's start, the backlog signal). Pass nil to turn
// instrumentation back off. Metrics are write-only and do not affect
// scheduling or results.
func SetMetrics(r *obs.Registry) { metrics.Store(r) }

// Limit resolves a Parallelism knob to a concrete worker count: values
// <= 0 mean "use the hardware", i.e. runtime.GOMAXPROCS(0).
func Limit(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n), using at most
// Limit(parallelism) concurrent workers. With an effective limit of 1 (or
// n <= 1) it degenerates to a plain loop on the calling goroutine — the
// serial path is literally the same code. ForEach returns when every call
// has completed.
//
// fn must write any result it produces into an index-addressed slot; the
// caller merges slots in index order to stay deterministic.
func ForEach(n, parallelism int, fn func(i int)) {
	if n <= 0 {
		return
	}
	reg := metrics.Load()
	reg.Counter("par.batches").Inc()
	reg.Counter("par.tasks").Add(int64(n))
	queueWait := reg.Timer("par.queue_wait")
	// All n tasks are conceptually enqueued here; each task's queue wait is
	// the delay from this point to its start. submitted is the zero time
	// when metrics are off, so the Stop calls below discard without reading
	// the clock.
	submitted := queueWait.Start()
	limit := Limit(parallelism)
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			queueWait.Stop(submitted)
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				queueWait.Stop(submitted)
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map computes out[i] = fn(i) for i in [0, n) with at most
// Limit(parallelism) workers and returns the results in index order.
func Map[T any](n, parallelism int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, parallelism, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible tasks. Every task runs to completion (no
// cancellation, so the result slice is fully populated for the indices
// that succeeded); the returned error is the lowest-index failure, which
// makes error reporting independent of scheduling order too.
func MapErr[T any](n, parallelism int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, parallelism, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// SumVectors adds per-task partial vectors in task-index order, so the
// floating-point accumulation order — and therefore the result, bit for
// bit — is independent of which worker produced which partial. Nil
// partials (skipped tasks) are ignored. All non-nil partials must have
// length n.
func SumVectors(partials [][]float64, n int) []float64 {
	out := make([]float64, n)
	for _, p := range partials {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}
