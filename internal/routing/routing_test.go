package routing

import (
	"testing"
	"testing/quick"

	"prete/internal/topology"
)

// lineNet builds a tiny 4-node line+shortcut network:
//
//	0 --- 1 --- 2 --- 3   (fibers 0, 1, 2)
//	 \_________________/  (fiber 3: 0-3 long haul)
func lineNet(t *testing.T) *topology.Network {
	t.Helper()
	nodes := []topology.Node{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	fibers := []topology.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 100},
		{ID: 1, A: 1, B: 2, LengthKm: 100},
		{ID: 2, A: 2, B: 3, LengthKm: 100},
		{ID: 3, A: 0, B: 3, LengthKm: 1000},
	}
	var links []topology.Link
	add := func(src, dst topology.NodeID, f topology.FiberID) {
		links = append(links, topology.Link{
			ID: topology.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 100, Fibers: []topology.FiberID{f},
		})
	}
	add(0, 1, 0)
	add(1, 0, 0)
	add(1, 2, 1)
	add(2, 1, 1)
	add(2, 3, 2)
	add(3, 2, 2)
	add(0, 3, 3)
	add(3, 0, 3)
	n, err := topology.New("line", nodes, fibers, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestShortestPathPrefersShortFibers(t *testing.T) {
	n := lineNet(t)
	p, ok := ShortestPath(n, 0, 3, nil, nil, nil)
	if !ok {
		t.Fatal("no path 0->3")
	}
	if len(p) != 3 {
		t.Fatalf("expected the 3-hop 300km path over the 1000km direct, got %d hops", len(p))
	}
	if err := ValidatePath(n, 0, 3, p); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathWithBans(t *testing.T) {
	n := lineNet(t)
	// Ban the middle link 1->2: only the direct long-haul remains.
	mid, _ := n.LinkBetween(1, 2)
	p, ok := ShortestPath(n, 0, 3, nil, map[topology.LinkID]bool{mid: true}, nil)
	if !ok || len(p) != 1 {
		t.Fatalf("expected the direct path, got %v ok=%v", p, ok)
	}
	// Ban node 1 as intermediate: same.
	p, ok = ShortestPath(n, 0, 3, nil, nil, map[topology.NodeID]bool{1: true})
	if !ok || len(p) != 1 {
		t.Fatalf("expected the direct path with node ban, got %v ok=%v", p, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	n := lineNet(t)
	banned := make(map[topology.LinkID]bool)
	for _, l := range n.Links {
		banned[l.ID] = true
	}
	if _, ok := ShortestPath(n, 0, 3, nil, banned, nil); ok {
		t.Fatal("found a path through fully banned network")
	}
}

func TestKShortestOrderedAndLoopless(t *testing.T) {
	n := lineNet(t)
	paths := KShortest(n, 0, 3, 4, nil)
	if len(paths) != 2 {
		t.Fatalf("line net has exactly 2 loopless 0->3 paths, got %d", len(paths))
	}
	w := func(l topology.Link) float64 { return 1 }
	_ = w
	if len(paths[0]) != 3 || len(paths[1]) != 1 {
		t.Fatalf("paths out of cost order: %v", paths)
	}
	for _, p := range paths {
		if err := ValidatePath(n, 0, 3, p); err != nil {
			t.Fatal(err)
		}
		// loopless: no node repeats
		seen := map[topology.NodeID]bool{0: true}
		for _, lid := range p {
			d := n.Link(lid).Dst
			if seen[d] {
				t.Fatalf("loop in path %v", p)
			}
			seen[d] = true
		}
	}
}

func TestKShortestOnB4(t *testing.T) {
	n, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	paths := KShortest(n, 0, 11, 4, nil)
	if len(paths) < 2 {
		t.Fatalf("expected multiple paths across B4, got %d", len(paths))
	}
	for i, p := range paths {
		if err := ValidatePath(n, 0, 11, p); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
	}
	// strictly deduplicated
	seen := map[string]bool{}
	for _, p := range paths {
		k := pathKey(p)
		if seen[k] {
			t.Fatal("duplicate path returned")
		}
		seen[k] = true
	}
}

func TestFiberDisjointPaths(t *testing.T) {
	n := lineNet(t)
	paths := FiberDisjointPaths(n, 0, 3, 3, nil)
	if len(paths) != 2 {
		t.Fatalf("expected exactly 2 fiber-disjoint 0->3 paths, got %d", len(paths))
	}
	f0 := PathFibers(n, paths[0])
	f1 := PathFibers(n, paths[1])
	for f := range f0 {
		if f1[f] {
			t.Fatalf("paths share fiber %d", f)
		}
	}
}

func TestFlowsMatchAdjacency(t *testing.T) {
	n, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	flows := Flows(n)
	if len(flows) != len(n.Links) {
		t.Fatalf("B4 flows = %d, want %d (one per directed IP adjacency)", len(flows), len(n.Links))
	}
}

func TestBuildTunnelsTable3(t *testing.T) {
	// Table 3: B4 has 208 tunnels, IBM 340, i.e. 4 per flow.
	cases := []struct {
		name string
		want int
	}{{"B4", 208}, {"IBM", 340}}
	for _, c := range cases {
		n, err := topology.ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := BuildTunnels(n, Flows(n), 4)
		if err != nil {
			t.Fatal(err)
		}
		if got := ts.NumTunnels(); got != c.want {
			t.Errorf("%s tunnels = %d, want %d (Table 3)", c.name, got, c.want)
		}
	}
}

func TestTunnelAvailability(t *testing.T) {
	n := lineNet(t)
	ts, err := BuildTunnels(n, Flows(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range ts.Tunnels {
		for f := range tn.Fibers {
			if tn.AvailableUnder(map[topology.FiberID]bool{f: true}) {
				t.Fatalf("tunnel %d claims availability with its own fiber %d cut", tn.ID, f)
			}
		}
		if !tn.AvailableUnder(nil) {
			t.Fatalf("tunnel %d unavailable with no cuts", tn.ID)
		}
	}
}

func TestResidualCoverageOnBuiltins(t *testing.T) {
	for _, name := range []string{"B4", "IBM"} {
		n, err := topology.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := BuildTunnels(n, Flows(n), 4)
		if err != nil {
			t.Fatal(err)
		}
		if v := ts.ResidualCoverage(); len(v) != 0 {
			t.Errorf("%s: flows lose all tunnels under single cuts of fibers %v", name, v)
		}
	}
}

func TestAddTunnelMarksNew(t *testing.T) {
	n := lineNet(t)
	ts, err := BuildTunnels(n, Flows(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	before := len(ts.TunnelsOf(0))
	p, _ := ShortestPath(n, ts.Flows[0].Src, ts.Flows[0].Dst, nil, nil, nil)
	id := ts.AddTunnel(0, p)
	if !ts.Tunnel(id).New {
		t.Fatal("AddTunnel should mark tunnel as reactive")
	}
	if got := len(ts.TunnelsOf(0)); got != before+1 {
		t.Fatalf("flow 0 tunnels = %d, want %d", got, before+1)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := lineNet(t)
	ts, err := BuildTunnels(n, Flows(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	cp := ts.Clone()
	p, _ := ShortestPath(n, ts.Flows[0].Src, ts.Flows[0].Dst, nil, nil, nil)
	cp.AddTunnel(0, p)
	if len(cp.TunnelsOf(0)) == len(ts.TunnelsOf(0)) {
		t.Fatal("clone shares byFlow with original")
	}
	if ts.NumTunnels() == cp.NumTunnels() {
		t.Fatal("clone shares tunnel slice growth with original")
	}
}

func TestFlowsThroughFiber(t *testing.T) {
	n, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := BuildTunnels(n, Flows(n), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1c: a fiber cut affects a substantial share of flows (33% on B4).
	var maxFrac float64
	for _, f := range n.Fibers {
		frac := float64(len(ts.FlowsThroughFiber(f.ID))) / float64(len(ts.Flows))
		if frac > maxFrac {
			maxFrac = frac
		}
	}
	if maxFrac < 0.10 {
		t.Fatalf("max affected-flow fraction = %v; expected a noticeable blast radius", maxFrac)
	}
	for _, f := range n.Fibers {
		for _, tid := range ts.TunnelsThroughFiber(f.ID) {
			if !ts.Tunnel(tid).UsesFiber(f.ID) {
				t.Fatal("TunnelsThroughFiber returned non-crossing tunnel")
			}
		}
	}
}

// Property: every path ShortestPath returns is a valid connected walk.
func TestQuickShortestPathValid(t *testing.T) {
	n, err := topology.IBM()
	if err != nil {
		t.Fatal(err)
	}
	nn := len(n.Nodes)
	f := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % nn)
		dst := topology.NodeID(int(b) % nn)
		if src == dst {
			return true
		}
		p, ok := ShortestPath(n, src, dst, nil, nil, nil)
		if !ok {
			return false // IBM is connected
		}
		return ValidatePath(n, src, dst, p) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fiber-disjoint paths never share a fiber, pairwise.
func TestQuickDisjointness(t *testing.T) {
	n, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	nn := len(n.Nodes)
	f := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % nn)
		dst := topology.NodeID(int(b) % nn)
		if src == dst {
			return true
		}
		paths := FiberDisjointPaths(n, src, dst, 4, nil)
		for i := range paths {
			fi := PathFibers(n, paths[i])
			for j := i + 1; j < len(paths); j++ {
				for f := range PathFibers(n, paths[j]) {
					if fi[f] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
