package routing

import (
	"fmt"

	"prete/internal/topology"
)

// FlowID identifies a source-destination site pair carrying demand.
type FlowID int

// Flow is a source-destination pair ("a flow" in the paper's terminology).
type Flow struct {
	ID       FlowID
	Src, Dst topology.NodeID
}

// TunnelID identifies a tunnel within a TunnelSet.
type TunnelID int

// Tunnel is an end-to-end path for one flow, annotated with the fibers it
// traverses so failure scenarios can be applied in O(1).
type Tunnel struct {
	ID     TunnelID
	Flow   FlowID
	Links  Path
	Fibers map[topology.FiberID]bool
	// New marks tunnels established reactively by Algorithm 1 in response
	// to a degradation signal (the paper's Y^s_f), as opposed to the
	// pre-established set T_f.
	New bool
}

// AvailableUnder reports whether the tunnel survives when the given fibers
// are cut — membership in T_{f,q} (or Y^s_{f,q}) for failure scenario q.
func (t *Tunnel) AvailableUnder(cut map[topology.FiberID]bool) bool {
	for f := range cut {
		if cut[f] && t.Fibers[f] {
			return false
		}
	}
	return true
}

// UsesFiber reports whether the tunnel's lightpath crosses fiber f.
func (t *Tunnel) UsesFiber(f topology.FiberID) bool { return t.Fibers[f] }

// TunnelSet is the tunnel table for a network: all flows and their tunnels.
type TunnelSet struct {
	Net     *topology.Network
	Flows   []Flow
	Tunnels []Tunnel
	byFlow  map[FlowID][]TunnelID
}

// Flows derives the flow set the simulations use: one flow per directed IP
// adjacency (site pairs joined by a direct IP link), which reproduces
// Table 3's tunnel counts (#tunnels = 4 x #IP links for B4 and IBM).
func Flows(n *topology.Network) []Flow {
	var flows []Flow
	seen := make(map[[2]topology.NodeID]bool)
	for _, l := range n.Links {
		key := [2]topology.NodeID{l.Src, l.Dst}
		if seen[key] {
			continue
		}
		seen[key] = true
		flows = append(flows, Flow{ID: FlowID(len(flows)), Src: l.Src, Dst: l.Dst})
	}
	return flows
}

// BuildTunnels constructs perFlow tunnels for every flow, mixing k-shortest
// and fiber-disjoint routing per §4.2/§6.1 ("we generate 4 tunnels using
// both fiber-disjoint routing and k-shortest path").
func BuildTunnels(n *topology.Network, flows []Flow, perFlow int) (*TunnelSet, error) {
	if perFlow < 1 {
		return nil, fmt.Errorf("routing: perFlow must be >= 1, got %d", perFlow)
	}
	ts := &TunnelSet{Net: n, Flows: flows, byFlow: make(map[FlowID][]TunnelID)}
	for _, fl := range flows {
		paths := tunnelPathsForFlow(n, fl.Src, fl.Dst, perFlow)
		if len(paths) == 0 {
			return nil, fmt.Errorf("routing: no path for flow %d (%d->%d)", fl.ID, fl.Src, fl.Dst)
		}
		for _, p := range paths {
			ts.addTunnel(fl.ID, p, false)
		}
	}
	return ts, nil
}

// tunnelPathsForFlow merges fiber-disjoint paths (for survivability) with
// k-shortest paths (for capacity) and deduplicates, capped at perFlow.
func tunnelPathsForFlow(n *topology.Network, src, dst topology.NodeID, perFlow int) []Path {
	disjoint := FiberDisjointPaths(n, src, dst, (perFlow+1)/2, nil)
	shortest := KShortest(n, src, dst, perFlow, nil)
	var out []Path
	seen := make(map[string]bool)
	add := func(p Path) {
		if len(out) >= perFlow {
			return
		}
		k := pathKey(p)
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, p)
	}
	for _, p := range disjoint {
		add(p)
	}
	for _, p := range shortest {
		add(p)
	}
	return out
}

func (ts *TunnelSet) addTunnel(flow FlowID, p Path, isNew bool) TunnelID {
	id := TunnelID(len(ts.Tunnels))
	ts.Tunnels = append(ts.Tunnels, Tunnel{
		ID: id, Flow: flow, Links: p,
		Fibers: PathFibers(ts.Net, p),
		New:    isNew,
	})
	ts.byFlow[flow] = append(ts.byFlow[flow], id)
	return id
}

// AddTunnel registers a reactively established tunnel (Algorithm 1 output)
// and returns its ID.
func (ts *TunnelSet) AddTunnel(flow FlowID, p Path) TunnelID {
	return ts.addTunnel(flow, p, true)
}

// TunnelsOf returns the tunnel IDs serving a flow (pre-established first,
// then reactive ones in insertion order).
func (ts *TunnelSet) TunnelsOf(f FlowID) []TunnelID { return ts.byFlow[f] }

// Tunnel returns the tunnel with the given ID.
func (ts *TunnelSet) Tunnel(id TunnelID) *Tunnel { return &ts.Tunnels[int(id)] }

// NumTunnels returns the total tunnel count (Table 3's #Tunnels).
func (ts *TunnelSet) NumTunnels() int { return len(ts.Tunnels) }

// FlowsThroughFiber returns the flows having at least one tunnel whose
// lightpath crosses fiber f — the flows Algorithm 1 must re-tunnel when f
// degrades, and the basis for Fig 1(c)'s "affected flows" metric.
func (ts *TunnelSet) FlowsThroughFiber(f topology.FiberID) []FlowID {
	var out []FlowID
	for _, fl := range ts.Flows {
		for _, tid := range ts.byFlow[fl.ID] {
			if ts.Tunnels[int(tid)].UsesFiber(f) {
				out = append(out, fl.ID)
				break
			}
		}
	}
	return out
}

// TunnelsThroughFiber returns the tunnels crossing fiber f.
func (ts *TunnelSet) TunnelsThroughFiber(f topology.FiberID) []TunnelID {
	var out []TunnelID
	for _, t := range ts.Tunnels {
		if t.UsesFiber(f) {
			out = append(out, t.ID)
		}
	}
	return out
}

// ResidualCoverage reports, for each fiber, whether every flow retains at
// least one available pre-established tunnel when that fiber alone is cut —
// the §4.2 invariant "at least one residual tunnel exists for every flow
// under each failure scenario". It returns the fibers violating it.
func (ts *TunnelSet) ResidualCoverage() []topology.FiberID {
	var violations []topology.FiberID
	for _, f := range ts.Net.Fibers {
		cut := map[topology.FiberID]bool{f.ID: true}
		for _, fl := range ts.Flows {
			ok := false
			for _, tid := range ts.byFlow[fl.ID] {
				t := &ts.Tunnels[int(tid)]
				if !t.New && t.AvailableUnder(cut) {
					ok = true
					break
				}
			}
			if !ok {
				violations = append(violations, f.ID)
				break
			}
		}
	}
	return violations
}

// DropReactive returns a copy containing only the pre-established tunnels —
// §4.2's restoration "to its original state" once the failure is repaired
// or the TE period passes without one. Tunnel IDs are reassigned densely.
func (ts *TunnelSet) DropReactive() *TunnelSet {
	out := &TunnelSet{
		Net:    ts.Net,
		Flows:  append([]Flow(nil), ts.Flows...),
		byFlow: make(map[FlowID][]TunnelID),
	}
	for _, t := range ts.Tunnels {
		if t.New {
			continue
		}
		out.addTunnel(t.Flow, append(Path(nil), t.Links...), false)
	}
	return out
}

// Clone returns a deep copy of the tunnel set; reactive tunnel updates
// operate on clones so that the pre-established table ("its original state",
// §4.2) can be restored after a TE period without a failure.
func (ts *TunnelSet) Clone() *TunnelSet {
	cp := &TunnelSet{
		Net:     ts.Net,
		Flows:   append([]Flow(nil), ts.Flows...),
		Tunnels: make([]Tunnel, len(ts.Tunnels)),
		byFlow:  make(map[FlowID][]TunnelID, len(ts.byFlow)),
	}
	for i, t := range ts.Tunnels {
		fibers := make(map[topology.FiberID]bool, len(t.Fibers))
		for f, v := range t.Fibers {
			fibers[f] = v
		}
		cp.Tunnels[i] = Tunnel{ID: t.ID, Flow: t.Flow, Links: append(Path(nil), t.Links...), Fibers: fibers, New: t.New}
	}
	for f, ids := range ts.byFlow {
		cp.byFlow[f] = append([]TunnelID(nil), ids...)
	}
	return cp
}
