// Package routing builds the tunnel layer of the TE system: shortest paths
// (Dijkstra), k-shortest paths (Yen's algorithm), fiber-disjoint paths, and
// the per-flow tunnel sets PreTE routes traffic on. Per §4.2, tunnels are
// initialized with "both k-shortest path routing and fiber-disjoint routing
// algorithms", four tunnels per flow (§6.1), ensuring at least one residual
// tunnel exists for every flow under each single-fiber failure where the
// graph allows it.
package routing

import (
	"container/heap"
	"fmt"
	"sort"

	"prete/internal/topology"
)

// Path is an ordered sequence of directed IP links from a source to a
// destination.
type Path []topology.LinkID

// Weight is a link cost function; nil means the fiber-length metric.
type Weight func(topology.Link) float64

// lengthWeight costs a link by the total fiber distance its lightpath spans.
func lengthWeight(n *topology.Network) Weight {
	return func(l topology.Link) float64 {
		var km float64
		for _, f := range l.Fibers {
			km += n.Fiber(f).LengthKm
		}
		if km <= 0 {
			km = 1
		}
		return km
	}
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node topology.NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst over links not in bannedLinks
// and not touching nodes in bannedNodes (intermediate hops only; src/dst are
// always allowed). It returns the path and true, or nil and false when dst
// is unreachable.
func ShortestPath(n *topology.Network, src, dst topology.NodeID, w Weight,
	bannedLinks map[topology.LinkID]bool, bannedNodes map[topology.NodeID]bool) (Path, bool) {
	if w == nil {
		w = lengthWeight(n)
	}
	dist := make(map[topology.NodeID]float64)
	prev := make(map[topology.NodeID]topology.LinkID)
	visited := make(map[topology.NodeID]bool)
	q := &pq{{node: src, dist: 0}}
	dist[src] = 0
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		if it.node == dst {
			break
		}
		if it.node != src && bannedNodes[it.node] {
			continue
		}
		for _, lid := range n.OutLinks(it.node) {
			if bannedLinks[lid] {
				continue
			}
			link := n.Link(lid)
			if link.Dst != dst && bannedNodes[link.Dst] {
				continue
			}
			nd := it.dist + w(link)
			if cur, ok := dist[link.Dst]; !ok || nd < cur {
				dist[link.Dst] = nd
				prev[link.Dst] = lid
				heap.Push(q, pqItem{node: link.Dst, dist: nd})
			}
		}
	}
	if !visited[dst] {
		return nil, false
	}
	var rev Path
	for at := dst; at != src; {
		lid := prev[at]
		rev = append(rev, lid)
		at = n.Link(lid).Src
	}
	// reverse in place
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// pathCost sums the weight of a path.
func pathCost(n *topology.Network, p Path, w Weight) float64 {
	var c float64
	for _, lid := range p {
		c += w(n.Link(lid))
	}
	return c
}

// KShortest returns up to k loopless shortest paths from src to dst using
// Yen's algorithm, ordered by increasing cost.
func KShortest(n *topology.Network, src, dst topology.NodeID, k int, w Weight) []Path {
	if w == nil {
		w = lengthWeight(n)
	}
	first, ok := ShortestPath(n, src, dst, w, nil, nil)
	if !ok {
		return nil
	}
	paths := []Path{first}
	type candidate struct {
		path Path
		cost float64
	}
	var candidates []candidate
	seen := map[string]bool{pathKey(first): true}

	for len(paths) < k {
		prevPath := paths[len(paths)-1]
		// Spur from every node of the previous path.
		for i := 0; i < len(prevPath); i++ {
			spurNode := src
			if i > 0 {
				spurNode = n.Link(prevPath[i-1]).Dst
			}
			rootPath := prevPath[:i]
			bannedLinks := make(map[topology.LinkID]bool)
			for _, p := range paths {
				if len(p) > i && samePrefix(p, rootPath, i) {
					bannedLinks[p[i]] = true
				}
			}
			bannedNodes := make(map[topology.NodeID]bool)
			at := src
			for _, lid := range rootPath {
				bannedNodes[at] = true
				at = n.Link(lid).Dst
			}
			spur, ok := ShortestPath(n, spurNode, dst, w, bannedLinks, bannedNodes)
			if !ok {
				continue
			}
			total := append(append(Path(nil), rootPath...), spur...)
			key := pathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, candidate{path: total, cost: pathCost(n, total, w)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].cost < candidates[b].cost })
		paths = append(paths, candidates[0].path)
		candidates = candidates[1:]
	}
	return paths
}

func samePrefix(p Path, root Path, i int) bool {
	if len(p) < i {
		return false
	}
	for j := 0; j < i; j++ {
		if p[j] != root[j] {
			return false
		}
	}
	return true
}

func pathKey(p Path) string {
	b := make([]byte, 0, len(p)*3)
	for _, l := range p {
		b = append(b, byte(l), byte(l>>8), ',')
	}
	return string(b)
}

// FiberDisjointPaths returns up to k paths from src to dst that pairwise
// share no fiber: after each path is found, every link riding any of its
// fibers is banned.
func FiberDisjointPaths(n *topology.Network, src, dst topology.NodeID, k int, w Weight) []Path {
	if w == nil {
		w = lengthWeight(n)
	}
	banned := make(map[topology.LinkID]bool)
	var out []Path
	for len(out) < k {
		p, ok := ShortestPath(n, src, dst, w, banned, nil)
		if !ok {
			break
		}
		out = append(out, p)
		for _, lid := range p {
			for _, f := range n.Link(lid).Fibers {
				for _, other := range n.LinksOnFiber(f) {
					banned[other] = true
				}
			}
		}
	}
	return out
}

// PathFibers returns the set of fibers a path's lightpaths traverse.
func PathFibers(n *topology.Network, p Path) map[topology.FiberID]bool {
	fibers := make(map[topology.FiberID]bool)
	for _, lid := range p {
		for _, f := range n.Link(lid).Fibers {
			fibers[f] = true
		}
	}
	return fibers
}

// ValidatePath checks that p is a connected src->dst walk.
func ValidatePath(n *topology.Network, src, dst topology.NodeID, p Path) error {
	if len(p) == 0 {
		return fmt.Errorf("routing: empty path")
	}
	at := src
	for i, lid := range p {
		link := n.Link(lid)
		if link.Src != at {
			return fmt.Errorf("routing: hop %d starts at %d, expected %d", i, link.Src, at)
		}
		at = link.Dst
	}
	if at != dst {
		return fmt.Errorf("routing: path ends at %d, want %d", at, dst)
	}
	return nil
}
