// Package obs is the repository's observability layer: a small,
// dependency-free, concurrency-safe metrics registry with counters, gauges,
// fixed-bucket histograms, and stage timers, plus deterministic text/JSON
// snapshot output.
//
// Design rules, in the order they matter to this repo:
//
//   - Nil-safe / zero-cost-when-disabled. Every method on *Registry and on
//     the metric handles is a no-op on a nil receiver, so instrumented code
//     carries a possibly-nil *Registry and never branches on it:
//
//     reg.Counter("core.benders.iterations").Add(int64(iters))
//
//     With reg == nil the chain costs two nil checks and no allocation. The
//     Timer.Start / Timer.Stop pair does not even read the clock when the
//     timer is nil, so disabled instrumentation cannot perturb performance
//     measurements.
//
//   - Must not perturb results. Metrics are write-only side channels: no
//     instrumented code path reads a metric to make a decision, so optimizer
//     and evaluator outputs are bit-identical with metrics on and off (the
//     regression tests in internal/core assert this).
//
//   - Deterministic snapshots. Snapshot output is sorted by metric name, and
//     the JSON encoding of two registries that observed the same values is
//     byte-identical. (Timer values are wall-clock and therefore vary run to
//     run; counters, gauges, and histograms fed deterministic values are
//     fully reproducible.)
//
//   - Concurrency-safe. Handles use atomics; the registry maps are guarded
//     by a mutex only on handle resolution, which hot paths do once up front
//     (see the unexported *Obs structs in core, sim, telemetry, par, wan).
//
// The registry is exposed to operators via expvar (PublishExpvar) and an
// optional net/http/pprof-enabled debug endpoint (ServeDebug); the CLIs wire
// these behind `prete-sim -metrics` and `prete-testbed -debug-addr`.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named-metric namespace. The zero value is not usable; use
// NewRegistry. A nil *Registry is the "metrics disabled" state: every method
// no-ops and every handle it returns is nil (which also no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Enabled reports whether the registry collects metrics (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns (creating on first use) the named counter, or nil when the
// registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge, or nil when the
// registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named fixed-bucket
// histogram, or nil when the registry is nil. bounds are the inclusive
// bucket upper edges and must be sorted ascending; an implicit +Inf overflow
// bucket is appended. On the first call the bounds are fixed; later calls
// return the existing histogram regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timer returns (creating on first use) the named stage timer, or nil when
// the registry is nil.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Counter is a monotonically increasing int64. All methods are nil-safe and
// safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. All methods are nil-safe and safe for
// concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (atomic read-modify-write).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts values
// v with v <= Bounds[i] (and, for i > 0, v > Bounds[i-1]); the final bucket
// is the +Inf overflow. All methods are nil-safe and safe for concurrent
// use; Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b) // defensive: edges must ascend for SearchFloat64s
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper edge is >= v; equality lands on the edge's
	// own bucket (inclusive upper bounds, "le" semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values (0 for nil). Concurrent observers
// make the accumulation order nondeterministic, so Sum is bit-reproducible
// only for serial (or commutative-exact, e.g. integer-valued) workloads.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}
