package obs

import (
	"sync/atomic"
	"time"
)

// Timer accumulates stage durations: count, total, and max. All methods are
// nil-safe and safe for concurrent use.
//
// The Start/Stop pair is the zero-cost-when-disabled idiom:
//
//	start := m.masterTime.Start() // no clock read when the timer is nil
//	sol := solveMaster(...)
//	m.masterTime.Stop(start)
//
// On a nil timer Start returns the zero time without touching the clock and
// Stop discards it, so disabled instrumentation adds only two nil checks.
type Timer struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// Start returns the current time, or the zero time on a nil timer.
func (t *Timer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop records the duration since start (a Start result). Zero start values
// (from a nil-timer Start) are discarded.
func (t *Timer) Stop(start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.Observe(time.Since(start))
}

// Observe records one duration directly.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	t.count.Add(1)
	t.totalNs.Add(ns)
	for {
		old := t.maxNs.Load()
		if ns <= old || t.maxNs.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Count returns the number of recorded durations (0 for nil).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration (0 for nil).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.totalNs.Load())
}

// Max returns the largest recorded duration (0 for nil).
func (t *Timer) Max() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.maxNs.Load())
}
