package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// PublishExpvar exposes the registry's live snapshot as the named expvar
// variable (visible on /debug/vars of any expvar-serving endpoint,
// including this package's debug server). Publishing the same name twice is
// a no-op rather than the expvar panic, so CLIs and tests can call it
// unconditionally. Nil registries are not published.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// DebugHandler returns an http.Handler serving the operator surface:
//
//	/metrics        JSON snapshot of the registry
//	/metrics.txt    line-oriented snapshot
//	/debug/vars     expvar (includes anything PublishExpvar exposed)
//	/debug/pprof/*  net/http/pprof profiles
//
// The registry may be nil; /metrics then serves an empty snapshot and the
// pprof routes still work, so a debug endpoint is useful even without
// metrics collection.
func DebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr (":0" picks a free port) and serves DebugHandler in
// a background goroutine. It returns the bound address and a closer that
// shuts the server down.
func ServeDebug(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
