package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// populate performs a fixed, deterministic sequence of metric operations.
func populate(r *Registry) {
	r.Counter("a.count").Add(3)
	r.Counter("b.count").Inc()
	r.Counter("z.count").Add(40)
	r.Gauge("g.level").Set(2.5)
	r.Gauge("g.level").Add(0.25)
	h := r.Histogram("h.sizes", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e6} {
		h.Observe(v)
	}
	r.Timer("t.stage").Observe(1500 * time.Microsecond)
	r.Timer("t.stage").Observe(500 * time.Microsecond)
}

// TestSnapshotDeterminism: two registries fed the identical operation
// sequence must produce byte-identical JSON and text snapshots.
func TestSnapshotDeterminism(t *testing.T) {
	var bufs [2]bytes.Buffer
	var txts [2]bytes.Buffer
	for i := range bufs {
		r := NewRegistry()
		populate(r)
		if err := r.WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteText(&txts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Errorf("JSON snapshots differ:\n%s\n---\n%s", bufs[0].String(), bufs[1].String())
	}
	if !bytes.Equal(txts[0].Bytes(), txts[1].Bytes()) {
		t.Errorf("text snapshots differ:\n%s\n---\n%s", txts[0].String(), txts[1].String())
	}
	// The JSON must round-trip as a Snapshot and keep the recorded values.
	var s Snapshot
	if err := json.Unmarshal(bufs[0].Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if s.Counters["a.count"] != 3 || s.Counters["z.count"] != 40 {
		t.Errorf("counters lost in round-trip: %+v", s.Counters)
	}
	if s.Gauges["g.level"] != 2.75 {
		t.Errorf("gauge = %v, want 2.75", s.Gauges["g.level"])
	}
}

// TestHistogramBucketEdges pins the inclusive-upper-edge ("le") semantics,
// including values exactly on an edge and overflow past the last edge.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", []float64{1, 10, 100})
	cases := []struct {
		v      float64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // v <= 1
		{1.0000001, 1}, {10, 1}, // 1 < v <= 10
		{10.5, 2}, {100, 2}, // 10 < v <= 100
		{100.5, 3}, {1e9, 3}, // overflow
	}
	for _, c := range cases {
		before := make([]int64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range h.counts {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%g): bucket %d = %d, want %d", c.v, i, got, want)
			}
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
	// Unsorted bounds are sorted defensively at creation.
	h2 := r.Histogram("unsorted", []float64{100, 1, 10})
	h2.Observe(5)
	if got := h2.counts[1].Load(); got != 1 {
		t.Errorf("unsorted-bounds histogram put 5 in the wrong bucket")
	}
}

// TestConcurrentIncrements hammers every metric kind from many goroutines;
// run under -race this is the concurrency-safety proof, and the totals
// check catches lost updates.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{0.5}).Observe(1)
				r.Timer("t").Observe(time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	const want = workers * perWorker
	if got := r.Counter("c").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g").Value(); got != want {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	h := r.Histogram("h", nil)
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := h.Sum(); got != want {
		t.Errorf("histogram sum = %g, want %d", got, want)
	}
	if got := r.Timer("t").Count(); got != want {
		t.Errorf("timer count = %d, want %d", got, want)
	}
}

// TestNilRegistrySafe: the full instrumentation surface must no-op (not
// panic) on the nil registry, and nil-timer Start must not read the clock
// (asserted via the zero time contract).
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(1)
	r.Histogram("x", []float64{1}).Observe(2)
	start := r.Timer("x").Start()
	if !start.IsZero() {
		t.Error("nil timer Start read the clock")
	}
	r.Timer("x").Stop(start)
	r.Timer("x").Observe(time.Second)
	r.PublishExpvar("obs-nil-test")
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Timers) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"counters": {}`) {
		t.Errorf("nil snapshot JSON missing empty sections: %s", buf.String())
	}
}

// TestTimerStages exercises the Start/Stop pair and the max tracking.
func TestTimerStages(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("stage")
	st := tm.Start()
	if st.IsZero() {
		t.Fatal("enabled timer returned zero start")
	}
	tm.Stop(st)
	tm.Observe(5 * time.Millisecond)
	tm.Observe(2 * time.Millisecond)
	if tm.Count() != 3 {
		t.Errorf("count = %d, want 3", tm.Count())
	}
	if tm.Max() < 5*time.Millisecond {
		t.Errorf("max = %v, want >= 5ms", tm.Max())
	}
	if tm.Total() < tm.Max() {
		t.Errorf("total %v < max %v", tm.Total(), tm.Max())
	}
	// Stop with a zero time (the nil-Start contract) records nothing.
	tm.Stop(time.Time{})
	if tm.Count() != 3 {
		t.Errorf("Stop(zero) recorded a sample")
	}
}

// TestDebugEndpoint boots the debug server on a free port and checks the
// /metrics, /metrics.txt, /debug/vars, and pprof index routes respond.
func TestDebugEndpoint(t *testing.T) {
	r := NewRegistry()
	populate(r)
	r.PublishExpvar("obs-debug-test")
	addr, closeFn, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := closeFn(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, `"a.count": 3`) {
		t.Errorf("/metrics missing counter: %s", body)
	}
	if body := get("/metrics.txt"); !strings.Contains(body, "a.count") {
		t.Errorf("/metrics.txt missing counter: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "obs-debug-test") {
		t.Errorf("/debug/vars missing published registry")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index not served")
	}
}
