package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of a registry's metrics, suitable for
// JSON encoding. Maps encode with sorted keys (encoding/json's behaviour),
// so two snapshots holding equal values marshal to byte-identical JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Timers     map[string]TimerSnapshot     `json:"timers"`
}

// HistogramSnapshot is one histogram's frozen state. Counts is parallel to
// Bounds plus one trailing +Inf overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// TimerSnapshot is one timer's frozen state, in milliseconds.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty (but fully initialized) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Timers:     map[string]TimerSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	for name, t := range r.timers {
		ts := TimerSnapshot{
			Count:   t.Count(),
			TotalMS: float64(t.Total().Nanoseconds()) / 1e6,
			MaxMS:   float64(t.Max().Nanoseconds()) / 1e6,
		}
		if ts.Count > 0 {
			ts.MeanMS = ts.TotalMS / float64(ts.Count)
		}
		s.Timers[name] = ts
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
// Output is deterministic for deterministic metric values: keys sort, and
// float formatting is encoding/json's shortest round-trip form.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText writes a line-oriented human-readable snapshot, one metric per
// line, sorted by name within each section.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("counter %-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("gauge   %-40s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p("hist    %-40s count=%d sum=%g buckets=", name, h.Count, h.Sum)
		for i, c := range h.Counts {
			edge := "+Inf"
			if i < len(h.Bounds) {
				edge = fmt.Sprintf("%g", h.Bounds[i])
			}
			if i > 0 {
				p(" ")
			}
			p("le(%s)=%d", edge, c)
		}
		p("\n")
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		p("timer   %-40s count=%d total=%.3fms mean=%.3fms max=%.3fms\n",
			name, t.Count, t.TotalMS, t.MeanMS, t.MaxMS)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DurationBucketsMS returns histogram edges (in milliseconds) covering
// sub-millisecond to multi-minute stages on a roughly logarithmic grid —
// the default bucket layout for solve-time histograms.
func DurationBucketsMS() []float64 {
	return []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000}
}

// CountBuckets returns histogram edges for iteration/pivot-style counts on
// a power-of-two-ish grid.
func CountBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}
}
