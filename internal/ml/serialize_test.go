package ml

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/trace"
)

func trainedTinyNN(t *testing.T) (*NN, []trace.LabeledExample) {
	t.Helper()
	rng := stats.NewRNG(44)
	var data []trace.LabeledExample
	for i := 0; i < 400; i++ {
		degree := 3 + 7*rng.Float64()
		data = append(data, trace.LabeledExample{
			Features: optical.Features{
				DegreeDB: degree, GradientDB: rng.Float64(), Fluctuation: rng.Float64(),
				HourOfDay: rng.Intn(24), FiberID: rng.Intn(6),
				Region: []string{"A", "B"}[rng.Intn(2)], Vendor: "V", LengthKm: 100 + rng.Float64()*900,
			},
			Failed: degree > 6.5,
		})
	}
	cfg := DefaultNNConfig(44)
	cfg.Epochs = 8
	nn, err := TrainNN(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nn, data
}

func TestSaveLoadRoundTrip(t *testing.T) {
	nn, data := trainedTinyNN(t)
	var buf bytes.Buffer
	if err := nn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range data[:100] {
		a := nn.PredictProb(ex.Features)
		b := loaded.PredictProb(ex.Features)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("prediction diverged after round-trip: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadNN(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadNN(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	// right version, broken shapes
	if _, err := LoadNN(strings.NewReader(`{"version":1,"l1":{"in":3,"out":2,"w":[1],"b":[0,0]}}`)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestLoadedModelTrainsNoFurtherStateNeeded(t *testing.T) {
	// A loaded model must be usable for inference without optimizer state.
	nn, data := trainedTinyNN(t)
	var buf bytes.Buffer
	if err := nn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := Evaluate(loaded, data)
	if c.Accuracy() < 0.85 {
		t.Fatalf("loaded model accuracy %v on a separable problem", c.Accuracy())
	}
}
