// Package ml implements the failure-prediction models of §4.1 and §6.3 from
// scratch: the multi-layer perceptron of Appendix A.2 (one-hot and embedded
// categorical inputs, 64-neuron hidden layer, 2-neuron decoder, softmax
// output, negative-log-likelihood loss, L2 regularization, Adam optimizer,
// minority oversampling), a CART decision tree, the per-fiber statistic
// model, and the TeaVar-style naive baseline — the four rows of Table 5.
package ml

import (
	"math"

	"prete/internal/stats"
)

// adamState holds per-parameter Adam moments.
type adamState struct {
	m, v []float64
	t    int
}

// Adam hyperparameters; the learning rate and L2 weight follow Appendix A.2.
const (
	adamBeta1   = 0.9
	adamBeta2   = 0.999
	adamEps     = 1e-8
	LearnRate   = 1e-3
	L2Weight    = 2e-4
	HiddenUnits = 64
)

// step applies one Adam update to params given grads (which it zeroes).
func (a *adamState) step(params, grads []float64, lr, l2 float64) {
	if a.m == nil {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
	}
	a.t++
	bc1 := 1 - math.Pow(adamBeta1, float64(a.t))
	bc2 := 1 - math.Pow(adamBeta2, float64(a.t))
	for i := range params {
		g := grads[i] + l2*params[i]
		a.m[i] = adamBeta1*a.m[i] + (1-adamBeta1)*g
		a.v[i] = adamBeta2*a.v[i] + (1-adamBeta2)*g*g
		params[i] -= lr * (a.m[i] / bc1) / (math.Sqrt(a.v[i]/bc2) + adamEps)
		grads[i] = 0
	}
}

// linear is a fully connected layer y = Wx + b.
type linear struct {
	in, out int
	w, b    []float64 // w is out x in, row-major
	dw, db  []float64
	optW    adamState
	optB    adamState
}

func newLinear(in, out int, rng *stats.RNG) *linear {
	l := &linear{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		dw: make([]float64, in*out),
		db: make([]float64, out),
	}
	// He initialization for ReLU networks.
	scale := math.Sqrt(2 / float64(in))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	return l
}

func (l *linear) forward(x []float64) []float64 {
	y := make([]float64, l.out)
	for o := 0; o < l.out; o++ {
		s := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// backward accumulates gradients given the layer input and dL/dy, returning
// dL/dx.
func (l *linear) backward(x, gradOut []float64) []float64 {
	gradIn := make([]float64, l.in)
	for o := 0; o < l.out; o++ {
		g := gradOut[o]
		if g == 0 {
			continue
		}
		l.db[o] += g
		row := l.w[o*l.in : (o+1)*l.in]
		drow := l.dw[o*l.in : (o+1)*l.in]
		for i, xi := range x {
			drow[i] += g * xi
			gradIn[i] += g * row[i]
		}
	}
	return gradIn
}

func (l *linear) step(lr float64) {
	l.optW.step(l.w, l.dw, lr, L2Weight)
	l.optB.step(l.b, l.db, lr, 0)
}

// embedding maps a categorical index to a learned low-dimensional vector —
// Appendix A.2's "variable embedding" for region and fiber ID, used "to
// reduce the curse of dimensionality".
type embedding struct {
	num, dim int
	w        []float64 // num x dim
	dw       []float64
	opt      adamState
}

func newEmbedding(num, dim int, rng *stats.RNG) *embedding {
	e := &embedding{
		num: num, dim: dim,
		w:  make([]float64, num*dim),
		dw: make([]float64, num*dim),
	}
	for i := range e.w {
		e.w[i] = rng.NormFloat64() * 0.1
	}
	return e
}

func (e *embedding) forward(idx int) []float64 {
	if idx < 0 || idx >= e.num {
		idx = 0
	}
	out := make([]float64, e.dim)
	copy(out, e.w[idx*e.dim:(idx+1)*e.dim])
	return out
}

func (e *embedding) backward(idx int, gradOut []float64) {
	if idx < 0 || idx >= e.num {
		idx = 0
	}
	drow := e.dw[idx*e.dim : (idx+1)*e.dim]
	for i, g := range gradOut {
		drow[i] += g
	}
}

func (e *embedding) step(lr float64) {
	e.opt.step(e.w, e.dw, lr, L2Weight)
}

// relu applies max(0, x) elementwise, returning the output.
func relu(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			y[i] = v
		}
	}
	return y
}

// reluBackward masks gradients where the pre-activation was <= 0.
func reluBackward(pre, gradOut []float64) []float64 {
	g := make([]float64, len(pre))
	for i := range pre {
		if pre[i] > 0 {
			g[i] = gradOut[i]
		}
	}
	return g
}

// softmax returns the normalized probability vector.
func softmax(z []float64) []float64 {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	p := make([]float64, len(z))
	for i, v := range z {
		p[i] = math.Exp(v - maxZ)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}
