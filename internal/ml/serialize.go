package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// nnState is the JSON-serializable snapshot of a trained NN: weights,
// scaler, vocabulary, and feature mask. The §5 workflow trains offline and
// ships the model to the controller; Save/Load are that hand-off.
type nnState struct {
	Version int `json:"version"`

	Mask FeatureMask `json:"mask"`

	ScalerMin [4]float64 `json:"scaler_min"`
	ScalerMax [4]float64 `json:"scaler_max"`

	Regions map[string]int `json:"regions"`
	Vendors map[string]int `json:"vendors"`
	Fibers  int            `json:"fibers"`

	FiberEmb  layerState   `json:"fiber_emb"`
	RegionEmb layerState   `json:"region_emb"`
	VendorEmb layerState   `json:"vendor_emb"`
	L1        layerState   `json:"l1"`
	L2        layerState   `json:"l2"`
	Deep      []layerState `json:"deep,omitempty"`
	Decoder   layerState   `json:"decoder"`
}

type layerState struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b,omitempty"`
}

const nnFormatVersion = 1

// Save writes the trained model as JSON.
func (n *NN) Save(w io.Writer) error {
	st := nnState{
		Version:   nnFormatVersion,
		Mask:      n.mask,
		ScalerMin: n.scaler.min,
		ScalerMax: n.scaler.max,
		Regions:   n.vocab.regions,
		Vendors:   n.vocab.vendors,
		Fibers:    n.vocab.fibers,
		FiberEmb:  layerState{In: n.fiberEmb.num, Out: n.fiberEmb.dim, W: n.fiberEmb.w},
		RegionEmb: layerState{In: n.regionEmb.num, Out: n.regionEmb.dim, W: n.regionEmb.w},
		VendorEmb: layerState{In: n.vendorEmb.num, Out: n.vendorEmb.dim, W: n.vendorEmb.w},
		L1:        layerState{In: n.l1.in, Out: n.l1.out, W: n.l1.w, B: n.l1.b},
		L2:        layerState{In: n.l2.in, Out: n.l2.out, W: n.l2.w, B: n.l2.b},
		Decoder:   layerState{In: n.decoder.in, Out: n.decoder.out, W: n.decoder.w, B: n.decoder.b},
	}
	for _, l := range n.deep {
		st.Deep = append(st.Deep, layerState{In: l.in, Out: l.out, W: l.w, B: l.b})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&st)
}

// LoadNN reads a model previously written by Save.
func LoadNN(r io.Reader) (*NN, error) {
	var st nnState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("ml: decode model: %w", err)
	}
	if st.Version != nnFormatVersion {
		return nil, fmt.Errorf("ml: unsupported model version %d", st.Version)
	}
	n := &NN{
		mask:   st.Mask,
		scaler: &minMaxScaler{min: st.ScalerMin, max: st.ScalerMax},
		vocab:  vocab{regions: st.Regions, vendors: st.Vendors, fibers: st.Fibers},
	}
	if n.vocab.regions == nil {
		n.vocab.regions = map[string]int{}
	}
	if n.vocab.vendors == nil {
		n.vocab.vendors = map[string]int{}
	}
	var err error
	if n.fiberEmb, err = loadEmbedding(st.FiberEmb); err != nil {
		return nil, err
	}
	if n.regionEmb, err = loadEmbedding(st.RegionEmb); err != nil {
		return nil, err
	}
	if n.vendorEmb, err = loadEmbedding(st.VendorEmb); err != nil {
		return nil, err
	}
	if n.l1, err = loadLinear(st.L1); err != nil {
		return nil, err
	}
	if n.l2, err = loadLinear(st.L2); err != nil {
		return nil, err
	}
	if n.decoder, err = loadLinear(st.Decoder); err != nil {
		return nil, err
	}
	for _, dl := range st.Deep {
		l, err := loadLinear(dl)
		if err != nil {
			return nil, err
		}
		n.deep = append(n.deep, l)
	}
	return n, nil
}

func loadLinear(st layerState) (*linear, error) {
	if len(st.W) != st.In*st.Out || len(st.B) != st.Out {
		return nil, fmt.Errorf("ml: linear layer shape mismatch: %dx%d with %d weights, %d biases",
			st.Out, st.In, len(st.W), len(st.B))
	}
	return &linear{
		in: st.In, out: st.Out,
		w: st.W, b: st.B,
		dw: make([]float64, len(st.W)),
		db: make([]float64, len(st.B)),
	}, nil
}

func loadEmbedding(st layerState) (*embedding, error) {
	if len(st.W) != st.In*st.Out {
		return nil, fmt.Errorf("ml: embedding shape mismatch: %dx%d with %d weights", st.In, st.Out, len(st.W))
	}
	return &embedding{
		num: st.In, dim: st.Out,
		w:  st.W,
		dw: make([]float64, len(st.W)),
	}, nil
}
