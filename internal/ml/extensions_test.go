package ml

import (
	"bytes"
	"math"
	"testing"

	"prete/internal/topology"
	"prete/internal/trace"
)

// extendedDataset generates a trace with the §8 extended indicators on.
func extendedDataset(t *testing.T, seed uint64) (train, test []trace.LabeledExample) {
	t.Helper()
	net, err := topology.TWAN(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig(seed)
	cfg.Days = 200
	cfg.ExtendedIndicators = true
	tr, err := trace.Generate(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err = tr.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

// TestExtendedIndicatorsImprovePrediction verifies the §8 claim shape:
// collecting PMD/CD gives the model extra failure signal, so F1 with the
// extended mask beats F1 without it on an extended-indicator world.
func TestExtendedIndicatorsImprovePrediction(t *testing.T) {
	train, test := extendedDataset(t, 77)
	if len(train) < 400 {
		t.Skipf("small dataset: %d", len(train))
	}
	base := DefaultNNConfig(1)
	base.Epochs = 10
	withoutExt, err := TrainNN(train, base)
	if err != nil {
		t.Fatal(err)
	}
	ext := base
	ext.Mask = AllFeatures().WithExtended()
	withExt, err := TrainNN(train, ext)
	if err != nil {
		t.Fatal(err)
	}
	cBase := Evaluate(withoutExt, test)
	cExt := Evaluate(withExt, test)
	t.Logf("without extended: %v", cBase)
	t.Logf("with    extended: %v", cExt)
	if cExt.F1() < cBase.F1()-0.03 {
		t.Fatalf("extended indicators hurt F1: %v vs %v", cExt.F1(), cBase.F1())
	}
}

func TestExtendedMaskPlumbing(t *testing.T) {
	m := AllFeatures()
	if m.Extended {
		t.Fatal("extended should default off (paper baseline)")
	}
	m = m.WithExtended()
	if !m.Extended {
		t.Fatal("WithExtended did not enable")
	}
	m2, err := m.Without("extended")
	if err != nil || m2.Extended {
		t.Fatal("Without(extended) failed")
	}
}

// TestDeepNetworkTrains exercises the ExtraHidden knob: a 2-extra-layer
// network must still learn a separable rule and round-trip through
// serialization.
func TestDeepNetworkTrains(t *testing.T) {
	nnBase, data := trainedTinyNN(t)
	_ = nnBase
	cfg := DefaultNNConfig(44)
	cfg.Epochs = 8
	cfg.ExtraHidden = 2
	deep, err := TrainNN(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(deep.deep) != 2 {
		t.Fatalf("deep layers = %d, want 2", len(deep.deep))
	}
	c := Evaluate(deep, data)
	if c.Accuracy() < 0.85 {
		t.Fatalf("deep network accuracy %v on a separable problem", c.Accuracy())
	}
	var buf bytes.Buffer
	if err := deep.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.deep) != 2 {
		t.Fatalf("loaded deep layers = %d", len(loaded.deep))
	}
	for _, ex := range data[:50] {
		if math.Abs(deep.PredictProb(ex.Features)-loaded.PredictProb(ex.Features)) > 1e-12 {
			t.Fatal("deep model round-trip diverged")
		}
	}
}

// TestDeepGradientCheck numerically validates backprop through the extra
// layers.
func TestDeepGradientCheck(t *testing.T) {
	_, data := trainedTinyNN(t)
	cfg := DefaultNNConfig(5)
	cfg.Epochs = 1
	cfg.ExtraHidden = 1
	nn, err := TrainNN(data[:50], cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := data[0]
	// numeric dL/dw for a few deep-layer weights vs one more training step
	loss := func() float64 {
		a := nn.forward(ex.Features)
		target := 0
		if ex.Failed {
			target = 1
		}
		return -math.Log(a.probs[target] + 1e-12)
	}
	layer := nn.deep[0]
	for _, wi := range []int{0, 7, 100} {
		// analytic gradient via a backward pass with zeroed accumulators
		for i := range layer.dw {
			layer.dw[i] = 0
		}
		a := nn.forward(ex.Features)
		target := 0
		if ex.Failed {
			target = 1
		}
		gradLogits := []float64{a.probs[0], a.probs[1]}
		gradLogits[target]--
		decoderIn := a.deepOut[0]
		grad := nn.decoder.backward(decoderIn, gradLogits)
		gradPre := reluBackward(a.deepPre[0], grad)
		layer.backward(a.h2, gradPre)
		// clear side-effects on the decoder accumulator
		for i := range nn.decoder.dw {
			nn.decoder.dw[i] = 0
		}
		for i := range nn.decoder.db {
			nn.decoder.db[i] = 0
		}
		analytic := layer.dw[wi]
		const h = 1e-6
		orig := layer.w[wi]
		layer.w[wi] = orig + h
		up := loss()
		layer.w[wi] = orig - h
		down := loss()
		layer.w[wi] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-4 {
			t.Fatalf("w[%d]: analytic %v vs numeric %v", wi, analytic, numeric)
		}
	}
}
