package ml

import (
	"fmt"

	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/trace"
)

// NaiveTeaVar is Table 5's "TeaVar" row: the static-probability approach
// that ignores degradation signals entirely and always reports the tiny
// long-run failure probability p_i (<< 0.5), so it never predicts a
// failure — hence P ~ 0 and R ~ 0.
type NaiveTeaVar struct {
	// PI is the static per-epoch failure probability it reports.
	PI float64
}

// PredictProb implements Predictor.
func (n NaiveTeaVar) PredictProb(optical.Features) float64 { return n.PI }

// Name implements Predictor.
func (n NaiveTeaVar) Name() string { return "TeaVar" }

// Statistic is Table 5's "Statistic model": it "models failures based on
// the statistical relationship between degradations and failures" — a
// per-fiber historical conditional failure rate with Laplace smoothing
// toward the global rate.
type Statistic struct {
	global float64
	rates  map[int]float64
}

// TrainStatistic fits the per-fiber rates.
func TrainStatistic(examples []trace.LabeledExample) (*Statistic, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	pos := 0
	counts := make(map[int][2]int)
	for _, ex := range examples {
		c := counts[ex.Features.FiberID]
		c[1]++
		if ex.Failed {
			c[0]++
			pos++
		}
		counts[ex.Features.FiberID] = c
	}
	s := &Statistic{
		global: float64(pos) / float64(len(examples)),
		rates:  make(map[int]float64, len(counts)),
	}
	// Laplace-style smoothing: pseudo-counts worth 4 observations at the
	// global rate keep sparse fibers near the prior.
	const pseudo = 4.0
	for fiber, c := range counts {
		s.rates[fiber] = (float64(c[0]) + pseudo*s.global) / (float64(c[1]) + pseudo)
	}
	return s, nil
}

// PredictProb implements Predictor.
func (s *Statistic) PredictProb(f optical.Features) float64 {
	if r, ok := s.rates[f.FiberID]; ok {
		return r
	}
	return s.global
}

// Name implements Predictor.
func (s *Statistic) Name() string { return "Statistic" }

// Oracle knows the generative failure probability — §6.3's "oracle which
// enables to make the prediction of fiber cuts with 100% accuracy". It
// needs the episode's ground truth, so it predicts via a lookup keyed by
// the episode identity rather than the features.
type Oracle struct {
	outcomes map[oracleKey]bool
}

type oracleKey struct {
	fiber int
	hour  int
	// degree at full precision is unique enough to identify an episode
	degree float64
}

// NewOracle indexes the labeled episodes.
func NewOracle(examples []trace.LabeledExample) *Oracle {
	o := &Oracle{outcomes: make(map[oracleKey]bool, len(examples))}
	for _, ex := range examples {
		o.outcomes[oracleKeyOf(ex.Features)] = ex.Failed
	}
	return o
}

func oracleKeyOf(f optical.Features) oracleKey {
	return oracleKey{fiber: f.FiberID, hour: f.HourOfDay, degree: f.DegreeDB}
}

// PredictProb implements Predictor: 1 when the episode truly fails, else 0.
func (o *Oracle) PredictProb(f optical.Features) float64 {
	if o.outcomes[oracleKeyOf(f)] {
		return 1
	}
	return 0
}

// Name implements Predictor.
func (o *Oracle) Name() string { return "Oracle" }

// Evaluate computes the Table 5 metrics of a predictor on a test set.
func Evaluate(p Predictor, test []trace.LabeledExample) stats.Confusion {
	var c stats.Confusion
	for _, ex := range test {
		c.Observe(PredictLabel(p, ex.Features), ex.Failed)
	}
	return c
}

// PerLinkError computes, per fiber, the mean absolute error between the
// predicted probability and the observed outcome — Fig 14's distribution of
// prediction error across links.
func PerLinkError(p Predictor, test []trace.LabeledExample) []float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for _, ex := range test {
		y := 0.0
		if ex.Failed {
			y = 1
		}
		e := p.PredictProb(ex.Features) - y
		if e < 0 {
			e = -e
		}
		sum[ex.Features.FiberID] += e
		cnt[ex.Features.FiberID]++
	}
	out := make([]float64, 0, len(sum))
	for fiber, s := range sum {
		out = append(out, s/float64(cnt[fiber]))
	}
	return out
}
