package ml

import (
	"fmt"
	"math"
	"sort"

	"prete/internal/optical"
	"prete/internal/trace"
)

// DecisionTree is the CART baseline of Table 5: it "takes the features of
// degradation to make the prediction" — the four critical features plus
// fiber length, without the learned embeddings that let the NN exploit
// fiber identity.
type DecisionTree struct {
	root *dtNode
	cfg  DTConfig
}

// DTConfig bounds tree growth.
type DTConfig struct {
	MaxDepth       int
	MinLeafSamples int
}

// DefaultDTConfig returns conservative growth limits.
func DefaultDTConfig() DTConfig { return DTConfig{MaxDepth: 6, MinLeafSamples: 10} }

type dtNode struct {
	// leaf
	prob float64
	leaf bool
	// split
	feature     int
	threshold   float64
	left, right *dtNode
}

const dtNumFeatures = 5

func dtFeatures(f optical.Features) [dtNumFeatures]float64 {
	return [dtNumFeatures]float64{
		float64(f.HourOfDay), f.DegreeDB, f.GradientDB, f.Fluctuation, f.LengthKm,
	}
}

// TrainDT fits a CART tree with Gini impurity splits.
func TrainDT(examples []trace.LabeledExample, cfg DTConfig) (*DecisionTree, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinLeafSamples <= 0 {
		cfg.MinLeafSamples = 1
	}
	type row struct {
		x [dtNumFeatures]float64
		y bool
	}
	rows := make([]row, len(examples))
	for i, ex := range examples {
		rows[i] = row{x: dtFeatures(ex.Features), y: ex.Failed}
	}
	var build func(rows []row, depth int) *dtNode
	build = func(rows []row, depth int) *dtNode {
		pos := 0
		for _, r := range rows {
			if r.y {
				pos++
			}
		}
		prob := float64(pos) / float64(len(rows))
		if depth >= cfg.MaxDepth || len(rows) < 2*cfg.MinLeafSamples || pos == 0 || pos == len(rows) {
			return &dtNode{leaf: true, prob: prob}
		}
		bestFeature, bestThresh, bestGini := -1, 0.0, giniOf(pos, len(rows))
		for fIdx := 0; fIdx < dtNumFeatures; fIdx++ {
			sorted := make([]row, len(rows))
			copy(sorted, rows)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].x[fIdx] < sorted[j].x[fIdx] })
			leftPos := 0
			for i := 0; i < len(sorted)-1; i++ {
				if sorted[i].y {
					leftPos++
				}
				if sorted[i].x[fIdx] == sorted[i+1].x[fIdx] {
					continue
				}
				nl := i + 1
				nr := len(sorted) - nl
				if nl < cfg.MinLeafSamples || nr < cfg.MinLeafSamples {
					continue
				}
				g := (float64(nl)*giniOf(leftPos, nl) + float64(nr)*giniOf(pos-leftPos, nr)) / float64(len(sorted))
				if g < bestGini-1e-12 {
					bestGini = g
					bestFeature = fIdx
					bestThresh = (sorted[i].x[fIdx] + sorted[i+1].x[fIdx]) / 2
				}
			}
		}
		if bestFeature < 0 {
			return &dtNode{leaf: true, prob: prob}
		}
		var left, right []row
		for _, r := range rows {
			if r.x[bestFeature] <= bestThresh {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		return &dtNode{
			feature:   bestFeature,
			threshold: bestThresh,
			left:      build(left, depth+1),
			right:     build(right, depth+1),
		}
	}
	return &DecisionTree{root: build(rows, 0), cfg: cfg}, nil
}

func giniOf(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProb implements Predictor.
func (t *DecisionTree) PredictProb(f optical.Features) float64 {
	x := dtFeatures(f)
	node := t.root
	for !node.leaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.prob
}

// Name implements Predictor.
func (t *DecisionTree) Name() string { return "DT" }

// Depth returns the tree's maximum depth (for inspection/tests).
func (t *DecisionTree) Depth() int {
	var depth func(n *dtNode) int
	depth = func(n *dtNode) int {
		if n.leaf {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		return 1 + int(math.Max(float64(l), float64(r)))
	}
	return depth(t.root)
}
