package ml

import (
	"math"
	"testing"

	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/topology"
	"prete/internal/trace"
)

// dataset generates a year-scale labeled dataset with the paper's split.
func dataset(t *testing.T, seed uint64) (train, test []trace.LabeledExample) {
	t.Helper()
	net, err := topology.TWAN(seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.DefaultConfig(seed), net)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err = tr.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestSoftmax(t *testing.T) {
	p := softmax([]float64{1, 1})
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Fatalf("softmax = %v", p)
	}
	p = softmax([]float64{1000, 0}) // must not overflow
	if p[0] < 0.999 || math.IsNaN(p[0]) {
		t.Fatalf("softmax overflow: %v", p)
	}
	if math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Fatalf("softmax not normalized: %v", p)
	}
}

func TestReLU(t *testing.T) {
	y := relu([]float64{-1, 0, 2})
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Fatalf("relu = %v", y)
	}
	g := reluBackward([]float64{-1, 0, 2}, []float64{5, 5, 5})
	if g[0] != 0 || g[1] != 0 || g[2] != 5 {
		t.Fatalf("relu backward = %v", g)
	}
}

func TestLinearGradient(t *testing.T) {
	// numeric gradient check on a 2x3 layer
	rng := stats.NewRNG(1)
	l := newLinear(3, 2, rng)
	x := []float64{0.5, -1, 2}
	loss := func() float64 {
		y := l.forward(x)
		return y[0]*y[0] + 2*y[1]
	}
	base0 := l.forward(x)
	gradOut := []float64{2 * base0[0], 2}
	gradIn := l.backward(x, gradOut)
	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		up := loss()
		x[i] = orig - h
		down := loss()
		x[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-gradIn[i]) > 1e-4 {
			t.Fatalf("dL/dx[%d]: analytic %v vs numeric %v", i, gradIn[i], numeric)
		}
	}
	// weight gradient check
	for wi := 0; wi < len(l.w); wi++ {
		orig := l.w[wi]
		l.w[wi] = orig + h
		up := loss()
		l.w[wi] = orig - h
		down := loss()
		l.w[wi] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-l.dw[wi]) > 1e-4 {
			t.Fatalf("dL/dw[%d]: analytic %v vs numeric %v", wi, l.dw[wi], numeric)
		}
	}
}

func TestAdamConverges(t *testing.T) {
	// minimize (x-3)^2 via adamState
	var st adamState
	params := []float64{0}
	grads := []float64{0}
	for i := 0; i < 3000; i++ {
		grads[0] = 2 * (params[0] - 3)
		st.step(params, grads, 0.05, 0)
	}
	if math.Abs(params[0]-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", params[0])
	}
}

func TestOversampleBalances(t *testing.T) {
	var ex []trace.LabeledExample
	for i := 0; i < 60; i++ {
		ex = append(ex, trace.LabeledExample{Failed: false})
	}
	for i := 0; i < 40; i++ {
		ex = append(ex, trace.LabeledExample{Failed: true})
	}
	out := Oversample(ex, stats.NewRNG(1))
	pos, neg := 0, 0
	for _, e := range out {
		if e.Failed {
			pos++
		} else {
			neg++
		}
	}
	if pos != neg {
		t.Fatalf("oversample left %d pos vs %d neg", pos, neg)
	}
	// degenerate inputs pass through
	if got := Oversample(ex[:5], stats.NewRNG(1)); len(got) != 5 {
		t.Fatalf("single-class oversample changed size: %d", len(got))
	}
}

func TestFeatureMaskWithout(t *testing.T) {
	m := AllFeatures()
	m2, err := m.Without("fiberID")
	if err != nil {
		t.Fatal(err)
	}
	if m2.FiberID || !m2.Time {
		t.Fatalf("mask = %+v", m2)
	}
	if _, err := m.Without("nonsense"); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

func TestNNLearnsSyntheticRule(t *testing.T) {
	// A separable rule: fail iff degree > 6.5. The NN must learn it.
	rng := stats.NewRNG(5)
	var train, test []trace.LabeledExample
	mk := func(n int) []trace.LabeledExample {
		out := make([]trace.LabeledExample, n)
		for i := range out {
			degree := 3 + 7*rng.Float64()
			out[i] = trace.LabeledExample{
				Features: optical.Features{
					DegreeDB: degree, GradientDB: rng.Float64(),
					Fluctuation: rng.Float64(), HourOfDay: rng.Intn(24),
					FiberID: rng.Intn(10), Region: "R", Vendor: "V", LengthKm: 100,
				},
				Failed: degree > 6.5,
			}
		}
		return out
	}
	train, test = mk(800), mk(200)
	cfg := DefaultNNConfig(7)
	cfg.Epochs = 15
	nn, err := TrainNN(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Evaluate(nn, test)
	if c.Accuracy() < 0.9 {
		t.Fatalf("NN failed to learn a separable rule: %v", c)
	}
}

func TestTable5Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	// The Table 5 ranking must reproduce: NN > DT and Statistic, all far
	// above the naive TeaVar baseline.
	train, test := dataset(t, 2025)
	if len(train) < 500 || len(test) < 100 {
		t.Skipf("dataset too small: %d/%d", len(train), len(test))
	}
	nnCfg := DefaultNNConfig(1)
	nnCfg.Epochs = 12
	nn, err := TrainNN(train, nnCfg)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := TrainDT(train, DefaultDTConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := TrainStatistic(train)
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveTeaVar{PI: 0.003}

	cNN := Evaluate(nn, test)
	cDT := Evaluate(dt, test)
	cST := Evaluate(st, test)
	cNaive := Evaluate(naive, test)

	t.Logf("NN %v", cNN)
	t.Logf("DT %v", cDT)
	t.Logf("Statistic %v", cST)
	t.Logf("TeaVar %v", cNaive)

	if cNaive.Recall() != 0 {
		t.Errorf("naive TeaVar should never predict failure, R = %v", cNaive.Recall())
	}
	if cNN.F1() < 0.6 {
		t.Errorf("NN F1 = %v, want >= 0.6 (paper: 0.81)", cNN.F1())
	}
	if cNN.F1() <= cST.F1() {
		t.Errorf("NN (%v) should beat Statistic (%v)", cNN.F1(), cST.F1())
	}
	if cNN.F1() <= cNaive.F1() {
		t.Errorf("NN should beat the naive baseline")
	}
}

func TestDTLearnsThreshold(t *testing.T) {
	rng := stats.NewRNG(9)
	var data []trace.LabeledExample
	for i := 0; i < 500; i++ {
		grad := rng.Float64()
		data = append(data, trace.LabeledExample{
			Features: optical.Features{GradientDB: grad, DegreeDB: 5},
			Failed:   grad > 0.5,
		})
	}
	dt, err := TrainDT(data, DefaultDTConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Evaluate(dt, data)
	if c.Accuracy() < 0.95 {
		t.Fatalf("DT accuracy = %v on a separable rule", c.Accuracy())
	}
	if dt.Depth() < 1 {
		t.Fatal("DT did not split")
	}
}

func TestDTRespectsDepthLimit(t *testing.T) {
	train, _ := dataset(t, 31)
	if len(train) < 100 {
		t.Skip("small dataset")
	}
	dt, err := TrainDT(train, DTConfig{MaxDepth: 3, MinLeafSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dt.Depth() > 3 {
		t.Fatalf("depth = %d, limit 3", dt.Depth())
	}
}

func TestStatisticPerFiber(t *testing.T) {
	data := []trace.LabeledExample{
		{Features: optical.Features{FiberID: 1}, Failed: true},
		{Features: optical.Features{FiberID: 1}, Failed: true},
		{Features: optical.Features{FiberID: 1}, Failed: true},
		{Features: optical.Features{FiberID: 2}, Failed: false},
		{Features: optical.Features{FiberID: 2}, Failed: false},
		{Features: optical.Features{FiberID: 2}, Failed: false},
	}
	st, err := TrainStatistic(data)
	if err != nil {
		t.Fatal(err)
	}
	p1 := st.PredictProb(optical.Features{FiberID: 1})
	p2 := st.PredictProb(optical.Features{FiberID: 2})
	if p1 <= p2 {
		t.Fatalf("fiber 1 (always fails) p=%v should exceed fiber 2 p=%v", p1, p2)
	}
	// unseen fiber falls back to the global rate
	if got := st.PredictProb(optical.Features{FiberID: 99}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("unseen fiber p = %v, want global 0.5", got)
	}
}

func TestOracleIsPerfect(t *testing.T) {
	_, test := dataset(t, 77)
	if len(test) == 0 {
		t.Skip("empty test set")
	}
	o := NewOracle(test)
	c := Evaluate(o, test)
	if c.Accuracy() < 0.999 {
		t.Fatalf("oracle accuracy = %v", c.Accuracy())
	}
}

func TestEmptyTrainingRejected(t *testing.T) {
	if _, err := TrainNN(nil, DefaultNNConfig(1)); err == nil {
		t.Error("NN accepted empty training set")
	}
	if _, err := TrainDT(nil, DefaultDTConfig()); err == nil {
		t.Error("DT accepted empty training set")
	}
	if _, err := TrainStatistic(nil); err == nil {
		t.Error("Statistic accepted empty training set")
	}
}

func TestPerLinkError(t *testing.T) {
	_, test := dataset(t, 88)
	if len(test) == 0 {
		t.Skip("empty test set")
	}
	o := NewOracle(test)
	errs := PerLinkError(o, test)
	for _, e := range errs {
		if e > 1e-9 {
			t.Fatalf("oracle per-link error %v should be 0", e)
		}
	}
	naive := NaiveTeaVar{PI: 0.003}
	nErrs := PerLinkError(naive, test)
	if stats.Mean(nErrs) <= stats.Mean(errs) {
		t.Fatal("naive baseline should have larger per-link error than the oracle")
	}
}

func TestScalerClamps(t *testing.T) {
	train := []trace.LabeledExample{
		{Features: optical.Features{DegreeDB: 3, GradientDB: 0, Fluctuation: 0, LengthKm: 100}},
		{Features: optical.Features{DegreeDB: 9, GradientDB: 1, Fluctuation: 1, LengthKm: 1000}},
	}
	s := fitScaler(train)
	out := s.scale(optical.Features{DegreeDB: 100, GradientDB: -5, Fluctuation: 0.5, LengthKm: 550})
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("clamping failed: %v", out)
	}
	if math.Abs(out[2]-0.5) > 1e-9 || math.Abs(out[3]-0.5) > 1e-9 {
		t.Fatalf("midpoint scaling wrong: %v", out)
	}
}
