package ml

import (
	"fmt"
	"math"
	"sort"

	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/trace"
)

// Predictor estimates the probability that a degradation episode leads to a
// fiber cut in the next TE period (§4.1.1's problem statement).
type Predictor interface {
	// PredictProb returns p_1, the estimated failure probability.
	PredictProb(f optical.Features) float64
	Name() string
}

// PredictLabel applies the paper's decision rule y-hat = argmax(p).
func PredictLabel(p Predictor, f optical.Features) bool {
	return p.PredictProb(f) >= 0.5
}

// minMaxScaler implements Appendix A.2's normalization: "the variables
// degree, gradient, fluctuation, and length are scaled into [0,1] using
// Min-Max normalization".
type minMaxScaler struct {
	min, max [4]float64
}

func fitScaler(examples []trace.LabeledExample) *minMaxScaler {
	s := &minMaxScaler{}
	for i := range s.min {
		s.min[i] = math.Inf(1)
		s.max[i] = math.Inf(-1)
	}
	for _, ex := range examples {
		for i, v := range rawContinuous(ex.Features) {
			s.min[i] = math.Min(s.min[i], v)
			s.max[i] = math.Max(s.max[i], v)
		}
	}
	return s
}

func rawContinuous(f optical.Features) [4]float64 {
	return [4]float64{f.DegreeDB, f.GradientDB, f.Fluctuation, f.LengthKm}
}

func (s *minMaxScaler) scale(f optical.Features) [4]float64 {
	raw := rawContinuous(f)
	var out [4]float64
	for i, v := range raw {
		span := s.max[i] - s.min[i]
		if span <= 0 {
			out[i] = 0
			continue
		}
		x := (v - s.min[i]) / span
		out[i] = math.Max(0, math.Min(1, x))
	}
	return out
}

// categorical vocabulary sizes for the embeddings.
type vocab struct {
	regions map[string]int
	vendors map[string]int
	fibers  int
}

func buildVocab(examples []trace.LabeledExample) vocab {
	v := vocab{regions: map[string]int{}, vendors: map[string]int{}}
	var regionNames, vendorNames []string
	maxFiber := 0
	for _, ex := range examples {
		if _, ok := v.regions[ex.Features.Region]; !ok {
			v.regions[ex.Features.Region] = 0
			regionNames = append(regionNames, ex.Features.Region)
		}
		if _, ok := v.vendors[ex.Features.Vendor]; !ok {
			v.vendors[ex.Features.Vendor] = 0
			vendorNames = append(vendorNames, ex.Features.Vendor)
		}
		if ex.Features.FiberID > maxFiber {
			maxFiber = ex.Features.FiberID
		}
	}
	sort.Strings(regionNames)
	sort.Strings(vendorNames)
	for i, r := range regionNames {
		v.regions[r] = i
	}
	for i, vd := range vendorNames {
		v.vendors[vd] = i
	}
	v.fibers = maxFiber + 1
	return v
}

func (v vocab) regionIdx(r string) int { return v.regions[r] }
func (v vocab) vendorIdx(s string) int { return v.vendors[s] }

// FeatureMask selects which inputs the NN sees; Appendix A.6's ablation
// (Table 8) toggles these.
type FeatureMask struct {
	Time, Degree, Gradient, Fluctuation bool
	Region, FiberID, Vendor             bool
	// Extended enables the §8 future-work indicators (PMD and chromatic
	// dispersion) when the telemetry system collects them.
	Extended bool
}

// AllFeatures enables every input (the NN-all row of Table 8).
func AllFeatures() FeatureMask {
	return FeatureMask{Time: true, Degree: true, Gradient: true, Fluctuation: true,
		Region: true, FiberID: true, Vendor: true}
}

// WithExtended returns the mask with the §8 extended optical indicators
// enabled.
func (m FeatureMask) WithExtended() FeatureMask {
	m.Extended = true
	return m
}

// Without returns the mask with one named feature removed.
func (m FeatureMask) Without(name string) (FeatureMask, error) {
	switch name {
	case "time":
		m.Time = false
	case "degree":
		m.Degree = false
	case "gradient":
		m.Gradient = false
	case "fluctuation":
		m.Fluctuation = false
	case "region":
		m.Region = false
	case "fiberID":
		m.FiberID = false
	case "vendor":
		m.Vendor = false
	case "extended":
		m.Extended = false
	default:
		return m, fmt.Errorf("ml: unknown feature %q", name)
	}
	return m, nil
}

// embedding dimensions (small, per Appendix A.2's dimensionality-reduction
// rationale).
const (
	fiberEmbDim  = 4
	regionEmbDim = 3
	vendorEmbDim = 2
	hourBuckets  = 24
	// extendedDims are the two §8 indicators (PMD, CD), present in the
	// input vector whether or not the mask enables them (zeroed when off)
	// so trained models keep a stable shape.
	extendedDims = 2
	// pmdScale / cdScale normalize the extended indicators into [0, ~1].
	pmdScale = 15.0
	cdScale  = 30.0
)

// NN is the paper's MLP (Fig 9): the first layer aggregates critical
// degradation features, the second mixes in the intrinsic fiber features
// via embeddings, a 2-neuron decoder projects to the two classes, and a
// softmax yields the probability distribution.
type NN struct {
	mask   FeatureMask
	scaler *minMaxScaler
	vocab  vocab

	fiberEmb  *embedding
	regionEmb *embedding
	vendorEmb *embedding
	l1        *linear // critical features -> hidden
	l2        *linear // hidden + intrinsic -> hidden
	// deep holds optional extra hidden layers (§8: "design of an effective
	// deep neural network model"); empty for the paper's vanilla MLP.
	deep    []*linear
	decoder *linear // hidden -> 2
}

// NNConfig tunes training.
type NNConfig struct {
	Epochs     int
	LearnRate  float64
	Seed       uint64
	Mask       FeatureMask
	Oversample bool // §4.1.1: oversample the minority class to 1:1
	// ExtraHidden adds that many extra 64-unit ReLU layers before the
	// decoder — the §8 "more efficient deep model" knob. 0 reproduces the
	// paper's vanilla MLP.
	ExtraHidden int
}

// DefaultNNConfig returns the Appendix A.2 hyperparameters.
func DefaultNNConfig(seed uint64) NNConfig {
	return NNConfig{Epochs: 30, LearnRate: LearnRate, Seed: seed, Mask: AllFeatures(), Oversample: true}
}

// TrainNN fits the MLP on the labeled set.
func TrainNN(examples []trace.LabeledExample, cfg NNConfig) (*NN, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = LearnRate
	}
	rng := stats.NewRNG(cfg.Seed)
	n := &NN{mask: cfg.Mask, scaler: fitScaler(examples), vocab: buildVocab(examples)}
	n.fiberEmb = newEmbedding(n.vocab.fibers, fiberEmbDim, rng)
	n.regionEmb = newEmbedding(maxInt(1, len(n.vocab.regions)), regionEmbDim, rng)
	n.vendorEmb = newEmbedding(maxInt(1, len(n.vocab.vendors)), vendorEmbDim, rng)
	critDim := 3 + hourBuckets + extendedDims // degree, gradient, fluctuation + hour one-hot + PMD/CD
	n.l1 = newLinear(critDim, HiddenUnits, rng)
	intrinsicDim := fiberEmbDim + regionEmbDim + vendorEmbDim + 1 // + scaled length
	n.l2 = newLinear(HiddenUnits+intrinsicDim, HiddenUnits, rng)
	for i := 0; i < cfg.ExtraHidden; i++ {
		n.deep = append(n.deep, newLinear(HiddenUnits, HiddenUnits, rng))
	}
	n.decoder = newLinear(HiddenUnits, 2, rng)

	data := examples
	if cfg.Oversample {
		data = Oversample(examples, rng.Split())
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// shuffle
		for i := len(idx) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			idx[i], idx[j] = idx[j], idx[i]
		}
		for _, i := range idx {
			n.trainStep(data[i], cfg.LearnRate)
		}
	}
	return n, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// criticalInput builds the first-layer input vector.
func (n *NN) criticalInput(f optical.Features) []float64 {
	scaled := n.scaler.scale(f)
	x := make([]float64, 3+hourBuckets+extendedDims)
	if n.mask.Degree {
		x[0] = scaled[0]
	}
	if n.mask.Gradient {
		x[1] = scaled[1]
	}
	if n.mask.Fluctuation {
		x[2] = scaled[2]
	}
	if n.mask.Time {
		h := f.HourOfDay
		if h >= 0 && h < hourBuckets {
			x[3+h] = 1
		}
	}
	if n.mask.Extended {
		x[3+hourBuckets] = clamp01(f.PMDps / pmdScale)
		x[3+hourBuckets+1] = clamp01(f.CDpsNm / cdScale)
	}
	return x
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// intrinsicInput builds the second-layer side input (embeddings + length).
func (n *NN) intrinsicInput(f optical.Features) (vec []float64, fiberIdx, regionIdx, vendorIdx int) {
	fiberIdx, regionIdx, vendorIdx = -1, -1, -1
	var fe, re, ve []float64
	if n.mask.FiberID {
		fiberIdx = f.FiberID
		fe = n.fiberEmb.forward(fiberIdx)
	} else {
		fe = make([]float64, fiberEmbDim)
	}
	if n.mask.Region {
		regionIdx = n.vocab.regionIdx(f.Region)
		re = n.regionEmb.forward(regionIdx)
	} else {
		re = make([]float64, regionEmbDim)
	}
	if n.mask.Vendor {
		vendorIdx = n.vocab.vendorIdx(f.Vendor)
		ve = n.vendorEmb.forward(vendorIdx)
	} else {
		ve = make([]float64, vendorEmbDim)
	}
	length := n.scaler.scale(f)[3]
	vec = make([]float64, 0, fiberEmbDim+regionEmbDim+vendorEmbDim+1)
	vec = append(vec, fe...)
	vec = append(vec, re...)
	vec = append(vec, ve...)
	vec = append(vec, length)
	return vec, fiberIdx, regionIdx, vendorIdx
}

// forward runs the network, returning intermediate activations for backprop.
type nnActivations struct {
	crit, pre1, h1      []float64
	intr                []float64
	in2, pre2, h2       []float64
	deepPre, deepOut    [][]float64 // per extra hidden layer
	logits, probs       []float64
	fiberIdx, regionIdx int
	vendorIdx           int
}

func (n *NN) forward(f optical.Features) nnActivations {
	var a nnActivations
	a.crit = n.criticalInput(f)
	a.pre1 = n.l1.forward(a.crit)
	a.h1 = relu(a.pre1)
	a.intr, a.fiberIdx, a.regionIdx, a.vendorIdx = n.intrinsicInput(f)
	a.in2 = append(append([]float64(nil), a.h1...), a.intr...)
	a.pre2 = n.l2.forward(a.in2)
	a.h2 = relu(a.pre2)
	top := a.h2
	for _, l := range n.deep {
		pre := l.forward(top)
		out := relu(pre)
		a.deepPre = append(a.deepPre, pre)
		a.deepOut = append(a.deepOut, out)
		top = out
	}
	a.logits = n.decoder.forward(top)
	a.probs = softmax(a.logits)
	return a
}

// trainStep runs one SGD/Adam step on a single example with NLL loss.
func (n *NN) trainStep(ex trace.LabeledExample, lr float64) {
	a := n.forward(ex.Features)
	// dL/dlogits for softmax + NLL: p - onehot(y)
	target := 0
	if ex.Failed {
		target = 1
	}
	gradLogits := []float64{a.probs[0], a.probs[1]}
	gradLogits[target] -= 1

	decoderIn := a.h2
	if len(a.deepOut) > 0 {
		decoderIn = a.deepOut[len(a.deepOut)-1]
	}
	grad := n.decoder.backward(decoderIn, gradLogits)
	for i := len(n.deep) - 1; i >= 0; i-- {
		gradPre := reluBackward(a.deepPre[i], grad)
		layerIn := a.h2
		if i > 0 {
			layerIn = a.deepOut[i-1]
		}
		grad = n.deep[i].backward(layerIn, gradPre)
	}
	gradH2 := grad
	gradPre2 := reluBackward(a.pre2, gradH2)
	gradIn2 := n.l2.backward(a.in2, gradPre2)
	gradH1 := gradIn2[:HiddenUnits]
	gradIntr := gradIn2[HiddenUnits:]
	gradPre1 := reluBackward(a.pre1, gradH1)
	n.l1.backward(a.crit, gradPre1)

	if a.fiberIdx >= 0 {
		n.fiberEmb.backward(a.fiberIdx, gradIntr[:fiberEmbDim])
	}
	if a.regionIdx >= 0 {
		n.regionEmb.backward(a.regionIdx, gradIntr[fiberEmbDim:fiberEmbDim+regionEmbDim])
	}
	if a.vendorIdx >= 0 {
		n.vendorEmb.backward(a.vendorIdx, gradIntr[fiberEmbDim+regionEmbDim:fiberEmbDim+regionEmbDim+vendorEmbDim])
	}

	n.decoder.step(lr)
	for _, l := range n.deep {
		l.step(lr)
	}
	n.l2.step(lr)
	n.l1.step(lr)
	n.fiberEmb.step(lr)
	n.regionEmb.step(lr)
	n.vendorEmb.step(lr)
}

// PredictProb implements Predictor.
func (n *NN) PredictProb(f optical.Features) float64 {
	a := n.forward(f)
	return a.probs[1]
}

// Name implements Predictor.
func (n *NN) Name() string { return "NN" }

// Oversample duplicates minority-class examples until the classes balance
// ("we adopt the oversampling approach to address the imbalance", §4.1.1).
func Oversample(examples []trace.LabeledExample, rng *stats.RNG) []trace.LabeledExample {
	var pos, neg []trace.LabeledExample
	for _, ex := range examples {
		if ex.Failed {
			pos = append(pos, ex)
		} else {
			neg = append(neg, ex)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return append([]trace.LabeledExample(nil), examples...)
	}
	minority, majority := pos, neg
	if len(pos) > len(neg) {
		minority, majority = neg, pos
	}
	out := append([]trace.LabeledExample(nil), examples...)
	for deficit := len(majority) - len(minority); deficit > 0; deficit-- {
		out = append(out, minority[rng.Intn(len(minority))])
	}
	return out
}
