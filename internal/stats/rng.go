// Package stats provides the statistical machinery PreTE depends on:
// deterministic random number generation, the probability distributions used
// to model fiber failures (Weibull, geometric, exponential), the chi-square
// hypothesis test from §3 of the paper, equal-width binning, empirical CDFs,
// and classification metrics (precision/recall/F1).
//
// Everything is implemented on top of the standard library so that the whole
// repository builds offline, and all randomness is funneled through RNG so
// experiments are reproducible bit-for-bit from a seed. Parallel code draws
// per-task streams via SubRNG, which depends only on (seed, task index) and
// so keeps results identical at every parallelism level (see internal/par).
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64. It is intentionally not cryptographically secure; it exists so
// every simulation and trace in this repository can be reproduced from a
// seed, and so independent components can derive decorrelated streams via
// Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// next advances the SplitMix64 state and returns the next 64 random bits.
func (r *RNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// Split derives a new, decorrelated generator from r. The child stream is a
// deterministic function of r's current state, so call order matters (and is
// part of an experiment's reproducible identity).
func (r *RNG) Split() *RNG {
	return &RNG{state: r.next() ^ 0x6a09e667f3bcc909}
}

// SubRNG derives the decorrelated generator for parallel task index of a
// computation seeded with seed. Unlike Split, the child stream depends only
// on (seed, index) — never on call order — so workers in an internal/par
// fan-out can draw randomness without sharing a stream, and the result is
// identical at every parallelism level.
func SubRNG(seed, index uint64) *RNG {
	// One SplitMix64 scramble of the index keeps adjacent task streams
	// decorrelated even though their seeds differ by 1.
	z := (index + 1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: seed ^ z ^ (z >> 31)}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
