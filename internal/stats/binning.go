package stats

import (
	"fmt"
	"math"
	"sort"
)

// EqualWidthBins divides [min(values), max(values)] into k intervals of
// equal width and returns, for each value, its bin index in [0, k). This is
// the discretization §3.2 applies to continuous features ("we perform
// equal-width binning") before running the chi-square test.
func EqualWidthBins(values []float64, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("stats: equal-width binning needs k >= 1, got %d", k)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("stats: equal-width binning on empty data")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("stats: NaN in binning input")
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	idx := make([]int, len(values))
	if hi == lo {
		return idx, nil // single degenerate bin 0
	}
	// Divide by k before subtracting so spreads near MaxFloat64 do not
	// overflow to +Inf and poison the bin arithmetic with NaN.
	kf := float64(k)
	span := hi/kf - lo/kf // (hi-lo)/k without overflowing the subtraction
	for i, v := range values {
		f := (v/kf - lo/kf) / span * kf // (v-lo)*k/(hi-lo), in [0, k]
		b := int(f)
		switch {
		case math.IsNaN(f) || b < 0:
			b = 0
		case b >= k: // v == hi lands in the last bin
			b = k - 1
		}
		idx[i] = b
	}
	return idx, nil
}

// FeatureChiSquare bins a continuous feature, cross-tabulates it against a
// binary outcome, and runs the chi-square independence test — the full
// Table 1 procedure for one feature.
func FeatureChiSquare(feature []float64, failed []bool, bins int) (ChiSquareResult, error) {
	if len(feature) != len(failed) {
		return ChiSquareResult{}, fmt.Errorf("stats: feature/outcome length mismatch %d vs %d", len(feature), len(failed))
	}
	idx, err := EqualWidthBins(feature, bins)
	if err != nil {
		return ChiSquareResult{}, err
	}
	// Drop empty bins: chi-square expected counts must be positive, and an
	// all-zero column would silently contribute nothing anyway.
	used := make(map[int]int)
	for _, b := range idx {
		if _, ok := used[b]; !ok {
			used[b] = len(used)
		}
	}
	if len(used) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: feature collapses to a single bin")
	}
	t := NewContingencyTable(2, len(used))
	for i, b := range idx {
		row := 0
		if failed[i] {
			row = 1
		}
		t.Add(row, used[b], 1)
	}
	return ChiSquareIndependence(t)
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF (the input slice is copied).
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// advance past equal values so At is right-continuous
	for i < len(e.sorted) && e.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the sample (nearest-rank).
func (e *ECDF) Quantile(p float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Series samples the ECDF at k evenly spaced points across the sample range,
// producing (x, F(x)) pairs suitable for printing a CDF figure.
func (e *ECDF) Series(k int) (xs, ys []float64) {
	if len(e.sorted) == 0 || k < 2 {
		return nil, nil
	}
	lo, hi := e.sorted[0], e.sorted[len(e.sorted)-1]
	xs = make([]float64, k)
	ys = make([]float64, k)
	for i := 0; i < k; i++ {
		x := lo + (hi-lo)*float64(i)/float64(k-1)
		xs[i] = x
		ys[i] = e.At(x)
	}
	return xs, ys
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// LinearFit returns the least-squares slope and intercept of y against x —
// used in §6.1 to fit the linear relationship between per-fiber degradation
// counts and failure counts (Fig 12a).
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("stats: linear fit needs matched samples of length >= 2")
	}
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: linear fit on degenerate x")
	}
	slope = num / den
	return slope, my - slope*mx, nil
}
