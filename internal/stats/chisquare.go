package stats

import (
	"fmt"
	"math"
)

// ContingencyTable is a 2D table of observed event counts. PreTE uses 2x2
// tables (degradation x failure, Appendix A.1 Tables 6-7) and kxn tables for
// the per-feature tests in §3.2 (Table 1).
type ContingencyTable struct {
	Counts [][]float64
}

// NewContingencyTable allocates a rows x cols table of zeros.
func NewContingencyTable(rows, cols int) *ContingencyTable {
	c := make([][]float64, rows)
	for i := range c {
		c[i] = make([]float64, cols)
	}
	return &ContingencyTable{Counts: c}
}

// Add increments cell (i, j) by n.
func (t *ContingencyTable) Add(i, j int, n float64) { t.Counts[i][j] += n }

// Totals returns the row sums, column sums, and grand total.
func (t *ContingencyTable) Totals() (rows, cols []float64, total float64) {
	rows = make([]float64, len(t.Counts))
	if len(t.Counts) == 0 {
		return rows, nil, 0
	}
	cols = make([]float64, len(t.Counts[0]))
	for i, row := range t.Counts {
		for j, v := range row {
			rows[i] += v
			cols[j] += v
			total += v
		}
	}
	return rows, cols, total
}

// ChiSquareResult carries the outcome of a chi-square independence test.
type ChiSquareResult struct {
	Statistic float64 // the chi-square statistic
	DF        int     // degrees of freedom
	PValue    float64 // P(X^2_df >= Statistic)
}

// Rejected reports whether the null hypothesis (independence) is rejected at
// the given significance threshold; the paper uses 0.01 throughout.
func (r ChiSquareResult) Rejected(alpha float64) bool { return r.PValue < alpha }

// ChiSquareIndependence runs Pearson's chi-square test of independence on a
// contingency table, exactly the procedure §3.1/§3.2 applies to confirm that
// fiber degradations and the four critical features are related to fiber
// cuts. Expected counts are derived from the marginals.
func ChiSquareIndependence(t *ContingencyTable) (ChiSquareResult, error) {
	nr := len(t.Counts)
	if nr < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs >= 2 rows, got %d", nr)
	}
	nc := len(t.Counts[0])
	if nc < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs >= 2 cols, got %d", nc)
	}
	rows, cols, total := t.Totals()
	if total <= 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: empty contingency table")
	}
	var stat float64
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			expected := rows[i] * cols[j] / total
			if expected == 0 {
				continue
			}
			d := t.Counts[i][j] - expected
			stat += d * d / expected
		}
	}
	df := (nr - 1) * (nc - 1)
	return ChiSquareResult{
		Statistic: stat,
		DF:        df,
		PValue:    ChiSquareSurvival(stat, df),
	}, nil
}

// ChiSquareSurvival returns P(X >= x) for a chi-square distribution with df
// degrees of freedom, i.e. the upper regularized incomplete gamma function
// Q(df/2, x/2).
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(float64(df)/2, x/2)
}

// regularizedGammaQ computes Q(a, x) = Gamma(a, x)/Gamma(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes style). Accuracy is ample for p-value reporting down to ~1e-300.
func regularizedGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - regularizedGammaPSeries(a, x)
	default:
		return regularizedGammaQContinuedFraction(a, x)
	}
}

// regularizedGammaPSeries evaluates P(a, x) by its power series.
func regularizedGammaPSeries(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
	)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// regularizedGammaQContinuedFraction evaluates Q(a, x) by Lentz's method.
func regularizedGammaQContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
		tiny    = 1e-300
	)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
