package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := NewRNG(5)
	child := r.Split()
	// Parent and child should not emit the same stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided %d times with parent", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", freq)
	}
}

// Property: Float64 always lands in [0,1) regardless of seed.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 32; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm always returns a permutation.
func TestQuickPerm(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
