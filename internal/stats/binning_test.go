package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEqualWidthBinsBasic(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	idx, err := EqualWidthBins(vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Intervals: [0,2) [2,4) [4,6) [6,8) [8,10], max value joins last bin.
	want := []int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 4}
	for i := range idx {
		if idx[i] != want[i] {
			t.Fatalf("bins = %v, want %v", idx, want)
		}
	}
}

func TestEqualWidthBinsDegenerate(t *testing.T) {
	idx, err := EqualWidthBins([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range idx {
		if b != 0 {
			t.Fatalf("constant data should bin to 0, got %v", idx)
		}
	}
}

func TestEqualWidthBinsErrors(t *testing.T) {
	if _, err := EqualWidthBins(nil, 3); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := EqualWidthBins([]float64{1}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := EqualWidthBins([]float64{math.NaN()}, 2); err == nil {
		t.Error("NaN accepted")
	}
}

func TestQuickBinsInRange(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		idx, err := EqualWidthBins(vals, k)
		if err != nil {
			return false
		}
		for _, b := range idx {
			if b < 0 || b >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureChiSquareDetectsDependence(t *testing.T) {
	// Feature strongly determines the outcome -> rejection.
	r := NewRNG(55)
	var feature []float64
	var failed []bool
	for i := 0; i < 2000; i++ {
		x := r.Float64()
		feature = append(feature, x)
		failed = append(failed, r.Float64() < x) // P(fail) grows with x
	}
	res, err := FeatureChiSquare(feature, failed, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected(0.01) {
		t.Fatalf("dependent feature not rejected: p = %v", res.PValue)
	}
}

func TestFeatureChiSquareIndependent(t *testing.T) {
	r := NewRNG(56)
	var feature []float64
	var failed []bool
	for i := 0; i < 2000; i++ {
		feature = append(feature, r.Float64())
		failed = append(failed, r.Float64() < 0.4)
	}
	res, err := FeatureChiSquare(feature, failed, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected(0.001) {
		t.Fatalf("independent feature rejected: p = %v", res.PValue)
	}
}

func TestFeatureChiSquareMismatch(t *testing.T) {
	if _, err := FeatureChiSquare([]float64{1, 2}, []bool{true}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.2}, {2, 0.6}, {3.5, 0.8}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("median = %v", got)
	}
	if e.Len() != 5 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestECDFSeries(t *testing.T) {
	e := NewECDF([]float64{0, 10})
	xs, ys := e.Series(11)
	if len(xs) != 11 || len(ys) != 11 {
		t.Fatalf("series lengths %d/%d", len(xs), len(ys))
	}
	if xs[0] != 0 || xs[10] != 10 {
		t.Fatalf("series range [%v, %v]", xs[0], xs[10])
	}
	if ys[10] != 1 {
		t.Fatalf("series should end at 1, got %v", ys[10])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("series not monotone at %d", i)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("short input accepted")
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 8 TP, 2 FP, 85 TN, 5 FN
	for i := 0; i < 8; i++ {
		c.Observe(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Observe(true, false)
	}
	for i := 0; i < 85; i++ {
		c.Observe(false, false)
	}
	for i := 0; i < 5; i++ {
		c.Observe(false, true)
	}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/13) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.93) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	if c.Total() != 100 {
		t.Errorf("total = %d", c.Total())
	}
	var empty Confusion
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 || empty.Accuracy() != 0 {
		t.Error("empty confusion should report zeros")
	}
}
