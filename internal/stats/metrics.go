package stats

import "fmt"

// Confusion is a binary-classification confusion matrix. The paper's §6.3
// convention is followed: "a fail after degradation" is the positive class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one prediction/label pair.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Total returns the number of observed pairs.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// String renders the matrix compactly for experiment output.
func (c Confusion) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f Acc=%.2f (TP=%d FP=%d TN=%d FN=%d)",
		c.Precision(), c.Recall(), c.F1(), c.Accuracy(), c.TP, c.FP, c.TN, c.FN)
}
