package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeibullCDFQuantileRoundTrip(t *testing.T) {
	w := Weibull{Shape: 0.8, Scale: 0.002} // the paper's §6.1 parameters
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := w.Quantile(p)
		got := w.CDF(x)
		if math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestWeibullSampleMatchesCDF(t *testing.T) {
	w := Weibull{Shape: 0.8, Scale: 0.002}
	r := NewRNG(21)
	const n = 100000
	med := w.Quantile(0.5)
	below := 0
	for i := 0; i < n; i++ {
		if w.Sample(r) <= med {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %v", frac)
	}
}

func TestWeibullScalingProperty(t *testing.T) {
	// If X ~ Weibull(k, lambda) then cX ~ Weibull(k, c*lambda): the property
	// §6.1 invokes to keep failure probabilities Weibull-distributed.
	w := Weibull{Shape: 0.8, Scale: 0.002}
	ws := w.Scaled(3)
	for _, x := range []float64{0.001, 0.003, 0.01} {
		if got, want := ws.CDF(3*x), w.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("scaled CDF mismatch at %v: %v vs %v", x, got, want)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	w := Weibull{Shape: 2, Scale: 1} // Rayleigh-like: mean = Gamma(1.5) ≈ 0.8862
	if got := w.Mean(); math.Abs(got-math.Sqrt(math.Pi)/2) > 1e-12 {
		t.Fatalf("Weibull mean = %v", got)
	}
}

func TestWeibullValidate(t *testing.T) {
	if err := (Weibull{Shape: 0.8, Scale: 0.002}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, w := range []Weibull{{0, 1}, {1, 0}, {-1, 1}, {math.NaN(), 1}} {
		if err := w.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", w)
		}
	}
}

func TestGeometricMeanEstimate(t *testing.T) {
	g := Geometric{P: 0.2}
	r := NewRNG(31)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(g.Sample(r))
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~5", mean)
	}
}

func TestGeometricCDF(t *testing.T) {
	g := Geometric{P: 0.5}
	if got := g.CDF(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(1) = %v", got)
	}
	if got := g.CDF(2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CDF(2) = %v", got)
	}
	if got := g.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
}

func TestExponentialCDF(t *testing.T) {
	e := Exponential{Rate: 2}
	if got := e.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	want := 1 - math.Exp(-2)
	if got := e.CDF(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(1) = %v want %v", got, want)
	}
}

func TestLogNormalMedian(t *testing.T) {
	l := LogNormal{Mu: math.Log(10), Sigma: 1.5}
	if got := l.Median(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	// half the sample should fall below the median
	r := NewRNG(41)
	below, n := 0, 50000
	for i := 0; i < n; i++ {
		if l.Sample(r) <= 10 {
			below++
		}
	}
	if frac := float64(below) / float64(n); math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %v", frac)
	}
}

// Property: all CDFs are monotone non-decreasing and bounded to [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	w := Weibull{Shape: 0.8, Scale: 0.002}
	l := LogNormal{Mu: 1, Sigma: 2}
	e := Exponential{Rate: 0.3}
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if x > y {
			x, y = y, x
		}
		for _, cdf := range []func(float64) float64{w.CDF, l.CDF, e.CDF} {
			cx, cy := cdf(x), cdf(y)
			if cx < 0 || cy > 1 || cx > cy+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Weibull samples are always positive.
func TestQuickWeibullPositive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		w := Weibull{Shape: 0.8, Scale: 0.002}
		for i := 0; i < 16; i++ {
			if w.Sample(r) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
