package stats

import (
	"math"
	"testing"
)

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		x    float64
		df   int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.05, 1e-3},
		{6.635, 1, 0.01, 1e-3},
		{5.991, 2, 0.05, 1e-3},
		{9.210, 2, 0.01, 1e-3},
		{18.307, 10, 0.05, 1e-3},
		{0, 1, 1, 0},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.x, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Survival(%v, %d) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareSurvivalExtreme(t *testing.T) {
	// Must be able to report the paper's p < 1e-50 without underflow to a
	// bogus value.
	p := ChiSquareSurvival(300, 1)
	if !(p > 0) || p > 1e-50 {
		t.Fatalf("Survival(300, 1) = %v, want tiny positive", p)
	}
}

// TestPaperTable6 reproduces Appendix A.1: the observed degradation/failure
// contingency table must reject independence with p << 0.01.
func TestPaperTable6(t *testing.T) {
	tab := NewContingencyTable(2, 2)
	// Rows: failure / no failure; cols: degradation / no degradation.
	tab.Counts[0][0] = 1
	tab.Counts[0][1] = 2.6
	tab.Counts[1][0] = 1.5
	tab.Counts[1][1] = 6516.7
	res, err := ChiSquareIndependence(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected(0.01) {
		t.Fatalf("Table 6 data should reject independence, p = %v", res.PValue)
	}
	if res.PValue > 1e-50 {
		t.Errorf("paper reports p < 1e-50, got %v", res.PValue)
	}
}

// TestPaperTable7 reproduces the counter-case: under the null, the expected
// count in the (failure, degradation) cell is ~1.2 and independence is NOT
// rejected.
func TestPaperTable7(t *testing.T) {
	tab := NewContingencyTable(2, 2)
	tab.Counts[0][0] = 1.2
	tab.Counts[0][1] = 3151.8
	tab.Counts[1][0] = 2144.8
	tab.Counts[1][1] = 5655630.2
	res, err := ChiSquareIndependence(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected(0.01) {
		t.Fatalf("Table 7 data should not reject independence, p = %v", res.PValue)
	}
}

func TestChiSquareIndependentData(t *testing.T) {
	// Perfectly proportional table -> statistic 0, p-value 1.
	tab := NewContingencyTable(2, 2)
	tab.Counts[0][0] = 10
	tab.Counts[0][1] = 30
	tab.Counts[1][0] = 20
	tab.Counts[1][1] = 60
	res, err := ChiSquareIndependence(tab)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic > 1e-9 || res.PValue < 0.999 {
		t.Fatalf("proportional table should yield stat 0: %+v", res)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquareIndependence(NewContingencyTable(1, 2)); err == nil {
		t.Error("1-row table accepted")
	}
	if _, err := ChiSquareIndependence(NewContingencyTable(2, 1)); err == nil {
		t.Error("1-col table accepted")
	}
	if _, err := ChiSquareIndependence(NewContingencyTable(2, 2)); err == nil {
		t.Error("empty table accepted")
	}
}

func TestContingencyTotals(t *testing.T) {
	tab := NewContingencyTable(2, 3)
	tab.Add(0, 0, 1)
	tab.Add(0, 2, 2)
	tab.Add(1, 1, 3)
	rows, cols, total := tab.Totals()
	if total != 6 {
		t.Fatalf("total = %v", total)
	}
	if rows[0] != 3 || rows[1] != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if cols[0] != 1 || cols[1] != 3 || cols[2] != 2 {
		t.Fatalf("cols = %v", cols)
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	// P(a,x) + Q(a,x) == 1 across both evaluation branches.
	for _, a := range []float64{0.5, 1, 2.5, 10} {
		for _, x := range []float64{0.1, 1, 5, 20} {
			q := regularizedGammaQ(a, x)
			var p float64
			if x < a+1 {
				p = regularizedGammaPSeries(a, x)
			} else {
				p = 1 - regularizedGammaQContinuedFraction(a, x)
			}
			if math.Abs(p+q-1) > 1e-10 {
				t.Errorf("P+Q != 1 at a=%v x=%v: %v", a, x, p+q)
			}
		}
	}
}
