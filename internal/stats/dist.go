package stats

import (
	"fmt"
	"math"
)

// Weibull is the two-parameter Weibull distribution the paper fits to the
// per-fiber degradation probabilities (§6.1, "Weibull distribution
// (shape=0.8, scale=0.002)"). Its scaling property — cX remains Weibull with
// the scale multiplied by c — is what lets the paper derive failure
// probabilities from degradation probabilities via a linear relationship
// while staying consistent with TeaVaR's Weibull failure model.
type Weibull struct {
	Shape float64 // k > 0
	Scale float64 // lambda > 0
}

// Sample draws a Weibull variate via inverse-transform sampling.
func (w Weibull) Sample(r *RNG) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return w.Scale * math.Pow(-math.Log(1-u), 1/w.Shape)
}

// CDF returns P(X <= x).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// Quantile returns the p-quantile (inverse CDF).
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log(1-p), 1/w.Shape)
}

// Mean returns E[X] = lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// Scaled returns the distribution of c*X, exploiting the Weibull scaling
// property.
func (w Weibull) Scaled(c float64) Weibull {
	return Weibull{Shape: w.Shape, Scale: w.Scale * c}
}

// Validate reports whether the parameters define a proper distribution.
func (w Weibull) Validate() error {
	if !(w.Shape > 0) || !(w.Scale > 0) {
		return fmt.Errorf("stats: invalid Weibull parameters shape=%v scale=%v", w.Shape, w.Scale)
	}
	return nil
}

// Geometric models the number of epochs until the first failure when the
// per-epoch failure probability is fixed — the model §4.1.2 assumes for
// unpredictable fiber cuts.
type Geometric struct {
	P float64 // per-trial success (failure event) probability in (0, 1]
}

// Sample returns the number of trials up to and including the first success
// (support {1, 2, ...}).
func (g Geometric) Sample(r *RNG) int {
	if g.P >= 1 {
		return 1
	}
	if g.P <= 0 {
		panic("stats: Geometric with non-positive p")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return 1 + int(math.Floor(math.Log(u)/math.Log(1-g.P)))
}

// CDF returns P(X <= k) for k trials.
func (g Geometric) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	return 1 - math.Pow(1-g.P, float64(k))
}

// Mean returns E[X] = 1/p.
func (g Geometric) Mean() float64 { return 1 / g.P }

// Exponential is used to draw inter-event times (degradation onsets, repair
// durations) in the synthetic optical trace.
type Exponential struct {
	Rate float64 // events per unit time
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 {
	return r.ExpFloat64() / e.Rate
}

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// LogNormal models heavy-tailed positive quantities such as degradation
// durations (Fig 4a: 50% under 10 s with a long tail) and
// degradation-to-cut delays (Fig 5a: 60% within 1000 s, 20% beyond days).
type LogNormal struct {
	Mu    float64 // mean of log X
	Sigma float64 // stddev of log X
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// CDF returns P(X <= x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Median returns exp(mu).
func (l LogNormal) Median() float64 { return math.Exp(l.Mu) }
