package experiments

import (
	"fmt"
	"io"
	"math"

	"prete/internal/core"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

func init() {
	register("incremental", "Cross-epoch incremental solving: warm-start cache work vs probability-drift magnitude, cache on/off", incremental)
}

// incremental sweeps the cross-epoch warm-start cache (core.SolveCache)
// against the magnitude of per-epoch probability drift: each cell replays a
// short epoch sequence whose calibrated failure probabilities drift by a
// fixed relative magnitude between epochs (0 = quiet network, "structural"
// = a fiber's probability collapses to zero each epoch, changing the
// scenario set's structure), once with the cache off (every epoch a cold
// solve) and once with it on. Reported per cell: the scenario-delta classes
// the cache observed, its hit/revalidation/eviction counters, the cuts
// carried across epochs, total Benders iterations and deterministic work
// units, and the worst objective gap against the cold solve of the same
// epoch — which must stay within the optimizer's epsilon, since warm starts
// move work, never answers. Everything is seeded and unit-denominated, so
// rows replay bit-identically at any parallelism.
func incremental(w io.Writer, opts Options) error {
	type driftCase struct {
		label  string
		mutate func(epoch int, probs []float64)
	}
	rel := func(eps float64) func(int, []float64) {
		return func(epoch int, probs []float64) {
			for i := range probs {
				// Alternate drift direction per (fiber, epoch) so the vector
				// wanders instead of growing monotonically.
				if (i+epoch)%2 == 0 {
					probs[i] *= 1 + eps
				} else {
					probs[i] *= 1 - eps
				}
			}
		}
	}
	cases := []driftCase{
		{"0", func(int, []float64) {}},
		{"1e-6", rel(1e-6)},
		{"1e-4", rel(1e-4)},
		{"1e-2", rel(1e-2)},
		{"structural", func(epoch int, probs []float64) {
			probs[(epoch-1)%len(probs)] = 0
		}},
	}
	epochs := 4
	if opts.Quick {
		cases = []driftCase{cases[0], cases[2], cases[4]}
		epochs = 3
	}
	base, err := incrementalBase("B4", opts.Seed)
	if err != nil {
		return err
	}
	header(w, "drift", "cache", "solves", "deltas", "hits", "reval", "evict", "cuts_reused", "iters", "work_units", "phi_gap")
	for _, dc := range cases {
		coldPhi, coldIters, coldWork, err := incrementalRun(base, dc.mutate, epochs, nil, opts)
		if err != nil {
			return fmt.Errorf("incremental %s cold: %w", dc.label, err)
		}
		cache := &core.SolveCache{}
		warmPhi, warmIters, warmWork, err := incrementalRun(base, dc.mutate, epochs, cache, opts)
		if err != nil {
			return fmt.Errorf("incremental %s warm: %w", dc.label, err)
		}
		var gap float64
		for e := range coldPhi {
			gap = math.Max(gap, math.Abs(warmPhi[e]-coldPhi[e]))
		}
		st := cache.Stats()
		deltas := fmt.Sprintf("%d/%d/%d", st.Misses, st.Revalidations, st.Hits)
		fmt.Fprintf(w, "%s\toff\t%d\t-\t-\t-\t-\t-\t%d\t%d\t0\n",
			dc.label, epochs, coldIters, coldWork)
		fmt.Fprintf(w, "%s\ton\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.2e\n",
			dc.label, epochs, deltas, st.Hits, st.Revalidations, st.Evictions,
			st.CutsReused, warmIters, warmWork, gap)
	}
	fmt.Fprintln(w, "# deltas: cold-miss/prob-only-revalidation/unchanged-hit solve counts the cache observed")
	fmt.Fprintln(w, "# phi_gap: worst |phi_warm - phi_cold| across the epoch sequence; warm starts move work, never answers")
	fmt.Fprintln(w, "# iters/work_units are deterministic (Benders iterations, lp.Budget units); rows replay bit-identically at any -parallel")
	return nil
}

// incrementalInstance is the fixed part of the epoch sequence: topology,
// tunnels, demands, and the epoch-0 probability vector the drift mutates.
type incrementalInstance struct {
	net     *topology.Network
	tunnels *routing.TunnelSet
	demands te.Demands
	probs   []float64
}

// incrementalBase builds the sweep's TE instance the same way the deadline
// sweep does (4 tunnels per flow, seeded per-fiber probabilities), but keeps
// the probability vector so each epoch can re-enumerate after drifting it.
func incrementalBase(topo string, seed uint64) (*incrementalInstance, error) {
	net, err := topology.ByName(topo)
	if err != nil {
		return nil, err
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	probs := make([]float64, len(net.Fibers))
	for i := range probs {
		probs[i] = 0.001 + 0.02*rng.Float64()
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 20 + 10*rng.Float64()
	}
	return &incrementalInstance{net: net, tunnels: ts, demands: demands, probs: probs}, nil
}

// incrementalRun replays one epoch sequence: drift the probabilities (epoch
// 0 uses the base vector as-is), enumerate the scenario set, solve — through
// cache when non-nil, cold otherwise — and accumulate the per-epoch
// objectives plus the sequence's total iterations and work units.
func incrementalRun(base *incrementalInstance, mutate func(int, []float64), epochs int, cache *core.SolveCache, opts Options) ([]float64, int64, int64, error) {
	probs := append([]float64(nil), base.probs...)
	o := core.DefaultOptimizer()
	o.Parallelism = opts.Parallelism
	o.BudgetUnits = opts.Budget
	o.Metrics = opts.Metrics
	phis := make([]float64, 0, epochs)
	var iters, work int64
	for e := 0; e < epochs; e++ {
		if e > 0 {
			mutate(e, probs)
		}
		set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 200})
		if err != nil {
			return nil, 0, 0, err
		}
		in := &te.Input{Net: base.net, Tunnels: base.tunnels, Demands: base.demands, Scenarios: set, Beta: 0.99}
		var res *core.Result
		served := false
		if cache != nil {
			prevHits := cache.Stats().Hits
			res, err = o.SolveCached(in, cache)
			served = err == nil && cache.Stats().Hits > prevHits
		} else {
			res, err = o.Solve(in)
		}
		if err != nil {
			return nil, 0, 0, err
		}
		if err := te.CheckCapacity(base.net, &te.Plan{Alloc: res.Alloc, Tunnels: base.tunnels}); err != nil {
			return nil, 0, 0, fmt.Errorf("epoch %d produced an infeasible plan: %w", e, err)
		}
		phis = append(phis, res.Phi)
		// A cache hit returns the previous epoch's result object, whose
		// counters describe the solve that produced it — the epoch itself
		// performed no optimizer work, which is what this sweep measures.
		if !served {
			iters += int64(res.Iterations)
			work += res.WorkUnits
		}
	}
	return phis, iters, work, nil
}
