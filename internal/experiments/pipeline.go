package experiments

import (
	"fmt"
	"io"

	"prete/internal/core"
	"prete/internal/optical"
	"prete/internal/sim"
	"prete/internal/stats"
	"prete/internal/telemetry"
	"prete/internal/topology"
)

func init() {
	register("fig8", "End-to-end pipeline on B4: telemetry batch, calibrated epoch plan, availability", fig8)
}

// fig8 exercises the whole Fig 8 loop once on B4: synthesize one telemetry
// collection interval per fiber (two fibers carry a degradation episode),
// push the batch through the per-fiber detector pipeline, turn the detected
// degradations into prediction signals, run the Benders-based epoch
// optimization with those signals, and close with a PreTE availability
// evaluation. It is also the experiment `prete-sim -metrics` points at to
// light up every layer's observability series in one run.
func fig8(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	env, err := sim.BuildEnv("B4", opts.Seed, cfg)
	if err != nil {
		return err
	}
	// Stage 1: one collection interval of per-fiber telemetry. Fiber 0
	// carries a degradation episode that has not (yet) cut; the rest stay
	// healthy. (One degraded fiber keeps the enumeration's MaxFailures=2
	// bound sufficient for the beta constraint: with k fibers at high
	// predicted probability, covering beta mass needs k+1-failure
	// scenarios.) The per-fiber RNGs derive from the experiment seed, so
	// the series — and everything downstream — are reproducible.
	const leadInS, episodeS, healthyS = 10, 45, 55
	series := make([]telemetry.FiberSeries, len(env.Net.Fibers))
	for i, f := range env.Net.Fibers {
		fsim := optical.NewFiberSim(f.LengthKm, stats.SubRNG(opts.Seed, uint64(i)))
		if i < 1 {
			samples, err := fsim.EpisodeSeries(optical.DegradationProfile{
				DegreeDB:     6,
				FluctAmpDB:   1,
				FluctPeriodS: 12,
				DurationS:    episodeS,
				OnsetUnixS:   1700000000,
			}, leadInS)
			if err != nil {
				return err
			}
			series[i] = telemetry.FiberSeries{Fiber: i, Samples: samples}
			continue
		}
		series[i] = telemetry.FiberSeries{Fiber: i, Samples: fsim.HealthySeries(1700000000, healthyS)}
	}
	batch, err := telemetry.ProcessBatchObs(env.Net, series, 2, opts.Parallelism, opts.Metrics)
	if err != nil {
		return err
	}
	// Stage 2: degradation events become prediction signals (the NN's
	// Table 5 operating point stands in for a trained model here).
	var signals []core.DegradationSignal
	nEvents := 0
	for fi, events := range batch {
		for _, ev := range events {
			nEvents++
			if ev.Type == telemetry.DegradationStart {
				signals = append(signals, core.DegradationSignal{
					Fiber: topology.FiberID(series[fi].Fiber), PNN: 0.81,
				})
			}
		}
	}
	fmt.Fprintf(w, "telemetry: %d fibers, %d events, %d degradation signals\n",
		len(series), nEvents, len(signals))
	// Stage 3: the signal-calibrated epoch optimization (Eqn. 1 +
	// Algorithm 1 + Algorithm 2).
	// The optimizer keeps its default scenario bounds rather than the
	// evaluation-trimmed ones: the signal pushes one fiber to high failure
	// probability, which concentrates mass on scenarios the trimmed
	// enumeration would cut off.
	p := core.New()
	p.Opt.Parallelism = opts.Parallelism
	p.Opt.BudgetUnits = opts.Budget
	p.Opt.Metrics = opts.Metrics
	ep, err := p.PlanEpoch(core.EpochInput{
		Net: env.Net, Tunnels: env.Tunnels, Demands: env.BaseDemands,
		Beta: cfg.Beta, PI: env.PI, Signals: signals,
	})
	if err != nil {
		return err
	}
	newTunnels := 0
	if ep.Update != nil {
		newTunnels = ep.Update.NewTunnels
	}
	fmt.Fprintf(w, "epoch plan: %d Benders iterations, %d new tunnels, max loss %.4f\n",
		ep.Result.Iterations, newTunnels, ep.Plan.MaxLoss)
	// Stage 4: availability of the scheme that just planned.
	a, err := sim.NewEvaluator(env, cfg).Evaluate("PreTE", 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "PreTE availability at scale 1: min %.6f, mean %.6f\n", a.Min, a.Mean)
	return nil
}
