package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestDeadlineExperiment runs the quick deadline sweep and checks its
// structure and the anytime invariants it is meant to demonstrate: every
// row names a valid degradation rung, gaps are nonnegative and shrink to
// zero at unlimited budget, and the whole table — deterministic work units
// only, no wall clock — is byte-identical across parallelism settings.
func TestDeadlineExperiment(t *testing.T) {
	run := func(parallelism int) string {
		t.Helper()
		var buf bytes.Buffer
		if err := Run("deadline", &buf, Options{Seed: 2025, Quick: true, Parallelism: parallelism}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := run(1)
	var rows [][]string
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "==") || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "topology") {
			continue
		}
		rows = append(rows, strings.Split(line, "\t"))
	}
	if len(rows) != 4 { // quick mode: B4 x 4 budgets
		t.Fatalf("deadline quick sweep printed %d rows, want 4:\n%s", len(rows), out)
	}
	prevGap := -1.0
	for i, row := range rows {
		if len(row) != 7 {
			t.Fatalf("row %d has %d columns, want 7: %v", i, len(row), row)
		}
		gap, err := strconv.ParseFloat(row[3], 64)
		if err != nil || gap < -1e-9 {
			t.Errorf("row %d gap = %q, want a nonnegative float", i, row[3])
		}
		if prevGap >= 0 && gap > prevGap+1e-9 {
			t.Errorf("row %d gap %v grew from previous row's %v despite a larger budget", i, gap, prevGap)
		}
		prevGap = gap
		switch row[4] {
		case "optimal", "truncated", "heuristic":
		default:
			t.Errorf("row %d rung = %q", i, row[4])
		}
	}
	last := rows[len(rows)-1]
	if last[1] != "inf" || last[4] != "optimal" {
		t.Errorf("final row should be the unlimited optimal baseline, got %v", last)
	}
	for _, p := range []int{2, 0} {
		if got := run(p); got != out {
			t.Fatalf("deadline output differs between parallelism 1 and %d", p)
		}
	}
}
