package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"prete/internal/fault"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/persist"
	"prete/internal/routing"
	"prete/internal/topology"
	"prete/internal/wan"
)

func init() {
	register("warmrestart", "Controller crash-restart sweep: plan availability and time-to-first-valid-plan, cold vs warm recovery", warmrestart)
}

// warmrestart sweeps the crash point within a TE epoch (how many RPCs the
// epoch completed before the controller died) against the recovery mode
// (cold: no state directory; warm: journaled snapshots under -state-dir)
// and reports, per cell, whether the restarted controller had a valid plan
// before re-running the pipeline (plan_avail) and its time-to-first-valid-
// plan (ttfvp_ms: warm = recover + re-assert the journaled last-good rates;
// cold = a full reaction epoch from scratch). A second table journals a
// B4-scale state and times recovery against the one-TE-period bound.
func warmrestart(w io.Writer, opts Options) error {
	// The unfaulted triangle epoch issues 4 RPCs (1 tunnel install + 3 rate
	// updates): crashing after 0..3 completed attempts covers "immediately",
	// "mid-install", and "mid-rate-push".
	crashRPCs := []int64{0, 1, 2, 3}
	if opts.Quick {
		crashRPCs = []int64{0, 2}
	}
	header(w, "crash_rpc", "mode", "plan_avail", "epoch", "records", "recovery_ms", "ttfvp_ms")
	for _, cp := range crashRPCs {
		for _, warm := range []bool{false, true} {
			cell, err := warmrestartCell(opts, cp, warm)
			if err != nil {
				return err
			}
			mode := "cold"
			if warm {
				mode = "warm"
			}
			avail := 0
			if cell.planAvail {
				avail = 1
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%.2f\t%.2f\n",
				cp, mode, avail, cell.epoch, cell.records, ms(cell.recovery), ms(cell.ttfvp))
		}
	}
	fmt.Fprintln(w, "# plan_avail: the restarted controller held a fleet-consistent plan before running any epoch")
	fmt.Fprintln(w, "# ttfvp_ms: time to first valid plan after restart (warm: recover+re-assert; cold: full epoch); wall clock, varies run to run")
	return warmrestartB4(w, opts)
}

type warmrestartCellResult struct {
	planAvail bool
	epoch     uint64
	records   int
	recovery  time.Duration
	ttfvp     time.Duration
}

// warmrestartCell runs one crash-restart trace: epoch 1 completes, the
// controller dies after crashRPC attempts of epoch 2, restarts, and (warm)
// recovers its journal or (cold) starts empty.
func warmrestartCell(opts Options, crashRPC int64, warm bool) (warmrestartCellResult, error) {
	cfg := wan.SwitchConfig{
		InstallLatency: 3 * time.Millisecond,
		RateLatency:    300 * time.Microsecond,
		MaxTunnels:     20000,
	}
	reg := obs.NewRegistry()
	ct := fault.NewCtlCrash(wan.TCPTransport{}, 0, reg)
	ct.Disarm()
	tb, err := wan.NewTestbedTransport(cfg, func(f optical.Features) float64 { return 0.8 }, ct)
	if err != nil {
		return warmrestartCellResult{}, err
	}
	defer tb.Close()
	tb.SolveUnits = opts.Budget
	tb.Ctl.Metrics = reg
	var dir string
	if warm {
		dir, err = os.MkdirTemp("", "prete-warmrestart-*")
		if err != nil {
			return warmrestartCellResult{}, err
		}
		defer os.RemoveAll(dir)
		if _, err := tb.OpenState(dir); err != nil {
			return warmrestartCellResult{}, err
		}
	}
	if _, err := tb.RunScenario(opts.Seed); err != nil {
		return warmrestartCellResult{}, fmt.Errorf("warmrestart epoch 1: %w", err)
	}
	ct.Arm(crashRPC)
	if _, err := tb.RunScenario(opts.Seed); err == nil {
		return warmrestartCellResult{}, fmt.Errorf("warmrestart: crash after %d RPCs did not halt the epoch", crashRPC)
	}
	ct.Disarm()
	if err := tb.RestartController(ct); err != nil {
		return warmrestartCellResult{}, err
	}
	tb.Ctl.Metrics = reg
	var res warmrestartCellResult
	start := time.Now()
	if warm {
		rec, err := tb.OpenState(dir)
		if err != nil {
			return warmrestartCellResult{}, err
		}
		res.epoch = rec.Epoch
		res.records = rec.RecordsReplayed
		res.recovery = rec.Elapsed
	}
	res.planAvail = tb.Ctl.LastGoodRates() != nil
	if res.planAvail {
		// Warm path: the journaled plan was recovered and re-asserted
		// fleet-wide by OpenState — the fleet is valid now.
		res.ttfvp = time.Since(start)
	} else {
		// Cold path: nothing to resume; the first valid plan arrives when a
		// full reaction epoch completes.
		if _, err := tb.RunScenario(opts.Seed); err != nil {
			return warmrestartCellResult{}, fmt.Errorf("warmrestart cold recovery epoch: %w", err)
		}
		res.ttfvp = time.Since(start)
	}
	if opts.Metrics != nil {
		for _, name := range []string{
			"wan.recovery.runs", "wan.recovery.warm", "wan.recovery.cold",
			"wan.recovery.records", "wan.rpc.halted", "fault.ctlcrash.halts",
			"persist.appends", "persist.snapshots",
		} {
			opts.Metrics.Counter(name).Add(reg.Counter(name).Value())
		}
	}
	return res, nil
}

// warmrestartB4 journals a B4-scale controller state (Table 3: 12 nodes,
// every directed IP adjacency a flow, 4 tunnels per flow) across enough
// epochs to span snapshots plus a journal suffix, then times recovery. The
// acceptance bound is one TE period: production TE runs minutes-scale
// periods, so recovery must land far inside even an aggressive one.
func warmrestartB4(w io.Writer, opts Options) error {
	const tePeriod = 10 * time.Second // aggressive lower bound for a TE period
	net, err := topology.B4()
	if err != nil {
		return err
	}
	flows := routing.Flows(net)
	ts, err := routing.BuildTunnels(net, flows, 4)
	if err != nil {
		return err
	}
	state := wan.EpochState{
		Rates:   make(map[string]float64, len(ts.Tunnels)),
		PeerSeq: make(map[string]uint64, len(net.Nodes)),
		Probs:   make([]float64, len(net.Fibers)),
	}
	for _, tn := range ts.Tunnels {
		state.Rates[fmt.Sprintf("t%d", tn.ID)] = 50
		head := net.Nodes[int(ts.Flows[tn.Flow].Src)]
		path := make([]int, len(tn.Links))
		for i, l := range tn.Links {
			path[i] = int(l)
		}
		state.Tunnels = append(state.Tunnels, wan.TunnelInstall{
			Switch: head.Name, TunnelID: int(tn.ID), Path: path,
		})
	}
	for _, n := range net.Nodes {
		state.PeerSeq[n.Name] = 1000
	}
	for i := range state.Probs {
		state.Probs[i] = 0.005
	}
	epochs := 32
	if opts.Quick {
		epochs = 8
	}
	dir, err := os.MkdirTemp("", "prete-warmrestart-b4-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := persist.Open(dir, persist.Options{CompactEvery: 8})
	if err != nil {
		return err
	}
	var bytes int
	for e := 1; e <= epochs; e++ {
		state.Epoch = uint64(e)
		b, err := json.Marshal(&state)
		if err != nil {
			st.Close()
			return err
		}
		bytes = len(b)
		if err := st.Append(uint64(e), b); err != nil {
			st.Close()
			return err
		}
		if st.NeedCompact() {
			if err := st.Compact(uint64(e), b); err != nil {
				st.Close()
				return err
			}
		}
	}
	if err := st.Close(); err != nil {
		return err
	}
	start := time.Now()
	rec, err := persist.Recover(dir)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	header(w, "topology", "tunnels", "epochs", "state_bytes", "recover_ms", "te_period_ms", "within_period")
	within := "yes"
	if elapsed >= tePeriod {
		within = "NO"
	}
	fmt.Fprintf(w, "B4\t%d\t%d\t%d\t%.2f\t%.0f\t%s\n",
		len(ts.Tunnels), epochs, bytes, ms(elapsed), ms(tePeriod), within)
	if rec.Seq != uint64(epochs) {
		return fmt.Errorf("warmrestart: B4 recovery returned epoch %d, want %d", rec.Seq, epochs)
	}
	return nil
}
