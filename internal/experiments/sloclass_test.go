package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// sloclassAvail extracts the availability column of a sloclass row.
func sloclassAvail(t *testing.T, out, rowPrefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, rowPrefix) {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) < 3 {
			t.Fatalf("sloclass row %q too short: %q", rowPrefix, line)
		}
		v, err := strconv.ParseFloat(cols[2], 64)
		if err != nil {
			t.Fatalf("sloclass row %q availability: %v", rowPrefix, err)
		}
		return v
	}
	t.Fatalf("sloclass output missing row %q:\n%s", rowPrefix, out)
	return 0
}

// TestSloclassStorm pins the acceptance criteria of the classed storm
// experiment: the latency-critical tier's availability is strictly above
// the uniform PreTE plan's, the shed total stays within the provable
// residual (the experiment itself errors otherwise), and the output is
// byte-identical across parallelism settings.
func TestSloclassStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm evaluation suite; skipped in -short mode")
	}
	run := func(parallelism int) string {
		var buf bytes.Buffer
		opts := quickOpts()
		opts.Parallelism = parallelism
		if err := Run("sloclass", &buf, opts); err != nil {
			t.Fatalf("sloclass: %v", err)
		}
		return buf.String()
	}
	out := run(1)

	lc := sloclassAvail(t, out, "lc\t")
	uniform := sloclassAvail(t, out, "uniform-PreTE\t")
	if lc <= uniform {
		t.Errorf("latency-critical availability %v not strictly above uniform PreTE %v:\n%s", lc, uniform, out)
	}
	if bulk := sloclassAvail(t, out, "bulk\t"); lc < bulk {
		t.Errorf("protected tier (%v) below shed tier (%v)", lc, bulk)
	}
	if !strings.Contains(out, "jain_per_tier\t") {
		t.Errorf("missing Jain fairness row:\n%s", out)
	}
	if !strings.Contains(out, "shed_total_Gbps\t") {
		t.Errorf("missing shed accounting row:\n%s", out)
	}
	// Every tier of the default spec appears, with its policy.
	for _, row := range []string{"lc\tprotect\t", "std\tdefer\t", "bulk\tshed\t"} {
		if !strings.Contains(out, row) {
			t.Errorf("missing tier row %q:\n%s", row, out)
		}
	}

	if out4 := run(4); out4 != out {
		t.Errorf("sloclass output differs across parallelism:\n--- p1 ---\n%s\n--- p4 ---\n%s", out, out4)
	}
}
