package experiments

import (
	"fmt"
	"io"

	"prete/internal/sim"
	"prete/internal/te"
	"prete/internal/wan"
)

func init() {
	register("sloclass", "Per-class availability under degradation storms: classed PreTE vs uniform", sloclass)
}

// stormEvalConfig widens scenario enumeration beyond evalConfig: a storm
// calibrates several fibers to high failure probability at once, so the
// per-tier beta constraint needs triple-failure scenarios (doubles alone
// cap the covered mass below beta).
func stormEvalConfig(opts Options) sim.Config {
	cfg := evalConfig(opts)
	cfg.ScenarioOpts.MaxFailures = 3
	if opts.Quick {
		// With triples enumerated the top-60 scenarios still cover ~0.998
		// mass; the smaller set keeps the three per-tier solves quick.
		cfg.ScenarioOpts.MaxScenarios = 60
	}
	return cfg
}

// sloclass measures what SLO classing buys during a degradation storm: a
// strict-priority classed PreTE plan (default three-tier spec) against the
// uniform PreTE and TeaVar plans, all integrated over the same
// storm-conditioned failure distribution. The classed plan is then pushed
// through the predictive admission ladder, reporting the exact per-tier
// admit/shed/defer split and checking that everything shed or deferred is
// bounded by the solver's provable residual (the loss mass the per-tier
// solve could not carry). Jain's index over per-tier availability
// quantifies the fairness the priority ladder deliberately gives up.
func sloclass(w io.Writer, opts Options) error {
	cfg := stormEvalConfig(opts)
	topo, scale, stormSize := "IBM", 2.0, 3
	if opts.Quick {
		topo, stormSize = "B4", 2
	}
	env, err := sim.BuildEnv(topo, opts.Seed, cfg)
	if err != nil {
		return err
	}
	ev := sim.NewEvaluator(env, cfg)
	storm := env.StormFibers(stormSize)
	spec := opts.Classes
	if spec == nil {
		spec = te.DefaultClassSpec()
	}

	ca, ep, err := ev.EvaluateStormClassed(scale, storm, spec)
	if err != nil {
		return err
	}
	uniform, err := ev.EvaluateStormUniform("PreTE", scale, storm)
	if err != nil {
		return err
	}
	teavar, err := ev.EvaluateStormUniform("TeaVar", scale, storm)
	if err != nil {
		return err
	}

	// One admission tick on the classed solve: the storm epoch's
	// admit/shed/defer split, with exact accounting enforced.
	dec := wan.NewAdmission(spec, opts.Metrics, nil).Decide(ep.Classed, true)
	if err := dec.Check(); err != nil {
		return fmt.Errorf("sloclass: admission accounting: %w", err)
	}
	// The provable residual is the loss mass the per-tier solves could not
	// carry: sum of phi_k * offered_k. Admission only rejects traffic the
	// solver already proved uncarriable, so shed + deferred never exceeds
	// it.
	var residual, rejected float64
	for k, tr := range ep.Classed.Tiers {
		residual += dec.Tiers[k].Phi * tr.Offered
		rejected += dec.Tiers[k].Shed + dec.Tiers[k].Deferred
	}
	if rejected > residual+1e-9 {
		return fmt.Errorf("sloclass: rejected %v Gbps exceeds the provable residual %v", rejected, residual)
	}

	header(w, "class", "policy", "availability", "nines", "offered_Gbps", "admitted", "shed", "deferred")
	for k, name := range ca.Tiers {
		td := dec.Tiers[k]
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
			name, string(spec.Tiers[k].Policy), availCell(ca.PerTier[k]),
			td.Offered, td.Admitted, td.Shed, td.Deferred)
	}
	fmt.Fprintf(w, "uniform-PreTE\t-\t%s\t-\t-\t-\t-\n", availCell(uniform))
	fmt.Fprintf(w, "uniform-TeaVar\t-\t%s\t-\t-\t-\t-\n", availCell(teavar))

	perTier := make([]float64, len(ca.PerTier))
	for k, a := range ca.PerTier {
		perTier[k] = a.Mean
	}
	fmt.Fprintf(w, "jain_per_tier\t%.4f\n", Jain(perTier))
	fmt.Fprintf(w, "shed_total_Gbps\t%.3f\tresidual_bound_Gbps\t%.3f\n", rejected, residual)
	fmt.Fprintln(w, "# paper-style takeaway: strict priority keeps the latency-critical tier above the uniform plan during the storm; everything rejected is provably uncarriable")
	return nil
}
