package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 2025, Quick: true} }

func runExp(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, &buf, quickOpts()); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) < 20 {
		t.Fatalf("%s produced almost no output: %q", id, out)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig1c", "fig237", "fig4a", "fig4b", "fig5a", "fig5b",
		"fig6", "tab1", "tab6-7", "fig11", "tab3", "fig12", "fig13", "tab4",
		"tab5", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20a",
		"fig20b", "tab8",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, quickOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTitles(t *testing.T) {
	for _, id := range IDs() {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestMeasurementExperiments(t *testing.T) {
	for _, id := range []string{"fig1a", "fig1b", "fig1c", "fig4a", "fig4b", "fig5a", "fig5b", "fig6", "tab1", "tab6-7", "fig12", "fig20a"} {
		id := id
		t.Run(id, func(t *testing.T) {
			out := runExp(t, id)
			if !strings.Contains(out, "\t") {
				t.Fatalf("%s output has no tabular rows", id)
			}
		})
	}
}

func TestTab1Significant(t *testing.T) {
	out := runExp(t, "tab1")
	if strings.Contains(out, "false") {
		t.Fatalf("a critical feature failed significance:\n%s", out)
	}
}

func TestFig237Numbers(t *testing.T) {
	out := runExp(t, "fig237")
	if !strings.Contains(out, "total 10 units") {
		t.Errorf("TeaVaR joint optimum should be 10 units:\n%s", out)
	}
	if !strings.Contains(out, "total 20 units") {
		t.Errorf("oracle optimum should be 20 units:\n%s", out)
	}
	if !strings.Contains(out, "PreTE 10 units vs TeaVaR 5 units") {
		t.Errorf("post-cut throughput should be 10 vs 5:\n%s", out)
	}
}

func TestTab3MatchesTable(t *testing.T) {
	out := runExp(t, "tab3")
	for _, row := range []string{"IBM\t25\t85\t340\t24", "B4\t19\t52\t208\t24"} {
		if !strings.Contains(out, row) {
			t.Errorf("missing row %q in:\n%s", row, out)
		}
	}
}

func TestFig11Structure(t *testing.T) {
	out := runExp(t, "fig11")
	for _, stage := range []string{"detection", "model_inference", "tunnel_update", "te_compute", "total"} {
		if !strings.Contains(out, stage) {
			t.Errorf("missing stage %s", stage)
		}
	}
}

func TestFig18ProductionCase(t *testing.T) {
	out := runExp(t, "fig18")
	if !strings.Contains(out, "traditional-backup\t300") {
		t.Errorf("traditional backup should lose 300 Gbps:\n%s", out)
	}
	if !strings.Contains(out, "PreTE\t0") {
		t.Errorf("PreTE should avoid sustained loss:\n%s", out)
	}
}

func TestAvailabilityExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("availability sweeps in -short mode")
	}
	for _, id := range []string{"fig16", "fig20b"} {
		id := id
		t.Run(id, func(t *testing.T) {
			runExp(t, id)
		})
	}
}

func TestPredictionExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("model training in -short mode")
	}
	out := runExp(t, "tab5")
	if !strings.Contains(out, "NN\t") || !strings.Contains(out, "TeaVar\t") {
		t.Fatalf("tab5 missing model rows:\n%s", out)
	}
}
