package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestIncrementalExperiment runs the quick incremental sweep and checks the
// invariants it is meant to demonstrate: the quiet row serves repeat epochs
// as cache hits, probability drift revalidates instead of evicting,
// structural change evicts, every objective gap is within the optimizer's
// tolerance, and the whole table — deterministic work units only — is
// byte-identical across parallelism settings.
func TestIncrementalExperiment(t *testing.T) {
	run := func(parallelism int) string {
		t.Helper()
		var buf bytes.Buffer
		if err := Run("incremental", &buf, Options{Seed: 2025, Quick: true, Parallelism: parallelism}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := run(1)
	rows := map[string][]string{} // "drift/cache" -> columns
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "==") || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "drift") {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) != 11 {
			t.Fatalf("row has %d columns, want 11: %v", len(cols), cols)
		}
		rows[cols[0]+"/"+cols[1]] = cols
	}
	if len(rows) != 6 { // quick mode: {0, 1e-4, structural} x {off, on}
		t.Fatalf("incremental quick sweep printed %d rows, want 6:\n%s", len(rows), out)
	}
	num := func(row []string, i int) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("column %d of %v: %v", i, row, err)
		}
		return v
	}
	// Quiet epochs: every re-solve is a hit, and the cached sequence does
	// strictly less optimizer work than the cold one.
	quiet := rows["0/on"]
	if hits := num(quiet, 4); hits != 2 {
		t.Errorf("quiet row hits = %v, want 2", hits)
	}
	if num(quiet, 9) >= num(rows["0/off"], 9) {
		t.Errorf("quiet cached work %v not below cold %v", quiet[9], rows["0/off"][9])
	}
	// Probability drift: revalidations, no evictions.
	drift := rows["1e-4/on"]
	if reval := num(drift, 5); reval != 2 {
		t.Errorf("drift row revalidations = %v, want 2", reval)
	}
	if evict := num(drift, 6); evict != 0 {
		t.Errorf("drift row evictions = %v, want 0", evict)
	}
	if cuts := num(drift, 7); cuts <= 0 {
		t.Errorf("drift row reused no cuts: %v", cuts)
	}
	// Structural change: evictions, no reuse.
	structural := rows["structural/on"]
	if evict := num(structural, 6); evict != 2 {
		t.Errorf("structural row evictions = %v, want 2", evict)
	}
	if hits := num(structural, 4); hits != 0 {
		t.Errorf("structural row hits = %v, want 0", hits)
	}
	// Warm starts move work, never answers.
	for key, row := range rows {
		if gap := num(row, 10); gap > 1e-6 {
			t.Errorf("row %s: phi_gap %v exceeds tolerance", key, gap)
		}
	}
	// Deterministic work units only: byte-identical at any parallelism.
	for _, p := range []int{2, 8} {
		if got := run(p); got != out {
			t.Fatalf("incremental output differs between parallelism 1 and %d", p)
		}
	}
}
