package experiments

import (
	"math"
	"testing"

	"prete/internal/sim"
)

func TestJain(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 1},
		{"all-zero", []float64{0, 0, 0}, 1},
		{"equal", []float64{2, 2, 2, 2}, 1},
		{"one-hot", []float64{1, 0, 0, 0}, 0.25},
		// (10+20+30)^2 / (3 * (100+400+900)) = 3600/4200
		{"skewed", []float64{10, 20, 30}, 3600.0 / 4200.0},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	// Scale invariance: fairness is about shares, not magnitudes.
	a := Jain([]float64{1, 2, 3})
	b := Jain([]float64{100, 200, 300})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("Jain not scale-invariant: %v vs %v", a, b)
	}
}

func TestAvailCell(t *testing.T) {
	got := availCell(sim.Availability{Mean: 0.999})
	want := "0.999000\t3.00"
	if got != want {
		t.Errorf("availCell = %q, want %q", got, want)
	}
	if availCell(sim.Availability{Mean: 1}) == "" {
		t.Error("availCell empty for perfect availability")
	}
}
