package experiments

import (
	"bytes"
	"strings"
	"testing"

	"prete/internal/obs"
)

// TestFig8PipelineMetrics runs the end-to-end pipeline experiment twice —
// with and without a registry — and checks (a) the printed artifact is
// byte-identical, and (b) the instrumented run lights up every layer the
// acceptance criteria name: Benders iterations, scenario evaluations, and
// telemetry batching.
func TestFig8PipelineMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline experiment; skipped in -short mode")
	}
	opts := Options{Seed: 2025, Quick: true}
	var plain bytes.Buffer
	if err := Run("fig8", &plain, opts); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	var metered bytes.Buffer
	if err := Run("fig8", &metered, opts); err != nil {
		t.Fatal(err)
	}
	if plain.String() != metered.String() {
		t.Errorf("fig8 output differs with metrics attached:\n%s\n---\n%s", plain.String(), metered.String())
	}
	if !strings.Contains(plain.String(), "degradation signals") {
		t.Errorf("fig8 output missing telemetry stage: %s", plain.String())
	}
	for _, c := range []string{
		"core.benders.iterations",
		"sim.scenarios.evaluated",
		"sim.deg_scenarios.evaluated",
		"telemetry.batch.runs",
		"telemetry.batch.fibers",
		"telemetry.samples.observed",
		"telemetry.degradations.detected",
	} {
		if reg.Counter(c).Value() == 0 {
			t.Errorf("counter %s is zero after fig8", c)
		}
	}
	if reg.Timer("telemetry.batch.latency").Count() == 0 {
		t.Error("telemetry batch latency not timed")
	}
	if reg.Timer("sim.scenario.eval_time").Count() == 0 {
		t.Error("scenario eval time not timed")
	}
}
