package experiments

import (
	"testing"

	"prete/internal/ml"
	"prete/internal/optical"
	"prete/internal/trace"
)

type fixedPredictor float64

func (f fixedPredictor) PredictProb(optical.Features) float64 { return float64(f) }
func (f fixedPredictor) Name() string                         { return "fixed" }

func TestMeasuredQuality(t *testing.T) {
	test := []trace.LabeledExample{
		{Features: optical.Features{DegreeDB: 4.1}, Failed: true},
		{Features: optical.Features{DegreeDB: 5.2}, Failed: true},
		{Features: optical.Features{DegreeDB: 6.3}, Failed: false},
		{Features: optical.Features{DegreeDB: 7.4}, Failed: false},
	}
	q := MeasuredQuality(fixedPredictor(0.7), test)
	if q.PHatFail != 0.7 || q.PHatOK != 0.7 {
		t.Fatalf("quality = %+v", q)
	}
	// an oracle keyed to the examples scores 1/0
	oracle := ml.NewOracle(test)
	q = MeasuredQuality(oracle, test)
	if q.PHatFail < 0.99 || q.PHatOK > 0.01 {
		t.Fatalf("oracle quality = %+v", q)
	}
	// degenerate single-class sets fall back to 0.5 on the missing side
	q = MeasuredQuality(fixedPredictor(0.2), test[:2])
	if q.PHatOK != 0.5 {
		t.Fatalf("missing-class fallback = %+v", q)
	}
}
