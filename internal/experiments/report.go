package experiments

import (
	"fmt"

	"prete/internal/sim"
)

// Jain computes Jain's fairness index (sum x)^2 / (n * sum x^2) over the
// per-entity allocations xs: 1 when every entity gets an equal share,
// approaching 1/n as one entity takes everything. An empty vector has no
// fairness to measure and returns 0; an all-zero vector is perfectly equal
// and returns 1.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// availCell formats the availability/nines column pair shared by every
// availability table ("%.6f\t%.2f"), so the sloclass experiment and the
// fig13-family sweeps print identical cells for the same measurement.
func availCell(a sim.Availability) string {
	return fmt.Sprintf("%.6f\t%.2f", a.Mean, sim.Nines(a.Mean))
}
