package experiments

import (
	"fmt"
	"io"
	"time"

	"prete/internal/fault"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/wan"
)

func init() {
	register("chaos", "Control-plane chaos sweep: reaction latency and plan availability vs injected RPC faults", chaos)
}

// chaos is the Fig 11-style stress companion: it replays the §5 reaction
// pipeline on the loopback testbed while a seeded fault injector perturbs
// the controller<->agent RPC stream, sweeping drop probability and added
// per-RPC delay. For every cell it reports the mean end-to-end reaction
// latency (and its delta against the fault-free baseline cell), the
// controller's retry/give-up counts, and the control plane's plan
// availability — the fraction of TE rounds that installed the freshly
// computed plan rather than degrading to the last good one. The fault
// decisions derive from (seed, peer), so any cell replays bit-identically.
func chaos(w io.Writer, opts Options) error {
	drops := []float64{0, 0.05, 0.10, 0.20}
	delays := []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond}
	rounds := 5
	if opts.Quick {
		drops = []float64{0, 0.10}
		delays = []time.Duration{0, 10 * time.Millisecond}
		rounds = 3
	}
	cfg := wan.SwitchConfig{
		InstallLatency: 3 * time.Millisecond,
		RateLatency:    300 * time.Microsecond,
		MaxTunnels:     20000,
	}
	header(w, "drop", "delay_ms", "rounds", "degraded", "retries", "giveups", "reaction_ms", "delta_ms", "plan_avail")
	baseline := -1.0
	for _, drop := range drops {
		for _, delay := range delays {
			cell, err := chaosCell(cfg, opts, drop, delay, rounds)
			if err != nil {
				return err
			}
			if baseline < 0 {
				baseline = cell.meanMS // first cell is (drop=0, delay=0)
			}
			fmt.Fprintf(w, "%.2f\t%.0f\t%d\t%d\t%d\t%d\t%.1f\t%+.1f\t%.2f\n",
				drop, ms(delay), rounds, cell.degraded, cell.retries, cell.giveups,
				cell.meanMS, cell.meanMS-baseline,
				1-float64(cell.degraded)/float64(rounds))
		}
	}
	fmt.Fprintln(w, "# plan_avail: fraction of TE rounds that installed the fresh plan (degraded rounds keep the last good plan; agents are never rate-less)")
	fmt.Fprintln(w, "# reaction_ms is wall clock and varies run to run; the installed plans and event order replay bit-identically from the seed")
	return nil
}

type chaosCellResult struct {
	meanMS   float64
	degraded int
	retries  int64
	giveups  int64
}

// chaosCell builds one faulted testbed and drives `rounds` reaction rounds
// through it.
func chaosCell(cfg wan.SwitchConfig, opts Options, drop float64, delay time.Duration, rounds int) (chaosCellResult, error) {
	spec := fault.Spec{Seed: opts.Seed, Drop: drop}
	if delay > 0 {
		spec.DelayProb = 1
		spec.DelayMin, spec.DelayMax = delay, delay
	}
	reg := obs.NewRegistry()
	inj, err := fault.NewInjector(spec, reg)
	if err != nil {
		return chaosCellResult{}, err
	}
	tb, err := wan.NewTestbedTransport(cfg, func(f optical.Features) float64 { return 0.8 },
		fault.NewTransport(wan.TCPTransport{}, inj))
	if err != nil {
		return chaosCellResult{}, err
	}
	defer tb.Close()
	tb.Ctl.Metrics = reg
	tb.Ctl.Retry = wan.RetryPolicy{
		MaxAttempts: 5, BaseBackoff: time.Millisecond,
		MaxBackoff: 20 * time.Millisecond, Jitter: 0.5,
	}
	var res chaosCellResult
	var total time.Duration
	for r := 0; r < rounds; r++ {
		timing, err := tb.RunScenario(opts.Seed)
		if err != nil {
			return chaosCellResult{}, fmt.Errorf("chaos cell drop=%.2f delay=%v round %d: %w", drop, delay, r, err)
		}
		total += timing.Total()
		if timing.Degraded {
			res.degraded++
		}
	}
	res.meanMS = ms(total) / float64(rounds)
	res.retries = reg.Counter("wan.rpc.retries").Value()
	res.giveups = reg.Counter("wan.rpc.giveups").Value()
	if opts.Metrics != nil {
		// Mirror the cell's control-plane series into the caller's registry
		// so `prete-sim -exp chaos -metrics` lights up the wan.* and fault.*
		// namespaces (summed across cells).
		for _, name := range []string{
			"wan.rpc.count", "wan.rpc.errors", "wan.rpc.retries", "wan.rpc.giveups",
			"wan.fallback.rounds", "wan.fallback.tunnel_rounds", "fault.rpcs",
		} {
			opts.Metrics.Counter(name).Add(reg.Counter(name).Value())
		}
	}
	return res, nil
}
