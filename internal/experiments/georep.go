package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"prete/internal/fault"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/wan"
)

func init() {
	register("georep", "Cross-site replication sweep: promotion time, plan availability, and snapshot re-syncs vs replication-stream loss and retention lag", georep)
}

// georep sweeps cross-site failover under replication stress: a leader
// journals epochs while two remote sites apply its CRC-framed stream into
// their own state directories, with the stream to site 1 dropping frames at
// the swept rate and the leader's replication buffer capped at the swept
// retention. The leader's lease endpoint then dies; the surviving sites'
// leases run out and the lowest site promotes from its own replica —
// re-syncing by snapshot first if the loss pushed it behind the retention
// window. Per cell the table reports which site won, detection ticks,
// snapshot re-syncs the winner needed, retried frames on the lossy stream,
// whether the promoted controller held a plan immediately (plan_avail),
// whether its apply-path mirror matched durable truth (mirror), and the
// promotion wall time against the one-TE-period recovery bound.
func georep(w io.Writer, opts Options) error {
	drops := []float64{0, 0.3, 0.6}
	retains := []int{1, 64}
	if opts.Quick {
		drops = []float64{0, 0.6}
		retains = []int{1}
	}
	header(w, "drop", "retain", "promoted", "detect_ticks", "resyncs", "resent", "plan_avail", "mirror", "promote_ms", "te_period_ms", "within_period")
	const tePeriod = 10 * time.Second
	for _, retain := range retains {
		for _, drop := range drops {
			cell, err := georepCell(opts, drop, retain)
			if err != nil {
				return err
			}
			avail, mirror := 0, 0
			if cell.planAvail {
				avail = 1
			}
			if cell.mirrorMatch {
				mirror = 1
			}
			within := "yes"
			if cell.promote >= tePeriod {
				within = "NO"
			}
			fmt.Fprintf(w, "%.1f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.0f\t%s\n",
				drop, retain, cell.promoted, cell.detectTicks, cell.resyncs,
				cell.resent, avail, mirror, ms(cell.promote), ms(tePeriod), within)
		}
	}
	fmt.Fprintln(w, "# drop: per-frame loss probability on the replication stream to site 1 (site 2's stream is clean)")
	fmt.Fprintln(w, "# retain: leader-side replication buffer in records; a site behind it re-syncs by snapshot")
	fmt.Fprintln(w, "# resyncs: snapshot re-syncs the winning site applied over its standby lifetime")
	fmt.Fprintln(w, "# resent: frames the leader re-shipped after loss (shipped = acked + resent at quiesce)")
	fmt.Fprintln(w, "# promote_ms: lease expiry to hand-off complete (recover + fence + re-assert); wall clock, varies run to run")
	return nil
}

type georepCellResult struct {
	promoted    int
	detectTicks int
	resyncs     int64
	resent      int64
	planAvail   bool
	mirrorMatch bool
	promote     time.Duration
}

// georepCell runs one cross-site failover trace: three epochs replicate
// through the swept loss and retention, the lease endpoint dies, and the
// site set ticks until a site promotes.
func georepCell(opts Options, drop float64, retain int) (georepCellResult, error) {
	cfg := wan.SwitchConfig{
		InstallLatency: 3 * time.Millisecond,
		RateLatency:    300 * time.Microsecond,
		MaxTunnels:     20000,
	}
	reg := obs.NewRegistry()
	tb, err := wan.NewTestbed(cfg, func(f optical.Features) float64 { return 0.8 })
	if err != nil {
		return georepCellResult{}, err
	}
	defer tb.Close()
	tb.SolveUnits = opts.Budget
	tb.Ctl.Metrics = reg
	dir, err := os.MkdirTemp("", "prete-georep-*")
	if err != nil {
		return georepCellResult{}, err
	}
	defer os.RemoveAll(dir)
	sitesRoot, err := os.MkdirTemp("", "prete-georep-sites-*")
	if err != nil {
		return georepCellResult{}, err
	}
	defer os.RemoveAll(sitesRoot)
	if _, err := tb.OpenState(dir); err != nil {
		return georepCellResult{}, err
	}
	lease, err := wan.NewLeaseServer(tb.Ctl.Generation)
	if err != nil {
		return georepCellResult{}, err
	}
	defer lease.Close()
	agents := make(map[string]string, len(tb.Agents))
	for _, a := range tb.Agents {
		agents[a.Name] = a.Addr()
	}
	ss, err := wan.NewSiteSet(dir, sitesRoot, lease.Addr(), agents, wan.SiteOptions{
		Sites:            2,
		LeaseTicks:       3,
		HeartbeatTimeout: 100 * time.Millisecond,
		RetainRecords:    retain,
		Ship: func(id int) wan.Transport {
			if id != 1 || drop == 0 {
				return wan.TCPTransport{}
			}
			inj, ierr := fault.NewInjector(fault.Spec{Seed: opts.Seed, Drop: drop}, reg)
			if ierr != nil {
				return wan.TCPTransport{}
			}
			return fault.NewTransport(wan.TCPTransport{}, inj)
		},
		Retry:   wan.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Jitter: 0.5},
		Metrics: reg,
	})
	if err != nil {
		return georepCellResult{}, err
	}
	defer ss.Close()

	// Three epochs replicate cross-site; a lossy stream with a tight
	// retention forces site 1 through the snapshot re-sync path while the
	// leader is still healthy. Several ticks per epoch model a TE period
	// spanning multiple replication rounds — a dropped frame is retried
	// within the same epoch, not a whole period later.
	for e := 0; e < 3; e++ {
		if _, err := tb.RunScenario(opts.Seed); err != nil {
			return georepCellResult{}, fmt.Errorf("georep epoch %d: %w", e+1, err)
		}
		for i := 0; i < 3; i++ {
			if p, err := ss.Tick(); err != nil || p != nil {
				return georepCellResult{}, fmt.Errorf("georep healthy tick: promotion=%v err=%v", p, err)
			}
		}
	}
	// The lease endpoint dies with the leader; no shared lock exists
	// cross-site, so detection is purely lease expiry.
	lease.Close()
	var res georepCellResult
	var prom *wan.SitePromotion
	for prom == nil {
		if res.detectTicks++; res.detectTicks > 16 {
			return georepCellResult{}, errors.New("georep: no promotion within 16 ticks")
		}
		prom, err = ss.Tick()
		if err != nil && !errors.Is(err, wan.ErrClaimFenced) {
			return georepCellResult{}, err
		}
	}
	res.promoted = prom.SiteID
	res.resyncs = prom.Resyncs
	res.mirrorMatch = prom.MirrorMatch
	res.promote = prom.Elapsed
	res.planAvail = prom.Ctl.LastGoodRates() != nil
	res.resent = ss.ReplStats().Resent
	zombie := tb.AdoptPromoted(prom.Ctl)
	defer zombie.Close()
	// The adopted lineage completes the next epoch.
	if _, err := tb.RunScenario(opts.Seed); err != nil {
		return georepCellResult{}, fmt.Errorf("georep post-promotion epoch: %w", err)
	}
	if opts.Metrics != nil {
		for _, name := range []string{
			"wan.georep.ticks", "wan.georep.heartbeats", "wan.georep.misses",
			"wan.georep.elections", "wan.georep.site_resyncs", "wan.georep.resync_requests",
			"wan.failover.promotions", "wan.failover.reasserts",
			"wan.failover.mirror_match", "wan.failover.mirror_mismatch",
			"persist.repl.shipped", "persist.repl.acked", "persist.repl.resent",
			"persist.repl.resyncs", "persist.tail.dead_files",
		} {
			opts.Metrics.Counter(name).Add(reg.Counter(name).Value())
		}
	}
	return res, nil
}
