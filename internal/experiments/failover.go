package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"prete/internal/fault"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/wan"
)

func init() {
	register("failover", "Replicated-controller failover sweep: detection ticks, promotion time, and plan availability vs standby count and crash point", failover)
}

// failover sweeps replicated-controller hand-off: for each standby count
// and leader crash point (clean death between epochs, or kill -9 after N
// RPCs of the next epoch), a leader journals an epoch while hot standbys
// tail its journal; the leader then dies, the replica set detects the
// missing lease, and the lowest live standby promotes — recovering the
// shared store under a fresh fencing generation and re-asserting the
// last-good plan fleet-wide. Per cell the table reports which standby won,
// how many detection ticks the election took, whether the promoted
// controller held a valid plan immediately (plan_avail), whether its
// tailed mirror matched durable truth (mirror), and the promotion wall
// time against the one-TE-period recovery bound.
func failover(w io.Writer, opts Options) error {
	standbyCounts := []int{1, 2}
	crashRPCs := []int64{-1, 2} // -1 = clean death between epochs
	if opts.Quick {
		standbyCounts = []int{2}
	}
	header(w, "standbys", "crash_rpc", "promoted", "detect_ticks", "plan_avail", "mirror", "promote_ms", "te_period_ms", "within_period")
	const tePeriod = 10 * time.Second
	for _, n := range standbyCounts {
		for _, cp := range crashRPCs {
			cell, err := failoverCell(opts, n, cp)
			if err != nil {
				return err
			}
			crash := "clean"
			if cp >= 0 {
				crash = fmt.Sprintf("%d", cp)
			}
			avail, mirror := 0, 0
			if cell.planAvail {
				avail = 1
			}
			if cell.mirrorMatch {
				mirror = 1
			}
			within := "yes"
			if cell.promote >= tePeriod {
				within = "NO"
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\t%.2f\t%.0f\t%s\n",
				n, crash, cell.promoted, cell.detectTicks, avail, mirror,
				ms(cell.promote), ms(tePeriod), within)
		}
	}
	fmt.Fprintln(w, "# crash_rpc: clean = leader dies between epochs; N = killed after N RPCs of the next epoch (that epoch is lost)")
	fmt.Fprintln(w, "# plan_avail: the promoted controller re-asserted a journaled plan before running any epoch")
	fmt.Fprintln(w, "# mirror: the standby's tailed journal mirror matched the durably recovered state exactly")
	fmt.Fprintln(w, "# promote_ms: election to hand-off complete (recover + fence + re-assert); wall clock, varies run to run")
	return nil
}

type failoverCellResult struct {
	promoted    int
	detectTicks int
	planAvail   bool
	mirrorMatch bool
	promote     time.Duration
}

// failoverCell runs one failover trace: epoch 1 completes and is tailed by
// n standbys, the leader dies at the given crash point, and the replica
// set ticks until a standby promotes.
func failoverCell(opts Options, standbys int, crashRPC int64) (failoverCellResult, error) {
	cfg := wan.SwitchConfig{
		InstallLatency: 3 * time.Millisecond,
		RateLatency:    300 * time.Microsecond,
		MaxTunnels:     20000,
	}
	reg := obs.NewRegistry()
	ct := fault.NewCtlCrash(wan.TCPTransport{}, 0, reg)
	ct.Disarm()
	tb, err := wan.NewTestbedTransport(cfg, func(f optical.Features) float64 { return 0.8 }, ct)
	if err != nil {
		return failoverCellResult{}, err
	}
	defer tb.Close()
	tb.SolveUnits = opts.Budget
	tb.Ctl.Metrics = reg
	dir, err := os.MkdirTemp("", "prete-failover-*")
	if err != nil {
		return failoverCellResult{}, err
	}
	defer os.RemoveAll(dir)
	if _, err := tb.OpenState(dir); err != nil {
		return failoverCellResult{}, err
	}
	lease, err := wan.NewLeaseServer(tb.Ctl.Generation)
	if err != nil {
		return failoverCellResult{}, err
	}
	defer lease.Close()
	agents := make(map[string]string, len(tb.Agents))
	for _, a := range tb.Agents {
		agents[a.Name] = a.Addr()
	}
	rs, err := wan.NewReplicaSet(dir, lease.Addr(), agents, wan.ReplicaOptions{
		Standbys:         standbys,
		MissThreshold:    2,
		HeartbeatTimeout: 100 * time.Millisecond,
		Metrics:          reg,
	})
	if err != nil {
		return failoverCellResult{}, err
	}
	defer rs.Close()

	// Epoch 1 journals; the standbys tail it warm.
	if _, err := tb.RunScenario(opts.Seed); err != nil {
		return failoverCellResult{}, fmt.Errorf("failover epoch 1: %w", err)
	}
	if _, err := rs.Tick(); err != nil {
		return failoverCellResult{}, err
	}
	// Leader death at the configured crash point.
	if crashRPC >= 0 {
		ct.Arm(crashRPC)
		if _, err := tb.RunScenario(opts.Seed); err == nil {
			return failoverCellResult{}, fmt.Errorf("failover: crash after %d RPCs did not halt the epoch", crashRPC)
		}
	}
	lease.Close()
	if err := tb.Ctl.ReleaseState(); err != nil {
		return failoverCellResult{}, err
	}
	// Detection: tick until a standby claims the directory.
	var res failoverCellResult
	var prom *wan.Promotion
	for prom == nil {
		if res.detectTicks++; res.detectTicks > 16 {
			return failoverCellResult{}, errors.New("failover: no promotion within 16 ticks")
		}
		prom, err = rs.Tick()
		if err != nil && !errors.Is(err, wan.ErrPromotionBlocked) {
			return failoverCellResult{}, err
		}
	}
	res.promoted = prom.StandbyID
	res.mirrorMatch = prom.MirrorMatch
	res.promote = prom.Elapsed
	res.planAvail = prom.Ctl.LastGoodRates() != nil
	zombie := tb.AdoptPromoted(prom.Ctl)
	defer zombie.Close()
	// The adopted lineage completes the next epoch.
	if _, err := tb.RunScenario(opts.Seed); err != nil {
		return failoverCellResult{}, fmt.Errorf("failover post-promotion epoch: %w", err)
	}
	if opts.Metrics != nil {
		for _, name := range []string{
			"wan.election.ticks", "wan.election.heartbeats", "wan.election.misses",
			"wan.election.elections", "wan.failover.promotions", "wan.failover.reasserts",
			"wan.failover.mirror_match", "wan.failover.mirror_mismatch",
			"persist.tail.polls", "persist.tail.records",
		} {
			opts.Metrics.Counter(name).Add(reg.Counter(name).Value())
		}
	}
	return res, nil
}
