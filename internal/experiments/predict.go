package experiments

import (
	"fmt"
	"io"

	"prete/internal/ml"
	"prete/internal/sim"
	"prete/internal/stats"
	"prete/internal/trace"
)

func init() {
	register("tab5", "Prediction accuracy of TeaVar / Statistic / DT / NN", tab5)
	register("fig14", "Distribution of per-link prediction error", fig14)
	register("tab8", "NN feature ablation (Appendix A.6)", tab8)
}

// trainedModels fits the Table 5 model zoo on the shared trace.
type trainedModels struct {
	train, test []trace.LabeledExample
	nn          *ml.NN
	dt          *ml.DecisionTree
	st          *ml.Statistic
	naive       ml.NaiveTeaVar
}

func fitModels(opts Options) (*trainedModels, error) {
	tr, err := traceFor(opts)
	if err != nil {
		return nil, err
	}
	train, test, err := tr.Split(0.8)
	if err != nil {
		return nil, err
	}
	nnCfg := ml.DefaultNNConfig(opts.Seed)
	if opts.Quick {
		nnCfg.Epochs = 8
	}
	nn, err := ml.TrainNN(train, nnCfg)
	if err != nil {
		return nil, err
	}
	dt, err := ml.TrainDT(train, ml.DefaultDTConfig())
	if err != nil {
		return nil, err
	}
	st, err := ml.TrainStatistic(train)
	if err != nil {
		return nil, err
	}
	return &trainedModels{
		train: train, test: test,
		nn: nn, dt: dt, st: st, naive: ml.NaiveTeaVar{PI: 0.003},
	}, nil
}

// tab5 prints precision/recall of the four models.
func tab5(w io.Writer, opts Options) error {
	m, err := fitModels(opts)
	if err != nil {
		return err
	}
	header(w, "model", "P", "R", "F1", "Acc")
	for _, p := range []ml.Predictor{m.naive, m.st, m.dt, m.nn} {
		c := ml.Evaluate(p, m.test)
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", p.Name(), c.Precision(), c.Recall(), c.F1(), c.Accuracy())
	}
	fmt.Fprintln(w, "# paper: TeaVar ~0/~0, Statistic 0.45/0.37, DT 0.68/0.53, NN 0.81/0.81")
	return nil
}

// fig14 prints the per-link prediction error distributions for the naive
// baseline vs the NN.
func fig14(w io.Writer, opts Options) error {
	m, err := fitModels(opts)
	if err != nil {
		return err
	}
	header(w, "model", "quantile", "per_link_error")
	for _, p := range []ml.Predictor{m.naive, m.nn} {
		errs := ml.PerLinkError(p, m.test)
		ecdf := stats.NewECDF(errs)
		for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
			fmt.Fprintf(w, "%s\tp%02.0f\t%.3f\n", p.Name(), q*100, ecdf.Quantile(q))
		}
	}
	fmt.Fprintln(w, "# paper: PreTE's NN exhibits a smaller prediction error than TeaVar")
	return nil
}

// tab8 runs the leave-one-feature-out ablation.
func tab8(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	train, test, err := tr.Split(0.8)
	if err != nil {
		return err
	}
	features := []string{"time", "gradient", "degree", "fluctuation", "region", "fiberID", "vendor"}
	header(w, "method", "P", "R", "F1", "Acc")
	run := func(label string, mask ml.FeatureMask) error {
		cfg := ml.DefaultNNConfig(opts.Seed)
		cfg.Mask = mask
		if opts.Quick {
			cfg.Epochs = 6
		} else {
			cfg.Epochs = 12
		}
		nn, err := ml.TrainNN(train, cfg)
		if err != nil {
			return err
		}
		c := ml.Evaluate(nn, test)
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", label, c.Precision(), c.Recall(), c.F1(), c.Accuracy())
		return nil
	}
	for _, f := range features {
		mask, err := ml.AllFeatures().Without(f)
		if err != nil {
			return err
		}
		if err := run("NN w/o "+f, mask); err != nil {
			return err
		}
	}
	if err := run("NN-all", ml.AllFeatures()); err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: NN-all best (0.81); NN w/o fiber ID worst (F1 0.68, Acc 0.61)")
	return nil
}

// MeasuredQuality derives a sim.PredictorQuality from a trained model's
// conditional predictions on the test set — the bridge from Table 5's
// models to Fig 15's availability curves.
func MeasuredQuality(p ml.Predictor, test []trace.LabeledExample) sim.PredictorQuality {
	var failSum, okSum float64
	var failN, okN int
	for _, ex := range test {
		pr := p.PredictProb(ex.Features)
		if ex.Failed {
			failSum += pr
			failN++
		} else {
			okSum += pr
			okN++
		}
	}
	q := sim.PredictorQuality{Name: p.Name(), PHatFail: 0.5, PHatOK: 0.5}
	if failN > 0 {
		q.PHatFail = failSum / float64(failN)
	}
	if okN > 0 {
		q.PHatOK = okSum / float64(okN)
	}
	return q
}
