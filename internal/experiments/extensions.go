package experiments

import (
	"fmt"
	"io"

	"prete/internal/ml"
	"prete/internal/topology"
	"prete/internal/trace"
)

// The ext* experiments implement the paper's §8 / future-work directions —
// they have no paper artifact to compare against, but quantify the
// headroom the discussion section points at.

func init() {
	register("ext1", "Extension (§8): extended optical indicators (PMD, chromatic dispersion)", ext1)
	register("ext2", "Extension (§8): deeper prediction models", ext2)
}

// extendedTrace builds a trace where PMD/CD carry real signal.
func extendedTrace(opts Options) (*trace.Trace, error) {
	net, err := topology.TWAN(opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := trace.DefaultConfig(opts.Seed)
	cfg.ExtendedIndicators = true
	if opts.Quick {
		cfg.Days = 120
	}
	return trace.Generate(cfg, net)
}

// ext1 compares the NN with and without the extended indicators.
func ext1(w io.Writer, opts Options) error {
	tr, err := extendedTrace(opts)
	if err != nil {
		return err
	}
	train, test, err := tr.Split(0.8)
	if err != nil {
		return err
	}
	epochs := 20
	if opts.Quick {
		epochs = 8
	}
	header(w, "model", "P", "R", "F1", "Acc")
	for _, c := range []struct {
		name string
		mask ml.FeatureMask
	}{
		{"NN (paper features)", ml.AllFeatures()},
		{"NN + PMD/CD", ml.AllFeatures().WithExtended()},
	} {
		cfg := ml.DefaultNNConfig(opts.Seed)
		cfg.Epochs = epochs
		cfg.Mask = c.mask
		nn, err := ml.TrainNN(train, cfg)
		if err != nil {
			return err
		}
		cm := ml.Evaluate(nn, test)
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", c.name, cm.Precision(), cm.Recall(), cm.F1(), cm.Accuracy())
	}
	fmt.Fprintln(w, "# §8: \"observe more optical indicators such as polarization mode dispersion, chromatic dispersion to improve the predictability\"")
	return nil
}

// ext2 compares the vanilla MLP against deeper variants.
func ext2(w io.Writer, opts Options) error {
	tr, err := extendedTrace(opts)
	if err != nil {
		return err
	}
	train, test, err := tr.Split(0.8)
	if err != nil {
		return err
	}
	epochs := 20
	depths := []int{0, 1, 2}
	if opts.Quick {
		epochs = 8
		depths = []int{0, 1}
	}
	header(w, "extra_hidden_layers", "P", "R", "F1", "Acc")
	for _, d := range depths {
		cfg := ml.DefaultNNConfig(opts.Seed)
		cfg.Epochs = epochs
		cfg.ExtraHidden = d
		nn, err := ml.TrainNN(train, cfg)
		if err != nil {
			return err
		}
		cm := ml.Evaluate(nn, test)
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\n", d, cm.Precision(), cm.Recall(), cm.F1(), cm.Accuracy())
	}
	fmt.Fprintln(w, "# §8: \"explore the design of an effective deep neural network model\"")
	return nil
}
