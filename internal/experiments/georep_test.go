package experiments

import (
	"bytes"
	"strings"
	"testing"

	"prete/internal/obs"
)

// TestGeorepExperiment runs the quick cross-site replication sweep end to
// end and checks its invariants: every cell promotes site 1 with a plan
// immediately available and a matching replicated mirror, the lossy cell
// (drop 0.6 at retention 1) needed at least one snapshot re-sync, every
// promotion stays inside one TE period, and the georep/replication series
// are mirrored into the caller's registry. The wall-clock column
// (promote_ms) is not asserted.
func TestGeorepExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	if err := Run("georep", &buf, Options{Seed: 2025, Quick: true, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var rows [][]string
	for _, line := range strings.Split(out, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "==") || strings.HasPrefix(line, "#"),
			strings.HasPrefix(line, "drop"):
		default:
			rows = append(rows, strings.Split(line, "\t"))
		}
	}
	if len(rows) != 2 { // quick mode: retention 1 x drop {0, 0.6}
		t.Fatalf("georep quick sweep printed %d cells, want 2:\n%s", len(rows), out)
	}
	for i, row := range rows {
		if len(row) != 11 {
			t.Fatalf("row %d has %d columns, want 11: %v", i, len(row), row)
		}
		if row[2] != "1" {
			t.Errorf("cell %d promoted site %s, want the lowest site 1: %v", i, row[2], row)
		}
		if row[3] == "0" {
			t.Errorf("cell %d reports zero detection ticks: %v", i, row)
		}
		if row[6] != "1" {
			t.Errorf("cell %d promoted without an available plan: %v", i, row)
		}
		if row[7] != "1" {
			t.Errorf("cell %d promoted with a mirror mismatch: %v", i, row)
		}
		if row[10] != "yes" {
			t.Errorf("cell %d promotion exceeded one TE period: %v", i, row)
		}
	}
	// The clean cell ships without loss; the lossy cell must have resent
	// frames and re-synced by snapshot at the tight retention.
	if clean := rows[0]; clean[4] != "0" || clean[5] != "0" {
		t.Errorf("clean cell reports re-syncs/resends: %v", clean)
	}
	if lossy := rows[1]; lossy[4] == "0" || lossy[5] == "0" {
		t.Errorf("lossy cell at retention 1 never re-synced or resent: %v", lossy)
	}
	if reg.Counter("wan.failover.promotions").Value() == 0 {
		t.Error("wan.failover.promotions not mirrored into the experiment registry")
	}
	if reg.Counter("wan.georep.elections").Value() == 0 {
		t.Error("wan.georep.elections not mirrored into the experiment registry")
	}
	if reg.Counter("persist.repl.shipped").Value() == 0 {
		t.Error("persist.repl.shipped not mirrored into the experiment registry")
	}
}
