package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"prete/internal/core"
	"prete/internal/par"
	"prete/internal/routing"
	"prete/internal/sim"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

func init() {
	register("fig13", "Availability vs demand scale for PreTE and state-of-the-art TE", fig13)
	register("tab4", "PreTE's satisfied-demand gain at availability levels", tab4)
	register("fig15", "Impact of prediction accuracy on availability", fig15)
	register("fig16", "Impact of creating new tunnels on availability and TE runtime", fig16)
	register("fig17", "Impact of workload vs capacity uncertainty", fig17)
	register("fig18", "Production case: predictive rerouting across four sites", fig18)
	register("fig19", "Tunnel traffic variation by uncertainty source (Appendix A.7)", fig19)
	register("fig20b", "Availability vs fraction of predictable cuts (Appendix A.9)", fig20b)
}

func evalConfig(opts Options) sim.Config {
	cfg := sim.DefaultConfig()
	// Full runs are sized for a single-core box: enough degradation
	// scenarios and failure scenarios to pin the shapes, not the tails.
	cfg.ScenarioOpts.MaxScenarios = 250
	cfg.MaxDegScenarios = 6
	cfg.Parallelism = opts.Parallelism
	cfg.SolveBudget = opts.Budget
	cfg.Metrics = opts.Metrics
	if opts.Quick {
		cfg.ScenarioOpts.MaxScenarios = 120
		cfg.MaxDegScenarios = 4
	}
	return cfg
}

// evalGrid fills the (scheme, scale) availability matrix of one evaluator,
// fanning the independent cells across workers. Results land in an
// index-addressed grid (grid[si][ci] for schemes[si] at scales[ci]), so
// callers print rows in a fixed order and the output is byte-identical at
// every parallelism level. Cell evaluations also share the evaluator's
// post-failure plan caches, which the evaluator guards internally.
func evalGrid(ev *sim.Evaluator, schemes []string, scales []float64, parallelism int) ([][]sim.Availability, error) {
	flat, err := par.MapErr(len(schemes)*len(scales), parallelism, func(i int) (sim.Availability, error) {
		scheme, scale := schemes[i/len(scales)], scales[i%len(scales)]
		a, err := ev.Evaluate(scheme, scale)
		if err != nil {
			return sim.Availability{}, fmt.Errorf("%s@%v: %w", scheme, scale, err)
		}
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	grid := make([][]sim.Availability, len(schemes))
	for si := range schemes {
		grid[si] = flat[si*len(scales) : (si+1)*len(scales)]
	}
	return grid, nil
}

func sweepSpec(opts Options) (topos []string, schemes []string, scales []float64) {
	if opts.Quick {
		return []string{"B4"},
			[]string{"ECMP", "FFC-1", "TeaVar", "Flexile", "PreTE"},
			[]float64{1, 2, 3, 4}
	}
	return []string{"B4", "IBM"},
		[]string{"ECMP", "FFC-1", "FFC-2", "TeaVar", "ARROW", "Flexile", "PreTE", "Oracle"},
		[]float64{1, 2.5, 4, 6}
}

// fig13 sweeps demand scales across topologies and schemes. The (scheme,
// scale) cells of each topology are independent, so they fan out across
// workers; rows print from the merged grid in sweep order.
func fig13(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	topos, schemes, scales := sweepSpec(opts)
	header(w, "topology", "scheme", "scale", "availability", "nines")
	for _, topo := range topos {
		env, err := sim.BuildEnv(topo, opts.Seed, cfg)
		if err != nil {
			return err
		}
		grid, err := evalGrid(sim.NewEvaluator(env, cfg), schemes, scales, opts.Parallelism)
		if err != nil {
			return fmt.Errorf("fig13 %s/%w", topo, err)
		}
		for si, scheme := range schemes {
			for ci, scale := range scales {
				a := grid[si][ci]
				fmt.Fprintf(w, "%s\t%s\t%.1f\t%s\n", topo, scheme, scale, availCell(a))
			}
		}
	}
	fmt.Fprintln(w, "# paper: PreTE sustains ~2x the demand of TeaVar/FFC at equal availability")
	return nil
}

// sustainedScale finds, by linear interpolation on an availability-vs-scale
// grid, the largest demand scale at which a scheme keeps the target
// availability.
func sustainedScale(scales []float64, avail []float64, target float64) float64 {
	best := 0.0
	for i := range scales {
		if avail[i] >= target {
			best = scales[i]
			// interpolate toward the crossing with the next point
			if i+1 < len(scales) && avail[i+1] < target {
				span := avail[i] - avail[i+1]
				if span > 0 {
					best = scales[i] + (scales[i+1]-scales[i])*(avail[i]-target)/span
				}
			}
		}
	}
	return best
}

// tab4 derives PreTE's satisfied-demand gain from the sweep.
func tab4(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	topo := "IBM"
	schemes := []string{"Flexile", "FFC-1", "FFC-2", "TeaVar", "ARROW", "PreTE"}
	scales := []float64{1, 2, 3, 4, 6}
	if opts.Quick {
		topo = "B4"
		schemes = []string{"Flexile", "TeaVar", "PreTE"}
		scales = []float64{1, 2, 3, 4}
	}
	env, err := sim.BuildEnv(topo, opts.Seed, cfg)
	if err != nil {
		return err
	}
	cells, err := evalGrid(sim.NewEvaluator(env, cfg), schemes, scales, opts.Parallelism)
	if err != nil {
		return err
	}
	grid := make(map[string][]float64, len(schemes))
	for si, scheme := range schemes {
		for _, a := range cells[si] {
			grid[scheme] = append(grid[scheme], a.Mean)
		}
	}
	levels := []float64{0.9995, 0.999, 0.995, 0.99}
	if opts.Quick {
		levels = []float64{0.99, 0.95}
	}
	header(w, "availability", "scheme", "sustained_scale", "PreTE_gain")
	for _, level := range levels {
		pre := sustainedScale(scales, grid["PreTE"], level)
		for _, scheme := range schemes {
			s := sustainedScale(scales, grid[scheme], level)
			gain := "NA"
			if s > 0 {
				gain = fmt.Sprintf("%.1fx", pre/s)
			}
			fmt.Fprintf(w, "%.4f\t%s\t%.2f\t%s\n", level, scheme, s, gain)
		}
	}
	fmt.Fprintln(w, "# paper (IBM): PreTE gains 1.5-3.4x over the baselines across levels")
	return nil
}

// fig15 sweeps prediction quality (the Table 5 model zoo) at a fixed set of
// scales.
func fig15(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	topo := "IBM"
	scales := []float64{1, 3}
	if opts.Quick {
		topo = "B4"
		scales = []float64{2, 4}
	}
	env, err := sim.BuildEnv(topo, opts.Seed, cfg)
	if err != nil {
		return err
	}
	qualities := []sim.PredictorQuality{
		{Name: "TeaVar-pred", PHatFail: 0.003, PHatOK: 0.003},
		{Name: "Statistic", PHatFail: 0.55, PHatOK: 0.35},
		{Name: "DT", PHatFail: 0.65, PHatOK: 0.30},
		sim.NNQuality(),
		sim.OracleQuality(),
	}
	header(w, "predictor", "scale", "availability", "nines")
	// One evaluator per predictor quality; the (quality, scale) cells are
	// independent and fan out, printing from the merged grid in order.
	evs := make([]*sim.Evaluator, len(qualities))
	for qi, q := range qualities {
		evs[qi] = sim.NewEvaluator(env, cfg)
		evs[qi].Quality = q
	}
	grid, err := par.MapErr(len(qualities)*len(scales), opts.Parallelism, func(i int) (sim.Availability, error) {
		return evs[i/len(scales)].Evaluate("PreTE", scales[i%len(scales)])
	})
	if err != nil {
		return err
	}
	for qi, q := range qualities {
		for ci, scale := range scales {
			a := grid[qi*len(scales)+ci]
			fmt.Fprintf(w, "%s\t%.1f\t%s\n", q.Name, scale, availCell(a))
		}
	}
	fmt.Fprintln(w, "# paper: better predictors keep more nines; the NN tracks the oracle closely")
	return nil
}

// fig16 sweeps the new-tunnel ratio, reporting availability and the TE
// runtime including the serialized tunnel installs.
func fig16(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	topo := "IBM"
	ratios := []float64{0, 1, 5}
	scale := 3.0
	if opts.Quick {
		topo = "B4"
		ratios = []float64{0, 1, 2}
		scale = 3
	}
	env, err := sim.BuildEnv(topo, opts.Seed, cfg)
	if err != nil {
		return err
	}
	ev := sim.NewEvaluator(env, cfg)
	header(w, "ratio", "availability", "new_tunnels", "te_runtime_s")
	for _, ratio := range ratios {
		a, err := ev.EvaluatePreTERatio(scale, ratio)
		if err != nil {
			return err
		}
		// TE runtime for one representative degradation reaction: compute
		// time + serialized installs.
		p := core.New()
		p.TunnelRatio = ratio
		p.ScenarioOpts = cfg.ScenarioOpts
		p.Opt.Metrics = opts.Metrics
		start := time.Now()
		ep, err := p.PlanEpoch(core.EpochInput{
			Net: env.Net, Tunnels: env.Tunnels,
			Demands: env.BaseDemands.Scale(scale), Beta: cfg.Beta, PI: env.PI,
			Signals: []core.DegradationSignal{{Fiber: busiestFiber(env), PNN: 0.5}},
		})
		if err != nil {
			return err
		}
		compute := time.Since(start).Seconds()
		newTunnels := 0
		if ep.Update != nil {
			newTunnels = ep.Update.NewTunnels
		}
		runtime := compute + float64(newTunnels)*cfg.TunnelInstallS
		fmt.Fprintf(w, "%.1f\t%.6f\t%d\t%.2f\n", ratio, a.Mean, newTunnels, runtime)
	}
	fmt.Fprintln(w, "# paper: ratio 1 balances runtime (~seconds) and availability; ratio 5 costs tens of seconds")
	return nil
}

func busiestFiber(env *sim.Env) topology.FiberID {
	best, bestN := topology.FiberID(0), -1
	for _, f := range env.Net.Fibers {
		if n := len(env.Tunnels.TunnelsThroughFiber(f.ID)); n > bestN {
			best, bestN = f.ID, n
		}
	}
	return best
}

// fig17 compares workload-uncertainty reduction (demand prediction, the *
// variants) against capacity-uncertainty reduction (failure prediction,
// PreTE vs TeaVar) on B4.
func fig17(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	env, err := sim.BuildEnv("B4", opts.Seed, cfg)
	if err != nil {
		return err
	}
	ev := sim.NewEvaluator(env, cfg)
	rng := stats.NewRNG(opts.Seed ^ 0xf17)
	scales := []float64{1, 2.7}
	header(w, "scheme", "scale", "availability", "nines")
	for _, scale := range scales {
		truth := env.BaseDemands.Scale(scale)
		// stale demand: what a scheme without demand prediction plans on
		stale := make(te.Demands, len(truth))
		for i, d := range truth {
			stale[i] = d * (1 + 0.08*rng.NormFloat64())
			if stale[i] < 0 {
				stale[i] = 0
			}
		}
		for _, c := range []struct {
			name    string
			scheme  string
			planned te.Demands
		}{
			{"TeaVar", "TeaVar", stale},
			{"TeaVar*", "TeaVar", truth},
			{"PreTE", "PreTE", stale},
			{"PreTE*", "PreTE", truth},
		} {
			a, err := ev.EvaluateDemands(c.scheme, c.planned, truth)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%.1f\t%s\n", c.name, scale, availCell(a))
		}
	}
	fmt.Fprintln(w, "# paper: at scale 2.7 failure prediction (TeaVar*->PreTE*) gains far more than demand prediction (TeaVar->TeaVar*)")
	return nil
}

// fig18 reproduces the four-site production case of §7.
func fig18(w io.Writer, opts Options) error {
	net, ts, demands, err := ProductionCase()
	if err != nil {
		return err
	}
	// A fiber on IP link s1-s3 degrades, then cuts.
	degraded, ok := net.FiberBetween(0, 2)
	if !ok {
		return fmt.Errorf("fig18: missing s1-s3 fiber")
	}
	cut := map[topology.FiberID]bool{degraded: true}

	// Traditional system: on failure the router switches to the
	// pre-configured backup path (s1->s2->s3), overloading link s1-s2.
	tradLoss := traditionalBackupLoss(net, ts, demands, degraded)

	// PreTE: the controller reacts to the degradation signal and "proactively
	// calculates the optimal available backup tunnel, i.e., s1->s4->s3"
	// (§7). Algorithm 1 establishes the candidate detours (both ring
	// directions tie on distance, hence ratio 2) and the load-aware
	// optimizer routes onto the one with spare capacity.
	p := core.New()
	p.TunnelRatio = 2
	p.Opt.Metrics = opts.Metrics
	ep, err := p.PlanEpoch(core.EpochInput{
		Net: net, Tunnels: ts, Demands: demands, Beta: 0.99,
		PI:      []float64{0.002, 0.002, 0.002, 0.002, 0.002},
		Signals: []core.DegradationSignal{{Fiber: degraded, PNN: 0.8}},
	})
	if err != nil {
		return err
	}
	var preLoss float64
	for _, fl := range ep.Plan.Tunnels.Flows {
		d := demands[fl.ID]
		preLoss += d - te.Delivered(ep.Plan, fl.ID, d, cut)
	}
	header(w, "system", "sustained_loss_Gbps")
	fmt.Fprintf(w, "traditional-backup\t%.0f\n", tradLoss)
	fmt.Fprintf(w, "PreTE\t%.0f\n", preLoss)
	fmt.Fprintln(w, "# paper: traditional backup overloads s1-s2 and keeps losing packets until the next TE period; PreTE avoids sustained loss via s1->s4->s3")
	return nil
}

// ProductionCase builds the §7 topology: four sites in a ring
// (s1-s2, s2-s3, s3-s4, s4-s1) plus the s1-s3 diagonal, every IP link
// 1000 Gbps, with flows s1->s2 (700), s1->s3 (600), s4->s3 (300).
func ProductionCase() (*topology.Network, *routing.TunnelSet, te.Demands, error) {
	nodes := []topology.Node{
		{ID: 0, Name: "s1"}, {ID: 1, Name: "s2"}, {ID: 2, Name: "s3"}, {ID: 3, Name: "s4"},
	}
	fibers := []topology.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 500},
		{ID: 1, A: 1, B: 2, LengthKm: 500},
		{ID: 2, A: 2, B: 3, LengthKm: 500},
		{ID: 3, A: 3, B: 0, LengthKm: 500},
		{ID: 4, A: 0, B: 2, LengthKm: 650},
	}
	var links []topology.Link
	add := func(src, dst topology.NodeID, f topology.FiberID) {
		links = append(links, topology.Link{
			ID: topology.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 1000, Fibers: []topology.FiberID{f},
		})
	}
	for _, f := range fibers {
		add(f.A, f.B, f.ID)
		add(f.B, f.A, f.ID)
	}
	net, err := topology.New("production-case", nodes, fibers, links)
	if err != nil {
		return nil, nil, nil, err
	}
	flows := []routing.Flow{
		{ID: 0, Src: 0, Dst: 1}, // s1->s2, 700G
		{ID: 1, Src: 0, Dst: 2}, // s1->s3, 600G
		{ID: 2, Src: 3, Dst: 2}, // s4->s3, 300G
	}
	ts, err := routing.BuildTunnels(net, flows, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	return net, ts, te.Demands{700, 600, 300}, nil
}

// traditionalBackupLoss models the §7 status quo: when the s1-s3 fiber
// cuts, the router locally switches the 600 G flow onto its configured
// backup path s1->s2->s3; the spare bandwidth on s1-s2 (1000 - 700 = 300 G)
// cannot absorb it, so 300 G is lost until the next TE period.
func traditionalBackupLoss(net *topology.Network, ts *routing.TunnelSet, demands te.Demands, degraded topology.FiberID) float64 {
	s1s2, _ := net.LinkBetween(0, 1)
	spare := net.Link(s1s2).Capacity - demands[0]
	loss := demands[1] - spare
	if loss < 0 {
		loss = 0
	}
	return loss
}

// fig19 contrasts tunnel traffic variation caused by workload changes with
// the variation caused by failures (Appendix A.7).
func fig19(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	env, err := sim.BuildEnv("B4", opts.Seed, cfg)
	if err != nil {
		return err
	}
	tv := core.NewTeaVar()
	tv.ScenarioOpts = cfg.ScenarioOpts
	tv.Opt.Metrics = opts.Metrics
	base := env.BaseDemands.Scale(2)
	plan0, err := tv.PlanEpoch(core.EpochInput{
		Net: env.Net, Tunnels: env.Tunnels, Demands: base, Beta: cfg.Beta, PI: env.PI,
	})
	if err != nil {
		return err
	}
	// Workload uncertainty: replan with a jittered demand matrix.
	rng := stats.NewRNG(opts.Seed ^ 0xf19)
	jittered := make(te.Demands, len(base))
	for i, d := range base {
		jittered[i] = d * (1 + 0.05*rng.NormFloat64())
	}
	plan1, err := tv.PlanEpoch(core.EpochInput{
		Net: env.Net, Tunnels: env.Tunnels, Demands: jittered, Beta: cfg.Beta, PI: env.PI,
	})
	if err != nil {
		return err
	}
	// Capacity uncertainty: the busiest fiber cuts; surviving tunnels keep
	// their allocation, failed tunnels drop to zero (local rate
	// adaptation), so affected flows see large swings.
	cutFiber := busiestFiber(env)
	cut := map[topology.FiberID]bool{cutFiber: true}
	affected := make(map[routing.FlowID]bool)
	for _, fl := range env.Tunnels.FlowsThroughFiber(cutFiber) {
		affected[fl] = true
	}
	var wlAff, wlUnaff, capAff, capUnaff []float64
	for _, t := range env.Tunnels.Tunnels {
		d := base[t.Flow]
		if d <= 0 {
			continue
		}
		wl := abs(plan1.Plan.Alloc[t.ID]-plan0.Plan.Alloc[t.ID]) / d
		post := plan0.Plan.Alloc[t.ID]
		if !t.AvailableUnder(cut) {
			post = 0
		}
		cp := abs(post-plan0.Plan.Alloc[t.ID]) / d
		if affected[t.Flow] {
			wlAff = append(wlAff, wl)
			capAff = append(capAff, cp)
		} else {
			wlUnaff = append(wlUnaff, wl)
			capUnaff = append(capUnaff, cp)
		}
	}
	header(w, "uncertainty", "flow_class", "mean_variation", "p95_variation")
	rows := []struct {
		name, class string
		data        []float64
	}{
		{"workload", "affected", wlAff},
		{"workload", "unaffected", wlUnaff},
		{"capacity", "affected", capAff},
		{"capacity", "unaffected", capUnaff},
	}
	for _, r := range rows {
		if len(r.data) == 0 {
			continue
		}
		sort.Float64s(r.data)
		p95 := int(float64(len(r.data)) * 0.95)
		if p95 >= len(r.data) {
			p95 = len(r.data) - 1
		}
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\n", r.name, r.class,
			stats.Mean(r.data), r.data[p95])
	}
	fmt.Fprintln(w, "# paper: capacity uncertainty dwarfs workload uncertainty for affected flows")
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// fig20b sweeps alpha, the fraction of predictable cuts.
func fig20b(w io.Writer, opts Options) error {
	cfg := evalConfig(opts)
	alphas := []float64{0.25, 0.9}
	scales := []float64{2, 4}
	if opts.Quick {
		alphas = []float64{0.25, 0.9}
		scales = []float64{2, 4}
	}
	header(w, "alpha", "scale", "availability", "nines")
	for _, alpha := range alphas {
		c := cfg
		c.Alpha = alpha
		env, err := sim.BuildEnv("IBM", opts.Seed, c)
		if err != nil {
			return err
		}
		if opts.Quick {
			env, err = sim.BuildEnv("B4", opts.Seed, c)
			if err != nil {
				return err
			}
		}
		ev := sim.NewEvaluator(env, c)
		for _, scale := range scales {
			a, err := ev.Evaluate("PreTE", scale)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.2f\t%.1f\t%s\n", alpha, scale, availCell(a))
		}
	}
	fmt.Fprintln(w, "# paper: more predictable cuts keep availability high even at large scales")
	return nil
}
