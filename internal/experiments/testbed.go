package experiments

import (
	"fmt"
	"io"
	"time"

	"prete/internal/core"
	"prete/internal/optical"
	"prete/internal/routing"
	"prete/internal/te"
	"prete/internal/topology"
	"prete/internal/wan"
)

func init() {
	register("fig11", "Testbed latency breakdown and tunnel-update scaling", fig11)
	register("tab3", "Network topologies used in the simulations", tab3)
	register("fig237", "The three-node illustrative example (Figs 2, 3, 7)", fig237)
}

// fig11 runs the §5 loopback testbed.
func fig11(w io.Writer, opts Options) error {
	cfg := wan.DefaultSwitchConfig()
	if opts.Quick {
		cfg.InstallLatency = 3 * time.Millisecond
		cfg.RateLatency = 300 * time.Microsecond
	}
	tb, err := wan.NewTestbed(cfg, func(f optical.Features) float64 { return 0.8 })
	if err != nil {
		return err
	}
	defer tb.Close()
	timing, err := tb.RunScenario(opts.Seed)
	if err != nil {
		return err
	}
	header(w, "stage", "latency_ms")
	fmt.Fprintf(w, "detection\t%.2f\n", ms(timing.Detection))
	fmt.Fprintf(w, "model_inference\t%.2f\n", ms(timing.Inference))
	fmt.Fprintf(w, "tunnel_update\t%.2f\n", ms(timing.TunnelUpdate))
	fmt.Fprintf(w, "scenario_regen\t%.2f\n", ms(timing.ScenarioRegen))
	fmt.Fprintf(w, "te_compute\t%.2f\n", ms(timing.TECompute))
	fmt.Fprintf(w, "rate_install\t%.2f\n", ms(timing.RateInstall))
	fmt.Fprintf(w, "total\t%.2f\n", ms(timing.Total()))
	fmt.Fprintln(w, "# paper Fig 11a: end-to-end < 300 ms; tunnel update dominates")

	counts := []int{1, 5, 10, 20}
	scaling, err := wan.MeasureInstallScaling(cfg, counts)
	if err != nil {
		return err
	}
	header(w, "tunnels", "install_time_ms")
	for _, n := range counts {
		fmt.Fprintf(w, "%d\t%.1f\n", n, ms(scaling[n]))
	}
	fmt.Fprintln(w, "# paper Fig 11b: linear, ~5 s for 20 tunnels on production gear")
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// tab3 prints the Table 3 topology statistics.
func tab3(w io.Writer, opts Options) error {
	header(w, "topology", "#fibers", "#IP_links", "#tunnels", "#traffic_matrix")
	for _, name := range []string{"IBM", "B4", "TWAN"} {
		net, err := topology.ByName(name)
		if err != nil {
			return err
		}
		ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", name, len(net.Fibers), len(net.Links), ts.NumTunnels(), 24)
	}
	fmt.Fprintln(w, "# paper: IBM 23/85/340/24, B4 19/52/208/24, TWAN O(50)/O(100)/O(100)/24")
	return nil
}

// fig237 reproduces the illustrative §2.2/§3.3 example on the three-link
// triangle: classic TeaVaR's joint-coverage admissible traffic (10 units),
// the oracle's 20 units, and PreTE's post-cut throughput via its reactive
// tunnel.
func fig237(w io.Writer, opts Options) error {
	p := [3]float64{0.005, 0.009, 0.001} // s1s2, s1s3, s2s3

	// (Fig 2b) Classic TeaVaR with joint coverage: maximize b1 + b2 where
	// flow s1s2 rides its direct tunnel (x <= 10) and flow s1s3 splits
	// across s1s3 (y1) and s1s2s3 (y2), subject to x + y2 <= 10, and the
	// probability that BOTH flows see no loss >= 99%.
	bestTotal, bestX, bestY1, bestY2 := 0.0, 0.0, 0.0, 0.0
	jointAvail := func(x, y1, y2 float64) float64 {
		var total float64
		for mask := 0; mask < 8; mask++ {
			up := [3]bool{mask&1 == 0, mask&2 == 0, mask&4 == 0}
			prob := 1.0
			for i := 0; i < 3; i++ {
				if up[i] {
					prob *= 1 - p[i]
				} else {
					prob *= p[i]
				}
			}
			flow1 := 0.0
			if up[0] {
				flow1 = x
			}
			flow2 := 0.0
			if up[1] {
				flow2 += y1
			}
			if up[0] && up[2] {
				flow2 += y2
			}
			if flow1 >= x-1e-9 && flow2 >= y1+y2-1e-9 {
				total += prob
			}
		}
		return total
	}
	const step = 0.5
	for x := 0.0; x <= 10; x += step {
		for y1 := 0.0; y1 <= 10; y1 += step {
			for y2 := 0.0; x+y2 <= 10 && y2 <= 10; y2 += step {
				if jointAvail(x, y1, y2) >= 0.99 && x+y1+y2 > bestTotal {
					bestTotal, bestX, bestY1, bestY2 = x+y1+y2, x, y1, y2
				}
			}
		}
	}
	fmt.Fprintf(w, "(Fig 2b) TeaVaR joint-coverage optimum: total %.0f units (x=%.1f, y1=%.1f, y2=%.1f); paper: 10 units\n",
		bestTotal, bestX, bestY1, bestY2)

	// (Fig 3b) Oracle knowing s1s2 will not fail: set p0 = 0 and re-search.
	pSave := p[0]
	p[0] = 0
	oracleTotal := 0.0
	for x := 0.0; x <= 10; x += step {
		for y1 := 0.0; y1 <= 10; y1 += step {
			for y2 := 0.0; x+y2 <= 10 && y2 <= 10; y2 += step {
				if jointAvail(x, y1, y2) >= 0.99 && x+y1+y2 > oracleTotal {
					oracleTotal = x + y1 + y2
				}
			}
		}
	}
	p[0] = pSave
	fmt.Fprintf(w, "(Fig 3b) Oracle with future knowledge of s1s2: total %.0f units; paper: 20 units\n", oracleTotal)

	// (Fig 7) PreTE on the degradation of s1s2: establish s1->s3->s2 and
	// keep 10 units through the actual cut; TeaVaR's rate adaptation keeps
	// only flow s1s3's surviving tunnel (Fig 2c: 5 units).
	net, ts, err := triangleForExample()
	if err != nil {
		return err
	}
	prete := core.New()
	prete.Opt.Metrics = opts.Metrics
	ep, err := prete.PlanEpoch(core.EpochInput{
		Net: net, Tunnels: ts, Demands: te.Demands{5, 5}, Beta: 0.99,
		PI:      []float64{p[0], p[1], p[2]},
		Signals: []core.DegradationSignal{{Fiber: 0, PNN: 0.9}},
	})
	if err != nil {
		return err
	}
	cut := map[topology.FiberID]bool{0: true}
	preThroughput := te.Delivered(ep.Plan, 0, 5, cut) + te.Delivered(ep.Plan, 1, 5, cut)

	teavar := core.NewTeaVar()
	teavar.Opt.Metrics = opts.Metrics
	tvEp, err := teavar.PlanEpoch(core.EpochInput{
		Net: net, Tunnels: ts, Demands: te.Demands{5, 5}, Beta: 0.99,
		PI: []float64{p[0], p[1], p[2]},
	})
	if err != nil {
		return err
	}
	tvThroughput := te.Delivered(tvEp.Plan, 0, 5, cut) + te.Delivered(tvEp.Plan, 1, 5, cut)
	fmt.Fprintf(w, "(Fig 7b) post-cut throughput: PreTE %.0f units vs TeaVaR %.0f units; paper: 10 vs 5\n",
		preThroughput, tvThroughput)
	return nil
}

// triangleForExample builds the Fig 2a network with the paper's sparse
// tunnel table (one tunnel for s1s2, so degradation triggers Algorithm 1).
func triangleForExample() (*topology.Network, *routing.TunnelSet, error) {
	nodes := []topology.Node{{ID: 0, Name: "s1"}, {ID: 1, Name: "s2"}, {ID: 2, Name: "s3"}}
	fibers := []topology.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 100},
		{ID: 1, A: 0, B: 2, LengthKm: 100},
		{ID: 2, A: 1, B: 2, LengthKm: 100},
	}
	var links []topology.Link
	add := func(src, dst topology.NodeID, f topology.FiberID) {
		links = append(links, topology.Link{
			ID: topology.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 10, Fibers: []topology.FiberID{f},
		})
	}
	add(0, 1, 0)
	add(1, 0, 0)
	add(0, 2, 1)
	add(2, 0, 1)
	add(1, 2, 2)
	add(2, 1, 2)
	net, err := topology.New("fig2a", nodes, fibers, links)
	if err != nil {
		return nil, nil, err
	}
	flows := []routing.Flow{{ID: 0, Src: 0, Dst: 1}, {ID: 1, Src: 0, Dst: 2}}
	ts, err := routing.BuildTunnels(net, flows, 1)
	if err != nil {
		return nil, nil, err
	}
	return net, ts, nil
}
