package experiments

import (
	"bytes"
	"strings"
	"testing"

	"prete/internal/obs"
)

// TestFailoverExperiment runs the quick replicated-controller failover
// sweep end to end and checks its invariants: every cell promotes standby
// 1 (the lowest live replica) with a journaled plan immediately available
// and a matching tailed mirror, detection lands within the tick budget,
// every promotion stays inside one TE period, and the election/failover
// series are mirrored into the caller's registry. The wall-clock column
// (promote_ms) is not asserted.
func TestFailoverExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	if err := Run("failover", &buf, Options{Seed: 2025, Quick: true, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var rows [][]string
	for _, line := range strings.Split(out, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "==") || strings.HasPrefix(line, "#"),
			strings.HasPrefix(line, "standbys"):
		default:
			rows = append(rows, strings.Split(line, "\t"))
		}
	}
	if len(rows) != 2 { // quick mode: 1 standby count x {clean, mid-epoch} crash points
		t.Fatalf("failover quick sweep printed %d cells, want 2:\n%s", len(rows), out)
	}
	for i, row := range rows {
		if len(row) != 9 {
			t.Fatalf("row %d has %d columns, want 9: %v", i, len(row), row)
		}
		if row[2] != "1" {
			t.Errorf("cell %d promoted standby %s, want the lowest live replica 1: %v", i, row[2], row)
		}
		if row[3] == "0" {
			t.Errorf("cell %d reports zero detection ticks: %v", i, row)
		}
		if row[4] != "1" {
			t.Errorf("cell %d promoted without an available plan: %v", i, row)
		}
		if row[5] != "1" {
			t.Errorf("cell %d promoted with a mirror mismatch: %v", i, row)
		}
		if row[8] != "yes" {
			t.Errorf("cell %d promotion exceeded one TE period: %v", i, row)
		}
	}
	if reg.Counter("wan.failover.promotions").Value() == 0 {
		t.Error("wan.failover.promotions not mirrored into the experiment registry")
	}
	if reg.Counter("wan.election.elections").Value() == 0 {
		t.Error("wan.election.elections not mirrored into the experiment registry")
	}
	if reg.Counter("persist.tail.records").Value() == 0 {
		t.Error("persist.tail.records not mirrored into the experiment registry")
	}
}
