package experiments

import (
	"bytes"
	"strings"
	"testing"

	"prete/internal/obs"
)

// TestWarmrestartExperiment runs the quick crash-restart sweep end to end
// and checks its invariants: every warm cell resumes with a plan
// (plan_avail 1) and a recovered epoch, every cold cell starts empty
// (plan_avail 0), the B4-scale recovery lands inside one TE period, and
// the recovery series are mirrored into the caller's registry. Wall-clock
// columns (recovery_ms, ttfvp_ms) are not asserted.
func TestWarmrestartExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	if err := Run("warmrestart", &buf, Options{Seed: 2025, Quick: true, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var rows [][]string
	var b4 []string
	for _, line := range strings.Split(out, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "==") || strings.HasPrefix(line, "#"),
			strings.HasPrefix(line, "crash_rpc"), strings.HasPrefix(line, "topology"):
		case strings.HasPrefix(line, "B4\t"):
			b4 = strings.Split(line, "\t")
		default:
			rows = append(rows, strings.Split(line, "\t"))
		}
	}
	if len(rows) != 4 { // quick mode: 2 crash points x {cold, warm}
		t.Fatalf("warmrestart quick sweep printed %d cells, want 4:\n%s", len(rows), out)
	}
	for i, row := range rows {
		if len(row) != 7 {
			t.Fatalf("row %d has %d columns, want 7: %v", i, len(row), row)
		}
		switch row[1] {
		case "cold":
			if row[2] != "0" {
				t.Errorf("cold cell %d claims a plan after restart: %v", i, row)
			}
		case "warm":
			if row[2] != "1" {
				t.Errorf("warm cell %d has no plan after restart: %v", i, row)
			}
			if row[3] == "0" {
				t.Errorf("warm cell %d recovered epoch 0: %v", i, row)
			}
		default:
			t.Errorf("row %d has unknown mode %q", i, row[1])
		}
	}
	if b4 == nil {
		t.Fatalf("no B4 recovery-timing row printed:\n%s", out)
	}
	if b4[6] != "yes" {
		t.Errorf("B4 recovery did not land within one TE period: %v", b4)
	}
	if reg.Counter("wan.recovery.warm").Value() == 0 {
		t.Error("wan.recovery.warm not mirrored into the experiment registry")
	}
	if reg.Counter("fault.ctlcrash.halts").Value() == 0 {
		t.Error("fault.ctlcrash.halts not mirrored into the experiment registry")
	}
	if reg.Counter("persist.appends").Value() == 0 {
		t.Error("persist.appends not mirrored into the experiment registry")
	}
}
