package experiments

import (
	"fmt"
	"io"
	"math"

	"prete/internal/routing"
	"prete/internal/stats"
	"prete/internal/topology"
	"prete/internal/trace"
)

// traceFor builds the shared year-scale synthetic production trace.
func traceFor(opts Options) (*trace.Trace, error) {
	net, err := topology.TWAN(opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := trace.DefaultConfig(opts.Seed)
	if opts.Quick {
		cfg.Days = 120
	}
	return trace.Generate(cfg, net)
}

func init() {
	register("fig1a", "Transmission loss of fibers that encounter cuts in a typical week", fig1a)
	register("fig1b", "CDF of lost IP capacity caused by fiber cuts, per region", fig1b)
	register("fig1c", "Average affected flows and tunnels per fiber cut", fig1c)
	register("fig4a", "Length distribution of fiber degradation", fig4a)
	register("fig4b", "A link transitions to a degraded state before failing", fig4b)
	register("fig5a", "CDF of time from degradation to the following cut", fig5a)
	register("fig5b", "Normalized number of fiber events", fig5b)
	register("fig6", "Failure proportion across the four critical features", fig6)
	register("tab1", "Chi-square p-values of the critical features", tab1)
	register("tab6-7", "Degradation/failure contingency tables (Appendix A.1)", tab67)
	register("fig12", "Degradation-failure linearity and degradation-probability CDF", fig12)
	register("fig20a", "Coverage and occurrence vs telemetry granularity (Appendix A.8)", fig20a)
}

// fig1a prints a week of loss samples for up to four fibers that cut.
func fig1a(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	const week = 7 * 24 * 3600
	// pick fibers whose first cut lands inside week 2 of the trace
	var fibers []int
	var cutAt []int64
	seen := map[int]bool{}
	for _, c := range tr.Cuts {
		if c.AtUnixS < week || c.AtUnixS >= 2*week || seen[c.Fiber] {
			continue
		}
		seen[c.Fiber] = true
		fibers = append(fibers, c.Fiber)
		cutAt = append(cutAt, c.AtUnixS)
		if len(fibers) == 4 {
			break
		}
	}
	if len(fibers) == 0 {
		return fmt.Errorf("fig1a: no cuts in the selected week")
	}
	header(w, "fiber", "hour_of_week", "loss_dB", "state")
	for i, fi := range fibers {
		s, err := tr.LossSeries(fi, week, 2*week, 3600)
		if err != nil {
			return err
		}
		for h, smp := range s {
			// print a sparse series: every 12 hours plus the cut region
			nearCut := math.Abs(float64(smp.UnixS-cutAt[i])) < 2*3600
			if h%12 != 0 && !nearCut {
				continue
			}
			fmt.Fprintf(w, "fiber%d\t%d\t%.2f\t%s\n", fi, h, smp.LossDB, smp.State)
		}
	}
	return nil
}

// fig1b prints the per-region CDF of lost IP capacity per cut.
func fig1b(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	byRegion := tr.LostCapacityByRegion()
	header(w, "region", "quantile", "lost_capacity_Gbps")
	for _, region := range tr.Net.Regions() {
		losses := byRegion[region]
		if len(losses) == 0 {
			continue
		}
		ecdf := stats.NewECDF(losses)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			fmt.Fprintf(w, "%s\tp%02.0f\t%.0f\n", region, q*100, ecdf.Quantile(q))
		}
	}
	med := stats.NewECDF(flatten(byRegion)).Quantile(0.5)
	fmt.Fprintf(w, "# median lost capacity across regions: %.1f Tbps (paper: >50%% of cuts lose >= 4 Tbps)\n", med/1000)
	return nil
}

func flatten(m map[string][]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v...)
	}
	return out
}

// fig1c prints the average fraction of flows/tunnels affected by a single
// fiber cut on each topology.
func fig1c(w io.Writer, opts Options) error {
	header(w, "topology", "avg_affected_flows_%", "avg_affected_tunnels_%")
	for _, name := range []string{"B4", "IBM", "TWAN"} {
		net, err := topology.ByName(name)
		if err != nil {
			return err
		}
		ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
		if err != nil {
			return err
		}
		var flowFrac, tunnelFrac float64
		for _, f := range net.Fibers {
			flowFrac += float64(len(ts.FlowsThroughFiber(f.ID))) / float64(len(ts.Flows))
			tunnelFrac += float64(len(ts.TunnelsThroughFiber(f.ID))) / float64(ts.NumTunnels())
		}
		n := float64(len(net.Fibers))
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", name, 100*flowFrac/n, 100*tunnelFrac/n)
	}
	fmt.Fprintln(w, "# paper (B4): 33% of flows, 13% of tunnels affected per cut")
	return nil
}

// fig4a prints the degradation-duration ECDF.
func fig4a(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	ecdf := stats.NewECDF(tr.DurationsS())
	header(w, "duration_s", "CDF")
	for _, x := range []float64{1, 2, 5, 10, 30, 60, 300, 1200, 3600} {
		fmt.Fprintf(w, "%.0f\t%.3f\n", x, ecdf.At(x))
	}
	fmt.Fprintf(w, "# P(duration <= 10s) = %.2f (paper: ~0.5)\n", ecdf.At(10))
	return nil
}

// fig4b prints the §3.1 zoom: a degradation preceding a cut at 1s vs 3min
// granularity.
func fig4b(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	for _, c := range tr.Cuts {
		if !c.Predictable {
			continue
		}
		from, to := c.AtUnixS-240, c.AtUnixS+60
		fine, err := tr.LossSeries(c.Fiber, from, to, 1)
		if err != nil {
			return err
		}
		header(w, "t_s", "loss_1s_dB", "state")
		for i, smp := range fine {
			if i%15 != 0 {
				continue
			}
			fmt.Fprintf(w, "%d\t%.2f\t%s\n", i, smp.LossDB, smp.State)
		}
		coarse, err := tr.LossSeries(c.Fiber, from, to, 180)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "# 3-minute samples over the same window:")
		for i, smp := range coarse {
			fmt.Fprintf(w, "# t=%ds loss=%.2f state=%s\n", i*180, smp.LossDB, smp.State)
		}
		return nil
	}
	return fmt.Errorf("fig4b: no predictable cut in trace")
}

// fig5a prints the degradation-to-cut delay CDF.
func fig5a(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	delays := tr.DegradationToCutDelays()
	if len(delays) == 0 {
		return fmt.Errorf("fig5a: no delays")
	}
	ecdf := stats.NewECDF(delays)
	header(w, "delay_s", "CDF")
	for _, x := range []float64{10, 60, 300, 1e3, 1e4, 1e5, 1e6, 1e7} {
		fmt.Fprintf(w, "%.0e\t%.3f\n", x, ecdf.At(x))
	}
	fmt.Fprintf(w, "# P(delay <= 1e3 s) = %.2f (paper: ~0.6)\n", ecdf.At(1e3))
	return nil
}

// fig5b prints the normalized event counts.
func fig5b(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	c := tr.Counts()
	norm := float64(c.PredictableCuts)
	if norm == 0 {
		norm = 1
	}
	header(w, "event", "count", "normalized")
	fmt.Fprintf(w, "degradations\t%d\t%.2f\n", c.Degradations, float64(c.Degradations)/norm)
	fmt.Fprintf(w, "fiber_cuts\t%d\t%.2f\n", c.Cuts, float64(c.Cuts)/norm)
	fmt.Fprintf(w, "predictable_cuts\t%d\t%.2f\n", c.PredictableCuts, 1.0)
	fmt.Fprintf(w, "# alpha = %.2f (paper: ~0.25), P(cut|deg) = %.2f (paper: ~0.40)\n", c.Alpha(), c.PCutGivenDeg())
	return nil
}

// fig6 prints the failure proportion per binned feature value.
func fig6(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	ds := tr.Dataset()
	features := []struct {
		name string
		get  func(e trace.LabeledExample) float64
		bins int
	}{
		{"time_h", func(e trace.LabeledExample) float64 { return float64(e.Features.HourOfDay) }, 8},
		{"degree_dB", func(e trace.LabeledExample) float64 { return e.Features.DegreeDB }, 7},
		{"gradient_dB", func(e trace.LabeledExample) float64 { return e.Features.GradientDB }, 7},
		{"fluctuation", func(e trace.LabeledExample) float64 { return e.Features.Fluctuation }, 7},
	}
	header(w, "feature", "bin_center", "failure_proportion", "n")
	for _, f := range features {
		vals := make([]float64, len(ds))
		for i, e := range ds {
			vals[i] = f.get(e)
		}
		idx, err := stats.EqualWidthBins(vals, f.bins)
		if err != nil {
			return err
		}
		lo, hi := minMax(vals)
		width := (hi - lo) / float64(f.bins)
		counts := make([]int, f.bins)
		fails := make([]int, f.bins)
		for i, b := range idx {
			counts[b]++
			if ds[i].Failed {
				fails[b]++
			}
		}
		for b := 0; b < f.bins; b++ {
			if counts[b] == 0 {
				continue
			}
			center := lo + width*(float64(b)+0.5)
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%d\n", f.name, center, float64(fails[b])/float64(counts[b]), counts[b])
		}
	}
	return nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// tab1 prints the chi-square p-values of Table 1.
func tab1(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	ds := tr.Dataset()
	failed := make([]bool, len(ds))
	get := map[string]func(e trace.LabeledExample) float64{
		"gradient":    func(e trace.LabeledExample) float64 { return e.Features.GradientDB },
		"time":        func(e trace.LabeledExample) float64 { return float64(e.Features.HourOfDay) },
		"degree":      func(e trace.LabeledExample) float64 { return e.Features.DegreeDB },
		"fluctuation": func(e trace.LabeledExample) float64 { return e.Features.Fluctuation },
	}
	for i, e := range ds {
		failed[i] = e.Failed
	}
	header(w, "characteristic", "p_value", "rejected(0.01)")
	for _, name := range []string{"gradient", "time", "degree", "fluctuation"} {
		vals := make([]float64, len(ds))
		for i, e := range ds {
			vals[i] = get[name](e)
		}
		res, err := stats.FeatureChiSquare(vals, failed, 8)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.2e\t%v\n", name, res.PValue, res.Rejected(0.01))
	}
	fmt.Fprintln(w, "# paper: gradient 1.1e-7, time 1e-6, degree 2.2e-13, fluctuation 1e-11")
	return nil
}

// tab67 prints the Appendix A.1 contingency analysis.
func tab67(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	tab := tr.ContingencyTable15Min()
	res, err := stats.ChiSquareIndependence(tab)
	if err != nil {
		return err
	}
	header(w, "", "#degradation", "#no_degradation")
	fmt.Fprintf(w, "#failure\t%.1f\t%.1f\n", tab.Counts[1][1], tab.Counts[1][0])
	fmt.Fprintf(w, "#no_failure\t%.1f\t%.1f\n", tab.Counts[0][1], tab.Counts[0][0])
	fmt.Fprintf(w, "chi2 = %.1f, p = %.2e, rejected(0.01) = %v (paper: p < 1e-50)\n",
		res.Statistic, res.PValue, res.Rejected(0.01))
	return nil
}

// fig12 prints the linear fit of cuts vs degradations and the Weibull CDF
// of degradation probabilities.
func fig12(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	degs, cuts := tr.PerFiberCounts()
	slope, intercept, err := stats.LinearFit(degs, cuts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(a) linear fit: cuts = %.2f * degradations + %.2f (paper: approximately linear)\n", slope, intercept)
	ecdf := stats.NewECDF(tr.DegProb)
	header(w, "deg_probability", "CDF")
	for _, x := range []float64{1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2} {
		fmt.Fprintf(w, "%.0e\t%.3f\n", x, ecdf.At(x))
	}
	lo, hi := minMax(tr.DegProb)
	fmt.Fprintf(w, "# probabilities span %.1fx (paper: orders of magnitude)\n", hi/lo)
	return nil
}

// fig20a prints the Appendix A.8 granularity sweep.
func fig20a(w io.Writer, opts Options) error {
	tr, err := traceFor(opts)
	if err != nil {
		return err
	}
	pts := tr.GranularitySweep([]int{1, 10, 30, 60, 180, 300})
	header(w, "granularity_s", "coverage", "occurrence")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", p.GranularityS, p.Coverage, p.Occurrence)
	}
	fmt.Fprintln(w, "# paper: coverage 25% at 1s, ~2% at 5min")
	return nil
}
