// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is registered under the paper's artifact id
// (fig13, tab4, ...) and prints the same rows/series the paper reports, so
// `prete-sim -exp fig13` or the corresponding bench target reproduces the
// artifact. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"prete/internal/obs"
	"prete/internal/te"
)

// Options tunes experiment execution.
type Options struct {
	Seed uint64
	// Quick trades fidelity for speed (fewer scenarios, smaller sweeps,
	// shorter training) — what the benchmarks use so `go test -bench` stays
	// tractable; the CLI default is the full configuration.
	Quick bool
	// Parallelism bounds the worker count of the parallel sweeps (the
	// (scheme, scale) evaluation matrices and the per-scenario fan-out
	// inside each evaluation): <= 0 selects runtime.GOMAXPROCS(0), 1
	// forces the serial path. Output is byte-identical at every setting —
	// cells are computed into an index-addressed grid and printed in row
	// order (see internal/par).
	Parallelism int
	// Budget caps the deterministic work units of every TE solve an
	// experiment runs (core.Optimizer.BudgetUnits); 0 is unlimited — the
	// default, so golden outputs are unchanged. Budgeted solves may install
	// truncated or heuristic-fallback plans, which is the point of the
	// `deadline` sweep.
	Budget int64
	// Metrics, when non-nil, collects the observability series of every
	// layer an experiment exercises (core.benders.*, sim.*, telemetry.*).
	// Write-only: experiment output is byte-identical with Metrics set or
	// nil.
	Metrics *obs.Registry
	// Classes overrides the SLO tier spec of class-aware experiments
	// (sloclass); nil uses te.DefaultClassSpec(). Classless experiments
	// ignore it.
	Classes *te.ClassSpec
}

// Func runs one experiment, writing its table/series to w.
type Func func(w io.Writer, opts Options) error

// registry maps artifact ids to experiments.
var registry = map[string]struct {
	fn    Func
	title string
}{}

func register(id, title string, fn Func) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = struct {
		fn    Func
		title string
	}{fn, title}
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's human-readable title.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string, w io.Writer, opts Options) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	fmt.Fprintf(w, "== %s: %s ==\n", id, e.title)
	return e.fn(w, opts)
}

// header prints a column header row.
func header(w io.Writer, cols ...string) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}
