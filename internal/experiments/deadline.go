package experiments

import (
	"fmt"
	"io"

	"prete/internal/core"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

func init() {
	register("deadline", "Deadline-bounded anytime solves: objective gap and degradation rung vs compute budget", deadline)
}

// deadline sweeps the anytime optimizer's compute budget on real topologies
// and reports, per (topology, budget) cell, which degradation-ladder rung the
// solve landed on and how far its objective sits from the unlimited optimum.
// Budgets are deterministic work units (simplex pivots + branch-and-bound
// nodes + Benders iterations, see lp.Budget) — no wall clock anywhere — so
// every row replays bit-identically from the seed at any parallelism.
func deadline(w io.Writer, opts Options) error {
	topos := []string{"B4", "IBM"}
	budgets := []int64{1, 25, 100, 400, 1600, 6400, 25600, 0}
	if opts.Quick {
		topos = []string{"B4"}
		budgets = []int64{1, 100, 1600, 0}
	}
	header(w, "topology", "budget", "phi", "gap", "rung", "first_incumbent", "work_units")
	for _, topo := range topos {
		in, err := deadlineInput(topo, opts.Seed)
		if err != nil {
			return err
		}
		ref, err := solveBudgeted(in, 0, opts)
		if err != nil {
			return fmt.Errorf("deadline %s unlimited: %w", topo, err)
		}
		for _, units := range budgets {
			res := ref
			if units != 0 {
				if res, err = solveBudgeted(in, units, opts); err != nil {
					return fmt.Errorf("deadline %s budget=%d: %w", topo, units, err)
				}
			}
			if err := te.CheckCapacity(in.Net, &te.Plan{Alloc: res.Alloc, Tunnels: in.Tunnels}); err != nil {
				return fmt.Errorf("deadline %s budget=%d produced an infeasible plan: %w", topo, units, err)
			}
			rung := "optimal"
			switch {
			case res.Fallback:
				rung = "heuristic"
			case res.Truncated:
				rung = "truncated"
			}
			budgetLabel := fmt.Sprintf("%d", units)
			if units == 0 {
				budgetLabel = "inf"
			}
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%+.4f\t%s\t%d\t%d\n",
				topo, budgetLabel, res.Phi, res.Phi-ref.Phi, rung,
				res.FirstIncumbentUnits, res.WorkUnits)
		}
	}
	fmt.Fprintln(w, "# rung: optimal > truncated (feasible incumbent, uncertified) > heuristic (proportional fallback) — every plan above passed CheckCapacity")
	fmt.Fprintln(w, "# budgets are deterministic work units; equal budgets replay bit-identically at any -parallel setting")
	return nil
}

// deadlineInput builds the sweep's TE instance: 4 tunnels per flow, seeded
// per-fiber failure probabilities, double-failure scenarios.
func deadlineInput(topo string, seed uint64) (*te.Input, error) {
	net, err := topology.ByName(topo)
	if err != nil {
		return nil, err
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	probs := make([]float64, len(net.Fibers))
	for i := range probs {
		probs[i] = 0.001 + 0.02*rng.Float64()
	}
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 200})
	if err != nil {
		return nil, err
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 20 + 10*rng.Float64()
	}
	return &te.Input{Net: net, Tunnels: ts, Demands: demands, Scenarios: set, Beta: 0.99}, nil
}

func solveBudgeted(in *te.Input, units int64, opts Options) (*core.Result, error) {
	o := core.DefaultOptimizer()
	o.Parallelism = opts.Parallelism
	o.BudgetUnits = units
	o.Metrics = opts.Metrics
	return o.Solve(in)
}
