package experiments

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// floatTol bounds the drift allowed on floating-point columns of golden
// output. Integer and text tokens must match exactly — a changed tunnel
// count or Benders iteration count is a behaviour change, not noise.
const floatTol = 1e-6

// TestFig8GoldenReplay pins the end-to-end B4 pipeline artifact to a
// committed golden file: same seed, same quick configuration, same printed
// figure. The pipeline is seeded and parallelism-invariant, so any diff
// beyond float formatting noise means the replayed epoch — telemetry,
// prediction, scenario set, TE plan, availability — actually changed and
// the golden file must be reviewed (regenerate with `go test -run
// TestFig8GoldenReplay -update ./internal/experiments`).
func TestFig8GoldenReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline experiment; skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := Run("fig8", &buf, Options{Seed: 2025, Quick: true}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fig8_quick.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	compareGolden(t, string(want), buf.String())
}

// compareGolden diffs got against want line by line and token by token.
// Tokens that parse as floats with a decimal point compare within floatTol;
// everything else — words, integers, punctuation — compares exactly.
func compareGolden(t *testing.T, want, got string) {
	t.Helper()
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("golden mismatch: %d lines, want %d\n--- got ---\n%s\n--- want ---\n%s",
			len(gotLines), len(wantLines), got, want)
	}
	for li := range wantLines {
		wf, gf := strings.Fields(wantLines[li]), strings.Fields(gotLines[li])
		if len(wf) != len(gf) {
			t.Fatalf("line %d: %q vs golden %q", li+1, gotLines[li], wantLines[li])
		}
		for ti := range wf {
			if wf[ti] == gf[ti] {
				continue
			}
			wv, werr := strconv.ParseFloat(strings.TrimSuffix(wf[ti], ","), 64)
			gv, gerr := strconv.ParseFloat(strings.TrimSuffix(gf[ti], ","), 64)
			isFloat := strings.Contains(wf[ti], ".")
			if werr == nil && gerr == nil && isFloat && math.Abs(wv-gv) <= floatTol {
				continue
			}
			t.Errorf("line %d token %d: got %q, golden %q\nline: %q", li+1, ti+1, gf[ti], wf[ti], gotLines[li])
		}
	}
}
