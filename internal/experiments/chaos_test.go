package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"prete/internal/obs"
)

// TestChaosExperiment runs the quick chaos sweep end to end and checks the
// table's structure and invariants: a fault-free baseline cell with zero
// degradation, plan availability within [0,1] everywhere, and the wan.*
// control-plane series mirrored into the caller's registry. Wall-clock
// columns are not asserted — they are the only nondeterministic output.
func TestChaosExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	if err := Run("chaos", &buf, Options{Seed: 2025, Quick: true, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var rows [][]string
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "==") || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "drop") {
			continue
		}
		rows = append(rows, strings.Split(line, "\t"))
	}
	if len(rows) != 4 { // quick mode: 2 drops x 2 delays
		t.Fatalf("chaos quick sweep printed %d cells, want 4:\n%s", len(rows), out)
	}
	for i, row := range rows {
		if len(row) != 9 {
			t.Fatalf("row %d has %d columns, want 9: %v", i, len(row), row)
		}
		avail, err := strconv.ParseFloat(row[8], 64)
		if err != nil || avail < 0 || avail > 1 {
			t.Errorf("row %d plan_avail = %q, want a fraction in [0,1]", i, row[8])
		}
		degraded, _ := strconv.Atoi(row[3])
		rounds, _ := strconv.Atoi(row[2])
		if want := 1 - float64(degraded)/float64(rounds); avail != want {
			t.Errorf("row %d plan_avail %v inconsistent with degraded %d/%d", i, avail, degraded, rounds)
		}
	}
	// The baseline cell is fault-free: no retries, no degradation, zero delta.
	base := rows[0]
	if base[0] != "0.00" || base[1] != "0" {
		t.Fatalf("first cell is not the fault-free baseline: %v", base)
	}
	if base[3] != "0" || base[4] != "0" || base[5] != "0" {
		t.Errorf("fault-free baseline shows degradation or retries: %v", base)
	}
	if base[7] != "+0.0" {
		t.Errorf("baseline delta = %q, want +0.0", base[7])
	}
	if base[8] != "1.00" {
		t.Errorf("baseline availability = %q, want 1.00", base[8])
	}
	// The faulted cells must actually have perturbed the control plane, and
	// the series must be visible through Options.Metrics.
	if reg.Counter("fault.rpcs").Value() == 0 {
		t.Error("fault.rpcs not mirrored into the experiment registry")
	}
	if reg.Counter("wan.rpc.count").Value() == 0 {
		t.Error("wan.rpc.count not mirrored into the experiment registry")
	}
	if reg.Counter("wan.rpc.retries").Value() == 0 {
		t.Error("a 10% drop sweep produced no retries at all")
	}
}
