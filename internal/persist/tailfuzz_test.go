package persist

import (
	"os"
	"testing"
)

// fuzzTailSeed builds the structured seed inputs: a valid journal prefix
// split at interesting offsets so the fuzzer starts from torn-then-completed
// shapes rather than pure noise.
func fuzzTailSeed() (full []byte, marks []int) {
	full = append([]byte(nil), magic...)
	marks = append(marks, len(full))
	full = appendRecord(full, 1, []byte(`{"epoch":1}`))
	marks = append(marks, len(full))
	full = appendRecord(full, 2, []byte(`{"epoch":2}`))
	marks = append(marks, len(full))
	full = appendRecord(full, 3, []byte(`{"epoch":3}`))
	return full, marks
}

// FuzzTail pins the standby's view of arbitrary directory bytes: for any
// journal prefix, any appended growth (the leader writing — possibly torn,
// possibly corrupt), and growth landing either in the journal or as a
// snapshot file, Tail must never panic, must only surface records that are
// checksum-valid in the bytes it read, must keep sequences strictly
// ascending across polls, and must never surface a record twice.
func FuzzTail(f *testing.F) {
	full, marks := fuzzTailSeed()
	for _, m := range marks {
		f.Add(full[:m], full[m:], false)
	}
	f.Add(full[:marks[1]+5], full[marks[1]+5:], false) // torn mid-record, then completed
	corrupt := append([]byte(nil), full...)
	corrupt[marks[1]+recordHeaderLen+3] ^= 0x40
	f.Add(corrupt, []byte(nil), false)
	f.Add([]byte("NOT-PRST"), full, false)
	f.Add([]byte(nil), []byte(nil), false)
	snap := append([]byte(nil), magic...)
	snap = appendRecord(snap, 9, []byte(`{"epoch":9}`))
	f.Add(full, snap, true)

	f.Fuzz(func(t *testing.T, prefix, growth []byte, asSnap bool) {
		if len(prefix)+len(growth) > 1<<20 {
			t.Skip("oversized input")
		}
		dir := t.TempDir()
		journal := dir + "/" + journalName(0, 1)
		if err := os.WriteFile(journal, prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		rd, err := OpenReader(dir, ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		first, err := rd.Tail()
		if err != nil {
			t.Fatalf("first tail: %v", err)
		}
		checkSurfaced(t, "first", first, map[string][]byte{journal: prefix})

		// The "leader" writes: either more journal bytes or a snapshot.
		images := map[string][]byte{journal: prefix}
		if asSnap {
			snapFile := dir + "/" + snapName(9)
			if err := os.WriteFile(snapFile, growth, 0o644); err != nil {
				t.Fatal(err)
			}
			images[snapFile] = growth
		} else {
			grown := append(append([]byte(nil), prefix...), growth...)
			if err := os.WriteFile(journal, grown, 0o644); err != nil {
				t.Fatal(err)
			}
			images[journal] = grown
		}
		second, err := rd.Tail()
		if err != nil {
			t.Fatalf("second tail: %v", err)
		}
		checkSurfaced(t, "second", second, images)

		// Monotone, duplicate-free across polls.
		last := uint64(0)
		for _, batch := range [][]TailRecord{first, second} {
			for _, r := range batch {
				if r.Seq <= last {
					t.Fatalf("sequence %d not strictly above %d across polls:\n%v\n%v",
						r.Seq, last, first, second)
				}
				last = r.Seq
			}
		}
	})
}

// checkSurfaced asserts every surfaced record is a checksum-valid record in
// the valid prefix of one of the file images the reader could have read.
func checkSurfaced(t *testing.T, phase string, recs []TailRecord, images map[string][]byte) {
	t.Helper()
	valid := make(map[uint64][]string)
	for _, img := range images {
		scanned, _, _ := scanRecords(img)
		for _, r := range scanned {
			valid[r.seq] = append(valid[r.seq], string(r.body))
		}
	}
	for _, r := range recs {
		found := false
		for _, body := range valid[r.Seq] {
			if body == string(r.Payload) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s tail surfaced seq %d payload %q not present as a valid record",
				phase, r.Seq, r.Payload)
		}
	}
}
