package persist

import (
	"encoding/binary"
	"hash/crc32"
)

// magic identifies persist files; a file without it is not scanned for
// records (recovery counts it as corrupt and moves on).
var magic = []byte("PRST\x00\x01\r\n")

// recordHeaderLen is the framing overhead per record: 4-byte payload
// length + 4-byte CRC-32C.
const recordHeaderLen = 8

// seqLen is the epoch sequence prefix inside every payload.
const seqLen = 8

// maxRecordLen caps a single record so a corrupted length field cannot ask
// recovery to allocate gigabytes. Controller state is kilobytes; 64 MiB is
// beyond any plausible topology.
const maxRecordLen = 64 << 20

// castagnoli is the CRC-32C table (the checksum with hardware support on
// both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames (seq, body) onto buf: length, CRC, payload where
// payload = seq || body. The CRC covers the whole payload, so a bit flip in
// either the sequence number or the body is detected.
func appendRecord(buf []byte, seq uint64, body []byte) []byte {
	payloadLen := seqLen + len(body)
	var hdr [recordHeaderLen + seqLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint64(hdr[recordHeaderLen:], seq)
	crc := crc32.Update(0, castagnoli, hdr[recordHeaderLen:])
	crc = crc32.Update(crc, castagnoli, body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// record is one decoded journal/snapshot entry.
type record struct {
	seq  uint64
	body []byte
}

// readRecord decodes the record at the head of b. ok reports a record whose
// length fits and whose checksum holds; rest is the remaining bytes after
// it. A short, oversized, or checksum-failing head returns ok=false — the
// caller treats everything from there on as a torn/corrupt tail.
func readRecord(b []byte) (rec record, rest []byte, ok bool) {
	if len(b) < recordHeaderLen+seqLen {
		return record{}, nil, false
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen < seqLen || payloadLen > maxRecordLen || len(b) < recordHeaderLen+payloadLen {
		return record{}, nil, false
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	payload := b[recordHeaderLen : recordHeaderLen+payloadLen]
	if crc32.Checksum(payload, castagnoli) != want {
		return record{}, nil, false
	}
	return record{
		seq:  binary.LittleEndian.Uint64(payload[:seqLen]),
		body: payload[seqLen:],
	}, b[recordHeaderLen+payloadLen:], true
}

// scanRecords decodes the valid record prefix of a framed file image
// (magic + records). It never fails: a missing magic yields no records and
// corrupt=1; a bad record stops the scan with torn=true. This
// stop-at-first-bad rule is what makes recovery a prefix of committed
// epochs — records after a torn one could have been reordered by the
// filesystem, so they are never trusted.
func scanRecords(b []byte) (recs []record, torn bool, corrupt int) {
	if len(b) < len(magic) || string(b[:len(magic)]) != string(magic) {
		if len(b) > 0 {
			corrupt++
		}
		return nil, len(b) > 0, corrupt
	}
	rest := b[len(magic):]
	for len(rest) > 0 {
		rec, tail, ok := readRecord(rest)
		if !ok {
			return recs, true, corrupt + 1
		}
		recs = append(recs, rec)
		rest = tail
	}
	return recs, false, corrupt
}
