package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// memPipe is an in-process Pipe with programmable faults: a direct wire to
// an Applier, optionally dropping, corrupting, or refusing frames.
type memPipe struct {
	ap      *Applier
	drop    int // drop the next n ships (transport failure)
	corrupt int // flip a byte in the next n ships
	ships   int
}

func (p *memPipe) Ship(frame []byte, snapshot bool) (uint64, bool, error) {
	p.ships++
	if p.drop > 0 {
		p.drop--
		return 0, false, errors.New("memPipe: dropped")
	}
	f := append([]byte(nil), frame...)
	if p.corrupt > 0 {
		p.corrupt--
		f[len(f)/2] ^= 0xFF
	}
	ack, err := p.ap.Apply(f, snapshot)
	switch {
	case err == nil:
		return ack, false, nil
	case errors.Is(err, ErrGap) || errors.Is(err, ErrBadFrame):
		return ack, true, nil
	default:
		return ack, false, err
	}
}

func TestReplFrameRoundTrip(t *testing.T) {
	body := []byte(`{"epoch":7}`)
	frame := EncodeReplFrame(7, body)
	seq, got, err := DecodeReplFrame(frame)
	if err != nil || seq != 7 || !bytes.Equal(got, body) {
		t.Fatalf("DecodeReplFrame = (%d, %q, %v), want (7, %q, nil)", seq, got, err, body)
	}
	// The wire frame is byte-identical to the on-disk record framing.
	if disk := appendRecord(nil, 7, body); !bytes.Equal(frame, disk) {
		t.Fatalf("wire frame %x differs from disk record %x", frame, disk)
	}
}

func TestDecodeReplFrameRejects(t *testing.T) {
	frame := EncodeReplFrame(3, []byte("abc"))
	cases := map[string][]byte{
		"empty":     nil,
		"torn head": frame[:3],
		"torn body": frame[:len(frame)-1],
		"trailing":  append(append([]byte(nil), frame...), 0x00),
		"flipped": func() []byte {
			f := append([]byte(nil), frame...)
			f[len(f)-1] ^= 0x01
			return f
		}(),
	}
	for name, b := range cases {
		if _, _, err := DecodeReplFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestApplierExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ap := NewApplier(st, ApplierOptions{})

	// In-order records apply.
	for seq := uint64(1); seq <= 3; seq++ {
		ack, err := ap.Apply(EncodeReplFrame(seq, []byte(fmt.Sprintf(`{"epoch":%d}`, seq))), false)
		if err != nil || ack != seq {
			t.Fatalf("apply %d: (%d, %v)", seq, ack, err)
		}
	}
	// Duplicate: acked without effect.
	ack, err := ap.Apply(EncodeReplFrame(2, []byte(`{"epoch":2}`)), false)
	if err != nil || ack != 3 {
		t.Fatalf("dup apply: (%d, %v), want (3, nil)", ack, err)
	}
	// Gap: refused with ErrGap.
	if _, err := ap.Apply(EncodeReplFrame(9, []byte(`{"epoch":9}`)), false); !errors.Is(err, ErrGap) {
		t.Fatalf("gap apply: %v, want ErrGap", err)
	}
	// Snapshot: jumps the prefix via compaction.
	ack, err = ap.Apply(EncodeReplFrame(9, []byte(`{"epoch":9}`)), true)
	if err != nil || ack != 9 {
		t.Fatalf("snapshot apply: (%d, %v), want (9, nil)", ack, err)
	}
	// Bad frame: refused with ErrBadFrame.
	bad := EncodeReplFrame(10, []byte(`{"epoch":10}`))
	bad[len(bad)/2] ^= 0xFF
	if _, err := ap.Apply(bad, false); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad frame apply: %v, want ErrBadFrame", err)
	}
	s := ap.Stats()
	if s.Applied != 3 || s.SnapshotApplies != 1 || s.Dups != 1 || s.Gaps != 1 || s.BadFrames != 1 || s.LastSeq != 9 {
		t.Fatalf("stats = %+v", s)
	}

	// The applied prefix is durable: a re-opened store + applier resumes
	// dedup from seq 9.
	st.Close()
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ap2 := NewApplier(st2, ApplierOptions{})
	if got := ap2.LastSeq(); got != 9 {
		t.Fatalf("reopened applier LastSeq = %d, want 9", got)
	}
}

// leaderAppend journals one full-state record on the leader store.
func leaderAppend(t *testing.T, st *Store, seq uint64) {
	t.Helper()
	if err := st.Append(seq, []byte(fmt.Sprintf(`{"epoch":%d}`, seq))); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatorShipsAndAccounts(t *testing.T) {
	leaderDir, siteDir := t.TempDir(), t.TempDir()
	leader, err := Open(leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	siteStore, err := Open(siteDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer siteStore.Close()
	ap := NewApplier(siteStore, ApplierOptions{})

	r, err := NewReplicator(leaderDir, ReplicatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pipe := &memPipe{ap: ap}
	r.AddTarget("site-1", pipe)

	for seq := uint64(1); seq <= 5; seq++ {
		leaderAppend(t, leader, seq)
	}
	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.TargetAcked["site-1"] != 5 || ap.LastSeq() != 5 {
		t.Fatalf("after tick: acked=%v applied=%d", st.TargetAcked, ap.LastSeq())
	}
	if st.Shipped != st.Acked+st.Resent+st.Inflight || st.Inflight != 0 {
		t.Fatalf("accounting identity violated: %+v", st)
	}
	if st.Resyncs != 0 || st.Acked != 5 {
		t.Fatalf("clean stream stats: %+v", st)
	}

	// A dropped ship is counted resent and retried to success next Tick.
	leaderAppend(t, leader, 6)
	pipe.drop = 1
	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().TargetAcked["site-1"]; got != 5 {
		t.Fatalf("acked after drop = %d, want 5", got)
	}
	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.TargetAcked["site-1"] != 6 || st.Resent != 1 {
		t.Fatalf("after retry: %+v", st)
	}
	if st.Shipped != st.Acked+st.Resent || st.Inflight != 0 {
		t.Fatalf("accounting identity violated: %+v", st)
	}
}

// TestReplicatorRemoveTarget: a removed target (a promoted or
// decommissioned site) stops receiving records and drops out of the
// accounting, while remaining targets keep shipping.
func TestReplicatorRemoveTarget(t *testing.T) {
	leaderDir, siteDir := t.TempDir(), t.TempDir()
	leader, err := Open(leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	siteStore, err := Open(siteDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer siteStore.Close()
	ap := NewApplier(siteStore, ApplierOptions{})

	r, err := NewReplicator(leaderDir, ReplicatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.AddTarget("site-1", &memPipe{ap: ap})
	gone := &memPipe{ap: NewApplier(siteStore, ApplierOptions{})}
	r.AddTarget("site-2", gone)

	leaderAppend(t, leader, 1)
	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	r.RemoveTarget("site-2")
	r.RemoveTarget("site-2") // absent name is a no-op
	leaderAppend(t, leader, 2)
	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.TargetAcked["site-1"] != 2 || ap.LastSeq() != 2 {
		t.Fatalf("surviving target stalled: %+v applied=%d", st.TargetAcked, ap.LastSeq())
	}
	if _, tracked := st.TargetAcked["site-2"]; tracked {
		t.Fatalf("removed target still accounted: %+v", st.TargetAcked)
	}
	if st.Shipped != st.Acked+st.Resent+st.Inflight {
		t.Fatalf("accounting identity violated after removal: %+v", st)
	}
}

func TestReplicatorCorruptFrameResyncs(t *testing.T) {
	leaderDir, siteDir := t.TempDir(), t.TempDir()
	leader, err := Open(leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	siteStore, err := Open(siteDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer siteStore.Close()
	ap := NewApplier(siteStore, ApplierOptions{})
	r, err := NewReplicator(leaderDir, ReplicatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pipe := &memPipe{ap: ap, corrupt: 1}
	r.AddTarget("site-1", pipe)

	leaderAppend(t, leader, 1)
	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	// The corrupted record was nacked by the site's CRC; the shipper fell
	// back to a snapshot in the same Tick.
	st := r.Stats()
	if st.Resyncs != 1 || st.TargetAcked["site-1"] != 1 {
		t.Fatalf("after corrupt ship: %+v", st)
	}
	if ap.Stats().BadFrames != 1 || ap.Stats().SnapshotApplies != 1 {
		t.Fatalf("applier stats: %+v", ap.Stats())
	}
}

func TestReplicatorBehindBufferResyncs(t *testing.T) {
	leaderDir, siteDir := t.TempDir(), t.TempDir()
	leader, err := Open(leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	siteStore, err := Open(siteDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer siteStore.Close()
	ap := NewApplier(siteStore, ApplierOptions{})
	r, err := NewReplicator(leaderDir, ReplicatorOptions{RetainRecords: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	pipe := &memPipe{ap: ap, drop: 2}
	r.AddTarget("site-1", pipe)

	// Seqs 1..3 arrive while the pipe is down and the buffer retains only
	// the newest record: the site is behind the buffer when the pipe heals,
	// so it must be caught up wholesale, never walked through the hole.
	for seq := uint64(1); seq <= 3; seq++ {
		leaderAppend(t, leader, seq)
		if err := r.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.TargetAcked["site-1"] != 3 {
		t.Fatalf("acked = %d, want 3 (snapshot catch-up)", st.TargetAcked["site-1"])
	}
	if st.Resyncs < 1 {
		t.Fatalf("resyncs = %d, want >= 1", st.Resyncs)
	}
	if ap.Stats().Applied != 0 || ap.Stats().SnapshotApplies < 1 {
		t.Fatalf("site should have been caught up by snapshot only: %+v", ap.Stats())
	}
	// The recovered state on the site is the newest epoch, not a stale
	// prefix.
	if got := siteStore.LastSeq(); got != 3 {
		t.Fatalf("site durable seq = %d, want 3", got)
	}
}

// TestReplicatorNoGoroutines pins the replication engine's determinism
// contract structurally: open/close (and a full ship cycle) spawn no
// background goroutines on either side.
func TestReplicatorNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	leaderDir, siteDir := t.TempDir(), t.TempDir()
	leader, err := Open(leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	siteStore, err := Open(siteDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ap := NewApplier(siteStore, ApplierOptions{})
	r, err := NewReplicator(leaderDir, ReplicatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r.AddTarget("site-1", &memPipe{ap: ap})
	leaderAppend(t, leader, 1)
	if err := r.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := r.Tick(); err == nil {
		t.Fatal("tick on closed replicator succeeded")
	}
	leader.Close()
	siteStore.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, now)
	}
}

func TestReaderDeadFileStats(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, []byte(`{"epoch":1}`)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	rd, err := OpenReader(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Tail(); err != nil {
		t.Fatal(err)
	}
	s := rd.Stats()
	if s.Polls != 1 || s.Records != 1 || s.DeadFiles != 0 {
		t.Fatalf("healthy stats = %+v", s)
	}

	// Truncate the journal below what the reader has consumed: the file
	// shrank, the tailer must abandon it AND the standby must be able to
	// see that it did — that is the alarm surface.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var journal string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "journal-") {
			journal = filepath.Join(dir, e.Name())
		}
	}
	if journal == "" {
		t.Fatal("no journal file found")
	}
	if err := os.Truncate(journal, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Tail(); err != nil {
		t.Fatal(err)
	}
	s = rd.Stats()
	if s.DeadFiles != 1 || s.CorruptFiles < 1 {
		t.Fatalf("post-shrink stats = %+v, want DeadFiles=1", s)
	}
	// Dead is latched: further polls do not re-count the same corpse.
	if _, err := rd.Tail(); err != nil {
		t.Fatal(err)
	}
	if got := rd.Stats().DeadFiles; got != 1 {
		t.Fatalf("dead files after repoll = %d, want 1", got)
	}
}
