// Package persist is the controller's crash-safe state store: an
// append-only, CRC-checksummed journal of per-epoch records, compacted into
// atomic snapshots on a configurable cadence, with single-opener locking and
// a monotonic generation counter for split-brain fencing.
//
// The design goals, in the order they matter:
//
//   - Crash safety. Every mutation is either fully visible after a restart
//     or invisible: journal records are length-prefixed and checksummed, so
//     a torn tail (kill -9 mid-write) is detected and discarded; snapshots
//     and the generation counter are written temp-file + fsync + atomic
//     rename, so a crashed writer never damages the previous copy.
//
//   - Corruption-tolerant recovery. Recover scans every snapshot and journal
//     in the directory, validates record by record, and returns the
//     highest-sequence state whose checksum holds — never a torn record,
//     never a reordered one. A directory with no valid state yields the
//     typed ErrNoState, never a panic (persist.FuzzRecover pins this over
//     arbitrary bytes).
//
//   - Single opener. Open takes an OS-level advisory lock (flock) on the
//     directory; a second opener fails fast with a typed *LockError instead
//     of interleaving journal writes. The lock dies with the process, so a
//     kill -9 never wedges the directory.
//
//   - Fencing. Every successful Open durably increments a generation
//     counter. The controller stamps the generation into its RPCs and agents
//     reject installs from an older generation, so a zombie incarnation that
//     lost the directory race (or kept running past a restart) cannot
//     overwrite the fleet's state.
//
//   - Dependency-free and deterministic. Only the standard library and the
//     repo's own obs registry; identical append sequences produce
//     byte-identical files (modulo the generation suffix in journal names),
//     which the chaos replay tests build on.
//
// Layout of a state directory:
//
//	LOCK                       flock target (contents irrelevant)
//	gen                        generation counter (one framed record)
//	snap-<seq>                 snapshot: full state at epoch <seq>
//	journal-<base>-<gen>       records with seq > <base>, one per epoch
//
// File format: an 8-byte magic ("PRST\x00\x01\r\n") followed by framed
// records. Each record is a 4-byte little-endian payload length, a 4-byte
// CRC-32C (Castagnoli) of the payload, and the payload itself; the payload
// starts with the 8-byte little-endian epoch sequence number. The store
// fsyncs the journal after every append and fsyncs the directory after
// every rename, so an Append or Compact that returned nil is durable.
package persist

import (
	"errors"
	"fmt"
	"io"

	"prete/internal/obs"
)

// ErrNoState is returned by recovery when the directory holds no record
// that passes its checksum — a fresh directory, or one damaged beyond the
// newest-valid-prefix contract. Callers treat it as "cold start".
var ErrNoState = errors.New("persist: no recoverable state")

// LockError reports that the state directory is already held by a live
// store (another controller incarnation). It is a typed error so callers
// can fail fast instead of retrying into a split brain.
type LockError struct {
	Dir string
}

// Error implements error.
func (e *LockError) Error() string {
	return fmt.Sprintf("persist: state dir %s is locked by another store", e.Dir)
}

// errWouldBlock is the FS-neutral signal that a lock is held elsewhere;
// Open wraps it into *LockError.
var errWouldBlock = errors.New("persist: lock held")

// File is the store's handle on one writable file. The crash-point tests
// substitute a budgeted implementation that dies mid-write at any byte
// offset, which is how the "recovery yields a prefix of committed epochs"
// contract is exercised exhaustively.
type File interface {
	io.Writer
	// Sync durably flushes everything written so far; an Append only
	// reports success after Sync returns nil.
	Sync() error
	Close() error
}

// FS abstracts the filesystem the store runs on. The default implementation
// uses the OS; tests inject in-memory or fault-injecting implementations to
// simulate crashes at byte granularity without touching a disk.
type FS interface {
	MkdirAll(dir string) error
	// Lock acquires the single-opener lock file, failing with errWouldBlock
	// (wrapped) when another live store holds it. The returned closer
	// releases the lock.
	Lock(name string) (io.Closer, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create opens name truncated (temp files for atomic replace).
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory so renames and creations are durable.
	SyncDir(dir string) error
}

// Options tunes a Store.
type Options struct {
	// CompactEvery is the journal length (records) at which NeedCompact
	// starts reporting true; <= 0 selects the default of 64. Compaction is
	// caller-driven (the caller owns the full-state payload), so this is a
	// cadence hint, not a hard cap.
	CompactEvery int
	// Metrics, when non-nil, receives the persist.* series (appends, bytes,
	// snapshots, recovery counters and timers). Write-only.
	Metrics *obs.Registry
	// FS substitutes the filesystem; nil selects the operating system.
	FS FS
	// MinGeneration, when non-zero, is a floor on the generation this Open
	// claims: the claimed generation is at least MinGeneration even if the
	// directory's own counter is far behind. Cross-site promotion uses this
	// to fence a zombie leader whose directory the promoting standby cannot
	// see — the standby opens its *own* replica directory with MinGeneration
	// set above the last leader generation it observed, so its RPCs outrank
	// the zombie's at every agent.
	MinGeneration uint64
}

func (o Options) withDefaults() Options {
	if o.CompactEvery <= 0 {
		o.CompactEvery = 64
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}
