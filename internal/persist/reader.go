package persist

import (
	"bytes"
	"errors"
	"fmt"
	iofs "io/fs"
	"sort"
	"sync"

	"prete/internal/obs"
)

// TailRecord is one committed record surfaced by Reader.Tail: the epoch
// sequence and the record body (the payload after the sequence prefix).
type TailRecord struct {
	Seq     uint64
	Payload []byte
}

// ReaderOptions tunes a Reader.
type ReaderOptions struct {
	// FS substitutes the filesystem; nil selects the operating system.
	FS FS
	// Metrics, when non-nil, receives the persist.tail.* series (polls,
	// records surfaced, corrupt and dead files). Write-only.
	Metrics *obs.Registry
}

// TailStats is a Reader's cumulative accounting, surfaced so a standby can
// alarm on a leader directory going bad instead of quietly serving a stale
// mirror. DeadFiles counts files the reader gave up on permanently (wrong
// magic, or the file shrank below its validated prefix); every dead file is
// also counted corrupt, so DeadFiles <= CorruptFiles.
type TailStats struct {
	// Polls is the number of Tail calls.
	Polls int64
	// Records is the number of records surfaced.
	Records int64
	// DeadFiles is the number of files permanently abandoned.
	DeadFiles int64
	// CorruptFiles is the number of corrupt-file observations.
	CorruptFiles int64
}

// Reader is a read-only, lock-free opener of a state directory: the
// multi-opener mode that lets a hot-standby controller tail a live leader's
// journal. Unlike Open it takes no flock, never bumps the generation
// counter, and never writes — its only filesystem operations are ReadDir
// and ReadFile — so any number of Readers can watch a directory while a
// Store appends to it, without perturbing the leader or its crash-recovery
// contract in any way.
//
// A Reader remembers, per file, the byte offset of the validated record
// prefix, so Tail is incremental: each poll re-scans only bytes appended
// since the last poll. The stop-at-first-bad-record rule of recovery is
// preserved — a torn tail (the leader crashed, or is mid-Append right now)
// is never surfaced; if the record later completes (the append finishes and
// fsyncs), the next poll picks it up from the same offset.
type Reader struct {
	dir     string
	fs      FS
	metrics *obs.Registry

	mu     sync.Mutex
	last   uint64 // highest sequence surfaced so far
	files  map[string]*tailFile
	stats  TailStats
	closed bool
}

// tailFile is the Reader's per-file scan state.
type tailFile struct {
	// off is the end of the validated record prefix (0 until the magic has
	// been verified). Scanning always resumes here, so a torn tail that
	// later completes is re-examined and a completed record is surfaced
	// exactly once.
	off int
	// dead marks a file whose header failed validation (wrong magic, or the
	// file shrank); it is never scanned again, matching recovery's
	// treat-as-corrupt rule.
	dead bool
}

// OpenReader opens dir for read-only tailing. The directory may not exist
// yet (a standby may start before its leader); Tail then reports no records
// until it appears.
func OpenReader(dir string, opt ReaderOptions) (*Reader, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: open reader: empty directory")
	}
	fs := opt.FS
	if fs == nil {
		fs = osFS{}
	}
	return &Reader{dir: dir, fs: fs, metrics: opt.Metrics, files: make(map[string]*tailFile)}, nil
}

// LastSeq returns the highest sequence Tail has surfaced (0 before the
// first record).
func (r *Reader) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Stats returns the reader's cumulative tail accounting. A standby that
// sees Stats().DeadFiles grow should alarm: part of the leader's directory
// is unreadable and the mirror may be staler than the leader's durable
// state.
func (r *Reader) Stats() TailStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// markDead abandons one file permanently and counts it both dead and
// corrupt. Callers hold r.mu.
func (r *Reader) markDead(tf *tailFile) {
	tf.dead = true
	r.stats.DeadFiles++
	r.stats.CorruptFiles++
	r.metrics.Counter("persist.tail.dead_files").Inc()
	r.metrics.Counter("persist.tail.corrupt_files").Inc()
}

// Tail scans the directory and returns every committed record with a
// sequence above the reader's position, in ascending sequence order,
// deduplicated across snapshots and journals (a snapshot and a journal
// record at the same sequence carry the same full state; whichever is
// scanned first wins). The reader's position advances to the highest
// returned sequence, so each record is surfaced exactly once across the
// Reader's lifetime and the sequence order is globally monotone. Records
// whose checksum fails, and everything after them in their file, are never
// surfaced; a torn trailing record is retried on the next poll.
func (r *Reader) Tail() ([]TailRecord, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("persist: tail on closed reader")
	}
	r.metrics.Counter("persist.tail.polls").Inc()
	r.stats.Polls++
	names, err := r.fs.ReadDir(r.dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, nil // directory not created yet
		}
		return nil, fmt.Errorf("persist: tail %s: %w", r.dir, err)
	}
	// Deterministic scan order regardless of directory iteration order:
	// snapshots by sequence, then journals by (base, generation) — the same
	// order recovery uses.
	type journalFile struct{ base, gen uint64 }
	var snaps []uint64
	var journals []journalFile
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			snaps = append(snaps, seq)
		} else if base, gen, ok := parseJournalName(name); ok {
			journals = append(journals, journalFile{base, gen})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(journals, func(i, j int) bool {
		if journals[i].base != journals[j].base {
			return journals[i].base < journals[j].base
		}
		return journals[i].gen < journals[j].gen
	})
	scanOrder := make([]string, 0, len(snaps)+len(journals))
	for _, seq := range snaps {
		scanOrder = append(scanOrder, snapName(seq))
	}
	for _, j := range journals {
		scanOrder = append(scanOrder, journalName(j.base, j.gen))
	}

	var out []TailRecord
	seen := make(map[uint64]bool)
	present := make(map[string]bool, len(scanOrder))
	for _, name := range scanOrder {
		present[name] = true
		tf := r.files[name]
		if tf == nil {
			tf = &tailFile{}
			r.files[name] = tf
		}
		if tf.dead {
			continue
		}
		b, err := r.fs.ReadFile(r.dir + "/" + name)
		if err != nil {
			continue // pruned or transiently unreadable; retry next poll
		}
		if tf.off == 0 {
			if len(b) < len(magic) {
				continue // still being created (magic not yet durable)
			}
			if !bytes.Equal(b[:len(magic)], magic) {
				r.markDead(tf)
				continue
			}
			tf.off = len(magic)
		}
		if len(b) < tf.off {
			// The file shrank below its validated prefix: it is no longer the
			// append-only file we validated, so stop trusting it.
			r.markDead(tf)
			continue
		}
		rest := b[tf.off:]
		for len(rest) > 0 {
			rec, tail, ok := readRecord(rest)
			if !ok {
				break // torn or corrupt head: stop here, retry next poll
			}
			tf.off += len(rest) - len(tail)
			rest = tail
			if rec.seq > r.last && !seen[rec.seq] {
				seen[rec.seq] = true
				out = append(out, TailRecord{Seq: rec.seq, Payload: append([]byte(nil), rec.body...)})
			}
		}
	}
	// Forget files pruned by the leader's compaction so per-file state
	// cannot grow without bound.
	for name := range r.files {
		if !present[name] {
			delete(r.files, name)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n := len(out); n > 0 {
		r.last = out[n-1].Seq
		r.stats.Records += int64(n)
		r.metrics.Counter("persist.tail.records").Add(int64(n))
	}
	return out, nil
}

// Close marks the reader closed; subsequent Tails fail. A Reader holds no
// locks or open files, so Close releases nothing — it exists so misuse
// after an owner tears a standby down is loud. Idempotent.
func (r *Reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	return nil
}
