package persist

import (
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"prete/internal/obs"
)

func body(e uint64) []byte {
	return []byte(`{"epoch":` + string(rune('0'+e%10)) + `,"payload":"state"}`)
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered().Payload != nil {
		t.Fatalf("fresh dir recovered payload %q", st.Recovered().Payload)
	}
	for e := uint64(1); e <= 5; e++ {
		if err := st.Append(e, body(e)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if rec.Seq != 5 || string(rec.Payload) != string(body(5)) {
		t.Fatalf("recovered seq=%d payload=%q, want seq=5 %q", rec.Seq, rec.Payload, body(5))
	}
	if rec.Stats.RecordsReplayed < 5 {
		t.Errorf("records replayed = %d, want >= 5", rec.Stats.RecordsReplayed)
	}
	if st2.Generation() != st.Generation()+1 {
		t.Errorf("generation %d after %d, want monotone +1", st2.Generation(), st.Generation())
	}
	if reg.Counter("persist.appends").Value() != 5 {
		t.Errorf("persist.appends = %d", reg.Counter("persist.appends").Value())
	}
}

func TestCompactionAndPrune(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for e := uint64(1); e <= 10; e++ {
		if err := st.Append(e, body(e)); err != nil {
			t.Fatal(err)
		}
		if st.NeedCompact() {
			if err := st.Compact(e, body(e)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 10 appends with cadence 3 -> snapshots at 3, 6, 9; prune keeps 2.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range ents {
		if seq, ok := parseSnapName(e.Name()); ok {
			snaps++
			if seq < 6 {
				t.Errorf("pruning left old snapshot %s", e.Name())
			}
		}
	}
	if snaps != 2 {
		t.Errorf("snapshots on disk = %d, want 2 (newest + fallback)", snaps)
	}
	st.Close()
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec := st2.Recovered(); rec.Seq != 10 || string(rec.Payload) != string(body(10)) {
		t.Fatalf("recovered seq=%d, want 10 (journal suffix after snapshot)", rec.Seq)
	}
}

func TestRecoveryFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, body(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(1, body(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(2, body(2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(2, body(2)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Drop the journals so only the snapshots can answer, then flip a byte
	// inside the newest snapshot's payload.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, _, ok := parseJournalName(e.Name()); ok {
			if err := os.Remove(dir + "/" + e.Name()); err != nil {
				t.Fatal(err)
			}
		}
	}
	name := dir + "/" + snapName(2)
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(name, b, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("recovery with corrupt newest snapshot: %v", err)
	}
	if rec.Seq != 1 || string(rec.Payload) != string(body(1)) {
		t.Fatalf("recovered seq=%d payload=%q, want fallback to snapshot 1", rec.Seq, rec.Payload)
	}
	if rec.Stats.CorruptSkipped == 0 {
		t.Error("corrupt snapshot not counted in CorruptSkipped")
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, body(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(2, body(2)); err != nil {
		t.Fatal(err)
	}
	jname := dir + "/" + journalName(0, st.Generation())
	st.Close()
	b, err := os.ReadFile(jname)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload.
	if err := os.WriteFile(jname, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	if rec.Seq != 1 || string(rec.Payload) != string(body(1)) {
		t.Fatalf("recovered seq=%d, want 1 (torn record 2 discarded)", rec.Seq)
	}
	if !rec.Stats.TornTail {
		t.Error("torn tail not reported")
	}
}

func TestSecondOpenFailsFastWithLockError(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = Open(dir, Options{})
	var le *LockError
	if !errors.As(err, &le) {
		t.Fatalf("second open: err = %v, want *LockError", err)
	}
	if le.Dir != dir {
		t.Errorf("LockError.Dir = %q, want %q", le.Dir, dir)
	}
	// The journal must be untouched by the failed opener: append still works.
	if err := st.Append(1, body(1)); err != nil {
		t.Fatalf("append after contended open: %v", err)
	}
	st.Close()
	// After release the directory opens normally.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after release: %v", err)
	}
	st2.Close()
}

func TestDoubleCloseAndClosedWrites(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
	if err := st.Append(1, body(1)); err == nil {
		t.Fatal("append on closed store succeeded")
	}
	if err := st.Compact(1, body(1)); err == nil {
		t.Fatal("compact on closed store succeeded")
	}
}

func TestAppendSequenceMustAdvance(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(3, body(3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(3, body(3)); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
	if err := st.Append(2, body(2)); err == nil {
		t.Fatal("regressing sequence accepted")
	}
}

func TestStoreNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Append(uint64(10*i+1), body(1)); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutine leak: %d before, %d after open/close cycles", before, now)
	}
}

func TestRecoverEmptyAndGarbageDirs(t *testing.T) {
	if _, err := Recover(t.TempDir()); !errors.Is(err, ErrNoState) {
		t.Fatalf("empty dir: err = %v, want ErrNoState", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/"+snapName(7), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/"+journalName(0, 1), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if !errors.Is(err, ErrNoState) {
		t.Fatalf("garbage dir: err = %v, want ErrNoState", err)
	}
	if rec.Stats.CorruptSkipped == 0 {
		t.Error("garbage not counted as corrupt")
	}
}

// TestGenerationSurvivesCrash checks the fence counter is monotone across
// an "unclean" shutdown (no Close: the flock dies with the fd when the
// store is garbage collected, but we close explicitly to release it).
func TestGenerationSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	var gens []uint64
	for i := 0; i < 3; i++ {
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, st.Generation())
		// Simulate a crash: no graceful teardown beyond fd release.
		st.Close()
	}
	for i := 1; i < len(gens); i++ {
		if gens[i] <= gens[i-1] {
			t.Fatalf("generations not strictly increasing: %v", gens)
		}
	}
}
