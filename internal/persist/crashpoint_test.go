package persist

import (
	"errors"
	"fmt"
	"testing"
)

// crashScript drives one deterministic store lifetime against fs: open,
// eight appended epochs with compaction every three, close. It returns the
// highest epoch whose Append or Compact returned nil (acked = durable by
// the store's contract) — 0 when even Open failed. Write failures are
// swallowed: after a crash the process would be gone anyway, and the
// store's broken-flag keeps later writes from resurrecting it.
func crashScript(fs FS, dir string) (acked uint64) {
	st, err := Open(dir, Options{CompactEvery: 3, FS: fs})
	if err != nil {
		return 0
	}
	defer st.Close()
	for e := uint64(1); e <= 8; e++ {
		if err := st.Append(e, crashBody(e)); err != nil {
			return acked
		}
		acked = e
		if st.NeedCompact() {
			if err := st.Compact(e, crashBody(e)); err != nil {
				return acked
			}
		}
	}
	return acked
}

// crashBody is the full state at epoch e; recovery must return exactly one
// of these, never a splice of two.
func crashBody(e uint64) []byte {
	return []byte(fmt.Sprintf(`{"epoch":%d,"rates":{"t0":%d.5,"t1":%d.25}}`, e, e, e*2))
}

// TestCrashAtEveryByteOffset is the exhaustive crash-point table test: the
// scripted store lifetime is replayed with the write path killed at every
// single byte offset, and after each crash recovery must yield a prefix of
// the committed epochs — the exact state at some epoch <= 8, at least as
// new as the last acked write, and byte-identical to what was journaled.
func TestCrashAtEveryByteOffset(t *testing.T) {
	// Size the sweep: one unlimited run records the total bytes written.
	ref := newMemFS(-1)
	if acked := crashScript(ref, "state"); acked != 8 {
		t.Fatalf("reference run acked %d epochs, want 8", acked)
	}
	total := ref.wrote
	if total == 0 {
		t.Fatal("reference run wrote nothing")
	}
	refRec, err := recoverDir(ref, "state")
	if err != nil || refRec.Seq != 8 {
		t.Fatalf("reference recovery: seq=%d err=%v", refRec.Seq, err)
	}

	for cut := int64(0); cut <= total; cut++ {
		fs := newMemFS(cut)
		acked := crashScript(fs, "state")
		rec, err := recoverDir(fs, "state")
		if err != nil {
			if !errors.Is(err, ErrNoState) {
				t.Fatalf("cut=%d: recovery error %v (want state or ErrNoState)", cut, err)
			}
			if acked != 0 {
				t.Fatalf("cut=%d: %d epochs acked but recovery found no state", cut, acked)
			}
			continue
		}
		if rec.Seq < acked {
			t.Fatalf("cut=%d: recovered epoch %d older than acked epoch %d (lost a committed write)",
				cut, rec.Seq, acked)
		}
		if rec.Seq > 8 {
			t.Fatalf("cut=%d: recovered epoch %d was never written", cut, rec.Seq)
		}
		if want := crashBody(rec.Seq); string(rec.Payload) != string(want) {
			t.Fatalf("cut=%d: recovered state for epoch %d is torn:\n got %q\nwant %q",
				cut, rec.Seq, rec.Payload, want)
		}
	}
}

// TestCrashThenReopenAppends completes the cycle: after a mid-write crash,
// a new incarnation must open the same directory, observe a strictly newer
// generation, and append past the recovered epoch without tripping over
// the torn tail.
func TestCrashThenReopenAppends(t *testing.T) {
	for _, cut := range []int64{40, 200, 500, 900} {
		fs := newMemFS(cut)
		crashScript(fs, "state")
		fs.mu.Lock()
		fs.budget = -1 // the replacement process writes unimpeded
		delete(fs.locks, "state/LOCK")
		fs.mu.Unlock()
		st, err := Open("state", Options{FS: fs})
		if err != nil {
			t.Fatalf("cut=%d: reopen after crash: %v", cut, err)
		}
		next := st.LastSeq() + 1
		if err := st.Append(next, crashBody(next)); err != nil {
			t.Fatalf("cut=%d: append after crash recovery: %v", cut, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}
