package persist

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// osFS is the production FS: real files, flock-based locking, real fsyncs.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// flockCloser releases the advisory lock by closing the lock file (the
// kernel drops flock state with the descriptor, including on kill -9).
type flockCloser struct{ f *os.File }

func (c flockCloser) Close() error { return c.f.Close() }

func (osFS) Lock(name string) (io.Closer, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("%s: %w", name, errWouldBlock)
		}
		return nil, err
	}
	return flockCloser{f}, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
