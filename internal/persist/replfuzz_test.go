package persist

import (
	"errors"
	"testing"
)

// replOp encodes one fuzzed ship into the script format FuzzReplicationStream
// consumes: a 3-byte header (flags, seq, body length) followed by the body.
// flags bit 0 corrupts one frame byte, bit 1 truncates the frame (a torn or
// mid-snapshot-truncated delivery), bit 2 ships it as a snapshot.
func replOp(flags, seq, n byte, body ...byte) []byte {
	out := []byte{flags, seq, n}
	return append(out, body...)
}

// FuzzReplicationStream pins the standby's apply path against arbitrary
// replication streams: torn frames, corrupt CRCs, duplicated and reordered
// sequences, truncated snapshots, in any interleaving. Invariants:
//
//   - Apply never panics and the applied prefix never moves backwards.
//   - A failed Apply (bad frame, gap, store error) never moves the prefix.
//   - Every Apply lands in exactly one stats bucket.
//   - No matter what garbage arrived, one valid snapshot above the prefix
//     always re-syncs the standby — corruption can never wedge it.
//   - The prefix is durable: a reopened store resumes at the same sequence.
func FuzzReplicationStream(f *testing.F) {
	// Clean in-order stream.
	f.Add(append(append(replOp(0, 1, 3, 'a', 'b', 'c'), replOp(0, 2, 1, 'd')...), replOp(0, 3, 0)...))
	// Torn frame, then the completed retry.
	f.Add(append(replOp(2, 1, 4, 'a', 'b', 'c', 'd'), replOp(0, 1, 2, 'a', 'b')...))
	// Corrupt CRC, then the snapshot re-sync the nack would trigger.
	f.Add(append(replOp(1, 1, 3, 'x', 'y', 'z'), replOp(4, 5, 2, 's', 't')...))
	// Duplicated and reordered sequences.
	f.Add(append(append(append(replOp(0, 2, 1, 'b'), replOp(0, 1, 1, 'a')...), replOp(0, 2, 1, 'b')...), replOp(0, 3, 1, 'c')...))
	// Snapshot truncated mid-delivery, then delivered whole.
	f.Add(append(replOp(6, 4, 4, 'w', 'x', 'y', 'z'), replOp(4, 4, 4, 'w', 'x', 'y', 'z')...))

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 1<<16 {
			t.Skip("oversized input")
		}
		dir := t.TempDir()
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		ap := NewApplier(st, ApplierOptions{})

		calls := int64(0)
		for len(script) >= 3 {
			flags, seqB, n := script[0], script[1], int(script[2])
			script = script[3:]
			if n > len(script) {
				n = len(script)
			}
			body := script[:n]
			script = script[n:]
			frame := EncodeReplFrame(uint64(seqB), body)
			if flags&1 != 0 {
				frame[int(seqB)%len(frame)] ^= 0xFF
			}
			if flags&2 != 0 {
				frame = frame[:len(frame)*int(seqB%8)/8]
			}
			snapshot := flags&4 != 0

			prev := ap.LastSeq()
			ack, err := ap.Apply(frame, snapshot)
			calls++
			if ack < prev {
				t.Fatalf("applied prefix moved backwards: %d -> %d", prev, ack)
			}
			if err != nil && ack != prev {
				t.Fatalf("failed apply (%v) moved the prefix %d -> %d", err, prev, ack)
			}
			if err != nil && !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrGap) {
				t.Fatalf("apply error outside the protocol: %v", err)
			}
			s := ap.Stats()
			if s.Applied+s.SnapshotApplies+s.Dups+s.Gaps+s.BadFrames+s.Errors != calls {
				t.Fatalf("stats do not partition %d calls: %+v", calls, s)
			}
			if s.LastSeq != ack {
				t.Fatalf("stats prefix %d != returned prefix %d", s.LastSeq, ack)
			}
		}

		// Recoverability: however mangled the stream was, a valid snapshot
		// above the prefix must land.
		final := ap.LastSeq() + 1
		ack, err := ap.Apply(EncodeReplFrame(final, []byte(`{"epoch":1}`)), true)
		if err != nil || ack != final {
			t.Fatalf("final snapshot re-sync: (%d, %v), want (%d, nil)", ack, err, final)
		}

		// Durability: the prefix survives a close/reopen.
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		if got := NewApplier(st2, ApplierOptions{}).LastSeq(); got != final {
			t.Fatalf("reopened prefix = %d, want %d", got, final)
		}
	})
}
