package persist

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// memFS is an in-memory FS with an optional byte-granular write budget:
// once the budget is exhausted, every write fails after delivering only the
// bytes that still fit — exactly what a kill -9 mid-write leaves on disk.
// The crash-point table test sweeps the budget across every byte offset of
// a scripted store lifetime.
type memFS struct {
	mu     sync.Mutex
	files  map[string][]byte
	locks  map[string]bool
	budget int64 // bytes writable before the "crash"; < 0 = unlimited
	wrote  int64 // total bytes written (for sizing the sweep)
}

var errMemCrash = fmt.Errorf("memfs: injected crash (write budget exhausted)")

func newMemFS(budget int64) *memFS {
	return &memFS{files: map[string][]byte{}, locks: map[string]bool{}, budget: budget}
}

func (m *memFS) MkdirAll(dir string) error { return nil }

type memLock struct {
	m    *memFS
	name string
}

func (l *memLock) Close() error {
	l.m.mu.Lock()
	defer l.m.mu.Unlock()
	delete(l.m.locks, l.name)
	return nil
}

func (m *memFS) Lock(name string) (io.Closer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.locks[name] {
		return nil, fmt.Errorf("%s: %w", name, errWouldBlock)
	}
	m.locks[name] = true
	return &memLock{m: m, name: name}, nil
}

type memFile struct {
	m    *memFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	n := len(p)
	crashed := false
	if f.m.budget >= 0 {
		if int64(n) > f.m.budget {
			n = int(f.m.budget)
			crashed = true
		}
		f.m.budget -= int64(n)
	}
	f.m.files[f.name] = append(f.m.files[f.name], p[:n]...)
	f.m.wrote += int64(n)
	if crashed {
		return n, errMemCrash
	}
	return n, nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (m *memFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	return &memFile{m: m, name: name}, nil
}

func (m *memFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	return &memFile{m: m, name: name}, nil
}

func (m *memFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: rename %s: not found", oldname)
	}
	m.files[newname] = b
	delete(m.files, oldname)
	return nil
}

func (m *memFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: not found", name)
	}
	delete(m.files, name)
	return nil
}

func (m *memFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: read %s: not found", name)
	}
	return append([]byte(nil), b...), nil
}

func (m *memFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir + "/"
	var names []string
	for name := range m.files {
		if rest, ok := strings.CutPrefix(name, prefix); ok && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *memFS) SyncDir(dir string) error { return nil }
