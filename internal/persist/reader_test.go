package persist

import (
	"io"
	"os"
	"testing"
)

// readOnlyFS hands reads through to inner and fails the test on any write
// operation: proof that a Reader's filesystem footprint is read-only, which
// is what makes it safe to point at a live leader's directory.
type readOnlyFS struct {
	t     *testing.T
	inner FS
}

func (r readOnlyFS) MkdirAll(dir string) error {
	r.t.Fatalf("reader wrote: MkdirAll %s", dir)
	return nil
}

func (r readOnlyFS) Lock(name string) (io.Closer, error) {
	r.t.Fatalf("reader locked: %s", name)
	return nil, nil
}

func (r readOnlyFS) OpenAppend(name string) (File, error) {
	r.t.Fatalf("reader wrote: OpenAppend %s", name)
	return nil, nil
}

func (r readOnlyFS) Create(name string) (File, error) {
	r.t.Fatalf("reader wrote: Create %s", name)
	return nil, nil
}

func (r readOnlyFS) Rename(oldname, newname string) error {
	r.t.Fatalf("reader wrote: Rename %s -> %s", oldname, newname)
	return nil
}

func (r readOnlyFS) Remove(name string) error {
	r.t.Fatalf("reader wrote: Remove %s", name)
	return nil
}

func (r readOnlyFS) SyncDir(dir string) error {
	r.t.Fatalf("reader wrote: SyncDir %s", dir)
	return nil
}

func (r readOnlyFS) ReadFile(name string) ([]byte, error) { return r.inner.ReadFile(name) }
func (r readOnlyFS) ReadDir(dir string) ([]string, error) { return r.inner.ReadDir(dir) }

// newTestReader opens a read-only reader over fs whose write methods fail
// the test if ever invoked.
func newTestReader(t *testing.T, fs FS, dir string) *Reader {
	t.Helper()
	rd, err := OpenReader(dir, ReaderOptions{FS: readOnlyFS{t: t, inner: fs}})
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// TestReaderTailsLiveStore: a reader polling a directory a live store is
// appending to surfaces each epoch exactly once, in order, across journal
// appends, compaction rotations, and snapshot dedupe.
func TestReaderTailsLiveStore(t *testing.T) {
	fs := newMemFS(-1)
	st, err := Open("state", Options{CompactEvery: 3, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rd := newTestReader(t, fs, "state")

	if recs, err := rd.Tail(); err != nil || len(recs) != 0 {
		t.Fatalf("tail of empty store: recs=%v err=%v", recs, err)
	}
	for e := uint64(1); e <= 8; e++ {
		if err := st.Append(e, crashBody(e)); err != nil {
			t.Fatal(err)
		}
		if st.NeedCompact() {
			if err := st.Compact(e, crashBody(e)); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := rd.Tail()
		if err != nil {
			t.Fatalf("epoch %d: tail: %v", e, err)
		}
		if len(recs) != 1 || recs[0].Seq != e {
			t.Fatalf("epoch %d: tail surfaced %v, want exactly seq %d", e, recs, e)
		}
		if string(recs[0].Payload) != string(crashBody(e)) {
			t.Fatalf("epoch %d: payload %q, want %q", e, recs[0].Payload, crashBody(e))
		}
	}
	if rd.LastSeq() != 8 {
		t.Fatalf("reader position %d, want 8", rd.LastSeq())
	}
	// Quiet store: nothing new.
	if recs, err := rd.Tail(); err != nil || len(recs) != 0 {
		t.Fatalf("tail of quiet store: recs=%v err=%v", recs, err)
	}
}

// TestReaderFromScratchCatchesUp: a reader opened against an already
// populated directory returns all committed epochs ascending on its first
// poll, deduplicated across the snapshot and the journal.
func TestReaderFromScratchCatchesUp(t *testing.T) {
	fs := newMemFS(-1)
	if acked := crashScript(fs, "state"); acked != 8 {
		t.Fatalf("script acked %d, want 8", acked)
	}
	rd := newTestReader(t, fs, "state")
	recs, err := rd.Tail()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if i > 0 && recs[i-1].Seq >= r.Seq {
			t.Fatalf("tail not strictly ascending: %v", recs)
		}
		if string(r.Payload) != string(crashBody(r.Seq)) {
			t.Fatalf("seq %d: payload %q, want %q", r.Seq, r.Payload, crashBody(r.Seq))
		}
	}
	if n := len(recs); n == 0 || recs[n-1].Seq != 8 {
		t.Fatalf("catch-up tail ended at %v, want final seq 8", recs)
	}
}

// TestReaderTornTailCompletesLater: a record torn mid-append is invisible,
// and once the remaining bytes land the very next poll surfaces it — the
// reader must not give up on (or double-count) a file with a torn tail.
func TestReaderTornTailCompletesLater(t *testing.T) {
	fs := newMemFS(-1)
	full := append([]byte(nil), magic...)
	full = appendRecord(full, 1, []byte("one"))
	mark := len(full)
	full = appendRecord(full, 2, []byte("two"))

	name := "state/" + journalName(0, 1)
	cut := mark + 5 // mid-header of record 2
	fs.files[name] = append([]byte(nil), full[:cut]...)

	rd := newTestReader(t, fs, "state")
	recs, err := rd.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("torn tail surfaced %v, want only seq 1", recs)
	}
	// The append completes (leader finished its write + fsync).
	fs.files[name] = append([]byte(nil), full...)
	recs, err = rd.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 2 || string(recs[0].Payload) != "two" {
		t.Fatalf("completed tail surfaced %v, want seq 2 %q", recs, "two")
	}
}

// TestReaderStopsAtCorruptRecord: a checksum-failing record blocks the
// reader at the same point recovery would stop, and records behind it are
// never surfaced — the stop-at-first-bad contract applies to tailing too.
func TestReaderStopsAtCorruptRecord(t *testing.T) {
	fs := newMemFS(-1)
	b := append([]byte(nil), magic...)
	b = appendRecord(b, 1, []byte("one"))
	mark := len(b)
	b = appendRecord(b, 2, []byte("two"))
	b = appendRecord(b, 3, []byte("three"))
	b[mark+recordHeaderLen+2] ^= 0xff // flip a bit inside record 2's payload

	fs.files["state/"+journalName(0, 1)] = b
	rd := newTestReader(t, fs, "state")
	for poll := 0; poll < 3; poll++ {
		recs, err := rd.Tail()
		if err != nil {
			t.Fatal(err)
		}
		if poll == 0 {
			if len(recs) != 1 || recs[0].Seq != 1 {
				t.Fatalf("corrupt tail surfaced %v, want only seq 1", recs)
			}
		} else if len(recs) != 0 {
			t.Fatalf("poll %d resurfaced records past corruption: %v", poll, recs)
		}
	}
}

// TestReaderMissingDirAndClose: a reader may be opened before its leader
// creates the directory (no records, no error), and a closed reader fails
// loudly.
func TestReaderMissingDirAndClose(t *testing.T) {
	rd, err := OpenReader(t.TempDir()+"/not-yet", ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if recs, err := rd.Tail(); err != nil || len(recs) != 0 {
		t.Fatalf("tail of absent dir: recs=%v err=%v", recs, err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Tail(); err == nil {
		t.Fatal("tail after Close succeeded")
	}
}

// TestReaderAgainstLockedStoreOS: on the real filesystem, a Reader tails a
// directory whose flock is held by a live store — the exact situation the
// single-opener lock used to make impossible — while a second Store opener
// still fails fast with the typed LockError.
func TestReaderAgainstLockedStoreOS(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second writer acquired a held lock")
	} else if _, ok := err.(*LockError); !ok {
		t.Fatalf("second writer error %v, want *LockError", err)
	}
	rd, err := OpenReader(dir, ReaderOptions{})
	if err != nil {
		t.Fatalf("reader blocked by writer lock: %v", err)
	}
	for e := uint64(1); e <= 3; e++ {
		if err := st.Append(e, crashBody(e)); err != nil {
			t.Fatal(err)
		}
		recs, err := rd.Tail()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Seq != e {
			t.Fatalf("epoch %d: live tail surfaced %v", e, recs)
		}
	}
}

// crashScriptTailing is crashScript with a reader polling after every write
// the store acknowledges, validating each surfaced record against the
// scripted bodies. The reader runs on a write-refusing FS wrapper, so any
// interference with the store's files would fail the test immediately.
func crashScriptTailing(t *testing.T, fs FS, dir string, rd *Reader) (acked uint64) {
	t.Helper()
	poll := func() {
		recs, err := rd.Tail()
		if err != nil {
			t.Fatalf("tail during crash script: %v", err)
		}
		for _, r := range recs {
			if r.Seq < 1 || r.Seq > 8 {
				t.Fatalf("tail surfaced epoch %d outside the script", r.Seq)
			}
			if string(r.Payload) != string(crashBody(r.Seq)) {
				t.Fatalf("tail surfaced torn state for epoch %d: %q", r.Seq, r.Payload)
			}
		}
	}
	st, err := Open(dir, Options{CompactEvery: 3, FS: fs})
	if err != nil {
		return 0
	}
	defer st.Close()
	poll()
	for e := uint64(1); e <= 8; e++ {
		if err := st.Append(e, crashBody(e)); err != nil {
			poll()
			return acked
		}
		acked = e
		poll()
		if st.NeedCompact() {
			if err := st.Compact(e, crashBody(e)); err != nil {
				poll()
				return acked
			}
			poll()
		}
	}
	return acked
}

// TestReaderNonInterferenceCrashSweep is the multi-opener safety proof: the
// crash-at-every-byte sweep is replayed with a concurrent polling Reader,
// and at every cut point the acked count and the recovered state are
// identical to the reader-free run — a reader can watch a leader die at any
// byte offset without changing what the next incarnation recovers. The
// reader itself must surface every acked epoch and never a torn one.
func TestReaderNonInterferenceCrashSweep(t *testing.T) {
	ref := newMemFS(-1)
	if acked := crashScript(ref, "state"); acked != 8 {
		t.Fatalf("reference run acked %d epochs, want 8", acked)
	}
	total := ref.wrote

	for cut := int64(0); cut <= total; cut++ {
		plain := newMemFS(cut)
		ackedPlain := crashScript(plain, "state")
		recPlain, errPlain := recoverDir(plain, "state")

		watched := newMemFS(cut)
		rd := newTestReader(t, watched, "state")
		ackedWatched := crashScriptTailing(t, watched, "state", rd)

		if ackedPlain != ackedWatched {
			t.Fatalf("cut=%d: acked %d with reader, %d without — the reader interfered",
				cut, ackedWatched, ackedPlain)
		}
		recWatched, errWatched := recoverDir(watched, "state")
		if (errPlain == nil) != (errWatched == nil) {
			t.Fatalf("cut=%d: recovery err %v with reader, %v without", cut, errWatched, errPlain)
		}
		if errPlain == nil {
			if recPlain.Seq != recWatched.Seq || string(recPlain.Payload) != string(recWatched.Payload) {
				t.Fatalf("cut=%d: recovery diverged under a reader: seq %d vs %d",
					cut, recWatched.Seq, recPlain.Seq)
			}
		}
		// The reader saw every epoch the store acked before the crash.
		if rd.LastSeq() < ackedWatched {
			t.Fatalf("cut=%d: reader position %d behind acked epoch %d",
				cut, rd.LastSeq(), ackedWatched)
		}
	}
}

// TestReaderSurvivesPruning: when compaction prunes old snapshots and
// journals out from under the reader, already-surfaced records stay
// surfaced-once and per-file state is dropped with the files.
func TestReaderSurvivesPruning(t *testing.T) {
	fs := newMemFS(-1)
	st, err := Open("state", Options{CompactEvery: 1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rd := newTestReader(t, fs, "state")
	for e := uint64(1); e <= 6; e++ {
		if err := st.Append(e, crashBody(e)); err != nil {
			t.Fatal(err)
		}
		if err := st.Compact(e, crashBody(e)); err != nil {
			t.Fatal(err)
		}
		recs, err := rd.Tail()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Seq != e {
			t.Fatalf("epoch %d under aggressive compaction: %v", e, recs)
		}
	}
	if got := len(rd.files); got > 4 {
		t.Fatalf("reader retains state for %d files after pruning", got)
	}
}

// TestReaderIgnoresForeignFiles: stray files (tmp leftovers, unrelated
// names) are never scanned, and a wrong-magic journal is skipped without
// wedging the poll.
func TestReaderIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	good := append([]byte(nil), magic...)
	good = appendRecord(good, 1, []byte("one"))
	if err := os.WriteFile(dir+"/"+journalName(0, 1), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/"+journalName(0, 2), []byte("NOTMAGIC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/"+snapName(9)+".tmp", []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/README", []byte("not a record file"), 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rd.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("tail over foreign files surfaced %v, want only seq 1", recs)
	}
}
