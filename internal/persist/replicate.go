package persist

import (
	"errors"
	"fmt"
	"sync"

	"prete/internal/obs"
)

// This file is the cross-site replication engine: a leader-side Replicator
// that tails its own state directory and ships CRC-framed records to remote
// standbys, and a standby-side Applier that validates each frame and applies
// it into the standby's *own* local Store. The wire frame is byte-identical
// to the on-disk record framing (length, CRC-32C, seq-prefixed payload), so
// a frame that survives the network survives the disk and vice versa — one
// checksum contract end to end.
//
// Delivery is at-least-once over an unreliable transport; the Applier makes
// it exactly-once by sequence: duplicates (seq <= last applied) are
// acknowledged without effect, and gaps (seq > last+1) are refused with
// ErrGap so the shipper falls back to a snapshot re-sync. Because every
// journal record in this repo carries the full epoch state, a snapshot
// re-sync is simply the newest record shipped with the snapshot flag — the
// standby compacts it into place and resumes record-by-record from there.
//
// The Replicator keeps exact accounting with the invariant
//
//	shipped = acked + inflight + resent
//
// checked by tests and mirrored into the persist.repl.* metric series.
// Neither side spawns goroutines: shipping is driven by Tick and applying by
// the caller's server loop, which keeps the whole pipeline deterministic
// under the seeded fault schedules.

// ErrBadFrame reports a replication frame that failed validation: torn,
// truncated, trailing garbage, or a checksum mismatch. The receiver should
// answer with a re-sync request — the stream cannot be trusted mid-record.
var ErrBadFrame = errors.New("persist: replication frame failed validation")

// ErrGap reports a replication frame whose sequence skips ahead of the
// standby's contiguous prefix. Applying it would hide the hole forever, so
// the Applier refuses and the shipper must re-sync with a snapshot.
var ErrGap = errors.New("persist: replication sequence gap")

// EncodeReplFrame frames (seq, body) for the wire exactly as a journal
// record is framed on disk: 4-byte little-endian payload length, 4-byte
// CRC-32C, then payload = seq || body.
func EncodeReplFrame(seq uint64, body []byte) []byte {
	return appendRecord(nil, seq, body)
}

// DecodeReplFrame validates one wire frame and returns its sequence and
// body. The frame must contain exactly one valid record — a torn head,
// checksum failure, or trailing bytes yield ErrBadFrame.
func DecodeReplFrame(frame []byte) (seq uint64, body []byte, err error) {
	rec, rest, ok := readRecord(frame)
	if !ok || len(rest) != 0 {
		return 0, nil, ErrBadFrame
	}
	return rec.seq, rec.body, nil
}

// ApplierStats is an Applier's cumulative accounting. Every Apply call lands
// in exactly one of Applied, SnapshotApplies, Dups, Gaps, or BadFrames (plus
// Errors for local store failures).
type ApplierStats struct {
	// Applied counts record frames appended to the local journal.
	Applied int64
	// SnapshotApplies counts snapshot frames compacted into place (each one
	// is a completed re-sync from the standby's point of view).
	SnapshotApplies int64
	// Dups counts frames at or below the applied prefix, acked without
	// effect.
	Dups int64
	// Gaps counts record frames refused because they skip ahead.
	Gaps int64
	// BadFrames counts frames that failed validation.
	BadFrames int64
	// Errors counts local store write failures.
	Errors int64
	// LastSeq is the standby's contiguous applied prefix.
	LastSeq uint64
}

// ApplierOptions tunes an Applier.
type ApplierOptions struct {
	// Metrics, when non-nil, receives the standby-side persist.repl.* series
	// (applied, snapshot_applies, dups, gaps, bad_frames). Write-only.
	Metrics *obs.Registry
}

// Applier applies replication frames into a standby's local Store. It owns
// the dedup/gap policy, not the store: the store only sees monotone appends
// and compactions. The caller owns the Store's lifecycle.
type Applier struct {
	st      *Store
	metrics *obs.Registry

	mu    sync.Mutex
	stats ApplierStats
}

// NewApplier wraps st, seeding the applied prefix from the store's durable
// state so a restarted standby dedups correctly from its first frame.
func NewApplier(st *Store, opt ApplierOptions) *Applier {
	a := &Applier{st: st, metrics: opt.Metrics}
	a.stats.LastSeq = st.LastSeq()
	return a
}

// LastSeq returns the standby's contiguous applied prefix.
func (a *Applier) LastSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats.LastSeq
}

// Stats returns the applier's cumulative accounting.
func (a *Applier) Stats() ApplierStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Apply validates one replication frame and applies it to the local store,
// returning the standby's contiguous applied prefix afterwards. Snapshot
// frames reset the prefix via compaction (a re-sync); record frames must
// extend it by exactly one sequence. Duplicates return nil without effect.
// ErrBadFrame and ErrGap mean the caller should request a snapshot re-sync;
// any other error is a local store failure.
func (a *Applier) Apply(frame []byte, snapshot bool) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	seq, body, err := DecodeReplFrame(frame)
	if err != nil {
		a.stats.BadFrames++
		a.metrics.Counter("persist.repl.bad_frames").Inc()
		return a.stats.LastSeq, err
	}
	switch {
	case seq <= a.stats.LastSeq:
		// At-least-once delivery: the shipper may not have seen our earlier
		// ack. Acking again is free and keeps the stream moving.
		a.stats.Dups++
		a.metrics.Counter("persist.repl.dups").Inc()
		return a.stats.LastSeq, nil
	case snapshot:
		if err := a.st.Compact(seq, body); err != nil {
			a.stats.Errors++
			return a.stats.LastSeq, fmt.Errorf("persist: apply snapshot %d: %w", seq, err)
		}
		a.stats.SnapshotApplies++
		a.metrics.Counter("persist.repl.snapshot_applies").Inc()
	case seq != a.stats.LastSeq+1:
		a.stats.Gaps++
		a.metrics.Counter("persist.repl.gaps").Inc()
		return a.stats.LastSeq, fmt.Errorf("persist: apply seq %d after %d: %w", seq, a.stats.LastSeq, ErrGap)
	default:
		if err := a.st.Append(seq, body); err != nil {
			a.stats.Errors++
			return a.stats.LastSeq, fmt.Errorf("persist: apply record %d: %w", seq, err)
		}
		a.stats.Applied++
		a.metrics.Counter("persist.repl.applied").Inc()
	}
	a.stats.LastSeq = seq
	return a.stats.LastSeq, nil
}

// Pipe is one shipping lane to a standby. Ship delivers a frame and returns
// the standby's contiguous applied prefix plus whether it wants a snapshot
// re-sync (gap or corruption on its side). A non-nil error means the frame's
// fate is unknown (transport failure) and the shipper must retry.
type Pipe interface {
	Ship(frame []byte, snapshot bool) (acked uint64, resync bool, err error)
}

// ReplStats is a Replicator's cumulative accounting across all targets. The
// invariant shipped == acked + inflight + resent holds at every instant:
// each ship attempt is counted shipped and inflight when it starts, and
// moves to exactly one of acked or resent when it resolves.
type ReplStats struct {
	// Shipped counts ship attempts started (records and snapshots).
	Shipped int64
	// Acked counts attempts the target acknowledged at or above the shipped
	// sequence.
	Acked int64
	// Resent counts attempts that did not stick — transport failure,
	// rejection, or a re-sync request — and will be retried in some form.
	Resent int64
	// Inflight counts attempts started but not yet resolved (zero whenever
	// no Tick is executing).
	Inflight int64
	// Resyncs counts snapshot re-syncs completed (a target caught back up).
	Resyncs int64
	// Tailed counts records read from the leader's own directory.
	Tailed int64
	// TailDeadFiles mirrors the underlying Reader's dead-file count so the
	// shipping side can alarm on its own directory going bad.
	TailDeadFiles int64
	// TargetAcked is each target's contiguous acked prefix.
	TargetAcked map[string]uint64
}

// ReplicatorOptions tunes a Replicator.
type ReplicatorOptions struct {
	// RetainRecords caps the records buffered for record-by-record catch-up;
	// <= 0 selects the default of 64. A target whose ack falls behind the
	// buffer is caught up with a snapshot re-sync instead — bounding leader
	// memory no matter how far a standby lags.
	RetainRecords int
	// FS substitutes the filesystem for the directory tailer; nil selects
	// the operating system.
	FS FS
	// Metrics, when non-nil, receives the leader-side persist.repl.* series
	// (shipped, acked, resent, inflight, resyncs, tailed). Write-only.
	Metrics *obs.Registry
}

// replTarget is one standby's shipping state.
type replTarget struct {
	name         string
	pipe         Pipe
	acked        uint64
	needSnapshot bool
}

// Replicator ships a leader's journal to remote standbys. It tails the
// leader's state directory read-only (the same multi-opener seam hot
// standbys use locally), buffers the newest records, and on every Tick
// pushes each target forward: pending records in sequence order, or a
// snapshot re-sync when the target is behind the buffer, reports a gap, or
// receives a corrupt frame. All shipping is synchronous inside Tick — the
// Replicator owns no goroutines.
type Replicator struct {
	rd      *Reader
	retain  int
	metrics *obs.Registry

	mu      sync.Mutex
	records []TailRecord // buffered, ascending seq
	targets []*replTarget
	stats   ReplStats
	closed  bool
}

// NewReplicator opens dir (the leader's own state directory) for tailing.
// The directory may not exist yet; shipping starts once it appears.
func NewReplicator(dir string, opt ReplicatorOptions) (*Replicator, error) {
	rd, err := OpenReader(dir, ReaderOptions{FS: opt.FS, Metrics: opt.Metrics})
	if err != nil {
		return nil, err
	}
	retain := opt.RetainRecords
	if retain <= 0 {
		retain = 64
	}
	return &Replicator{rd: rd, retain: retain, metrics: opt.Metrics}, nil
}

// AddTarget registers a standby to ship to, starting from ack 0 (the first
// Tick re-syncs it if the buffer no longer reaches back that far). Targets
// are shipped in registration order, which keeps multi-site runs
// deterministic.
func (r *Replicator) AddTarget(name string, pipe Pipe) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.targets = append(r.targets, &replTarget{name: name, pipe: pipe})
}

// RemoveTarget stops shipping to name (a promoted or decommissioned site).
func (r *Replicator) RemoveTarget(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, t := range r.targets {
		if t.name == name {
			r.targets = append(r.targets[:i], r.targets[i+1:]...)
			return
		}
	}
}

// Stats returns the replicator's cumulative accounting.
func (r *Replicator) Stats() ReplStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.TailDeadFiles = r.rd.Stats().DeadFiles
	st.TargetAcked = make(map[string]uint64, len(r.targets))
	for _, t := range r.targets {
		st.TargetAcked[t.name] = t.acked
	}
	return st
}

// Tick tails the leader directory for new records and pushes every target
// as far forward as the transport allows. Per-target delivery failures are
// accounted (resent) but do not fail the Tick; only a tailing error does.
func (r *Replicator) Tick() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("persist: tick on closed replicator")
	}
	recs, err := r.rd.Tail()
	if err != nil {
		return err
	}
	if len(recs) > 0 {
		r.records = append(r.records, recs...)
		r.stats.Tailed += int64(len(recs))
		r.metrics.Counter("persist.repl.tailed").Add(int64(len(recs)))
	}
	r.pruneLocked()
	for _, t := range r.targets {
		r.shipToLocked(t)
	}
	r.pruneLocked()
	return nil
}

// pruneLocked drops buffered records every target has acked and caps the
// buffer to the newest retain records; at least one record is always kept so
// a snapshot re-sync has something to ship.
func (r *Replicator) pruneLocked() {
	if len(r.records) == 0 {
		return
	}
	minAcked := ^uint64(0)
	for _, t := range r.targets {
		if t.acked < minAcked {
			minAcked = t.acked
		}
	}
	if len(r.targets) == 0 {
		minAcked = 0
	}
	i := 0
	for i < len(r.records)-1 && r.records[i].Seq <= minAcked {
		i++
	}
	if over := len(r.records) - i - r.retain; over > 0 {
		i += over
	}
	if i > 0 {
		r.records = append([]TailRecord(nil), r.records[i:]...)
	}
}

// shipToLocked pushes one target as far forward as possible: a snapshot
// re-sync when needed, then pending records in order, stopping at the first
// unresolved failure (retried next Tick).
func (r *Replicator) shipToLocked(t *replTarget) {
	for {
		if len(r.records) == 0 {
			return
		}
		newest := r.records[len(r.records)-1]
		if t.acked >= newest.Seq && !t.needSnapshot {
			return
		}
		// A target behind the buffer can't be walked forward record by
		// record — the hole is already pruned — so catch it up wholesale.
		behindBuffer := t.acked+1 < r.records[0].Seq
		if t.needSnapshot || behindBuffer {
			frame := EncodeReplFrame(newest.Seq, newest.Payload)
			acked, resync, err := r.shipFrame(t, frame, true)
			if err != nil || resync || acked < newest.Seq {
				return // unresolved or refused; retry next Tick
			}
			t.acked = acked
			t.needSnapshot = false
			r.stats.Resyncs++
			r.metrics.Counter("persist.repl.resyncs").Inc()
			continue
		}
		next, ok := r.recordAfterLocked(t.acked)
		if !ok {
			return
		}
		frame := EncodeReplFrame(next.Seq, next.Payload)
		acked, resync, err := r.shipFrame(t, frame, false)
		switch {
		case err != nil:
			return
		case resync:
			t.needSnapshot = true
			continue // ship the snapshot immediately, same Tick
		case acked >= next.Seq:
			t.acked = acked
		default:
			return // target refused without explanation; retry next Tick
		}
	}
}

// recordAfterLocked returns the first buffered record with Seq > acked.
func (r *Replicator) recordAfterLocked(acked uint64) (TailRecord, bool) {
	for _, rec := range r.records {
		if rec.Seq > acked {
			return rec, true
		}
	}
	return TailRecord{}, false
}

// shipFrame performs one accounted ship attempt. Exactly one of acked or
// resent is incremented per attempt, keeping shipped = acked + inflight +
// resent exact.
func (r *Replicator) shipFrame(t *replTarget, frame []byte, snapshot bool) (acked uint64, resync bool, err error) {
	r.stats.Shipped++
	r.stats.Inflight++
	r.metrics.Counter("persist.repl.shipped").Inc()
	r.metrics.Gauge("persist.repl.inflight").Set(float64(r.stats.Inflight))
	acked, resync, err = t.pipe.Ship(frame, snapshot)
	r.stats.Inflight--
	r.metrics.Gauge("persist.repl.inflight").Set(float64(r.stats.Inflight))
	seq, _, _ := DecodeReplFrame(frame)
	if err == nil && !resync && acked >= seq {
		r.stats.Acked++
		r.metrics.Counter("persist.repl.acked").Inc()
	} else {
		r.stats.Resent++
		r.metrics.Counter("persist.repl.resent").Inc()
	}
	return acked, resync, err
}

// Close stops the replicator and its directory tailer. Idempotent.
func (r *Replicator) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.rd.Close()
}
