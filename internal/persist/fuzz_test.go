package persist

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// fuzzValidRecords collects every checksum-valid record reachable in the
// three fuzzed files — the oracle set recovery is allowed to return from.
func fuzzValidRecords(files ...[]byte) []record {
	var out []record
	for _, b := range files {
		recs, _, _ := scanRecords(b)
		out = append(out, recs...)
	}
	return out
}

// FuzzRecover feeds arbitrary bytes to the recovery path as a journal, a
// snapshot, and a generation file. The contract under fuzz: recovery never
// panics, returns either ErrNoState or a record drawn verbatim from the
// checksum-valid record set (never torn, never spliced), and the directory
// stays usable — a fresh store must open over the wreckage, claim a newer
// generation, and append.
func FuzzRecover(f *testing.F) {
	// Seeds: a well-formed journal, assorted damage, and non-record noise.
	good := append([]byte(nil), magic...)
	good = appendRecord(good, 1, []byte(`{"epoch":1}`))
	good = appendRecord(good, 2, []byte(`{"epoch":2}`))
	snap := append([]byte(nil), magic...)
	snap = appendRecord(snap, 1, []byte(`{"epoch":1}`))
	f.Add(good, snap, []byte{})
	f.Add(good[:len(good)-4], snap, good)       // torn tail
	f.Add([]byte{}, []byte{}, []byte{})         // empty files
	f.Add([]byte("garbage"), []byte("x"), snap) // no magic
	dup := append(append([]byte(nil), good...), good[len(magic):]...)
	f.Add(dup, snap, snap) // duplicated records
	flip := append([]byte(nil), good...)
	flip[len(flip)-2] ^= 0x40
	f.Add(flip, snap, []byte{0xff, 0xfe})

	f.Fuzz(func(t *testing.T, journal, snapshot, gen []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(dir+"/"+journalName(0, 1), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dir+"/"+snapName(3), snapshot, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dir+"/gen", gen, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			if !errors.Is(err, ErrNoState) {
				t.Fatalf("recover: %v (want state or ErrNoState)", err)
			}
		} else {
			// Whatever came back must be one of the checksum-valid records,
			// bit for bit. Note the journal's valid prefix may be shorter
			// than its valid-record set; membership is the safety property
			// (nothing invented, nothing torn).
			valid := fuzzValidRecords(journal, snapshot)
			found := false
			for _, r := range valid {
				if r.seq == rec.Seq && bytes.Equal(r.body, rec.Payload) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("recovered (seq=%d, %d bytes) is not any checksum-valid input record", rec.Seq, len(rec.Payload))
			}
		}
		// The wreckage must never wedge a new incarnation: open, append,
		// recover the appended record.
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open over fuzzed dir: %v", err)
		}
		next := st.LastSeq() + 1
		if aerr := st.Append(next, []byte("fresh")); aerr != nil {
			st.Close()
			t.Fatalf("append over fuzzed dir: %v", aerr)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		rec2, err := Recover(dir)
		if err != nil || rec2.Seq < next {
			t.Fatalf("post-append recovery: seq=%v err=%v, want >= %d", rec2, err, next)
		}
	})
}
