package persist

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Store is an open, locked state directory: an append-only journal of
// per-epoch records plus caller-driven snapshot compaction. All methods are
// safe for concurrent use; writes are serialized internally.
type Store struct {
	dir string
	opt Options
	fs  FS

	mu        sync.Mutex
	lock      io.Closer
	journal   File
	journBase uint64
	count     int // records in the current journal
	lastSeq   uint64
	gen       uint64
	snaps     []uint64 // known snapshot seqs, ascending
	recovered *Recovered
	closed    bool
	broken    error // first write failure; the store refuses further writes
}

// Open locks dir (creating it if needed), durably increments the
// generation counter, recovers the newest valid state, and starts a fresh
// journal based at the recovered sequence. A directory held by another
// live store fails fast with a typed *LockError. The recovered state (nil
// payload on a cold start) is available via Recovered.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	fs := opt.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("persist: mkdir %s: %w", dir, err)
	}
	lock, err := fs.Lock(dir + "/LOCK")
	if err != nil {
		if errors.Is(err, errWouldBlock) {
			return nil, &LockError{Dir: dir}
		}
		return nil, fmt.Errorf("persist: lock %s: %w", dir, err)
	}
	s := &Store{dir: dir, opt: opt, fs: fs, lock: lock}
	if err := s.open(); err != nil {
		lock.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) open() error {
	m := s.opt.Metrics
	t := m.Timer("persist.recover.time")
	start := t.Start()
	rec, err := recoverDir(s.fs, s.dir)
	t.Stop(start)
	cold := false
	if err != nil {
		if !errors.Is(err, ErrNoState) {
			return err
		}
		cold = true
	}
	s.recovered = rec
	s.lastSeq = rec.Seq
	m.Counter("persist.recover.runs").Inc()
	if cold {
		m.Counter("persist.recover.cold").Inc()
	}
	m.Counter("persist.recover.records_replayed").Add(int64(rec.Stats.RecordsReplayed))
	m.Counter("persist.recover.corrupt_skipped").Add(int64(rec.Stats.CorruptSkipped))

	// Remember existing snapshots for compaction-time cleanup, and the
	// highest generation stamped into any journal name.
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("persist: scan %s: %w", s.dir, err)
	}
	var maxJournalGen uint64
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			s.snaps = append(s.snaps, seq)
		} else if _, gen, ok := parseJournalName(name); ok && gen > maxJournalGen {
			maxJournalGen = gen
		}
	}
	sort.Slice(s.snaps, func(i, j int) bool { return s.snaps[i] < s.snaps[j] })

	// Durably claim the next generation before any other write: a crash
	// after the rename costs one generation number, never uniqueness. The
	// journal-name generations guard the counter file itself: even if it is
	// damaged, the claimed generation stays above every journal already in
	// the directory, so the fresh journal never lands on an old file.
	prev := s.readGen()
	if maxJournalGen > prev {
		prev = maxJournalGen
	}
	s.gen = prev + 1
	if s.gen < s.opt.MinGeneration {
		s.gen = s.opt.MinGeneration
	}
	if err := s.writeGen(s.gen); err != nil {
		return err
	}
	m.Gauge("persist.generation").Set(float64(s.gen))

	// Never append to an inherited journal (its tail may be torn): start a
	// fresh one based at the recovered sequence, named with our generation.
	return s.rotateJournal(s.lastSeq)
}

// readGen returns the persisted generation counter, 0 when absent or
// damaged (the counter file is written atomically, so "damaged" means a
// hand-edited directory; uniqueness degrades gracefully to freshness).
func (s *Store) readGen() uint64 {
	b, err := s.fs.ReadFile(s.dir + "/gen")
	if err != nil {
		return 0
	}
	recs, _, _ := scanRecords(b)
	if len(recs) == 0 {
		return 0
	}
	return recs[0].seq
}

// writeGen persists the generation counter via temp + fsync + rename.
func (s *Store) writeGen(gen uint64) error {
	buf := append([]byte(nil), magic...)
	buf = appendRecord(buf, gen, nil)
	if err := s.writeAtomic("gen", buf); err != nil {
		return fmt.Errorf("persist: write generation: %w", err)
	}
	return nil
}

// writeAtomic writes name via a .tmp sibling, fsync, rename, dir fsync.
func (s *Store) writeAtomic(name string, b []byte) error {
	tmp := s.dir + "/" + name + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	t := s.opt.Metrics.Timer("persist.fsync")
	start := t.Start()
	err = f.Sync()
	t.Stop(start)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, s.dir+"/"+name); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// rotateJournal closes the current journal (if any) and starts an empty
// one based at base.
func (s *Store) rotateJournal(base uint64) error {
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			return fmt.Errorf("persist: close journal: %w", err)
		}
		s.journal = nil
	}
	name := journalName(base, s.gen)
	f, err := s.fs.OpenAppend(s.dir + "/" + name)
	if err != nil {
		return fmt.Errorf("persist: open journal %s: %w", name, err)
	}
	if _, err := f.Write(magic); err != nil {
		f.Close()
		return fmt.Errorf("persist: journal magic: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: journal sync: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.journal = f
	s.journBase = base
	s.count = 0
	return nil
}

// Recovered returns what Open recovered (Payload nil on a cold start).
// The result is owned by the store; callers must not mutate it.
func (s *Store) Recovered() *Recovered { return s.recovered }

// Generation returns this incarnation's fence value: strictly greater than
// every generation any earlier opener of the directory ever held.
func (s *Store) Generation() uint64 { return s.gen }

// LastSeq returns the highest epoch sequence committed (recovered or
// appended).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// JournalLen returns the number of records in the current journal.
func (s *Store) JournalLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// NeedCompact reports whether the journal has reached the compaction
// cadence (Options.CompactEvery) and the caller should Compact.
func (s *Store) NeedCompact() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count >= s.opt.CompactEvery
}

// Append journals one epoch record and fsyncs it: when Append returns nil
// the record survives kill -9. Sequences must be strictly increasing; the
// first write failure poisons the store (a partial write leaves the tail
// torn, which recovery handles, but further appends behind it would be
// unreachable, so the store refuses them).
func (s *Store) Append(seq uint64, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: append on closed store")
	}
	if s.broken != nil {
		return fmt.Errorf("persist: store broken by earlier write failure: %w", s.broken)
	}
	if seq <= s.lastSeq {
		return fmt.Errorf("persist: append seq %d not after %d", seq, s.lastSeq)
	}
	buf := appendRecord(nil, seq, body)
	if _, err := s.journal.Write(buf); err != nil {
		s.broken = err
		return fmt.Errorf("persist: append: %w", err)
	}
	t := s.opt.Metrics.Timer("persist.fsync")
	start := t.Start()
	err := s.journal.Sync()
	t.Stop(start)
	if err != nil {
		s.broken = err
		return fmt.Errorf("persist: append sync: %w", err)
	}
	s.lastSeq = seq
	s.count++
	s.opt.Metrics.Counter("persist.appends").Inc()
	s.opt.Metrics.Counter("persist.append_bytes").Add(int64(len(buf)))
	return nil
}

// Compact writes the full state at seq as an atomic snapshot, rotates the
// journal to an empty one based at seq, and prunes files that recovery no
// longer needs (the newest two snapshots are kept: the previous one is the
// fallback if the newest is ever damaged).
func (s *Store) Compact(seq uint64, snapshot []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: compact on closed store")
	}
	if s.broken != nil {
		return fmt.Errorf("persist: store broken by earlier write failure: %w", s.broken)
	}
	if seq < s.lastSeq {
		return fmt.Errorf("persist: compact seq %d behind journal seq %d", seq, s.lastSeq)
	}
	buf := append([]byte(nil), magic...)
	buf = appendRecord(buf, seq, snapshot)
	if err := s.writeAtomic(snapName(seq), buf); err != nil {
		s.broken = err
		return fmt.Errorf("persist: snapshot %d: %w", seq, err)
	}
	s.lastSeq = seq
	s.snaps = append(s.snaps, seq)
	sort.Slice(s.snaps, func(i, j int) bool { return s.snaps[i] < s.snaps[j] })
	if err := s.rotateJournal(seq); err != nil {
		s.broken = err
		return err
	}
	s.prune()
	s.opt.Metrics.Counter("persist.snapshots").Inc()
	return nil
}

// prune removes snapshots older than the newest two and journals subsumed
// by the older kept snapshot. Best-effort: a failed remove only costs disk.
func (s *Store) prune() {
	if len(s.snaps) <= 2 {
		return
	}
	keepFrom := s.snaps[len(s.snaps)-2]
	for _, seq := range s.snaps[:len(s.snaps)-2] {
		if s.fs.Remove(s.dir+"/"+snapName(seq)) == nil {
			s.opt.Metrics.Counter("persist.pruned").Inc()
		}
	}
	s.snaps = append([]uint64(nil), s.snaps[len(s.snaps)-2:]...)
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		base, gen, ok := parseJournalName(name)
		if !ok || (base == s.journBase && gen == s.gen) {
			continue
		}
		if base < keepFrom {
			if s.fs.Remove(s.dir+"/"+name) == nil {
				s.opt.Metrics.Counter("persist.pruned").Inc()
			}
		}
	}
}

// Close releases the journal and the directory lock. Idempotent: a second
// Close is a no-op returning nil, so owners can both defer and explicitly
// close. Close never flushes — every successful Append/Compact is already
// durable — so closing is equivalent to a crash as far as recovery is
// concerned.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && first == nil {
			first = err
		}
		s.journal = nil
	}
	if s.lock != nil {
		if err := s.lock.Close(); err != nil && first == nil {
			first = err
		}
		s.lock = nil
	}
	return first
}
