package persist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Recovered is the outcome of scanning a state directory.
type Recovered struct {
	// Seq is the epoch sequence of the recovered state; Payload its body.
	Seq     uint64
	Payload []byte
	// Stats describes how the recovery went (replay counts, skipped
	// corruption, torn tails) for the wan.recovery.* surfacing.
	Stats RecoveryStats
}

// RecoveryStats counts what recovery read and what it had to discard.
type RecoveryStats struct {
	// RecordsReplayed is the number of checksum-valid records examined
	// across snapshots and journals.
	RecordsReplayed int
	// CorruptSkipped counts checksum failures, torn tails, and unreadable
	// files that recovery stepped over record by record.
	CorruptSkipped int
	// TornTail reports that at least one journal ended mid-record — the
	// signature of a crash during Append.
	TornTail bool
	// Snapshots and Journals are the candidate files found in the
	// directory (before validation).
	Snapshots, Journals int
}

// snapName / journalName build the on-disk file names. Journals carry the
// writing incarnation's generation so two incarnations recovering from the
// same sequence never append to one another's files.
func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x", seq) }

func journalName(base, gen uint64) string {
	return fmt.Sprintf("journal-%016x-%08x", base, gen)
}

func parseSnapName(name string) (seq uint64, ok bool) {
	s, found := strings.CutPrefix(name, "snap-")
	if !found || strings.HasSuffix(s, ".tmp") {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	return v, err == nil
}

func parseJournalName(name string) (base, gen uint64, ok bool) {
	s, found := strings.CutPrefix(name, "journal-")
	if !found || strings.HasSuffix(s, ".tmp") {
		return 0, 0, false
	}
	b, g, found := strings.Cut(s, "-")
	if !found {
		return 0, 0, false
	}
	bv, err1 := strconv.ParseUint(b, 16, 64)
	gv, err2 := strconv.ParseUint(g, 16, 64)
	return bv, gv, err1 == nil && err2 == nil
}

// recoverDir scans dir through fs and returns the newest valid state. The
// rule is simple and conservative: every snapshot contributes its single
// record if the checksum holds; every journal contributes its valid record
// prefix (scan stops at the first torn or corrupt record); the candidate
// with the highest sequence wins. Nothing that fails a checksum is ever
// returned, and a directory with no valid record returns ErrNoState.
func recoverDir(fs FS, dir string) (*Recovered, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: scan %s: %w", dir, err)
	}
	type journalFile struct{ base, gen uint64 }
	var snaps []uint64
	var journals []journalFile
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			snaps = append(snaps, seq)
		} else if base, gen, ok := parseJournalName(name); ok {
			journals = append(journals, journalFile{base, gen})
		}
	}
	// Deterministic scan order regardless of directory iteration order.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(journals, func(i, j int) bool {
		if journals[i].base != journals[j].base {
			return journals[i].base < journals[j].base
		}
		return journals[i].gen < journals[j].gen
	})

	rec := &Recovered{}
	rec.Stats.Snapshots = len(snaps)
	rec.Stats.Journals = len(journals)
	found := false
	consider := func(r record) {
		rec.Stats.RecordsReplayed++
		if !found || r.seq >= rec.Seq {
			rec.Seq = r.seq
			rec.Payload = append([]byte(nil), r.body...)
			found = true
		}
	}
	for _, seq := range snaps {
		b, err := fs.ReadFile(dir + "/" + snapName(seq))
		if err != nil {
			rec.Stats.CorruptSkipped++
			continue
		}
		recs, torn, corrupt := scanRecords(b)
		rec.Stats.CorruptSkipped += corrupt
		// A snapshot is exactly one record; tolerate (ignore) trailing junk
		// but never trust a snapshot whose record fails its checksum.
		if torn && len(recs) == 0 {
			continue
		}
		for _, r := range recs {
			consider(r)
		}
	}
	for _, j := range journals {
		b, err := fs.ReadFile(dir + "/" + journalName(j.base, j.gen))
		if err != nil {
			rec.Stats.CorruptSkipped++
			continue
		}
		recs, torn, corrupt := scanRecords(b)
		rec.Stats.CorruptSkipped += corrupt
		if torn {
			rec.Stats.TornTail = true
		}
		for _, r := range recs {
			consider(r)
		}
	}
	if !found {
		return rec, ErrNoState
	}
	return rec, nil
}

// Recover scans a state directory read-only (no lock, no generation bump)
// and returns the newest valid state. It is what the fuzz target drives:
// for arbitrary directory contents it must return a checksum-valid record
// or ErrNoState — never panic, never torn state.
func Recover(dir string) (*Recovered, error) {
	return recoverDir(osFS{}, dir)
}
