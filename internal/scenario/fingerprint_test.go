package scenario

import (
	"math/rand"
	"testing"
)

func testProbs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.001 + 0.05*rng.Float64()
	}
	return probs
}

func mustEnumerate(t *testing.T, probs []float64, opts Options) *Set {
	t.Helper()
	s, err := Enumerate(probs, opts)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return s
}

func TestFingerprintDeterministic(t *testing.T) {
	probs := testProbs(12, 1)
	opts := Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 100}
	a := mustEnumerate(t, probs, opts)
	b := mustEnumerate(t, probs, opts)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same inputs, different fingerprints: %v vs %v", a.Fingerprint(), b.Fingerprint())
	}
	if a.StructureFingerprint() != b.StructureFingerprint() {
		t.Fatalf("same inputs, different structure fingerprints")
	}
	if FingerprintProbs(probs, opts) != FingerprintProbs(probs, opts) {
		t.Fatalf("FingerprintProbs not deterministic")
	}
	if a.Fingerprint() == 0 {
		t.Fatalf("fingerprint of non-empty set is zero")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	probs := testProbs(12, 2)
	opts := Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 100}
	base := mustEnumerate(t, probs, opts)

	// Probability drift changes the full fingerprint.
	drifted := append([]float64(nil), probs...)
	drifted[3] += 1e-12
	d := mustEnumerate(t, drifted, opts)
	if d.Fingerprint() == base.Fingerprint() {
		t.Fatalf("probability drift did not change fingerprint")
	}
	if FingerprintProbs(drifted, opts) == FingerprintProbs(probs, opts) {
		t.Fatalf("probability drift did not change input fingerprint")
	}

	// Different options change the input fingerprint even with same probs.
	opts2 := opts
	opts2.MaxScenarios = 50
	if FingerprintProbs(probs, opts2) == FingerprintProbs(probs, opts) {
		t.Fatalf("options change did not change input fingerprint")
	}
}

func TestDiffUnchanged(t *testing.T) {
	probs := testProbs(10, 3)
	opts := Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 80}
	a := mustEnumerate(t, probs, opts)
	b := mustEnumerate(t, probs, opts)
	d := b.Diff(a)
	if d.Class != DeltaUnchanged {
		t.Fatalf("identical sets classified %v, want unchanged", d.Class)
	}
	if d.MaxDrift != 0 || d.Added != 0 || d.Removed != 0 {
		t.Fatalf("unchanged delta has nonzero fields: %+v", d)
	}
}

func TestDiffNilPrev(t *testing.T) {
	probs := testProbs(8, 4)
	s := mustEnumerate(t, probs, Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 50})
	d := s.Diff(nil)
	if d.Class != DeltaStructural {
		t.Fatalf("nil prev classified %v, want structural", d.Class)
	}
	if d.Added != len(s.Scenarios) {
		t.Fatalf("nil prev Added = %d, want %d", d.Added, len(s.Scenarios))
	}
}

func TestDiffProbOnly(t *testing.T) {
	probs := testProbs(10, 5)
	// No cutoff/cap pressure: small drift cannot change which scenarios
	// survive, only their probabilities (and their sorted order).
	opts := Options{Cutoff: 0, MaxFailures: 2, MaxScenarios: 10000}
	prev := mustEnumerate(t, probs, opts)

	drifted := append([]float64(nil), probs...)
	drifted[2] += 0.004
	drifted[7] -= 0.0005
	cur := mustEnumerate(t, drifted, opts)

	d := cur.Diff(prev)
	if d.Class != DeltaProbOnly {
		t.Fatalf("pure probability drift classified %v, want prob-only (added=%d removed=%d)",
			d.Class, d.Added, d.Removed)
	}
	if d.MaxDrift <= 0 {
		t.Fatalf("prob-only delta reports MaxDrift = %v, want > 0", d.MaxDrift)
	}
	if d.Added != 0 || d.Removed != 0 {
		t.Fatalf("prob-only delta has added/removed: %+v", d)
	}
}

func TestDiffProbOnlySurvivesReordering(t *testing.T) {
	// Drift large enough to reorder the probability-sorted set but not to
	// change which scenarios exist must still classify prob-only.
	probs := []float64{0.010, 0.011, 0.012, 0.013}
	opts := Options{Cutoff: 0, MaxFailures: 2, MaxScenarios: 10000}
	prev := mustEnumerate(t, probs, opts)

	reordered := []float64{0.013, 0.012, 0.011, 0.010}
	cur := mustEnumerate(t, reordered, opts)
	if len(cur.Scenarios) != len(prev.Scenarios) {
		t.Fatalf("scenario counts differ: %d vs %d", len(cur.Scenarios), len(prev.Scenarios))
	}
	d := cur.Diff(prev)
	if d.Class != DeltaProbOnly {
		t.Fatalf("reordering drift classified %v, want prob-only", d.Class)
	}
}

func TestDiffStructural(t *testing.T) {
	probs := testProbs(10, 6)
	opts := Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 50}
	prev := mustEnumerate(t, probs, opts)

	// Zeroing a fiber's probability removes all scenarios cutting it.
	changed := append([]float64(nil), probs...)
	changed[4] = 0
	cur := mustEnumerate(t, changed, opts)
	d := cur.Diff(prev)
	if d.Class != DeltaStructural {
		t.Fatalf("fiber removal classified %v, want structural", d.Class)
	}
	if d.Removed == 0 {
		t.Fatalf("structural delta reports no removed scenarios")
	}

	// Shrinking the cap drops tail scenarios: also structural.
	opts2 := opts
	opts2.MaxScenarios = len(prev.Scenarios) - 3
	smaller := mustEnumerate(t, probs, opts2)
	d2 := smaller.Diff(prev)
	if d2.Class != DeltaStructural {
		t.Fatalf("cap shrink classified %v, want structural", d2.Class)
	}
}

func TestDeltaClassString(t *testing.T) {
	cases := map[DeltaClass]string{
		DeltaUnchanged:  "unchanged",
		DeltaProbOnly:   "prob-only",
		DeltaStructural: "structural",
		DeltaClass(9):   "DeltaClass(9)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("DeltaClass(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestFingerprintNilSet(t *testing.T) {
	var s *Set
	if s.Fingerprint() != 0 || s.StructureFingerprint() != 0 {
		t.Fatalf("nil set fingerprints should be zero")
	}
}
