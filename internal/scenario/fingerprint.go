package scenario

import (
	"fmt"
	"math"
	"sort"
)

// Fingerprint is a deterministic 64-bit identity for a scenario set (or for
// the enumeration inputs that produce one). Two sets with equal fingerprints
// are treated as identical by the cross-epoch solve cache; the hash covers
// both the cut structure and the exact probability bits, so any drift in
// either changes the fingerprint.
type Fingerprint uint64

// String renders the fingerprint as fixed-width hex (stable for logs and
// journal records).
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters. FNV is used
// everywhere a fingerprint is computed: it is deterministic across
// processes and platforms (no map iteration, no hash seed), which is what
// lets a restarted controller compare its re-enumerated scenario set
// against the fingerprint its predecessor journaled.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func fnvFloat(h uint64, v float64) uint64 { return fnvUint64(h, math.Float64bits(v)) }

// structureHash hashes one scenario's cut set (not its probability).
func (s Scenario) structureHash() uint64 {
	h := uint64(fnvOffset)
	h = fnvUint64(h, uint64(len(s.Cut)))
	for _, f := range s.Cut {
		h = fnvUint64(h, uint64(f))
	}
	return h
}

// Fingerprint returns the full identity of the set: scenario order, cut
// structure, and the exact probability bits. Enumerate is deterministic, so
// equal probability vectors and options always reproduce equal
// fingerprints; conversely, any probability drift — however small — changes
// the fingerprint, which is what makes "unchanged" a safe fast path for the
// solve cache (bit-identical inputs imply a bit-identical solve).
func (s *Set) Fingerprint() Fingerprint {
	if s == nil {
		return 0
	}
	h := uint64(fnvOffset)
	h = fnvUint64(h, uint64(len(s.Scenarios)))
	for _, sc := range s.Scenarios {
		h = fnvUint64(h, sc.structureHash())
		h = fnvFloat(h, sc.Prob)
	}
	return Fingerprint(h)
}

// StructureFingerprint identifies the set's cut structure only, insensitive
// to probabilities AND to scenario order (probability drift reorders the
// probability-sorted enumeration without changing which scenarios exist).
// Two sets with equal structure fingerprints enumerate the same failure
// combinations, so Benders cuts derived from one remain valid optimality
// cuts for the other — the probability-only reuse case.
func (s *Set) StructureFingerprint() Fingerprint {
	if s == nil {
		return 0
	}
	hashes := make([]uint64, len(s.Scenarios))
	for i, sc := range s.Scenarios {
		hashes[i] = sc.structureHash()
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	h := uint64(fnvOffset)
	h = fnvUint64(h, uint64(len(hashes)))
	for _, v := range hashes {
		h = fnvUint64(h, v)
	}
	return Fingerprint(h)
}

// FingerprintProbs fingerprints the *inputs* of an enumeration — the
// per-fiber probability vector and the enumeration options — without
// running it. Enumerate is a pure function of exactly these inputs, so
// equal input fingerprints guarantee bit-identical sets; the evaluator's
// enumeration memo keys on this to skip re-enumerating unchanged epochs.
func FingerprintProbs(probs []float64, opts Options) Fingerprint {
	h := uint64(fnvOffset)
	h = fnvUint64(h, uint64(len(probs)))
	for _, p := range probs {
		h = fnvFloat(h, p)
	}
	h = fnvFloat(h, opts.Cutoff)
	h = fnvUint64(h, uint64(opts.MaxFailures))
	h = fnvUint64(h, uint64(opts.MaxScenarios))
	return Fingerprint(h)
}

// DeltaClass classifies how a scenario set changed between two TE epochs.
type DeltaClass int

const (
	// DeltaUnchanged: the sets are bit-identical (same scenarios, same
	// order, same probability bits). A cached solve result is reusable
	// verbatim.
	DeltaUnchanged DeltaClass = iota
	// DeltaProbOnly: the same failure combinations are enumerated but at
	// least one probability moved (the common between-epoch case — a few
	// calibrated probabilities drift). Structural Benders cuts and
	// subproblem optimality cuts remain valid; only the master's
	// probability-weighted rows need reweighting.
	DeltaProbOnly
	// DeltaStructural: the enumerated combinations themselves differ
	// (scenarios appeared or disappeared — a topology change, an options
	// change, or probability drift large enough to cross the enumeration
	// cutoff). Cached cuts may reference classes that no longer exist;
	// everything must be evicted and re-derived.
	DeltaStructural
)

// String names the class for tables and metrics.
func (c DeltaClass) String() string {
	switch c {
	case DeltaUnchanged:
		return "unchanged"
	case DeltaProbOnly:
		return "prob-only"
	case DeltaStructural:
		return "structural"
	}
	return fmt.Sprintf("DeltaClass(%d)", int(c))
}

// Delta describes the difference between a scenario set and its
// predecessor.
type Delta struct {
	Class DeltaClass
	// MaxDrift is the largest absolute per-scenario probability change
	// across matched scenarios (0 when unchanged; also computed for
	// structural deltas over the scenarios both sets share).
	MaxDrift float64
	// Added and Removed count scenarios present in only one of the two
	// sets (both 0 unless the delta is structural).
	Added, Removed int
}

// Diff classifies how the set differs from prev. A nil prev (first epoch)
// is structural: there is nothing to reuse. The classification is exact,
// not probabilistic: unchanged means bit-identical fingerprints, prob-only
// means identical cut structure, and everything else is structural.
func (s *Set) Diff(prev *Set) Delta {
	if prev == nil {
		return Delta{Class: DeltaStructural, Added: len(s.Scenarios)}
	}
	if s.Fingerprint() == prev.Fingerprint() {
		return Delta{Class: DeltaUnchanged}
	}
	d := Delta{Class: DeltaProbOnly}
	if s.StructureFingerprint() != prev.StructureFingerprint() {
		d.Class = DeltaStructural
	}
	prevProb := make(map[string]float64, len(prev.Scenarios))
	for _, sc := range prev.Scenarios {
		prevProb[sc.Key()] = sc.Prob
	}
	matched := 0
	for _, sc := range s.Scenarios {
		p, ok := prevProb[sc.Key()]
		if !ok {
			d.Added++
			continue
		}
		matched++
		if drift := math.Abs(sc.Prob - p); drift > d.MaxDrift {
			d.MaxDrift = drift
		}
	}
	d.Removed = len(prev.Scenarios) - matched
	return d
}
