// Package scenario constructs the probabilistic failure scenarios q in Q_s
// that PreTE's optimization (§4.3) and the benchmark TE schemes plan
// against. A scenario is a set of simultaneously cut fibers; its probability
// is the product over fibers of p_n or (1 - p_n) per the paper's
// p_q = prod_n (q_n p_n + (1 - q_n)(1 - p_n)).
//
// Scenario sets are enumerated up to a probability cutoff ("we select
// degradation and failure scenarios based on the specific cutoff values",
// §6.1): the empty scenario, all single-fiber failures, and the most likely
// double-fiber failures.
package scenario

import (
	"fmt"
	"sort"

	"prete/internal/topology"
)

// Scenario is one failure scenario: the set of cut fibers and its
// probability under the current (possibly degradation-calibrated) per-fiber
// failure probabilities.
type Scenario struct {
	Cut  []topology.FiberID // sorted
	Prob float64
}

// Key returns a canonical string identity for deduplication and maps.
func (s Scenario) Key() string {
	b := make([]byte, 0, len(s.Cut)*3)
	for _, f := range s.Cut {
		b = append(b, byte(f), byte(f>>8), ',')
	}
	return string(b)
}

// CutSet returns the scenario's cut fibers as a set.
func (s Scenario) CutSet() map[topology.FiberID]bool {
	m := make(map[topology.FiberID]bool, len(s.Cut))
	for _, f := range s.Cut {
		m[f] = true
	}
	return m
}

// Set is an enumerated scenario collection.
type Set struct {
	Scenarios []Scenario
	// Covered is the total enumerated probability mass; 1 - Covered is the
	// unplanned tail that availability accounting charges as loss.
	Covered float64
}

// Options bounds enumeration.
type Options struct {
	// Cutoff drops scenarios with probability below it (except the empty
	// scenario, which is always kept).
	Cutoff float64
	// MaxFailures caps the number of simultaneously cut fibers (>= 1).
	// Enumeration materializes up to triple failures: 1 yields singles, 2
	// adds doubles, and >= 3 adds triples (needed when a degradation storm
	// calibrates several fibers to high probability at once).
	MaxFailures int
	// MaxScenarios caps the set size, keeping the most probable.
	MaxScenarios int
}

// DefaultOptions matches the simulation setup: up to double failures, a
// 1e-9 cutoff, and at most 2000 scenarios.
func DefaultOptions() Options {
	return Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 2000}
}

// Enumerate builds the scenario set for per-fiber failure probabilities
// probs (indexed by FiberID). It is a pure, deterministic function of
// (probs, opts): the same inputs always produce a bit-identical set, which
// is the property FingerprintProbs and the cross-epoch solve cache rely on.
// Enumerate is the single-shard serial case of EnumerateSharded.
func Enumerate(probs []float64, opts Options) (*Set, error) {
	return EnumerateSharded(probs, opts, 1, 1)
}

// sortScenarios orders scenarios by descending probability, stably, so the
// order of equal-probability scenarios is the append order of the
// enumeration loops.
func sortScenarios(out []Scenario) {
	sort.SliceStable(out, func(a, b int) bool { return out[a].Prob > out[b].Prob })
}

// Calibrated computes Eqn. 1's per-fiber failure probabilities for a
// degradation scenario: p_n = p_NN when fiber n is degraded (predicted by
// the NN), and (1 - alpha) * p_i otherwise (Theorem 4.1).
//
// pi is the static per-epoch failure probability per fiber; degraded maps a
// degraded fiber to its NN-predicted failure probability.
func Calibrated(pi []float64, degraded map[topology.FiberID]float64, alpha float64) ([]float64, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("scenario: alpha %v out of [0, 1)", alpha)
	}
	out := make([]float64, len(pi))
	for i, p := range pi {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("scenario: fiber %d has invalid p_i %v", i, p)
		}
		out[i] = (1 - alpha) * p
	}
	for f, pNN := range degraded {
		if int(f) < 0 || int(f) >= len(pi) {
			return nil, fmt.Errorf("scenario: degraded fiber %d out of range", f)
		}
		if pNN < 0 || pNN > 1 {
			return nil, fmt.Errorf("scenario: fiber %d has invalid p_NN %v", f, pNN)
		}
		out[f] = pNN
	}
	return out, nil
}

// Static returns the uncalibrated probabilities (what TeaVaR-style schemes
// use): p_n = p_i for every fiber, regardless of degradation state.
func Static(pi []float64) []float64 {
	return append([]float64(nil), pi...)
}
