// Package scenario constructs the probabilistic failure scenarios q in Q_s
// that PreTE's optimization (§4.3) and the benchmark TE schemes plan
// against. A scenario is a set of simultaneously cut fibers; its probability
// is the product over fibers of p_n or (1 - p_n) per the paper's
// p_q = prod_n (q_n p_n + (1 - q_n)(1 - p_n)).
//
// Scenario sets are enumerated up to a probability cutoff ("we select
// degradation and failure scenarios based on the specific cutoff values",
// §6.1): the empty scenario, all single-fiber failures, and the most likely
// double-fiber failures.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"prete/internal/topology"
)

// Scenario is one failure scenario: the set of cut fibers and its
// probability under the current (possibly degradation-calibrated) per-fiber
// failure probabilities.
type Scenario struct {
	Cut  []topology.FiberID // sorted
	Prob float64
}

// Key returns a canonical string identity for deduplication and maps.
func (s Scenario) Key() string {
	b := make([]byte, 0, len(s.Cut)*3)
	for _, f := range s.Cut {
		b = append(b, byte(f), byte(f>>8), ',')
	}
	return string(b)
}

// CutSet returns the scenario's cut fibers as a set.
func (s Scenario) CutSet() map[topology.FiberID]bool {
	m := make(map[topology.FiberID]bool, len(s.Cut))
	for _, f := range s.Cut {
		m[f] = true
	}
	return m
}

// Set is an enumerated scenario collection.
type Set struct {
	Scenarios []Scenario
	// Covered is the total enumerated probability mass; 1 - Covered is the
	// unplanned tail that availability accounting charges as loss.
	Covered float64
}

// Options bounds enumeration.
type Options struct {
	// Cutoff drops scenarios with probability below it (except the empty
	// scenario, which is always kept).
	Cutoff float64
	// MaxFailures caps the number of simultaneously cut fibers (>= 1).
	MaxFailures int
	// MaxScenarios caps the set size, keeping the most probable.
	MaxScenarios int
}

// DefaultOptions matches the simulation setup: up to double failures, a
// 1e-9 cutoff, and at most 2000 scenarios.
func DefaultOptions() Options {
	return Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 2000}
}

// Enumerate builds the scenario set for per-fiber failure probabilities
// probs (indexed by FiberID).
func Enumerate(probs []float64, opts Options) (*Set, error) {
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("scenario: fiber %d has invalid probability %v", i, p)
		}
	}
	if opts.MaxFailures < 1 {
		opts.MaxFailures = 1
	}
	if opts.MaxScenarios < 1 {
		opts.MaxScenarios = 1
	}
	n := len(probs)
	// Per-scenario probability computed directly as
	// prod_{i in cut} p_i * prod_{i not in cut} (1 - p_i). The direct
	// product (rather than dividing (1-p_i) factors out of the all-up
	// probability) stays exact when some p_i is 0 or 1 — PreTE's
	// evaluation conditions on "this fiber will certainly cut" (p = 1).
	scenProb := func(cut ...int) float64 {
		inCut := func(i int) bool {
			for _, c := range cut {
				if c == i {
					return true
				}
			}
			return false
		}
		p := 1.0
		for i, pi := range probs {
			if inCut(i) {
				p *= pi
			} else {
				p *= 1 - pi
			}
		}
		return p
	}
	var out []Scenario
	out = append(out, Scenario{Prob: scenProb()})
	// single failures
	for i := 0; i < n; i++ {
		p := scenProb(i)
		if p >= opts.Cutoff && p > 0 {
			out = append(out, Scenario{Cut: []topology.FiberID{topology.FiberID(i)}, Prob: p})
		}
	}
	// double failures
	if opts.MaxFailures >= 2 {
		for i := 0; i < n; i++ {
			if probs[i] <= 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				p := scenProb(i, j)
				if p >= opts.Cutoff && p > 0 {
					out = append(out, Scenario{
						Cut:  []topology.FiberID{topology.FiberID(i), topology.FiberID(j)},
						Prob: p,
					})
				}
			}
		}
	}
	// triples and beyond are omitted: their mass is far below any cutoff
	// that keeps the optimization tractable, mirroring the paper's cutoff
	// selection.
	sort.SliceStable(out, func(a, b int) bool { return out[a].Prob > out[b].Prob })
	if len(out) > opts.MaxScenarios {
		out = out[:opts.MaxScenarios]
	}
	// The empty scenario must always survive the cap.
	if len(out[0].Cut) != 0 {
		for i := range out {
			if len(out[i].Cut) == 0 {
				out[0], out[i] = out[i], out[0]
				break
			}
		}
	}
	set := &Set{Scenarios: out}
	for _, s := range out {
		set.Covered += s.Prob
	}
	return set, nil
}

// Calibrated computes Eqn. 1's per-fiber failure probabilities for a
// degradation scenario: p_n = p_NN when fiber n is degraded (predicted by
// the NN), and (1 - alpha) * p_i otherwise (Theorem 4.1).
//
// pi is the static per-epoch failure probability per fiber; degraded maps a
// degraded fiber to its NN-predicted failure probability.
func Calibrated(pi []float64, degraded map[topology.FiberID]float64, alpha float64) ([]float64, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("scenario: alpha %v out of [0, 1)", alpha)
	}
	out := make([]float64, len(pi))
	for i, p := range pi {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("scenario: fiber %d has invalid p_i %v", i, p)
		}
		out[i] = (1 - alpha) * p
	}
	for f, pNN := range degraded {
		if int(f) < 0 || int(f) >= len(pi) {
			return nil, fmt.Errorf("scenario: degraded fiber %d out of range", f)
		}
		if pNN < 0 || pNN > 1 {
			return nil, fmt.Errorf("scenario: fiber %d has invalid p_NN %v", f, pNN)
		}
		out[f] = pNN
	}
	return out, nil
}

// Static returns the uncalibrated probabilities (what TeaVaR-style schemes
// use): p_n = p_i for every fiber, regardless of degradation state.
func Static(pi []float64) []float64 {
	return append([]float64(nil), pi...)
}
