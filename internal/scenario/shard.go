package scenario

import (
	"fmt"
	"math"

	"prete/internal/par"
	"prete/internal/topology"
)

// EnumerateSharded is Enumerate with the double-failure sweep — the O(n²)
// pair loop that dominates enumeration cost on large topologies —
// partitioned into shards and fanned across par workers. The output is
// bit-identical to Enumerate at every (shards, parallelism) combination:
//
//   - Shards are contiguous ranges of the outer pair index i, so each pair
//     (i, j) belongs to exactly one shard and shards never overlap.
//   - Each shard appends its scenarios in the serial loop's (i, j) order;
//     shard outputs are concatenated in shard order, reproducing the serial
//     append order exactly.
//   - The probability sort is stable, so equal-probability scenarios keep
//     that order; the cap, empty-scenario pin, and Covered sum then operate
//     on an identical slice.
//
// Shard boundaries are balanced by pair count (shard s covers roughly
// 1/shards of the n·(n-1)/2 pairs, its work-unit quota), not by outer-index
// count — early rows own nearly n pairs, late rows almost none. shards <= 1
// (and parallelism <= 1 with one shard) is the serial path Enumerate takes.
func EnumerateSharded(probs []float64, opts Options, shards, parallelism int) (*Set, error) {
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("scenario: fiber %d has invalid probability %v", i, p)
		}
	}
	if opts.MaxFailures < 1 {
		opts.MaxFailures = 1
	}
	if opts.MaxScenarios < 1 {
		opts.MaxScenarios = 1
	}
	n := len(probs)
	// Per-scenario probability computed directly as
	// prod_{i in cut} p_i * prod_{i not in cut} (1 - p_i). The direct
	// product (rather than dividing (1-p_i) factors out of the all-up
	// probability) stays exact when some p_i is 0 or 1 — PreTE's
	// evaluation conditions on "this fiber will certainly cut" (p = 1).
	scenProb := func(cut ...int) float64 {
		inCut := func(i int) bool {
			for _, c := range cut {
				if c == i {
					return true
				}
			}
			return false
		}
		p := 1.0
		for i, pi := range probs {
			if inCut(i) {
				p *= pi
			} else {
				p *= 1 - pi
			}
		}
		return p
	}
	var out []Scenario
	out = append(out, Scenario{Prob: scenProb()})
	// single failures
	for i := 0; i < n; i++ {
		p := scenProb(i)
		if p >= opts.Cutoff && p > 0 {
			out = append(out, Scenario{Cut: []topology.FiberID{topology.FiberID(i)}, Prob: p})
		}
	}
	// double failures, sharded over the outer index
	if opts.MaxFailures >= 2 && n >= 2 {
		doubles := func(lo, hi int) []Scenario {
			var part []Scenario
			for i := lo; i < hi; i++ {
				if probs[i] <= 0 {
					continue
				}
				for j := i + 1; j < n; j++ {
					p := scenProb(i, j)
					if p >= opts.Cutoff && p > 0 {
						part = append(part, Scenario{
							Cut:  []topology.FiberID{topology.FiberID(i), topology.FiberID(j)},
							Prob: p,
						})
					}
				}
			}
			return part
		}
		bounds := shardBounds(n, shards)
		if len(bounds) == 2 {
			out = append(out, doubles(bounds[0], bounds[1])...)
		} else {
			parts := par.Map(len(bounds)-1, parallelism, func(s int) []Scenario {
				return doubles(bounds[s], bounds[s+1])
			})
			for _, part := range parts {
				out = append(out, part...)
			}
		}
	}
	// Triple failures are enumerated only when MaxFailures >= 3. Under the
	// paper's quiet-epoch probabilities their mass is far below any
	// tractable cutoff (hence the default of 2), but a degradation storm
	// calibrates several fibers to high probability at once, where the
	// triples carry percent-level mass that beta-feasibility needs. The
	// sweep is serial: storm-sized inputs keep n small, and the pair sweep
	// above still dominates on large topologies with the default options.
	if opts.MaxFailures >= 3 && n >= 3 {
		for i := 0; i < n; i++ {
			if probs[i] <= 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if probs[j] <= 0 {
					continue
				}
				for k := j + 1; k < n; k++ {
					p := scenProb(i, j, k)
					if p >= opts.Cutoff && p > 0 {
						out = append(out, Scenario{
							Cut:  []topology.FiberID{topology.FiberID(i), topology.FiberID(j), topology.FiberID(k)},
							Prob: p,
						})
					}
				}
			}
		}
	}
	// Quadruples and beyond are omitted: even storm calibrations leave
	// their mass below the cutoffs that keep the optimization tractable.
	return finishSet(out, opts), nil
}

// shardBounds splits the outer pair index range [0, n-1) into at most
// `shards` contiguous ranges balanced by pair count: row i contributes
// n-1-i pairs, so boundaries advance until each shard holds roughly
// total/shards pairs. Returns len(ranges)+1 boundary values; bounds[s] to
// bounds[s+1] is shard s's half-open row range. Degenerate inputs collapse
// to a single shard.
func shardBounds(n, shards int) []int {
	rows := n - 1 // rows with at least one pair: i in [0, n-1)
	if rows < 1 {
		return []int{0, 0}
	}
	if shards > rows {
		shards = rows
	}
	if shards <= 1 {
		return []int{0, rows}
	}
	total := rows * (rows + 1) / 2 // sum over i of (n-1-i)
	quota := float64(total) / float64(shards)
	bounds := []int{0}
	acc := 0
	for i := 0; i < rows; i++ {
		acc += rows - i // pairs in row i
		if float64(acc) >= quota*float64(len(bounds)) && len(bounds) < shards {
			bounds = append(bounds, i+1)
		}
	}
	return append(bounds, rows)
}

// finishSet applies the tail of enumeration shared by the serial and
// sharded paths: stable probability sort, MaxScenarios cap, pinning the
// empty scenario past the cap, and the Covered sum.
func finishSet(out []Scenario, opts Options) *Set {
	sortScenarios(out)
	if len(out) > opts.MaxScenarios {
		out = out[:opts.MaxScenarios]
	}
	// The empty scenario must always survive the cap.
	if len(out[0].Cut) != 0 {
		for i := range out {
			if len(out[i].Cut) == 0 {
				out[0], out[i] = out[i], out[0]
				break
			}
		}
	}
	set := &Set{Scenarios: out}
	for _, s := range out {
		set.Covered += s.Prob
	}
	return set
}
