package scenario

import (
	"math"
	"testing"

	"prete/internal/stats"
	"prete/internal/topology"
)

// TestCalibratedTheorem41Bound checks Theorem 4.1's calibration over random
// grids: every non-degraded fiber gets exactly (1 - alpha) * p_i, which is
// never above the static p_i, and degraded fibers get the NN prediction
// verbatim. The grids are drawn from a seeded RNG so failures replay.
func TestCalibratedTheorem41Bound(t *testing.T) {
	rng := stats.NewRNG(0x7e51)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = rng.Float64()
		}
		alpha := rng.Float64() * 0.999 // [0, 1)
		degraded := map[topology.FiberID]float64{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				degraded[topology.FiberID(i)] = rng.Float64()
			}
		}
		out, err := Calibrated(pi, degraded, alpha)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, p := range out {
			if pNN, ok := degraded[topology.FiberID(i)]; ok {
				if p != pNN {
					t.Fatalf("trial %d: degraded fiber %d got %v, want p_NN %v", trial, i, p, pNN)
				}
				continue
			}
			want := (1 - alpha) * pi[i]
			if p != want {
				t.Fatalf("trial %d: fiber %d got %v, want (1-alpha)p_i = %v", trial, i, p, want)
			}
			if p > pi[i] {
				t.Fatalf("trial %d: calibrated %v exceeds static p_i %v (Theorem 4.1 bound)", trial, p, pi[i])
			}
			if p < 0 || p > 1 {
				t.Fatalf("trial %d: calibrated probability %v out of [0,1]", trial, p)
			}
		}
	}
}

// TestCalibratedMonotoneInPrediction checks Eqn. 1's shape property: raising
// only the NN prediction for a degraded fiber can never lower its calibrated
// failure probability, and leaves every other fiber untouched.
func TestCalibratedMonotoneInPrediction(t *testing.T) {
	rng := stats.NewRNG(0xca11b)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = rng.Float64()
		}
		alpha := rng.Float64() * 0.999
		f := topology.FiberID(rng.Intn(n))
		lo, hi := rng.Float64(), rng.Float64()
		if lo > hi {
			lo, hi = hi, lo
		}
		a, err := Calibrated(pi, map[topology.FiberID]float64{f: lo}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Calibrated(pi, map[topology.FiberID]float64{f: hi}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if a[f] > b[f] {
			t.Fatalf("trial %d: calibrated prob fell (%v -> %v) as p_NN rose (%v -> %v)",
				trial, a[f], b[f], lo, hi)
		}
		for i := range a {
			if topology.FiberID(i) != f && a[i] != b[i] {
				t.Fatalf("trial %d: fiber %d changed (%v -> %v) when only fiber %d's prediction moved",
					trial, i, a[i], b[i], f)
			}
		}
	}
}

// TestEnumerateMassMonotoneInPrediction lifts the monotonicity through the
// scenario enumeration: the total probability mass of scenarios that cut a
// degraded fiber is nondecreasing in that fiber's NN prediction. This is the
// property the optimizer actually consumes — a more pessimistic prediction
// must never make the planner treat the fiber as safer.
func TestEnumerateMassMonotoneInPrediction(t *testing.T) {
	rng := stats.NewRNG(0xe17)
	opts := Options{Cutoff: 0, MaxFailures: 2, MaxScenarios: 1 << 20} // exhaustive up to doubles
	cutMass := func(probs []float64, f topology.FiberID) float64 {
		set, err := Enumerate(probs, opts)
		if err != nil {
			t.Fatal(err)
		}
		var m float64
		for _, s := range set.Scenarios {
			for _, c := range s.Cut {
				if c == f {
					m += s.Prob
					break
				}
			}
		}
		return m
	}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = rng.Float64() * 0.2 // realistic per-epoch failure rates
		}
		alpha := rng.Float64() * 0.5
		f := topology.FiberID(rng.Intn(n))
		lo, hi := rng.Float64(), rng.Float64()
		if lo > hi {
			lo, hi = hi, lo
		}
		pLo, err := Calibrated(pi, map[topology.FiberID]float64{f: lo}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		pHi, err := Calibrated(pi, map[topology.FiberID]float64{f: hi}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		mLo, mHi := cutMass(pLo, f), cutMass(pHi, f)
		if mHi < mLo-1e-12 {
			t.Fatalf("trial %d: cut mass fell %v -> %v as p_NN rose %v -> %v",
				trial, mLo, mHi, lo, hi)
		}
	}
}

// TestEnumerateProbabilitiesConsistent checks the enumeration invariants on
// random grids: scenario probabilities match the Bernoulli product exactly,
// the empty scenario always survives in first position, and the covered
// mass never exceeds 1.
func TestEnumerateProbabilitiesConsistent(t *testing.T) {
	rng := stats.NewRNG(0x5ce)
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		set, err := Enumerate(probs, Options{Cutoff: 0, MaxFailures: 2, MaxScenarios: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if len(set.Scenarios[0].Cut) != 0 {
			t.Fatalf("trial %d: first scenario is not the empty scenario", trial)
		}
		if set.Covered > 1+1e-9 {
			t.Fatalf("trial %d: covered mass %v > 1", trial, set.Covered)
		}
		for si, s := range set.Scenarios {
			want := 1.0
			cut := s.CutSet()
			for i, p := range probs {
				if cut[topology.FiberID(i)] {
					want *= p
				} else {
					want *= 1 - p
				}
			}
			if math.Abs(s.Prob-want) > 1e-12 {
				t.Fatalf("trial %d: scenario %d prob %v, Bernoulli product %v", trial, si, s.Prob, want)
			}
		}
	}
}
