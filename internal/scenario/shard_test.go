package scenario

import (
	"reflect"
	"testing"

	"prete/internal/topology"
)

// TestEnumerateShardedEquivalence pins the sharding determinism contract:
// the merged set is bit-identical to the serial enumeration at every shard
// count and parallelism level, including shard counts exceeding the row
// count and inputs with zero-probability rows (which the doubles loop
// skips, making row weights uneven).
func TestEnumerateShardedEquivalence(t *testing.T) {
	opts := Options{Cutoff: 1e-10, MaxFailures: 2, MaxScenarios: 120}
	inputs := [][]float64{
		testProbs(16, 11),
		testProbs(5, 12),
		{0.02},                      // no pairs at all
		{},                          // empty network
		{0, 0.03, 0, 0.01, 0.04, 0}, // zero rows skipped by the doubles loop
	}
	for ii, probs := range inputs {
		want := mustEnumerate(t, probs, opts)
		for _, shards := range []int{1, 2, 3, 8, 64} {
			for _, p := range []int{1, 4} {
				got, err := EnumerateSharded(probs, opts, shards, p)
				if err != nil {
					t.Fatalf("input %d shards=%d p=%d: %v", ii, shards, p, err)
				}
				if !reflect.DeepEqual(got.Scenarios, want.Scenarios) {
					t.Fatalf("input %d shards=%d p=%d: scenarios differ from serial", ii, shards, p)
				}
				if got.Covered != want.Covered {
					t.Fatalf("input %d shards=%d p=%d: Covered %v != %v (not bit-identical)",
						ii, shards, p, got.Covered, want.Covered)
				}
			}
		}
	}
}

func TestEnumerateShardedInvalidProb(t *testing.T) {
	if _, err := EnumerateSharded([]float64{0.1, 1.5}, DefaultOptions(), 4, 2); err == nil {
		t.Fatalf("invalid probability accepted")
	}
}

// TestShardBounds checks the partition is a proper cover: contiguous,
// non-overlapping, spanning exactly [0, n-1).
func TestShardBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 30, 101} {
		for _, shards := range []int{1, 2, 5, 16, 200} {
			b := shardBounds(n, shards)
			if len(b) < 2 {
				t.Fatalf("n=%d shards=%d: too few bounds %v", n, shards, b)
			}
			if b[0] != 0 {
				t.Fatalf("n=%d shards=%d: bounds start at %d", n, shards, b[0])
			}
			rows := n - 1
			if rows < 0 {
				rows = 0
			}
			if b[len(b)-1] != rows {
				t.Fatalf("n=%d shards=%d: bounds end at %d, want %d", n, shards, b[len(b)-1], rows)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					t.Fatalf("n=%d shards=%d: bounds not monotone: %v", n, shards, b)
				}
			}
			if len(b)-1 > shards {
				t.Fatalf("n=%d shards=%d: produced %d shards", n, shards, len(b)-1)
			}
		}
	}
}

// TestEnumerateTriples pins the MaxFailures >= 3 extension: a storm-like
// input (two fibers calibrated to high failure probability) leaves
// percent-level mass in triple-failure scenarios, which MaxFailures: 3
// recovers while MaxFailures: 2 output stays exactly as before.
func TestEnumerateTriples(t *testing.T) {
	probs := []float64{0.81, 0.81, 0.02, 0.01, 0.015, 0.005}
	opts2 := Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 2000}
	opts3 := opts2
	opts3.MaxFailures = 3
	set2 := mustEnumerate(t, probs, opts2)
	set3 := mustEnumerate(t, probs, opts3)
	if set3.Covered <= set2.Covered {
		t.Fatalf("triples did not add mass: %v vs %v", set3.Covered, set2.Covered)
	}
	// With both storm fibers at 0.81, the doubles-only set misses the
	// {0, 1, other} triples whose mass is ~0.81^2 * sum of the rest.
	if set2.Covered > 0.99 || set3.Covered < 0.99 {
		t.Fatalf("mass split unexpected: doubles %v, triples %v", set2.Covered, set3.Covered)
	}
	var sawTriple bool
	for _, s := range set3.Scenarios {
		switch len(s.Cut) {
		case 0, 1, 2:
		case 3:
			sawTriple = true
			// Probability must be the exact direct product.
			want := 1.0
			cut := s.CutSet()
			for i, p := range probs {
				if cut[topology.FiberID(i)] {
					want *= p
				} else {
					want *= 1 - p
				}
			}
			if s.Prob != want {
				t.Fatalf("triple %v prob %v, want exact %v", s.Cut, s.Prob, want)
			}
			// Cut indices are strictly ascending.
			if !(s.Cut[0] < s.Cut[1] && s.Cut[1] < s.Cut[2]) {
				t.Fatalf("triple cut not ascending: %v", s.Cut)
			}
		default:
			t.Fatalf("scenario with %d cuts enumerated: %v", len(s.Cut), s.Cut)
		}
	}
	if !sawTriple {
		t.Fatal("no triple-failure scenario enumerated at MaxFailures 3")
	}
	// MaxFailures 4 is accepted but adds nothing beyond triples.
	opts4 := opts3
	opts4.MaxFailures = 4
	set4 := mustEnumerate(t, probs, opts4)
	if !reflect.DeepEqual(set4, set3) {
		t.Fatal("MaxFailures 4 diverged from 3: quadruples should be omitted")
	}
	// Sharded enumeration stays bit-identical with triples enabled.
	for _, shards := range []int{1, 2, 3, 8} {
		for _, p := range []int{1, 4} {
			got, err := EnumerateSharded(probs, opts3, shards, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, set3) {
				t.Fatalf("shards=%d p=%d: triple enumeration not bit-identical", shards, p)
			}
		}
	}
}
