package scenario

import (
	"reflect"
	"testing"
)

// TestEnumerateShardedEquivalence pins the sharding determinism contract:
// the merged set is bit-identical to the serial enumeration at every shard
// count and parallelism level, including shard counts exceeding the row
// count and inputs with zero-probability rows (which the doubles loop
// skips, making row weights uneven).
func TestEnumerateShardedEquivalence(t *testing.T) {
	opts := Options{Cutoff: 1e-10, MaxFailures: 2, MaxScenarios: 120}
	inputs := [][]float64{
		testProbs(16, 11),
		testProbs(5, 12),
		{0.02},                      // no pairs at all
		{},                          // empty network
		{0, 0.03, 0, 0.01, 0.04, 0}, // zero rows skipped by the doubles loop
	}
	for ii, probs := range inputs {
		want := mustEnumerate(t, probs, opts)
		for _, shards := range []int{1, 2, 3, 8, 64} {
			for _, p := range []int{1, 4} {
				got, err := EnumerateSharded(probs, opts, shards, p)
				if err != nil {
					t.Fatalf("input %d shards=%d p=%d: %v", ii, shards, p, err)
				}
				if !reflect.DeepEqual(got.Scenarios, want.Scenarios) {
					t.Fatalf("input %d shards=%d p=%d: scenarios differ from serial", ii, shards, p)
				}
				if got.Covered != want.Covered {
					t.Fatalf("input %d shards=%d p=%d: Covered %v != %v (not bit-identical)",
						ii, shards, p, got.Covered, want.Covered)
				}
			}
		}
	}
}

func TestEnumerateShardedInvalidProb(t *testing.T) {
	if _, err := EnumerateSharded([]float64{0.1, 1.5}, DefaultOptions(), 4, 2); err == nil {
		t.Fatalf("invalid probability accepted")
	}
}

// TestShardBounds checks the partition is a proper cover: contiguous,
// non-overlapping, spanning exactly [0, n-1).
func TestShardBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 30, 101} {
		for _, shards := range []int{1, 2, 5, 16, 200} {
			b := shardBounds(n, shards)
			if len(b) < 2 {
				t.Fatalf("n=%d shards=%d: too few bounds %v", n, shards, b)
			}
			if b[0] != 0 {
				t.Fatalf("n=%d shards=%d: bounds start at %d", n, shards, b[0])
			}
			rows := n - 1
			if rows < 0 {
				rows = 0
			}
			if b[len(b)-1] != rows {
				t.Fatalf("n=%d shards=%d: bounds end at %d, want %d", n, shards, b[len(b)-1], rows)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					t.Fatalf("n=%d shards=%d: bounds not monotone: %v", n, shards, b)
				}
			}
			if len(b)-1 > shards {
				t.Fatalf("n=%d shards=%d: produced %d shards", n, shards, len(b)-1)
			}
		}
	}
}
