package scenario

import (
	"math"
	"testing"
	"testing/quick"

	"prete/internal/stats"
	"prete/internal/topology"
)

func TestEnumerateSmall(t *testing.T) {
	// The §2.2 illustrative network: p = 0.005, 0.009, 0.001.
	probs := []float64{0.005, 0.009, 0.001}
	set, err := Enumerate(probs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// empty + 3 singles + 3 doubles = 7
	if len(set.Scenarios) != 7 {
		t.Fatalf("scenarios = %d, want 7", len(set.Scenarios))
	}
	// empty scenario first with probability prod(1-p)
	if len(set.Scenarios[0].Cut) != 0 {
		t.Fatal("first scenario should be the empty one")
	}
	want := (1 - 0.005) * (1 - 0.009) * (1 - 0.001)
	if math.Abs(set.Scenarios[0].Prob-want) > 1e-12 {
		t.Fatalf("empty prob = %v, want %v", set.Scenarios[0].Prob, want)
	}
	// single failure of fiber 1: p1 * (1-p0) * (1-p2)
	for _, s := range set.Scenarios {
		if len(s.Cut) == 1 && s.Cut[0] == 1 {
			want := 0.009 * (1 - 0.005) * (1 - 0.001)
			if math.Abs(s.Prob-want) > 1e-12 {
				t.Fatalf("single prob = %v, want %v", s.Prob, want)
			}
		}
	}
	if set.Covered <= 0.999 {
		t.Fatalf("covered mass = %v", set.Covered)
	}
}

func TestEnumerateCutoffAndCap(t *testing.T) {
	probs := make([]float64, 30)
	for i := range probs {
		probs[i] = 0.001
	}
	set, err := Enumerate(probs, Options{Cutoff: 1e-5, MaxFailures: 2, MaxScenarios: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Scenarios) != 10 {
		t.Fatalf("cap not applied: %d", len(set.Scenarios))
	}
	if len(set.Scenarios[0].Cut) != 0 {
		t.Fatal("empty scenario evicted by the cap")
	}
	// cutoff: doubles have prob ~1e-6 < 1e-5, so none survive
	for _, s := range set.Scenarios {
		if len(s.Cut) > 1 {
			t.Fatalf("double scenario with prob %v survived a 1e-5 cutoff", s.Prob)
		}
	}
}

func TestEnumerateValidation(t *testing.T) {
	if _, err := Enumerate([]float64{-0.1}, DefaultOptions()); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := Enumerate([]float64{1.5}, DefaultOptions()); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := Enumerate([]float64{math.NaN()}, DefaultOptions()); err == nil {
		t.Error("NaN accepted")
	}
}

func TestEnumerateCertainFailure(t *testing.T) {
	// p = 1 makes every scenario without that fiber impossible, and the
	// scenarios WITH it must carry the full probability mass — PreTE's
	// evaluation conditions on certain cuts, so this must not degenerate.
	set, err := Enumerate([]float64{1, 0.01}, Options{Cutoff: 0, MaxFailures: 2, MaxScenarios: 100})
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, s := range set.Scenarios {
		has := false
		for _, f := range s.Cut {
			if f == 0 {
				has = true
			}
		}
		if !has && s.Prob > 0 {
			t.Fatalf("scenario %v has positive probability despite fiber 0 being certainly cut", s)
		}
		if has {
			mass += s.Prob
		}
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("scenarios containing the certain cut carry mass %v, want 1", mass)
	}
	// {0}: 1 * (1-0.01) = 0.99; {0,1}: 1 * 0.01
	if math.Abs(set.Covered-1) > 1e-12 {
		t.Fatalf("covered = %v, want 1", set.Covered)
	}
}

func TestScenarioKeyAndCutSet(t *testing.T) {
	a := Scenario{Cut: []topology.FiberID{1, 2}}
	b := Scenario{Cut: []topology.FiberID{1, 2}}
	c := Scenario{Cut: []topology.FiberID{1, 3}}
	if a.Key() != b.Key() {
		t.Error("equal scenarios have different keys")
	}
	if a.Key() == c.Key() {
		t.Error("different scenarios share a key")
	}
	cs := a.CutSet()
	if !cs[1] || !cs[2] || cs[3] {
		t.Errorf("cut set = %v", cs)
	}
}

func TestCalibrated(t *testing.T) {
	pi := []float64{0.01, 0.02, 0.03}
	degraded := map[topology.FiberID]float64{1: 0.45}
	out, err := Calibrated(pi, degraded, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4.1: non-degraded fibers drop to (1-alpha) p_i.
	if math.Abs(out[0]-0.75*0.01) > 1e-12 || math.Abs(out[2]-0.75*0.03) > 1e-12 {
		t.Fatalf("non-degraded calibration wrong: %v", out)
	}
	// Degraded fiber uses the NN output.
	if out[1] != 0.45 {
		t.Fatalf("degraded fiber p = %v, want 0.45", out[1])
	}
}

func TestCalibratedDegenerateAlpha(t *testing.T) {
	pi := []float64{0.01}
	// alpha = 0: degenerates to the static model (PreTE -> TeaVar, §4.1.2).
	out, err := Calibrated(pi, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.01 {
		t.Fatalf("alpha=0 should leave p_i unchanged: %v", out[0])
	}
}

func TestCalibratedValidation(t *testing.T) {
	pi := []float64{0.01}
	if _, err := Calibrated(pi, nil, -0.1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := Calibrated(pi, nil, 1); err == nil {
		t.Error("alpha = 1 accepted")
	}
	if _, err := Calibrated(pi, map[topology.FiberID]float64{5: 0.4}, 0.25); err == nil {
		t.Error("out-of-range fiber accepted")
	}
	if _, err := Calibrated(pi, map[topology.FiberID]float64{0: 1.5}, 0.25); err == nil {
		t.Error("invalid pNN accepted")
	}
	if _, err := Calibrated([]float64{2}, nil, 0.25); err == nil {
		t.Error("invalid pi accepted")
	}
}

func TestStaticCopies(t *testing.T) {
	pi := []float64{0.1, 0.2}
	out := Static(pi)
	out[0] = 99
	if pi[0] == 99 {
		t.Fatal("Static returned an alias")
	}
}

// Property: scenario probabilities are nonnegative, sum below 1, and
// deduplicated.
func TestQuickEnumerateSane(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%20) + 1
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64() * 0.1
		}
		set, err := Enumerate(probs, DefaultOptions())
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		var sum float64
		for _, s := range set.Scenarios {
			if s.Prob < 0 {
				return false
			}
			if seen[s.Key()] {
				return false
			}
			seen[s.Key()] = true
			sum += s.Prob
		}
		return sum <= 1+1e-9 && math.Abs(sum-set.Covered) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: calibration with degradations only ever increases a degraded
// fiber's probability relative to (1-alpha) p_i when pNN > p_i.
func TestQuickCalibrationOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		pi := []float64{rng.Float64() * 0.01}
		pNN := 0.3 + rng.Float64()*0.6
		out, err := Calibrated(pi, map[topology.FiberID]float64{0: pNN}, 0.25)
		if err != nil {
			return false
		}
		base, err := Calibrated(pi, nil, 0.25)
		if err != nil {
			return false
		}
		return out[0] > base[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
