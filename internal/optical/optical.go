// Package optical simulates the physical fiber layer that PreTE's telemetry
// observes: per-second transmission-loss series for each fiber, the
// healthy -> degraded -> cut state machine underlying the paper's §2/§3
// measurements, and the variable optical attenuator (VOA) used to script
// the §5 testbed scenario.
//
// Loss conventions follow OpTel [28] as the paper does:
//   - healthy: baseline attenuation (~0.2 dB/km plus connector losses) with
//     small measurement noise;
//   - degraded: an excess loss of 3-10 dB over baseline — the signal still
//     decodes error-free but SNR visibly drops;
//   - cut: an excess loss of >= 10 dB or total loss of signal.
package optical

import (
	"fmt"
	"math"

	"prete/internal/stats"
)

// State is a fiber's physical condition.
type State int

// Fiber states.
const (
	Healthy State = iota
	Degraded
	Cut
)

// String names the fiber state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	default:
		return "cut"
	}
}

// Thresholds (dB of excess loss over the healthy baseline) separating the
// states, per OpTel's definitions used in §2.1/§3.1.
const (
	DegradeThresholdDB = 3.0
	CutThresholdDB     = 10.0
	// TxPowerDBm is the constant launch power; RxPower = Tx - loss.
	TxPowerDBm = 3.0
	// BaselinePerKmDB is the healthy attenuation per km of fiber.
	BaselinePerKmDB = 0.2
	// NoiseSigmaDB is the 1-sigma measurement noise on per-second samples.
	NoiseSigmaDB = 0.05
)

// Classify maps an excess loss over baseline to a state.
func Classify(excessDB float64) State {
	switch {
	case excessDB >= CutThresholdDB:
		return Cut
	case excessDB >= DegradeThresholdDB:
		return Degraded
	default:
		return Healthy
	}
}

// DegradationProfile shapes one degradation episode. The four fields map
// one-to-one onto the paper's critical features (§3.2): the onset time is
// the *time* feature, Degree the step size, GradientDB the slope magnitude
// between adjacent seconds, and fluctuations the count of > 0.01 dB swings.
type DegradationProfile struct {
	DegreeDB      float64 // loss step when entering the degraded state (3-10 dB)
	GradientDB    float64 // mean |loss change| per second while degraded
	FluctAmpDB    float64 // amplitude of superimposed fluctuation
	FluctPeriodS  float64 // period of the fluctuation, seconds
	DurationS     int     // length of the degraded interval
	LeadsToCut    bool    // whether the episode ends in a fiber cut
	CutDelayS     int     // seconds from degradation onset to the cut (if any)
	RepairS       int     // cut repair time, seconds
	OnsetUnixS    int64   // absolute onset time (drives the time-of-day feature)
	MissingSample float64 // probability a telemetry sample is lost (interpolated)
}

// Validate checks the profile for physical plausibility.
func (p DegradationProfile) Validate() error {
	if p.DegreeDB < DegradeThresholdDB || p.DegreeDB >= CutThresholdDB {
		return fmt.Errorf("optical: degradation degree %.2f dB outside [%v, %v)", p.DegreeDB, DegradeThresholdDB, CutThresholdDB)
	}
	if p.DurationS <= 0 {
		return fmt.Errorf("optical: non-positive degradation duration %d", p.DurationS)
	}
	if p.LeadsToCut && p.CutDelayS <= 0 {
		return fmt.Errorf("optical: cut with non-positive delay %d", p.CutDelayS)
	}
	return nil
}

// Sample is one per-second telemetry observation of a fiber.
type Sample struct {
	UnixS    int64
	TxDBm    float64
	RxDBm    float64
	LossDB   float64 // Tx - Rx
	ExcessDB float64 // loss over the healthy baseline
	State    State
	Missing  bool // true when the collector lost this sample (pre-interpolation)
}

// FiberSim synthesizes loss series for one fiber.
type FiberSim struct {
	LengthKm float64
	rng      *stats.RNG
	baseline float64
}

// NewFiberSim returns a simulator for a fiber of the given span length.
func NewFiberSim(lengthKm float64, rng *stats.RNG) *FiberSim {
	return &FiberSim{
		LengthKm: lengthKm,
		rng:      rng,
		baseline: lengthKm*BaselinePerKmDB + 2.0, // + connector/splice losses
	}
}

// BaselineDB returns the healthy-state loss.
func (f *FiberSim) BaselineDB() float64 { return f.baseline }

// HealthySeries generates n seconds of healthy samples starting at t0.
func (f *FiberSim) HealthySeries(t0 int64, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = f.sample(t0+int64(i), 0, false)
	}
	return out
}

// EpisodeSeries synthesizes the full loss series for one degradation
// episode: a healthy lead-in, the degraded interval shaped by the profile,
// and — when LeadsToCut — the cut plateau until repair. leadInS seconds of
// healthy data precede the onset.
func (f *FiberSim) EpisodeSeries(p DegradationProfile, leadInS int) ([]Sample, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []Sample
	t := p.OnsetUnixS - int64(leadInS)
	for i := 0; i < leadInS; i++ {
		out = append(out, f.sample(t, 0, p.MissingSample > 0 && f.rng.Float64() < p.MissingSample))
		t++
	}
	degradedEnd := p.DurationS
	cutAt := -1
	if p.LeadsToCut {
		cutAt = p.CutDelayS
		if cutAt < degradedEnd {
			degradedEnd = cutAt
		}
	}
	// Degraded interval: step to DegreeDB, then drift with GradientDB and
	// oscillate with the fluctuation component.
	level := p.DegreeDB
	for i := 0; i < degradedEnd; i++ {
		excess := level
		if p.FluctAmpDB > 0 && p.FluctPeriodS > 0 {
			excess += p.FluctAmpDB * math.Sin(2*math.Pi*float64(i)/p.FluctPeriodS)
		}
		// keep the excess inside the degraded band
		if excess < DegradeThresholdDB {
			excess = DegradeThresholdDB + 0.1
		}
		if excess >= CutThresholdDB {
			excess = CutThresholdDB - 0.1
		}
		out = append(out, f.sample(t, excess, p.MissingSample > 0 && f.rng.Float64() < p.MissingSample))
		t++
		// random-walk drift with the profile's gradient magnitude
		if f.rng.Bernoulli(0.5) {
			level += p.GradientDB
		} else {
			level -= p.GradientDB
		}
		if level < DegradeThresholdDB+0.2 {
			level = DegradeThresholdDB + 0.2
		}
		if level > CutThresholdDB-0.2 {
			level = CutThresholdDB - 0.2
		}
	}
	if p.LeadsToCut {
		// If the cut lands after the degraded interval recovered, emit the
		// intervening healthy gap.
		for i := degradedEnd; i < p.CutDelayS; i++ {
			out = append(out, f.sample(t, 0, false))
			t++
		}
		repair := p.RepairS
		if repair <= 0 {
			repair = 60
		}
		for i := 0; i < repair; i++ {
			out = append(out, f.sample(t, CutThresholdDB+25, false))
			t++
		}
	}
	// trailing recovery second
	out = append(out, f.sample(t, 0, false))
	return out, nil
}

// sample produces one observation with measurement noise.
func (f *FiberSim) sample(t int64, excessDB float64, missing bool) Sample {
	noise := f.rng.NormFloat64() * NoiseSigmaDB
	loss := f.baseline + excessDB + noise
	return Sample{
		UnixS:    t,
		TxDBm:    TxPowerDBm,
		RxDBm:    TxPowerDBm - loss,
		LossDB:   loss,
		ExcessDB: loss - f.baseline,
		State:    Classify(excessDB),
		Missing:  missing,
	}
}
