package optical

import (
	"fmt"
	"math"
	"time"
)

// FluctuationFloorDB filters measurement noise out of the fluctuation
// count: "we only consider the fluctuations larger than 0.01 dB between the
// adjacent values" would count pure noise at a per-second sampling sigma of
// 0.05 dB, so like the paper we count swings that clear the noise floor.
const FluctuationFloorDB = 3 * NoiseSigmaDB

// Features are the critical degradation features §3.2 identifies plus the
// intrinsic fiber features Appendix A.2 feeds into the NN's second stage.
type Features struct {
	// Critical features of the degradation episode.
	HourOfDay   int     // the *time* feature: 0-23 onset hour
	DegreeDB    float64 // mean excess loss while degraded
	GradientDB  float64 // mean |adjacent delta| during the episode
	Fluctuation float64 // count of |adjacent delta| > floor, per observation

	// Intrinsic fiber features.
	FiberID  int
	Region   string
	Vendor   string
	LengthKm float64

	// Extended optical indicators (§8 future work): polarization mode
	// dispersion and chromatic dispersion. Zero when the telemetry system
	// does not collect them; the trace generator can synthesize them and
	// the NN consumes them behind FeatureMask.Extended.
	PMDps  float64 // polarization mode dispersion, ps
	CDpsNm float64 // chromatic dispersion deviation, ps/nm
}

// ExtractFeatures computes Features from a degraded-sample window. The
// window should contain the samples classified Degraded (missing samples
// interpolated beforehand by the telemetry layer).
func ExtractFeatures(window []Sample, fiberID int, region, vendor string, lengthKm float64) (Features, error) {
	if len(window) == 0 {
		return Features{}, fmt.Errorf("optical: empty degradation window")
	}
	var sum float64
	for _, s := range window {
		sum += s.ExcessDB
	}
	var gradSum float64
	var flucts int
	for i := 1; i < len(window); i++ {
		d := math.Abs(window[i].ExcessDB - window[i-1].ExcessDB)
		gradSum += d
		if d > FluctuationFloorDB {
			flucts++
		}
	}
	grad := 0.0
	fluct := 0.0
	if len(window) > 1 {
		grad = gradSum / float64(len(window)-1)
		fluct = float64(flucts) / float64(len(window)-1)
	}
	onset := time.Unix(window[0].UnixS, 0).UTC()
	return Features{
		HourOfDay:   onset.Hour(),
		DegreeDB:    sum / float64(len(window)),
		GradientDB:  grad,
		Fluctuation: fluct,
		FiberID:     fiberID,
		Region:      region,
		Vendor:      vendor,
		LengthKm:    lengthKm,
	}, nil
}
