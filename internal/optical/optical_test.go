package optical

import (
	"math"
	"testing"
	"testing/quick"

	"prete/internal/stats"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		excess float64
		want   State
	}{
		{0, Healthy}, {2.9, Healthy}, {3, Degraded}, {9.9, Degraded},
		{10, Cut}, {40, Cut}, {-1, Healthy},
	}
	for _, c := range cases {
		if got := Classify(c.excess); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.excess, got, c.want)
		}
	}
}

func TestHealthySeries(t *testing.T) {
	f := NewFiberSim(100, stats.NewRNG(1))
	s := f.HealthySeries(1000, 500)
	if len(s) != 500 {
		t.Fatalf("len = %d", len(s))
	}
	for i, smp := range s {
		if smp.State != Healthy {
			t.Fatalf("sample %d state %v", i, smp.State)
		}
		if math.Abs(smp.ExcessDB) > 5*NoiseSigmaDB {
			t.Fatalf("sample %d excess %v beyond noise", i, smp.ExcessDB)
		}
		if math.Abs(smp.LossDB-(smp.TxDBm-smp.RxDBm)) > 1e-9 {
			t.Fatalf("loss != Tx - Rx at %d", i)
		}
		if smp.UnixS != 1000+int64(i) {
			t.Fatalf("timestamp %d at index %d", smp.UnixS, i)
		}
	}
}

func TestBaselineScalesWithLength(t *testing.T) {
	short := NewFiberSim(100, stats.NewRNG(1))
	long := NewFiberSim(1000, stats.NewRNG(1))
	if short.BaselineDB() >= long.BaselineDB() {
		t.Fatal("longer fiber should have larger baseline loss")
	}
}

func TestEpisodeSeriesDegradationOnly(t *testing.T) {
	f := NewFiberSim(200, stats.NewRNG(2))
	p := DegradationProfile{
		DegreeDB: 6, GradientDB: 0.2, FluctAmpDB: 0.5, FluctPeriodS: 10,
		DurationS: 60, OnsetUnixS: 5000,
	}
	s, err := f.EpisodeSeries(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	var healthy, degraded, cut int
	for _, smp := range s {
		switch smp.State {
		case Healthy:
			healthy++
		case Degraded:
			degraded++
		case Cut:
			cut++
		}
	}
	if degraded != 60 {
		t.Errorf("degraded seconds = %d, want 60", degraded)
	}
	if cut != 0 {
		t.Errorf("cut seconds = %d, want 0", cut)
	}
	if healthy < 30 {
		t.Errorf("healthy seconds = %d, want >= 30 lead-in", healthy)
	}
}

func TestEpisodeSeriesWithCut(t *testing.T) {
	f := NewFiberSim(200, stats.NewRNG(3))
	p := DegradationProfile{
		DegreeDB: 7, GradientDB: 0.3, DurationS: 45,
		LeadsToCut: true, CutDelayS: 45, RepairS: 120, OnsetUnixS: 0,
	}
	s, err := f.EpisodeSeries(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	var cutSeconds int
	lastState := Healthy
	sawDegradedBeforeCut := false
	for _, smp := range s {
		if smp.State == Cut {
			if lastState == Degraded {
				sawDegradedBeforeCut = true
			}
			cutSeconds++
		}
		if smp.State != lastState {
			lastState = smp.State
		}
	}
	if cutSeconds != 120 {
		t.Errorf("cut seconds = %d, want 120 (repair time)", cutSeconds)
	}
	if !sawDegradedBeforeCut {
		t.Error("cut was not preceded by a degraded state (the §3.1 signature)")
	}
	if s[len(s)-1].State != Healthy {
		t.Error("series should end repaired")
	}
}

func TestEpisodeValidation(t *testing.T) {
	f := NewFiberSim(100, stats.NewRNG(4))
	bad := []DegradationProfile{
		{DegreeDB: 1, DurationS: 10},                                 // below degrade threshold
		{DegreeDB: 15, DurationS: 10},                                // at cut level
		{DegreeDB: 5, DurationS: 0},                                  // no duration
		{DegreeDB: 5, DurationS: 10, LeadsToCut: true, CutDelayS: 0}, // cut with no delay
	}
	for i, p := range bad {
		if _, err := f.EpisodeSeries(p, 0); err == nil {
			t.Errorf("profile %d accepted: %+v", i, p)
		}
	}
}

func TestMissingSamples(t *testing.T) {
	f := NewFiberSim(100, stats.NewRNG(5))
	p := DegradationProfile{
		DegreeDB: 5, GradientDB: 0.1, DurationS: 400,
		OnsetUnixS: 0, MissingSample: 0.2,
	}
	s, err := f.EpisodeSeries(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for _, smp := range s {
		if smp.Missing {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("MissingSample=0.2 produced no gaps")
	}
	if frac := float64(missing) / float64(len(s)); frac > 0.35 {
		t.Fatalf("missing fraction %v implausibly high", frac)
	}
}

func TestExtractFeatures(t *testing.T) {
	f := NewFiberSim(300, stats.NewRNG(6))
	p := DegradationProfile{
		DegreeDB: 8, GradientDB: 0.4, FluctAmpDB: 1.0, FluctPeriodS: 8,
		DurationS: 120, OnsetUnixS: 43200, // 12:00 UTC
	}
	s, err := f.EpisodeSeries(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var window []Sample
	for _, smp := range s {
		if smp.State == Degraded {
			window = append(window, smp)
		}
	}
	feats, err := ExtractFeatures(window, 7, "EU", "vendorA", 300)
	if err != nil {
		t.Fatal(err)
	}
	if feats.HourOfDay != 12 {
		t.Errorf("hour = %d, want 12", feats.HourOfDay)
	}
	if feats.DegreeDB < 4 || feats.DegreeDB > 10 {
		t.Errorf("degree = %v, want within the degraded band", feats.DegreeDB)
	}
	if feats.GradientDB <= 0 {
		t.Errorf("gradient = %v, want > 0", feats.GradientDB)
	}
	if feats.Fluctuation <= 0 {
		t.Errorf("fluctuation = %v, want > 0 for a strongly oscillating profile", feats.Fluctuation)
	}
	if feats.FiberID != 7 || feats.Region != "EU" || feats.LengthKm != 300 {
		t.Errorf("intrinsic features lost: %+v", feats)
	}
}

func TestExtractFeaturesEmpty(t *testing.T) {
	if _, err := ExtractFeatures(nil, 0, "", "", 0); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestFeatureSeparation(t *testing.T) {
	// A calm profile must yield lower gradient/fluctuation features than a
	// turbulent one — this separation is what the NN learns from.
	f := NewFiberSim(100, stats.NewRNG(7))
	calm := DegradationProfile{DegreeDB: 4, GradientDB: 0.02, DurationS: 200, OnsetUnixS: 0}
	wild := DegradationProfile{DegreeDB: 9, GradientDB: 0.8, FluctAmpDB: 0.6, FluctPeriodS: 4, DurationS: 200, OnsetUnixS: 0}
	extract := func(p DegradationProfile) Features {
		s, err := f.EpisodeSeries(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		var w []Sample
		for _, smp := range s {
			if smp.State == Degraded {
				w = append(w, smp)
			}
		}
		feats, err := ExtractFeatures(w, 0, "r", "v", 100)
		if err != nil {
			t.Fatal(err)
		}
		return feats
	}
	fc, fw := extract(calm), extract(wild)
	if fc.GradientDB >= fw.GradientDB {
		t.Errorf("gradient separation lost: calm %v vs wild %v", fc.GradientDB, fw.GradientDB)
	}
	if fc.DegreeDB >= fw.DegreeDB {
		t.Errorf("degree separation lost: calm %v vs wild %v", fc.DegreeDB, fw.DegreeDB)
	}
}

func TestVOA(t *testing.T) {
	var v VOA
	if err := v.SetAttenuationDB(6); err != nil {
		t.Fatal(err)
	}
	if got := v.AttenuationDB(); got != 6 {
		t.Fatalf("attenuation = %v", got)
	}
	if err := v.SetAttenuationDB(-1); err == nil {
		t.Fatal("negative attenuation accepted")
	}
}

func TestTestbedScript(t *testing.T) {
	s := TestbedScript()
	cases := []struct {
		t    int
		want State
	}{
		{0, Healthy}, {64, Healthy}, {65, Degraded}, {109, Degraded},
		{110, Cut}, {399, Cut}, {400, Healthy},
	}
	for _, c := range cases {
		if got := Classify(s.At(c.t)); got != c.want {
			t.Errorf("state at t=%d is %v, want %v", c.t, got, c.want)
		}
	}
}

func TestScriptReplay(t *testing.T) {
	f := NewFiberSim(100, stats.NewRNG(8))
	s := TestbedScript().Replay(f, 0)
	if len(s) != 401 {
		t.Fatalf("replay length = %d", len(s))
	}
	if s[70].State != Degraded {
		t.Errorf("t=70 state %v, want degraded", s[70].State)
	}
	if s[200].State != Cut {
		t.Errorf("t=200 state %v, want cut", s[200].State)
	}
}

// Property: episode series timestamps are strictly increasing by 1 second.
func TestQuickEpisodeTimestamps(t *testing.T) {
	f := func(seed uint64, degRaw, durRaw uint8) bool {
		fs := NewFiberSim(100, stats.NewRNG(seed))
		p := DegradationProfile{
			DegreeDB:   3.5 + float64(degRaw%60)/10, // 3.5 - 9.4
			DurationS:  int(durRaw%100) + 1,
			GradientDB: 0.1,
			OnsetUnixS: 1000,
		}
		s, err := fs.EpisodeSeries(p, 5)
		if err != nil {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i].UnixS != s[i-1].UnixS+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
