package optical

import (
	"fmt"
	"sort"
	"sync"
)

// VOA models the variable optical attenuator the §5 testbed inserts between
// sites s1 and s2 "to allow us to manually adjust the power of the optical
// signal passing through it". Attenuation set on the VOA appears as excess
// loss on the fiber it is spliced into.
type VOA struct {
	mu    sync.Mutex
	atten float64
}

// SetAttenuationDB sets the inserted loss; negative values are rejected.
func (v *VOA) SetAttenuationDB(db float64) error {
	if db < 0 {
		return fmt.Errorf("optical: negative VOA attenuation %v", db)
	}
	v.mu.Lock()
	v.atten = db
	v.mu.Unlock()
	return nil
}

// AttenuationDB returns the currently inserted loss.
func (v *VOA) AttenuationDB() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.atten
}

// ScriptStep is one segment of a VOA replay script.
type ScriptStep struct {
	AtS      int     // seconds from script start
	ExcessDB float64 // attenuation to insert from this instant
}

// Script is a time-ordered attenuation schedule.
type Script []ScriptStep

// TestbedScript reproduces the §5 scenario: healthy for 0-65 s, degraded
// (6 dB) for 65-110 s, cut (30 dB) for 110-400 s, then repaired.
func TestbedScript() Script {
	return Script{
		{AtS: 0, ExcessDB: 0},
		{AtS: 65, ExcessDB: 6},
		{AtS: 110, ExcessDB: 30},
		{AtS: 400, ExcessDB: 0},
	}
}

// At returns the attenuation in force at second t.
func (s Script) At(t int) float64 {
	i := sort.Search(len(s), func(i int) bool { return s[i].AtS > t })
	if i == 0 {
		return 0
	}
	return s[i-1].ExcessDB
}

// Replay generates the fiber's loss series under the script, sampling once
// per second for the script's whole horizon (the last step's time).
func (s Script) Replay(f *FiberSim, t0 int64) []Sample {
	if len(s) == 0 {
		return nil
	}
	horizon := s[len(s)-1].AtS + 1
	out := make([]Sample, horizon)
	for t := 0; t < horizon; t++ {
		out[t] = f.sample(t0+int64(t), s.At(t), false)
	}
	return out
}
