package core

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"prete/internal/te"
)

// checkFeasible asserts the allocation respects every link capacity.
func checkFeasible(t *testing.T, in *te.Input, alloc te.Allocation) {
	t.Helper()
	if err := te.CheckCapacity(in.Net, &te.Plan{Alloc: alloc, Tunnels: in.Tunnels}); err != nil {
		t.Fatal(err)
	}
}

// TestAnytimeMonotonicity is the determinism-and-monotonicity table: on real
// topologies, equal deterministic budgets must reproduce bit-identical
// results at every Parallelism setting, and a larger budget must never yield
// a worse objective — each budget executes a strict prefix of the same
// iteration sequence, and the incumbent bound only tightens.
func TestAnytimeMonotonicity(t *testing.T) {
	budgets := []int64{1, 3, 10, 50, 200, 1000, 5000, 20000, 0} // 0 = unlimited
	topos := []string{"B4"}
	if !testing.Short() {
		topos = append(topos, "IBM")
	}
	for _, topo := range topos {
		in := realInput(t, topo, 7)
		type outcome struct {
			phi       float64
			alloc     te.Allocation
			truncated bool
			fallback  bool
			work      int64
		}
		var prev *outcome
		for _, units := range budgets {
			var ref *outcome
			for _, par := range []int{1, 2, 8, 0} {
				o := DefaultOptimizer()
				o.Parallelism = par
				o.BudgetUnits = units
				res, err := o.Solve(in)
				if err != nil {
					t.Fatalf("%s budget=%d par=%d: %v", topo, units, par, err)
				}
				checkFeasible(t, in, res.Alloc)
				got := &outcome{
					phi: res.Phi, alloc: res.Alloc,
					truncated: res.Truncated, fallback: res.Fallback,
					work: res.WorkUnits,
				}
				if ref == nil {
					ref = got
					continue
				}
				if math.Float64bits(got.phi) != math.Float64bits(ref.phi) {
					t.Fatalf("%s budget=%d par=%d: phi %v != %v at par=1", topo, units, par, got.phi, ref.phi)
				}
				if got.truncated != ref.truncated || got.fallback != ref.fallback || got.work != ref.work {
					t.Fatalf("%s budget=%d par=%d: flags/work (%v,%v,%d) != (%v,%v,%d)",
						topo, units, par, got.truncated, got.fallback, got.work,
						ref.truncated, ref.fallback, ref.work)
				}
				if !reflect.DeepEqual(got.alloc, ref.alloc) {
					t.Fatalf("%s budget=%d par=%d: allocation diverges from serial", topo, units, par)
				}
			}
			// budgets are sorted ascending with unlimited (0) last, so each
			// row's phi must be no worse than the previous row's.
			if prev != nil && ref.phi > prev.phi+1e-12 {
				t.Fatalf("%s budget=%d: phi %v worse than smaller budget's %v", topo, units, ref.phi, prev.phi)
			}
			prev = ref
		}
		if prev.truncated || prev.fallback {
			t.Fatalf("%s: unlimited solve still reported truncated=%v fallback=%v", topo, prev.truncated, prev.fallback)
		}
	}
}

// TestAnytimeExhaustedBudgetB4 pins the acceptance criterion: with an
// exhausted budget on B4, Solve returns a feasible plan flagged as a
// truncated incumbent or heuristic fallback — never an error, never an
// infeasible plan.
func TestAnytimeExhaustedBudgetB4(t *testing.T) {
	in := realInput(t, "B4", 7)
	unlimited := DefaultOptimizer()
	ref, err := unlimited.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if ref.FirstIncumbentUnits <= 0 || ref.FirstIncumbentUnits >= ref.WorkUnits {
		t.Fatalf("reference solve: first incumbent at %d of %d units", ref.FirstIncumbentUnits, ref.WorkUnits)
	}
	for _, units := range []int64{1, 2, 5, 25, 150, ref.FirstIncumbentUnits, ref.WorkUnits - 1} {
		o := DefaultOptimizer()
		o.BudgetUnits = units
		res, err := o.Solve(in)
		if err != nil {
			t.Fatalf("budget=%d: %v", units, err)
		}
		if !res.Truncated {
			t.Fatalf("budget=%d finished a full B4 solve; tighten the test budget (work=%d)", units, res.WorkUnits)
		}
		if res.Fallback && res.FirstIncumbentUnits != 0 {
			t.Fatalf("budget=%d: fallback despite an incumbent at %d units", units, res.FirstIncumbentUnits)
		}
		if len(res.Alloc) == 0 {
			t.Fatalf("budget=%d: empty allocation", units)
		}
		checkFeasible(t, in, res.Alloc)
	}
	// Sanity: a budget at exactly the first-incumbent point must land on the
	// truncated-incumbent rung, not the heuristic fallback.
	o := DefaultOptimizer()
	o.BudgetUnits = ref.FirstIncumbentUnits
	res, _ := o.Solve(in)
	if res.Fallback {
		t.Fatalf("%d-unit budget still on the heuristic rung", ref.FirstIncumbentUnits)
	}
}

// TestHeuristicPlanFeasible: the fallback rung must always produce a
// capacity-feasible plan with a sane phi, including on degenerate inputs.
func TestHeuristicPlanFeasible(t *testing.T) {
	for _, topo := range []string{"B4", "IBM"} {
		in := realInput(t, topo, 3)
		alloc, phi := HeuristicPlan(in)
		if phi < 0 || phi > 1 {
			t.Fatalf("%s: heuristic phi %v outside [0,1]", topo, phi)
		}
		checkFeasible(t, in, alloc)
	}
}

// TestSolveBudgetWallClock: an already-expired wall-clock deadline must
// still yield a feasible fallback plan, not an error.
func TestSolveBudgetWallClock(t *testing.T) {
	in := realInput(t, "B4", 7)
	o := DefaultOptimizer()
	o.SolveTimeout = time.Nanosecond
	res, err := o.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !res.Fallback {
		t.Fatalf("1ns deadline: truncated=%v fallback=%v", res.Truncated, res.Fallback)
	}
	checkFeasible(t, in, res.Alloc)
}

// TestSolveExactTruncationTyped pins the satellite: SolveExact under a
// starvation node limit surfaces either a feasible Result with Truncated set
// or a typed *Truncation — never a generic error, never a silent "optimal".
func TestSolveExactTruncationTyped(t *testing.T) {
	in := triangleInput(t, 8, []float64{0.01, 0.02, 0.015}, 0.9)
	res, err := SolveExact(in, 1)
	if err != nil {
		var tr *Truncation
		if !errors.As(err, &tr) {
			t.Fatalf("node-starved SolveExact returned untyped error: %v", err)
		}
		if tr.Stage != "exact" {
			t.Fatalf("Truncation.Stage = %q", tr.Stage)
		}
		return
	}
	if !res.Truncated {
		full, err := SolveExact(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Phi-full.Phi) > 1e-9 {
			t.Fatalf("node-starved exact claims optimal phi %v, true optimum %v", res.Phi, full.Phi)
		}
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in      string
		units   int64
		timeout time.Duration
		wantErr bool
	}{
		{"", 0, 0, false},
		{"0", 0, 0, false},
		{"5000", 5000, 0, false},
		{"5000:150ms", 5000, 150 * time.Millisecond, false},
		{":2s", 0, 2 * time.Second, false},
		{" 250 ", 250, 0, false},
		{"-1", 0, 0, true},
		{"abc", 0, 0, true},
		{"10:xyz", 0, 0, true},
		{"10:-1s", 0, 0, true},
	}
	for _, c := range cases {
		units, timeout, err := ParseBudget(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("ParseBudget(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
		}
		if err == nil && (units != c.units || timeout != c.timeout) {
			t.Fatalf("ParseBudget(%q) = %d, %v; want %d, %v", c.in, units, timeout, c.units, c.timeout)
		}
	}
}
