package core

import (
	"errors"
	"testing"

	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/te"
	"prete/internal/topology"
)

// fuzzReader decodes a fuzz byte stream into network building blocks; every
// decoder is total (an exhausted stream yields zeros), so any input maps to a
// well-formed problem instance.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// fuzzInput builds a small connected network — a ring backbone guaranteeing
// every flow a path, plus random chords — with random capacities, failure
// probabilities, demands, and beta.
func fuzzInput(t *testing.T, r *fuzzReader) *te.Input {
	t.Helper()
	nNodes := 2 + int(r.byte())%4
	nodes := make([]topology.Node, nNodes)
	for i := range nodes {
		nodes[i] = topology.Node{ID: topology.NodeID(i), Name: "n"}
	}
	type edge struct{ a, b int }
	edges := make([]edge, 0, nNodes+3)
	if nNodes == 2 {
		edges = append(edges, edge{0, 1})
	} else {
		for i := 0; i < nNodes; i++ {
			edges = append(edges, edge{i, (i + 1) % nNodes})
		}
	}
	for extra := int(r.byte()) % 3; extra > 0; extra-- {
		a := int(r.byte()) % nNodes
		b := int(r.byte()) % nNodes
		if a != b {
			edges = append(edges, edge{a, b})
		}
	}
	fibers := make([]topology.Fiber, len(edges))
	var links []topology.Link
	for i, e := range edges {
		fibers[i] = topology.Fiber{
			ID: topology.FiberID(i),
			A:  topology.NodeID(e.a), B: topology.NodeID(e.b),
			LengthKm: 1 + float64(r.byte()),
		}
		capacity := 0.25 + float64(r.byte())/16 // (0.25, 16.25)
		for _, dir := range [2][2]int{{e.a, e.b}, {e.b, e.a}} {
			links = append(links, topology.Link{
				ID:  topology.LinkID(len(links)),
				Src: topology.NodeID(dir[0]), Dst: topology.NodeID(dir[1]),
				Capacity: capacity, Fibers: []topology.FiberID{topology.FiberID(i)},
			})
		}
	}
	net, err := topology.New("fuzz", nodes, fibers, links)
	if err != nil {
		t.Skip("unbuildable topology:", err)
	}
	nFlows := 1 + int(r.byte())%3
	flows := make([]routing.Flow, 0, nFlows)
	for len(flows) < nFlows {
		src := int(r.byte()) % nNodes
		dst := (src + 1 + int(r.byte())%(nNodes-1)) % nNodes
		flows = append(flows, routing.Flow{
			ID:  routing.FlowID(len(flows)),
			Src: topology.NodeID(src), Dst: topology.NodeID(dst),
		})
	}
	ts, err := routing.BuildTunnels(net, flows, 1+int(r.byte())%3)
	if err != nil {
		t.Skip("unroutable flows:", err)
	}
	probs := make([]float64, len(fibers))
	for i := range probs {
		probs[i] = 0.0005 + float64(r.byte())/5120 // [0.0005, 0.05)
	}
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 50})
	if err != nil {
		t.Skip("unenumerable scenarios:", err)
	}
	demands := make(te.Demands, len(flows))
	for i := range demands {
		demands[i] = float64(r.byte()) / 16 // [0, 16)
	}
	return &te.Input{
		Net: net, Tunnels: ts, Demands: demands, Scenarios: set,
		Beta: 0.5 + float64(r.byte())/512, // [0.5, 1)
	}
}

// FuzzSolveBudget drives the anytime solve with random inputs and random
// budgets: any outcome must be a validation/feasibility error, a typed
// truncation, or a capacity-feasible plan — never a panic, and never an
// allocation that overloads a link (a truncated or fallback result included).
func FuzzSolveBudget(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 4, 100, 8, 50, 2, 1, 0, 2, 1, 9, 9, 9, 30, 40, 50, 1, 0})
	f.Add([]byte{0, 0, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{5, 2, 0, 3, 1, 4, 77, 12, 200, 3, 2, 2, 150, 150, 10, 20, 30, 40, 50, 60, 255, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		in := fuzzInput(t, r)
		// Budget: two bytes of units (0..1023; 0 = unlimited) so small
		// budgets — the interesting truncation range — dominate.
		units := int64(r.byte())<<2 | int64(r.byte())>>6
		o := DefaultOptimizer()
		o.MaxIters = 8
		o.MasterNodes = 200
		o.BudgetUnits = units
		res, err := o.Solve(in)
		if err != nil {
			var tr *Truncation
			if errors.As(err, &tr) && tr.Stage == "" {
				t.Fatalf("empty Truncation stage: %v", err)
			}
			return // validation / infeasibility errors are legitimate
		}
		if res.Alloc == nil {
			t.Fatal("nil allocation without error")
		}
		if res.Phi < -1e-9 || res.Phi > 1+1e-9 {
			t.Fatalf("phi %v outside [0,1]", res.Phi)
		}
		if res.Fallback && !res.Truncated {
			t.Fatal("fallback result not flagged truncated")
		}
		if units > 0 && !res.Truncated && res.WorkUnits > units {
			t.Fatalf("untruncated solve spent %d of %d units", res.WorkUnits, units)
		}
		// The core invariant: whatever rung the solve landed on, the plan
		// must respect every link capacity.
		if err := te.CheckCapacity(in.Net, &te.Plan{Alloc: res.Alloc, Tunnels: in.Tunnels}); err != nil {
			t.Fatalf("budget=%d truncated=%v fallback=%v: %v", units, res.Truncated, res.Fallback, err)
		}
	})
}
