package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"prete/internal/te"
	"prete/internal/topology"
)

// errBudgetExhausted is the internal signal that a sub-solve returned
// lp.Truncated: the Benders loop stops and returns its incumbent instead of
// propagating an error.
var errBudgetExhausted = errors.New("core: compute budget exhausted")

// Truncation is the typed error for a solve whose node or work budget
// expired before any feasible incumbent existed at all. Callers distinguish
// it from genuine infeasibility with errors.As; the anytime Solve path never
// returns it (it falls back to HeuristicPlan instead), but SolveExact —
// which certifies optimality or nothing — does.
type Truncation struct {
	// Stage names the solve that was cut short ("exact", "benders").
	Stage string
	// Limit names what expired ("nodes", "budget").
	Limit string
}

// Error implements error.
func (t *Truncation) Error() string {
	return fmt.Sprintf("core: %s solve truncated (%s limit) before any feasible incumbent", t.Stage, t.Limit)
}

// HeuristicPlan is the degradation ladder's third rung: a proportional
// allocation computed in one linear pass, used when the compute budget
// expires before Benders finds any feasible incumbent. Each flow's demand is
// split equally across its tunnels, then the whole allocation is scaled down
// by the worst link overload, so the result always satisfies the capacity
// constraints (te.CheckCapacity) — a valid, installable plan, just not an
// optimized one. The returned phi is the worst per-class loss of the plan
// over all failure-equivalence classes (a conservative upper bound on the
// max loss the optimizer would have reported).
//
// The construction is deterministic: tunnels and classes are walked in their
// canonical slice order, so equal inputs produce bit-identical plans.
func HeuristicPlan(in *te.Input) (te.Allocation, float64) {
	return heuristicPlan(in, BuildClasses(in.Tunnels, in.Scenarios))
}

func heuristicPlan(in *te.Input, classes []Class) (te.Allocation, float64) {
	alloc := make(te.Allocation)
	for _, fl := range in.Tunnels.Flows {
		d := in.Demands[fl.ID]
		tids := in.Tunnels.TunnelsOf(fl.ID)
		if d <= 0 || len(tids) == 0 {
			continue
		}
		share := d / float64(len(tids))
		for _, tid := range tids {
			alloc[tid] += share
		}
	}
	// Scale the whole allocation down by the worst overload so every link
	// respects its capacity. Loads accumulate in tunnel-slice order, keeping
	// the floating-point sums (and therefore the plan) reproducible.
	loads := make(map[topology.LinkID]float64)
	for _, tn := range in.Tunnels.Tunnels {
		amt := alloc[tn.ID]
		if amt <= 0 {
			continue
		}
		for _, lid := range tn.Links {
			loads[lid] += amt
		}
	}
	worst := 1.0
	for lid, load := range loads {
		c := in.Net.Link(lid).Capacity
		if c <= 0 {
			worst = 0 // a zero-capacity link can carry nothing
			break
		}
		if r := load / c; r > worst {
			worst = r
		}
	}
	if worst != 1 {
		scale := 0.0
		if worst > 0 {
			scale = 1 / worst
		}
		for tid, amt := range alloc {
			v := amt * scale
			if v > 1e-12 {
				alloc[tid] = v
			} else {
				delete(alloc, tid)
			}
		}
	}
	// phi: worst loss over every equivalence class under this allocation.
	var phi float64
	for _, c := range classes {
		d := in.Demands[c.Flow]
		if d <= 0 {
			continue
		}
		var delivered float64
		for _, tid := range c.Avail {
			delivered += alloc[tid]
		}
		if delivered > d {
			delivered = d
		}
		if loss := 1 - delivered/d; loss > phi {
			phi = loss
		}
	}
	return alloc, phi
}

// ParseBudget parses the CLI -budget syntax "UNITS[:TIMEOUT]":
//
//	-budget 5000          5000 deterministic work units, no deadline
//	-budget 5000:150ms    5000 units plus a 150 ms wall-clock safety net
//	-budget :2s           wall-clock deadline only (nondeterministic)
//	-budget 0             unlimited (the default)
//
// Units are the deterministic currency (simplex pivots + branch-and-bound
// nodes + Benders iterations); the timeout is the production safety net and
// makes runs wall-clock-dependent — see lp.Budget.
func ParseBudget(s string) (units int64, timeout time.Duration, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, 0, nil
	}
	unitPart, durPart, hasDur := strings.Cut(s, ":")
	if unitPart != "" {
		units, err = strconv.ParseInt(unitPart, 10, 64)
		if err != nil || units < 0 {
			return 0, 0, fmt.Errorf("core: bad budget units %q (want a nonnegative integer)", unitPart)
		}
	}
	if hasDur {
		timeout, err = time.ParseDuration(durPart)
		if err != nil || timeout < 0 {
			return 0, 0, fmt.Errorf("core: bad budget timeout %q (want a Go duration like 150ms)", durPart)
		}
	}
	return units, timeout, nil
}
