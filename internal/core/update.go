// Package core implements PreTE itself (Fig 8): the Eqn. 1 probability
// calibration, Algorithm 1's reactive tunnel updates on degradation
// signals, and the Eqns. 2-8 scenario optimization solved with Benders
// decomposition (Algorithm 2, Appendix A.4/A.5). TeaVaR is available as the
// degenerate configuration the paper identifies in §4.1.2: alpha = 0, no
// degradation handling, static probabilities.
package core

import (
	"fmt"
	"math"

	"prete/internal/routing"
	"prete/internal/topology"
)

// UpdateResult reports what Algorithm 1 did.
type UpdateResult struct {
	// Tunnels is the updated tunnel table (a clone; the pre-established
	// table is untouched so it can be restored after the TE period).
	Tunnels *routing.TunnelSet
	// NewTunnels counts the established tunnels (the serialized-install
	// cost driver of Fig 11b / Fig 16b).
	NewTunnels int
	// AffectedFlows lists flows that had tunnels traversing the degraded
	// fiber.
	AffectedFlows []routing.FlowID
}

// UpdateTunnels is Algorithm 1: for a degradation event on fiber e, delete
// e from the WAN graph, and for every flow f with Lambda > 0 tunnels
// traversing e, establish ceil(ratio * Lambda) new tunnels from the pruned
// graph (so their paths are disjoint with the degraded fiber). ratio = 1
// reproduces the paper's default ("establish new Lambda tunnels"); §6.4
// sweeps it from 0 to 5.
func UpdateTunnels(ts *routing.TunnelSet, degraded topology.FiberID, ratio float64) (*UpdateResult, error) {
	if ratio < 0 {
		return nil, fmt.Errorf("core: negative tunnel ratio %v", ratio)
	}
	net := ts.Net
	if int(degraded) < 0 || int(degraded) >= len(net.Fibers) {
		return nil, fmt.Errorf("core: fiber %d out of range", degraded)
	}
	res := &UpdateResult{Tunnels: ts.Clone()}
	// Step 1: G' = G minus the degraded fiber — ban every IP link riding it.
	banned := make(map[topology.LinkID]bool)
	for _, lid := range net.LinksOnFiber(degraded) {
		banned[lid] = true
	}
	for _, fl := range res.Tunnels.Flows {
		// Step 2: Lambda = number of f's tunnels traversing e.
		lambda := 0
		existing := make(map[string]bool)
		for _, tid := range res.Tunnels.TunnelsOf(fl.ID) {
			t := res.Tunnels.Tunnel(tid)
			if t.UsesFiber(degraded) {
				lambda++
			}
			existing[pathKey(t.Links)] = true
		}
		if lambda == 0 {
			continue
		}
		res.AffectedFlows = append(res.AffectedFlows, fl.ID)
		if ratio == 0 {
			continue // PreTE-naive (§6.4): recalibrate probabilities only
		}
		want := int(math.Ceil(ratio * float64(lambda)))
		// Establish up to `want` new tunnels from G'. Banned links carry a
		// prohibitive weight so Yen avoids them whenever an alternative
		// exists; any path still touching them is filtered.
		paths := routing.KShortest(net, fl.Src, fl.Dst, want+len(existing), prunedWeight(net, banned))
		added := 0
		for _, p := range paths {
			if added >= want {
				break
			}
			if touchesBanned(p, banned) || existing[pathKey(p)] {
				continue
			}
			existing[pathKey(p)] = true
			res.Tunnels.AddTunnel(fl.ID, p)
			added++
		}
		res.NewTunnels += added
	}
	return res, nil
}

// prunedWeight prices links riding the degraded fiber prohibitively so the
// path search treats them as absent.
func prunedWeight(net *topology.Network, banned map[topology.LinkID]bool) routing.Weight {
	return func(l topology.Link) float64 {
		if banned[l.ID] {
			return 1e12
		}
		var km float64
		for _, f := range l.Fibers {
			km += net.Fiber(f).LengthKm
		}
		if km <= 0 {
			km = 1
		}
		return km
	}
}

func touchesBanned(p routing.Path, banned map[topology.LinkID]bool) bool {
	for _, lid := range p {
		if banned[lid] {
			return true
		}
	}
	return false
}

func pathKey(p routing.Path) string {
	b := make([]byte, 0, len(p)*3)
	for _, l := range p {
		b = append(b, byte(l), byte(l>>8), ',')
	}
	return string(b)
}
