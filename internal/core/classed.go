package core

import (
	"fmt"

	"prete/internal/routing"
	"prete/internal/te"
	"prete/internal/topology"
)

// TierResult is one SLO tier's slice of a classed solve.
type TierResult struct {
	// Name, Policy, Weight echo the tier's spec entry.
	Name   string
	Policy te.TierPolicy
	Weight float64
	// Demands is the tier's share of every flow's demand (the split the
	// solve planned against).
	Demands te.Demands
	// Offered is the tier's total demand in Gbps (the sum of Demands).
	Offered float64
	// Res is the tier's Benders result against the residual network left
	// by all higher-priority tiers.
	Res *Result
	// ExpectedLoss is the tier plan's expected fractional demand loss over
	// the calibrated scenario set (un-enumerated tail charged as full
	// loss), in [0, 1] — the achievable-allocation signal the admission
	// ladder sheds against. Res.Phi is the beta-quantile worst case and
	// saturates at 1 whenever any covered scenario disconnects a flow;
	// ExpectedLoss stays proportional to the traffic actually at risk.
	ExpectedLoss float64
}

// ClassedResult is the outcome of a strict-priority classed solve: one
// Benders result per tier, solved highest priority first, each against the
// capacity left over by the tiers above it.
type ClassedResult struct {
	Tiers []TierResult
	// Alloc is the merged allocation: for every tunnel, the sum of the
	// per-tier allocations — what the controller actually installs.
	Alloc te.Allocation
	// WeightedLoss is the weight-averaged loss bound across tiers
	// (sum w_k * Phi_k / sum w_k), the class-weighted objective value.
	WeightedLoss float64
}

// residualNetwork returns the network with the given per-link loads already
// subtracted from capacity (clamped at zero) — the capacity a lower
// priority tier may plan against. A nil/empty load map returns the input
// unchanged. Only the Links slice is copied; the topology indices are
// shared (they never depend on capacity).
func residualNetwork(net *topology.Network, loads map[topology.LinkID]float64) *topology.Network {
	if len(loads) == 0 {
		return net
	}
	n2 := *net
	n2.Links = append([]topology.Link(nil), net.Links...)
	for lid, load := range loads {
		c := n2.Links[int(lid)].Capacity - load
		if c < 0 {
			c = 0
		}
		n2.Links[int(lid)].Capacity = c
	}
	return &n2
}

// SolveClassed runs the strict-priority classed solve: the input's demands
// are split across the spec's tiers, and each tier runs the full Benders
// solve (Eqns. 2-8) against the residual network left by every tier above
// it. Strict priority is exact — the top tier's result is bit-identical to
// a uniform solve of its demands alone, and no lower tier can degrade it.
// Each tier solve inherits the optimizer's determinism contract, so the
// whole classed result is bit-identical at any Parallelism setting.
func (o *Optimizer) SolveClassed(in *te.Input, spec *te.ClassSpec) (*ClassedResult, error) {
	return o.solveClassed(in, spec, nil)
}

// SolveClassedCached is SolveClassed with one cross-epoch SolveCache per
// tier (caches[k] warms tier k; a nil slice or nil entry solves that tier
// cold). Per-tier caches are required because each tier's input fingerprint
// differs (its demand split), so sharing one cache would evict on every
// tier.
func (o *Optimizer) SolveClassedCached(in *te.Input, spec *te.ClassSpec, caches []*SolveCache) (*ClassedResult, error) {
	return o.solveClassed(in, spec, caches)
}

func (o *Optimizer) solveClassed(in *te.Input, spec *te.ClassSpec, caches []*SolveCache) (*ClassedResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if caches != nil && len(caches) != len(spec.Tiers) {
		return nil, fmt.Errorf("core: %d solve caches for %d tiers", len(caches), len(spec.Tiers))
	}
	reg := o.Metrics
	split := spec.SplitDemands(in.Demands)
	out := &ClassedResult{
		Tiers: make([]TierResult, 0, len(spec.Tiers)),
		Alloc: make(te.Allocation),
	}
	loads := make(map[topology.LinkID]float64)
	var wSum, wLoss float64
	for k, tier := range spec.Tiers {
		tierIn := &te.Input{
			Net:       residualNetwork(in.Net, loads),
			Tunnels:   in.Tunnels,
			Demands:   split[k],
			Scenarios: in.Scenarios,
			Beta:      in.Beta,
		}
		var res *Result
		var err error
		if caches != nil && caches[k] != nil {
			res, err = o.SolveCached(tierIn, caches[k])
		} else {
			res, err = o.Solve(tierIn)
		}
		if err != nil {
			return nil, fmt.Errorf("core: tier %s: %w", tier.Name, err)
		}
		var offered float64
		for _, d := range split[k] {
			offered += d
		}
		el := expectedLoss(tierIn, res.Alloc, split[k], offered)
		out.Tiers = append(out.Tiers, TierResult{
			Name: tier.Name, Policy: tier.Policy, Weight: tier.Weight,
			Demands: split[k], Offered: offered, Res: res, ExpectedLoss: el,
		})
		wSum += tier.Weight
		wLoss += tier.Weight * res.Phi
		// Charge this tier's allocation against the network before the next
		// tier plans. Per-link subtraction is order-independent, so the map
		// iteration order inside residualNetwork cannot leak in.
		plan := &te.Plan{Alloc: res.Alloc, Tunnels: in.Tunnels}
		for lid, load := range te.LinkLoads(plan) {
			loads[lid] += load
		}
		for tid, amt := range res.Alloc {
			if amt > 0 {
				out.Alloc[tid] += amt
			}
		}
		reg.Counter("core.class.solves").Inc()
		reg.Gauge("core.class.phi." + tier.Name).Set(res.Phi)
		reg.Gauge("core.class.expected_loss." + tier.Name).Set(el)
	}
	if wSum > 0 {
		out.WeightedLoss = wLoss / wSum
	}
	reg.Gauge("core.class.weighted_loss").Set(out.WeightedLoss)
	return out, nil
}

// expectedLoss integrates the tier plan over the calibrated scenario set:
// 1 - E[delivered Gbps] / offered, with the un-enumerated probability tail
// counted as total loss (only covered scenarios contribute delivered
// mass). Serial accumulation in scenario-then-flow order keeps the sum
// bit-identical at any Parallelism.
func expectedLoss(in *te.Input, alloc te.Allocation, demands te.Demands, offered float64) float64 {
	if offered <= 0 || in.Scenarios == nil {
		return 0
	}
	plan := &te.Plan{Alloc: alloc, Tunnels: in.Tunnels}
	var carried float64
	for _, q := range in.Scenarios.Scenarios {
		cut := q.CutSet()
		var del float64
		for f, d := range demands {
			if d > 0 {
				del += te.Delivered(plan, routing.FlowID(f), d, cut)
			}
		}
		carried += q.Prob * del
	}
	loss := 1 - carried/offered
	if loss < 0 {
		return 0
	}
	if loss > 1 {
		return 1
	}
	return loss
}

// ClassedEpochPlan is the full classed PreTE output for one TE period.
type ClassedEpochPlan struct {
	// Plans holds one plan per tier (all sharing the updated tunnel
	// table), for per-tier availability evaluation.
	Plans []*te.Plan
	// Classed carries the per-tier optimizer results and merged
	// allocation.
	Classed *ClassedResult
	// Update is non-nil when Algorithm 1 ran (degradation present).
	Update *UpdateResult
	// Calibrated are the Eqn. 1 per-fiber failure probabilities used.
	Calibrated []float64
}

// PlanEpochClassed runs the Fig 8 pipeline with per-class demands: the
// calibrate / tunnel-update / scenario-regen stages are exactly PlanEpoch's
// (shared code), and the optimize stage is the strict-priority classed
// solve.
func (p *PreTE) PlanEpochClassed(in EpochInput, spec *te.ClassSpec) (*ClassedEpochPlan, error) {
	prep, err := p.prepareEpoch(in)
	if err != nil {
		return nil, err
	}
	teIn := &te.Input{
		Net: in.Net, Tunnels: prep.tunnels, Demands: in.Demands,
		Scenarios: prep.set, Beta: in.Beta,
	}
	optT := p.Opt.Metrics.Timer("core.epoch.optimize")
	optStart := optT.Start()
	res, err := p.Opt.SolveClassed(teIn, spec)
	optT.Stop(optStart)
	if err != nil {
		return nil, err
	}
	plans := make([]*te.Plan, len(res.Tiers))
	for k, tier := range res.Tiers {
		plans[k] = &te.Plan{Alloc: tier.Res.Alloc, MaxLoss: tier.Res.Phi, Tunnels: prep.tunnels}
	}
	return &ClassedEpochPlan{
		Plans:      plans,
		Classed:    res,
		Update:     prep.update,
		Calibrated: prep.probs,
	}, nil
}
