package core

import (
	"reflect"
	"testing"

	"prete/internal/obs"
)

// TestSolveMetricsInvariant is the tentpole guarantee of the observability
// layer: attaching a registry must not change the optimizer's output in any
// bit — metrics are a write-only side channel. It also pins that a solve
// actually populates the core.benders.* and core.lp.* series.
func TestSolveMetricsInvariant(t *testing.T) {
	for _, topo := range []string{"B4", "IBM"} {
		in := realInput(t, topo, 37)
		plain := DefaultOptimizer()
		want, err := plain.Solve(in)
		if err != nil {
			t.Fatalf("%s without metrics: %v", topo, err)
		}
		reg := obs.NewRegistry()
		metered := DefaultOptimizer()
		metered.Metrics = reg
		got, err := metered.Solve(in)
		if err != nil {
			t.Fatalf("%s with metrics: %v", topo, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: result differs with metrics attached", topo)
		}
		iters := reg.Counter("core.benders.iterations").Value()
		if iters != int64(want.Iterations) {
			t.Errorf("%s: metered %d iterations, result reports %d", topo, iters, want.Iterations)
		}
		if reg.Counter("core.lp.pivots").Value() == 0 {
			t.Errorf("%s: no LP pivots recorded", topo)
		}
		if reg.Timer("core.benders.master_solve").Count() == 0 {
			t.Errorf("%s: no master solves timed", topo)
		}
		if reg.Timer("core.benders.subproblem_solve").Count() == 0 {
			t.Errorf("%s: no subproblem solves timed", topo)
		}
		if reg.Gauge("core.benders.classes").Value() == 0 {
			t.Errorf("%s: class gauge not set", topo)
		}
	}
}

// TestPlanEpochMetricsInvariant extends the invariant through the full
// pipeline: calibration, Algorithm 1, scenario regeneration, and the solve,
// with a degradation signal active so the tunnel-update path runs.
func TestPlanEpochMetricsInvariant(t *testing.T) {
	in := realInput(t, "B4", 41)
	pi := make([]float64, len(in.Net.Fibers))
	for i := range pi {
		pi[i] = 0.002
	}
	epoch := EpochInput{
		Net: in.Net, Tunnels: in.Tunnels, Demands: in.Demands, Beta: 0.99,
		PI:      pi,
		Signals: []DegradationSignal{{Fiber: 0, PNN: 0.7}},
	}
	plain := New()
	want, err := plain.PlanEpoch(epoch)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	metered := New()
	metered.Opt.Metrics = reg
	got, err := metered.PlanEpoch(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("epoch plan differs with metrics attached")
	}
	for _, stage := range []string{
		"core.epoch.calibrate", "core.epoch.tunnel_update",
		"core.epoch.scenario_regen", "core.epoch.optimize",
	} {
		if reg.Timer(stage).Count() == 0 {
			t.Errorf("stage timer %s not recorded", stage)
		}
	}
	if want.Update == nil || want.Update.NewTunnels == 0 {
		t.Fatal("test expects the signal to create tunnels")
	}
	if got := reg.Counter("core.epoch.new_tunnels").Value(); got != int64(want.Update.NewTunnels) {
		t.Errorf("new_tunnels counter = %d, want %d", got, want.Update.NewTunnels)
	}
}
