package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"prete/internal/obs"
	"prete/internal/scenario"
	"prete/internal/te"
)

// SolveCache carries solve artifacts across TE epochs so that consecutive
// SolveCached calls on nearly identical inputs reuse work instead of
// re-deriving it. It retains, from the last completed solve: the scenario
// set (for delta classification), the class identity list, the full
// Benders cut pool, and the result itself. The reuse ladder, driven by
// scenario.Set.Diff against the cached set:
//
//   - unchanged: the inputs are bit-identical, the solver is deterministic,
//     so the cached result IS the answer — returned as a deep copy without
//     touching the LP layer (a cache hit).
//   - probabilities-only: the failure combinations are the same, so every
//     cached cut is still a valid optimality cut (cut coefficients depend
//     on demands, capacities, and surviving-tunnel sets — never on
//     probabilities, which enter only the master's beta rows, rebuilt each
//     solve). The cuts are remapped onto the new class order and the solve
//     warm-starts from the full pool (a revalidation).
//   - structural (or any change to topology, tunnels, demands, beta, or
//     solver knobs — tracked by an input fingerprint): the cache is evicted
//     and the solve runs cold. Stale cuts must never survive a structural
//     change; a cut referencing a class that no longer exists would
//     silently bias the master.
//
// The determinism contract: SolveCached with an unchanged scenario set
// returns a result bit-identical to a cold Solve on the same input, at
// every Parallelism setting (pinned by TestWarmCache* and FuzzWarmCache).
// A SolveCache is safe for concurrent use; the zero value is ready.
type SolveCache struct {
	mu sync.Mutex

	valid     bool
	inputFP   uint64
	set       *scenario.Set
	classKeys []string
	cuts      []bendersCut
	result    *Result

	stats CacheStats
}

// CacheStats counts SolveCache outcomes since construction.
type CacheStats struct {
	// Hits: unchanged scenario set, cached result returned verbatim.
	Hits uint64
	// Revalidations: probability-only drift, cut pool reused to warm-start.
	Revalidations uint64
	// Misses: cold solves (first use, or nothing reusable).
	Misses uint64
	// Evictions: cached state discarded because the input fingerprint or
	// scenario structure changed (a subset of Misses after first use).
	Evictions uint64
	// CutsReused totals the cuts carried into warm-started solves.
	CutsReused uint64
	// LastDelta is the scenario delta of the most recent SolveCached call
	// (structural on first use and on input-fingerprint evictions).
	LastDelta scenario.Delta
}

// Stats returns a snapshot of the cache's outcome counters.
func (c *SolveCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset discards all cached state (counters included), forcing the next
// SolveCached to run cold.
func (c *SolveCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.valid = false
	c.set = nil
	c.classKeys = nil
	c.cuts = nil
	c.result = nil
	c.stats = CacheStats{}
}

// Prime runs one cold solve through the cache so that a subsequent epoch
// with the same scenario set hits. A warm-restarted controller calls this
// with the journaled probability vector's re-enumerated set before serving
// its first epoch, converting recovery state into solver warm-start state.
func (o *Optimizer) Prime(in *te.Input, cache *SolveCache) error {
	if cache == nil {
		return nil
	}
	_, err := o.SolveCached(in, cache)
	return err
}

// SolveCached is Solve with cross-epoch reuse through cache. A nil cache
// degenerates to Solve. The call classifies in.Scenarios against the cached
// set (plus an input fingerprint over topology, tunnels, demands, beta, and
// solver knobs) and takes the reuse ladder described on SolveCache; it
// always stores the completed solve's artifacts for the next epoch.
func (o *Optimizer) SolveCached(in *te.Input, cache *SolveCache) (*Result, error) {
	if cache == nil {
		return o.Solve(in)
	}
	m := o.cacheMetrics()
	fp := o.inputFingerprint(in)

	cache.mu.Lock()
	defer cache.mu.Unlock()

	var delta scenario.Delta
	if cache.valid && fp == cache.inputFP {
		delta = in.Scenarios.Diff(cache.set)
	} else {
		// First use, or anything outside the scenario set changed: nothing
		// is reusable, whatever the scenario delta says.
		delta = in.Scenarios.Diff(nil)
	}
	cache.stats.LastDelta = delta

	switch delta.Class {
	case scenario.DeltaUnchanged:
		cache.stats.Hits++
		m.hits.Inc()
		return cloneResult(cache.result), nil

	case scenario.DeltaProbOnly:
		classes := BuildClassesP(in.Tunnels, in.Scenarios, o.Parallelism)
		keys := classKeys(classes)
		warm := remapCuts(cache.cuts, cache.classKeys, keys)
		if warm == nil {
			// Class identity drifted in a way the scenario delta did not
			// predict — never reuse on a mismatch; fall through to cold.
			break
		}
		res, state, err := o.solveBudget(in, o.newBudget(), warm)
		if err != nil {
			cache.evictLocked(m)
			return nil, err
		}
		cache.stats.Revalidations++
		cache.stats.CutsReused += uint64(len(warm))
		m.revalidated.Inc()
		m.cutsReused.Add(int64(len(warm)))
		cache.storeLocked(fp, in.Scenarios, state, res)
		return res, nil
	}

	// Cold path: structural delta, input change, or defensive fallback.
	if cache.valid {
		cache.evictLocked(m)
	}
	cache.stats.Misses++
	m.misses.Inc()
	res, state, err := o.solveBudget(in, o.newBudget(), nil)
	if err != nil {
		return nil, err
	}
	cache.storeLocked(fp, in.Scenarios, state, res)
	return res, nil
}

func (c *SolveCache) storeLocked(fp uint64, set *scenario.Set, state *solveState, res *Result) {
	c.valid = true
	c.inputFP = fp
	c.set = set
	c.classKeys = classKeys(state.classes)
	c.cuts = state.cuts
	c.result = cloneResult(res)
}

func (c *SolveCache) evictLocked(m cacheObs) {
	c.valid = false
	c.set = nil
	c.classKeys = nil
	c.cuts = nil
	c.result = nil
	c.stats.Evictions++
	m.evictions.Inc()
}

// cacheObs holds the warm-cache metric handles (nil-safe, like optObs).
type cacheObs struct {
	hits, misses, revalidated, evictions, cutsReused *obs.Counter
}

func (o *Optimizer) cacheMetrics() cacheObs {
	r := o.Metrics
	return cacheObs{
		hits:        r.Counter("core.warmcache.hits"),
		misses:      r.Counter("core.warmcache.misses"),
		revalidated: r.Counter("core.warmcache.revalidated"),
		evictions:   r.Counter("core.warmcache.evictions"),
		cutsReused:  r.Counter("core.warmcache.cuts_reused"),
	}
}

// classKeys derives the per-class identity strings: flow plus the
// surviving-tunnel key. The key is invariant under probability-only drift
// (surviving-tunnel sets depend only on scenario cut structure), while the
// class *order* is not — Enumerate sorts by probability, and classes form
// in first-seen scenario order — which is exactly why cached cuts are
// remapped by key rather than carried over by index.
func classKeys(classes []Class) []string {
	keys := make([]string, len(classes))
	for i, c := range classes {
		keys[i] = fmt.Sprintf("%d|%s", c.Flow, tunnelKey(c.Avail))
	}
	return keys
}

// remapCuts rewrites a cached cut pool from the old class order to the new
// one, matching classes by identity key. It returns nil — reuse refused —
// unless the key sets correspond exactly (same multiset, no additions, no
// removals): any mismatch means the failure-equivalence structure moved and
// the cuts' per-class coefficients can no longer be placed soundly.
func remapCuts(cuts []bendersCut, oldKeys, newKeys []string) []bendersCut {
	if len(oldKeys) != len(newKeys) {
		return nil
	}
	oldIdx := make(map[string]int, len(oldKeys))
	for i, k := range oldKeys {
		if _, dup := oldIdx[k]; dup {
			return nil // duplicate identities cannot be matched reliably
		}
		oldIdx[k] = i
	}
	perm := make([]int, len(newKeys)) // new index -> old index
	for ni, k := range newKeys {
		oi, ok := oldIdx[k]
		if !ok {
			return nil
		}
		perm[ni] = oi
		delete(oldIdx, k)
	}
	out := make([]bendersCut, len(cuts))
	for ci, cut := range cuts {
		coef := make([]float64, len(newKeys))
		for ni, oi := range perm {
			coef[ni] = cut.coef[oi]
		}
		out[ci] = bendersCut{coef: coef, con: cut.con, value: cut.value}
	}
	return out
}

// cloneResult deep-copies a Result so cached state and caller-visible
// results never alias.
func cloneResult(r *Result) *Result {
	cp := *r
	cp.Alloc = r.Alloc.Clone()
	cp.Selected = append([]bool(nil), r.Selected...)
	return &cp
}

// inputFingerprint hashes everything outside the scenario set that a solve
// depends on: link capacities and fiber composition, the tunnel table
// (IDs, flows, link paths, fiber sets), demands, beta, and the solver
// knobs that shape the search. Parallelism is deliberately excluded — by
// the par contract it never changes results, so a controller resizing its
// worker pool keeps its cache. Any other change evicts: cut coefficients
// embed demands and capacities, so reusing them across such a change would
// be unsound.
func (o *Optimizer) inputFingerprint(in *te.Input) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f := func(v float64) { u(math.Float64bits(v)) }

	u(uint64(len(in.Net.Links)))
	for _, l := range in.Net.Links {
		u(uint64(l.ID))
		f(l.Capacity)
		u(uint64(len(l.Fibers)))
		for _, fb := range l.Fibers {
			u(uint64(fb))
		}
	}
	u(uint64(len(in.Tunnels.Tunnels)))
	for _, t := range in.Tunnels.Tunnels {
		u(uint64(t.ID))
		u(uint64(t.Flow))
		u(uint64(len(t.Links)))
		for _, lid := range t.Links {
			u(uint64(lid))
		}
		fibers := make([]int, 0, len(t.Fibers))
		for fb := range t.Fibers {
			fibers = append(fibers, int(fb))
		}
		sort.Ints(fibers)
		u(uint64(len(fibers)))
		for _, fb := range fibers {
			u(uint64(fb))
		}
	}
	u(uint64(len(in.Demands)))
	for _, d := range in.Demands {
		f(d)
	}
	f(in.Beta)

	f(o.Epsilon)
	u(uint64(o.MaxIters))
	u(uint64(o.MasterNodes))
	b := uint64(0)
	if o.DisableStructuralCuts {
		b |= 1
	}
	if o.DisablePolish {
		b |= 2
	}
	u(b)
	u(uint64(o.BudgetUnits))
	u(uint64(o.SolveTimeout))
	return h.Sum64()
}
