package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"prete/internal/lp"
	"prete/internal/obs"
	"prete/internal/par"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/te"
)

// Class is a failure-equivalence class: the scenarios q under which flow f
// has exactly the same surviving tunnel set T_{f,q} (union Y^s_{f,q}).
// Merging scenarios into classes is exact — within a class the loss l_{f,q}
// is identical for any allocation, and a master solution gains probability
// mass at zero cost by selecting whole classes — and it shrinks the
// subproblem by an order of magnitude.
type Class struct {
	Flow  routing.FlowID
	Avail []routing.TunnelID // surviving tunnels, sorted
	Prob  float64            // summed probability of the merged scenarios
}

// BuildClasses groups a scenario set into per-flow failure-equivalence
// classes, serially. It is BuildClassesP at parallelism 1.
func BuildClasses(ts *routing.TunnelSet, set *scenario.Set) []Class {
	return BuildClassesP(ts, set, 1)
}

// BuildClassesP is the parallel form of BuildClasses: flows are independent,
// so each worker builds one flow's classes and the per-flow lists are
// concatenated in flow order — the exact order the serial loop produces, so
// the result is bit-identical at every parallelism level (<= 0 means
// GOMAXPROCS).
func BuildClassesP(ts *routing.TunnelSet, set *scenario.Set, parallelism int) []Class {
	perFlow := par.Map(len(ts.Flows), parallelism, func(i int) []Class {
		return buildFlowClasses(ts, set, ts.Flows[i].ID)
	})
	var out []Class
	for _, classes := range perFlow {
		out = append(out, classes...)
	}
	return out
}

// buildFlowClasses merges the scenario set into one flow's equivalence
// classes, in first-seen scenario order.
func buildFlowClasses(ts *routing.TunnelSet, set *scenario.Set, flow routing.FlowID) []Class {
	tids := ts.TunnelsOf(flow)
	byKey := make(map[string]*Class)
	var order []string
	for _, sc := range set.Scenarios {
		cut := sc.CutSet()
		var avail []routing.TunnelID
		for _, tid := range tids {
			if ts.Tunnel(tid).AvailableUnder(cut) {
				avail = append(avail, tid)
			}
		}
		key := tunnelKey(avail)
		c, ok := byKey[key]
		if !ok {
			c = &Class{Flow: flow, Avail: avail}
			byKey[key] = c
			order = append(order, key)
		}
		c.Prob += sc.Prob
	}
	out := make([]Class, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// classMinLoss lower-bounds a class's achievable loss from its surviving
// tunnels' bottleneck capacities, ignoring contention with other flows
// (hence a valid optimistic bound).
func classMinLoss(in *te.Input, c Class) float64 {
	d := in.Demands[c.Flow]
	if d <= 0 {
		return 0
	}
	var capSum float64
	for _, tid := range c.Avail {
		t := in.Tunnels.Tunnel(tid)
		bottleneck := -1.0
		for _, lid := range t.Links {
			if cc := in.Net.Link(lid).Capacity; bottleneck < 0 || cc < bottleneck {
				bottleneck = cc
			}
		}
		if bottleneck > 0 {
			capSum += bottleneck
		}
	}
	if capSum >= d {
		return 0
	}
	return 1 - capSum/d
}

func tunnelKey(tids []routing.TunnelID) string {
	b := make([]byte, 0, len(tids)*3)
	for _, t := range tids {
		b = append(b, byte(t), byte(t>>8), ',')
	}
	return string(b)
}

// Optimizer solves the PreTE formulation (Eqns. 2-8) with Benders
// decomposition (Algorithm 2).
type Optimizer struct {
	// Epsilon is the UB-LB convergence threshold (Algorithm 2's epsilon).
	Epsilon float64
	// MaxIters bounds Benders iterations.
	MaxIters int
	// MasterNodes bounds the master's branch-and-bound tree.
	MasterNodes int
	// DisableStructuralCuts turns off the bottleneck-capacity seeding cuts
	// (ablation knob: without them, Benders prunes hopeless classes one
	// iteration at a time).
	DisableStructuralCuts bool
	// DisablePolish skips the satisfaction-maximizing re-solve (ablation
	// knob: allocations then stop at exactly (1-Phi)d per flow).
	DisablePolish bool
	// Parallelism bounds the worker count of the optimizer's parallel
	// stages (per-flow class construction, structural-cut seeding, and
	// subproblem row assembly): <= 0 selects runtime.GOMAXPROCS(0), 1
	// forces the serial path. Results are bit-identical at every setting —
	// work is partitioned by index and merged in a fixed order (see
	// internal/par).
	Parallelism int
	// BudgetUnits caps the deterministic work one Solve may consume —
	// simplex pivots + branch-and-bound nodes + Benders iterations, each
	// costing one unit; 0 is unlimited. When the budget expires the solve
	// returns its best feasible incumbent with Result.Truncated set (or the
	// HeuristicPlan fallback when no incumbent exists yet) instead of
	// erroring, and equal budgets reproduce bit-identical results at every
	// Parallelism setting (see lp.Budget).
	BudgetUnits int64
	// SolveTimeout is the optional wall-clock ceiling per Solve — the
	// safety net a production controller derives from its TE period; 0 is
	// none. Crossing it truncates exactly like BudgetUnits running out, but
	// is inherently nondeterministic, so deterministic experiments use
	// units only.
	SolveTimeout time.Duration
	// Metrics, when non-nil, receives Benders iteration counts, cuts
	// added, master/subproblem solve times, LP pivot/node counts, and the
	// core.budget.* / core.anytime.* truncation series.
	// Metrics are write-only: results are bit-identical with Metrics nil
	// or set (internal/core's obs tests assert this).
	Metrics *obs.Registry
}

// optObs holds the optimizer's pre-resolved metric handles. Every handle is
// nil (a no-op) when the registry is nil, so the instrumented paths carry no
// branches beyond the nil checks inside internal/obs.
type optObs struct {
	iterations     *obs.Counter
	cutsAdded      *obs.Counter
	structuralCuts *obs.Counter
	classes        *obs.Gauge
	masterSolve    *obs.Timer
	subSolve       *obs.Timer
	polishSolve    *obs.Timer
	pivots         *obs.Counter
	bbNodes        *obs.Counter
	pivotsPerSolve *obs.Histogram

	budgetSpent     *obs.Counter   // work units consumed across solves
	budgetExhausted *obs.Counter   // solves whose budget ran out
	truncated       *obs.Counter   // solves returning a truncated incumbent
	fallback        *obs.Counter   // solves degrading to HeuristicPlan
	firstIncumbent  *obs.Histogram // work units to the first feasible incumbent
}

func (o *Optimizer) metrics() optObs {
	r := o.Metrics
	return optObs{
		iterations:     r.Counter("core.benders.iterations"),
		cutsAdded:      r.Counter("core.benders.cuts_added"),
		structuralCuts: r.Counter("core.benders.structural_cuts"),
		classes:        r.Gauge("core.benders.classes"),
		masterSolve:    r.Timer("core.benders.master_solve"),
		subSolve:       r.Timer("core.benders.subproblem_solve"),
		polishSolve:    r.Timer("core.benders.polish_solve"),
		pivots:         r.Counter("core.lp.pivots"),
		bbNodes:        r.Counter("core.lp.bb_nodes"),
		pivotsPerSolve: r.Histogram("core.lp.pivots_per_solve", obs.CountBuckets()),

		budgetSpent:     r.Counter("core.budget.spent"),
		budgetExhausted: r.Counter("core.budget.exhausted"),
		truncated:       r.Counter("core.anytime.truncated"),
		fallback:        r.Counter("core.anytime.fallback"),
		firstIncumbent:  r.Histogram("core.anytime.first_incumbent_units", obs.CountBuckets()),
	}
}

// observeLP records one LP/MIP solve's pivot and node counts.
func (m optObs) observeLP(sol *lp.Solution) {
	m.pivots.Add(int64(sol.Pivots))
	m.bbNodes.Add(int64(sol.Nodes))
	m.pivotsPerSolve.Observe(float64(sol.Pivots))
}

// DefaultOptimizer returns production-ish settings.
func DefaultOptimizer() *Optimizer {
	return &Optimizer{Epsilon: 1e-4, MaxIters: 30, MasterNodes: 2000}
}

// Result is the optimization outcome.
type Result struct {
	Alloc      te.Allocation
	Phi        float64 // the minimized maximum loss
	Iterations int
	LB, UB     float64
	// Selected reports the final delta: class index -> selected.
	Selected []bool
	// Truncated reports the compute budget expired before Benders
	// converged: Alloc is the best feasible incumbent found in time (or the
	// heuristic fallback when Fallback is also set), not a certified
	// optimum.
	Truncated bool
	// Fallback reports no feasible incumbent existed when the budget
	// expired, so Alloc is the proportional HeuristicPlan — rung three of
	// the degradation ladder.
	Fallback bool
	// WorkUnits is the deterministic work (pivots + B&B nodes + Benders
	// iterations) the solve consumed.
	WorkUnits int64
	// FirstIncumbentUnits is the work consumed when the first feasible
	// incumbent appeared (0 when none did) — the anytime latency figure the
	// deadline experiment and BenchmarkSolveAnytime* report.
	FirstIncumbentUnits int64
}

// newBudget materializes the optimizer's per-solve budget configuration;
// nil when the optimizer is unlimited.
func (o *Optimizer) newBudget() *lp.Budget {
	if o.BudgetUnits <= 0 && o.SolveTimeout <= 0 {
		return nil
	}
	return lp.NewBudget(o.BudgetUnits).WithTimeout(o.SolveTimeout)
}

// Solve runs Algorithm 2 on the input under the optimizer's configured
// budget (BudgetUnits / SolveTimeout). The scenario set's probabilities
// must already be calibrated (Eqn. 1) by the caller.
func (o *Optimizer) Solve(in *te.Input) (*Result, error) {
	return o.SolveBudget(in, o.newBudget())
}

// SolveBudget runs Algorithm 2 under an explicit compute budget, making the
// solve anytime: when the budget expires mid-search it returns the best
// feasible incumbent found so far with Result.Truncated set, and when no
// incumbent exists yet it returns the HeuristicPlan fallback (Result.Fallback)
// — the caller always gets an installable plan. A nil budget is unlimited
// and reproduces Solve's historical behaviour exactly.
func (o *Optimizer) SolveBudget(in *te.Input, budget *lp.Budget) (*Result, error) {
	res, _, err := o.solveBudget(in, budget, nil)
	return res, err
}

// solveState carries a completed solve's reusable artifacts — the class
// list and the full cut pool (structural + subproblem optimality cuts) —
// out to the cross-epoch SolveCache.
type solveState struct {
	classes []Class
	cuts    []bendersCut
}

// solveBudget is SolveBudget with a warm-start seam. warm, when non-nil, is
// a pool of optimality cuts already remapped to this input's class order
// (see SolveCache): the solve then skips structural-cut seeding (the warm
// pool subsumes it), seeds the master with the full pool, and — because the
// cuts are valid for the new problem — lifts the lower bound from the
// initial master solve, so a quiet epoch converges in one or two Benders
// iterations. With warm nil the behaviour is bit-identical to the historic
// SolveBudget, which the warm-cache invariant tests pin.
func (o *Optimizer) solveBudget(in *te.Input, budget *lp.Budget, warm []bendersCut) (*Result, *solveState, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if in.Scenarios == nil || len(in.Scenarios.Scenarios) == 0 {
		return nil, nil, fmt.Errorf("core: no failure scenarios")
	}
	if budget == nil {
		// Unlimited, but still account work units uniformly.
		budget = lp.NewBudget(0)
	}
	spentAt := budget.Spent()
	m := o.metrics()
	classes := BuildClassesP(in.Tunnels, in.Scenarios, o.Parallelism)
	m.classes.Set(float64(len(classes)))
	// Feasibility of constraint (5): every flow must be able to reach beta.
	perFlowMass := make(map[routing.FlowID]float64)
	for _, c := range classes {
		perFlowMass[c.Flow] += c.Prob
	}
	for f, mass := range perFlowMass {
		if mass < in.Beta-1e-12 {
			return nil, nil, fmt.Errorf("core: flow %d has only %.6f scenario mass for beta %.6f; widen the scenario cutoff", f, mass, in.Beta)
		}
	}

	// Structural cuts Phi >= minLoss_c * delta_c: a class whose surviving
	// tunnels have bottleneck capacity below the demand cannot be served
	// regardless of the rest of the network, so the master learns upfront
	// which classes force loss (in particular, disconnected classes force
	// Phi = 1). These are valid optimality cuts — l_{f,c} >= minLoss_c
	// holds for every allocation — and they spare Benders one iteration
	// per hopeless class. A warm start supersedes the seeding: the cached
	// pool already contains the previous epoch's structural cuts (demand
	// and capacity inputs are fingerprint-pinned, so they are still valid).
	var cuts []bendersCut
	if warm != nil {
		cuts = append(cuts, warm...)
	} else if !o.DisableStructuralCuts {
		// Each class's bound is independent of the others, so the bottleneck
		// scans fan out; cut assembly stays in class order.
		minLoss := par.Map(len(classes), o.Parallelism, func(ci int) float64 {
			return classMinLoss(in, classes[ci])
		})
		for ci, ml := range minLoss {
			if ml <= 0 {
				continue
			}
			cut := bendersCut{coef: make([]float64, len(classes)), con: ml}
			cut.coef[ci] = ml
			cuts = append(cuts, cut)
		}
		m.structuralCuts.Add(int64(len(cuts)))
	}

	// Algorithm 2, line 2: initialize delta = 1 for all (f, q) — then let
	// the structural cuts immediately refine it when present.
	delta := make([]bool, len(classes))
	for i := range delta {
		delta[i] = true
	}
	lb, ub := 0.0, 1.0
	if len(cuts) > 0 {
		d, masterPhi, err := o.solveMaster(in, classes, cuts, m, budget)
		if err == nil {
			delta = d
			if warm != nil && masterPhi > lb {
				// Every warm cut is a valid optimality cut for this input, so
				// the seeded master's optimum already lower-bounds Phi — the
				// step that lets a quiet epoch converge on its first
				// subproblem. (Cold structural cuts would justify this too,
				// but the historic path leaves lb at 0; changing it would
				// perturb bit-compatibility for no convergence gain.)
				lb = masterPhi
			}
		}
	}
	var bestAlloc te.Allocation
	var bestPhi float64
	var bestDelta []bool
	var firstIncumbentUnits int64
	truncated := false
	iters := 0
	for ; iters < o.MaxIters; iters++ {
		// One Benders iteration = one work unit, charged before the
		// subproblem so exhaustion stops the solve at an iteration boundary.
		if !budget.Spend(1) {
			truncated = true
			break
		}
		m.iterations.Inc()
		// Step 1: solve the subproblem with delta fixed.
		sp, err := o.solveSubproblem(in, classes, delta, m, budget)
		if err != nil {
			if errors.Is(err, errBudgetExhausted) {
				truncated = true
				break
			}
			return nil, nil, fmt.Errorf("core: subproblem iter %d: %w", iters, err)
		}
		if sp.phi <= ub {
			if bestAlloc == nil {
				firstIncumbentUnits = budget.Spent() - spentAt
			}
			ub = sp.phi
			bestAlloc = sp.alloc
			bestPhi = sp.phi
			bestDelta = append(bestDelta[:0], delta...)
		}
		cuts = append(cuts, sp.cut)
		m.cutsAdded.Inc()
		if ub-lb <= o.Epsilon {
			iters++
			break
		}
		// Step 2: solve the master with the accumulated optimality cuts.
		newDelta, masterPhi, err := o.solveMaster(in, classes, cuts, m, budget)
		if err != nil {
			if errors.Is(err, errBudgetExhausted) {
				truncated = true
				break
			}
			return nil, nil, fmt.Errorf("core: master iter %d: %w", iters, err)
		}
		if masterPhi > lb {
			lb = masterPhi
		}
		// Step 3: bound update and convergence check (line 5).
		if ub-lb <= o.Epsilon {
			iters++
			break
		}
		delta = newDelta
	}
	fallback := false
	if bestAlloc == nil {
		if !truncated {
			return nil, nil, fmt.Errorf("core: no feasible subproblem solution")
		}
		// Rung three of the degradation ladder: the budget expired before any
		// feasible incumbent existed, so hand back the proportional heuristic
		// — always capacity-feasible, always installable.
		fallback = true
		bestAlloc, bestPhi = heuristicPlan(in, classes)
		ub = bestPhi
	}
	// Polish: with delta fixed at the incumbent, re-solve for the most
	// satisfying allocation at (essentially) the optimal Phi — a bare
	// min-Phi LP is content to stop at (1-Phi)d per flow, which would make
	// downstream availability accounting degenerate. Runs under the same
	// budget; when it truncates, the unpolished incumbent stands.
	if !o.DisablePolish && !fallback {
		if polished, err := o.polish(in, classes, bestDelta, bestPhi, m, budget); err == nil {
			bestAlloc = polished
		} else if errors.Is(err, errBudgetExhausted) {
			// Converged, but the budget died inside the polish LP: the
			// unpolished incumbent stands, and the caller learns the solve
			// was cut short.
			truncated = true
		}
	}
	workUnits := budget.Spent() - spentAt
	m.budgetSpent.Add(workUnits)
	if truncated {
		m.budgetExhausted.Inc()
		if fallback {
			m.fallback.Inc()
		} else {
			m.truncated.Inc()
		}
	}
	if firstIncumbentUnits > 0 {
		m.firstIncumbent.Observe(float64(firstIncumbentUnits))
	}
	return &Result{
		Alloc: bestAlloc, Phi: bestPhi,
		Iterations: iters, LB: lb, UB: ub, Selected: bestDelta,
		Truncated: truncated, Fallback: fallback,
		WorkUnits: workUnits, FirstIncumbentUnits: firstIncumbentUnits,
	}, &solveState{classes: classes, cuts: cuts}, nil
}

// polish maximizes total satisfied demand fraction subject to the
// converged delta and loss bound.
func (o *Optimizer) polish(in *te.Input, classes []Class, delta []bool, phiCap float64, m optObs, budget *lp.Budget) (te.Allocation, error) {
	prob := lp.NewProblem()
	phi := prob.AddVar(0, "phi")
	tunnelVar := make(map[routing.TunnelID]int, len(in.Tunnels.Tunnels))
	for _, t := range in.Tunnels.Tunnels {
		tunnelVar[t.ID] = prob.AddVar(0, fmt.Sprintf("a_t%d", t.ID))
	}
	linkTerms := make(map[int][]lp.Term)
	for _, t := range in.Tunnels.Tunnels {
		v := tunnelVar[t.ID]
		for _, lid := range t.Links {
			linkTerms[int(lid)] = append(linkTerms[int(lid)], lp.Term{Var: v, Coeff: 1})
		}
	}
	linkIDs := make([]int, 0, len(linkTerms))
	for lid := range linkTerms {
		linkIDs = append(linkIDs, lid)
	}
	sort.Ints(linkIDs) // deterministic row order => deterministic vertex
	for _, lid := range linkIDs {
		if _, err := prob.AddConstraint(linkTerms[lid], lp.LE, in.Net.Links[lid].Capacity, "cap"); err != nil {
			return nil, err
		}
	}
	for ci, c := range classes {
		if !delta[ci] {
			continue
		}
		d := in.Demands[c.Flow]
		if d <= 0 {
			continue
		}
		terms := []lp.Term{{Var: phi, Coeff: d}}
		for _, tid := range c.Avail {
			terms = append(terms, lp.Term{Var: tunnelVar[tid], Coeff: 1})
		}
		if _, err := prob.AddConstraint(terms, lp.GE, d, "cov"); err != nil {
			return nil, err
		}
	}
	if _, err := prob.AddUpperBound(phi, phiCap+1e-7, "phi<=phi*"); err != nil {
		return nil, err
	}
	// Secondary objective: maximize the probability-weighted satisfied
	// fraction across ALL significant classes (selected or not) — i.e. the
	// expected availability itself. Protection beyond the beta-selected
	// classes is free whenever capacity allows, and a production TE system
	// takes it; a plain per-flow satisfaction term would happily
	// concentrate a flow onto one tunnel and die with its fiber.
	const polishClassFloor = 1e-4 // skip classes too rare to move the objective
	for ci, c := range classes {
		d := in.Demands[c.Flow]
		if d <= 0 || c.Prob < polishClassFloor || len(c.Avail) == 0 {
			continue
		}
		s := prob.AddVar(-c.Prob, fmt.Sprintf("s_c%d", ci))
		if _, err := prob.AddUpperBound(s, 1, "s<=1"); err != nil {
			return nil, err
		}
		terms := []lp.Term{{Var: s, Coeff: d}}
		for _, tid := range c.Avail {
			terms = append(terms, lp.Term{Var: tunnelVar[tid], Coeff: -1})
		}
		if _, err := prob.AddConstraint(terms, lp.LE, 0, "sat"); err != nil {
			return nil, err
		}
	}
	start := m.polishSolve.Start()
	sol := prob.SolveBudget(budget)
	m.polishSolve.Stop(start)
	m.observeLP(sol)
	if sol.Status == lp.Truncated {
		return nil, errBudgetExhausted
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("polish LP %v", sol.Status)
	}
	alloc := make(te.Allocation)
	for tid, v := range tunnelVar {
		if x := sol.X[v]; x > 1e-9 {
			alloc[tid] = x
		}
	}
	return alloc, nil
}

// bendersCut is an optimality cut Phi >= sum(coef_i * delta_i) + constant.
type bendersCut struct {
	coef  []float64 // per class; zero entries omitted implicitly
	con   float64
	value float64 // subproblem optimum that produced it (diagnostic)
}

type spSolution struct {
	alloc te.Allocation
	phi   float64
	cut   bendersCut
}

// solveSubproblem solves the reduced SP (l variables eliminated — see
// DESIGN.md) for a fixed delta and derives the Appendix A.4 optimality cut
// from its duals: w_{f,c} = d_f * y_{f,c} reconstructs a dual-feasible point
// of the full SP of Appendix A.5.
func (o *Optimizer) solveSubproblem(in *te.Input, classes []Class, delta []bool, m optObs, budget *lp.Budget) (*spSolution, error) {
	prob := lp.NewProblem()
	phi := prob.AddVar(1, "phi")
	tunnelVar := make(map[routing.TunnelID]int, len(in.Tunnels.Tunnels))
	for _, t := range in.Tunnels.Tunnels {
		tunnelVar[t.ID] = prob.AddVar(0, fmt.Sprintf("a_t%d", t.ID))
	}
	// Constraint (3): link capacities over pre-established AND new tunnels.
	type capRow struct {
		row int
		cap float64
	}
	var capRows []capRow
	linkTerms := make(map[int][]lp.Term) // linkID -> terms
	for _, t := range in.Tunnels.Tunnels {
		v := tunnelVar[t.ID]
		for _, lid := range t.Links {
			linkTerms[int(lid)] = append(linkTerms[int(lid)], lp.Term{Var: v, Coeff: 1})
		}
	}
	linkIDs := make([]int, 0, len(linkTerms))
	for lid := range linkTerms {
		linkIDs = append(linkIDs, lid)
	}
	sort.Ints(linkIDs)
	for _, lid := range linkIDs {
		c := in.Net.Links[lid].Capacity
		row, err := prob.AddConstraint(linkTerms[lid], lp.LE, c, fmt.Sprintf("cap_e%d", lid))
		if err != nil {
			return nil, err
		}
		capRows = append(capRows, capRow{row: row, cap: c})
	}
	// Constraint (4) for selected classes: sum a + d*phi >= d. The per-class
	// term lists are assembled in parallel (tunnelVar is read-only by now);
	// rows are added to the LP in class order so the tableau — and the
	// simplex pivot sequence — is identical at every parallelism level.
	type covRow struct {
		class int
		row   int
	}
	covTerms := par.Map(len(classes), o.Parallelism, func(ci int) []lp.Term {
		if !delta[ci] {
			return nil
		}
		d := in.Demands[classes[ci].Flow]
		if d <= 0 {
			return nil
		}
		terms := make([]lp.Term, 0, 1+len(classes[ci].Avail))
		terms = append(terms, lp.Term{Var: phi, Coeff: d})
		for _, tid := range classes[ci].Avail {
			terms = append(terms, lp.Term{Var: tunnelVar[tid], Coeff: 1})
		}
		return terms
	})
	var covRows []covRow
	for ci, terms := range covTerms {
		if terms == nil {
			continue
		}
		row, err := prob.AddConstraint(terms, lp.GE, in.Demands[classes[ci].Flow], fmt.Sprintf("cov_c%d", ci))
		if err != nil {
			return nil, err
		}
		covRows = append(covRows, covRow{class: ci, row: row})
	}
	if _, err := prob.AddUpperBound(phi, 1, "phi<=1"); err != nil {
		return nil, err
	}
	start := m.subSolve.Start()
	sol := prob.SolveBudget(budget)
	m.subSolve.Stop(start)
	m.observeLP(sol)
	if sol.Status == lp.Truncated {
		return nil, errBudgetExhausted
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("subproblem LP %v", sol.Status)
	}
	alloc := make(te.Allocation)
	for tid, v := range tunnelVar {
		if x := sol.X[v]; x > 1e-9 {
			alloc[tid] = x
		}
	}
	// Cut assembly: Phi >= sum_c w_c (delta_c - 1) + [sum_c w_c + sum_e c_e u_e']
	// where w_c = d_f * y_c (y = coverage-row dual >= 0) and the capacity
	// contribution is c_e * dual_e (dual_e <= 0 for LE rows).
	cut := bendersCut{coef: make([]float64, len(classes)), value: sol.X[phi]}
	for _, cr := range covRows {
		y := sol.Duals[cr.row]
		if y < 0 {
			y = 0 // numerical guard; GE-row duals are nonnegative
		}
		w := in.Demands[classes[cr.class].Flow] * y
		cut.coef[cr.class] = w
		cut.con += w // from sum d_f v_{fc} with v = y
	}
	for _, cr := range capRows {
		cut.con += cr.cap * sol.Duals[cr.row] // dual <= 0: subtracts capacity value
	}
	// The cut at the producing delta evaluates to sum w(1-1) + con = con,
	// which must equal the SP optimum by strong duality.
	return &spSolution{alloc: alloc, phi: sol.X[phi], cut: cut}, nil
}

// exactMasterLimit is the class count up to which the master is solved as
// a true MIP; above it the LP relaxation provides the lower bound and a
// greedy rounding the next delta ("the master problem which is related to a
// small scale binary variable can be solved with slack variables",
// Appendix A.4).
const exactMasterLimit = 48

// solveMaster solves the MP: min Phi s.t. all optimality cuts, the
// availability constraint (5) per flow, delta binary. It returns the next
// delta and a valid lower bound on the optimal Phi.
func (o *Optimizer) solveMaster(in *te.Input, classes []Class, cuts []bendersCut, mo optObs, budget *lp.Budget) ([]bool, float64, error) {
	exact := len(classes) <= exactMasterLimit
	m := lp.NewMIP()
	phi := m.AddVar(1, "phi")
	deltaVars := make([]int, len(classes))
	for i := range classes {
		if exact {
			deltaVars[i] = m.AddBinaryVar(0, fmt.Sprintf("delta_%d", i))
		} else {
			v := m.AddVar(0, fmt.Sprintf("delta_%d", i))
			if _, err := m.AddUpperBound(v, 1, "delta<=1"); err != nil {
				return nil, 0, err
			}
			deltaVars[i] = v
		}
	}
	// Constraint (5): per flow, sum of selected class probabilities >= beta.
	perFlow := make(map[routing.FlowID][]lp.Term)
	for i, c := range classes {
		perFlow[c.Flow] = append(perFlow[c.Flow], lp.Term{Var: deltaVars[i], Coeff: c.Prob})
	}
	flows := make([]routing.FlowID, 0, len(perFlow))
	for f := range perFlow {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		if _, err := m.AddConstraint(perFlow[f], lp.GE, in.Beta, fmt.Sprintf("beta_f%d", f)); err != nil {
			return nil, 0, err
		}
	}
	// Optimality cuts: Phi - sum coef*delta >= con - sum coef.
	for k, cut := range cuts {
		terms := []lp.Term{{Var: phi, Coeff: 1}}
		rhs := cut.con
		for ci, w := range cut.coef {
			if w == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: deltaVars[ci], Coeff: -w})
			rhs -= w
		}
		if _, err := m.AddConstraint(terms, lp.GE, rhs, fmt.Sprintf("cut_%d", k)); err != nil {
			return nil, 0, err
		}
	}
	if _, err := m.AddUpperBound(phi, 1, "phi<=1"); err != nil {
		return nil, 0, err
	}
	if exact {
		start := mo.masterSolve.Start()
		sol := m.SolveMIP(lp.MIPOptions{MaxNodes: o.MasterNodes, Budget: budget})
		mo.masterSolve.Stop(start)
		mo.observeLP(sol)
		if sol.Status == lp.Truncated {
			// A truncated master may be fractional (root relaxation) and its
			// rounding could violate the beta constraint — never use it.
			return nil, 0, errBudgetExhausted
		}
		if sol.Status != lp.Optimal && sol.Status != lp.IterationLimit {
			return nil, 0, fmt.Errorf("master MIP %v", sol.Status)
		}
		delta := make([]bool, len(classes))
		for i, v := range deltaVars {
			delta[i] = sol.X[v] > 0.5
		}
		return delta, sol.X[phi], nil
	}
	// Relaxation lower bound + greedy rounding.
	start := mo.masterSolve.Start()
	sol := m.Problem.SolveBudget(budget)
	mo.masterSolve.Stop(start)
	mo.observeLP(sol)
	if sol.Status == lp.Truncated {
		return nil, 0, errBudgetExhausted
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("master relaxation %v", sol.Status)
	}
	delta := greedyRound(in.Beta, classes, cuts)
	return delta, sol.X[phi], nil
}

// greedyRound builds a feasible delta: per flow, deselect the classes that
// carry the largest cut weights (they force Phi up) while keeping the
// selected probability mass at or above beta.
func greedyRound(beta float64, classes []Class, cuts []bendersCut) []bool {
	weight := make([]float64, len(classes))
	for _, cut := range cuts {
		for i, w := range cut.coef {
			if w > weight[i] {
				weight[i] = w
			}
		}
	}
	delta := make([]bool, len(classes))
	byFlow := make(map[routing.FlowID][]int)
	mass := make(map[routing.FlowID]float64)
	for i := range delta {
		delta[i] = true
		byFlow[classes[i].Flow] = append(byFlow[classes[i].Flow], i)
		mass[classes[i].Flow] += classes[i].Prob
	}
	for f, idxs := range byFlow {
		order := append([]int(nil), idxs...)
		sort.Slice(order, func(a, b int) bool { return weight[order[a]] > weight[order[b]] })
		remaining := mass[f]
		for _, i := range order {
			if weight[i] <= 0 {
				break // the rest are free to keep selected
			}
			if remaining-classes[i].Prob >= beta {
				delta[i] = false
				remaining -= classes[i].Prob
			}
		}
	}
	return delta
}

// SolveExact solves the full MIP (Phi, a, l, delta jointly, constraints
// 2-8 verbatim) by branch-and-bound. Exponential in the class count — used
// by tests to certify the Benders implementation on small instances.
func SolveExact(in *te.Input, nodeLimit int) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	classes := BuildClasses(in.Tunnels, in.Scenarios)
	m := lp.NewMIP()
	phi := m.AddVar(1, "phi")
	tunnelVar := make(map[routing.TunnelID]int)
	for _, t := range in.Tunnels.Tunnels {
		tunnelVar[t.ID] = m.AddVar(0, fmt.Sprintf("a_t%d", t.ID))
	}
	lVars := make([]int, len(classes))
	dVars := make([]int, len(classes))
	for i := range classes {
		lVars[i] = m.AddVar(0, fmt.Sprintf("l_%d", i))
		if _, err := m.AddUpperBound(lVars[i], 1, "l<=1"); err != nil {
			return nil, err
		}
		dVars[i] = m.AddBinaryVar(0, fmt.Sprintf("delta_%d", i))
	}
	// (3) capacity, in deterministic link order
	linkTerms := make(map[int][]lp.Term)
	for _, t := range in.Tunnels.Tunnels {
		v := tunnelVar[t.ID]
		for _, lid := range t.Links {
			linkTerms[int(lid)] = append(linkTerms[int(lid)], lp.Term{Var: v, Coeff: 1})
		}
	}
	exactLinkIDs := make([]int, 0, len(linkTerms))
	for lid := range linkTerms {
		exactLinkIDs = append(exactLinkIDs, lid)
	}
	sort.Ints(exactLinkIDs)
	for _, lid := range exactLinkIDs {
		if _, err := m.AddConstraint(linkTerms[lid], lp.LE, in.Net.Links[lid].Capacity, "cap"); err != nil {
			return nil, err
		}
	}
	for i, c := range classes {
		d := in.Demands[c.Flow]
		// (4): sum a >= (1 - l) d  <=>  sum a + d*l >= d
		terms := []lp.Term{{Var: lVars[i], Coeff: d}}
		for _, tid := range c.Avail {
			terms = append(terms, lp.Term{Var: tunnelVar[tid], Coeff: 1})
		}
		if _, err := m.AddConstraint(terms, lp.GE, d, "cov"); err != nil {
			return nil, err
		}
		// (6): Phi >= l - 1 + delta
		if _, err := m.AddConstraint([]lp.Term{
			{Var: phi, Coeff: 1}, {Var: lVars[i], Coeff: -1}, {Var: dVars[i], Coeff: -1},
		}, lp.GE, -1, "phibound"); err != nil {
			return nil, err
		}
	}
	// (5), flows in deterministic order
	perFlow := make(map[routing.FlowID][]lp.Term)
	for i, c := range classes {
		perFlow[c.Flow] = append(perFlow[c.Flow], lp.Term{Var: dVars[i], Coeff: c.Prob})
	}
	exactFlows := make([]routing.FlowID, 0, len(perFlow))
	for f := range perFlow {
		exactFlows = append(exactFlows, f)
	}
	sort.Slice(exactFlows, func(i, j int) bool { return exactFlows[i] < exactFlows[j] })
	for _, f := range exactFlows {
		if _, err := m.AddConstraint(perFlow[f], lp.GE, in.Beta, fmt.Sprintf("beta_f%d", f)); err != nil {
			return nil, err
		}
	}
	if _, err := m.AddUpperBound(phi, 1, "phi<=1"); err != nil {
		return nil, err
	}
	sol := m.SolveMIP(lp.MIPOptions{MaxNodes: nodeLimit})
	truncated := false
	switch sol.Status {
	case lp.Optimal:
	case lp.StatusIterLimit, lp.Truncated:
		// Node or work limit hit. The incumbent (if any) is feasible but
		// uncertified; a fractional relaxation point is unusable — in that
		// case surface a typed Truncation instead of a generic error so
		// callers can raise the limit or fall back deliberately.
		for _, v := range dVars {
			x := sol.X[v]
			if x > 1e-6 && x < 1-1e-6 {
				return nil, &Truncation{Stage: "exact", Limit: "nodes"}
			}
		}
		truncated = true
	default:
		return nil, fmt.Errorf("core: exact MIP %v", sol.Status)
	}
	alloc := make(te.Allocation)
	for tid, v := range tunnelVar {
		if x := sol.X[v]; x > 1e-9 {
			alloc[tid] = x
		}
	}
	res := &Result{Alloc: alloc, Phi: sol.X[phi], Selected: make([]bool, len(classes)), Truncated: truncated}
	for i, v := range dVars {
		res.Selected[i] = sol.X[v] > 0.5
	}
	res.LB, res.UB = res.Phi, res.Phi
	return res, nil
}
