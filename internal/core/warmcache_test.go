package core

import (
	"reflect"
	"testing"

	"prete/internal/obs"
	"prete/internal/scenario"
	"prete/internal/te"
)

// cacheInput builds a triangle instance over explicit probabilities with no
// cutoff or cap pressure, so probability drift can never change which
// scenarios are enumerated — the controlled environment for exercising the
// prob-only reuse path.
func cacheInput(t *testing.T, probs []float64) *te.Input {
	t.Helper()
	net, ts := triangle(t)
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 0, MaxFailures: 2, MaxScenarios: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return &te.Input{
		Net: net, Tunnels: ts,
		Demands:   te.Demands{5, 5},
		Scenarios: set, Beta: 0.99,
	}
}

// TestWarmCacheHitBitIdentical pins the headline determinism contract: on
// an unchanged scenario set, SolveCached returns a result bit-identical to
// a cold Solve — and the cached copy is isolated from caller mutation.
func TestWarmCacheHitBitIdentical(t *testing.T) {
	in := realInput(t, "B4", 7)
	cold, err := DefaultOptimizer().Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptimizer()
	cache := &SolveCache{}
	first, err := o.SolveCached(in, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, cold) {
		t.Fatalf("first SolveCached diverges from cold Solve")
	}
	hit, err := o.SolveCached(in, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hit, cold) {
		t.Fatalf("cache hit diverges from cold Solve")
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Revalidations != 0 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 miss then 1 hit", st)
	}
	if st.LastDelta.Class != scenario.DeltaUnchanged {
		t.Fatalf("last delta %v, want unchanged", st.LastDelta.Class)
	}
	// Mutating a returned result must not poison the cache.
	for tid := range hit.Alloc {
		hit.Alloc[tid] = -1
		break
	}
	hit2, err := o.SolveCached(in, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hit2, cold) {
		t.Fatalf("cache state aliased a caller-mutated result")
	}
}

// TestWarmCacheHitAcrossParallelism extends the bit-identity contract over
// shard/worker counts: whatever Parallelism the optimizer runs at, hits
// agree with the serial cold solve.
func TestWarmCacheHitAcrossParallelism(t *testing.T) {
	in := realInput(t, "B4", 11)
	serial := DefaultOptimizer()
	serial.Parallelism = 1
	cold, err := serial.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 8} {
		o := DefaultOptimizer()
		o.Parallelism = p
		cache := &SolveCache{}
		if _, err := o.SolveCached(in, cache); err != nil {
			t.Fatalf("p=%d cold: %v", p, err)
		}
		hit, err := o.SolveCached(in, cache)
		if err != nil {
			t.Fatalf("p=%d hit: %v", p, err)
		}
		if !reflect.DeepEqual(hit, cold) {
			t.Fatalf("p=%d: cached result diverges from serial cold solve", p)
		}
	}
}

// TestWarmCacheProbOnlyRevalidates drives the interesting middle rung:
// probability drift that preserves the scenario structure must reuse the
// cut pool (not evict), converge at least as fast as a cold solve, and land
// on the same optimum.
func TestWarmCacheProbOnlyRevalidates(t *testing.T) {
	probs := []float64{0.005, 0.009, 0.001}
	in := cacheInput(t, probs)
	o := DefaultOptimizer()
	cache := &SolveCache{}
	if _, err := o.SolveCached(in, cache); err != nil {
		t.Fatal(err)
	}

	drifted := []float64{0.006, 0.008, 0.0012}
	in2 := cacheInput(t, drifted)
	warm, err := o.SolveCached(in2, cache)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Revalidations != 1 {
		t.Fatalf("stats = %+v, want 1 revalidation", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("prob-only drift evicted the cache: %+v", st)
	}
	if st.LastDelta.Class != scenario.DeltaProbOnly {
		t.Fatalf("last delta %v, want prob-only", st.LastDelta.Class)
	}
	if st.CutsReused == 0 {
		t.Fatalf("revalidation reused no cuts")
	}

	cold, err := DefaultOptimizer().Solve(in2)
	if err != nil {
		t.Fatal(err)
	}
	// The warm solve takes a different path through cut space, so the
	// allocation vertex may differ — but both must reach the same optimal
	// loss bound (within the Benders convergence tolerance) feasibly.
	if diff := warm.Phi - cold.Phi; diff > o.Epsilon+1e-9 || diff < -(o.Epsilon+1e-9) {
		t.Fatalf("warm phi %v vs cold phi %v beyond epsilon", warm.Phi, cold.Phi)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm solve took %d iterations, cold %d — warm start regressed convergence",
			warm.Iterations, cold.Iterations)
	}
	checkFeasible(t, in2, warm.Alloc)
}

// TestWarmCacheStructuralEvicts: a structural scenario change must evict —
// reusing cuts indexed against a vanished class would be a silent-wrong-
// answer bug — and the post-eviction solve must match a cold solve exactly.
func TestWarmCacheStructuralEvicts(t *testing.T) {
	in := cacheInput(t, []float64{0.005, 0.009, 0.001})
	o := DefaultOptimizer()
	cache := &SolveCache{}
	if _, err := o.SolveCached(in, cache); err != nil {
		t.Fatal(err)
	}

	// Zeroing a fiber's probability removes every scenario cutting it.
	in2 := cacheInput(t, []float64{0.005, 0.009, 0})
	got, err := o.SolveCached(in2, cache)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Evictions != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want eviction + cold miss", st)
	}
	if st.LastDelta.Class != scenario.DeltaStructural {
		t.Fatalf("last delta %v, want structural", st.LastDelta.Class)
	}
	cold, err := DefaultOptimizer().Solve(in2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cold) {
		t.Fatalf("post-eviction solve diverges from cold solve")
	}
}

// TestWarmCacheInputChangeEvicts: changes outside the scenario set —
// demands, beta, solver budget — must evict even when the scenario set is
// bit-identical, because cut coefficients embed demands and capacities.
func TestWarmCacheInputChangeEvicts(t *testing.T) {
	probs := []float64{0.005, 0.009, 0.001}
	base := cacheInput(t, probs)
	o := DefaultOptimizer()

	mutate := []struct {
		name string
		in   func() *te.Input
		opt  func() *Optimizer
	}{
		{"demand", func() *te.Input {
			in := cacheInput(t, probs)
			in.Demands = te.Demands{7, 5}
			return in
		}, func() *Optimizer { return DefaultOptimizer() }},
		{"beta", func() *te.Input {
			in := cacheInput(t, probs)
			in.Beta = 0.98
			return in
		}, func() *Optimizer { return DefaultOptimizer() }},
		{"budget", func() *te.Input { return cacheInput(t, probs) }, func() *Optimizer {
			o2 := DefaultOptimizer()
			o2.BudgetUnits = 100000
			return o2
		}},
	}
	for _, mc := range mutate {
		cache := &SolveCache{}
		if _, err := o.SolveCached(base, cache); err != nil {
			t.Fatalf("%s: prime: %v", mc.name, err)
		}
		in2, o2 := mc.in(), mc.opt()
		got, err := o2.SolveCached(in2, cache)
		if err != nil {
			t.Fatalf("%s: %v", mc.name, err)
		}
		st := cache.Stats()
		if st.Evictions != 1 {
			t.Fatalf("%s change did not evict: %+v", mc.name, st)
		}
		if st.Hits != 0 || st.Revalidations != 0 {
			t.Fatalf("%s change reused cached state: %+v", mc.name, st)
		}
		cold, err := o2.Solve(in2)
		if err != nil {
			t.Fatalf("%s: cold: %v", mc.name, err)
		}
		if !reflect.DeepEqual(got, cold) {
			t.Fatalf("%s: post-eviction solve diverges from cold", mc.name)
		}
	}
}

// TestWarmCacheNilCache: a nil cache degenerates to Solve exactly.
func TestWarmCacheNilCache(t *testing.T) {
	in := cacheInput(t, []float64{0.005, 0.009, 0.001})
	o := DefaultOptimizer()
	got, err := o.SolveCached(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DefaultOptimizer().Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SolveCached(nil cache) diverges from Solve")
	}
}

// TestWarmCacheReset: Reset forces the next call cold.
func TestWarmCacheReset(t *testing.T) {
	in := cacheInput(t, []float64{0.005, 0.009, 0.001})
	o := DefaultOptimizer()
	cache := &SolveCache{}
	if _, err := o.SolveCached(in, cache); err != nil {
		t.Fatal(err)
	}
	cache.Reset()
	if _, err := o.SolveCached(in, cache); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("post-Reset stats = %+v, want a single cold miss", st)
	}
}

// TestWarmCacheMetrics: the core.warmcache.* series mirror the cache's own
// counters, and enabling metrics does not perturb results.
func TestWarmCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	o := DefaultOptimizer()
	o.Metrics = reg
	cache := &SolveCache{}

	in := cacheInput(t, []float64{0.005, 0.009, 0.001})
	if _, err := o.SolveCached(in, cache); err != nil {
		t.Fatal(err)
	}
	if _, err := o.SolveCached(in, cache); err != nil {
		t.Fatal(err)
	}
	in2 := cacheInput(t, []float64{0.006, 0.009, 0.001})
	if _, err := o.SolveCached(in2, cache); err != nil {
		t.Fatal(err)
	}
	in3 := cacheInput(t, []float64{0.006, 0, 0.001})
	if _, err := o.SolveCached(in3, cache); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	want := map[string]int64{
		"core.warmcache.misses":      2,
		"core.warmcache.hits":        1,
		"core.warmcache.revalidated": 1,
		"core.warmcache.evictions":   1,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if snap.Counters["core.warmcache.cuts_reused"] == 0 {
		t.Errorf("core.warmcache.cuts_reused stayed 0 across a revalidation")
	}
}

// TestRemapCuts covers the pure permutation logic, including refusal cases.
func TestRemapCuts(t *testing.T) {
	cuts := []bendersCut{{coef: []float64{1, 2, 3}, con: 4, value: 5}}
	old := []string{"a", "b", "c"}

	got := remapCuts(cuts, old, []string{"c", "a", "b"})
	if got == nil {
		t.Fatal("pure permutation refused")
	}
	if want := []float64{3, 1, 2}; !reflect.DeepEqual(got[0].coef, want) {
		t.Fatalf("remapped coef %v, want %v", got[0].coef, want)
	}
	if got[0].con != 4 || got[0].value != 5 {
		t.Fatalf("constants not carried: %+v", got[0])
	}
	// Mutating the remapped cut must not touch the source pool.
	got[0].coef[0] = 99
	if cuts[0].coef[2] == 99 {
		t.Fatal("remap aliased the source coefficient array")
	}

	if remapCuts(cuts, old, []string{"a", "b"}) != nil {
		t.Fatal("length mismatch accepted")
	}
	if remapCuts(cuts, old, []string{"a", "b", "x"}) != nil {
		t.Fatal("unknown key accepted")
	}
	if remapCuts(cuts, []string{"a", "a", "c"}, []string{"a", "a", "c"}) != nil {
		t.Fatal("duplicate keys accepted")
	}
}

// FuzzWarmCache fuzzes the determinism contract: for any generatable
// instance, a cache hit on an unchanged scenario set must be bit-identical
// to the cold solve that populated it.
func FuzzWarmCache(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 4, 100, 8, 50, 2, 1, 0, 2, 1, 9, 9, 9, 30, 40, 50, 1, 0})
	f.Add([]byte{5, 2, 0, 3, 1, 4, 77, 12, 200, 3, 2, 2, 150, 150, 10, 20, 30, 40, 50, 60, 255, 128})
	f.Add([]byte{2, 9, 1, 7, 3, 60, 60, 2, 2, 80, 10, 10, 5, 5, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		in := fuzzInput(t, r)
		o := DefaultOptimizer()
		o.MaxIters = 8
		o.MasterNodes = 200
		o.BudgetUnits = int64(r.byte()) << 2 // 0 = unlimited, else small budgets
		cold, err := o.Solve(in)
		if err != nil {
			return // validation / infeasibility errors are legitimate
		}
		cache := &SolveCache{}
		first, err := o.SolveCached(in, cache)
		if err != nil {
			t.Fatalf("SolveCached cold errored where Solve succeeded: %v", err)
		}
		if !reflect.DeepEqual(first, cold) {
			t.Fatalf("cold SolveCached diverges from Solve")
		}
		hit, err := o.SolveCached(in, cache)
		if err != nil {
			t.Fatalf("cache hit errored: %v", err)
		}
		if !reflect.DeepEqual(hit, cold) {
			t.Fatalf("cache hit diverges from cold solve (truncated=%v fallback=%v)",
				cold.Truncated, cold.Fallback)
		}
		st := cache.Stats()
		if st.Hits != 1 || st.Misses != 1 {
			t.Fatalf("stats = %+v, want exactly 1 miss + 1 hit", st)
		}
	})
}
