package core

import (
	"math"
	"reflect"
	"testing"

	"prete/internal/te"
	"prete/internal/topology"
)

func TestResidualNetwork(t *testing.T) {
	net, _ := triangle(t)
	res := residualNetwork(net, map[topology.LinkID]float64{0: 4, 2: 25})
	if got := res.Link(0).Capacity; got != 6 {
		t.Errorf("link 0 residual = %v, want 6", got)
	}
	if got := res.Link(2).Capacity; got != 0 {
		t.Errorf("link 2 residual = %v, want 0 (clamped)", got)
	}
	if got := res.Link(1).Capacity; got != 10 {
		t.Errorf("link 1 residual = %v, want untouched 10", got)
	}
	if net.Link(0).Capacity != 10 {
		t.Errorf("original network mutated: link 0 = %v", net.Link(0).Capacity)
	}
	if same := residualNetwork(net, nil); same != net {
		t.Error("empty loads should return the input network")
	}
	// Topology indices are shared and still work on the clone.
	if got := len(res.LinksOnFiber(0)); got != 2 {
		t.Errorf("clone LinksOnFiber(0) = %d links, want 2", got)
	}
}

func TestSolveClassedStrictPriority(t *testing.T) {
	in := triangleInput(t, 12, []float64{0.02, 0.01, 0.01}, 0.9)
	opt := DefaultOptimizer()
	spec := te.DefaultClassSpec()
	cr, err := opt.SolveClassed(in, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Tiers) != 3 {
		t.Fatalf("got %d tiers, want 3", len(cr.Tiers))
	}
	// The top tier is bit-identical to a uniform solve of its split alone:
	// strict priority means lower tiers cannot influence it.
	topIn := *in
	topIn.Demands = spec.SplitDemands(in.Demands)[0]
	want, err := opt.Solve(&topIn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.Tiers[0].Res, want) {
		t.Errorf("top tier diverges from standalone solve:\n got %+v\nwant %+v", cr.Tiers[0].Res, want)
	}
	// The merged allocation is the per-tunnel sum of the tier allocations
	// and respects the real network's capacity.
	merged := make(te.Allocation)
	for _, tier := range cr.Tiers {
		for tid, amt := range tier.Res.Alloc {
			if amt > 0 {
				merged[tid] += amt
			}
		}
	}
	if !reflect.DeepEqual(merged, cr.Alloc) {
		t.Errorf("merged alloc mismatch:\n got %v\nwant %v", cr.Alloc, merged)
	}
	if err := te.CheckCapacity(in.Net, &te.Plan{Alloc: cr.Alloc, Tunnels: in.Tunnels}); err != nil {
		t.Errorf("merged allocation overloads the network: %v", err)
	}
	// WeightedLoss is a convex combination of the tier losses.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, tier := range cr.Tiers {
		lo = math.Min(lo, tier.Res.Phi)
		hi = math.Max(hi, tier.Res.Phi)
	}
	if cr.WeightedLoss < lo-1e-12 || cr.WeightedLoss > hi+1e-12 {
		t.Errorf("WeightedLoss %v outside tier phi range [%v, %v]", cr.WeightedLoss, lo, hi)
	}
	// Offered per tier sums to the input demand total.
	var offered, total float64
	for _, tier := range cr.Tiers {
		offered += tier.Offered
	}
	for _, d := range in.Demands {
		total += d
	}
	if math.Abs(offered-total) > 1e-9 {
		t.Errorf("tier offered sums to %v, want %v", offered, total)
	}
}

func TestSolveClassedDeterministicAcrossParallelism(t *testing.T) {
	in := triangleInput(t, 12, []float64{0.02, 0.01, 0.015}, 0.9)
	spec := te.DefaultClassSpec()
	opt1 := DefaultOptimizer()
	opt1.Parallelism = 1
	opt4 := DefaultOptimizer()
	opt4.Parallelism = 4
	r1, err := opt1.SolveClassed(in, spec)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := opt4.SolveClassed(in, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Errorf("classed solve differs across parallelism:\n p1 %+v\n p4 %+v", r1, r4)
	}
}

func TestSolveClassedUniformSpecMatchesPlainSolve(t *testing.T) {
	in := triangleInput(t, 8, []float64{0.005, 0.009, 0.001}, 0.99)
	opt := DefaultOptimizer()
	cr, err := opt.SolveClassed(in, te.UniformClassSpec())
	if err != nil {
		t.Fatal(err)
	}
	want, err := opt.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Tiers) != 1 {
		t.Fatalf("got %d tiers, want 1", len(cr.Tiers))
	}
	if !reflect.DeepEqual(cr.Tiers[0].Res, want) {
		t.Errorf("single-tier classed solve != plain solve")
	}
	if cr.WeightedLoss != want.Phi {
		t.Errorf("WeightedLoss %v != Phi %v", cr.WeightedLoss, want.Phi)
	}
}

func TestSolveClassedCachedMatchesCold(t *testing.T) {
	in := triangleInput(t, 12, []float64{0.02, 0.01, 0.01}, 0.9)
	spec := te.DefaultClassSpec()
	opt := DefaultOptimizer()
	cold, err := opt.SolveClassed(in, spec)
	if err != nil {
		t.Fatal(err)
	}
	caches := make([]*SolveCache, len(spec.Tiers))
	for i := range caches {
		caches[i] = &SolveCache{}
	}
	first, err := opt.SolveClassedCached(in, spec, caches)
	if err != nil {
		t.Fatal(err)
	}
	second, err := opt.SolveClassedCached(in, spec, caches)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, first) || !reflect.DeepEqual(cold, second) {
		t.Error("cached classed solve diverges from cold solve")
	}
	for k, c := range caches {
		if st := c.Stats(); st.Hits == 0 {
			t.Errorf("tier %d cache never hit: %+v", k, st)
		}
	}
	// Mismatched cache count is rejected, not silently dropped.
	if _, err := opt.SolveClassedCached(in, spec, caches[:1]); err == nil {
		t.Error("want error for wrong cache count")
	}
}

func TestPlanEpochClassed(t *testing.T) {
	net, ts := sparseTriangle(t)
	p := New()
	spec := te.DefaultClassSpec()
	in := EpochInput{
		Net: net, Tunnels: ts,
		Demands: te.Demands{8, 8},
		Beta:    0.9,
		PI:      []float64{0.005, 0.005, 0.005},
		Signals: []DegradationSignal{{Fiber: 0, PNN: 0.9}},
	}
	ep, err := p.PlanEpochClassed(in, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Plans) != 3 {
		t.Fatalf("got %d plans, want 3", len(ep.Plans))
	}
	if ep.Update == nil || ep.Update.NewTunnels == 0 {
		t.Error("degradation signal should establish new tunnels (Algorithm 1)")
	}
	// The prep stages are shared with PlanEpoch: same calibration.
	uni, err := p.PlanEpoch(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ep.Calibrated, uni.Calibrated) {
		t.Errorf("calibrated probs diverge: %v vs %v", ep.Calibrated, uni.Calibrated)
	}
	// The protected tier survives the predicted cut: its plan satisfies
	// its split of every flow's demand with fiber 0 down.
	cut := map[topology.FiberID]bool{0: true}
	lcDemands := ep.Classed.Tiers[0].Demands
	for f, d := range lcDemands {
		if !te.Satisfied(ep.Plans[0], ts.Flows[f].ID, d, cut) {
			t.Errorf("protected tier flow %d unsatisfied under predicted cut (demand %v)", f, d)
		}
	}
}
