package core

import (
	"math"
	"testing"

	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

// triangle replicates the §2.2 network: 3 nodes, 3 fibers x 10 units.
func triangle(t *testing.T) (*topology.Network, *routing.TunnelSet) {
	t.Helper()
	nodes := []topology.Node{{ID: 0, Name: "s1"}, {ID: 1, Name: "s2"}, {ID: 2, Name: "s3"}}
	fibers := []topology.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 100},
		{ID: 1, A: 0, B: 2, LengthKm: 100},
		{ID: 2, A: 1, B: 2, LengthKm: 100},
	}
	var links []topology.Link
	add := func(src, dst topology.NodeID, f topology.FiberID) {
		links = append(links, topology.Link{
			ID: topology.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 10, Fibers: []topology.FiberID{f},
		})
	}
	add(0, 1, 0)
	add(1, 0, 0)
	add(0, 2, 1)
	add(2, 0, 1)
	add(1, 2, 2)
	add(2, 1, 2)
	net, err := topology.New("triangle", nodes, fibers, links)
	if err != nil {
		t.Fatal(err)
	}
	flows := []routing.Flow{{ID: 0, Src: 0, Dst: 1}, {ID: 1, Src: 0, Dst: 2}}
	ts, err := routing.BuildTunnels(net, flows, 2)
	if err != nil {
		t.Fatal(err)
	}
	return net, ts
}

// sparseTriangle matches the §2.2/§3.3 figures exactly: flow s1->s2 starts
// with ONE tunnel (the direct path), so Algorithm 1 has a new path
// (s1->s3->s2) to establish when fiber s1s2 degrades.
func sparseTriangle(t *testing.T) (*topology.Network, *routing.TunnelSet) {
	t.Helper()
	net, _ := triangle(t)
	flows := []routing.Flow{{ID: 0, Src: 0, Dst: 1}, {ID: 1, Src: 0, Dst: 2}}
	ts, err := routing.BuildTunnels(net, flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net, ts
}

func triangleInput(t *testing.T, demand float64, probs []float64, beta float64) *te.Input {
	net, ts := triangle(t)
	set, err := scenario.Enumerate(probs, scenario.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &te.Input{
		Net: net, Tunnels: ts,
		Demands:   te.Demands{demand, demand},
		Scenarios: set, Beta: beta,
	}
}

func TestBuildClasses(t *testing.T) {
	in := triangleInput(t, 5, []float64{0.005, 0.009, 0.001}, 0.99)
	classes := BuildClasses(in.Tunnels, in.Scenarios)
	// probabilities per flow must sum to the covered mass
	perFlow := make(map[routing.FlowID]float64)
	for _, c := range classes {
		perFlow[c.Flow] += c.Prob
	}
	for f, mass := range perFlow {
		if math.Abs(mass-in.Scenarios.Covered) > 1e-9 {
			t.Errorf("flow %d class mass %v != covered %v", f, mass, in.Scenarios.Covered)
		}
	}
	// each flow has at least the "all tunnels" class and a degraded class
	count := make(map[routing.FlowID]int)
	for _, c := range classes {
		count[c.Flow]++
	}
	for f, n := range count {
		if n < 2 {
			t.Errorf("flow %d has only %d classes", f, n)
		}
	}
}

func TestPaperExampleTeaVar(t *testing.T) {
	// §2.2: p = (0.005, 0.009, 0.001), beta = 99%, demands 10+10.
	// TeaVar's optimal admissible traffic is 10 units total: rate-limit
	// both flows so no covered scenario sees loss. At demand 10 per flow
	// the triangle cannot protect both, so Phi > 0; at demand 5 per flow
	// the allocation of Fig 2(b) achieves Phi = 0.
	in5 := triangleInput(t, 5, []float64{0.005, 0.009, 0.001}, 0.99)
	res, err := DefaultOptimizer().Solve(in5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi > 1e-6 {
		t.Fatalf("Phi at demand 5 = %v, want 0 (Fig 2b supports 10 total units)", res.Phi)
	}
	// At demand 10 per flow, the per-flow formulation (constraint 5 is
	// "forall f", unlike classic TeaVaR's joint coverage in the §2.2
	// walkthrough) still reaches Phi = 0 by leaving each flow's rarest
	// failure class unselected — but only by saturating the direct fibers,
	// so the selected classes cannot include any single-cut scenario for
	// either direct fiber.
	in10 := triangleInput(t, 10, []float64{0.005, 0.009, 0.001}, 0.99)
	res10, err := DefaultOptimizer().Solve(in10)
	if err != nil {
		t.Fatal(err)
	}
	if res10.Phi > 1e-6 {
		t.Fatalf("Phi at demand 10 = %v under per-flow coverage, want 0", res10.Phi)
	}
	// Tightening beta beyond the deselection headroom forces loss: at
	// beta = 0.999 the fiber-cut classes cannot all be skipped.
	inTight := triangleInput(t, 10, []float64{0.005, 0.009, 0.001}, 0.999)
	resTight, err := DefaultOptimizer().Solve(inTight)
	if err != nil {
		t.Fatal(err)
	}
	if resTight.Phi < 0.1 {
		t.Fatalf("Phi at demand 10, beta 0.999 = %v; protection must cost throughput", resTight.Phi)
	}
}

func TestOracularProbabilities(t *testing.T) {
	// §2.2's oracular system: if link s1s2's failure probability is known
	// to be 0, the optimizer can use its full capacity: demand 10 + 10
	// with protection only for s1s3's failure modes.
	in := triangleInput(t, 10, []float64{0, 0.009, 0.001}, 0.99)
	res, err := DefaultOptimizer().Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// flow 0 (s1->s2) can ride s1s2 fully; flow 1 (s1->s3) has 10 units
	// over two fiber-disjoint tunnels. With beta=0.99 and only s1s3/s2s3
	// failure modes, full service is achievable by ignoring the rare
	// double-failure scenario.
	if res.Phi > 1e-6 {
		t.Fatalf("oracle Phi = %v, want 0 (total throughput 20, Fig 3b)", res.Phi)
	}
}

func TestBendersMatchesExact(t *testing.T) {
	cases := []struct {
		demand float64
		probs  []float64
		beta   float64
	}{
		{5, []float64{0.005, 0.009, 0.001}, 0.99},
		{8, []float64{0.005, 0.009, 0.001}, 0.99},
		{10, []float64{0.005, 0.009, 0.001}, 0.99},
		{10, []float64{0.05, 0.09, 0.01}, 0.9},
		{12, []float64{0.005, 0.009, 0.001}, 0.995},
	}
	for i, c := range cases {
		in := triangleInput(t, c.demand, c.probs, c.beta)
		benders, err := DefaultOptimizer().Solve(in)
		if err != nil {
			t.Fatalf("case %d benders: %v", i, err)
		}
		exact, err := SolveExact(in, 100000)
		if err != nil {
			t.Fatalf("case %d exact: %v", i, err)
		}
		if math.Abs(benders.Phi-exact.Phi) > 1e-3 {
			t.Errorf("case %d: Benders Phi %v != exact %v", i, benders.Phi, exact.Phi)
		}
	}
}

func TestBendersBoundsAndCapacity(t *testing.T) {
	in := triangleInput(t, 9, []float64{0.01, 0.02, 0.005}, 0.99)
	res, err := DefaultOptimizer().Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.UB < res.LB-1e-6 {
		t.Fatalf("UB %v < LB %v", res.UB, res.LB)
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
	plan := &te.Plan{Alloc: res.Alloc, Tunnels: in.Tunnels}
	if err := te.CheckCapacity(in.Net, plan); err != nil {
		t.Fatal(err)
	}
}

func TestInfeasibleBeta(t *testing.T) {
	// beta above the covered scenario mass must be reported, not silently
	// mis-optimized.
	net, ts := triangle(t)
	set, err := scenario.Enumerate([]float64{0.4, 0.4, 0.4}, scenario.Options{
		Cutoff: 0.5, MaxFailures: 1, MaxScenarios: 1, // only the empty scenario, mass ~0.216
	})
	if err != nil {
		t.Fatal(err)
	}
	in := &te.Input{Net: net, Tunnels: ts, Demands: te.Demands{1, 1}, Scenarios: set, Beta: 0.99}
	if _, err := DefaultOptimizer().Solve(in); err == nil {
		t.Fatal("unreachable beta accepted")
	}
}

func TestUpdateTunnelsAlgorithm1(t *testing.T) {
	_, ts := sparseTriangle(t)
	before := ts.NumTunnels()
	// Degrade fiber 0 (s1s2): flow 0's direct tunnel and flow 1's backup
	// tunnel s1->s2->s3 (if present) are affected.
	res, err := UpdateTunnels(ts, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewTunnels == 0 {
		t.Fatal("no tunnels established for a degradation on a used fiber")
	}
	if len(res.AffectedFlows) == 0 {
		t.Fatal("no affected flows found")
	}
	// New tunnels must avoid the degraded fiber (the §3.3 example: flow
	// s1s2 gets tunnel s1->s3->s2).
	for _, tn := range res.Tunnels.Tunnels {
		if tn.New && tn.UsesFiber(0) {
			t.Fatalf("reactive tunnel %d still crosses the degraded fiber", tn.ID)
		}
	}
	// Original set untouched.
	if ts.NumTunnels() != before {
		t.Fatal("UpdateTunnels mutated the pre-established table")
	}
	// Restoring drops the reactive tunnels.
	restored := res.Tunnels.DropReactive()
	if restored.NumTunnels() != before {
		t.Fatalf("restore kept %d tunnels, want %d", restored.NumTunnels(), before)
	}
}

func TestUpdateTunnelsRatio(t *testing.T) {
	_, ts := sparseTriangle(t)
	zero, err := UpdateTunnels(ts, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.NewTunnels != 0 {
		t.Fatal("ratio 0 should establish nothing (PreTE-naive)")
	}
	if len(zero.AffectedFlows) == 0 {
		t.Fatal("ratio 0 should still report affected flows")
	}
	if _, err := UpdateTunnels(ts, 0, -1); err == nil {
		t.Fatal("negative ratio accepted")
	}
	if _, err := UpdateTunnels(ts, 99, 1); err == nil {
		t.Fatal("out-of-range fiber accepted")
	}
}

func TestUpdateTunnelsOnB4(t *testing.T) {
	net, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := UpdateTunnels(ts, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1c / §6.3: tens of tunnels per event on B4-scale networks.
	if res.NewTunnels < 5 {
		t.Fatalf("only %d new tunnels on B4", res.NewTunnels)
	}
	for _, tn := range res.Tunnels.Tunnels {
		if !tn.New {
			continue
		}
		if tn.UsesFiber(0) {
			t.Fatal("reactive tunnel crosses the degraded fiber")
		}
		fl := res.Tunnels.Flows[tn.Flow]
		if err := routing.ValidatePath(net, fl.Src, fl.Dst, tn.Links); err != nil {
			t.Fatalf("invalid reactive tunnel: %v", err)
		}
	}
}

// TestPreTEBeatsTeaVarUnderDegradation reproduces the §3.3 example: when
// link s1s2 degrades (high failure probability), PreTE's new tunnels keep
// throughput that TeaVar cannot.
func TestPreTEBeatsTeaVarUnderDegradation(t *testing.T) {
	net, ts := sparseTriangle(t)
	pi := []float64{0.005, 0.009, 0.001}
	signals := []DegradationSignal{{Fiber: 0, PNN: 0.9}}
	demand := te.Demands{5, 5}

	prete := New()
	ep, err := prete.PlanEpoch(EpochInput{
		Net: net, Tunnels: ts, Demands: demand, Beta: 0.99, PI: pi, Signals: signals,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Update == nil || ep.Update.NewTunnels == 0 {
		t.Fatal("PreTE did not establish tunnels on degradation")
	}
	// Calibrated probability of the degraded fiber must be the NN output.
	if ep.Calibrated[0] != 0.9 {
		t.Fatalf("calibrated p(fiber0) = %v, want 0.9", ep.Calibrated[0])
	}
	// Theorem 4.1: others drop by (1 - alpha).
	if math.Abs(ep.Calibrated[1]-0.75*0.009) > 1e-12 {
		t.Fatalf("calibrated p(fiber1) = %v", ep.Calibrated[1])
	}

	teavar := NewTeaVar()
	tvEp, err := teavar.PlanEpoch(EpochInput{
		Net: net, Tunnels: ts, Demands: demand, Beta: 0.99, PI: pi, Signals: signals,
	})
	if err != nil {
		t.Fatal(err)
	}
	// When the degraded fiber actually cuts, PreTE's plan (with its
	// s1->s3->s2 tunnel) still serves both flows; TeaVar loses flow 0's
	// direct-tunnel share (Fig 2c vs Fig 7b).
	cut := map[topology.FiberID]bool{0: true}
	preDelivered := te.Delivered(ep.Plan, 0, 5, cut)
	tvDelivered := te.Delivered(tvEp.Plan, 0, 5, cut)
	if preDelivered < 5-1e-6 {
		t.Fatalf("PreTE delivers %v to the degraded flow after the cut, want 5", preDelivered)
	}
	if tvDelivered >= preDelivered {
		t.Fatalf("TeaVar (%v) should deliver less than PreTE (%v) after the predicted cut", tvDelivered, preDelivered)
	}
}

func TestTeaVarIgnoresSignals(t *testing.T) {
	net, ts := triangle(t)
	pi := []float64{0.005, 0.009, 0.001}
	teavar := NewTeaVar()
	ep, err := teavar.PlanEpoch(EpochInput{
		Net: net, Tunnels: ts, Demands: te.Demands{3, 3}, Beta: 0.99, PI: pi,
		Signals: []DegradationSignal{{Fiber: 0, PNN: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Update != nil {
		t.Fatal("TeaVar established tunnels")
	}
	for i, p := range ep.Calibrated {
		if p != pi[i] {
			t.Fatalf("TeaVar calibrated p[%d] = %v, want static %v", i, p, pi[i])
		}
	}
}

func TestPreTENaive(t *testing.T) {
	net, ts := triangle(t)
	naive := NewNaive()
	ep, err := naive.PlanEpoch(EpochInput{
		Net: net, Tunnels: ts, Demands: te.Demands{3, 3}, Beta: 0.99,
		PI:      []float64{0.005, 0.009, 0.001},
		Signals: []DegradationSignal{{Fiber: 0, PNN: 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Update != nil && ep.Update.NewTunnels > 0 {
		t.Fatal("PreTE-naive established tunnels")
	}
	// ...but it still calibrates.
	if ep.Calibrated[0] != 0.9 {
		t.Fatalf("naive calibration = %v", ep.Calibrated[0])
	}
}

func TestPlanEpochValidation(t *testing.T) {
	net, ts := triangle(t)
	p := New()
	if _, err := p.PlanEpoch(EpochInput{
		Net: net, Tunnels: ts, Demands: te.Demands{1, 1}, Beta: 0.99,
		PI: []float64{0.1}, // wrong length
	}); err == nil {
		t.Fatal("mismatched PI accepted")
	}
}

func TestNames(t *testing.T) {
	if New().Name() != "PreTE" || NewTeaVar().Name() != "TeaVar" || NewNaive().Name() != "PreTE-naive" {
		t.Fatal("scheme names wrong")
	}
}

// TestBendersOnIBM exercises production scale: the full IBM topology with
// calibrated probabilities and a degradation.
func TestBendersOnIBM(t *testing.T) {
	if testing.Short() {
		t.Skip("IBM-scale Benders in -short mode")
	}
	net, err := topology.IBM()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	w := stats.Weibull{Shape: 0.8, Scale: 0.002}
	pi := make([]float64, len(net.Fibers))
	for i := range pi {
		pi[i] = math.Min(0.05, 1.6*w.Sample(rng))
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 50
	}
	p := New()
	p.ScenarioOpts.MaxScenarios = 400
	ep, err := p.PlanEpoch(EpochInput{
		Net: net, Tunnels: ts, Demands: demands, Beta: 0.99, PI: pi,
		Signals: []DegradationSignal{{Fiber: 3, PNN: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := te.CheckCapacity(net, ep.Plan); err != nil {
		t.Fatal(err)
	}
	if ep.Plan.MaxLoss < 0 || ep.Plan.MaxLoss > 1 {
		t.Fatalf("Phi = %v", ep.Plan.MaxLoss)
	}
}
