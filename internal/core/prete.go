package core

import (
	"fmt"

	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/te"
	"prete/internal/topology"
)

// DegradationSignal is one detected degradation with its NN-predicted
// failure probability (the output of §4.1.1 feeding Fig 8's pipeline).
type DegradationSignal struct {
	Fiber topology.FiberID
	PNN   float64
}

// PreTE is the full system of Fig 8. Configured with Alpha = 0 and
// TunnelRatio = 0 it degenerates to the static probabilistic scheme
// (TeaVaR) exactly as §4.1.2 observes.
type PreTE struct {
	// Opt is the Benders optimizer for Eqns. 2-8.
	Opt *Optimizer
	// Alpha is the fraction of predictable cuts (25% from the paper's
	// measurements); Theorem 4.1 lowers no-degradation probabilities by
	// (1 - Alpha).
	Alpha float64
	// TunnelRatio is the number of new tunnels established per affected
	// tunnel on a degradation signal (§6.4's ratio; 1 by default, 0 for
	// PreTE-naive).
	TunnelRatio float64
	// ScenarioOpts bounds failure-scenario enumeration.
	ScenarioOpts scenario.Options
	label        string
}

// New returns PreTE with the paper's defaults.
func New() *PreTE {
	return &PreTE{
		Opt:          DefaultOptimizer(),
		Alpha:        0.25,
		TunnelRatio:  1,
		ScenarioOpts: scenario.DefaultOptions(),
		label:        "PreTE",
	}
}

// NewNaive returns PreTE-naive (§6.4): degradation-calibrated probabilities
// but no reactive tunnel establishment.
func NewNaive() *PreTE {
	p := New()
	p.TunnelRatio = 0
	p.label = "PreTE-naive"
	return p
}

// NewTeaVar returns the TeaVaR-style static probabilistic scheme: alpha = 0
// (failure probabilities constant across epochs) and no tunnel updates.
func NewTeaVar() *PreTE {
	p := New()
	p.Alpha = 0
	p.TunnelRatio = 0
	p.label = "TeaVar"
	return p
}

// Name implements te.Scheme.
func (p *PreTE) Name() string {
	if p.label == "" {
		return "PreTE"
	}
	return p.label
}

// Plan implements te.Scheme for a pre-built input whose scenario
// probabilities are already calibrated; PlanEpoch is the full pipeline.
func (p *PreTE) Plan(in *te.Input) (*te.Plan, error) {
	res, err := p.Opt.Solve(in)
	if err != nil {
		return nil, err
	}
	return &te.Plan{Alloc: res.Alloc, MaxLoss: res.Phi, Tunnels: in.Tunnels}, nil
}

// EpochInput is the raw state of one TE period before calibration.
type EpochInput struct {
	Net     *topology.Network
	Tunnels *routing.TunnelSet // pre-established tunnels T_f
	Demands te.Demands
	Beta    float64
	// PI are the static per-epoch failure probabilities per fiber.
	PI []float64
	// Signals are the active degradation events with NN predictions;
	// empty on a quiet epoch.
	Signals []DegradationSignal
}

// EpochPlan is the full PreTE output for one TE period.
type EpochPlan struct {
	Plan *te.Plan
	// Update is non-nil when Algorithm 1 ran (degradation present).
	Update *UpdateResult
	// Calibrated are the Eqn. 1 per-fiber failure probabilities used.
	Calibrated []float64
	// Result carries optimizer diagnostics.
	Result *Result
}

// PlanEpoch runs the whole Fig 8 pipeline for one TE period:
//  1. calibrate per-fiber failure probabilities (Eqn. 1);
//  2. on degradation signals, reactively establish new tunnels
//     (Algorithm 1, scaled by TunnelRatio);
//  3. regenerate failure scenarios from the calibrated probabilities;
//  4. solve the unified optimization (Eqns. 2-8) over pre-established and
//     new tunnels with Benders decomposition.
func (p *PreTE) PlanEpoch(in EpochInput) (*EpochPlan, error) {
	return p.planEpoch(in, nil)
}

// PlanEpochCached is PlanEpoch with cross-epoch solve reuse: the optimize
// step goes through Optimizer.SolveCached against cache, so quiet epochs
// (unchanged calibrated probabilities) return the cached plan and
// probability-only drift warm-starts Benders from the previous cut pool. A
// nil cache is exactly PlanEpoch.
func (p *PreTE) PlanEpochCached(in EpochInput, cache *SolveCache) (*EpochPlan, error) {
	return p.planEpoch(in, cache)
}

// epochPrep is the output of the pipeline's pre-optimize stages (calibrate,
// tunnel update, scenario regen), shared by planEpoch and PlanEpochClassed.
type epochPrep struct {
	probs   []float64
	tunnels *routing.TunnelSet
	update  *UpdateResult
	set     *scenario.Set
}

// prepareEpoch runs steps 1-3 of the Fig 8 pipeline: Eqn. 1 calibration,
// Algorithm 1 tunnel establishment per signal, and scenario regeneration.
func (p *PreTE) prepareEpoch(in EpochInput) (*epochPrep, error) {
	if len(in.PI) != len(in.Net.Fibers) {
		return nil, fmt.Errorf("core: %d static probabilities for %d fibers", len(in.PI), len(in.Net.Fibers))
	}
	// Stage timers land in the optimizer's registry (nil-safe no-ops when
	// metrics are disabled); results are unaffected.
	reg := p.Opt.Metrics
	// Step 1: Eqn. 1. A TeaVaR configuration (alpha = 0) ignores signals.
	calT := reg.Timer("core.epoch.calibrate")
	calStart := calT.Start()
	degraded := make(map[topology.FiberID]float64, len(in.Signals))
	if p.Alpha > 0 {
		for _, s := range in.Signals {
			degraded[s.Fiber] = s.PNN
		}
	}
	probs, err := scenario.Calibrated(in.PI, degraded, p.Alpha)
	calT.Stop(calStart)
	if err != nil {
		return nil, err
	}
	// Step 2: Algorithm 1 per degraded fiber.
	updT := reg.Timer("core.epoch.tunnel_update")
	updStart := updT.Start()
	tunnels := in.Tunnels
	var update *UpdateResult
	if p.TunnelRatio > 0 {
		for _, s := range in.Signals {
			res, err := UpdateTunnels(tunnels, s.Fiber, p.TunnelRatio)
			if err != nil {
				return nil, err
			}
			if update == nil {
				update = res
			} else {
				update.Tunnels = res.Tunnels
				update.NewTunnels += res.NewTunnels
				update.AffectedFlows = append(update.AffectedFlows, res.AffectedFlows...)
			}
			tunnels = res.Tunnels
		}
	}
	updT.Stop(updStart)
	if update != nil {
		reg.Counter("core.epoch.new_tunnels").Add(int64(update.NewTunnels))
	}
	// Step 3: regenerate the failure scenarios Q_s.
	regenT := reg.Timer("core.epoch.scenario_regen")
	regenStart := regenT.Start()
	set, err := scenario.Enumerate(probs, p.ScenarioOpts)
	regenT.Stop(regenStart)
	if err != nil {
		return nil, err
	}
	return &epochPrep{probs: probs, tunnels: tunnels, update: update, set: set}, nil
}

func (p *PreTE) planEpoch(in EpochInput, cache *SolveCache) (*EpochPlan, error) {
	prep, err := p.prepareEpoch(in)
	if err != nil {
		return nil, err
	}
	probs, tunnels, update, set := prep.probs, prep.tunnels, prep.update, prep.set
	reg := p.Opt.Metrics
	// Step 4: optimize.
	teIn := &te.Input{
		Net: in.Net, Tunnels: tunnels, Demands: in.Demands,
		Scenarios: set, Beta: in.Beta,
	}
	optT := reg.Timer("core.epoch.optimize")
	optStart := optT.Start()
	var res *Result
	if cache != nil {
		res, err = p.Opt.SolveCached(teIn, cache)
	} else {
		res, err = p.Opt.Solve(teIn)
	}
	optT.Stop(optStart)
	if err != nil {
		return nil, err
	}
	return &EpochPlan{
		Plan:       &te.Plan{Alloc: res.Alloc, MaxLoss: res.Phi, Tunnels: tunnels},
		Update:     update,
		Calibrated: probs,
		Result:     res,
	}, nil
}
