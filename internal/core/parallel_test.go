package core

import (
	"reflect"
	"testing"

	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

// realInput builds a full-topology optimizer input with per-fiber failure
// probabilities drawn from a seeded RNG, at the scale the determinism table
// exercises.
func realInput(t *testing.T, topo string, seed uint64) *te.Input {
	t.Helper()
	net, err := topology.ByName(topo)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	probs := make([]float64, len(net.Fibers))
	for i := range probs {
		probs[i] = 0.001 + 0.02*rng.Float64()
	}
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 200})
	if err != nil {
		t.Fatal(err)
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 20 + 10*rng.Float64()
	}
	return &te.Input{Net: net, Tunnels: ts, Demands: demands, Scenarios: set, Beta: 0.99}
}

func TestBuildClassesParallelMatchesSerial(t *testing.T) {
	for _, topo := range []string{"B4", "IBM"} {
		in := realInput(t, topo, 11)
		want := BuildClassesP(in.Tunnels, in.Scenarios, 1)
		for _, p := range []int{2, 8, 0} {
			got := BuildClassesP(in.Tunnels, in.Scenarios, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: BuildClassesP(%d) diverges from serial (%d vs %d classes)",
					topo, p, len(got), len(want))
			}
		}
	}
}

// TestSolveDeterministicAcrossParallelism is the PR's headline guarantee:
// the Benders solve returns bit-identical results — allocation, objective,
// bounds, iteration count, and scenario selection — at every parallelism
// setting, on both evaluation topologies.
func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	for _, topo := range []string{"B4", "IBM"} {
		in := realInput(t, topo, 23)
		serial := DefaultOptimizer()
		serial.Parallelism = 1
		want, err := serial.Solve(in)
		if err != nil {
			t.Fatalf("%s serial: %v", topo, err)
		}
		for _, p := range []int{2, 8, 0} {
			opt := DefaultOptimizer()
			opt.Parallelism = p
			got, err := opt.Solve(in)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", topo, p, err)
			}
			if !reflect.DeepEqual(got.Alloc, want.Alloc) {
				t.Errorf("%s parallelism %d: allocation diverges", topo, p)
			}
			if got.Phi != want.Phi || got.LB != want.LB || got.UB != want.UB {
				t.Errorf("%s parallelism %d: phi/LB/UB = %v/%v/%v, want %v/%v/%v",
					topo, p, got.Phi, got.LB, got.UB, want.Phi, want.LB, want.UB)
			}
			if got.Iterations != want.Iterations {
				t.Errorf("%s parallelism %d: %d iterations, want %d", topo, p, got.Iterations, want.Iterations)
			}
			if !reflect.DeepEqual(got.Selected, want.Selected) {
				t.Errorf("%s parallelism %d: scenario selection diverges", topo, p)
			}
		}
	}
}
