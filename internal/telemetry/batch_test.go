package telemetry

import (
	"reflect"
	"testing"

	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/topology"
)

// batchSeries synthesizes one degradation episode per fiber with per-fiber
// shapes, including missing samples so Interpolate is on the tested path.
func batchSeries(t *testing.T, net *topology.Network, seed uint64) []FiberSeries {
	t.Helper()
	series := make([]FiberSeries, len(net.Fibers))
	for i := range net.Fibers {
		rng := stats.SubRNG(seed, uint64(i))
		sim := optical.NewFiberSim(net.Fibers[i].LengthKm, rng)
		prof := optical.DegradationProfile{
			DegreeDB:      4 + 4*rng.Float64(),
			GradientDB:    0.05,
			FluctAmpDB:    0.3,
			FluctPeriodS:  20,
			DurationS:     120,
			LeadsToCut:    i%3 == 0,
			CutDelayS:     90,
			RepairS:       30,
			OnsetUnixS:    1700000000 + int64(i)*7,
			MissingSample: 0.05,
		}
		samples, err := sim.EpisodeSeries(prof, 30)
		if err != nil {
			t.Fatalf("fiber %d: %v", i, err)
		}
		series[i] = FiberSeries{Fiber: i, Samples: samples}
	}
	return series
}

// serialReference runs the same pipeline as ProcessBatch with plain loops,
// independently of internal/par, as the ground truth.
func serialReference(t *testing.T, net *topology.Network, series []FiberSeries, confirm int) [][]FiberEvent {
	t.Helper()
	out := make([][]FiberEvent, len(series))
	for i, fs := range series {
		det := NewDetector(confirm)
		var evs []FiberEvent
		for _, s := range Interpolate(fs.Samples) {
			for _, ev := range det.Observe(s) {
				fe := FiberEvent{Event: ev}
				if len(ev.Window) > 0 {
					f := net.Fiber(topology.FiberID(fs.Fiber))
					feats, err := optical.ExtractFeatures(ev.Window, fs.Fiber, f.Region, f.Vendor, f.LengthKm)
					if err != nil {
						t.Fatalf("fiber %d: %v", fs.Fiber, err)
					}
					fe.Features = feats
					fe.HasFeatures = true
				}
				evs = append(evs, fe)
			}
		}
		out[i] = evs
	}
	return out
}

func TestProcessBatchMatchesSerialAtEveryParallelism(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	series := batchSeries(t, net, 7)
	want := serialReference(t, net, series, 2)
	for _, p := range []int{1, 2, 8, 0} {
		got, err := ProcessBatch(net, series, 2, p)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: batch output diverges from serial pipeline", p)
		}
	}
	// Sanity: the synthesized episodes actually produce events with features.
	var events, withFeatures int
	for _, evs := range want {
		events += len(evs)
		for _, ev := range evs {
			if ev.HasFeatures {
				withFeatures++
			}
		}
	}
	if events == 0 || withFeatures == 0 {
		t.Fatalf("degenerate fixture: %d events, %d with features", events, withFeatures)
	}
}

func TestProcessBatchRejectsOutOfRangeFiber(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	_, err = ProcessBatch(net, []FiberSeries{{Fiber: len(net.Fibers)}}, 2, 1)
	if err == nil {
		t.Fatal("out-of-range fiber accepted")
	}
}

func TestObserveSeriesMatchesPerSampleObserve(t *testing.T) {
	rng := stats.NewRNG(3)
	sim := optical.NewFiberSim(80, rng)
	samples, err := sim.EpisodeSeries(optical.DegradationProfile{
		DegreeDB: 5, GradientDB: 0.02, DurationS: 60,
		LeadsToCut: true, CutDelayS: 40, RepairS: 20, OnsetUnixS: 1700000000,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	batch := NewDetector(2).ObserveSeries(samples)
	var single []Event
	d := NewDetector(2)
	for _, s := range samples {
		single = append(single, d.Observe(s)...)
	}
	if !reflect.DeepEqual(batch, single) {
		t.Fatalf("ObserveSeries = %v, per-sample = %v", batch, single)
	}
}

// TestProcessBatchRejectsDuplicateFiber pins the duplicate-fiber contract:
// a fiber's detector is owned by one task, so a batch naming the same fiber
// twice is rejected — the same rule System.ObserveBatch enforces (the
// system-level parity half of this test lives in system_test.go).
func TestProcessBatchRejectsDuplicateFiber(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	sim := optical.NewFiberSim(100, stats.NewRNG(5))
	samples := sim.HealthySeries(1700000000, 10)
	_, err = ProcessBatch(net, []FiberSeries{
		{Fiber: 3, Samples: samples},
		{Fiber: 3, Samples: samples},
	}, 2, 1)
	if err == nil {
		t.Fatal("duplicate fiber accepted")
	}
}
