package telemetry

import (
	"fmt"

	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/par"
	"prete/internal/topology"
)

// FiberSeries is one fiber's raw telemetry series, the unit of work of the
// batch pipeline. Deployments that replay a collection interval (or a whole
// trace) hand the per-fiber series to ProcessBatch instead of feeding
// samples one at a time through a live detector.
type FiberSeries struct {
	Fiber   int
	Samples []optical.Sample
}

// FiberEvent is a detector event annotated with the §3.2 degradation
// features when the event carries a non-empty window. HasFeatures is false
// for abrupt cuts (empty window) and for event types without an episode.
type FiberEvent struct {
	Event
	Features    optical.Features
	HasFeatures bool
}

// ObserveSeries feeds a whole sample series through the detector and
// returns the concatenated events in observation order. It is a
// convenience over calling Observe per sample; the detector's state
// afterwards reflects the last sample.
func (d *Detector) ObserveSeries(samples []optical.Sample) []Event {
	var out []Event
	for _, s := range samples {
		out = append(out, d.Observe(s)...)
	}
	return out
}

// ProcessBatch runs the full per-fiber telemetry pipeline — interpolation
// of missing samples, state-machine detection, and feature extraction for
// every event with a degradation window — over many fibers at once.
// parallelism bounds the worker count (<= 0 selects runtime.GOMAXPROCS(0),
// 1 forces the serial path); each fiber is an independent task with its own
// detector, and results are returned in input order, so the output is
// identical at every parallelism setting (see internal/par).
//
// Each fiber may appear at most once per batch (its detector is owned by
// one task) — the same contract System.ObserveBatch enforces.
//
// The returned slice is parallel to series: out[i] holds fiber i's events.
func ProcessBatch(net *topology.Network, series []FiberSeries, confirmSamples, parallelism int) ([][]FiberEvent, error) {
	return ProcessBatchObs(net, series, confirmSamples, parallelism, nil)
}

// ProcessBatchObs is ProcessBatch reporting into a registry: per-batch run,
// fiber, and event counters plus a telemetry.batch.latency wall-clock timer,
// and — through each per-fiber detector — the telemetry.samples/events
// counters. A nil registry is the uninstrumented ProcessBatch.
func ProcessBatchObs(net *topology.Network, series []FiberSeries, confirmSamples, parallelism int, reg *obs.Registry) ([][]FiberEvent, error) {
	seen := make(map[int]bool, len(series))
	for _, fs := range series {
		if fs.Fiber < 0 || fs.Fiber >= len(net.Fibers) {
			return nil, fmt.Errorf("telemetry: fiber %d out of range [0,%d)", fs.Fiber, len(net.Fibers))
		}
		if seen[fs.Fiber] {
			return nil, fmt.Errorf("telemetry: fiber %d appears twice in batch", fs.Fiber)
		}
		seen[fs.Fiber] = true
	}
	reg.Counter("telemetry.batch.runs").Inc()
	reg.Counter("telemetry.batch.fibers").Add(int64(len(series)))
	batchT := reg.Timer("telemetry.batch.latency")
	batchStart := batchT.Start()
	out, err := par.MapErr(len(series), parallelism, func(i int) ([]FiberEvent, error) {
		fs := series[i]
		f := net.Fiber(topology.FiberID(fs.Fiber))
		det := NewDetector(confirmSamples)
		det.SetMetrics(reg)
		events := det.ObserveSeries(Interpolate(fs.Samples))
		out := make([]FiberEvent, len(events))
		for ei, ev := range events {
			fe := FiberEvent{Event: ev}
			if len(ev.Window) > 0 {
				feats, err := optical.ExtractFeatures(ev.Window, fs.Fiber, f.Region, f.Vendor, f.LengthKm)
				if err != nil {
					return nil, fmt.Errorf("telemetry: fiber %d event %d: %w", fs.Fiber, ei, err)
				}
				fe.Features = feats
				fe.HasFeatures = true
			}
			out[ei] = fe
		}
		return out, nil
	})
	batchT.Stop(batchStart)
	if err == nil {
		var n int64
		for _, evs := range out {
			n += int64(len(evs))
		}
		reg.Counter("telemetry.batch.events").Add(n)
	}
	return out, err
}
