package telemetry

import (
	"fmt"
	"math"
	"testing"

	"prete/internal/optical"
	"prete/internal/topology"
)

// fuzzNet is the tiny two-fiber topology every FuzzProcessBatch input runs
// against; built once since the batch pipeline never mutates it.
func fuzzNet(tb testing.TB) *topology.Network {
	tb.Helper()
	net, err := topology.New("fuzz",
		[]topology.Node{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}, {ID: 2, Name: "c"}},
		[]topology.Fiber{
			{ID: 0, A: 0, B: 1, LengthKm: 120, Region: "r1", Vendor: "v1"},
			{ID: 1, A: 1, B: 2, LengthKm: 300, Region: "r2", Vendor: "v2"},
		},
		[]topology.Link{
			{ID: 0, Src: 0, Dst: 1, Capacity: 100, Fibers: []topology.FiberID{0}},
			{ID: 1, Src: 1, Dst: 2, Capacity: 100, Fibers: []topology.FiberID{1}},
		})
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// FuzzProcessBatch feeds arbitrary — malformed, out-of-order, gappy,
// non-finite — telemetry series through the full batch pipeline
// (interpolation, detection, feature extraction). The pipeline must never
// panic, and its output must be byte-identical between the serial and the
// parallel execution path, which is the determinism contract internal/par
// promises and the chaos replay tests build on.
func FuzzProcessBatch(f *testing.F) {
	f.Add([]byte{}, 2)
	// a clean degradation episode on fiber 0
	f.Add([]byte{0, 1, 0, 0, 1, 0, 0, 1, 50, 0, 1, 50, 0, 1, 50, 0, 1, 0, 0}, 2)
	// missing samples and an abrupt cut
	f.Add([]byte{0, 1, 0, 1, 1, 0, 0, 1, 200, 0, 1, 200, 0}, 3)
	// out-of-order timestamps (negative dt) across both fibers
	f.Add([]byte{1, 255, 60, 0, 0, 1, 30, 0, 1, 129, 90, 1}, 1)
	f.Fuzz(func(t *testing.T, data []byte, confirm int) {
		net := fuzzNet(t)
		// Decode: each 4-byte group is one sample — fiber selector, signed
		// time delta (out-of-order and duplicate timestamps allowed), excess
		// loss in tenths of a dB (240..255 map to huge/NaN/Inf values), and
		// a missing-sample flag.
		series := []FiberSeries{{Fiber: 0}, {Fiber: 1}}
		ts := []int64{1000, 1000}
		for i := 0; i+3 < len(data) && i < 4*512; i += 4 {
			fi := int(data[i]) % 2
			ts[fi] += int64(int8(data[i+1]))
			excess := float64(data[i+2]) / 10
			switch data[i+2] {
			case 255:
				excess = math.NaN()
			case 254:
				excess = math.Inf(1)
			case 253:
				excess = math.Inf(-1)
			case 252:
				excess = -50 // below any baseline
			}
			loss := excess + 20
			series[fi].Samples = append(series[fi].Samples, optical.Sample{
				UnixS:    ts[fi],
				TxDBm:    3,
				RxDBm:    3 - loss,
				LossDB:   loss,
				ExcessDB: excess,
				State:    optical.Classify(excess),
				Missing:  data[i+3]%2 == 1,
			})
		}
		serial, errS := ProcessBatch(net, series, confirm, 1)
		parallel, errP := ProcessBatch(net, series, confirm, 2)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("serial err=%v, parallel err=%v", errS, errP)
		}
		if errS != nil {
			return
		}
		// NaN excess values flow through to the features, and
		// reflect.DeepEqual treats NaN != NaN, so compare the printed form:
		// identical values (NaN included) print identically.
		if fmt.Sprintf("%#v", serial) != fmt.Sprintf("%#v", parallel) {
			t.Fatalf("parallelism changed the output:\nserial:   %v\nparallel: %v", serial, parallel)
		}
		if len(serial) != len(series) {
			t.Fatalf("got %d result rows for %d series", len(serial), len(series))
		}
		for fi, evs := range serial {
			for ei, ev := range evs {
				if ev.HasFeatures && ev.Features.FiberID != series[fi].Fiber {
					t.Fatalf("fiber %d event %d carries features for fiber %d", fi, ei, ev.Features.FiberID)
				}
			}
		}
	})
}
