package telemetry

import (
	"sort"

	"prete/internal/topology"
)

// ConduitGroups maps each fiber to the set of fibers sharing its physical
// conduit. §3.1: "some fibers may degrade together because of a common
// conduit or their geographical proximity. In our work, we consider these
// fibers as a single entity" — a degradation signal on one member
// therefore applies to the whole group.
// Fibers with Conduit <= 0 are singletons (no shared conduit).
func ConduitGroups(net *topology.Network) map[topology.FiberID][]topology.FiberID {
	byConduit := make(map[int][]topology.FiberID)
	out := make(map[topology.FiberID][]topology.FiberID, len(net.Fibers))
	for _, f := range net.Fibers {
		if f.Conduit <= 0 {
			out[f.ID] = []topology.FiberID{f.ID}
			continue
		}
		byConduit[f.Conduit] = append(byConduit[f.Conduit], f.ID)
	}
	for _, members := range byConduit {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, f := range members {
			out[f] = members
		}
	}
	return out
}
