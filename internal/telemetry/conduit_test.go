package telemetry

import (
	"testing"

	"prete/internal/topology"
)

func TestConduitGroups(t *testing.T) {
	nodes := []topology.Node{{ID: 0}, {ID: 1}, {ID: 2}}
	fibers := []topology.Fiber{
		{ID: 0, A: 0, B: 1, Conduit: 5},
		{ID: 1, A: 1, B: 2, Conduit: 5}, // shares conduit with fiber 0
		{ID: 2, A: 0, B: 2, Conduit: 7},
		{ID: 3, A: 0, B: 2}, // no conduit: singleton
	}
	net, err := topology.New("c", nodes, fibers, []topology.Link{
		{ID: 0, Src: 0, Dst: 1, Capacity: 1, Fibers: []topology.FiberID{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := ConduitGroups(net)
	if len(g[0]) != 2 || g[0][0] != 0 || g[0][1] != 1 {
		t.Fatalf("group of fiber 0 = %v", g[0])
	}
	if len(g[1]) != 2 {
		t.Fatalf("group of fiber 1 = %v", g[1])
	}
	if len(g[2]) != 1 || g[2][0] != 2 {
		t.Fatalf("group of fiber 2 = %v", g[2])
	}
	if len(g[3]) != 1 {
		t.Fatalf("zero-conduit fiber should be a singleton, got %v", g[3])
	}
}

func TestConduitGroupsOnBuiltins(t *testing.T) {
	net, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	g := ConduitGroups(net)
	shared := 0
	for _, members := range g {
		if len(members) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("builders should produce some shared conduits")
	}
	if shared == len(net.Fibers) {
		t.Fatal("not every fiber should share a conduit")
	}
}
