package telemetry

import (
	"testing"

	"prete/internal/optical"
	"prete/internal/stats"
)

func sampleWithExcess(t int64, excess float64) optical.Sample {
	return optical.Sample{
		UnixS: t, TxDBm: optical.TxPowerDBm,
		RxDBm:  optical.TxPowerDBm - 20 - excess,
		LossDB: 20 + excess, ExcessDB: excess,
		State: optical.Classify(excess),
	}
}

func feed(d *Detector, excesses []float64) []Event {
	var all []Event
	for i, e := range excesses {
		all = append(all, d.Observe(sampleWithExcess(int64(i), e))...)
	}
	return all
}

func TestDetectorDegradationThenCut(t *testing.T) {
	d := NewDetector(1)
	events := feed(d, []float64{0, 0, 5, 5, 5, 30, 30, 0})
	types := []EventType{DegradationStart, CutDetected, Repaired}
	if len(events) != len(types) {
		t.Fatalf("events = %v", events)
	}
	for i, e := range events {
		if e.Type != types[i] {
			t.Fatalf("event %d = %v, want %v", i, e.Type, types[i])
		}
	}
	// The cut event must carry the degraded window for feature extraction.
	if len(events[1].Window) < 3 {
		t.Fatalf("cut window has %d samples, want the degraded episode", len(events[1].Window))
	}
}

func TestDetectorAbruptCut(t *testing.T) {
	d := NewDetector(1)
	events := feed(d, []float64{0, 0, 35})
	if len(events) != 1 || events[0].Type != CutDetected {
		t.Fatalf("events = %v", events)
	}
	if len(events[0].Window) != 0 {
		t.Fatal("abrupt cut should have an empty degradation window")
	}
}

func TestDetectorDegradationRecovers(t *testing.T) {
	d := NewDetector(1)
	events := feed(d, []float64{0, 4, 4, 4, 0, 0})
	if len(events) != 2 || events[0].Type != DegradationStart || events[1].Type != DegradationEnd {
		t.Fatalf("events = %v", events)
	}
	if len(events[1].Window) < 3 {
		t.Fatalf("end window = %d samples", len(events[1].Window))
	}
	if d.State() != optical.Healthy {
		t.Fatalf("state = %v", d.State())
	}
}

func TestDetectorConfirmationSuppressesNoise(t *testing.T) {
	d := NewDetector(2)
	// one-sample blip must not fire
	events := feed(d, []float64{0, 5, 0, 0})
	if len(events) != 0 {
		t.Fatalf("blip produced events: %v", events)
	}
	// two consecutive samples do fire
	events = feed(d, []float64{5, 5})
	if len(events) != 1 || events[0].Type != DegradationStart {
		t.Fatalf("events = %v", events)
	}
}

func TestDetectorCutThenPartialRepair(t *testing.T) {
	d := NewDetector(1)
	events := feed(d, []float64{0, 30, 30, 5, 5, 0})
	want := []EventType{CutDetected, Repaired, DegradationStart, DegradationEnd}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i, e := range events {
		if e.Type != want[i] {
			t.Fatalf("event %d = %v, want %v", i, e.Type, want[i])
		}
	}
}

func TestInterpolateMidGap(t *testing.T) {
	samples := []optical.Sample{
		sampleWithExcess(0, 0),
		{UnixS: 1, Missing: true, TxDBm: optical.TxPowerDBm, LossDB: 20, ExcessDB: 0},
		{UnixS: 2, Missing: true, TxDBm: optical.TxPowerDBm, LossDB: 20, ExcessDB: 0},
		sampleWithExcess(3, 6),
	}
	out := Interpolate(samples)
	if out[1].Missing || out[2].Missing {
		t.Fatal("gap not filled")
	}
	// linear ramp 20 -> 26: t=1 -> 22, t=2 -> 24
	if diff := out[1].LossDB - 22; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("t=1 loss = %v, want 22", out[1].LossDB)
	}
	if diff := out[2].LossDB - 24; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("t=2 loss = %v, want 24", out[2].LossDB)
	}
	// original untouched
	if !samples[1].Missing {
		t.Fatal("Interpolate mutated its input")
	}
	// states refreshed
	if out[2].State != optical.Degraded {
		t.Fatalf("t=2 state = %v, want degraded (excess 4dB)", out[2].State)
	}
}

func TestInterpolateEdges(t *testing.T) {
	samples := []optical.Sample{
		{UnixS: 0, Missing: true, TxDBm: 3, LossDB: 0, ExcessDB: 0},
		sampleWithExcess(1, 0),
		{UnixS: 2, Missing: true, TxDBm: 3, LossDB: 0, ExcessDB: 0},
	}
	out := Interpolate(samples)
	if out[0].Missing || out[2].Missing {
		t.Fatal("edge gaps not filled")
	}
	if out[0].LossDB != out[1].LossDB || out[2].LossDB != out[1].LossDB {
		t.Fatal("edge gaps should copy the nearest sample")
	}
}

func TestInterpolateAllMissing(t *testing.T) {
	samples := []optical.Sample{
		{UnixS: 0, Missing: true},
		{UnixS: 1, Missing: true},
	}
	out := Interpolate(samples) // must not panic; nothing to anchor on
	if len(out) != 2 {
		t.Fatal("length changed")
	}
}

func TestDownsample(t *testing.T) {
	f := optical.NewFiberSim(100, stats.NewRNG(1))
	s := f.HealthySeries(0, 600)
	out, err := Downsample(s, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("60s downsample of 600s = %d samples, want 10", len(out))
	}
	if _, err := Downsample(s, 0); err == nil {
		t.Fatal("granularity 0 accepted")
	}
	same, err := Downsample(s, 1)
	if err != nil || len(same) != len(s) {
		t.Fatal("1s downsample should be identity")
	}
}

// TestDownsampleMissesEphemeralDegradation reproduces §3.1's core
// observation: a short degradation visible at 1 s granularity disappears at
// 3-minute granularity.
func TestDownsampleMissesEphemeralDegradation(t *testing.T) {
	f := optical.NewFiberSim(100, stats.NewRNG(2))
	p := optical.DegradationProfile{
		DegreeDB: 6, GradientDB: 0.1, DurationS: 8, // ephemeral: 8s (Fig 4a median <10s)
		LeadsToCut: true, CutDelayS: 8, RepairS: 30, OnsetUnixS: 100,
	}
	series, err := f.EpisodeSeries(p, 95)
	if err != nil {
		t.Fatal(err)
	}
	countDegraded := func(s []optical.Sample) int {
		n := 0
		for _, smp := range s {
			if smp.State == optical.Degraded {
				n++
			}
		}
		return n
	}
	if countDegraded(series) == 0 {
		t.Fatal("1s series must contain the degradation")
	}
	coarse, err := Downsample(series, 180)
	if err != nil {
		t.Fatal(err)
	}
	if countDegraded(coarse) != 0 {
		t.Fatal("3-minute sampling should miss the 8s degradation for this alignment")
	}
}

func TestDetectorWindowGrowsDuringDegradation(t *testing.T) {
	d := NewDetector(1)
	feed(d, []float64{0, 5})
	events := feed(d, []float64{5, 5, 5, 30})
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	if got := len(events[0].Window); got < 4 {
		t.Fatalf("window = %d samples, want the whole episode", got)
	}
}
