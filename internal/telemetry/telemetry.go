// Package telemetry implements the optical telemetry pipeline from §3.1:
// per-second collection of Tx/Rx power (following OpTel [28]), interpolation
// of lost samples, downsampling to emulate coarse traditional collectors
// (§8 / Appendix A.8), and the state-machine detector that turns raw loss
// series into degradation and cut events.
package telemetry

import (
	"fmt"

	"prete/internal/obs"
	"prete/internal/optical"
)

// EventType identifies a detector transition.
type EventType int

// Detector events.
const (
	DegradationStart EventType = iota
	DegradationEnd
	CutDetected
	Repaired
)

// String names the detector event type.
func (e EventType) String() string {
	switch e {
	case DegradationStart:
		return "degradation-start"
	case DegradationEnd:
		return "degradation-end"
	case CutDetected:
		return "cut"
	default:
		return "repaired"
	}
}

// Event is one detected fiber-state transition.
type Event struct {
	Type  EventType
	UnixS int64
	// Window holds the degraded samples observed so far (for
	// DegradationStart/End and CutDetected events); feature extraction
	// consumes it.
	Window []optical.Sample
}

// Detector is a per-fiber-entity state machine. ConfirmSamples consecutive
// samples in a new state are required before a transition fires, which
// keeps single-sample noise from generating events.
type Detector struct {
	ConfirmSamples int

	state     optical.State
	candidate optical.State
	streak    int
	window    []optical.Sample // degraded samples of the current episode

	// Metric handles, resolved once by SetMetrics; nil handles no-op, so an
	// uninstrumented detector pays two nil checks per sample.
	samplesC *obs.Counter
	eventsC  *obs.Counter
	degC     *obs.Counter
	cutsC    *obs.Counter
}

// NewDetector returns a detector starting in the healthy state.
func NewDetector(confirmSamples int) *Detector {
	if confirmSamples < 1 {
		confirmSamples = 1
	}
	return &Detector{ConfirmSamples: confirmSamples, state: optical.Healthy, candidate: optical.Healthy}
}

// SetMetrics points the detector at a registry: telemetry.samples.observed,
// telemetry.events.detected, telemetry.degradations.detected, and
// telemetry.cuts.detected. Pass nil to detach. Metrics are write-only; the
// state machine never reads them.
func (d *Detector) SetMetrics(r *obs.Registry) {
	if r == nil {
		d.samplesC, d.eventsC, d.degC, d.cutsC = nil, nil, nil, nil
		return
	}
	d.samplesC = r.Counter("telemetry.samples.observed")
	d.eventsC = r.Counter("telemetry.events.detected")
	d.degC = r.Counter("telemetry.degradations.detected")
	d.cutsC = r.Counter("telemetry.cuts.detected")
}

// State returns the detector's current confirmed state.
func (d *Detector) State() optical.State { return d.state }

// Observe feeds one sample and returns any events it triggers. A direct
// healthy->cut observation (an abrupt cut, the unpredictable 75% in Fig 5b)
// yields a CutDetected with an empty window.
func (d *Detector) Observe(s optical.Sample) []Event {
	d.samplesC.Inc()
	observed := optical.Classify(s.ExcessDB)
	if observed == d.state {
		d.candidate = d.state
		d.streak = 0
		if d.state == optical.Degraded {
			d.window = append(d.window, s)
		}
		return nil
	}
	if observed != d.candidate {
		d.candidate = observed
		d.streak = 1
	} else {
		d.streak++
	}
	if d.state == optical.Degraded {
		// Keep collecting while the transition is unconfirmed: these
		// samples are part of the episode either way.
		d.window = append(d.window, s)
	}
	if d.streak < d.ConfirmSamples {
		return nil
	}
	// Confirmed transition.
	prev := d.state
	d.state = d.candidate
	d.streak = 0
	var events []Event
	switch {
	case prev == optical.Healthy && d.state == optical.Degraded:
		d.window = append(d.window[:0], s)
		events = append(events, Event{Type: DegradationStart, UnixS: s.UnixS, Window: snapshot(d.window)})
	case prev == optical.Degraded && d.state == optical.Healthy:
		events = append(events, Event{Type: DegradationEnd, UnixS: s.UnixS, Window: snapshot(d.window)})
		d.window = nil
	case prev == optical.Degraded && d.state == optical.Cut:
		events = append(events, Event{Type: CutDetected, UnixS: s.UnixS, Window: snapshot(d.window)})
		d.window = nil
	case prev == optical.Healthy && d.state == optical.Cut:
		events = append(events, Event{Type: CutDetected, UnixS: s.UnixS})
	case prev == optical.Cut && d.state == optical.Healthy:
		events = append(events, Event{Type: Repaired, UnixS: s.UnixS})
	case prev == optical.Cut && d.state == optical.Degraded:
		// Partial repair: treat as a fresh degradation episode.
		d.window = append(d.window[:0], s)
		events = append(events, Event{Type: Repaired, UnixS: s.UnixS},
			Event{Type: DegradationStart, UnixS: s.UnixS, Window: snapshot(d.window)})
	}
	d.eventsC.Add(int64(len(events)))
	for _, e := range events {
		switch e.Type {
		case DegradationStart:
			d.degC.Inc()
		case CutDetected:
			d.cutsC.Inc()
		}
	}
	return events
}

func snapshot(w []optical.Sample) []optical.Sample {
	return append([]optical.Sample(nil), w...)
}

// Interpolate fills Missing samples by linear interpolation between their
// healthy neighbours ("we apply interpolation methods to complete the
// missing data", §3.1). Leading/trailing gaps copy the nearest present
// sample. The input is not modified.
func Interpolate(samples []optical.Sample) []optical.Sample {
	out := append([]optical.Sample(nil), samples...)
	n := len(out)
	i := 0
	for i < n {
		if !out[i].Missing {
			i++
			continue
		}
		// find gap [i, j)
		j := i
		for j < n && out[j].Missing {
			j++
		}
		var loss func(k int) float64
		switch {
		case i == 0 && j == n:
			// nothing known; leave as-is
			i = j
			continue
		case i == 0:
			v := out[j].LossDB
			loss = func(int) float64 { return v }
		case j == n:
			v := out[i-1].LossDB
			loss = func(int) float64 { return v }
		default:
			lo, hi := out[i-1].LossDB, out[j].LossDB
			span := float64(j - (i - 1))
			loss = func(k int) float64 {
				frac := float64(k-(i-1)) / span
				return lo + (hi-lo)*frac
			}
		}
		for k := i; k < j; k++ {
			l := loss(k)
			base := out[k].LossDB - out[k].ExcessDB // baseline is loss - excess
			out[k].LossDB = l
			out[k].ExcessDB = l - base
			out[k].RxDBm = out[k].TxDBm - l
			out[k].State = optical.Classify(out[k].ExcessDB)
			out[k].Missing = false
		}
		i = j
	}
	return out
}

// Downsample keeps one sample per granularityS seconds (the first of each
// bucket), emulating traditional minute-level collectors (§3.1's 3-minute
// example, Appendix A.8's granularity sweep).
func Downsample(samples []optical.Sample, granularityS int) ([]optical.Sample, error) {
	if granularityS < 1 {
		return nil, fmt.Errorf("telemetry: granularity must be >= 1s, got %d", granularityS)
	}
	if granularityS == 1 {
		return append([]optical.Sample(nil), samples...), nil
	}
	var out []optical.Sample
	var nextAt int64
	for i, s := range samples {
		if i == 0 {
			nextAt = s.UnixS
		}
		if s.UnixS >= nextAt {
			out = append(out, s)
			nextAt = s.UnixS + int64(granularityS)
		}
	}
	return out, nil
}
