// Package ingest is the streaming telemetry front-end: it scales the batch
// replay API (telemetry.ProcessBatch) to sustained line-rate ingest of
// per-second optical samples from an entire WAN, with deterministic
// backpressure when arrivals outrun compute.
//
// Dataflow, one logical tick at a time:
//
//	arrivals ──admit──▶ per-fiber ring ──drain──▶ per-fiber run ──flush──▶ Detector ──▶ events
//	             │  (fixed capacity,      (per-shard compute        (interpolation +
//	             │   watermark policy)     budget, fiber order)      feature extraction)
//	             ▼
//	      drop / merge (exact accounting, never silent)
//
// Fibers map to shards by a stable FNV-1a hash, each shard owning the rings
// and detectors of its fibers; shards execute in parallel through
// internal/par but share no state, so output is bit-identical at every
// Parallelism setting. Admission runs serially in arrival order: while a
// ring sits below its high watermark every sample is accepted; between the
// watermark and capacity, consecutive same-state samples are merged
// (coalesced into the newest buffered sample — the freshest reading wins,
// state transitions are never merged away); at capacity, the incoming
// sample is merged when possible and otherwise dropped. Every admission
// decision is a pure function of the ring's occupancy, so for a fixed
// arrival schedule, configuration, and shard count the drop/merge decisions
// replay bit-identically — and when backpressure never triggers, the
// emitted events equal telemetry.ProcessBatch byte for byte (pinned by the
// equivalence tests, enforced under mutation by FuzzIngest).
//
// Accounting is exact by construction: after a final Flush,
//
//	ingested == emitted + dropped + merged
//
// with per-fiber drop/merge tallies in Stats and the same totals mirrored
// into the ingest.* metrics (counters, per-shard queue-depth gauges, and a
// watermark-crossing counter) of an attached obs.Registry, so shed load is
// always auditable.
package ingest

import (
	"fmt"

	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/par"
	"prete/internal/telemetry"
	"prete/internal/topology"
)

// Arrival is one telemetry sample arriving at the front-end, the unit of
// the streaming schedule. Arrivals within a tick are admitted in slice
// order; the same fiber may appear any number of times per tick (that is
// what an ingest rate above one sample per tick looks like).
type Arrival struct {
	Fiber  int
	Sample optical.Sample
}

// Config tunes a Pipeline. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Shards is the number of ingest workers; fibers map to shards by a
	// stable hash, so the assignment is reproducible across runs and
	// processes. Values <= 0 select 1. Shard count changes how the per-shard
	// drain budget is shared and therefore which samples are shed under
	// overload; with backpressure never triggered the output is identical at
	// every shard count.
	Shards int
	// RingCapacity is each fiber's ring size in samples; an arrival finding
	// its ring full is merged or dropped, never queued unboundedly.
	// Values <= 0 select 1024.
	RingCapacity int
	// HighWatermark is the ring-occupancy fraction (0,1] at which admission
	// switches from accept-everything to merge mode. Values outside (0,1]
	// select 0.75. The watermark row in samples is at least 1.
	HighWatermark float64
	// DrainPerTick bounds how many queued samples each shard worker hands to
	// its detectors per tick — the deterministic stand-in for finite compute.
	// Values <= 0 disable the bound (compute keeps up with any arrival rate,
	// so backpressure never triggers).
	DrainPerTick int
	// FlushTicks is the flush window: every FlushTicks ticks each fiber's
	// drained sample run goes through interpolation, the detector state
	// machine, and feature extraction, and the resulting events are emitted.
	// Values <= 0 select 1 (flush every tick).
	FlushTicks int
	// ConfirmSamples is the per-transition confirmation count of the
	// per-fiber detectors (telemetry.Detector).
	ConfirmSamples int
	// Parallelism bounds the worker count of the per-shard fan-out: <= 0
	// selects runtime.GOMAXPROCS(0), 1 forces the serial path. Shards share
	// no state, so emitted events and drop decisions are bit-identical at
	// every setting (see internal/par).
	Parallelism int
	// Metrics, when non-nil, receives the ingest.* observability series.
	// Metrics are write-only: admission and drain decisions never read them.
	Metrics *obs.Registry
}

// DefaultConfig returns a production-shaped configuration: 4 shards,
// 1024-sample rings with a 0.75 watermark, unlimited drain (no
// backpressure), per-tick flush, and the paper's 2-sample confirmation.
func DefaultConfig() Config {
	return Config{
		Shards:         4,
		RingCapacity:   1024,
		HighWatermark:  0.75,
		FlushTicks:     1,
		ConfirmSamples: 2,
	}
}

// withDefaults resolves the zero/invalid fields to their documented
// defaults without mutating the caller's copy.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = 1024
	}
	if c.HighWatermark <= 0 || c.HighWatermark > 1 {
		c.HighWatermark = 0.75
	}
	if c.FlushTicks <= 0 {
		c.FlushTicks = 1
	}
	if c.ConfirmSamples < 1 {
		c.ConfirmSamples = 1
	}
	return c
}

// Stats is a point-in-time snapshot of the pipeline's exact accounting.
// After a final Flush, Queued is zero and
// Ingested == Emitted + Dropped + Merged.
type Stats struct {
	// Ingested counts every arrival admitted to accounting (valid fiber id),
	// whatever its fate.
	Ingested int64
	// Emitted counts samples handed to the detector stage (drained from a
	// ring into a flush run).
	Emitted int64
	// Dropped counts samples shed whole at a full ring.
	Dropped int64
	// Merged counts samples coalesced into the newest buffered same-state
	// sample under watermark pressure.
	Merged int64
	// Queued counts samples still buffered (rings plus undelivered flush
	// runs) — in flight, not yet emitted or shed.
	Queued int64
	// WatermarkCrossings counts low→high watermark transitions across all
	// rings (the moments backpressure engaged).
	WatermarkCrossings int64
	// Ticks and Flushes count Tick calls and flush rounds (including the
	// final Flush).
	Ticks, Flushes int64
	// PerFiberDropped and PerFiberMerged break Dropped/Merged down by fiber
	// id — the per-entity shed-load lineage.
	PerFiberDropped []int64
	PerFiberMerged  []int64
}

// FiberEvents is one fiber's events emitted by a flush round, in detection
// order. Batches arrive in ascending fiber order within a flush.
type FiberEvents struct {
	Fiber  int
	Events []telemetry.FiberEvent
}

// ring is a fixed-capacity FIFO of samples. The buffer is allocated on
// first use so idle fibers cost a struct, not a window.
type ring struct {
	buf     []optical.Sample
	head, n int
}

func (r *ring) push(capacity int, s optical.Sample) {
	if r.buf == nil {
		r.buf = make([]optical.Sample, capacity)
	}
	r.buf[(r.head+r.n)%len(r.buf)] = s
	r.n++
}

func (r *ring) pop() optical.Sample {
	s := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return s
}

// newest returns the most recently pushed sample; callers must check n > 0.
func (r *ring) newest() *optical.Sample {
	return &r.buf[(r.head+r.n-1)%len(r.buf)]
}

// fiberState is everything the pipeline holds for one fiber: its ring, the
// drained-but-unflushed run, the persistent detector, and the streaming
// interpolation carry (anchor + trailing missing samples).
type fiberState struct {
	id  int
	fib topology.Fiber // hoisted lookup for feature extraction

	ring  ring
	run   []optical.Sample
	det   *telemetry.Detector
	above bool // ring occupancy is at/above the watermark

	// anchor is the last present (non-missing) sample already handed to the
	// detector; pending holds trailing missing samples awaiting their right
	// interpolation neighbour. Together they make chunked interpolation
	// byte-identical to telemetry.Interpolate over the full series.
	anchor    optical.Sample
	hasAnchor bool
	pending   []optical.Sample

	dropped, merged int64
}

// observe feeds one (already interpolated) sample to the fiber's detector
// and annotates any resulting events with the §3.2 degradation features,
// exactly as telemetry.ProcessBatch does.
func (fs *fiberState) observe(s optical.Sample) ([]telemetry.FiberEvent, error) {
	events := fs.det.Observe(s)
	if len(events) == 0 {
		return nil, nil
	}
	out := make([]telemetry.FiberEvent, len(events))
	for ei, ev := range events {
		fe := telemetry.FiberEvent{Event: ev}
		if len(ev.Window) > 0 {
			feats, err := optical.ExtractFeatures(ev.Window, fs.id, fs.fib.Region, fs.fib.Vendor, fs.fib.LengthKm)
			if err != nil {
				return nil, fmt.Errorf("ingest: fiber %d event %d: %w", fs.id, ei, err)
			}
			fe.Features = feats
			fe.HasFeatures = true
		}
		out[ei] = fe
	}
	return out, nil
}

// resolve interpolates the pending missing-sample gap against the new
// present sample s and feeds the whole resolved chunk to the detector.
// The chunk [anchor?, pending..., s] reproduces the neighbourhood the
// full-series interpolation would use, so the filled values are identical.
func (fs *fiberState) resolve(s optical.Sample) ([]telemetry.FiberEvent, error) {
	chunk := make([]optical.Sample, 0, len(fs.pending)+2)
	start := 0
	if fs.hasAnchor {
		chunk = append(chunk, fs.anchor)
		start = 1
	}
	chunk = append(chunk, fs.pending...)
	chunk = append(chunk, s)
	var out []telemetry.FiberEvent
	for _, is := range telemetry.Interpolate(chunk)[start:] {
		evs, err := fs.observe(is)
		if err != nil {
			return nil, err
		}
		out = append(out, evs...)
	}
	fs.anchor = s
	fs.hasAnchor = true
	fs.pending = fs.pending[:0]
	return out, nil
}

// process runs the fiber's drained sample run through streaming
// interpolation and the detector. final resolves a trailing missing gap by
// copying the nearest present sample (the full-series trailing-gap rule);
// non-final flushes hold trailing missing samples for the next window.
func (fs *fiberState) process(final bool) ([]telemetry.FiberEvent, error) {
	var out []telemetry.FiberEvent
	for _, s := range fs.run {
		if s.Missing {
			fs.pending = append(fs.pending, s)
			continue
		}
		if len(fs.pending) == 0 {
			// Fast path: no gap to fill — interpolation of a gapless run is
			// the identity, so the sample goes straight to the detector.
			evs, err := fs.observe(s)
			if err != nil {
				return nil, err
			}
			out = append(out, evs...)
			fs.anchor = s
			fs.hasAnchor = true
			continue
		}
		evs, err := fs.resolve(s)
		if err != nil {
			return nil, err
		}
		out = append(out, evs...)
	}
	fs.run = fs.run[:0]
	if final && len(fs.pending) > 0 {
		chunk := make([]optical.Sample, 0, len(fs.pending)+1)
		start := 0
		if fs.hasAnchor {
			chunk = append(chunk, fs.anchor)
			start = 1
		}
		chunk = append(chunk, fs.pending...)
		for _, is := range telemetry.Interpolate(chunk)[start:] {
			evs, err := fs.observe(is)
			if err != nil {
				return nil, err
			}
			out = append(out, evs...)
		}
		fs.pending = fs.pending[:0]
	}
	return out, nil
}

// shard is one ingest worker's slice of the fiber space. Shards never touch
// each other's state, which is the whole determinism argument for running
// them in parallel.
type shard struct {
	fibers  []*fiberState // ascending fiber id
	emitted int64
	depthG  *obs.Gauge
}

// Pipeline is the streaming ingest front-end. It is driven by one
// goroutine: Tick admits a tick's arrivals, drains each shard's compute
// budget, and (on window boundaries) flushes detector runs; Flush ends the
// stream. The per-shard work inside a Tick fans out through internal/par;
// the Pipeline itself is not safe for concurrent Tick calls.
type Pipeline struct {
	net    *topology.Network
	cfg    Config
	wmark  int // watermark row in samples, >= 1
	fibers []*fiberState
	shards []*shard

	tick    int64
	flushes int64

	ingested, emitted, dropped, merged, crossings int64

	ingestedC, emittedC, droppedC, mergedC *obs.Counter
	crossingsC, eventsC, ticksC, flushesC  *obs.Counter
	tickT                                  *obs.Timer
}

// New builds a pipeline over the network's fibers. Every fiber gets a
// state slot up front (rings allocate lazily), so shard assignment and
// flush order are fixed at construction.
func New(net *topology.Network, cfg Config) (*Pipeline, error) {
	if net == nil {
		return nil, fmt.Errorf("ingest: nil network")
	}
	cfg = cfg.withDefaults()
	p := &Pipeline{
		net:   net,
		cfg:   cfg,
		wmark: watermarkRow(cfg.RingCapacity, cfg.HighWatermark),
	}
	p.fibers = make([]*fiberState, len(net.Fibers))
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		p.shards[i] = &shard{}
	}
	for i := range net.Fibers {
		det := telemetry.NewDetector(cfg.ConfirmSamples)
		det.SetMetrics(cfg.Metrics)
		fs := &fiberState{id: i, fib: net.Fibers[i], det: det}
		p.fibers[i] = fs
		sh := p.shards[ShardOf(i, cfg.Shards)]
		sh.fibers = append(sh.fibers, fs) // ascending: i is ascending
	}
	reg := cfg.Metrics
	p.ingestedC = reg.Counter("ingest.samples.ingested")
	p.emittedC = reg.Counter("ingest.samples.emitted")
	p.droppedC = reg.Counter("ingest.samples.dropped")
	p.mergedC = reg.Counter("ingest.samples.merged")
	p.crossingsC = reg.Counter("ingest.watermark.crossings")
	p.eventsC = reg.Counter("ingest.events.emitted")
	p.ticksC = reg.Counter("ingest.ticks")
	p.flushesC = reg.Counter("ingest.flushes")
	p.tickT = reg.Timer("ingest.tick.latency")
	for i, sh := range p.shards {
		sh.depthG = reg.Gauge(fmt.Sprintf("ingest.shard.%d.depth", i))
	}
	return p, nil
}

// watermarkRow converts the watermark fraction to a sample count in
// [1, capacity].
func watermarkRow(capacity int, frac float64) int {
	w := int(frac * float64(capacity))
	if w < 1 {
		w = 1
	}
	if w > capacity {
		w = capacity
	}
	return w
}

// ShardOf maps a fiber id to its shard by a stable FNV-1a hash: the
// assignment depends only on (fiber, shards), never on map iteration or a
// per-process hash seed, so schedules replay identically everywhere.
func ShardOf(fiber, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	v := uint64(fiber)
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * 1099511628211
		v >>= 8
	}
	return int(h % uint64(shards))
}

// Config returns the pipeline's resolved configuration (defaults applied).
func (p *Pipeline) Config() Config { return p.cfg }

// admit applies the watermark policy to one arrival. It runs serially in
// arrival order; every branch is a pure function of the ring's occupancy.
func (p *Pipeline) admit(a Arrival) {
	fs := p.fibers[a.Fiber]
	p.ingested++
	p.ingestedC.Inc()
	capacity := p.cfg.RingCapacity
	mergeable := func() bool {
		if fs.ring.n == 0 || a.Sample.Missing {
			return false
		}
		newest := fs.ring.newest()
		return !newest.Missing && newest.State == a.Sample.State
	}
	switch {
	case fs.ring.n < p.wmark:
		fs.ring.push(capacity, a.Sample)
	case fs.ring.n >= capacity:
		if mergeable() {
			*fs.ring.newest() = a.Sample
			fs.merged++
			p.merged++
			p.mergedC.Inc()
		} else {
			fs.dropped++
			p.dropped++
			p.droppedC.Inc()
		}
	default: // at/above watermark, below capacity: coalesce when possible
		if mergeable() {
			*fs.ring.newest() = a.Sample
			fs.merged++
			p.merged++
			p.mergedC.Inc()
		} else {
			fs.ring.push(capacity, a.Sample)
		}
	}
	if !fs.above && fs.ring.n >= p.wmark {
		fs.above = true
		p.crossings++
		p.crossingsC.Inc()
	}
}

// drain moves up to the shard's per-tick budget from rings to flush runs,
// one sample per fiber per round (round-robin in ascending fiber order), so
// a single hot fiber cannot starve its shard-mates.
func (sh *shard) drain(budget, wmark int) {
	unlimited := budget <= 0
	for {
		progressed := false
		for _, fs := range sh.fibers {
			if fs.ring.n == 0 {
				continue
			}
			if !unlimited {
				if budget == 0 {
					progressed = false
					break
				}
				budget--
			}
			fs.run = append(fs.run, fs.ring.pop())
			sh.emitted++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	for _, fs := range sh.fibers {
		if fs.above && fs.ring.n < wmark {
			fs.above = false
		}
	}
}

// depth is the shard's total ring occupancy.
func (sh *shard) depth() int {
	var d int
	for _, fs := range sh.fibers {
		d += fs.ring.n
	}
	return d
}

// Tick advances the pipeline by one logical tick: arrivals are admitted in
// order under the watermark policy, each shard drains its compute budget in
// parallel, and on a flush boundary every fiber's drained run goes through
// interpolation, detection, and feature extraction. The returned batches
// (nil between flush boundaries) are ordered by ascending fiber id.
func (p *Pipeline) Tick(arrivals []Arrival) ([]FiberEvents, error) {
	for _, a := range arrivals {
		if a.Fiber < 0 || a.Fiber >= len(p.fibers) {
			return nil, fmt.Errorf("ingest: fiber %d out of range [0,%d)", a.Fiber, len(p.fibers))
		}
	}
	t0 := p.tickT.Start()
	for _, a := range arrivals {
		p.admit(a)
	}
	p.tick++
	p.ticksC.Inc()
	flush := p.tick%int64(p.cfg.FlushTicks) == 0
	out, err := p.runShards(flush, false)
	p.tickT.Stop(t0)
	return out, err
}

// Flush ends the stream: every ring drains regardless of the compute
// budget, every run is processed, and trailing missing-sample gaps resolve
// by the full-series trailing-gap rule. Afterwards Queued is zero and the
// accounting identity holds exactly. The pipeline stays usable — a later
// Tick starts a fresh window against the preserved detector state.
func (p *Pipeline) Flush() ([]FiberEvents, error) {
	return p.runShards(true, true)
}

// runShards fans the drain (and, when flushing, the detector/feature
// compute) out across shards, then merges per-shard results serially in
// ascending fiber order — completion order never shows in the output.
func (p *Pipeline) runShards(flush, final bool) ([]FiberEvents, error) {
	type shardOut struct {
		batches []FiberEvents
	}
	results, err := par.MapErr(len(p.shards), p.cfg.Parallelism, func(si int) (shardOut, error) {
		sh := p.shards[si]
		budget := p.cfg.DrainPerTick
		if final {
			budget = 0 // unlimited: end-of-stream drains everything
		}
		sh.drain(budget, p.wmark)
		sh.depthG.Set(float64(sh.depth()))
		var so shardOut
		if !flush {
			return so, nil
		}
		for _, fs := range sh.fibers {
			if len(fs.run) == 0 && !(final && len(fs.pending) > 0) {
				continue
			}
			evs, err := fs.process(final)
			if err != nil {
				return so, err
			}
			if len(evs) > 0 {
				so.batches = append(so.batches, FiberEvents{Fiber: fs.id, Events: evs})
			}
		}
		return so, nil
	})
	// Account the drained samples after the barrier (serial, deterministic).
	var emitted int64
	for _, sh := range p.shards {
		emitted += sh.emitted
		sh.emitted = 0
	}
	p.emitted += emitted
	p.emittedC.Add(emitted)
	if err != nil {
		return nil, err
	}
	if !flush {
		return nil, nil
	}
	p.flushes++
	p.flushesC.Inc()
	// Merge in ascending fiber order: per-shard batches are already sorted,
	// so an n-way merge by smallest head suffices and is deterministic.
	var out []FiberEvents
	var nEvents int64
	idx := make([]int, len(results))
	for {
		best, bestFiber := -1, 0
		for si, so := range results {
			if idx[si] >= len(so.batches) {
				continue
			}
			f := so.batches[idx[si]].Fiber
			if best < 0 || f < bestFiber {
				best, bestFiber = si, f
			}
		}
		if best < 0 {
			break
		}
		b := results[best].batches[idx[best]]
		idx[best]++
		out = append(out, b)
		nEvents += int64(len(b.Events))
	}
	p.eventsC.Add(nEvents)
	return out, nil
}

// Stats snapshots the exact accounting. Call it from the driving goroutine
// (between Ticks), like every other Pipeline method.
func (p *Pipeline) Stats() Stats {
	s := Stats{
		Ingested:           p.ingested,
		Emitted:            p.emitted,
		Dropped:            p.dropped,
		Merged:             p.merged,
		WatermarkCrossings: p.crossings,
		Ticks:              p.tick,
		Flushes:            p.flushes,
		PerFiberDropped:    make([]int64, len(p.fibers)),
		PerFiberMerged:     make([]int64, len(p.fibers)),
	}
	for i, fs := range p.fibers {
		s.PerFiberDropped[i] = fs.dropped
		s.PerFiberMerged[i] = fs.merged
		s.Queued += int64(fs.ring.n + len(fs.run) + len(fs.pending))
	}
	return s
}

// RunReplay streams whole per-fiber series through the pipeline at one
// sample per fiber per tick — the production-rate schedule equivalent to a
// ProcessBatch replay — followed by a final Flush, and returns each fiber's
// events aligned to the input rows exactly like telemetry.ProcessBatch.
// Each fiber may appear at most once (its detector is owned by one row).
// With backpressure never triggered the result is byte-identical to
// ProcessBatch over the same series.
func (p *Pipeline) RunReplay(series []telemetry.FiberSeries) ([][]telemetry.FiberEvent, error) {
	row := make(map[int]int, len(series))
	maxLen := 0
	for i, fs := range series {
		if fs.Fiber < 0 || fs.Fiber >= len(p.fibers) {
			return nil, fmt.Errorf("ingest: fiber %d out of range [0,%d)", fs.Fiber, len(p.fibers))
		}
		if _, dup := row[fs.Fiber]; dup {
			return nil, fmt.Errorf("ingest: fiber %d appears twice in replay", fs.Fiber)
		}
		row[fs.Fiber] = i
		if len(fs.Samples) > maxLen {
			maxLen = len(fs.Samples)
		}
	}
	out := make([][]telemetry.FiberEvent, len(series))
	for i := range out {
		// ProcessBatch returns a non-nil (possibly empty) row per fiber;
		// match it exactly so the byte-for-byte contract includes rows
		// without events.
		out[i] = []telemetry.FiberEvent{}
	}
	collect := func(batches []FiberEvents) {
		for _, b := range batches {
			i := row[b.Fiber]
			out[i] = append(out[i], b.Events...)
		}
	}
	arrivals := make([]Arrival, 0, len(series))
	for t := 0; t < maxLen; t++ {
		arrivals = arrivals[:0]
		for _, fs := range series {
			if t < len(fs.Samples) {
				arrivals = append(arrivals, Arrival{Fiber: fs.Fiber, Sample: fs.Samples[t]})
			}
		}
		batches, err := p.Tick(arrivals)
		if err != nil {
			return nil, err
		}
		collect(batches)
	}
	batches, err := p.Flush()
	if err != nil {
		return nil, err
	}
	collect(batches)
	return out, nil
}
