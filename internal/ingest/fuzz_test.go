package ingest

import (
	"fmt"
	"math"
	"testing"

	"prete/internal/optical"
	"prete/internal/telemetry"
	"prete/internal/topology"
)

// fuzzNet is the tiny three-fiber topology every FuzzIngest input runs
// against; built once since the pipeline never mutates it.
func fuzzNet(tb testing.TB) *topology.Network {
	tb.Helper()
	net, err := topology.New("fuzz",
		[]topology.Node{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}, {ID: 2, Name: "c"}},
		[]topology.Fiber{
			{ID: 0, A: 0, B: 1, LengthKm: 120, Region: "r1", Vendor: "v1"},
			{ID: 1, A: 1, B: 2, LengthKm: 300, Region: "r2", Vendor: "v2"},
			{ID: 2, A: 0, B: 2, LengthKm: 80, Region: "r1", Vendor: "v2"},
		},
		[]topology.Link{
			{ID: 0, Src: 0, Dst: 1, Capacity: 100, Fibers: []topology.FiberID{0}},
			{ID: 1, Src: 1, Dst: 2, Capacity: 100, Fibers: []topology.FiberID{1}},
			{ID: 2, Src: 0, Dst: 2, Capacity: 100, Fibers: []topology.FiberID{2}},
		})
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// FuzzIngest feeds arbitrary — malformed, out-of-order, duplicate-
// timestamp, gappy, non-finite — arrival schedules through the streaming
// pipeline. The pipeline must never panic; with backpressure disabled the
// serial and sharded executions must agree with each other and with the
// batch replay (telemetry.ProcessBatch); and under fuzz-chosen backpressure
// the accounting identity ingested = emitted + dropped + merged must hold
// exactly once the stream is flushed.
func FuzzIngest(f *testing.F) {
	f.Add([]byte{}, uint8(2), uint8(3), uint8(8), uint8(1), uint8(4))
	// a clean degradation episode on fiber 0
	f.Add([]byte{0, 1, 0, 0, 1, 0, 0, 1, 50, 0, 1, 50, 0, 1, 50, 0, 1, 0, 0}, uint8(2), uint8(2), uint8(16), uint8(0), uint8(1))
	// missing samples and an abrupt cut, duplicate timestamps (dt=0)
	f.Add([]byte{0, 0, 0, 1, 1, 0, 0, 1, 200, 0, 2, 0, 200, 0}, uint8(3), uint8(4), uint8(4), uint8(2), uint8(2))
	// out-of-order timestamps (negative dt) across all three fibers
	f.Add([]byte{1, 255, 60, 0, 0, 1, 30, 0, 2, 129, 90, 1, 1, 255, 60, 0}, uint8(1), uint8(5), uint8(2), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, confirm, shards, ringCap, drain, flushEvery uint8) {
		net := fuzzNet(t)
		// Decode: each 4-byte group is one sample — fiber selector, signed
		// time delta (out-of-order and duplicate timestamps allowed), excess
		// loss in tenths of a dB (252..255 map to huge/NaN/Inf values), and
		// a missing-sample flag.
		series := []telemetry.FiberSeries{{Fiber: 0}, {Fiber: 1}, {Fiber: 2}}
		ts := []int64{1000, 1000, 1000}
		for i := 0; i+3 < len(data) && i < 4*512; i += 4 {
			fi := int(data[i]) % 3
			ts[fi] += int64(int8(data[i+1]))
			excess := float64(data[i+2]) / 10
			switch data[i+2] {
			case 255:
				excess = math.NaN()
			case 254:
				excess = math.Inf(1)
			case 253:
				excess = math.Inf(-1)
			case 252:
				excess = -50 // below any baseline
			}
			loss := excess + 20
			series[fi].Samples = append(series[fi].Samples, optical.Sample{
				UnixS:    ts[fi],
				TxDBm:    3,
				RxDBm:    3 - loss,
				LossDB:   loss,
				ExcessDB: excess,
				State:    optical.Classify(excess),
				Missing:  data[i+3]%2 == 1,
			})
		}
		conf := int(confirm%8) + 1

		// Leg 1: no backpressure — serial, sharded, and batch replay must
		// all agree byte for byte (NaN prints identically, so compare the
		// printed form like FuzzProcessBatch does).
		want, errB := telemetry.ProcessBatch(net, series, conf, 1)
		replay := func(nShards, parallelism int) ([][]telemetry.FiberEvent, error) {
			cfg := DefaultConfig()
			cfg.Shards = nShards
			cfg.Parallelism = parallelism
			cfg.ConfirmSamples = conf
			cfg.RingCapacity = 4
			p, err := New(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return p.RunReplay(series)
		}
		serial, errS := replay(1, 1)
		sharded, errP := replay(int(shards%6)+2, 0)
		if (errS == nil) != (errP == nil) || (errS == nil) != (errB == nil) {
			t.Fatalf("error disagreement: batch=%v serial=%v sharded=%v", errB, errS, errP)
		}
		if errS != nil {
			return
		}
		if fmt.Sprintf("%#v", serial) != fmt.Sprintf("%#v", sharded) {
			t.Fatalf("shard count changed the output:\nserial:  %v\nsharded: %v", serial, sharded)
		}
		if fmt.Sprintf("%#v", serial) != fmt.Sprintf("%#v", want) {
			t.Fatalf("stream diverges from batch replay:\nstream: %v\nbatch:  %v", serial, want)
		}

		// Leg 2: fuzz-chosen backpressure — whatever is shed, the exact
		// accounting identity must survive, per fiber and in total.
		cfg := Config{
			Shards:         int(shards%4) + 1,
			RingCapacity:   int(ringCap%16) + 1,
			HighWatermark:  0.5,
			DrainPerTick:   int(drain % 4), // 0 = unlimited
			FlushTicks:     int(flushEvery%8) + 1,
			ConfirmSamples: conf,
			Parallelism:    1,
		}
		p, err := New(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunReplay(series); err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.Queued != 0 {
			t.Fatalf("%d samples queued after Flush", st.Queued)
		}
		if st.Ingested != st.Emitted+st.Dropped+st.Merged {
			t.Fatalf("accounting leak: %+v", st)
		}
		var perDrop, perMerge int64
		for i := range st.PerFiberDropped {
			perDrop += st.PerFiberDropped[i]
			perMerge += st.PerFiberMerged[i]
		}
		if perDrop != st.Dropped || perMerge != st.Merged {
			t.Fatalf("per-fiber lineage disagrees with totals: %+v", st)
		}
	})
}
