package ingest

import (
	"fmt"
	"reflect"
	"testing"

	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/telemetry"
	"prete/internal/topology"
)

// testSeries synthesizes one degradation episode per fiber with per-fiber
// shapes and missing samples, the same fixture shape the telemetry batch
// tests use, so interpolation and feature extraction are on the tested path.
func testSeries(t *testing.T, net *topology.Network, seed uint64) []telemetry.FiberSeries {
	t.Helper()
	series := make([]telemetry.FiberSeries, len(net.Fibers))
	for i := range net.Fibers {
		rng := stats.SubRNG(seed, uint64(i))
		sim := optical.NewFiberSim(net.Fibers[i].LengthKm, rng)
		prof := optical.DegradationProfile{
			DegreeDB:      4 + 4*rng.Float64(),
			GradientDB:    0.05,
			FluctAmpDB:    0.3,
			FluctPeriodS:  20,
			DurationS:     90,
			LeadsToCut:    i%3 == 0,
			CutDelayS:     70,
			RepairS:       25,
			OnsetUnixS:    1700000000 + int64(i)*7,
			MissingSample: 0.06,
		}
		samples, err := sim.EpisodeSeries(prof, 25)
		if err != nil {
			t.Fatalf("fiber %d: %v", i, err)
		}
		series[i] = telemetry.FiberSeries{Fiber: i, Samples: samples}
	}
	return series
}

// TestReplayMatchesProcessBatch pins the tentpole contract: with
// backpressure never triggered, the streaming pipeline's output equals the
// batch replay byte for byte — across shard counts, parallelism settings,
// and flush windows.
func TestReplayMatchesProcessBatch(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(t, net, 11)
	want, err := telemetry.ProcessBatch(net, series, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var events int
	for _, evs := range want {
		events += len(evs)
	}
	if events == 0 {
		t.Fatal("degenerate fixture: batch replay produced no events")
	}
	for _, shards := range []int{1, 2, 4, 7, 32} {
		for _, parallelism := range []int{1, 0} {
			for _, flushTicks := range []int{1, 16, 1000000} {
				cfg := DefaultConfig()
				cfg.Shards = shards
				cfg.Parallelism = parallelism
				cfg.FlushTicks = flushTicks
				cfg.RingCapacity = 4 // tiny ring, but unlimited drain keeps it empty
				p, err := New(net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := p.RunReplay(series)
				if err != nil {
					t.Fatalf("shards=%d p=%d flush=%d: %v", shards, parallelism, flushTicks, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d p=%d flush=%d: stream output diverges from ProcessBatch", shards, parallelism, flushTicks)
				}
				st := p.Stats()
				if st.Dropped != 0 || st.Merged != 0 {
					t.Fatalf("shards=%d p=%d flush=%d: unexpected backpressure: %+v", shards, parallelism, flushTicks, st)
				}
				if st.Queued != 0 {
					t.Fatalf("shards=%d p=%d flush=%d: %d samples still queued after Flush", shards, parallelism, flushTicks, st.Queued)
				}
				if st.Ingested != st.Emitted {
					t.Fatalf("shards=%d p=%d flush=%d: ingested %d != emitted %d without shedding", shards, parallelism, flushTicks, st.Ingested, st.Emitted)
				}
			}
		}
	}
}

// overloadReplay runs the series through a deliberately starved pipeline
// (tiny rings, one-sample drain) and returns the pipeline for inspection.
func overloadReplay(t *testing.T, net *topology.Network, series []telemetry.FiberSeries, shards int) *Pipeline {
	t.Helper()
	cfg := Config{
		Shards:         shards,
		RingCapacity:   8,
		HighWatermark:  0.5,
		DrainPerTick:   1, // each shard's compute is one sample per tick: ingest outruns it
		FlushTicks:     4,
		ConfirmSamples: 2,
		Parallelism:    1,
	}
	p, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunReplay(series); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOverloadAccountingExact is the fault-injected overload test of the
// acceptance criteria: with compute budgeted far below the arrival rate,
// load is shed, and the accounting identity holds exactly —
// ingested = emitted + dropped + merged — with nothing left queued.
func TestOverloadAccountingExact(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(t, net, 23)
	p := overloadReplay(t, net, series, 3)
	st := p.Stats()
	if st.Dropped == 0 {
		t.Fatal("overload produced no drops")
	}
	if st.Merged == 0 {
		t.Fatal("overload produced no merges")
	}
	if st.WatermarkCrossings == 0 {
		t.Fatal("overload crossed no watermarks")
	}
	if st.Queued != 0 {
		t.Fatalf("%d samples still queued after final Flush", st.Queued)
	}
	if st.Ingested != st.Emitted+st.Dropped+st.Merged {
		t.Fatalf("accounting leak: ingested %d != emitted %d + dropped %d + merged %d",
			st.Ingested, st.Emitted, st.Dropped, st.Merged)
	}
	var perDrop, perMerge int64
	for i := range st.PerFiberDropped {
		perDrop += st.PerFiberDropped[i]
		perMerge += st.PerFiberMerged[i]
	}
	if perDrop != st.Dropped || perMerge != st.Merged {
		t.Fatalf("per-fiber lineage (%d dropped, %d merged) disagrees with totals (%d, %d)",
			perDrop, perMerge, st.Dropped, st.Merged)
	}
}

// TestOverloadDeterministicReplay pins that drop/merge decisions are
// bit-identical across runs for a fixed schedule, configuration, and shard
// count — shed load replays exactly, including its per-fiber lineage and
// the emitted events.
func TestOverloadDeterministicReplay(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(t, net, 29)
	run := func() (Stats, [][]telemetry.FiberEvent) {
		cfg := Config{
			Shards: 3, RingCapacity: 8, HighWatermark: 0.5,
			DrainPerTick: 2, FlushTicks: 4, ConfirmSamples: 2,
		}
		p, err := New(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.RunReplay(series)
		if err != nil {
			t.Fatal(err)
		}
		return p.Stats(), out
	}
	st1, out1 := run()
	st2, out2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("shed-load accounting diverged across identical runs:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Fatal("emitted events diverged across identical runs")
	}
	if st1.Dropped == 0 && st1.Merged == 0 {
		t.Fatal("fixture never triggered backpressure")
	}
}

// TestMergePreservesTransitions pins the merge policy's core invariant:
// only consecutive same-state present samples coalesce, so a buffered state
// transition is never merged away — under total overload the detector still
// sees the healthy→degraded edge.
func TestMergePreservesTransitions(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Shards: 1, RingCapacity: 4, HighWatermark: 0.25,
		DrainPerTick: 1, FlushTicks: 1, ConfirmSamples: 1, Parallelism: 1,
	}
	p, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(t0 int64, excess float64) optical.Sample {
		return optical.Sample{UnixS: t0, TxDBm: 3, RxDBm: 3 - 20 - excess, LossDB: 20 + excess, ExcessDB: excess, State: optical.Classify(excess)}
	}
	// One tick floods fiber 0 far past its ring: a healthy run, a degraded
	// run, and a cut run. Merging compresses each run; the edges survive.
	var arrivals []Arrival
	ts := int64(1000)
	for i := 0; i < 20; i++ {
		arrivals = append(arrivals, Arrival{Fiber: 0, Sample: mk(ts, 0)})
		ts++
	}
	for i := 0; i < 20; i++ {
		arrivals = append(arrivals, Arrival{Fiber: 0, Sample: mk(ts, 5)})
		ts++
	}
	for i := 0; i < 20; i++ {
		arrivals = append(arrivals, Arrival{Fiber: 0, Sample: mk(ts, 30)})
		ts++
	}
	if _, err := p.Tick(arrivals); err != nil {
		t.Fatal(err)
	}
	batches, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	var types []telemetry.EventType
	for _, b := range batches {
		for _, ev := range b.Events {
			types = append(types, ev.Type)
		}
	}
	want := []telemetry.EventType{telemetry.DegradationStart, telemetry.CutDetected}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("got event types %v, want %v", types, want)
	}
	st := p.Stats()
	if st.Merged == 0 {
		t.Fatal("flood produced no merges")
	}
	if st.Ingested != st.Emitted+st.Dropped+st.Merged {
		t.Fatalf("accounting leak: %+v", st)
	}
}

// TestMetricsMirrorStats pins that the ingest.* observability series agree
// exactly with the Stats snapshot — shed load is auditable from the
// registry alone — and that attaching a registry does not change results.
func TestMetricsMirrorStats(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	series := testSeries(t, net, 31)
	bare := overloadReplay(t, net, series, 2)

	reg := obs.NewRegistry()
	cfg := Config{
		Shards: 2, RingCapacity: 8, HighWatermark: 0.5,
		DrainPerTick: 1, FlushTicks: 4, ConfirmSamples: 2,
		Parallelism: 1, Metrics: reg,
	}
	p, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.RunReplay(series)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if !reflect.DeepEqual(st, bare.Stats()) {
		t.Fatal("attaching a metrics registry changed the pipeline's behaviour")
	}
	for name, want := range map[string]int64{
		"ingest.samples.ingested":    st.Ingested,
		"ingest.samples.emitted":     st.Emitted,
		"ingest.samples.dropped":     st.Dropped,
		"ingest.samples.merged":      st.Merged,
		"ingest.watermark.crossings": st.WatermarkCrossings,
		"ingest.ticks":               st.Ticks,
		"ingest.flushes":             st.Flushes,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	var nEvents int64
	for _, evs := range out {
		nEvents += int64(len(evs))
	}
	if got := reg.Counter("ingest.events.emitted").Value(); got != nEvents {
		t.Errorf("ingest.events.emitted = %d, want %d", got, nEvents)
	}
	// Per-shard queue-depth gauges exist and read zero after the final Flush.
	for si := 0; si < cfg.Shards; si++ {
		if got := reg.Gauge(fmt.Sprintf("ingest.shard.%d.depth", si)).Value(); got != 0 {
			t.Errorf("shard %d depth gauge = %v after Flush, want 0", si, got)
		}
	}
}

// TestShardOfStable pins the fiber→shard map: stable across calls, in
// range, and non-degenerate (more than one shard actually used).
func TestShardOfStable(t *testing.T) {
	used := map[int]bool{}
	for f := 0; f < 64; f++ {
		s := ShardOf(f, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d, 4) = %d out of range", f, s)
		}
		if s != ShardOf(f, 4) {
			t.Fatalf("ShardOf(%d, 4) unstable", f)
		}
		used[s] = true
	}
	if len(used) < 2 {
		t.Fatalf("hash degenerates to %d shard(s)", len(used))
	}
	if ShardOf(7, 1) != 0 || ShardOf(7, 0) != 0 {
		t.Fatal("single-shard map must be identically zero")
	}
}

// TestTickValidation pins the error paths: out-of-range fibers are rejected
// before any admission side effect, and duplicate fibers in a replay are
// rejected like System.ObserveBatch rejects them.
func TestTickValidation(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick([]Arrival{{Fiber: len(net.Fibers)}}); err == nil {
		t.Fatal("out-of-range fiber accepted")
	}
	if p.Stats().Ingested != 0 {
		t.Fatal("rejected tick left accounting side effects")
	}
	if _, err := p.RunReplay([]telemetry.FiberSeries{{Fiber: 0}, {Fiber: 0}}); err == nil {
		t.Fatal("duplicate fiber accepted in replay")
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestConfigDefaultsResolved(t *testing.T) {
	net, err := topology.ByName("B4")
	if err != nil {
		t.Fatal(err)
	}
	// An all-zero config resolves every knob to its documented default.
	p, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := p.Config()
	want := Config{Shards: 1, RingCapacity: 1024, HighWatermark: 0.75, FlushTicks: 1, ConfirmSamples: 1}
	if got != want {
		t.Fatalf("resolved config = %+v, want %+v", got, want)
	}
	// Out-of-range watermarks snap back to the default too.
	p, err = New(net, Config{HighWatermark: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().HighWatermark != 0.75 {
		t.Fatalf("watermark = %v, want 0.75", p.Config().HighWatermark)
	}
}
