package sim

import (
	"math"
	"testing"
)

func b4Env(t *testing.T, cfg Config) *Env {
	t.Helper()
	env, err := BuildEnv("B4", 2025, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// fastConfig trims scenario enumeration so unit tests stay quick; the
// experiment harness uses DefaultConfig.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ScenarioOpts.MaxScenarios = 120
	cfg.MaxDegScenarios = 4
	return cfg
}

func TestBuildEnv(t *testing.T) {
	cfg := fastConfig()
	env := b4Env(t, cfg)
	if len(env.PD) != len(env.Net.Fibers) || len(env.PI) != len(env.Net.Fibers) {
		t.Fatal("probability vectors mis-sized")
	}
	for i := range env.PD {
		if env.PD[i] <= 0 || env.PI[i] <= 0 {
			t.Fatalf("non-positive probability at fiber %d", i)
		}
		// §6.1's linear relationship: p_i = (pCut/alpha) * p_d, capped.
		want := math.Min(0.05, cfg.PCutGivenDeg/cfg.Alpha*env.PD[i])
		if math.Abs(env.PI[i]-want) > 1e-12 {
			t.Fatalf("p_i[%d] = %v, want %v", i, env.PI[i], want)
		}
	}
	if len(env.BaseDemands) != len(env.Tunnels.Flows) {
		t.Fatal("demand matrix mis-sized")
	}
	if _, err := BuildEnv("nope", 1, cfg); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestDiurnalDemands(t *testing.T) {
	env := b4Env(t, fastConfig())
	peak := env.DiurnalDemands(20, 1)
	trough := env.DiurnalDemands(4, 1)
	var peakSum, troughSum float64
	for i := range peak {
		peakSum += peak[i]
		troughSum += trough[i]
		if peak[i] <= 0 || trough[i] <= 0 {
			t.Fatal("non-positive demand")
		}
	}
	if peakSum <= troughSum {
		t.Fatalf("evening peak %v should exceed 4am trough %v", peakSum, troughSum)
	}
	// determinism
	again := env.DiurnalDemands(20, 1)
	for i := range peak {
		if peak[i] != again[i] {
			t.Fatal("diurnal demands not deterministic")
		}
	}
}

func TestDegScenariosSumToOne(t *testing.T) {
	env := b4Env(t, fastConfig())
	ds := env.DegScenarios(fastConfig())
	var sum float64
	for _, s := range ds {
		if s.Prob < 0 {
			t.Fatalf("negative scenario probability %+v", s)
		}
		sum += s.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("degradation scenarios sum to %v", sum)
	}
	if ds[0].Fiber != -1 {
		t.Fatal("first scenario must be no-degradation")
	}
	if len(ds) != 5 { // 1 + MaxDegScenarios(4)
		t.Fatalf("scenario count = %d", len(ds))
	}
}

func TestTruthProbs(t *testing.T) {
	cfg := fastConfig()
	env := b4Env(t, cfg)
	quiet := env.TruthProbs(cfg, -1)
	for i := range quiet {
		if math.Abs(quiet[i]-(1-cfg.Alpha)*env.PI[i]) > 1e-12 {
			t.Fatal("quiet-world probabilities should be the Theorem 4.1 residual")
		}
	}
	deg := env.TruthProbs(cfg, 3)
	if deg[3] != cfg.PCutGivenDeg {
		t.Fatalf("degraded fiber probability = %v", deg[3])
	}
}

func TestNines(t *testing.T) {
	if got := Nines(0.999); math.Abs(got-3) > 1e-9 {
		t.Fatalf("Nines(0.999) = %v", got)
	}
	if !math.IsInf(Nines(1), 1) || Nines(0) != 0 || Nines(-1) != 0 {
		t.Fatal("Nines edge cases wrong")
	}
}

func TestEvaluateUnknownScheme(t *testing.T) {
	env := b4Env(t, fastConfig())
	ev := NewEvaluator(env, fastConfig())
	if _, err := ev.Evaluate("nope", 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestEvaluateECMPBounds(t *testing.T) {
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	a, err := ev.Evaluate("ECMP", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Min < 0 || a.Min > 1 || a.Mean < a.Min {
		t.Fatalf("availability out of bounds: %+v", a)
	}
}

// TestFig13Ordering is the core shape check: at a moderate demand scale the
// scheme ordering of Fig 13 must hold — PreTE and Oracle above TeaVar and
// FFC-1, everything above ECMP, Oracle the upper bound of PreTE.
func TestFig13Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	avail := map[string]float64{}
	for _, s := range []string{"ECMP", "FFC-1", "TeaVar", "PreTE", "Oracle"} {
		a, err := ev.Evaluate(s, 3)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		avail[s] = a.Mean
		t.Logf("%-8s mean availability %.6f (%.2f nines)", s, a.Mean, Nines(a.Mean))
	}
	if avail["Oracle"] < avail["PreTE"]-1e-9 {
		t.Errorf("oracle (%v) below PreTE (%v)", avail["Oracle"], avail["PreTE"])
	}
	if avail["PreTE"] < avail["TeaVar"]-1e-9 {
		t.Errorf("PreTE (%v) below TeaVar (%v)", avail["PreTE"], avail["TeaVar"])
	}
	if avail["TeaVar"] < avail["ECMP"]-1e-9 {
		t.Errorf("TeaVar (%v) below ECMP (%v)", avail["TeaVar"], avail["ECMP"])
	}
}

func TestAvailabilityMonotoneInScale(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	prev := 2.0
	for _, scale := range []float64{1, 3, 6} {
		a, err := ev.Evaluate("TeaVar", scale)
		if err != nil {
			t.Fatal(err)
		}
		if a.Mean > prev+1e-9 {
			t.Fatalf("availability rose with demand scale: %v -> %v", prev, a.Mean)
		}
		prev = a.Mean
	}
}

func TestPreTEBeatsNaiveUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	full, err := ev.Evaluate("PreTE", 4)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ev.Evaluate("PreTE-naive", 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PreTE %.6f vs naive %.6f", full.Mean, naive.Mean)
	// On B4's well-provisioned tunnel sets the reactive tunnels add little
	// (the Fig 16a gain shows at high availability on IBM); here we only
	// require that establishing them never costs more than LP tie-breaking
	// noise.
	if full.Mean < naive.Mean-5e-3 {
		t.Fatalf("tunnel establishment hurt availability: %v < %v", full.Mean, naive.Mean)
	}
}

func TestARROWCappedByRestoration(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	a, err := ev.Evaluate("ARROW", 1)
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: ARROW cannot reach 99.95% even at scale 1 because affected
	// flows always pay the restoration window — assert on the most
	// failure-exposed flow.
	if a.Min >= 0.9995 {
		t.Fatalf("ARROW min availability %v should sit below 99.95%%", a.Min)
	}
	if a.Mean < 0.98 {
		t.Fatalf("ARROW availability %v implausibly low at scale 1", a.Mean)
	}
}

func TestOracleQualityIsPerfect(t *testing.T) {
	q := OracleQuality()
	if q.PHatFail != 1 || q.PHatOK != 0 {
		t.Fatal("oracle quality wrong")
	}
	if q.clampPHat(1.5) != 1 || q.clampPHat(-0.5) != 0 {
		t.Fatal("clamp wrong")
	}
}
