package sim

import (
	"fmt"
	"sort"

	"prete/internal/core"
	"prete/internal/ml"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/te"
	"prete/internal/topology"
	"prete/internal/trace"
)

// ReplayConfig drives an epoch-by-epoch replay of a generated trace
// through the full pipeline: degradation episodes raise signals, a real
// predictor scores them, the scheme plans, and the trace's actual cuts
// determine delivered traffic.
type ReplayConfig struct {
	// Scheme is "PreTE" or "TeaVar".
	Scheme string
	Beta   float64
	// DemandGbps is the uniform per-flow demand.
	DemandGbps float64
	// Predictor scores degradation episodes; nil uses the 0.40 fallback.
	Predictor ml.Predictor
	// MaxEventEpochs caps how many event-bearing epochs are replayed (the
	// quiet majority is accounted analytically with the quiet plan).
	MaxEventEpochs int
	// ScenarioOpts bounds planning scenario enumeration.
	ScenarioOpts scenario.Options
}

// DefaultReplayConfig returns moderate settings.
func DefaultReplayConfig(scheme string) ReplayConfig {
	return ReplayConfig{
		Scheme: scheme, Beta: 0.99, DemandGbps: 60,
		MaxEventEpochs: 150,
		ScenarioOpts:   scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 300},
	}
}

// ReplayResult summarizes a replay.
type ReplayResult struct {
	Scheme          string
	EventEpochs     int // epochs replayed with a degradation and/or cut
	CutEpochs       int // epochs in which a cut landed
	PredictedCuts   int // cuts whose epoch had an active, predicted signal
	FlowEpochs      int // flow-epoch pairs evaluated in event epochs
	LostFlowEpochs  int // flow-epochs with unmet demand at the cut instant
	LostGbps        float64
	EstablishedTuns int
}

// LossRate returns the fraction of evaluated flow-epochs that saw loss.
func (r ReplayResult) LossRate() float64 {
	if r.FlowEpochs == 0 {
		return 0
	}
	return float64(r.LostFlowEpochs) / float64(r.FlowEpochs)
}

// Replay runs the pipeline over the trace's event timeline.
func Replay(tr *trace.Trace, cfg ReplayConfig) (*ReplayResult, error) {
	if cfg.Scheme != "PreTE" && cfg.Scheme != "TeaVar" {
		return nil, fmt.Errorf("sim: replay supports PreTE and TeaVar, not %q", cfg.Scheme)
	}
	if cfg.MaxEventEpochs <= 0 {
		cfg.MaxEventEpochs = 150
	}
	net := tr.Net
	tunnels, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		return nil, err
	}
	demands := make(te.Demands, len(tunnels.Flows))
	for i := range demands {
		demands[i] = cfg.DemandGbps
	}
	var planner *core.PreTE
	if cfg.Scheme == "PreTE" {
		planner = core.New()
	} else {
		planner = core.NewTeaVar()
	}
	planner.ScenarioOpts = cfg.ScenarioOpts

	// Index events by epoch.
	epochS := int64(tr.Cfg.EpochS)
	episodesByEpoch := make(map[int64][]trace.Episode)
	for _, ep := range tr.Episodes {
		e := ep.OnsetUnixS / epochS
		episodesByEpoch[e] = append(episodesByEpoch[e], ep)
	}
	cutsByEpoch := make(map[int64][]trace.Cut)
	for _, c := range tr.Cuts {
		e := c.AtUnixS / epochS
		cutsByEpoch[e] = append(cutsByEpoch[e], c)
	}
	epochSet := make(map[int64]bool)
	for e := range episodesByEpoch {
		epochSet[e] = true
	}
	for e := range cutsByEpoch {
		epochSet[e] = true
	}
	epochs := make([]int64, 0, len(epochSet))
	for e := range epochSet {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	if len(epochs) > cfg.MaxEventEpochs {
		epochs = epochs[:cfg.MaxEventEpochs]
	}

	res := &ReplayResult{Scheme: cfg.Scheme}
	for _, e := range epochs {
		res.EventEpochs++
		// Signals active this epoch (PreTE reacts; TeaVar's engine ignores
		// them by construction).
		var signals []core.DegradationSignal
		predicted := make(map[int]bool)
		for _, ep := range episodesByEpoch[e] {
			pHat := 0.40
			if cfg.Predictor != nil {
				pHat = cfg.Predictor.PredictProb(ep.Features)
			}
			signals = append(signals, core.DegradationSignal{
				Fiber: topology.FiberID(ep.Fiber), PNN: pHat,
			})
			if pHat >= 0.5 {
				predicted[ep.Fiber] = true
			}
		}
		plan, err := planner.PlanEpoch(core.EpochInput{
			Net: net, Tunnels: tunnels, Demands: demands,
			Beta: cfg.Beta, PI: tr.CutProb, Signals: signals,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: replay epoch %d: %w", e, err)
		}
		if plan.Update != nil {
			res.EstablishedTuns += plan.Update.NewTunnels
		}
		// Apply the epoch's actual cuts.
		cuts := cutsByEpoch[e]
		if len(cuts) == 0 {
			continue
		}
		res.CutEpochs++
		cut := make(map[topology.FiberID]bool)
		for _, c := range cuts {
			cut[topology.FiberID(c.Fiber)] = true
			if predicted[c.Fiber] {
				res.PredictedCuts++
			}
		}
		for _, fl := range tunnels.Flows {
			res.FlowEpochs++
			delivered := te.Delivered(plan.Plan, fl.ID, demands[fl.ID], cut)
			if delivered < demands[fl.ID]*(1-1e-6) {
				res.LostFlowEpochs++
				res.LostGbps += demands[fl.ID] - delivered
			}
		}
	}
	return res, nil
}
