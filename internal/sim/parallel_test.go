package sim

import (
	"reflect"
	"testing"
)

// TestEvaluateDeterministicAcrossParallelism pins the evaluator's
// guarantee: per-flow availability is bit-identical at every Parallelism
// setting, for every scheme, on both evaluation topologies. Configs are
// trimmed (fewer scenarios) so the table stays fast; determinism does not
// depend on scale.
func TestEvaluateDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	schemes := []string{"TeaVar", "ARROW", "Flexile", "PreTE", "Oracle"}
	for _, topo := range []string{"B4", "IBM"} {
		cfg := DefaultConfig()
		cfg.ScenarioOpts.MaxScenarios = 60
		cfg.MaxDegScenarios = 3
		cfg.Parallelism = 1
		env, err := BuildEnv(topo, 2025, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[string]Availability)
		ev := NewEvaluator(env, cfg)
		for _, s := range schemes {
			a, err := ev.Evaluate(s, 1.5)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", topo, s, err)
			}
			want[s] = a
		}
		for _, p := range []int{2, 8} {
			pcfg := cfg
			pcfg.Parallelism = p
			pev := NewEvaluator(env, pcfg)
			for _, s := range schemes {
				got, err := pev.Evaluate(s, 1.5)
				if err != nil {
					t.Fatalf("%s/%s parallelism %d: %v", topo, s, p, err)
				}
				if !reflect.DeepEqual(got.PerFlow, want[s].PerFlow) {
					t.Errorf("%s/%s parallelism %d: per-flow availability diverges from serial", topo, s, p)
				}
				if got.Min != want[s].Min || got.Mean != want[s].Mean {
					t.Errorf("%s/%s parallelism %d: min/mean = %v/%v, want %v/%v",
						topo, s, p, got.Min, got.Mean, want[s].Min, want[s].Mean)
				}
			}
		}
	}
}
