package sim

import (
	"fmt"

	"prete/internal/core"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/te"
	"prete/internal/topology"
)

// PredictorQuality models how good the failure predictor is, in the terms
// the evaluation needs: the expected probability it reports for episodes
// that truly fail and for episodes that do not. The oracle is {1, 0}; a
// TeaVar-style non-predictor reports the tiny static probability in both
// cases. Fig 15 sweeps this across the Table 5 models.
type PredictorQuality struct {
	Name     string
	PHatFail float64 // E[p-hat | episode leads to a cut]
	PHatOK   float64 // E[p-hat | episode does not]
}

// OracleQuality is the perfect predictor.
func OracleQuality() PredictorQuality {
	return PredictorQuality{Name: "Oracle", PHatFail: 1, PHatOK: 0}
}

// NNQuality approximates the paper's NN (Table 5: P = R = 0.81).
func NNQuality() PredictorQuality { return PredictorQuality{Name: "NN", PHatFail: 0.81, PHatOK: 0.19} }

// Evaluator measures a scheme's availability in an environment.
type Evaluator struct {
	Env *Env
	Cfg Config
	// Quality parameterizes PreTE-like schemes' predictions; ignored by
	// static schemes.
	Quality PredictorQuality

	// caches
	recomputeCache map[string]*te.Plan // Flexile post-failure plans
	oracleCache    map[string]*te.Plan // oracle per-cut plans
	restoreCache   map[string]*te.Plan // ARROW post-restoration plans
}

// NewEvaluator builds an evaluator with the NN-quality predictor.
func NewEvaluator(env *Env, cfg Config) *Evaluator {
	return &Evaluator{
		Env: env, Cfg: cfg, Quality: NNQuality(),
		recomputeCache: make(map[string]*te.Plan),
		oracleCache:    make(map[string]*te.Plan),
		restoreCache:   make(map[string]*te.Plan),
	}
}

// Evaluate measures availability for a named scheme at a demand scale.
// Scheme names: ECMP, FFC-1, FFC-2, TeaVar, ARROW, Flexile, Oracle, PreTE,
// PreTE-naive.
func (ev *Evaluator) Evaluate(schemeName string, scale float64) (Availability, error) {
	demands := ev.Env.BaseDemands.Scale(scale)
	return ev.EvaluateDemands(schemeName, demands, demands)
}

// EvaluateDemands separates the demands the scheme plans with from the
// true demands used to judge satisfaction — the workload-uncertainty knob
// of Fig 17 (a scheme without demand prediction plans on stale demand).
func (ev *Evaluator) EvaluateDemands(schemeName string, planned, truth te.Demands) (Availability, error) {
	switch schemeName {
	case "ECMP", "FFC-1", "FFC-2", "TeaVar", "ARROW", "Flexile":
		return ev.evaluateStatic(schemeName, planned, truth)
	case "Oracle":
		return ev.evaluateOracle(planned, truth)
	case "PreTE", "PreTE-naive":
		ratio := 1.0
		if schemeName == "PreTE-naive" {
			ratio = 0
		}
		return ev.evaluatePreTE(planned, truth, ratio)
	default:
		return Availability{}, fmt.Errorf("sim: unknown scheme %q", schemeName)
	}
}

// EvaluatePreTERatio evaluates PreTE with an explicit new-tunnel ratio —
// the §6.4 sensitivity knob of Fig 16.
func (ev *Evaluator) EvaluatePreTERatio(scale, ratio float64) (Availability, error) {
	d := ev.Env.BaseDemands.Scale(scale)
	return ev.evaluatePreTE(d, d, ratio)
}

// staticPlan computes the single pre-failure plan of a static scheme.
func (ev *Evaluator) staticPlan(schemeName string, demands te.Demands) (*te.Plan, error) {
	set, err := scenario.Enumerate(scenario.Static(ev.Env.PI), ev.Cfg.ScenarioOpts)
	if err != nil {
		return nil, err
	}
	in := &te.Input{
		Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
		Scenarios: set, Beta: ev.Cfg.Beta,
	}
	switch schemeName {
	case "ECMP":
		return te.ECMP{}.Plan(in)
	case "FFC-1":
		return te.FFC{K: 1}.Plan(in)
	case "FFC-2":
		return te.FFC{K: 2}.Plan(in)
	case "TeaVar":
		tv := core.NewTeaVar()
		ep, err := tv.PlanEpoch(core.EpochInput{
			Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
			Beta: ev.Cfg.Beta, PI: ev.Env.PI,
		})
		if err != nil {
			return nil, err
		}
		return ep.Plan, nil
	case "ARROW":
		return te.ARROW{RestorationS: ev.Cfg.ARROWRestorationS}.Plan(in)
	case "Flexile":
		return te.Flexile{ConvergenceS: ev.Cfg.FlexileConvergenceS}.Plan(in)
	}
	return nil, fmt.Errorf("sim: not a static scheme: %q", schemeName)
}

// evaluateStatic handles schemes whose plan ignores degradation signals.
func (ev *Evaluator) evaluateStatic(schemeName string, planned, truth te.Demands) (Availability, error) {
	plan, err := ev.staticPlan(schemeName, planned)
	if err != nil {
		return Availability{}, err
	}
	perFlow := make([]float64, len(ev.Env.Tunnels.Flows))
	for _, ds := range ev.Env.DegScenarios(ev.Cfg) {
		probs := ev.Env.TruthProbs(ev.Cfg, ds.Fiber)
		fs, err := scenario.Enumerate(probs, ev.Cfg.ScenarioOpts)
		if err != nil {
			return Availability{}, err
		}
		for _, q := range fs.Scenarios {
			cut := q.CutSet()
			for fi := range perFlow {
				credit := ev.credit(schemeName, plan, planned, truth, routing.FlowID(fi), cut)
				perFlow[fi] += ds.Prob * q.Prob * credit
			}
		}
		// the un-enumerated failure tail counts as loss for every flow
	}
	return summarize(perFlow), nil
}

// credit returns the fraction of the epoch during which the flow's full
// demand is delivered, per the scheme's reaction model.
func (ev *Evaluator) credit(schemeName string, plan *te.Plan, planned, truth te.Demands, f routing.FlowID, cut map[topology.FiberID]bool) float64 {
	d := truth[f]
	if d <= 0 {
		return 1
	}
	okNow := te.Satisfied(plan, f, d, cut)
	switch schemeName {
	case "ARROW":
		if okNow {
			return 1
		}
		// Restoration rebuilds a fraction of the lost capacity on surviving
		// spectrum after the restoration window; the flow is whole again
		// only if the restored network can carry it.
		post := ev.arrowRestore(planned, cut)
		if post != nil && te.Satisfied(post, f, d, nil) {
			return 1 - ev.Cfg.ARROWRestorationS/ev.Cfg.EpochS
		}
		return 0
	case "Flexile":
		if okNow {
			// Unaffected by this failure; recomputation may still shuffle
			// it, but it keeps service.
			return 1
		}
		post := ev.flexileRecompute(planned, cut)
		if post != nil && te.Satisfied(post, f, d, cut) {
			return 1 - ev.Cfg.FlexileConvergenceS/ev.Cfg.EpochS
		}
		return 0
	default: // proactive rate adaptation: instant or nothing
		if okNow {
			return 1
		}
		return 0
	}
}

// flexileRecompute returns (and caches) the post-failure optimal plan.
func (ev *Evaluator) flexileRecompute(demands te.Demands, cut map[topology.FiberID]bool) *te.Plan {
	key := cutKey(cut) + fmt.Sprintf("|%f", demands[0])
	if p, ok := ev.recomputeCache[key]; ok {
		return p
	}
	in := &te.Input{
		Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
		Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
		Beta:      ev.Cfg.Beta,
	}
	p, err := te.Flexile{}.Recompute(in, cut)
	if err != nil {
		p = nil
	}
	ev.recomputeCache[key] = p
	return p
}

// arrowRestore returns (and caches) the plan on the partially restored
// network: links that rode cut fibers come back at ARROWRestoreFrac of
// their capacity.
func (ev *Evaluator) arrowRestore(demands te.Demands, cut map[topology.FiberID]bool) *te.Plan {
	key := "arrow|" + cutKey(cut) + fmt.Sprintf("|%f", demands[0])
	if p, ok := ev.restoreCache[key]; ok {
		return p
	}
	caps := make(map[topology.LinkID]float64)
	for f := range cut {
		if !cut[f] {
			continue
		}
		for _, lid := range ev.Env.Net.LinksOnFiber(f) {
			caps[lid] = ev.Env.Net.Link(lid).Capacity * ev.Cfg.ARROWRestoreFrac
		}
	}
	in := &te.Input{
		Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
		Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
		Beta:      ev.Cfg.Beta,
	}
	p, err := te.MinMaxLossPlanWithCaps(in, nil, caps)
	if err != nil {
		p = nil
	}
	ev.restoreCache[key] = p
	return p
}

func cutKey(cut map[topology.FiberID]bool) string {
	b := make([]byte, len(cut)*3)
	i := 0
	// map iteration order doesn't matter if we sort by accumulating bits
	var bits [64]bool
	for f := range cut {
		if int(f) < 64 {
			bits[f] = true
		}
	}
	for f, on := range bits {
		if on {
			b[i] = byte(f)
			i++
		}
	}
	return string(b[:i])
}

// evaluateOracle: per failure scenario, the oracle switches (ahead of the
// failure) to the optimal plan for the post-failure topology, with new
// tunnels for the cut fibers.
func (ev *Evaluator) evaluateOracle(planned, truth te.Demands) (Availability, error) {
	perFlow := make([]float64, len(ev.Env.Tunnels.Flows))
	for _, ds := range ev.Env.DegScenarios(ev.Cfg) {
		probs := ev.Env.TruthProbs(ev.Cfg, ds.Fiber)
		fs, err := scenario.Enumerate(probs, ev.Cfg.ScenarioOpts)
		if err != nil {
			return Availability{}, err
		}
		for _, q := range fs.Scenarios {
			cut := q.CutSet()
			plan, err := ev.oraclePlan(planned, q.Cut)
			if err != nil {
				return Availability{}, err
			}
			for fi := range perFlow {
				if te.Satisfied(plan, routing.FlowID(fi), truth[fi], cut) {
					perFlow[fi] += ds.Prob * q.Prob
				}
			}
		}
	}
	return summarize(perFlow), nil
}

func (ev *Evaluator) oraclePlan(demands te.Demands, cutList []topology.FiberID) (*te.Plan, error) {
	cut := make(map[topology.FiberID]bool, len(cutList))
	for _, f := range cutList {
		cut[f] = true
	}
	key := cutKey(cut) + fmt.Sprintf("|%f", demands[0])
	if p, ok := ev.oracleCache[key]; ok {
		return p, nil
	}
	// With future knowledge the oracle pre-establishes detour tunnels for
	// the fibers about to fail (the Fig 3 behaviour).
	tunnels := ev.Env.Tunnels
	for _, f := range cutList {
		res, err := core.UpdateTunnels(tunnels, f, 1)
		if err != nil {
			return nil, err
		}
		tunnels = res.Tunnels
	}
	in := &te.Input{
		Net: ev.Env.Net, Tunnels: tunnels, Demands: demands,
		Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
		Beta:      ev.Cfg.Beta,
	}
	p, err := te.MinMaxLossPlan(in, cut)
	if err != nil {
		return nil, err
	}
	ev.oracleCache[key] = p
	return p, nil
}

// evaluatePreTE: the quiet scenario uses the Theorem 4.1-calibrated static
// plan; each degradation scenario splits into the episode-fails and
// episode-benign worlds, with the predictor's conditional output (the
// Quality knob) driving the plan in each.
func (ev *Evaluator) evaluatePreTE(planned, truth te.Demands, ratio float64) (Availability, error) {
	p := core.New()
	p.TunnelRatio = ratio
	p.ScenarioOpts = ev.Cfg.ScenarioOpts
	p.Alpha = ev.Cfg.Alpha

	perFlow := make([]float64, len(ev.Env.Tunnels.Flows))
	for _, ds := range ev.Env.DegScenarios(ev.Cfg) {
		if ds.Fiber < 0 {
			// Quiet epoch: calibrated plan, no signals.
			ep, err := p.PlanEpoch(core.EpochInput{
				Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: planned,
				Beta: ev.Cfg.Beta, PI: ev.Env.PI,
			})
			if err != nil {
				return Availability{}, err
			}
			if err := ev.accumulate(perFlow, ds.Prob, truth, ep.Plan, ds.Fiber, -1); err != nil {
				return Availability{}, err
			}
			continue
		}
		// Degraded epoch: two worlds by the episode's true outcome.
		for _, world := range []struct {
			prob float64
			pHat float64
			fail bool
		}{
			{ev.Cfg.PCutGivenDeg, ev.Quality.PHatFail, true},
			{1 - ev.Cfg.PCutGivenDeg, ev.Quality.PHatOK, false},
		} {
			ep, err := p.PlanEpoch(core.EpochInput{
				Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: planned,
				Beta: ev.Cfg.Beta, PI: ev.Env.PI,
				Signals: []core.DegradationSignal{{Fiber: topology.FiberID(ds.Fiber), PNN: ev.Quality.clampPHat(world.pHat)}},
			})
			if err != nil {
				return Availability{}, err
			}
			failFiber := -1
			if world.fail {
				failFiber = ds.Fiber
			}
			if err := ev.accumulate(perFlow, ds.Prob*world.prob, truth, ep.Plan, ds.Fiber, failFiber); err != nil {
				return Availability{}, err
			}
		}
	}
	return summarize(perFlow), nil
}

func (q PredictorQuality) clampPHat(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// accumulate integrates a plan's per-flow credit over the failure
// scenarios of one (degradation scenario, world) branch. failFiber >= 0
// forces that fiber to be cut (the episode truly fails); the remaining
// fibers fail with the Theorem 4.1 residual probability.
func (ev *Evaluator) accumulate(perFlow []float64, branchProb float64, truth te.Demands, plan *te.Plan, degFiber, failFiber int) error {
	probs := make([]float64, len(ev.Env.PI))
	for i, p := range ev.Env.PI {
		probs[i] = (1 - ev.Cfg.Alpha) * p
	}
	if failFiber >= 0 {
		probs[failFiber] = 1
	} else if degFiber >= 0 {
		probs[degFiber] = 0 // benign world: this episode does not cut
	}
	fs, err := scenario.Enumerate(probs, ev.Cfg.ScenarioOpts)
	if err != nil {
		return err
	}
	for _, q := range fs.Scenarios {
		cut := q.CutSet()
		for fi := range perFlow {
			if te.Satisfied(plan, routing.FlowID(fi), truth[fi], cut) {
				perFlow[fi] += branchProb * q.Prob
			}
		}
	}
	return nil
}
