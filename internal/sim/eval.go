package sim

import (
	"fmt"
	"sync"

	"prete/internal/core"
	"prete/internal/obs"
	"prete/internal/par"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/te"
	"prete/internal/topology"
)

// PredictorQuality models how good the failure predictor is, in the terms
// the evaluation needs: the expected probability it reports for episodes
// that truly fail and for episodes that do not. The oracle is {1, 0}; a
// TeaVar-style non-predictor reports the tiny static probability in both
// cases. Fig 15 sweeps this across the Table 5 models.
type PredictorQuality struct {
	Name     string
	PHatFail float64 // E[p-hat | episode leads to a cut]
	PHatOK   float64 // E[p-hat | episode does not]
}

// OracleQuality is the perfect predictor.
func OracleQuality() PredictorQuality {
	return PredictorQuality{Name: "Oracle", PHatFail: 1, PHatOK: 0}
}

// NNQuality approximates the paper's NN (Table 5: P = R = 0.81).
func NNQuality() PredictorQuality { return PredictorQuality{Name: "NN", PHatFail: 0.81, PHatOK: 0.19} }

// Evaluator measures a scheme's availability in an environment. The
// degradation-scenario loop fans out across Cfg.Parallelism workers; each
// scenario's contribution is accumulated into its own partial vector and
// the partials are summed in scenario order, so the result is bit-identical
// at every parallelism level.
type Evaluator struct {
	Env *Env
	Cfg Config
	// Quality parameterizes PreTE-like schemes' predictions; ignored by
	// static schemes.
	Quality PredictorQuality

	// caches; mu guards them so concurrent scenario workers can share
	// post-failure plans. Cache values are pure functions of their keys
	// (the LP solver is deterministic), so a racing duplicate computation
	// produces the same plan and determinism is unaffected.
	mu             sync.Mutex
	recomputeCache map[string]*te.Plan // Flexile post-failure plans
	oracleCache    map[string]*te.Plan // oracle per-cut plans
	restoreCache   map[string]*te.Plan // ARROW post-restoration plans
	// enumCache memoizes scenario enumeration by input fingerprint
	// (probability vector + Cfg.ScenarioOpts). Enumerate is a pure
	// deterministic function of exactly those inputs, so the cached set is
	// interchangeable with a fresh one — and every degradation scenario,
	// every world branch, and every cell of a sweep that lands on the same
	// probabilities (e.g. the quiet-epoch vector, identical across all of
	// ExpFig13's grid cells for a given env) reuses one enumeration
	// instead of paying the O(fibers²) pair sweep again.
	enumCache map[scenario.Fingerprint]*scenario.Set
}

// NewEvaluator builds an evaluator with the NN-quality predictor.
func NewEvaluator(env *Env, cfg Config) *Evaluator {
	return &Evaluator{
		Env: env, Cfg: cfg, Quality: NNQuality(),
		recomputeCache: make(map[string]*te.Plan),
		oracleCache:    make(map[string]*te.Plan),
		restoreCache:   make(map[string]*te.Plan),
		enumCache:      make(map[scenario.Fingerprint]*scenario.Set),
	}
}

// enumerate returns the scenario set for probs under Cfg.ScenarioOpts,
// memoized through enumCache. Sets are shared read-only; concurrent workers
// may duplicate a miss, in which case the first store wins and the racing
// results are identical anyway (Enumerate is deterministic).
func (ev *Evaluator) enumerate(probs []float64) (*scenario.Set, error) {
	m := ev.metrics()
	fp := scenario.FingerprintProbs(probs, ev.Cfg.ScenarioOpts)
	ev.mu.Lock()
	set, ok := ev.enumCache[fp]
	ev.mu.Unlock()
	if ok {
		m.enumHits.Inc()
		return set, nil
	}
	m.enumMisses.Inc()
	set, err := scenario.Enumerate(probs, ev.Cfg.ScenarioOpts)
	if err != nil {
		return nil, err
	}
	ev.mu.Lock()
	if prev, ok := ev.enumCache[fp]; ok {
		set = prev
	} else {
		ev.enumCache[fp] = set
	}
	ev.mu.Unlock()
	return set, nil
}

// integrateScenarios reduces one degradation-scenario task's evaluation
// matrix: contrib fills row (length nFlows, zeroed) with failure scenario
// q's per-flow contribution, and the rows are summed in scenario order.
// With Cfg.ScenarioShards > 1 the contrib calls are partitioned into
// contiguous scenario shards — each shard's work-unit quota is its slice of
// the scenario count, quotas never truncate work — and fanned across par
// workers; the reduction stays serial in scenario order either way, so the
// result is bit-identical at every shard count and parallelism level.
func (ev *Evaluator) integrateScenarios(fs *scenario.Set, nFlows int, contrib func(q scenario.Scenario, row []float64) error) ([]float64, error) {
	n := len(fs.Scenarios)
	out := make([]float64, nFlows)
	shards := ev.Cfg.ScenarioShards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		// Historical single-pass path: one reusable row, accumulated as
		// each scenario is evaluated.
		row := make([]float64, nFlows)
		for _, q := range fs.Scenarios {
			for i := range row {
				row[i] = 0
			}
			if err := contrib(q, row); err != nil {
				return nil, err
			}
			for i, v := range row {
				out[i] += v
			}
		}
		return out, nil
	}
	ev.metrics().shardBatches.Inc()
	// Sharded path: per-scenario rows computed by shard workers (quota =
	// contiguous ceil(n/shards) slice each), reduced serially afterwards.
	rows := make([][]float64, n)
	quota := (n + shards - 1) / shards
	if _, err := par.MapErr(shards, ev.Cfg.Parallelism, func(s int) (struct{}, error) {
		lo, hi := s*quota, (s+1)*quota
		if hi > n {
			hi = n
		}
		for qi := lo; qi < hi; qi++ {
			row := make([]float64, nFlows)
			if err := contrib(fs.Scenarios[qi], row); err != nil {
				return struct{}{}, err
			}
			rows[qi] = row
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}
	for _, row := range rows {
		for i, v := range row {
			out[i] += v
		}
	}
	return out, nil
}

// Evaluate measures availability for a named scheme at a demand scale.
// Scheme names: ECMP, FFC-1, FFC-2, TeaVar, ARROW, Flexile, Oracle, PreTE,
// PreTE-naive.
func (ev *Evaluator) Evaluate(schemeName string, scale float64) (Availability, error) {
	demands := ev.Env.BaseDemands.Scale(scale)
	return ev.EvaluateDemands(schemeName, demands, demands)
}

// EvaluateDemands separates the demands the scheme plans with from the
// true demands used to judge satisfaction — the workload-uncertainty knob
// of Fig 17 (a scheme without demand prediction plans on stale demand).
func (ev *Evaluator) EvaluateDemands(schemeName string, planned, truth te.Demands) (Availability, error) {
	switch schemeName {
	case "ECMP", "FFC-1", "FFC-2", "TeaVar", "ARROW", "Flexile":
		return ev.evaluateStatic(schemeName, planned, truth)
	case "Oracle":
		return ev.evaluateOracle(planned, truth)
	case "PreTE", "PreTE-naive":
		ratio := 1.0
		if schemeName == "PreTE-naive" {
			ratio = 0
		}
		return ev.evaluatePreTE(planned, truth, ratio)
	default:
		return Availability{}, fmt.Errorf("sim: unknown scheme %q", schemeName)
	}
}

// EvaluatePreTERatio evaluates PreTE with an explicit new-tunnel ratio —
// the §6.4 sensitivity knob of Fig 16.
func (ev *Evaluator) EvaluatePreTERatio(scale, ratio float64) (Availability, error) {
	d := ev.Env.BaseDemands.Scale(scale)
	return ev.evaluatePreTE(d, d, ratio)
}

// staticPlan computes the single pre-failure plan of a static scheme.
func (ev *Evaluator) staticPlan(schemeName string, demands te.Demands) (*te.Plan, error) {
	set, err := ev.enumerate(scenario.Static(ev.Env.PI))
	if err != nil {
		return nil, err
	}
	in := &te.Input{
		Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
		Scenarios: set, Beta: ev.Cfg.Beta,
	}
	switch schemeName {
	case "ECMP":
		return te.ECMP{}.Plan(in)
	case "FFC-1":
		return te.FFC{K: 1}.Plan(in)
	case "FFC-2":
		return te.FFC{K: 2}.Plan(in)
	case "TeaVar":
		tv := core.NewTeaVar()
		tv.Opt.Parallelism = ev.Cfg.Parallelism
		tv.Opt.BudgetUnits = ev.Cfg.SolveBudget
		tv.Opt.Metrics = ev.Cfg.Metrics
		ep, err := tv.PlanEpoch(core.EpochInput{
			Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
			Beta: ev.Cfg.Beta, PI: ev.Env.PI,
		})
		if err != nil {
			return nil, err
		}
		return ep.Plan, nil
	case "ARROW":
		return te.ARROW{RestorationS: ev.Cfg.ARROWRestorationS}.Plan(in)
	case "Flexile":
		return te.Flexile{ConvergenceS: ev.Cfg.FlexileConvergenceS}.Plan(in)
	}
	return nil, fmt.Errorf("sim: not a static scheme: %q", schemeName)
}

// evalObs bundles the evaluator's metric handles, resolved once per
// evaluation so the per-scenario hot loops touch only lock-free atomics.
// Every handle no-ops when Cfg.Metrics is nil.
type evalObs struct {
	degScenarios *obs.Counter // degradation scenarios evaluated
	scenarios    *obs.Counter // failure scenarios integrated
	evalTime     *obs.Timer   // wall time per degradation-scenario task
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	enumHits     *obs.Counter // scenario enumerations served from the memo
	enumMisses   *obs.Counter // scenario enumerations actually run
	shardBatches *obs.Counter // integration passes that ran sharded
}

func (ev *Evaluator) metrics() evalObs {
	r := ev.Cfg.Metrics
	return evalObs{
		degScenarios: r.Counter("sim.deg_scenarios.evaluated"),
		scenarios:    r.Counter("sim.scenarios.evaluated"),
		evalTime:     r.Timer("sim.scenario.eval_time"),
		cacheHits:    r.Counter("sim.plan_cache.hits"),
		cacheMisses:  r.Counter("sim.plan_cache.misses"),
		enumHits:     r.Counter("sim.enum_cache.hits"),
		enumMisses:   r.Counter("sim.enum_cache.misses"),
		shardBatches: r.Counter("sim.scenario_shards.batches"),
	}
}

// evaluateStatic handles schemes whose plan ignores degradation signals.
// Degradation scenarios are independent given the (single) pre-failure
// plan, so they fan out; each worker fills a per-scenario partial vector
// and the partials merge in scenario order.
func (ev *Evaluator) evaluateStatic(schemeName string, planned, truth te.Demands) (Availability, error) {
	plan, err := ev.staticPlan(schemeName, planned)
	if err != nil {
		return Availability{}, err
	}
	m := ev.metrics()
	nFlows := len(ev.Env.Tunnels.Flows)
	dss := ev.Env.DegScenarios(ev.Cfg)
	partials, err := par.MapErr(len(dss), ev.Cfg.Parallelism, func(di int) ([]float64, error) {
		start := m.evalTime.Start()
		defer m.evalTime.Stop(start)
		defer m.degScenarios.Inc()
		ds := dss[di]
		probs := ev.Env.TruthProbs(ev.Cfg, ds.Fiber)
		fs, err := ev.enumerate(probs)
		if err != nil {
			return nil, err
		}
		m.scenarios.Add(int64(len(fs.Scenarios)))
		// the un-enumerated failure tail counts as loss for every flow
		return ev.integrateScenarios(fs, nFlows, func(q scenario.Scenario, row []float64) error {
			cut := q.CutSet()
			for fi := range row {
				credit := ev.credit(schemeName, plan, planned, truth, routing.FlowID(fi), cut)
				row[fi] += ds.Prob * q.Prob * credit
			}
			return nil
		})
	})
	if err != nil {
		return Availability{}, err
	}
	return summarize(par.SumVectors(partials, nFlows)), nil
}

// credit returns the fraction of the epoch during which the flow's full
// demand is delivered, per the scheme's reaction model.
func (ev *Evaluator) credit(schemeName string, plan *te.Plan, planned, truth te.Demands, f routing.FlowID, cut map[topology.FiberID]bool) float64 {
	d := truth[f]
	if d <= 0 {
		return 1
	}
	okNow := te.Satisfied(plan, f, d, cut)
	switch schemeName {
	case "ARROW":
		if okNow {
			return 1
		}
		// Restoration rebuilds a fraction of the lost capacity on surviving
		// spectrum after the restoration window; the flow is whole again
		// only if the restored network can carry it.
		post := ev.arrowRestore(planned, cut)
		if post != nil && te.Satisfied(post, f, d, nil) {
			return 1 - ev.Cfg.ARROWRestorationS/ev.Cfg.EpochS
		}
		return 0
	case "Flexile":
		if okNow {
			// Unaffected by this failure; recomputation may still shuffle
			// it, but it keeps service.
			return 1
		}
		post := ev.flexileRecompute(planned, cut)
		if post != nil && te.Satisfied(post, f, d, cut) {
			return 1 - ev.Cfg.FlexileConvergenceS/ev.Cfg.EpochS
		}
		return 0
	default: // proactive rate adaptation: instant or nothing
		if okNow {
			return 1
		}
		return 0
	}
}

// cached returns the plan stored under key in cache, computing and storing
// it via build on a miss. Concurrent workers may duplicate a miss; the
// deterministic build makes both results identical, and the first store
// wins so every later reader sees one canonical *te.Plan.
func (ev *Evaluator) cached(cache map[string]*te.Plan, key string, build func() *te.Plan) *te.Plan {
	m := ev.metrics()
	ev.mu.Lock()
	p, ok := cache[key]
	ev.mu.Unlock()
	if ok {
		m.cacheHits.Inc()
		return p
	}
	m.cacheMisses.Inc()
	p = build()
	ev.mu.Lock()
	if prev, ok := cache[key]; ok {
		p = prev
	} else {
		cache[key] = p
	}
	ev.mu.Unlock()
	return p
}

// flexileRecompute returns (and caches) the post-failure optimal plan.
func (ev *Evaluator) flexileRecompute(demands te.Demands, cut map[topology.FiberID]bool) *te.Plan {
	key := cutKey(cut) + fmt.Sprintf("|%f", demands[0])
	return ev.cached(ev.recomputeCache, key, func() *te.Plan {
		in := &te.Input{
			Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
			Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
			Beta:      ev.Cfg.Beta,
		}
		p, err := te.Flexile{}.Recompute(in, cut)
		if err != nil {
			p = nil
		}
		return p
	})
}

// arrowRestore returns (and caches) the plan on the partially restored
// network: links that rode cut fibers come back at ARROWRestoreFrac of
// their capacity.
func (ev *Evaluator) arrowRestore(demands te.Demands, cut map[topology.FiberID]bool) *te.Plan {
	key := "arrow|" + cutKey(cut) + fmt.Sprintf("|%f", demands[0])
	return ev.cached(ev.restoreCache, key, func() *te.Plan {
		caps := make(map[topology.LinkID]float64)
		for f := range cut {
			if !cut[f] {
				continue
			}
			for _, lid := range ev.Env.Net.LinksOnFiber(f) {
				caps[lid] = ev.Env.Net.Link(lid).Capacity * ev.Cfg.ARROWRestoreFrac
			}
		}
		in := &te.Input{
			Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
			Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
			Beta:      ev.Cfg.Beta,
		}
		p, err := te.MinMaxLossPlanWithCaps(in, nil, caps)
		if err != nil {
			p = nil
		}
		return p
	})
}

func cutKey(cut map[topology.FiberID]bool) string {
	b := make([]byte, len(cut)*3)
	i := 0
	// map iteration order doesn't matter if we sort by accumulating bits
	var bits [64]bool
	for f := range cut {
		if int(f) < 64 {
			bits[f] = true
		}
	}
	for f, on := range bits {
		if on {
			b[i] = byte(f)
			i++
		}
	}
	return string(b[:i])
}

// evaluateOracle: per failure scenario, the oracle switches (ahead of the
// failure) to the optimal plan for the post-failure topology, with new
// tunnels for the cut fibers. Degradation scenarios fan out; the per-cut
// oracle plans are shared through the mutex-guarded cache.
func (ev *Evaluator) evaluateOracle(planned, truth te.Demands) (Availability, error) {
	m := ev.metrics()
	nFlows := len(ev.Env.Tunnels.Flows)
	dss := ev.Env.DegScenarios(ev.Cfg)
	partials, err := par.MapErr(len(dss), ev.Cfg.Parallelism, func(di int) ([]float64, error) {
		start := m.evalTime.Start()
		defer m.evalTime.Stop(start)
		defer m.degScenarios.Inc()
		ds := dss[di]
		probs := ev.Env.TruthProbs(ev.Cfg, ds.Fiber)
		fs, err := ev.enumerate(probs)
		if err != nil {
			return nil, err
		}
		m.scenarios.Add(int64(len(fs.Scenarios)))
		return ev.integrateScenarios(fs, nFlows, func(q scenario.Scenario, row []float64) error {
			cut := q.CutSet()
			plan, err := ev.oraclePlan(planned, q.Cut)
			if err != nil {
				return err
			}
			for fi := range row {
				if te.Satisfied(plan, routing.FlowID(fi), truth[fi], cut) {
					row[fi] += ds.Prob * q.Prob
				}
			}
			return nil
		})
	})
	if err != nil {
		return Availability{}, err
	}
	return summarize(par.SumVectors(partials, nFlows)), nil
}

func (ev *Evaluator) oraclePlan(demands te.Demands, cutList []topology.FiberID) (*te.Plan, error) {
	cut := make(map[topology.FiberID]bool, len(cutList))
	for _, f := range cutList {
		cut[f] = true
	}
	key := cutKey(cut) + fmt.Sprintf("|%f", demands[0])
	m := ev.metrics()
	ev.mu.Lock()
	p, ok := ev.oracleCache[key]
	ev.mu.Unlock()
	if ok {
		m.cacheHits.Inc()
		return p, nil
	}
	m.cacheMisses.Inc()
	// With future knowledge the oracle pre-establishes detour tunnels for
	// the fibers about to fail (the Fig 3 behaviour).
	tunnels := ev.Env.Tunnels
	for _, f := range cutList {
		res, err := core.UpdateTunnels(tunnels, f, 1)
		if err != nil {
			return nil, err
		}
		tunnels = res.Tunnels
	}
	in := &te.Input{
		Net: ev.Env.Net, Tunnels: tunnels, Demands: demands,
		Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
		Beta:      ev.Cfg.Beta,
	}
	p, err := te.MinMaxLossPlan(in, cut)
	if err != nil {
		return nil, err
	}
	ev.mu.Lock()
	if prev, ok := ev.oracleCache[key]; ok {
		p = prev
	} else {
		ev.oracleCache[key] = p
	}
	ev.mu.Unlock()
	return p, nil
}

// evaluatePreTE: the quiet scenario uses the Theorem 4.1-calibrated static
// plan; each degradation scenario splits into the episode-fails and
// episode-benign worlds, with the predictor's conditional output (the
// Quality knob) driving the plan in each.
func (ev *Evaluator) evaluatePreTE(planned, truth te.Demands, ratio float64) (Availability, error) {
	p := core.New()
	p.TunnelRatio = ratio
	p.ScenarioOpts = ev.Cfg.ScenarioOpts
	p.Alpha = ev.Cfg.Alpha
	p.Opt.Metrics = ev.Cfg.Metrics
	p.Opt.BudgetUnits = ev.Cfg.SolveBudget
	// The fan-out across degradation scenarios owns the worker budget; the
	// optimizer inside each epoch plan runs serially so the two levels
	// don't multiply goroutines. (Either choice yields identical results.)
	p.Opt.Parallelism = 1

	m := ev.metrics()
	nFlows := len(ev.Env.Tunnels.Flows)
	dss := ev.Env.DegScenarios(ev.Cfg)
	partials, err := par.MapErr(len(dss), ev.Cfg.Parallelism, func(di int) ([]float64, error) {
		start := m.evalTime.Start()
		defer m.evalTime.Stop(start)
		defer m.degScenarios.Inc()
		ds := dss[di]
		if ds.Fiber < 0 {
			// Quiet epoch: calibrated plan, no signals.
			ep, err := p.PlanEpoch(core.EpochInput{
				Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: planned,
				Beta: ev.Cfg.Beta, PI: ev.Env.PI,
			})
			if err != nil {
				return nil, err
			}
			return ev.accumulate(ds.Prob, truth, ep.Plan, ds.Fiber, -1)
		}
		// Degraded epoch: two worlds by the episode's true outcome, summed
		// in world order into this scenario's partial vector.
		part := make([]float64, nFlows)
		for _, world := range []struct {
			prob float64
			pHat float64
			fail bool
		}{
			{ev.Cfg.PCutGivenDeg, ev.Quality.PHatFail, true},
			{1 - ev.Cfg.PCutGivenDeg, ev.Quality.PHatOK, false},
		} {
			ep, err := p.PlanEpoch(core.EpochInput{
				Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: planned,
				Beta: ev.Cfg.Beta, PI: ev.Env.PI,
				Signals: []core.DegradationSignal{{Fiber: topology.FiberID(ds.Fiber), PNN: ev.Quality.clampPHat(world.pHat)}},
			})
			if err != nil {
				return nil, err
			}
			failFiber := -1
			if world.fail {
				failFiber = ds.Fiber
			}
			w, err := ev.accumulate(ds.Prob*world.prob, truth, ep.Plan, ds.Fiber, failFiber)
			if err != nil {
				return nil, err
			}
			for fi, v := range w {
				part[fi] += v
			}
		}
		return part, nil
	})
	if err != nil {
		return Availability{}, err
	}
	return summarize(par.SumVectors(partials, nFlows)), nil
}

func (q PredictorQuality) clampPHat(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// accumulate integrates a plan's per-flow credit over the failure
// scenarios of one (degradation scenario, world) branch, returning the
// branch's partial availability vector. failFiber >= 0 forces that fiber
// to be cut (the episode truly fails); the remaining fibers fail with the
// Theorem 4.1 residual probability.
func (ev *Evaluator) accumulate(branchProb float64, truth te.Demands, plan *te.Plan, degFiber, failFiber int) ([]float64, error) {
	probs := make([]float64, len(ev.Env.PI))
	for i, p := range ev.Env.PI {
		probs[i] = (1 - ev.Cfg.Alpha) * p
	}
	if failFiber >= 0 {
		probs[failFiber] = 1
	} else if degFiber >= 0 {
		probs[degFiber] = 0 // benign world: this episode does not cut
	}
	fs, err := ev.enumerate(probs)
	if err != nil {
		return nil, err
	}
	ev.metrics().scenarios.Add(int64(len(fs.Scenarios)))
	return ev.integrateScenarios(fs, len(ev.Env.Tunnels.Flows), func(q scenario.Scenario, row []float64) error {
		cut := q.CutSet()
		for fi := range row {
			if te.Satisfied(plan, routing.FlowID(fi), truth[fi], cut) {
				row[fi] += branchProb * q.Prob
			}
		}
		return nil
	})
}
