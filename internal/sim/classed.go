package sim

import (
	"fmt"
	"sort"

	"prete/internal/core"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/te"
	"prete/internal/topology"
)

// ClassedAvailability is a per-tier availability vector: one Availability
// summary per SLO tier, in spec order.
type ClassedAvailability struct {
	Tiers   []string
	PerTier []Availability
}

// StormFibers returns the k most degradation-prone fibers (ties broken by
// fiber index), the deterministic storm set the sloclass experiment
// degrades simultaneously.
func (e *Env) StormFibers(k int) []int {
	idx := make([]int, len(e.PD))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if e.PD[idx[a]] != e.PD[idx[b]] {
			return e.PD[idx[a]] > e.PD[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}

// stormProbs is the truth distribution conditioned on a degradation storm:
// every storm fiber fails with PCutGivenDeg, every other fiber with the
// Theorem 4.1 residual probability.
func (ev *Evaluator) stormProbs(storm []int) []float64 {
	probs := make([]float64, len(ev.Env.PI))
	for i, p := range ev.Env.PI {
		probs[i] = (1 - ev.Cfg.Alpha) * p
	}
	for _, f := range storm {
		probs[f] = ev.Cfg.PCutGivenDeg
	}
	return probs
}

// stormSignals is the degradation-signal set a predictor-driven scheme
// sees during the storm: one signal per storm fiber at the predictor's
// conditional-failure output.
func (ev *Evaluator) stormSignals(storm []int) []core.DegradationSignal {
	sigs := make([]core.DegradationSignal, len(storm))
	for i, f := range storm {
		sigs[i] = core.DegradationSignal{Fiber: topology.FiberID(f), PNN: ev.Quality.clampPHat(ev.Quality.PHatFail)}
	}
	return sigs
}

// EvaluateStormUniform measures a uniform (classless) scheme's availability
// conditioned on a degradation storm: the scheme plans one epoch with the
// storm's signals (ignored by TeaVar), and the plan is integrated over the
// storm-conditioned failure distribution. Scheme names: PreTE, TeaVar. An
// empty storm is a quiet epoch.
func (ev *Evaluator) EvaluateStormUniform(schemeName string, scale float64, storm []int) (Availability, error) {
	demands := ev.Env.BaseDemands.Scale(scale)
	plan, _, err := ev.stormPlan(schemeName, demands, storm)
	if err != nil {
		return Availability{}, err
	}
	perFlow, err := ev.stormIntegrate(storm, func(f routing.FlowID, cut map[topology.FiberID]bool) bool {
		return te.Satisfied(plan, f, demands[f], cut)
	})
	if err != nil {
		return Availability{}, err
	}
	return summarize(perFlow), nil
}

// EvaluateStormClassed measures PreTE with per-class demands under a
// degradation storm: one strict-priority classed epoch plan, then each
// tier's plan is judged against its own demand split over the
// storm-conditioned failure distribution. The returned epoch plan carries
// the per-tier solver results (the provable-residual accounting the
// sloclass experiment asserts on). Deterministic at any Cfg.Parallelism.
func (ev *Evaluator) EvaluateStormClassed(scale float64, storm []int, spec *te.ClassSpec) (ClassedAvailability, *core.ClassedEpochPlan, error) {
	demands := ev.Env.BaseDemands.Scale(scale)
	p := ev.stormScheme("PreTE")
	ep, err := p.PlanEpochClassed(core.EpochInput{
		Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
		Beta: ev.Cfg.Beta, PI: ev.Env.PI,
		Signals: ev.stormSignals(storm),
	}, spec)
	if err != nil {
		return ClassedAvailability{}, nil, err
	}
	out := ClassedAvailability{}
	for k, tier := range ep.Classed.Tiers {
		plan := ep.Plans[k]
		split := tier.Demands
		perFlow, err := ev.stormIntegrate(storm, func(f routing.FlowID, cut map[topology.FiberID]bool) bool {
			return te.Satisfied(plan, f, split[f], cut)
		})
		if err != nil {
			return ClassedAvailability{}, nil, err
		}
		out.Tiers = append(out.Tiers, tier.Name)
		out.PerTier = append(out.PerTier, summarize(perFlow))
	}
	return out, ep, nil
}

// stormScheme builds the planning scheme for storm evaluation.
func (ev *Evaluator) stormScheme(schemeName string) *core.PreTE {
	var p *core.PreTE
	if schemeName == "TeaVar" {
		p = core.NewTeaVar()
	} else {
		p = core.New()
	}
	p.ScenarioOpts = ev.Cfg.ScenarioOpts
	if p.Alpha > 0 {
		p.Alpha = ev.Cfg.Alpha
	}
	p.Opt.Metrics = ev.Cfg.Metrics
	p.Opt.BudgetUnits = ev.Cfg.SolveBudget
	p.Opt.Parallelism = ev.Cfg.Parallelism
	return p
}

// stormPlan computes one uniform epoch plan under the storm's signals.
func (ev *Evaluator) stormPlan(schemeName string, demands te.Demands, storm []int) (*te.Plan, *core.EpochPlan, error) {
	switch schemeName {
	case "PreTE", "TeaVar":
	default:
		return nil, nil, fmt.Errorf("sim: unknown storm scheme %q (want PreTE or TeaVar)", schemeName)
	}
	p := ev.stormScheme(schemeName)
	ep, err := p.PlanEpoch(core.EpochInput{
		Net: ev.Env.Net, Tunnels: ev.Env.Tunnels, Demands: demands,
		Beta: ev.Cfg.Beta, PI: ev.Env.PI,
		Signals: ev.stormSignals(storm),
	})
	if err != nil {
		return nil, nil, err
	}
	return ep.Plan, ep, nil
}

// stormIntegrate integrates a per-flow satisfaction predicate over the
// storm-conditioned failure distribution, returning the per-flow
// availability vector. The un-enumerated failure tail counts as loss, as
// in the main evaluation loop.
func (ev *Evaluator) stormIntegrate(storm []int, ok func(f routing.FlowID, cut map[topology.FiberID]bool) bool) ([]float64, error) {
	fs, err := ev.enumerate(ev.stormProbs(storm))
	if err != nil {
		return nil, err
	}
	ev.metrics().scenarios.Add(int64(len(fs.Scenarios)))
	return ev.integrateScenarios(fs, len(ev.Env.Tunnels.Flows), func(q scenario.Scenario, row []float64) error {
		cut := q.CutSet()
		for fi := range row {
			if ok(routing.FlowID(fi), cut) {
				row[fi] += q.Prob
			}
		}
		return nil
	})
}
