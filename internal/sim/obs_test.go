package sim

import (
	"reflect"
	"testing"

	"prete/internal/obs"
)

// TestEvaluateMetricsInvariant pins the evaluator-level write-only
// guarantee: per-flow availability is bit-identical with Config.Metrics set
// or nil, and an instrumented run populates the sim.* series — including
// plan-cache hits and misses for the schemes that recompute plans.
func TestEvaluateMetricsInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	schemes := []string{"TeaVar", "Flexile", "Oracle", "PreTE"}

	plain := NewEvaluator(env, cfg)
	want := make(map[string]Availability)
	for _, s := range schemes {
		a, err := plain.Evaluate(s, 1.5)
		if err != nil {
			t.Fatalf("%s without metrics: %v", s, err)
		}
		want[s] = a
	}

	mcfg := cfg
	mcfg.Metrics = obs.NewRegistry()
	metered := NewEvaluator(env, mcfg)
	for _, s := range schemes {
		got, err := metered.Evaluate(s, 1.5)
		if err != nil {
			t.Fatalf("%s with metrics: %v", s, err)
		}
		if !reflect.DeepEqual(got, want[s]) {
			t.Errorf("%s: availability differs with metrics attached", s)
		}
	}

	reg := mcfg.Metrics
	degs := reg.Counter("sim.deg_scenarios.evaluated").Value()
	wantDegs := int64(len(schemes)) * int64(len(env.DegScenarios(cfg)))
	if degs != wantDegs {
		t.Errorf("deg scenarios evaluated = %d, want %d", degs, wantDegs)
	}
	if reg.Counter("sim.scenarios.evaluated").Value() == 0 {
		t.Error("no failure scenarios counted")
	}
	if reg.Timer("sim.scenario.eval_time").Count() != wantDegs {
		t.Errorf("eval_time count = %d, want %d", reg.Timer("sim.scenario.eval_time").Count(), wantDegs)
	}
	// Oracle and Flexile consult the plan caches; with multiple degradation
	// scenarios sharing cut sets there must be both misses (first builds)
	// and hits (reuses).
	if reg.Counter("sim.plan_cache.misses").Value() == 0 {
		t.Error("no plan-cache misses recorded")
	}
	if reg.Counter("sim.plan_cache.hits").Value() == 0 {
		t.Error("no plan-cache hits recorded")
	}
	// The evaluator propagates the registry to the optimizers it builds.
	if reg.Counter("core.benders.iterations").Value() == 0 {
		t.Error("evaluator did not propagate metrics to core optimizers")
	}
}
