package sim

import (
	"testing"

	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

// TestDemandUncertaintyHurts verifies the Fig 17 mechanism: planning on
// stale (jittered) demand can only lower availability relative to planning
// on the true demand.
func TestDemandUncertaintyHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	truth := env.BaseDemands.Scale(3)
	rng := stats.NewRNG(99)
	stale := make(te.Demands, len(truth))
	for i, d := range truth {
		stale[i] = d * (1 + 0.15*rng.NormFloat64())
		if stale[i] < 0 {
			stale[i] = 0
		}
	}
	exact, err := ev.EvaluateDemands("TeaVar", truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	jittered, err := ev.EvaluateDemands("TeaVar", stale, truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TeaVar exact %.6f vs stale-planned %.6f", exact.Mean, jittered.Mean)
	if jittered.Mean > exact.Mean+1e-9 {
		t.Fatalf("stale planning beat exact planning: %v > %v", jittered.Mean, exact.Mean)
	}
}

// TestPreTERatioZeroMatchesNaive checks the ratio knob is wired through.
func TestPreTERatioZeroMatchesNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	viaRatio, err := ev.EvaluatePreTERatio(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaName, err := ev.Evaluate("PreTE-naive", 2)
	if err != nil {
		t.Fatal(err)
	}
	if viaRatio.Mean != viaName.Mean {
		t.Fatalf("ratio-0 (%v) != PreTE-naive (%v)", viaRatio.Mean, viaName.Mean)
	}
}

// TestOracleDominatesEverything: with perfect future knowledge and reactive
// tunnels, the oracle upper-bounds every other scheme at every scale tested.
func TestOracleDominatesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	oracle, err := ev.Evaluate("Oracle", 2)
	if err != nil {
		t.Fatal(err)
	}
	// ARROW is excluded: it physically restores cut capacity, so it can
	// legitimately exceed a routing-only oracle in scenarios where no
	// reroute can carry the demand.
	for _, s := range []string{"ECMP", "TeaVar", "Flexile", "PreTE"} {
		a, err := ev.Evaluate(s, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a.Mean > oracle.Mean+1e-9 {
			t.Errorf("%s (%v) beat the oracle (%v)", s, a.Mean, oracle.Mean)
		}
	}
}

// TestBetterPredictionNeverHurts: PreTE with oracle-grade prediction must
// be at least as available as with TeaVar-grade (non-)prediction.
func TestBetterPredictionNeverHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	cfg := fastConfig()
	env := b4Env(t, cfg)
	evGood := NewEvaluator(env, cfg)
	evGood.Quality = OracleQuality()
	evBad := NewEvaluator(env, cfg)
	evBad.Quality = PredictorQuality{Name: "none", PHatFail: 0.003, PHatOK: 0.003}
	good, err := evGood.Evaluate("PreTE", 3)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := evBad.Evaluate("PreTE", 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle-quality %.6f vs none-quality %.6f", good.Mean, bad.Mean)
	if good.Mean < bad.Mean-5e-3 {
		t.Fatalf("better prediction hurt availability: %v < %v", good.Mean, bad.Mean)
	}
}

func TestCutKeyCanonical(t *testing.T) {
	a := cutKey(map[topology.FiberID]bool{1: true, 5: true})
	b := cutKey(map[topology.FiberID]bool{5: true, 1: true})
	if a != b {
		t.Fatal("cutKey depends on map order")
	}
	if cutKey(nil) != "" {
		t.Fatal("empty cut should yield empty key")
	}
}
