// Package sim is the large-scale evaluation harness of §6: it builds
// evaluation environments on the B4/IBM/TWAN topologies, generates diurnal
// traffic matrices, and measures per-flow availability for every TE scheme
// under the two-level uncertainty model the paper uses — degradation
// scenarios (which fibers degrade this epoch) and, conditioned on them,
// failure scenarios (which fibers cut).
//
// Availability of a flow is the probability-weighted fraction of epoch time
// its full (scaled) demand is delivered; schemes differ in what they
// pre-plan and how fast they react (Table 9): proactive rate adaptation is
// effectively instant, ARROW pays its restoration window, Flexile pays its
// recomputation window, and PreTE's pre-established tunnels make even
// predicted failures instant.
package sim

import (
	"math"

	"prete/internal/obs"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

// Config holds evaluation constants.
type Config struct {
	Beta   float64 // planning availability target (0.99)
	EpochS float64 // TE period, 300 s (5 minutes)
	Alpha  float64 // fraction of predictable cuts (0.25)
	// PCutGivenDeg is the true conditional failure probability after a
	// degradation (0.40).
	PCutGivenDeg float64
	// FlexileConvergenceS is the reactive recomputation window.
	FlexileConvergenceS float64
	// ARROWRestorationS is the optical restoration latency (8 s).
	ARROWRestorationS float64
	// ARROWRestoreFrac is the fraction of a cut link's capacity that
	// optical restoration rebuilds on surviving spectrum; restoration is
	// partial in practice, which is what bends ARROW's curve down at high
	// demand scales.
	ARROWRestoreFrac float64
	// TunnelInstallS is the serialized per-tunnel establishment time the
	// testbed measures (Fig 11b: ~0.25 s each).
	TunnelInstallS float64
	// ScenarioOpts bounds failure-scenario enumeration.
	ScenarioOpts scenario.Options
	// MaxDegScenarios caps how many single-fiber degradation scenarios are
	// enumerated (the most degradation-prone fibers first); the remaining
	// mass is folded into the no-degradation scenario.
	MaxDegScenarios int
	// Parallelism bounds the evaluator's fan-out across degradation
	// scenarios (and the experiment sweeps built on it): <= 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path. Availability results
	// are bit-identical at every setting — per-scenario partial vectors are
	// merged in scenario order (see internal/par).
	Parallelism int
	// ScenarioShards splits the per-failure-scenario credit-integration
	// matrix inside each degradation-scenario task into contiguous scenario
	// shards with (near-)equal per-shard work-unit quotas, fanned across
	// par workers; <= 1 keeps the historical single-pass loop. Shards
	// produce per-scenario rows that are reduced serially in scenario
	// order, so availability results are bit-identical at every shard
	// count — sharding moves work, never answers. It pays off when
	// ScenarioOpts.MaxScenarios is large relative to the degradation
	// fan-out's own parallelism.
	ScenarioShards int
	// SolveBudget caps the deterministic work units each TE solve may
	// consume (see core.Optimizer.BudgetUnits); 0 is unlimited. Budgeted
	// solves stay bit-identical at every Parallelism setting, but may
	// return truncated or heuristic-fallback plans — exactly what a
	// deadline-bounded production controller would install.
	SolveBudget int64
	// Metrics, when non-nil, receives evaluation counters (degradation and
	// failure scenarios evaluated, plan-cache hits/misses), per-scenario eval
	// timings, and — propagated to the optimizers the evaluator constructs —
	// the core.benders.* series. Metrics are write-only: availability results
	// are bit-identical with Metrics set or nil.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper-calibrated evaluation constants.
func DefaultConfig() Config {
	return Config{
		Beta:                0.99,
		EpochS:              300,
		Alpha:               0.25,
		PCutGivenDeg:        0.40,
		FlexileConvergenceS: 30,
		ARROWRestorationS:   8,
		ARROWRestoreFrac:    0.6,
		TunnelInstallS:      0.25,
		ScenarioOpts:        scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 600},
		MaxDegScenarios:     16,
	}
}

// Env is an evaluation environment: topology, tunnels, demand matrix, and
// ground-truth probabilities.
type Env struct {
	Net     *topology.Network
	Tunnels *routing.TunnelSet
	// BaseDemands is the scale-1 demand matrix.
	BaseDemands te.Demands
	// PD and PI are per-fiber per-epoch degradation and (unconditional)
	// failure probabilities — the §6.1 construction: PD from
	// Weibull(0.8, 0.002), PI linearly related.
	PD, PI []float64
}

// BuildEnv constructs the environment for a named topology, drawing
// probabilities per §6.1 and sizing base demands to a fraction of each
// flow's direct-link capacity so the Fig 13 demand-scale axis is
// meaningful.
func BuildEnv(name string, seed uint64, cfg Config) (*Env, error) {
	net, err := topology.ByName(name)
	if err != nil {
		return nil, err
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	w := stats.Weibull{Shape: 0.8, Scale: 0.002}
	slope := cfg.PCutGivenDeg / cfg.Alpha
	pd := make([]float64, len(net.Fibers))
	pi := make([]float64, len(net.Fibers))
	for i := range pd {
		p := w.Sample(rng)
		if p > 0.02 {
			p = 0.02
		}
		pd[i] = p
		pi[i] = math.Min(0.05, slope*p)
	}
	demands := make(te.Demands, len(ts.Flows))
	for i, fl := range ts.Flows {
		capacity := 1000.0
		if lid, ok := net.LinkBetween(fl.Src, fl.Dst); ok {
			capacity = net.Link(lid).Capacity
		}
		// Scale 1 loads each direct link to ~15%, leaving the Fig 13 sweep
		// room up to ~6x before even the failure-free optimum saturates.
		demands[i] = capacity * 0.15
	}
	return &Env{Net: net, Tunnels: ts, BaseDemands: demands, PD: pd, PI: pi}, nil
}

// DiurnalDemands returns the hour-of-day demand matrix: a sinusoidal
// diurnal swing (peak at 20:00, trough at 04:00) with a deterministic
// per-flow phase jitter — the "24 traffic matrices" of Table 3.
func (e *Env) DiurnalDemands(hour int, seed uint64) te.Demands {
	rng := stats.NewRNG(seed ^ 0xd1e5)
	out := make(te.Demands, len(e.BaseDemands))
	for i, base := range e.BaseDemands {
		phase := rng.Float64() * 2 * math.Pi * 0.1
		swing := 0.3 * math.Sin(2*math.Pi*float64(hour-14)/24+phase)
		out[i] = base * (1 + swing)
	}
	return out
}

// TruthProbs returns the ground-truth per-fiber failure probabilities for a
// degradation scenario: the degraded fiber fails with PCutGivenDeg, the
// rest with the Theorem 4.1 residual (1 - alpha) * PI.
func (e *Env) TruthProbs(cfg Config, degraded int) []float64 {
	out := make([]float64, len(e.PI))
	for i, p := range e.PI {
		out[i] = (1 - cfg.Alpha) * p
	}
	if degraded >= 0 {
		out[degraded] = cfg.PCutGivenDeg
	}
	return out
}

// DegScenario is one degradation scenario in the evaluation's outer loop.
type DegScenario struct {
	// Fiber is the degraded fiber, or -1 for the no-degradation scenario.
	Fiber int
	Prob  float64
}

// DegScenarios enumerates the no-degradation scenario plus the
// MaxDegScenarios most degradation-prone single-fiber scenarios; the
// remaining degradation mass is folded into the quiet scenario (a
// conservative simplification applied identically to every scheme).
func (e *Env) DegScenarios(cfg Config) []DegScenario {
	type cand struct {
		fiber int
		p     float64
	}
	cands := make([]cand, len(e.PD))
	noDeg := 1.0
	for i, p := range e.PD {
		cands[i] = cand{i, p}
		noDeg *= 1 - p
	}
	// selection sort of the top-K (K is small)
	k := cfg.MaxDegScenarios
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].p > cands[best].p {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := []DegScenario{{Fiber: -1}}
	var enumerated float64
	for i := 0; i < k; i++ {
		// P(only fiber i degrades) = p_i * prod_j!=i (1 - p_j)
		p := noDeg / (1 - cands[i].p) * cands[i].p
		out = append(out, DegScenario{Fiber: cands[i].fiber, Prob: p})
		enumerated += p
	}
	out[0].Prob = 1 - enumerated // quiet scenario absorbs the tail
	return out
}

// Availability summarizes an evaluation.
type Availability struct {
	PerFlow []float64
	Min     float64
	Mean    float64
}

func summarize(perFlow []float64) Availability {
	a := Availability{PerFlow: perFlow, Min: 1}
	if len(perFlow) == 0 {
		a.Min = 0
		return a
	}
	var sum float64
	for _, v := range perFlow {
		if v < a.Min {
			a.Min = v
		}
		sum += v
	}
	a.Mean = sum / float64(len(perFlow))
	return a
}

// Nines converts an availability to "number of nines" (0.999 -> 3).
func Nines(a float64) float64 {
	if a >= 1 {
		return math.Inf(1)
	}
	if a <= 0 {
		return 0
	}
	return -math.Log10(1 - a)
}
