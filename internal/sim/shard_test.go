package sim

import (
	"reflect"
	"testing"

	"prete/internal/obs"
)

// shardTestEnv builds a small B4 environment shared by the sharding and
// enumeration-memo tests.
func shardTestEnv(t *testing.T) (*Env, Config) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ScenarioOpts.MaxScenarios = 60
	cfg.MaxDegScenarios = 3
	cfg.Parallelism = 1
	env, err := BuildEnv("B4", 2025, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env, cfg
}

// TestEvaluateDeterministicAcrossShards pins the sharding contract:
// per-flow availability is bit-identical at every ScenarioShards setting
// (including shard counts exceeding the scenario count), for schemes
// covering all three evaluation paths, at multiple parallelism levels.
func TestEvaluateDeterministicAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation sweep; skipped in -short mode")
	}
	env, cfg := shardTestEnv(t)
	schemes := []string{"TeaVar", "Oracle", "PreTE"}
	want := make(map[string]Availability)
	ev := NewEvaluator(env, cfg)
	for _, s := range schemes {
		a, err := ev.Evaluate(s, 1.5)
		if err != nil {
			t.Fatalf("%s unsharded: %v", s, err)
		}
		want[s] = a
	}
	for _, shards := range []int{2, 7, 1000} {
		for _, p := range []int{1, 4} {
			scfg := cfg
			scfg.ScenarioShards = shards
			scfg.Parallelism = p
			sev := NewEvaluator(env, scfg)
			for _, s := range schemes {
				got, err := sev.Evaluate(s, 1.5)
				if err != nil {
					t.Fatalf("%s shards=%d p=%d: %v", s, shards, p, err)
				}
				if !reflect.DeepEqual(got.PerFlow, want[s].PerFlow) {
					t.Errorf("%s shards=%d p=%d: per-flow availability diverges from unsharded", s, shards, p)
				}
				if got.Min != want[s].Min || got.Mean != want[s].Mean {
					t.Errorf("%s shards=%d p=%d: min/mean diverge", s, shards, p)
				}
			}
		}
	}
}

// TestEnumerationMemo pins the bugfix: repeated evaluations against the
// same environment must enumerate each distinct probability vector once,
// serving every later request from the fingerprint memo — without
// perturbing results.
func TestEnumerationMemo(t *testing.T) {
	env, cfg := shardTestEnv(t)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	ev := NewEvaluator(env, cfg)

	first, err := ev.Evaluate("TeaVar", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := reg.Snapshot().Counters
	misses := afterFirst["sim.enum_cache.misses"]
	if misses == 0 {
		t.Fatal("first evaluation recorded no enumeration misses")
	}

	// A second sweep over the same env re-uses every enumeration: the miss
	// counter must not move, only hits.
	second, err := ev.Evaluate("TeaVar", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot().Counters
	if after["sim.enum_cache.misses"] != misses {
		t.Fatalf("second evaluation re-enumerated: misses %d -> %d",
			misses, after["sim.enum_cache.misses"])
	}
	if after["sim.enum_cache.hits"] <= afterFirst["sim.enum_cache.hits"] {
		t.Fatal("second evaluation recorded no enumeration hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized evaluation diverges from the first")
	}

	// Different demand scales share the truth-probability enumerations too
	// (the Fig 13 grid case): still no new misses.
	if _, err := ev.Evaluate("TeaVar", 2.0); err != nil {
		t.Fatal(err)
	}
	final := reg.Snapshot().Counters
	if final["sim.enum_cache.misses"] != misses {
		t.Fatalf("demand-scale change re-enumerated: misses %d -> %d",
			misses, final["sim.enum_cache.misses"])
	}
}

// TestEnumerationMemoMatchesFresh: an evaluator that has memoized sets must
// agree bit-identically with a fresh evaluator that enumerates cold.
func TestEnumerationMemoMatchesFresh(t *testing.T) {
	env, cfg := shardTestEnv(t)
	warm := NewEvaluator(env, cfg)
	if _, err := warm.Evaluate("Oracle", 1.5); err != nil {
		t.Fatal(err)
	}
	warmed, err := warm.Evaluate("Oracle", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewEvaluator(env, cfg).Evaluate("Oracle", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmed, fresh) {
		t.Fatal("memo-served evaluation diverges from cold enumeration")
	}
}
