package sim

import (
	"reflect"
	"testing"

	"prete/internal/te"
)

func TestStormFibers(t *testing.T) {
	cfg := fastConfig()
	env := b4Env(t, cfg)
	storm := env.StormFibers(3)
	if len(storm) != 3 {
		t.Fatalf("got %d storm fibers, want 3", len(storm))
	}
	// The selection is the top-3 by degradation probability: every
	// non-selected fiber's PD is <= every selected fiber's PD.
	selected := make(map[int]bool, len(storm))
	minPD := 1.0
	for _, f := range storm {
		selected[f] = true
		if env.PD[f] < minPD {
			minPD = env.PD[f]
		}
	}
	for i, p := range env.PD {
		if !selected[i] && p > minPD {
			t.Errorf("fiber %d (PD %v) outranks a selected storm fiber (min PD %v)", i, p, minPD)
		}
	}
	// Deterministic and clamped.
	if !reflect.DeepEqual(storm, env.StormFibers(3)) {
		t.Error("StormFibers is not deterministic")
	}
	if got := env.StormFibers(len(env.PD) + 10); len(got) != len(env.PD) {
		t.Errorf("over-asking returned %d fibers, want %d", len(got), len(env.PD))
	}
}

func TestEvaluateStormUniformQuiet(t *testing.T) {
	cfg := fastConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	// A quiet "storm" at moderate scale: availability should be high.
	a, err := ev.EvaluateStormUniform("PreTE", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean < 0.99 || a.Mean > 1 {
		t.Errorf("quiet-epoch mean availability %v outside [0.99, 1]", a.Mean)
	}
	if _, err := ev.EvaluateStormUniform("ECMP", 1, nil); err == nil {
		t.Error("want error for a non-storm scheme")
	}
}

// stormConfig widens scenario enumeration: a storm calibrates several
// fibers to high failure probability at once, so covering beta mass per
// flow needs triple-failure scenarios, not just the default doubles.
func stormConfig() Config {
	cfg := fastConfig()
	cfg.ScenarioOpts.MaxFailures = 3
	// Half the fast cap keeps the per-tier Benders solves quick; with
	// triples enumerated the top-60 scenarios still cover ~0.998 mass,
	// comfortably above Beta.
	cfg.ScenarioOpts.MaxScenarios = 60
	return cfg
}

func TestEvaluateStormClassedShape(t *testing.T) {
	cfg := stormConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	spec := te.DefaultClassSpec()
	storm := env.StormFibers(2)
	ca, ep, err := ev.EvaluateStormClassed(2, storm, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Tiers) != 3 || len(ca.PerTier) != 3 {
		t.Fatalf("per-tier shape: %+v", ca)
	}
	for k, name := range ca.Tiers {
		if name != spec.Tiers[k].Name {
			t.Errorf("tier %d named %q, want %q", k, name, spec.Tiers[k].Name)
		}
		if a := ca.PerTier[k]; a.Mean < 0 || a.Mean > 1 || a.Min < 0 || a.Min > a.Mean+1e-12 {
			t.Errorf("tier %s availability out of range: %+v", name, a)
		}
	}
	if ep == nil || len(ep.Classed.Tiers) != 3 || ep.Update == nil {
		t.Fatalf("epoch plan incomplete: %+v", ep)
	}
	// The protected tier's availability dominates the shed tier's: strict
	// priority cannot make the top tier worse than the bottom one.
	if lc, bulk := ca.PerTier[0].Mean, ca.PerTier[2].Mean; lc < bulk-1e-9 {
		t.Errorf("protected tier (%v) below shed tier (%v)", lc, bulk)
	}
}

func TestStormClassedDeterministicAcrossParallelism(t *testing.T) {
	cfg := stormConfig()
	env := b4Env(t, cfg)
	spec := te.DefaultClassSpec()
	storm := env.StormFibers(2)
	run := func(parallelism, shards int) (ClassedAvailability, Availability) {
		c := cfg
		c.Parallelism = parallelism
		c.ScenarioShards = shards
		ev := NewEvaluator(env, c)
		ca, _, err := ev.EvaluateStormClassed(2, storm, spec)
		if err != nil {
			t.Fatal(err)
		}
		ua, err := ev.EvaluateStormUniform("PreTE", 2, storm)
		if err != nil {
			t.Fatal(err)
		}
		return ca, ua
	}
	ca1, ua1 := run(1, 1)
	ca4, ua4 := run(4, 3)
	if !reflect.DeepEqual(ca1, ca4) {
		t.Errorf("classed storm evaluation differs across parallelism:\n p1 %+v\n p4 %+v", ca1, ca4)
	}
	if !reflect.DeepEqual(ua1, ua4) {
		t.Errorf("uniform storm evaluation differs across parallelism:\n p1 %+v\n p4 %+v", ua1, ua4)
	}
}
