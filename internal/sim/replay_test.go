package sim

import (
	"testing"

	"prete/internal/ml"
	"prete/internal/topology"
	"prete/internal/trace"
)

func replayTrace(t *testing.T) *trace.Trace {
	t.Helper()
	net, err := topology.B4()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig(17)
	cfg.Days = 365
	tr, err := trace.Generate(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayValidation(t *testing.T) {
	tr := replayTrace(t)
	if _, err := Replay(tr, ReplayConfig{Scheme: "nope"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestReplayPreTEBeatsTeaVar is the end-to-end headline: walking the same
// trace with the same oracle-grade predictor, PreTE loses fewer flow-epochs
// than TeaVar because predicted cuts find tunnels already in place.
func TestReplayPreTEBeatsTeaVar(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("replay in -short mode")
	}
	tr := replayTrace(t)
	train, _, err := tr.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ml.NewOracle(train) // ideal predictor on seen episodes

	cfgP := DefaultReplayConfig("PreTE")
	cfgP.Predictor = oracle
	cfgP.MaxEventEpochs = 40
	cfgP.DemandGbps = 220 // load the network enough that cuts can bite
	pre, err := Replay(tr, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	cfgT := DefaultReplayConfig("TeaVar")
	cfgT.Predictor = oracle
	cfgT.MaxEventEpochs = 40
	cfgT.DemandGbps = 220
	tv, err := Replay(tr, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PreTE : %+v lossRate=%.4f", *pre, pre.LossRate())
	t.Logf("TeaVar: %+v lossRate=%.4f", *tv, tv.LossRate())
	if pre.EventEpochs == 0 || pre.CutEpochs == 0 {
		t.Skip("trace window had no cut epochs")
	}
	if pre.LossRate() > tv.LossRate()+1e-9 {
		t.Fatalf("PreTE loss rate %.4f exceeds TeaVar's %.4f", pre.LossRate(), tv.LossRate())
	}
	if pre.EstablishedTuns == 0 {
		t.Fatal("PreTE established no tunnels across a year of degradations")
	}
	if tv.EstablishedTuns != 0 {
		t.Fatal("TeaVar established tunnels")
	}
}

func TestReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("minutes-long evaluation suite; skipped in -short mode")
	}
	if testing.Short() {
		t.Skip("replay in -short mode")
	}
	tr := replayTrace(t)
	cfg := DefaultReplayConfig("PreTE")
	cfg.MaxEventEpochs = 20
	a, err := Replay(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("replay not deterministic: %+v vs %+v", *a, *b)
	}
}
