package sim

import (
	"reflect"
	"testing"
)

// smokeConfig trims the evaluation far below fastConfig so a single-scale
// sweep of every scheme fits in the -short budget: the point is exercising
// each evaluation path (static, oracle, PreTE, caches, restoration), not
// reproducing the paper's numbers — the full-fidelity runs stay behind the
// non-short suite.
func smokeConfig() Config {
	cfg := DefaultConfig()
	cfg.ScenarioOpts.MaxScenarios = 40
	cfg.MaxDegScenarios = 2
	return cfg
}

// TestEvaluateAllSchemesSmoke runs every scheme once at a low demand scale
// and checks the cross-scheme invariants that hold regardless of fidelity:
// availabilities are probabilities, the oracle is never beaten by more than
// tolerance, and ECMP never beats the availability-aware schemes.
func TestEvaluateAllSchemesSmoke(t *testing.T) {
	cfg := smokeConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	const scale = 1.0
	avail := map[string]Availability{}
	for _, scheme := range []string{"ECMP", "FFC-1", "FFC-2", "TeaVar", "ARROW", "Flexile", "Oracle", "PreTE", "PreTE-naive"} {
		a, err := ev.Evaluate(scheme, scale)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if a.Mean < 0 || a.Mean > 1 || a.Min < 0 || a.Min > 1+1e-12 {
			t.Fatalf("%s: availability out of [0,1]: %+v", scheme, a)
		}
		if a.Min > a.Mean+1e-12 {
			t.Fatalf("%s: min availability %v above mean %v", scheme, a.Min, a.Mean)
		}
		avail[scheme] = a
	}
	oracle := avail["Oracle"].Mean
	for scheme, a := range avail {
		if a.Mean > oracle+1e-6 {
			t.Errorf("%s mean availability %v beats the oracle's %v", scheme, a.Mean, oracle)
		}
	}
	if avail["PreTE"].Mean+1e-9 < avail["ECMP"].Mean {
		t.Errorf("PreTE (%v) below ECMP (%v) at scale %v", avail["PreTE"].Mean, avail["ECMP"].Mean, scale)
	}
	if got, err := ev.Evaluate("no-such-scheme", scale); err == nil {
		t.Fatalf("unknown scheme accepted: %+v", got)
	}
}

// TestPreTERatioEndpointsSmoke checks the §6.4 ratio knob endpoints cheaply:
// ratio 0 must reproduce PreTE-naive exactly (same code path, same plans),
// and ratio 1 must reproduce PreTE.
func TestPreTERatioEndpointsSmoke(t *testing.T) {
	cfg := smokeConfig()
	env := b4Env(t, cfg)
	ev := NewEvaluator(env, cfg)
	const scale = 1.0
	naive, err := ev.Evaluate("PreTE-naive", scale)
	if err != nil {
		t.Fatal(err)
	}
	viaRatio0, err := ev.EvaluatePreTERatio(scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(naive, viaRatio0) {
		t.Errorf("ratio 0 (%+v) differs from PreTE-naive (%+v)", viaRatio0, naive)
	}
	full, err := ev.Evaluate("PreTE", scale)
	if err != nil {
		t.Fatal(err)
	}
	viaRatio1, err := ev.EvaluatePreTERatio(scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, viaRatio1) {
		t.Errorf("ratio 1 (%+v) differs from PreTE (%+v)", viaRatio1, full)
	}
}
