package wan

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"prete/internal/persist"
	"prete/internal/scenario"
)

// EpochState is the controller state journaled after every successful TE
// epoch and recovered on warm restart: everything the degradation ladder
// needs to resume from "last-good" instead of an empty plan. The JSON
// encoding is deterministic (maps sort by key, tunnels are sorted before
// marshaling), so identical epochs journal byte-identically — the chaos
// replay tests diff on this.
type EpochState struct {
	// Epoch is the 1-based count of completed reaction rounds.
	Epoch uint64 `json:"epoch"`
	// Rates is the last rate table pushed fleet-wide without error (the
	// ladder's last-good rung).
	Rates map[string]float64 `json:"rates,omitempty"`
	// Tunnels is the installed reactive tunnel set, sorted by
	// (switch, tunnel id).
	Tunnels []TunnelInstall `json:"tunnels,omitempty"`
	// PeerSeq is the per-agent RPC sequence state, so a warm-restarted
	// controller resumes numbering instead of restarting at zero.
	PeerSeq map[string]uint64 `json:"peer_seq,omitempty"`
	// Probs is the most recent calibrated per-fiber failure probability
	// vector (Eqn. 1 output) the scenario set was built from.
	Probs []float64 `json:"probs,omitempty"`
	// ScenarioFP is the scenario.Set fingerprint of the epoch's enumerated
	// failure-scenario set (0 when the journaling caller did not supply
	// one). On warm restart the testbed re-enumerates from Probs and checks
	// the rebuilt set against this fingerprint before priming the solver's
	// warm-start cache — a mismatch means enumeration options or code
	// drifted across the restart and the cache must start cold.
	ScenarioFP uint64 `json:"scenario_fp,omitempty"`
}

// encode marshals the state deterministically.
func (s *EpochState) encode() ([]byte, error) { return json.Marshal(s) }

// decodeEpochState rejects records that parse but are not plausible state
// (recovery must never resurrect garbage into the ladder).
func decodeEpochState(b []byte) (*EpochState, error) {
	var s EpochState
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("wan: decode recovered state: %w", err)
	}
	if s.Epoch == 0 {
		return nil, fmt.Errorf("wan: recovered state has epoch 0")
	}
	for k, v := range s.Rates {
		if v < 0 {
			return nil, fmt.Errorf("wan: recovered state has negative rate %s=%v", k, v)
		}
	}
	for i, p := range s.Probs {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("wan: recovered state prob[%d]=%v out of [0,1]", i, p)
		}
	}
	return &s, nil
}

// Recovery describes what OpenState found in the state directory.
type Recovery struct {
	// Warm reports that a valid prior state was recovered; false is a cold
	// start (fresh directory, or nothing survived corruption).
	Warm bool
	// Epoch is the recovered epoch sequence (0 when cold).
	Epoch uint64
	// Generation is this incarnation's fence value, stamped into every RPC.
	Generation uint64
	// RecordsReplayed and CorruptSkipped summarize the recovery scan.
	RecordsReplayed, CorruptSkipped int
	// Elapsed is the wall time of open + recover + apply.
	Elapsed time.Duration
	// State is the recovered state itself (nil when cold).
	State *EpochState
}

// OpenState attaches a crash-safe state store to the controller: it locks
// dir (failing fast with persist.LockError if another incarnation holds
// it), recovers the newest valid snapshot+journal state, resumes the
// degradation ladder from the recovered last-good rates, and fences all
// subsequent RPCs with the store's generation. With no recoverable state
// the controller starts cold but still fenced. Call before the first RPC.
func (c *Controller) OpenState(dir string) (*Recovery, error) {
	return c.openState(dir, 0)
}

// OpenStateFenced is OpenState with a generation floor: the claimed
// generation is at least minGen even if dir's own counter is behind. This
// is the cross-site promotion step — a standby opening its *own* replica
// directory cannot inherit the zombie leader's counter through a shared
// flock, so it floors its generation above the highest leader generation
// its lease ever observed, and the agents' fence does the rest.
func (c *Controller) OpenStateFenced(dir string, minGen uint64) (*Recovery, error) {
	return c.openState(dir, minGen)
}

func (c *Controller) openState(dir string, minGen uint64) (*Recovery, error) {
	start := time.Now()
	c.mu.Lock()
	if c.store != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("wan: controller state already open")
	}
	c.mu.Unlock()
	st, err := persist.Open(dir, persist.Options{
		CompactEvery:  c.StateCompactEvery,
		Metrics:       c.Metrics,
		MinGeneration: minGen,
	})
	if err != nil {
		return nil, err
	}
	rec := &Recovery{Generation: st.Generation()}
	pr := st.Recovered()
	rec.RecordsReplayed = pr.Stats.RecordsReplayed
	rec.CorruptSkipped = pr.Stats.CorruptSkipped
	if pr.Payload != nil {
		state, err := decodeEpochState(pr.Payload)
		if err != nil {
			// A checksum-valid record that does not decode as controller
			// state: treat as cold rather than wedging the restart, but
			// count it — this is a versioning or tampering signal.
			c.Metrics.Counter("wan.recovery.decode_errors").Inc()
		} else {
			rec.Warm = true
			rec.Epoch = state.Epoch
			rec.State = state
		}
	}
	c.mu.Lock()
	c.store = st
	c.gen = st.Generation()
	if rec.Warm {
		s := rec.State
		c.epoch = s.Epoch
		c.lastRates = copyRates(s.Rates)
		c.lastProbs = append([]float64(nil), s.Probs...)
		c.lastFP = scenario.Fingerprint(s.ScenarioFP)
		c.peerSeq = make(map[string]uint64, len(s.PeerSeq))
		for k, v := range s.PeerSeq {
			c.peerSeq[k] = v
		}
		c.installed = make(map[string]TunnelInstall, len(s.Tunnels))
		for _, tn := range s.Tunnels {
			c.installed[installKey(tn.Switch, tn.TunnelID)] = tn
		}
	}
	c.mu.Unlock()
	rec.Elapsed = time.Since(start)
	c.Metrics.Counter("wan.recovery.runs").Inc()
	if rec.Warm {
		c.Metrics.Counter("wan.recovery.warm").Inc()
	} else {
		c.Metrics.Counter("wan.recovery.cold").Inc()
	}
	c.Metrics.Counter("wan.recovery.records").Add(int64(rec.RecordsReplayed))
	c.Metrics.Counter("wan.recovery.corrupt_skipped").Add(int64(rec.CorruptSkipped))
	c.Metrics.Timer("wan.recovery.time").Observe(rec.Elapsed)
	if rec.Warm {
		c.Log.Addf("recovery warm epoch=%d gen=%d", rec.Epoch, rec.Generation)
	} else {
		c.Log.Addf("recovery cold gen=%d", rec.Generation)
	}
	return rec, nil
}

// Generation returns the controller's fence value (0 = unfenced: no state
// store attached).
func (c *Controller) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Epoch returns the number of epochs journaled by this controller lineage
// (recovered + locally completed).
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// LastProbs returns the calibrated failure-probability vector of the most
// recent journaled (or recovered) epoch, nil if none.
func (c *Controller) LastProbs() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.lastProbs...)
}

// LastScenarioFP returns the scenario-set fingerprint of the most recent
// journaled (or recovered) epoch, 0 if none was recorded.
func (c *Controller) LastScenarioFP() scenario.Fingerprint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastFP
}

// InstalledTunnels returns the tracked installed tunnel set, sorted by
// (switch, tunnel id).
func (c *Controller) InstalledTunnels() []TunnelInstall {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.installedLocked()
}

func (c *Controller) installedLocked() []TunnelInstall {
	out := make([]TunnelInstall, 0, len(c.installed))
	for _, tn := range c.installed {
		out = append(out, tn)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Switch != out[j].Switch {
			return out[i].Switch < out[j].Switch
		}
		return out[i].TunnelID < out[j].TunnelID
	})
	return out
}

// JournalEpoch records the completion of one successful TE epoch: the
// last-good rates, the installed tunnel set, per-peer RPC sequences, the
// calibrated probability vector, and the fingerprint of the scenario set
// solved (0 when the caller has none), fsynced into the journal before the
// call returns, compacting into a snapshot on the store's cadence. A nil
// store makes it a no-op — journaling is a write-only side channel, and
// with StateDir unset the controller behaves byte-identically to one
// without persistence compiled in.
func (c *Controller) JournalEpoch(probs []float64, fp scenario.Fingerprint) error {
	c.mu.Lock()
	if c.store == nil {
		c.mu.Unlock()
		return nil
	}
	c.epoch++
	c.lastProbs = append([]float64(nil), probs...)
	c.lastFP = fp
	state := &EpochState{
		Epoch:      c.epoch,
		Rates:      copyRates(c.lastRates),
		Tunnels:    c.installedLocked(),
		PeerSeq:    make(map[string]uint64, len(c.peerSeq)),
		Probs:      append([]float64(nil), probs...),
		ScenarioFP: uint64(fp),
	}
	for k, v := range c.peerSeq {
		state.PeerSeq[k] = v
	}
	st := c.store
	seq := c.epoch
	c.mu.Unlock()

	b, err := state.encode()
	if err != nil {
		return fmt.Errorf("wan: journal epoch %d: %w", seq, err)
	}
	if err := st.Append(seq, b); err != nil {
		return fmt.Errorf("wan: journal epoch %d: %w", seq, err)
	}
	if st.NeedCompact() {
		if err := st.Compact(seq, b); err != nil {
			return fmt.Errorf("wan: compact epoch %d: %w", seq, err)
		}
	}
	return nil
}

func copyRates(rates map[string]float64) map[string]float64 {
	if rates == nil {
		return nil
	}
	out := make(map[string]float64, len(rates))
	for k, v := range rates {
		out[k] = v
	}
	return out
}

func installKey(sw string, id int) string { return fmt.Sprintf("%s/%d", sw, id) }
