package wan

import (
	"errors"
	"reflect"
	"testing"

	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/persist"
)

func newStateTestbed(t *testing.T) *Testbed {
	t.Helper()
	tb, err := NewTestbed(fastSwitch(), func(f optical.Features) float64 { return 0.8 })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tb.Ctl.Metrics = obs.NewRegistry()
	tb.Ctl.Log = NewEventLog()
	tb.SolveUnits = 200000
	return tb
}

// TestWarmRestartResumesLastGood is the tentpole end-to-end check: run one
// TE epoch with a state directory, kill the controller (Close is crash-
// equivalent: nothing is flushed), restart a fresh incarnation against the
// same directory, and verify it resumes the degradation ladder from the
// journaled last-good state instead of empty.
func TestWarmRestartResumesLastGood(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := t.TempDir()
	tb := newStateTestbed(t)
	rec, err := tb.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Warm || rec.Generation != 1 {
		t.Fatalf("fresh dir: Recovery = %+v, want cold gen 1", rec)
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	wantRates := tb.Ctl.LastGoodRates()
	wantTunnels := tb.Ctl.InstalledTunnels()
	wantProbs := tb.Ctl.LastProbs()
	if wantRates == nil || len(wantTunnels) == 0 || len(wantProbs) == 0 {
		t.Fatalf("epoch left no state to journal: rates=%v tunnels=%v probs=%v",
			wantRates, wantTunnels, wantProbs)
	}
	if got := tb.Ctl.Epoch(); got != 1 {
		t.Fatalf("Epoch() = %d after one round, want 1", got)
	}

	// Crash + restart: fresh process, same state directory.
	if err := tb.RestartController(TCPTransport{}); err != nil {
		t.Fatal(err)
	}
	rec, err = tb.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Warm {
		t.Fatalf("restart did not recover warm: %+v", rec)
	}
	if rec.Epoch != 1 || rec.Generation != 2 {
		t.Errorf("recovered epoch=%d gen=%d, want epoch 1 gen 2", rec.Epoch, rec.Generation)
	}
	if got := tb.Ctl.LastGoodRates(); !reflect.DeepEqual(got, wantRates) {
		t.Errorf("recovered last-good rates = %v, want %v", got, wantRates)
	}
	if got := tb.Ctl.InstalledTunnels(); !reflect.DeepEqual(got, wantTunnels) {
		t.Errorf("recovered tunnel set = %v, want %v", got, wantTunnels)
	}
	if got := tb.Ctl.LastProbs(); !reflect.DeepEqual(got, wantProbs) {
		t.Errorf("recovered probs = %v, want %v", got, wantProbs)
	}
	// OpenState re-asserted the recovered table fleet-wide.
	for _, a := range tb.Agents {
		if got := a.Rates(); !reflect.DeepEqual(got, wantRates) {
			t.Errorf("agent %s rates after warm restart = %v, want %v", a.Name, got, wantRates)
		}
	}
	// A second epoch on the recovered lineage journals as epoch 2.
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if got := tb.Ctl.Epoch(); got != 2 {
		t.Errorf("Epoch() after restart + one round = %d, want 2", got)
	}
	m := tb.Ctl.Metrics
	if m.Counter("wan.recovery.warm").Value() != 1 || m.Counter("wan.recovery.runs").Value() != 2 {
		t.Errorf("recovery counters: warm=%d runs=%d, want 1/2",
			m.Counter("wan.recovery.warm").Value(), m.Counter("wan.recovery.runs").Value())
	}
}

// TestFenceRejectsStaleGeneration checks the epoch fence: once an agent has
// seen generation G, a request stamped with an older generation — a zombie
// incarnation that lost the state directory but still holds sockets — is
// refused without mutating switch state.
func TestFenceRejectsStaleGeneration(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	dir := t.TempDir()

	// The zombie: claims generation 1, then loses the state directory (its
	// store is closed) while its connection to the agent stays alive.
	zombie := newTestController(t, map[string]string{"s1": a.Addr()})
	zombie.Metrics = obs.NewRegistry()
	zombie.Log = NewEventLog()
	if _, err := zombie.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := zombie.UpdateRates(map[string]float64{"t0": 10}); err != nil {
		t.Fatal(err)
	}
	if got := a.MaxGen(); got != 1 {
		t.Fatalf("agent fenced to gen %d after first controller, want 1", got)
	}
	if err := zombie.ReleaseState(); err != nil {
		t.Fatal(err)
	}

	// The successor incarnation claims generation 2 and talks to the agent.
	succ := newTestController(t, map[string]string{"s1": a.Addr()})
	succ.Metrics = obs.NewRegistry()
	if _, err := succ.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if got := succ.Generation(); got != 2 {
		t.Fatalf("successor generation = %d, want 2", got)
	}
	if _, err := succ.UpdateRates(map[string]float64{"t0": 20}); err != nil {
		t.Fatal(err)
	}

	// The zombie's writes must now bounce off the fence and leave the
	// successor's table untouched.
	_, err := zombie.UpdateRates(map[string]float64{"t0": 99})
	if err == nil {
		t.Fatal("stale-generation update accepted")
	}
	if a.FenceRejections() != 1 {
		t.Errorf("agent fence rejections = %d, want 1", a.FenceRejections())
	}
	if got := a.Rates()["t0"]; got != 20 {
		t.Errorf("agent rate after fenced write = %v, want successor's 20", got)
	}
	if v := zombie.Metrics.Counter("wan.recovery.fence_rejections").Value(); v != 1 {
		t.Errorf("wan.recovery.fence_rejections = %d, want 1", v)
	}
	found := false
	for _, e := range zombie.Log.Events() {
		if e == "rpc s1 update_rates fenced" {
			found = true
		}
	}
	if !found {
		t.Errorf("no fenced event logged: %v", zombie.Log.Events())
	}
}

// TestStateDirUnsetInvariant pins the compatibility guarantee: a testbed
// with a state directory produces exactly the same installed rates, the
// same agent-visible behaviour, and the same event sequence as one without
// — modulo the single recovery event OpenState itself logs. This mirrors
// the obs on/off invariant tests: persistence is a write-only side channel.
func TestStateDirUnsetInvariant(t *testing.T) {
	checkGoroutineLeaks(t)
	run := func(dir string) ([]string, []map[string]float64) {
		tb := newStateTestbed(t)
		if dir != "" {
			if _, err := tb.OpenState(dir); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tb.RunScenario(7); err != nil {
			t.Fatal(err)
		}
		var rates []map[string]float64
		for _, a := range tb.Agents {
			rates = append(rates, a.Rates())
		}
		return tb.Ctl.Log.Events(), rates
	}
	plainEvents, plainRates := run("")
	stateEvents, stateRates := run(t.TempDir())
	wantEvents := append([]string{"recovery cold gen=1"}, plainEvents...)
	if !reflect.DeepEqual(stateEvents, wantEvents) {
		t.Errorf("event sequence diverged with state dir:\n with: %v\n want: %v", stateEvents, wantEvents)
	}
	if !reflect.DeepEqual(stateRates, plainRates) {
		t.Errorf("agent rates diverged with state dir: %v vs %v", stateRates, plainRates)
	}
}

// TestSecondOpenerFailsFastAtControllerLevel: two controllers sharing a
// StateDir is an operational error; the second must fail fast with the
// typed lock error, not block or corrupt.
func TestSecondOpenerFailsFastAtControllerLevel(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	dir := t.TempDir()
	c1 := newTestController(t, map[string]string{"s1": a.Addr()})
	if _, err := c1.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	c2 := newTestController(t, map[string]string{"s1": a.Addr()})
	_, err := c2.OpenState(dir)
	var le *persist.LockError
	if !errors.As(err, &le) {
		t.Fatalf("second OpenState: err = %v, want *persist.LockError", err)
	}
	// Double OpenState on one controller is also refused.
	if _, err := c1.OpenState(t.TempDir()); err == nil {
		t.Fatal("second OpenState on same controller accepted")
	}
	// After the holder goes away the directory is claimable again, one
	// generation later.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := c2.OpenState(dir)
	if err != nil {
		t.Fatalf("OpenState after release: %v", err)
	}
	if rec.Generation != 2 {
		t.Errorf("generation after release = %d, want 2", rec.Generation)
	}
}
