package wan

import "testing"

func TestLogicalClock(t *testing.T) {
	c := NewLogicalClock()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d, want 0", c.Now())
	}
	if got := c.Advance(3); got != 3 || c.Now() != 3 {
		t.Fatalf("advance(3) = %d, now = %d", got, c.Now())
	}
	if got := c.Advance(1); got != 4 {
		t.Fatalf("advance(1) = %d, want 4", got)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	c := NewLogicalClock()
	l := NewLease(c, 3)

	// Boot grace: a standby that has never reached its leader does not
	// instantly claim leadership.
	if l.Expired() {
		t.Fatal("fresh lease already expired")
	}
	if got := l.Remaining(); got != 3 {
		t.Fatalf("fresh remaining = %d, want 3", got)
	}

	// Renewals push the expiry to now + duration and track the max gen.
	c.Advance(2)
	if exp := l.Renew(5); exp != 5 {
		t.Fatalf("renew expiry = %d, want 5", exp)
	}
	if l.Expiry() != 5 {
		t.Fatalf("expiry = %d, want 5", l.Expiry())
	}
	l.Renew(4) // lower gen never regresses the fence floor
	if l.Gen() != 5 {
		t.Fatalf("gen = %d, want 5 (max observed)", l.Gen())
	}
	if l.Renews() != 2 {
		t.Fatalf("renews = %d, want 2", l.Renews())
	}

	// A full duration of silence expires the lease, exactly at the boundary.
	c.Advance(2)
	if l.Expired() {
		t.Fatalf("expired at t=%d with expiry %d", c.Now(), l.Expiry())
	}
	c.Advance(1)
	if !l.Expired() {
		t.Fatalf("not expired at t=%d with expiry %d", c.Now(), l.Expiry())
	}
	if got := l.Remaining(); got != 0 {
		t.Fatalf("remaining at expiry = %d, want 0", got)
	}
	c.Advance(2)
	if got := l.Remaining(); got != -2 {
		t.Fatalf("remaining past expiry = %d, want -2", got)
	}

	// Renewal resurrects an expired lease (the partition healed in time for
	// no one to have claimed).
	l.Renew(5)
	if l.Expired() {
		t.Fatal("renewed lease still expired")
	}
}
