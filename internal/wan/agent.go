package wan

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// SwitchConfig models the data-plane latencies of a production router.
type SwitchConfig struct {
	// InstallLatency is the time to program one tunnel (hundreds of
	// milliseconds on production gear per §6.4; tests shrink it).
	InstallLatency time.Duration
	// RateLatency is the time to update rate-adaptation match-action
	// entries ("relatively fast", §2.1 — milliseconds).
	RateLatency time.Duration
	// MaxTunnels bounds the tunnel table ("a commercial router can always
	// support tens of thousands of tunnels", §6.3).
	MaxTunnels int
}

// DefaultSwitchConfig matches the testbed's measured behaviour.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{
		InstallLatency: 250 * time.Millisecond,
		RateLatency:    2 * time.Millisecond,
		MaxTunnels:     20000,
	}
}

// SwitchAgent is the software agent on one router. Tunnel installs are
// serialized through a mutex, reproducing the production choice that
// "guarantees a consistent allocation of resource costs" (§5) and the
// resulting linear update time of Fig 11b.
type SwitchAgent struct {
	Name string
	cfg  SwitchConfig

	ln net.Listener

	mu           sync.Mutex
	tunnels      map[int][]int
	rates        map[string]float64
	maxGen       uint64 // highest controller generation seen (epoch fence)
	genLeader    string // leader id that claimed maxGen ("" = unnamed)
	lastSeq      uint64 // highest sequence seen from that generation
	fenceRejects int

	connMu sync.Mutex
	conns  map[*conn]struct{}

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewSwitchAgent starts an agent listening on a fresh loopback port.
func NewSwitchAgent(name string, cfg SwitchConfig) (*SwitchAgent, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wan: listen: %w", err)
	}
	a := &SwitchAgent{
		Name: name, cfg: cfg, ln: ln,
		tunnels: make(map[int][]int),
		rates:   make(map[string]float64),
		conns:   make(map[*conn]struct{}),
		closed:  make(chan struct{}),
	}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the agent's listen address.
func (a *SwitchAgent) Addr() string { return a.ln.Addr().String() }

// Close stops the agent and waits for its handlers: the listener and every
// live connection are severed, so serve goroutines blocked mid-read unwind
// instead of pinning Close forever (an agent "restart" must not depend on
// the controller hanging up first). Close is idempotent, so test helpers
// can register it with t.Cleanup while tests also close explicitly.
func (a *SwitchAgent) Close() error {
	var err error
	a.closeOnce.Do(func() {
		close(a.closed)
		err = a.ln.Close()
		a.connMu.Lock()
		for c := range a.conns {
			c.close()
		}
		a.connMu.Unlock()
		a.wg.Wait()
	})
	return err
}

// track registers a live connection for shutdown; it returns false when the
// agent is already closing and the connection should be dropped.
func (a *SwitchAgent) track(c *conn) bool {
	a.connMu.Lock()
	defer a.connMu.Unlock()
	select {
	case <-a.closed:
		return false
	default:
	}
	a.conns[c] = struct{}{}
	return true
}

func (a *SwitchAgent) untrack(c *conn) {
	a.connMu.Lock()
	delete(a.conns, c)
	a.connMu.Unlock()
}

// MaxGen returns the highest controller generation this agent has accepted
// a fenced request from (0 = never fenced).
func (a *SwitchAgent) MaxGen() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxGen
}

// FenceRejections returns how many requests this agent refused because they
// carried a stale controller generation.
func (a *SwitchAgent) FenceRejections() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fenceRejects
}

// NumTunnels returns the current tunnel-table size.
func (a *SwitchAgent) NumTunnels() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.tunnels)
}

// Rates returns a copy of the installed rate table.
func (a *SwitchAgent) Rates() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, len(a.rates))
	for k, v := range a.rates {
		out[k] = v
	}
	return out
}

func (a *SwitchAgent) acceptLoop() {
	defer a.wg.Done()
	for {
		c, err := a.ln.Accept()
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		cn := newConn(c)
		if !a.track(cn) {
			cn.close()
			continue
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer a.untrack(cn)
			a.serve(cn)
		}()
	}
}

func (a *SwitchAgent) serve(c *conn) {
	defer c.close()
	for {
		var req Request
		if err := c.readRequest(&req); err != nil {
			return
		}
		resp := a.handle(&req)
		if err := c.writeResponse(resp); err != nil {
			return
		}
	}
}

func (a *SwitchAgent) handle(req *Request) *Response {
	start := time.Now()
	// Epoch fence: a fenced request (Gen > 0) from a generation older than
	// one already seen comes from a dead controller incarnation — a delayed
	// duplicate or a zombie that lost the state-directory lock — and must
	// not mutate switch state. Gen 0 is the unfenced legacy protocol and is
	// always accepted. Two cross-site claimants can fence to the *same*
	// generation (each opened its own directory with the same floor, and no
	// shared flock exists to arbitrate), so equal generations from two
	// different named leaders tie-break to whichever claimant reached this
	// agent first; unnamed senders (Leader == "") keep the legacy
	// equal-gen-accepted behaviour.
	if req.Gen > 0 {
		a.mu.Lock()
		stale := req.Gen < a.maxGen ||
			(req.Gen == a.maxGen && req.Leader != a.genLeader && req.Leader != "" && a.genLeader != "")
		if stale {
			gen := a.maxGen
			a.fenceRejects++
			a.mu.Unlock()
			return &Response{
				Err:      fmt.Sprintf("stale controller generation %d, fenced to %d", req.Gen, gen),
				TunnelID: req.TunnelID,
				Stale:    true,
				Gen:      gen,
			}
		}
		if req.Gen > a.maxGen {
			a.maxGen = req.Gen
			a.genLeader = req.Leader
			a.lastSeq = 0
		}
		if req.Seq > a.lastSeq {
			a.lastSeq = req.Seq
		}
		a.mu.Unlock()
	}
	resp := &Response{OK: true, TunnelID: req.TunnelID}
	switch req.Type {
	case MsgPing:
		// nothing
	case MsgInstallTunnel:
		a.mu.Lock() // serializes installs
		if len(a.tunnels) >= a.cfg.MaxTunnels {
			a.mu.Unlock()
			return &Response{Err: "tunnel table full", TunnelID: req.TunnelID}
		}
		time.Sleep(a.cfg.InstallLatency)
		a.tunnels[req.TunnelID] = append([]int(nil), req.Path...)
		a.mu.Unlock()
	case MsgRemoveTunnel:
		a.mu.Lock()
		time.Sleep(a.cfg.RateLatency)
		delete(a.tunnels, req.TunnelID)
		a.mu.Unlock()
	case MsgUpdateRates:
		a.mu.Lock()
		time.Sleep(a.cfg.RateLatency)
		for k, v := range req.Rates {
			a.rates[k] = v
		}
		a.mu.Unlock()
	default:
		return &Response{Err: fmt.Sprintf("unknown message %q", req.Type)}
	}
	resp.TookMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp
}
